// E04 — section III-A3: the sliding-window eviction spreads maintenance
// across L_t: each tick hides one window (~1.6% of the cache on average)
// in the foreground and recycles it in background batches, so the cost
// "scales linearly with the number of entries" and interferes minimally
// with look-ups. The baseline scans the ENTIRE cache on every eviction
// pass (a conventional TTL design).
//
// Metrics: foreground pause per maintenance pass (wall time), entries
// touched per pass, and look-up throughput while maintenance runs.
#include "bench/bench_common.h"
#include "baseline/full_scan_cache.h"
#include "cms/correction_state.h"
#include "cms/location_cache.h"
#include "util/clock.h"
#include "util/rng.h"

namespace scalla {
namespace {

using bench::Fmt;
using bench::Stopwatch;

struct WindowResult {
  double hidePauseUs = 0;     // foreground hide pass
  double purgeTotalUs = 0;    // background batched recycle
  double touchedPct = 0;      // share of cache touched per tick
  double lookupNsDuring = 0;  // mean lookup cost while purging
};

WindowResult RunWindowScheme(std::size_t entries) {
  cms::CmsConfig config;
  util::ManualClock clock;
  cms::CorrectionState corrections;
  corrections.OnConnect(0);
  cms::LocationCache cache(config, clock, corrections);
  const ServerSet vm = ServerSet::FirstN(1);

  // Fill the cache across all 64 windows so each window holds ~1/64th.
  std::uint64_t fileId = 0;
  for (int w = 0; w < kMaxServersPerSet; ++w) {
    for (std::size_t i = 0; i < entries / kMaxServersPerSet; ++i) {
      cache.Lookup(util::MakeFilePath(fileId / 997, fileId % 997), vm, ServerSet::None(),
                   cms::LocationCache::AddPolicy::kCreate);
      ++fileId;
    }
    clock.Advance(config.WindowTick());
    if (auto purge = cache.OnWindowTick()) purge();  // nothing expires yet (first cycle)
  }

  // The next tick expires the oldest window: measure the real costs.
  WindowResult result;
  const auto before = cache.GetStats();
  clock.Advance(config.WindowTick());
  Stopwatch hide;
  auto purge = cache.OnWindowTick();
  result.hidePauseUs = hide.ElapsedNs() / 1e3;
  const auto hidden = cache.GetStats().hiddenObjects;
  result.touchedPct =
      100.0 * static_cast<double>(hidden) /
      static_cast<double>(before.liveObjects == 0 ? 1 : before.liveObjects);

  // Run the purge while interleaving look-ups, as the live system would.
  util::Rng rng(3);
  Stopwatch purgeTimer;
  if (purge) purge();
  result.purgeTotalUs = purgeTimer.ElapsedNs() / 1e3;

  const std::size_t probes = 20000;
  Stopwatch lookups;
  for (std::size_t i = 0; i < probes; ++i) {
    const std::uint64_t id = rng.NextBelow(fileId);
    cache.Lookup(util::MakeFilePath(id / 997, id % 997), vm, ServerSet::None(),
                 cms::LocationCache::AddPolicy::kFindOnly);
  }
  result.lookupNsDuring = lookups.ElapsedNs() / static_cast<double>(probes);
  return result;
}

struct ScanResult {
  double scanPauseUs = 0;
  double touchedPct = 0;
};

ScanResult RunFullScan(std::size_t entries) {
  util::ManualClock clock;
  baseline::FullScanCache cache(clock, std::chrono::hours(8));
  // Same age structure: 1/64th about to expire, the rest younger.
  const Duration tick = std::chrono::hours(8) / 64;
  for (int w = 0; w < 64; ++w) {
    for (std::size_t i = 0; i < entries / 64; ++i) {
      cache.Put(util::MakeFilePath(w, i), 0);
    }
    clock.Advance(tick);
  }
  clock.Advance(std::chrono::minutes(1));
  std::size_t touched = 0;
  Stopwatch scan;
  cache.ScanAndEvict(&touched);
  return ScanResult{scan.ElapsedNs() / 1e3,
                    100.0 * static_cast<double>(touched) /
                        static_cast<double>(entries)};
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  bench::PrintHeader(
      "E04", "sliding-window eviction vs full-scan TTL",
      "on average only 1.6% of the cache is processed per tick; hiding is "
      "trivial and physical removal is a background task with minimal "
      "interference");

  bench::Table table({"entries", "scheme", "foreground pause", "touched/pass",
                      "background purge", "lookup during purge"});
  double windowTouchedPct = 0, scanTouchedPct = 0;
  for (const std::size_t entries : {64000u, 256000u, 512000u}) {
    const auto w = RunWindowScheme(entries);
    table.AddRow({Fmt("%zu", entries), "sliding-window",
                  Fmt("%.1fus", w.hidePauseUs), Fmt("%.1f%%", w.touchedPct),
                  Fmt("%.1fus", w.purgeTotalUs), Fmt("%.0fns", w.lookupNsDuring)});
    const auto s = RunFullScan(entries);
    table.AddRow({Fmt("%zu", entries), "full-scan TTL", Fmt("%.1fus", s.scanPauseUs),
                  Fmt("%.1f%%", s.touchedPct), "-", "-"});
    windowTouchedPct = w.touchedPct;
    scanTouchedPct = s.touchedPct;
  }
  table.Print();
  std::printf("The window scheme's foreground pause covers one window (~1/64 = 1.6%%\n"
              "of entries) and stays flat relative to the full scan, whose pause\n"
              "grows with the WHOLE cache regardless of how little expires.\n\n");
  // The pause columns are host wall clock; the gate tracks the structural
  // per-pass shares, which are virtual-clock deterministic.
  std::printf("JSON {\"bench\":\"eviction_window\",\"entries\":512000,"
              "\"window_touched_pct\":%.3f,\"fullscan_touched_pct\":%.3f}\n",
              windowTouchedPct, scanTouchedPct);
  return 0;
}

// E11 — Figure 1 / sections II-B1 and VI: nodes cluster in sets of 64
// arranged in a 64-ary tree; locating a file costs O(1) per level, so the
// upper bound is O(log64(servers)) — "as the number of nodes increases,
// search performance increases at an exponential rate" (capacity grows
// exponentially in the depth while the search cost grows linearly in it).
#include <cmath>

#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "sim/workload.h"

namespace scalla {
namespace {

using bench::Fmt;

struct Point {
  int depth = 0;
  int hops = 0;
  double warmUs = 0;
  double coldUs = 0;
};

Point Measure(int servers, int fanout, std::size_t files) {
  sim::ClusterSpec spec;
  spec.servers = servers;
  spec.fanout = fanout;
  sim::SimCluster cluster(spec);
  cluster.Start();
  util::Rng rng(31);
  const auto paths = sim::PopulateFiles(cluster, files, 1, rng);
  auto& client = cluster.NewClient();

  Point p;
  p.depth = cluster.Depth();
  util::LatencyRecorder cold, warm;
  int hops = 0;
  for (const auto& path : paths) {
    const TimePoint t0 = cluster.engine().Now();
    const auto open = cluster.OpenAndWait(client, path, cms::AccessMode::kRead, false);
    if (open.err == proto::XrdErr::kNone) {
      cold.Record(cluster.engine().Now() - t0);
      hops = std::max(hops, open.redirects);
    }
  }
  for (const auto& path : paths) {
    const TimePoint t0 = cluster.engine().Now();
    const auto open = cluster.OpenAndWait(client, path, cms::AccessMode::kRead, false);
    if (open.err == proto::XrdErr::kNone) warm.Record(cluster.engine().Now() - t0);
  }
  p.hops = hops;
  p.warmUs = warm.MeanNanos() / 1e3;
  p.coldUs = cold.MeanNanos() / 1e3;
  return p;
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  bench::PrintHeader(
      "E11", "64-ary tree scaling: hops and latency vs cluster size",
      "O(log64 N) levels; O(1) per level; capacity grows exponentially with "
      "depth while search cost grows only linearly in it");

  Point biggest;
  {
    std::printf("Production shape (fanout 64):\n\n");
    bench::Table table({"servers", "depth", "redirect hops", "warm open",
                        "cold open", "log64(N) bound"});
    for (const int servers : {4, 64, 256, 1024, 4096}) {
      const auto p = Measure(servers, 64, 32);
      if (servers == 4096) biggest = p;
      table.AddRow({Fmt("%d", servers), Fmt("%d", p.depth), Fmt("%d", p.hops),
                    Fmt("%.1fus", p.warmUs), Fmt("%.1fus", p.coldUs),
                    Fmt("%.2f", std::log(static_cast<double>(servers)) / std::log(64.0))});
    }
    table.Print();
  }

  {
    std::printf("Depth sweep at fixed 64 servers (shrinking the fanout adds\n"
                "levels; per-level cost stays constant):\n\n");
    bench::Table table({"fanout", "depth", "warm open", "warm per level"});
    for (const int fanout : {64, 8, 4, 2}) {
      const auto p = Measure(64, fanout, 32);
      table.AddRow({Fmt("%d", fanout), Fmt("%d", p.depth), Fmt("%.1fus", p.warmUs),
                    Fmt("%.1fus", p.warmUs / p.depth)});
    }
    table.Print();
    std::printf("A 64-ary tree reaches 64^2=4096 servers at depth 2 and 64^3=262144\n"
                "at depth 3 — the \"exceptionally good value\" the paper cites.\n\n");
  }
  // Virtual-clock latencies at the biggest production shape (4096 servers).
  std::printf("\nJSON {\"bench\":\"tree_scaling\",\"servers\":4096,"
              "\"depth\":%d,\"hops\":%d,\"warm_open_us\":%.1f,\"cold_open_us\":%.1f}\n",
              biggest.depth, biggest.hops, biggest.warmUs, biggest.coldUs);
  return 0;
}

// Federation open latency: a client holding only the meta-head address
// opens files spread across 1 / 2 / 4 member clusters. The two-hop walk
// (meta -> cluster head -> data server) adds one cached tree level per
// open, so warm latency should stay flat as clusters are added — the
// meta resolves the owning cluster from its name cache in O(1) — while
// cold opens pay one extra FedQuery round trip.
//
// Output: a human table plus one JSON line (machine-scrapable) with
// per-shape warm/cold means and the meta's cache hit rate.
#include "bench/bench_common.h"
#include "sim/federation.h"
#include "util/stats.h"

namespace scalla {
namespace {

using bench::Fmt;
using sim::FederationSpec;
using sim::SimFederation;

struct ShapeResult {
  int clusters = 0;
  double coldUs = 0;
  double warmUs = 0;
  double hitRate = 0;
};

ShapeResult Measure(int clusters, int filesPerCluster) {
  FederationSpec spec;
  spec.clusters = clusters;
  spec.cluster.servers = 4;
  SimFederation fed(spec);

  std::vector<std::string> paths;
  for (int c = 0; c < clusters; ++c) {
    for (int f = 0; f < filesPerCluster; ++f) {
      std::string path =
          "/store/c" + std::to_string(c) + "/f" + std::to_string(f);
      fed.PlaceFile(static_cast<std::size_t>(c), static_cast<std::size_t>(f % 4),
                    path, "x");
      paths.push_back(std::move(path));
    }
  }
  fed.Start();
  auto& client = fed.NewClient();

  util::LatencyRecorder cold, warm;
  for (const auto& path : paths) {
    const TimePoint t0 = fed.engine().Now();
    const auto open = fed.OpenAndWait(client, path, cms::AccessMode::kRead, false);
    if (open.err == proto::XrdErr::kNone) cold.Record(fed.engine().Now() - t0);
  }
  for (const auto& path : paths) {
    const TimePoint t0 = fed.engine().Now();
    const auto open = fed.OpenAndWait(client, path, cms::AccessMode::kRead, false);
    if (open.err == proto::XrdErr::kNone) warm.Record(fed.engine().Now() - t0);
  }

  const auto snap = fed.meta().SnapshotMetrics();
  const double lookups = static_cast<double>(snap.Counter("cache.lookups"));
  ShapeResult r;
  r.clusters = clusters;
  r.coldUs = cold.MeanNanos() / 1e3;
  r.warmUs = warm.MeanNanos() / 1e3;
  r.hitRate = lookups > 0 ? snap.Counter("cache.hits") / lookups : 0;
  return r;
}

}  // namespace
}  // namespace scalla

int main() {
  scalla::bench::PrintHeader(
      "F01", "federation open latency vs member cluster count",
      "warm opens flat as clusters are added (meta cache is O(1)); cold "
      "opens pay one extra query round trip");

  constexpr int kFilesPerCluster = 64;
  std::vector<scalla::ShapeResult> results;
  scalla::bench::Table table(
      {"clusters", "files", "warm open", "cold open", "meta hit rate"});
  for (const int clusters : {1, 2, 4}) {
    const auto r = scalla::Measure(clusters, kFilesPerCluster);
    results.push_back(r);
    table.AddRow({scalla::bench::Fmt("%d", r.clusters),
                  scalla::bench::Fmt("%d", clusters * kFilesPerCluster),
                  scalla::bench::Fmt("%.1fus", r.warmUs),
                  scalla::bench::Fmt("%.1fus", r.coldUs),
                  scalla::bench::Fmt("%.1f%%", r.hitRate * 100)});
  }
  table.Print();

  std::string runsJson = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) runsJson += ",";
    runsJson += "{\"clusters\":" + std::to_string(r.clusters) +
                ",\"warm_open_us\":" + std::to_string(r.warmUs) +
                ",\"cold_open_us\":" + std::to_string(r.coldUs) +
                ",\"meta_hit_rate\":" + std::to_string(r.hitRate) + "}";
  }
  runsJson += "]";
  std::printf("\nJSON %s\n",
              ("{\"bench\":\"federation\",\"files_per_cluster\":" +
               std::to_string(kFilesPerCluster) + ",\"runs\":" + runsJson + "}")
                  .c_str());

  // Warm latency must not grow with cluster count (within 25% of the
  // single-cluster baseline) and every shape must keep a warm cache.
  bool ok = true;
  for (const auto& r : results) {
    ok &= r.warmUs <= results.front().warmUs * 1.25;
    ok &= r.hitRate > 0.3;
  }
  std::printf("federated open latency independent of cluster count: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

// E-PCACHE — proxy cache tier: cold-miss vs warm-hit vs direct-to-cluster
// access latency, and the hit rate a Zipf workload reaches against a cache
// smaller than the working set.
//
// An XCache-style proxy absorbs the cluster's redirection cost: a warm hit
// is one client<->proxy round trip, while a cold miss pays that round trip
// plus the origin open/read (resolver, redirects, leaf I/O) behind it, and
// a direct access pays the cluster path on every request. All three are
// measured in the same discrete-event simulation, so the numbers are the
// protocol's, not the host machine's.
//
// Output: a human table plus one JSON line (machine-scrapable) with the
// per-class latency stats and the measured hit rate.
#include <cinttypes>
#include <vector>

#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"

namespace scalla {
namespace {

constexpr std::size_t kFiles = 200;
constexpr std::uint32_t kBlockSize = 4096;
constexpr std::uint32_t kBlocksPerFile = 4;       // 16 KiB files
constexpr std::size_t kProxyRequests = 4000;
constexpr std::size_t kDirectRequests = 800;
constexpr double kZipfExponent = 1.1;

std::string FilePath(std::size_t i) { return "/store/f" + std::to_string(i); }

struct Access {
  proto::XrdErr err = proto::XrdErr::kNone;
  Duration elapsed{};
};

// One full client access — open, read `length` at `offset`, close — timed
// in virtual time.
Access TimedAccess(sim::SimCluster& cluster, client::ScallaClient& c,
                   const std::string& path, std::uint64_t offset,
                   std::uint32_t length) {
  Access out;
  const TimePoint start = cluster.engine().Now();
  const auto open = cluster.OpenAndWait(c, path, cms::AccessMode::kRead, false);
  if (open.err != proto::XrdErr::kNone) {
    out.err = open.err;
    return out;
  }
  auto readErr = std::make_shared<std::optional<proto::XrdErr>>();
  c.Read(open.file, offset, length,
         [readErr](proto::XrdErr err, std::string) { *readErr = err; });
  cluster.engine().RunUntilPredicate([readErr] { return readErr->has_value(); },
                                     cluster.engine().Now() + std::chrono::seconds(30));
  auto closed = std::make_shared<std::optional<proto::XrdErr>>();
  c.Close(open.file, [closed](proto::XrdErr err) { *closed = err; });
  cluster.engine().RunUntilPredicate([closed] { return closed->has_value(); },
                                     cluster.engine().Now() + std::chrono::seconds(30));
  out.err = readErr->value_or(proto::XrdErr::kIo);
  out.elapsed = cluster.engine().Now() - start;
  return out;
}

std::string StatsJson(const util::LatencyRecorder& r) {
  const auto pcts = r.PercentilesNanos({0.5, 0.99});
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"n\":%zu,\"mean_us\":%.2f,\"p50_us\":%.2f,\"p99_us\":%.2f}",
                r.count(), r.MeanNanos() / 1e3,
                static_cast<double>(pcts[0]) / 1e3,
                static_cast<double>(pcts[1]) / 1e3);
  return buf;
}

// ------------------------------------------------- two-tier (DRAM + disk)

constexpr std::uint64_t kWorkingSetBytes =
    static_cast<std::uint64_t>(kFiles) * kBlocksPerFile * kBlockSize;

sim::ClusterSpec TieredSpec(double dramFraction) {
  sim::ClusterSpec spec;
  spec.servers = 8;
  spec.withProxy = true;
  spec.proxyCache.blockSize = kBlockSize;
  spec.proxyCache.capacityBytes = static_cast<std::uint64_t>(
      dramFraction * static_cast<double>(kWorkingSetBytes));
  // Disk holds the full working set: with ghost admission the question the
  // sweep answers is how much DRAM the hot head needs, not whether bytes
  // survive at all.
  spec.proxyDiskCapacity = kWorkingSetBytes;
  return spec;
}

void PlaceWorkingSet(sim::SimCluster& cluster) {
  for (std::size_t i = 0; i < kFiles; ++i) {
    cluster.PlaceFile(i % cluster.ServerCount(), FilePath(i),
                      std::string(kBlocksPerFile * kBlockSize, 'd'));
  }
}

// Hit rate across a window bounded by two stats snapshots.
double WindowHitRate(const pcache::BlockCacheStats& before,
                     const pcache::BlockCacheStats& after) {
  const std::uint64_t hits = after.hits - before.hits;
  const std::uint64_t total = hits + (after.misses - before.misses);
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

struct TierSweepPoint {
  double dramPct = 0;
  double hitRate = 0;      // either tier answered
  double dramHitRate = 0;  // fraction of lookups answered by DRAM
  double diskHitRate = 0;  // fraction answered by the disk tier
  double warmP99Us = 0;    // p99 of accesses that dodged origin entirely
  std::uint64_t spills = 0;
  std::uint64_t promotions = 0;
};

// One Zipf run against a two-tier proxy with `dramFraction` of the working
// set in DRAM. Same access law as the legacy phase, fresh cluster.
TierSweepPoint RunTierPoint(double dramFraction) {
  sim::SimCluster cluster(TieredSpec(dramFraction));
  cluster.Start();
  PlaceWorkingSet(cluster);

  util::Rng rng(0xca11e);
  util::ZipfSampler zipf(kFiles, kZipfExponent);
  auto& c = cluster.NewProxyClient();
  obs::Counter& fetches =
      cluster.proxy()->metrics().GetCounter("pcache.origin_fetches");
  obs::Counter& originOpens =
      cluster.proxy()->metrics().GetCounter("pcache.origin_opens");

  util::LatencyRecorder warmLat;
  for (std::size_t i = 0; i < kProxyRequests; ++i) {
    const std::size_t f = zipf.Sample(rng);
    const std::uint64_t offset = rng.NextBelow(kBlocksPerFile) * kBlockSize;
    const std::uint64_t before = fetches.Value() + originOpens.Value();
    const Access a = TimedAccess(cluster, c, FilePath(f), offset, kBlockSize);
    if (a.err != proto::XrdErr::kNone) continue;
    if (fetches.Value() + originOpens.Value() == before) warmLat.Record(a.elapsed);
  }

  const auto stats = cluster.proxy()->cache().GetTieredStats();
  const std::uint64_t lookups = stats.hits + stats.misses;
  TierSweepPoint point;
  point.dramPct = dramFraction * 100.0;
  point.hitRate = lookups == 0 ? 0.0
                               : static_cast<double>(stats.hits) /
                                     static_cast<double>(lookups);
  point.dramHitRate = lookups == 0 ? 0.0
                                   : static_cast<double>(stats.dramHits) /
                                         static_cast<double>(lookups);
  point.diskHitRate = lookups == 0 ? 0.0
                                   : static_cast<double>(stats.diskHits) /
                                         static_cast<double>(lookups);
  point.warmP99Us =
      static_cast<double>(warmLat.PercentilesNanos({0.99})[0]) / 1e3;
  point.spills = stats.spills;
  point.promotions = stats.promotions;
  return point;
}

struct ShiftResult {
  double preHitRate = 0;   // steady state before the popularity shift
  double postHitRate = 0;  // steady state after re-adapting
};

// Mid-run Zipf shift: after 2000 requests the popularity ranking rotates
// by half the catalogue — yesterday's cold tail is today's hot head. The
// two windows measure steady-state before and re-adapted after.
ShiftResult RunZipfShift() {
  sim::SimCluster cluster(TieredSpec(0.25));
  cluster.Start();
  PlaceWorkingSet(cluster);

  util::Rng rng(0x51f7);
  util::ZipfSampler zipf(kFiles, kZipfExponent);
  auto& c = cluster.NewProxyClient();
  auto& cache = cluster.proxy()->cache();

  ShiftResult out;
  pcache::BlockCacheStats mark;
  for (std::size_t i = 0; i < 4000; ++i) {
    std::size_t f = zipf.Sample(rng);
    if (i >= 2000) f = (f + kFiles / 2) % kFiles;  // the shift
    if (i == 1000 || i == 3000) mark = cache.GetStats();
    const std::uint64_t offset = rng.NextBelow(kBlocksPerFile) * kBlockSize;
    (void)TimedAccess(cluster, c, FilePath(f), offset, kBlockSize);
    if (i == 1999) out.preHitRate = WindowHitRate(mark, cache.GetStats());
    if (i == 3999) out.postHitRate = WindowHitRate(mark, cache.GetStats());
  }
  return out;
}

struct ScanResult {
  double hotBefore = 0;  // hot-set hit rate before the scan
  double hotAfter = 0;   // ... and after a scan of 2x the DRAM tier
};

// The scan-resistance case the acceptance gate pins: warm a Zipf hot set
// into DRAM, sweep a sequential scan of twice the DRAM tier through the
// proxy, and measure how far the hot set's hit rate fell.
ScanResult RunScanCase() {
  sim::SimCluster cluster(TieredSpec(0.25));  // DRAM = 200 blocks
  cluster.Start();
  PlaceWorkingSet(cluster);

  constexpr std::size_t kHotFiles = 40;  // 160 blocks: fits in DRAM
  auto& c = cluster.NewProxyClient();
  auto& cache = cluster.proxy()->cache();

  // Warm: two passes so every hot block proves reuse and earns DRAM.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t f = 0; f < kHotFiles; ++f) {
      (void)cluster.ReadAll(c, FilePath(f));
    }
  }

  const auto measure = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    util::ZipfSampler zipf(kHotFiles, kZipfExponent);
    const auto before = cache.GetStats();
    for (std::size_t i = 0; i < 500; ++i) {
      const std::size_t f = zipf.Sample(rng);
      const std::uint64_t offset = rng.NextBelow(kBlocksPerFile) * kBlockSize;
      (void)TimedAccess(cluster, c, FilePath(f), offset, kBlockSize);
    }
    return WindowHitRate(before, cache.GetStats());
  };

  ScanResult out;
  out.hotBefore = measure(0x5ca9);
  // The scan: every file once, sequentially — 800 blocks against a
  // 200-block DRAM tier.
  for (std::size_t f = 0; f < kFiles; ++f) (void)cluster.ReadAll(c, FilePath(f));
  out.hotAfter = measure(0x5ca9);
  return out;
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;

  sim::ClusterSpec spec;
  spec.servers = 8;
  spec.withProxy = true;
  spec.proxyCache.blockSize = kBlockSize;
  // Half the working set fits: the Zipf head lives in cache, the tail
  // keeps the eviction sweep honest.
  spec.proxyCache.capacityBytes =
      static_cast<std::uint64_t>(kFiles) * kBlocksPerFile * kBlockSize / 2;
  sim::SimCluster cluster(spec);
  cluster.Start();

  for (std::size_t i = 0; i < kFiles; ++i) {
    cluster.PlaceFile(i % cluster.ServerCount(), FilePath(i),
                      std::string(kBlocksPerFile * kBlockSize, 'd'));
  }

  util::Rng rng(0xca11e);
  util::ZipfSampler zipf(kFiles, kZipfExponent);

  // Baseline: the same workload straight at the cluster head.
  auto& direct = cluster.NewClient();
  util::LatencyRecorder directLat;
  for (std::size_t i = 0; i < kDirectRequests; ++i) {
    const std::size_t f = zipf.Sample(rng);
    const std::uint64_t offset = rng.NextBelow(kBlocksPerFile) * kBlockSize;
    const Access a = TimedAccess(cluster, direct, FilePath(f), offset, kBlockSize);
    if (a.err == proto::XrdErr::kNone) directLat.Record(a.elapsed);
  }

  // Through the proxy: classify each access by whether it touched origin.
  auto& proxied = cluster.NewProxyClient();
  util::LatencyRecorder coldLat, warmLat;
  obs::Counter& fetches =
      cluster.proxy()->metrics().GetCounter("pcache.origin_fetches");
  obs::Counter& originOpens =
      cluster.proxy()->metrics().GetCounter("pcache.origin_opens");
  for (std::size_t i = 0; i < kProxyRequests; ++i) {
    const std::size_t f = zipf.Sample(rng);
    const std::uint64_t offset = rng.NextBelow(kBlocksPerFile) * kBlockSize;
    const std::uint64_t before = fetches.Value() + originOpens.Value();
    const Access a = TimedAccess(cluster, proxied, FilePath(f), offset, kBlockSize);
    if (a.err != proto::XrdErr::kNone) continue;
    const bool touchedOrigin = fetches.Value() + originOpens.Value() > before;
    (touchedOrigin ? coldLat : warmLat).Record(a.elapsed);
  }

  const auto cacheStats = cluster.proxy()->cache().GetStats();
  const double hitRate =
      cacheStats.hits + cacheStats.misses == 0
          ? 0.0
          : static_cast<double>(cacheStats.hits) /
                static_cast<double>(cacheStats.hits + cacheStats.misses);

  bench::PrintHeader(
      "E-PCACHE", "proxy cache tier: warm hits dodge the cluster path",
      "a cached access costs one proxy round trip; the cluster's redirect "
      "latency is paid only on misses");
  bench::Table table({"access class", "n", "mean", "p50", "p99"});
  const auto addRow = [&table](const std::string& name,
                               const util::LatencyRecorder& r) {
    const auto pcts = r.PercentilesNanos({0.5, 0.99});
    table.AddRow({name, std::to_string(r.count()),
                  util::FormatNanos(r.MeanNanos()),
                  util::FormatNanos(static_cast<double>(pcts[0])),
                  util::FormatNanos(static_cast<double>(pcts[1]))});
  };
  addRow("direct to cluster", directLat);
  addRow("proxy cold miss", coldLat);
  addRow("proxy warm hit", warmLat);
  table.Print();
  std::printf("zipf(s=%.1f) over %zu files, %" PRIu64 "-byte blocks, cache %.0f%% "
              "of working set: hit rate %.1f%%, %" PRIu64 " evictions\n",
              kZipfExponent, kFiles, static_cast<std::uint64_t>(kBlockSize), 50.0,
              hitRate * 100.0, cacheStats.evictions);

  // Two-tier phases: DRAM-size sweep, mid-run popularity shift, and the
  // sequential-scan case ghost admission exists for.
  const double kSweep[] = {0.125, 0.25, 0.5};
  std::vector<TierSweepPoint> sweep;
  for (const double fraction : kSweep) sweep.push_back(RunTierPoint(fraction));
  const ShiftResult shift = RunZipfShift();
  const ScanResult scan = RunScanCase();

  std::printf("\ntwo-tier sweep (disk = full working set):\n");
  bench::Table tierTable(
      {"dram %", "hit rate", "dram hits", "disk hits", "warm p99", "spills"});
  for (const auto& p : sweep) {
    char hr[32], dr[32], kr[32];
    std::snprintf(hr, sizeof(hr), "%.1f%%", p.hitRate * 100.0);
    std::snprintf(dr, sizeof(dr), "%.1f%%", p.dramHitRate * 100.0);
    std::snprintf(kr, sizeof(kr), "%.1f%%", p.diskHitRate * 100.0);
    tierTable.AddRow({std::to_string(static_cast<int>(p.dramPct * 10) / 10), hr, dr,
                      kr, util::FormatNanos(p.warmP99Us * 1e3),
                      std::to_string(p.spills)});
  }
  tierTable.Print();
  std::printf("zipf shift at request 2000: hit rate %.1f%% -> %.1f%% (re-adapted)\n",
              shift.preHitRate * 100.0, shift.postHitRate * 100.0);
  std::printf("scan of 2x DRAM: hot-set hit rate %.1f%% -> %.1f%% (dent %.1f pts)\n",
              scan.hotBefore * 100.0, scan.hotAfter * 100.0,
              (scan.hotBefore - scan.hotAfter) * 100.0);

  std::string sweepJson = "[";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& p = sweep[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"dram_pct\":%.1f,\"hit_rate\":%f,\"dram_hit_rate\":%f,"
                  "\"disk_hit_rate\":%f,\"warm_p99_us\":%.2f,\"spills\":%llu,"
                  "\"promotions\":%llu}",
                  i == 0 ? "" : ",", p.dramPct, p.hitRate, p.dramHitRate,
                  p.diskHitRate, p.warmP99Us,
                  static_cast<unsigned long long>(p.spills),
                  static_cast<unsigned long long>(p.promotions));
    sweepJson += buf;
  }
  sweepJson += "]";
  char extraJson[512];
  std::snprintf(extraJson, sizeof(extraJson),
                ",\"tiered\":{\"hit_rate\":%f,\"dram_hit_rate\":%f,"
                "\"disk_hit_rate\":%f,\"warm_p99_us\":%.2f},"
                "\"shift\":{\"pre_hit_rate\":%f,\"post_hit_rate\":%f},"
                "\"scan\":{\"hot_before\":%f,\"hot_after\":%f,\"dent\":%f}",
                sweep[1].hitRate, sweep[1].dramHitRate, sweep[1].diskHitRate,
                sweep[1].warmP99Us, shift.preHitRate, shift.postHitRate,
                scan.hotBefore, scan.hotAfter, scan.hotBefore - scan.hotAfter);

  std::printf("\nJSON %s\n",
              ("{\"bench\":\"proxy_cache\",\"files\":" + std::to_string(kFiles) +
               ",\"block_size\":" + std::to_string(kBlockSize) +
               ",\"hit_rate\":" + std::to_string(hitRate) +
               ",\"evictions\":" + std::to_string(cacheStats.evictions) +
               ",\"direct\":" + StatsJson(directLat) +
               ",\"cold_miss\":" + StatsJson(coldLat) +
               ",\"warm_hit\":" + StatsJson(warmLat) +
               ",\"sweep\":" + sweepJson + extraJson + "}")
                  .c_str());

  const bool warmFaster = warmLat.count() > 0 && coldLat.count() > 0 &&
                          warmLat.MeanNanos() < coldLat.MeanNanos();
  const bool scanResistant = scan.hotBefore - scan.hotAfter < 0.05;
  std::printf("warm hit faster than cold miss: %s\n", warmFaster ? "yes" : "NO");
  std::printf("scan dents hot set by < 5 points: %s\n", scanResistant ? "yes" : "NO");
  return warmFaster && scanResistant ? 0 : 1;
}

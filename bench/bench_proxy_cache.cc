// E-PCACHE — proxy cache tier: cold-miss vs warm-hit vs direct-to-cluster
// access latency, and the hit rate a Zipf workload reaches against a cache
// smaller than the working set.
//
// An XCache-style proxy absorbs the cluster's redirection cost: a warm hit
// is one client<->proxy round trip, while a cold miss pays that round trip
// plus the origin open/read (resolver, redirects, leaf I/O) behind it, and
// a direct access pays the cluster path on every request. All three are
// measured in the same discrete-event simulation, so the numbers are the
// protocol's, not the host machine's.
//
// Output: a human table plus one JSON line (machine-scrapable) with the
// per-class latency stats and the measured hit rate.
#include <cinttypes>

#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"

namespace scalla {
namespace {

constexpr std::size_t kFiles = 200;
constexpr std::uint32_t kBlockSize = 4096;
constexpr std::uint32_t kBlocksPerFile = 4;       // 16 KiB files
constexpr std::size_t kProxyRequests = 4000;
constexpr std::size_t kDirectRequests = 800;
constexpr double kZipfExponent = 1.1;

std::string FilePath(std::size_t i) { return "/store/f" + std::to_string(i); }

struct Access {
  proto::XrdErr err = proto::XrdErr::kNone;
  Duration elapsed{};
};

// One full client access — open, read `length` at `offset`, close — timed
// in virtual time.
Access TimedAccess(sim::SimCluster& cluster, client::ScallaClient& c,
                   const std::string& path, std::uint64_t offset,
                   std::uint32_t length) {
  Access out;
  const TimePoint start = cluster.engine().Now();
  const auto open = cluster.OpenAndWait(c, path, cms::AccessMode::kRead, false);
  if (open.err != proto::XrdErr::kNone) {
    out.err = open.err;
    return out;
  }
  auto readErr = std::make_shared<std::optional<proto::XrdErr>>();
  c.Read(open.file, offset, length,
         [readErr](proto::XrdErr err, std::string) { *readErr = err; });
  cluster.engine().RunUntilPredicate([readErr] { return readErr->has_value(); },
                                     cluster.engine().Now() + std::chrono::seconds(30));
  auto closed = std::make_shared<std::optional<proto::XrdErr>>();
  c.Close(open.file, [closed](proto::XrdErr err) { *closed = err; });
  cluster.engine().RunUntilPredicate([closed] { return closed->has_value(); },
                                     cluster.engine().Now() + std::chrono::seconds(30));
  out.err = readErr->value_or(proto::XrdErr::kIo);
  out.elapsed = cluster.engine().Now() - start;
  return out;
}

std::string StatsJson(const util::LatencyRecorder& r) {
  const auto pcts = r.PercentilesNanos({0.5, 0.99});
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"n\":%zu,\"mean_us\":%.2f,\"p50_us\":%.2f,\"p99_us\":%.2f}",
                r.count(), r.MeanNanos() / 1e3,
                static_cast<double>(pcts[0]) / 1e3,
                static_cast<double>(pcts[1]) / 1e3);
  return buf;
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;

  sim::ClusterSpec spec;
  spec.servers = 8;
  spec.withProxy = true;
  spec.proxyCache.blockSize = kBlockSize;
  // Half the working set fits: the Zipf head lives in cache, the tail
  // keeps the eviction sweep honest.
  spec.proxyCache.capacityBytes =
      static_cast<std::uint64_t>(kFiles) * kBlocksPerFile * kBlockSize / 2;
  sim::SimCluster cluster(spec);
  cluster.Start();

  for (std::size_t i = 0; i < kFiles; ++i) {
    cluster.PlaceFile(i % cluster.ServerCount(), FilePath(i),
                      std::string(kBlocksPerFile * kBlockSize, 'd'));
  }

  util::Rng rng(0xca11e);
  util::ZipfSampler zipf(kFiles, kZipfExponent);

  // Baseline: the same workload straight at the cluster head.
  auto& direct = cluster.NewClient();
  util::LatencyRecorder directLat;
  for (std::size_t i = 0; i < kDirectRequests; ++i) {
    const std::size_t f = zipf.Sample(rng);
    const std::uint64_t offset = rng.NextBelow(kBlocksPerFile) * kBlockSize;
    const Access a = TimedAccess(cluster, direct, FilePath(f), offset, kBlockSize);
    if (a.err == proto::XrdErr::kNone) directLat.Record(a.elapsed);
  }

  // Through the proxy: classify each access by whether it touched origin.
  auto& proxied = cluster.NewProxyClient();
  util::LatencyRecorder coldLat, warmLat;
  obs::Counter& fetches =
      cluster.proxy()->metrics().GetCounter("pcache.origin_fetches");
  obs::Counter& originOpens =
      cluster.proxy()->metrics().GetCounter("pcache.origin_opens");
  for (std::size_t i = 0; i < kProxyRequests; ++i) {
    const std::size_t f = zipf.Sample(rng);
    const std::uint64_t offset = rng.NextBelow(kBlocksPerFile) * kBlockSize;
    const std::uint64_t before = fetches.Value() + originOpens.Value();
    const Access a = TimedAccess(cluster, proxied, FilePath(f), offset, kBlockSize);
    if (a.err != proto::XrdErr::kNone) continue;
    const bool touchedOrigin = fetches.Value() + originOpens.Value() > before;
    (touchedOrigin ? coldLat : warmLat).Record(a.elapsed);
  }

  const auto cacheStats = cluster.proxy()->cache().GetStats();
  const double hitRate =
      cacheStats.hits + cacheStats.misses == 0
          ? 0.0
          : static_cast<double>(cacheStats.hits) /
                static_cast<double>(cacheStats.hits + cacheStats.misses);

  bench::PrintHeader(
      "E-PCACHE", "proxy cache tier: warm hits dodge the cluster path",
      "a cached access costs one proxy round trip; the cluster's redirect "
      "latency is paid only on misses");
  bench::Table table({"access class", "n", "mean", "p50", "p99"});
  const auto addRow = [&table](const std::string& name,
                               const util::LatencyRecorder& r) {
    const auto pcts = r.PercentilesNanos({0.5, 0.99});
    table.AddRow({name, std::to_string(r.count()),
                  util::FormatNanos(r.MeanNanos()),
                  util::FormatNanos(static_cast<double>(pcts[0])),
                  util::FormatNanos(static_cast<double>(pcts[1]))});
  };
  addRow("direct to cluster", directLat);
  addRow("proxy cold miss", coldLat);
  addRow("proxy warm hit", warmLat);
  table.Print();
  std::printf("zipf(s=%.1f) over %zu files, %" PRIu64 "-byte blocks, cache %.0f%% "
              "of working set: hit rate %.1f%%, %" PRIu64 " evictions\n",
              kZipfExponent, kFiles, static_cast<std::uint64_t>(kBlockSize), 50.0,
              hitRate * 100.0, cacheStats.evictions);

  std::printf("\nJSON %s\n",
              ("{\"bench\":\"proxy_cache\",\"files\":" + std::to_string(kFiles) +
               ",\"block_size\":" + std::to_string(kBlockSize) +
               ",\"hit_rate\":" + std::to_string(hitRate) +
               ",\"evictions\":" + std::to_string(cacheStats.evictions) +
               ",\"direct\":" + StatsJson(directLat) +
               ",\"cold_miss\":" + StatsJson(coldLat) +
               ",\"warm_hit\":" + StatsJson(warmLat) + "}")
                  .c_str());

  const bool warmFaster = warmLat.count() > 0 && coldLat.count() > 0 &&
                          warmLat.MeanNanos() < coldLat.MeanNanos();
  std::printf("warm hit faster than cold miss: %s\n", warmFaster ? "yes" : "NO");
  return warmFaster ? 0 : 1;
}

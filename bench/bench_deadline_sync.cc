// E10 — section III-C2: a processing deadline on each location object
// synchronizes query issuance — "an active deadline implies that some
// thread is in the process of issuing queries", so concurrent clients for
// the same unknown file produce ONE flood, with "no additional locks or
// queues". The ablation removes the synchronization: every arriving client
// re-floods.
#include <variant>

#include "bench/bench_common.h"
#include "sim/cluster.h"

namespace scalla {
namespace {

using bench::Fmt;

struct Result {
  std::uint64_t queryMessages = 0;
  double meanLatencyUs = 0;
  std::size_t resolved = 0;
};

Result Run(int concurrentClients, bool deadlineSync) {
  sim::ClusterSpec spec;
  spec.servers = 32;
  spec.cms.deadlineSync = deadlineSync;
  // Response latency long enough that all clients arrive mid-resolution.
  spec.latency.linkLatency = std::chrono::milliseconds(5);
  sim::SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(7, "/store/thundering-herd", "x");
  cluster.fabric().ResetCounters();

  std::vector<client::ScallaClient*> clients;
  for (int c = 0; c < concurrentClients; ++c) clients.push_back(&cluster.NewClient());

  Result result;
  std::size_t done = 0;
  util::LatencyRecorder rec;
  const TimePoint t0 = cluster.engine().Now();
  for (auto* c : clients) {
    c->Open("/store/thundering-herd", cms::AccessMode::kRead, false,
            [&done, &rec, &cluster, t0](const client::OpenOutcome& o) {
              ++done;
              if (o.err == proto::XrdErr::kNone) {
                rec.Record(cluster.engine().Now() - t0);
              }
            });
  }
  cluster.engine().RunUntilPredicate(
      [&done, &clients] { return done == clients.size(); },
      cluster.engine().Now() + std::chrono::minutes(2));

  result.queryMessages =
      cluster.fabric().DeliveredOfType(proto::Message(proto::CmsQuery{}).index());
  result.meanLatencyUs = rec.MeanNanos() / 1e3;
  result.resolved = rec.count();
  return result;
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  bench::PrintHeader(
      "E10", "deadline-based query synchronization",
      "an active deadline prohibits multiple threads from issuing queries; "
      "concurrent clients for one unknown file cause a single flood");

  bench::Table table({"concurrent clients", "deadline sync", "query msgs",
                      "floods (32 msgs each)", "mean resolve latency"});
  std::uint64_t syncMsgs64 = 0, ablatedMsgs64 = 0;
  for (const int clients : {1, 4, 16, 64}) {
    for (const bool sync : {true, false}) {
      const auto r = Run(clients, sync);
      if (clients == 64) (sync ? syncMsgs64 : ablatedMsgs64) = r.queryMessages;
      table.AddRow({Fmt("%d", clients), sync ? "on (Scalla)" : "off",
                    Fmt("%llu", static_cast<unsigned long long>(r.queryMessages)),
                    Fmt("%.1f", static_cast<double>(r.queryMessages) / 32.0),
                    Fmt("%.0fus", r.meanLatencyUs)});
    }
  }
  table.Print();
  std::printf("With deadlines, query traffic is independent of the client count;\n"
              "without them every late-arriving client re-floods the cluster.\n\n");
  std::printf("JSON {\"bench\":\"deadline_sync\",\"clients\":64,"
              "\"query_msgs_synced\":%llu,\"query_msgs_ablated\":%llu}\n",
              static_cast<unsigned long long>(syncMsgs64),
              static_cast<unsigned long long>(ablatedMsgs64));
  return 0;
}

// E09 — section III-C1: deferring re-chaining of refreshed location
// objects to the purge pass makes the total cost linear, "where
// re-chaining each object individually results in a more quadratic cost"
// (the individual unlink must search the singly-linked window chain).
#include "bench/bench_common.h"
#include "baseline/window_chains.h"
#include "util/rng.h"

namespace scalla {
namespace {

using baseline::RechainPolicy;
using baseline::WindowChains;
using bench::Fmt;
using bench::Stopwatch;

struct Result {
  std::uint64_t traversals = 0;
  double wallMs = 0;
};

Result Run(RechainPolicy policy, std::size_t objects, double refreshFraction,
           util::Rng& rng) {
  WindowChains chains(policy);
  std::vector<std::uint64_t> ids;
  ids.reserve(objects);
  for (std::size_t i = 0; i < objects; ++i) ids.push_back(chains.Add(0));
  chains.ResetTraversals();

  const auto refreshes = static_cast<std::size_t>(refreshFraction * objects);
  Stopwatch timer;
  for (std::size_t i = 0; i < refreshes; ++i) {
    chains.Refresh(ids[rng.NextBelow(objects)], 1 + static_cast<int>(rng.NextBelow(8)));
  }
  chains.Purge(0);  // the deferred pass happens here
  return Result{chains.Traversals(), timer.ElapsedMs()};
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  bench::PrintHeader(
      "E09", "deferred vs immediate re-chaining of refreshed objects",
      "a single linear purge pass re-chains all moved objects; per-refresh "
      "re-chaining degenerates to quadratic total work");

  bench::Table table({"objects", "refresh fraction", "policy", "link traversals",
                      "traversals/object", "wall time"});
  util::Rng rng(13);
  double deferredPerObject = 0, immediatePerObject = 0;
  for (const std::size_t objects : {1000u, 5000u, 20000u, 50000u}) {
    for (const double fraction : {0.2, 1.0}) {
      for (const auto policy : {RechainPolicy::kDeferred, RechainPolicy::kImmediate}) {
        const auto r = Run(policy, objects, fraction, rng);
        const double perObject =
            static_cast<double>(r.traversals) / static_cast<double>(objects);
        if (objects == 50000u && fraction == 1.0) {
          (policy == RechainPolicy::kDeferred ? deferredPerObject
                                              : immediatePerObject) = perObject;
        }
        table.AddRow(
            {Fmt("%zu", objects), Fmt("%.0f%%", fraction * 100),
             policy == RechainPolicy::kDeferred ? "deferred (Scalla)" : "immediate",
             Fmt("%llu", static_cast<unsigned long long>(r.traversals)),
             Fmt("%.1f", perObject), Fmt("%.2fms", r.wallMs)});
      }
    }
  }
  table.Print();
  std::printf("Deferred traversals stay ~1/object regardless of scale; immediate\n"
              "traversals per object GROW with the chain length — the quadratic\n"
              "blow-up the paper's deferral avoids.\n\n");
  // Seeded traversal counters at the heaviest case (50000 objects, 100%
  // refresh); the wall-time column is host-sensitive and not gated.
  std::printf("\nJSON {\"bench\":\"rechaining\",\"objects\":50000,"
              "\"deferred_traversals_per_object\":%.2f,"
              "\"immediate_traversals_per_object\":%.2f}\n",
              deferredPerObject, immediatePerObject);
  return 0;
}

// E-FABRIC — epoll reactor I/O core: aggregate round-trip throughput as
// the number of concurrent closed-loop flows grows.
//
// Each flow is a client/echo-server pair with a window of one: the
// client sends a request and does not send the next until the echoed
// reply arrives. Loopback has no propagation delay, so every link
// carries an emulated one-way delay (injected through the fabric's own
// SetDelay fault hook, which paces frames with reactor timers rather
// than blocking anything). That makes a single flow latency-bound: it
// spends almost its whole round trip waiting, and its throughput is
// pinned near 1/RTT. The reactor's reason to exist is that a fixed pool
// of event-loop threads keeps thousands of such waits in flight at
// once — with N flows the delays overlap, and aggregate throughput
// rises toward N/RTT until the CPU saturates.
//
// Output: a human table plus one JSON line (machine-scrapable) with
// per-flow-count throughput and the 1 -> max scaling factor.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "net/tcp_fabric.h"
#include "proto/messages.h"

namespace scalla {
namespace {

// Band below the ephemeral port range (32768+): an outbound socket from
// an earlier run must never hold a port a listener here wants to bind.
constexpr std::uint16_t kBasePort = 14000;
constexpr int kRoundTripsPerFlow = 1500;
constexpr std::size_t kPayloadBytes = 256;
constexpr std::chrono::microseconds kLinkDelayOneWay{1000};

// Bounces every request straight back to its sender, from the reactor
// loop thread that delivered it (no executor: inline dispatch).
class EchoServer final : public net::MessageSink {
 public:
  EchoServer(net::Fabric& fabric, net::NodeAddr self)
      : fabric_(fabric), self_(self) {}

  void OnMessage(net::NodeAddr from, proto::Message message) override {
    fabric_.Send(self_, from, std::move(message));
  }

 private:
  net::Fabric& fabric_;
  net::NodeAddr self_;
};

// Window-1 closed loop: each reply releases exactly one more request.
class ClosedLoopClient final : public net::MessageSink {
 public:
  ClosedLoopClient(net::Fabric& fabric, net::NodeAddr self, net::NodeAddr server,
                   int roundTrips)
      : fabric_(fabric), self_(self), server_(server), remaining_(roundTrips) {}

  void Start() { SendOne(); }

  void OnMessage(net::NodeAddr, proto::Message) override {
    bool finished = false;
    {
      std::lock_guard lock(mu_);
      if (--remaining_ <= 0) {
        done_ = true;
        finished = true;
      }
    }
    if (finished) {
      cv_.notify_all();
    } else {
      SendOne();
    }
  }

  bool WaitDone(std::chrono::seconds timeout) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return done_; });
  }

 private:
  void SendOne() {
    proto::XrdWrite request;
    request.data.assign(kPayloadBytes, 'x');
    fabric_.Send(self_, server_, std::move(request));
  }

  net::Fabric& fabric_;
  const net::NodeAddr self_;
  const net::NodeAddr server_;
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
  bool done_ = false;
};

struct RunResult {
  int flows = 0;
  double elapsedSec = 0;
  double roundTripsPerSec = 0;
  bool complete = false;
};

RunResult RunWithFlows(int flows, std::uint16_t basePort) {
  net::TcpFabric fabric(basePort);
  // Clients at 1+i, echo servers at 100+i; both ends are registered
  // endpoints so replies flow over a real server->client connection.
  std::vector<std::unique_ptr<EchoServer>> servers;
  std::vector<std::unique_ptr<ClosedLoopClient>> clients;
  for (int i = 0; i < flows; ++i) {
    const auto clientAddr = static_cast<net::NodeAddr>(1 + i);
    const auto serverAddr = static_cast<net::NodeAddr>(100 + i);
    servers.push_back(std::make_unique<EchoServer>(fabric, serverAddr));
    clients.push_back(std::make_unique<ClosedLoopClient>(
        fabric, clientAddr, serverAddr, kRoundTripsPerFlow));
    if (!fabric.Register(serverAddr, servers.back().get(), nullptr) ||
        !fabric.Register(clientAddr, clients.back().get(), nullptr)) {
      std::fprintf(stderr, "bench_fabric: Register failed for flow %d "
                   "(ports %u/%u busy?)\n", i,
                   static_cast<unsigned>(basePort + serverAddr),
                   static_cast<unsigned>(basePort + clientAddr));
      RunResult failed;
      failed.flows = flows;
      return failed;  // complete=false fails the bench loudly
    }
    // Loopback has no propagation delay; emulate a real link both ways.
    fabric.SetDelay(clientAddr, serverAddr, kLinkDelayOneWay);
    fabric.SetDelay(serverAddr, clientAddr, kLinkDelayOneWay);
  }

  const auto start = std::chrono::steady_clock::now();
  for (auto& client : clients) client->Start();
  bool complete = true;
  for (auto& client : clients) {
    complete &= client->WaitDone(std::chrono::seconds(120));
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Endpoints unregister before the sinks die with this frame.
  for (int i = 0; i < flows; ++i) {
    fabric.Unregister(static_cast<net::NodeAddr>(1 + i));
    fabric.Unregister(static_cast<net::NodeAddr>(100 + i));
  }

  RunResult out;
  out.flows = flows;
  out.elapsedSec = elapsed;
  out.roundTripsPerSec =
      elapsed > 0 ? static_cast<double>(flows) * kRoundTripsPerFlow / elapsed : 0;
  out.complete = complete;
  return out;
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;

  bench::PrintHeader(
      "E-FABRIC",
      "epoll reactor: closed-loop round-trip throughput vs concurrent flows",
      "a window-1 flow over a 2ms-RTT link is latency-bound, so a fixed "
      "loop-thread pool that overlaps many in-flight waits scales aggregate "
      "throughput with the flow count while each flow still pays full RTT");

  const std::vector<int> flowCounts = {1, 2, 4, 8, 16, 32};
  std::vector<RunResult> results;
  std::uint16_t port = kBasePort;
  for (const int n : flowCounts) {
    results.push_back(RunWithFlows(n, port));
    port = static_cast<std::uint16_t>(port + 256);  // fresh band per run
  }

  bench::Table table({"flows", "round trips", "elapsed", "rt/sec", "complete"});
  for (const auto& r : results) {
    char elapsed[32], rate[32];
    std::snprintf(elapsed, sizeof elapsed, "%.3fs", r.elapsedSec);
    std::snprintf(rate, sizeof rate, "%.0f", r.roundTripsPerSec);
    table.AddRow({std::to_string(r.flows),
                  std::to_string(r.flows * kRoundTripsPerFlow), elapsed, rate,
                  r.complete ? "yes" : "NO"});
  }
  table.Print();

  const double single = results.front().roundTripsPerSec;
  const double widest = results.back().roundTripsPerSec;
  const double scaling = single > 0 ? widest / single : 0;
  std::printf("%zu-byte requests, %d round trips per flow, %lldus emulated "
              "one-way link delay; 1 -> %d flow scaling factor %.2fx\n",
              kPayloadBytes, kRoundTripsPerFlow,
              static_cast<long long>(kLinkDelayOneWay.count()),
              results.back().flows, scaling);

  std::string runsJson = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) runsJson += ",";
    runsJson += "{\"senders\":" + std::to_string(r.flows) +
                ",\"elapsed_sec\":" + std::to_string(r.elapsedSec) +
                ",\"round_trips_per_sec\":" + std::to_string(r.roundTripsPerSec) +
                ",\"complete\":" + (r.complete ? "true" : "false") + "}";
  }
  runsJson += "]";
  std::printf("\nJSON %s\n",
              ("{\"bench\":\"fabric\",\"payload_bytes\":" + std::to_string(kPayloadBytes) +
               ",\"round_trips_per_flow\":" + std::to_string(kRoundTripsPerFlow) +
               ",\"link_delay_us\":" + std::to_string(kLinkDelayOneWay.count()) +
               ",\"scaling_factor\":" + std::to_string(scaling) +
               ",\"runs\":" + runsJson + "}")
                  .c_str());

  bool ok = scaling >= 4.0;
  for (const auto& r : results) ok &= r.complete;
  std::printf("reactor amortisation scales round-trip throughput: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

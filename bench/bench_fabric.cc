// E-FABRIC — TCP fabric send-path concurrency: aggregate throughput as
// the number of concurrent senders grows.
//
// The old fabric serialised every Send() behind one global mutex, so a
// slow or stalled peer throttled the whole process. The reworked fabric
// gives each (from,to) pair its own bounded queue and writer thread;
// independent flows should therefore scale with the number of senders
// instead of contending on a single lock.
//
// Each sender drives its own receiver over a real loopback socket; the
// run measures wall-clock time until every receiver has counted all
// frames. Output: a human table plus one JSON line (machine-scrapable)
// with per-sender-count throughput and the scaling factor.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/tcp_fabric.h"
#include "proto/messages.h"

namespace scalla {
namespace {

constexpr std::uint16_t kBasePort = 33000;
constexpr int kMessagesPerSender = 4000;
constexpr std::size_t kPayloadBytes = 256;

// Counts delivered frames; the bench only needs arrival totals.
class CountingSink final : public net::MessageSink {
 public:
  void OnMessage(net::NodeAddr, proto::Message) override {
    std::lock_guard lock(mu_);
    ++count_;
    cv_.notify_all();
  }

  bool WaitCount(int want, std::chrono::seconds timeout) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return count_ >= want; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

struct RunResult {
  int senders = 0;
  double elapsedSec = 0;
  double msgsPerSec = 0;
  bool complete = false;
};

RunResult RunWithSenders(int senders, std::uint16_t basePort) {
  net::TcpFabricConfig config;
  config.maxQueuedMessages = 65536;  // larger than any in-flight backlog here
  std::vector<std::unique_ptr<CountingSink>> sinks;  // outlive the fabric
  net::TcpFabric fabric(basePort, config);

  for (int i = 0; i < senders; ++i) {
    sinks.push_back(std::make_unique<CountingSink>());
    // Receiver for sender i listens at addr 100+i; senders (addr 1+i)
    // stay unregistered — the bench only pushes frames one way.
    fabric.Register(static_cast<net::NodeAddr>(100 + i), sinks.back().get(), nullptr);
  }

  proto::XrdWrite payload;
  payload.data.assign(kPayloadBytes, 'x');

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < senders; ++i) {
    threads.emplace_back([&fabric, &payload, i] {
      const auto from = static_cast<net::NodeAddr>(1 + i);
      const auto to = static_cast<net::NodeAddr>(100 + i);
      for (int m = 0; m < kMessagesPerSender; ++m) fabric.Send(from, to, payload);
    });
  }
  for (auto& t : threads) t.join();

  bool complete = true;
  for (auto& sink : sinks) {
    complete &= sink->WaitCount(kMessagesPerSender, std::chrono::seconds(30));
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  RunResult out;
  out.senders = senders;
  out.elapsedSec = elapsed;
  out.msgsPerSec =
      elapsed > 0 ? static_cast<double>(senders) * kMessagesPerSender / elapsed : 0;
  out.complete = complete;
  return out;
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;

  bench::PrintHeader("E-FABRIC",
                     "per-peer writer queues: send throughput vs concurrent senders",
                     "independent flows no longer contend on a global send lock, so "
                     "aggregate throughput grows with the number of senders");

  const std::vector<int> senderCounts = {1, 2, 4, 8};
  std::vector<RunResult> results;
  std::uint16_t port = kBasePort;
  for (const int n : senderCounts) {
    results.push_back(RunWithSenders(n, port));
    port = static_cast<std::uint16_t>(port + 256);  // fresh band per run
  }

  bench::Table table({"senders", "messages", "elapsed", "msgs/sec", "complete"});
  for (const auto& r : results) {
    char elapsed[32], rate[32];
    std::snprintf(elapsed, sizeof elapsed, "%.3fs", r.elapsedSec);
    std::snprintf(rate, sizeof rate, "%.0f", r.msgsPerSec);
    table.AddRow({std::to_string(r.senders),
                  std::to_string(r.senders * kMessagesPerSender), elapsed, rate,
                  r.complete ? "yes" : "NO"});
  }
  table.Print();

  const double single = results.front().msgsPerSec;
  const double best = [&] {
    double b = 0;
    for (const auto& r : results) b = std::max(b, r.msgsPerSec);
    return b;
  }();
  const double scaling = single > 0 ? best / single : 0;
  std::printf("%zu-byte frames, %d per sender; best/single scaling factor %.2fx\n",
              kPayloadBytes, kMessagesPerSender, scaling);

  std::string runsJson = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) runsJson += ",";
    runsJson += "{\"senders\":" + std::to_string(r.senders) +
                ",\"elapsed_sec\":" + std::to_string(r.elapsedSec) +
                ",\"msgs_per_sec\":" + std::to_string(r.msgsPerSec) +
                ",\"complete\":" + (r.complete ? "true" : "false") + "}";
  }
  runsJson += "]";
  std::printf("\nJSON %s\n",
              ("{\"bench\":\"fabric\",\"payload_bytes\":" + std::to_string(kPayloadBytes) +
               ",\"messages_per_sender\":" + std::to_string(kMessagesPerSender) +
               ",\"scaling_factor\":" + std::to_string(scaling) +
               ",\"runs\":" + runsJson + "}")
                  .c_str());

  bool ok = scaling > 1.0;
  for (const auto& r : results) ok &= r.complete;
  std::printf("throughput scales with senders: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

// E12 — section V: Scalla servers register by declaring export PREFIXES,
// never file manifests, so "node registration and deregistration are
// extremely light" and "clusters of hundreds of nodes can begin to serve
// files within seconds of restarting". A GFS-style central directory must
// receive every server's full manifest before its map is complete (the
// paper recalls manifest submission causing minutes of delay per server).
#include "bench/bench_common.h"
#include "baseline/central_directory.h"
#include "sim/cluster.h"
#include "util/rng.h"

namespace scalla {
namespace {

using bench::Fmt;
using bench::Stopwatch;

void TableRegistrationCost() {
  std::printf("Registration payload and master-side work per joining server:\n\n");
  bench::Table table({"files/server", "scheme", "bytes sent", "entries updated",
                      "master cpu"});
  for (const std::size_t files : {10000u, 100000u, 1000000u}) {
    {
      // Scalla: the login message carries a handful of prefixes.
      const std::vector<std::string> exports = {"/store/data", "/store/mc"};
      std::size_t bytes = 0;
      for (const auto& e : exports) bytes += e.size() + 4;
      cms::CmsConfig config;
      util::ManualClock clock;
      cms::Membership membership(config, clock);
      Stopwatch timer;
      membership.Login("server", exports);
      table.AddRow({Fmt("%zu", files), "scalla prefix login", Fmt("%zuB", bytes),
                    "2 prefixes", Fmt("%.1fus", timer.ElapsedNs() / 1e3)});
    }
    {
      baseline::CentralDirectory dir;
      std::vector<std::string> manifest;
      manifest.reserve(files);
      for (std::size_t i = 0; i < files; ++i) {
        manifest.push_back(util::MakeFilePath(i / 997, i % 997));
      }
      Stopwatch timer;
      const std::uint64_t bytes = dir.RegisterServer(0, manifest);
      table.AddRow({Fmt("%zu", files), "central full manifest",
                    Fmt("%.1fMB", static_cast<double>(bytes) / 1e6),
                    Fmt("%zu files", files), Fmt("%.1fms", timer.ElapsedMs())});
    }
  }
  table.Print();
}

double TableRestartToService() {
  std::printf("Cluster restart to first served file, 64 servers. Scalla is\n"
              "measured on the simulated cluster (login + first open, virtual\n"
              "time); the central design adds modeled manifest transfer at 1GbE\n"
              "plus the measured master-side insert time.\n\n");
  bench::Table table({"files/server", "scalla restart->serve", "central restart->serve",
                      "ratio"});
  double lastScallaSeconds = 0;
  for (const std::size_t files : {10000u, 100000u, 1000000u}) {
    double scallaSeconds = 0;
    {
      sim::ClusterSpec spec;
      spec.servers = 64;
      sim::SimCluster cluster(spec);
      const TimePoint t0 = cluster.engine().Now();
      cluster.Start();  // every server logs in
      cluster.PlaceFile(9, "/store/first", "x");
      auto& client = cluster.NewClient();
      const auto open = cluster.OpenAndWait(client, "/store/first",
                                            cms::AccessMode::kRead, false);
      scallaSeconds = open.err == proto::XrdErr::kNone
                          ? std::chrono::duration<double>(cluster.engine().Now() - t0).count()
                          : -1;
    }
    double centralSeconds = 0;
    {
      baseline::CentralDirectory dir;
      std::vector<std::string> manifest;
      for (std::size_t i = 0; i < files; ++i) {
        manifest.push_back(util::MakeFilePath(i / 997, i % 997));
      }
      Stopwatch cpu;
      std::uint64_t totalBytes = 0;
      for (int s = 0; s < 64; ++s) totalBytes += dir.RegisterServer(s, manifest);
      const double cpuSeconds = cpu.ElapsedNs() / 1e9;
      const double wireSeconds = static_cast<double>(totalBytes) / (125e6);  // 1GbE
      centralSeconds = cpuSeconds + wireSeconds;
    }
    lastScallaSeconds = scallaSeconds;
    table.AddRow({Fmt("%zu", files), Fmt("%.3fs", scallaSeconds),
                  Fmt("%.1fs", centralSeconds),
                  Fmt("%.0fx", centralSeconds / scallaSeconds)});
  }
  table.Print();
  std::printf("Scalla's restart cost is independent of the file population —\n"
              "the trade-off is discovery traffic on first access per file\n"
              "(quantified in E02/E06) and no global file listing (the cnsd\n"
              "provides one out of band).\n\n");
  return lastScallaSeconds;
}

}  // namespace
}  // namespace scalla

int main() {
  scalla::bench::PrintHeader(
      "E12", "registration cost: export prefixes vs full manifests",
      "registration is extremely light; restart-to-service takes seconds and "
      "is independent of the number of files hosted");
  scalla::TableRegistrationCost();
  const double restartSeconds = scalla::TableRestartToService();
  // Scalla's restart->serve time is virtual-clock deterministic and
  // independent of the file population; the central-directory column mixes
  // in host cpu time, so only the Scalla side is gated.
  std::printf("\nJSON {\"bench\":\"registration\",\"servers\":64,"
              "\"scalla_restart_to_serve_s\":%.4f}\n",
              restartSeconds);
  return 0;
}

// Campaign sweep: runs every library campaign from the scenario factory
// (sim/scenario.h) and reports each one's claim-check verdicts. One JSON
// line per campaign (bench tag "campaign.<name>") so the regression gate
// tracks warm per-level cost, latency-vs-load slope and correction
// accounting per scenario. The tier-2 million-client campaign lives in
// tests/campaign_test.cc, not here — this binary stays bench.sh-sized.
#include <cstdio>

#include "bench/bench_common.h"
#include "sim/scenario.h"

using namespace scalla;

int main() {
  bench::PrintHeader("E-CAMPAIGN", "scenario factory campaign library",
                     "per-level cost stays O(100us)-shaped, correction work per "
                     "death is O(1) in cached entries, redirection latency rises "
                     "with a very low linear slope as load increases");

  bench::Table table({"campaign", "servers", "depth", "opens", "errors",
                      "per-level", "slope us/client", "checks", "verdict"});
  bool allOk = true;
  std::vector<std::string> jsonLines;
  for (const auto& [name, run] : sim::CampaignRegistry()) {
    const sim::CampaignResult r = run();
    std::size_t passed = 0;
    for (const auto& c : r.checks) passed += c.pass ? 1 : 0;
    table.AddRow({r.name, std::to_string(r.servers), std::to_string(r.depth),
                  std::to_string(r.totalCompleted), std::to_string(r.totalErrors),
                  bench::Fmt("%.1fus", r.warmPerLevelUs),
                  bench::Fmt("%.3f", r.slopeUsPerClient),
                  bench::Fmt("%zu/%zu", passed, r.checks.size()),
                  r.ok() ? "PASS" : "FAIL"});
    if (!r.ok()) {
      allOk = false;
      for (const auto& c : r.checks) {
        if (!c.pass) {
          std::printf("  FAIL %s.%s: value %.3f vs bound %.3f\n", r.name.c_str(),
                      c.name.c_str(), c.value, c.bound);
        }
      }
    }
    jsonLines.push_back(r.JsonLine());
  }
  table.Print();

  for (const std::string& line : jsonLines) std::printf("\nJSON %s\n", line.c_str());
  return allOk ? 0 : 1;
}

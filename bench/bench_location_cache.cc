// PR8 — arena location cache vs the pointer-chased baseline it replaced.
//
// The claim: one contiguous slab of 128-byte records with 32-bit index
// links (djbdns cache.c style) holds the same 10M cached paths in fewer
// resident bytes per entry than per-node heap allocation with 64-bit
// pointers and std::string keys, with look-up throughput no worse.
//
// Each implementation runs in a forked child so RSS is attributed
// cleanly; the child reports its numbers over a pipe. Entry count is
// SCALLA_BENCH_CACHE_ENTRIES (default 10M).
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/pointer_location_cache.h"
#include "bench/bench_common.h"
#include "cms/correction_state.h"
#include "cms/location_cache.h"
#include "util/clock.h"
#include "util/rng.h"

namespace scalla {
namespace {

struct RunResult {
  double buildSeconds = 0;
  double bytesPerEntry = 0;
  double lookupsPerSec = 0;
  std::size_t liveObjects = 0;
};

// VmRSS of this process in bytes, from /proc/self/status.
std::size_t ReadRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::sscanf(line, "VmRSS: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

template <class Cache>
RunResult RunOne(std::size_t entries, std::size_t lookups) {
  cms::CmsConfig config;
  util::ManualClock clock;
  cms::CorrectionState corrections;
  ServerSet vm;
  for (int s = 0; s < 8; ++s) {
    corrections.OnConnect(s);
    vm.set(s);
  }

  // Pre-generate the look-up sample before the RSS baseline so driver
  // memory is not charged to the cache.
  const std::size_t sample = std::min<std::size_t>(entries, 1u << 20);
  std::vector<std::string> probes;
  probes.reserve(sample);
  for (std::size_t i = 0; i < sample; ++i) {
    probes.push_back(util::MakeFilePath(i / 997, i % 997));
  }

  const std::size_t rss0 = ReadRssBytes();
  Cache cache(config, clock, corrections);

  RunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < entries; ++i) {
    cache.Lookup(util::MakeFilePath(i / 997, i % 997), vm, ServerSet::None(),
                 Cache::AddPolicy::kCreate);
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.buildSeconds = std::chrono::duration<double>(t1 - t0).count();

  const std::size_t rss1 = ReadRssBytes();
  const auto stats = cache.GetStats();
  r.liveObjects = stats.liveObjects;
  r.bytesPerEntry = static_cast<double>(rss1 - rss0) /
                    static_cast<double>(stats.liveObjects ? stats.liveObjects : 1);

  util::Rng rng(42);
  const auto t2 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < lookups; ++i) {
    const auto& path = probes[rng.NextBelow(sample)];
    cache.Lookup(path, vm, ServerSet::None(), Cache::AddPolicy::kFindOnly);
  }
  const auto t3 = std::chrono::steady_clock::now();
  r.lookupsPerSec =
      static_cast<double>(lookups) / std::chrono::duration<double>(t3 - t2).count();
  return r;
}

// Forks, runs `fn` in the child, and receives its RunResult over a pipe.
template <class Fn>
RunResult InChild(Fn fn) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(2);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(2);
  }
  if (pid == 0) {
    close(fds[0]);
    const RunResult r = fn();
    ssize_t n = write(fds[1], &r, sizeof(r));
    _exit(n == sizeof(r) ? 0 : 1);
  }
  close(fds[1]);
  RunResult r;
  const ssize_t n = read(fds[0], &r, sizeof(r));
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (n != sizeof(r) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "child run failed\n");
    std::exit(2);
  }
  return r;
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  std::size_t entries = 10'000'000;
  if (const char* env = std::getenv("SCALLA_BENCH_CACHE_ENTRIES")) {
    entries = std::strtoull(env, nullptr, 10);
  }
  const std::size_t lookups = std::min<std::size_t>(entries * 2, 20'000'000);

  bench::PrintHeader(
      "PR8", "arena location cache vs pointer-chased baseline",
      "a contiguous 128B-record arena with 32-bit index links stores the "
      "same entries in fewer resident bytes each, look-ups no slower");

  const RunResult arena =
      InChild([&] { return RunOne<cms::LocationCache>(entries, lookups); });
  const RunResult pointer =
      InChild([&] { return RunOne<baseline::PointerLocationCache>(entries, lookups); });

  bench::Table table({"implementation", "entries", "build s", "bytes/entry",
                      "lookups/s"});
  table.AddRow({"arena (this PR)", bench::Fmt("%zu", arena.liveObjects),
                bench::Fmt("%.2f", arena.buildSeconds),
                bench::Fmt("%.1f", arena.bytesPerEntry),
                bench::Fmt("%.2fM", arena.lookupsPerSec / 1e6)});
  table.AddRow({"pointer baseline", bench::Fmt("%zu", pointer.liveObjects),
                bench::Fmt("%.2f", pointer.buildSeconds),
                bench::Fmt("%.1f", pointer.bytesPerEntry),
                bench::Fmt("%.2fM", pointer.lookupsPerSec / 1e6)});
  table.Print();

  const double shrink = pointer.bytesPerEntry > 0
                            ? arena.bytesPerEntry / pointer.bytesPerEntry
                            : 0;
  std::printf("resident footprint: %.1f%% of the pointer baseline\n",
              shrink * 100);

  std::printf(
      "JSON {\"bench\":\"location_cache\",\"entries\":%zu,"
      "\"arena_bytes_per_entry\":%.1f,\"pointer_bytes_per_entry\":%.1f,"
      "\"arena_lookups_per_sec\":%.0f,\"pointer_lookups_per_sec\":%.0f}\n",
      arena.liveObjects, arena.bytesPerEntry, pointer.bytesPerEntry,
      arena.lookupsPerSec, pointer.lookupsPerSec);

  // Claim check: smaller footprint, throughput no worse (10% wall-clock
  // tolerance for a shared machine).
  const bool ok = arena.bytesPerEntry < pointer.bytesPerEntry &&
                  arena.lookupsPerSec >= 0.9 * pointer.lookupsPerSec;
  if (!ok) std::fprintf(stderr, "CLAIM CHECK FAILED\n");
  return ok ? 0 : 1;
}

// Shared helpers for the experiment harness binaries: aligned table
// printing in the style of the paper-reproduction reports, plus a tiny
// wall-clock stopwatch for foreground-pause measurements.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace scalla::bench {

inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& claim) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), title.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto printRow = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]),
                    c < row.size() ? row[c].c_str() : "");
      }
      std::printf("\n");
    };
    printRow(columns_);
    std::string sep;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      sep.append(widths[c], '-');
      sep.append("  ");
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) printRow(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline std::string Fmt(const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedNs() const {
    return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start_)
                                   .count());
  }
  double ElapsedMs() const { return ElapsedNs() / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace scalla::bench

// E06 — section III-B and [2]: the request-rarely-respond protocol (only
// holders answer; silence is "no") "is provably the most efficient way of
// maintaining location information in the event that less than half the
// servers have the file". The always-respond baseline sends an explicit
// negative from every non-holder.
//
// We sweep the replication fraction on a 32-server cluster and count the
// actual response messages the fabric delivers per resolution, plus the
// latency trade-off for files that do NOT exist (where always-respond
// could answer early but rarely-respond must wait out the delay).
#include <variant>

#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "sim/workload.h"

namespace scalla {
namespace {

using bench::Fmt;

template <typename T>
std::size_t VariantIndexOf() {
  return proto::Message(T{}).index();
}

struct ProtoCount {
  double queries = 0;
  double haves = 0;
  double nohaves = 0;
  double totalPerLocate = 0;
};

ProtoCount CountMessages(int servers, int replicas, bool alwaysRespond,
                         std::size_t files) {
  sim::ClusterSpec spec;
  spec.servers = servers;
  spec.alwaysRespond = alwaysRespond;
  sim::SimCluster cluster(spec);
  cluster.Start();
  util::Rng rng(5);
  const auto paths = sim::PopulateFiles(cluster, files, replicas, rng);
  cluster.fabric().ResetCounters();

  auto& client = cluster.NewClient();
  for (const auto& path : paths) {
    cluster.OpenAndWait(client, path, cms::AccessMode::kRead, false);
  }
  const double n = static_cast<double>(files);
  ProtoCount count;
  count.queries =
      static_cast<double>(cluster.fabric().DeliveredOfType(VariantIndexOf<proto::CmsQuery>())) / n;
  count.haves =
      static_cast<double>(cluster.fabric().DeliveredOfType(VariantIndexOf<proto::CmsHave>())) / n;
  count.nohaves =
      static_cast<double>(cluster.fabric().DeliveredOfType(VariantIndexOf<proto::CmsNoHave>())) /
      n;
  count.totalPerLocate = count.queries + count.haves + count.nohaves;
  return count;
}

struct LowReplicationTotals {
  double rarely = 0;
  double always = 0;
};

LowReplicationTotals TableMessageCounts() {
  constexpr int kServers = 32;
  std::printf("Response traffic per first-time resolution, %d servers:\n\n", kServers);
  bench::Table table({"replicas", "holders/servers", "protocol", "queries",
                      "have", "no-have", "responses", "total msgs"});
  LowReplicationTotals totals;
  for (const int replicas : {1, 4, 8, 16, 24, 32}) {
    for (const bool always : {false, true}) {
      const auto c = CountMessages(kServers, replicas, always, 48);
      if (replicas == 4) (always ? totals.always : totals.rarely) = c.totalPerLocate;
      table.AddRow({Fmt("%d", replicas),
                    Fmt("%.0f%%", 100.0 * replicas / kServers),
                    always ? "always-respond" : "rarely-respond",
                    Fmt("%.1f", c.queries), Fmt("%.1f", c.haves),
                    Fmt("%.1f", c.nohaves), Fmt("%.1f", c.haves + c.nohaves),
                    Fmt("%.1f", c.totalPerLocate)});
    }
  }
  table.Print();
  std::printf("Rarely-respond sends only as many responses as there are holders;\n"
              "always-respond always sends one per server. The saving is largest at\n"
              "low replication (the common case for physics data sets) and vanishes\n"
              "as the holder fraction approaches 100%%.\n\n");
  return totals;
}

void TableNonexistentLatency() {
  std::printf("The trade-off: resolving a file that does not exist (32 servers).\n"
              "Rarely-respond cannot distinguish 'no' from 'slow' and must wait\n"
              "out the full delay; the explicit negatives would permit an early\n"
              "verdict at the cost of the message traffic above.\n\n");
  bench::Table table({"protocol", "verdict latency", "response msgs"});
  for (const bool always : {false, true}) {
    sim::ClusterSpec spec;
    spec.servers = 32;
    spec.alwaysRespond = always;
    spec.cms.deadline = std::chrono::seconds(5);
    sim::SimCluster cluster(spec);
    cluster.Start();
    cluster.fabric().ResetCounters();
    auto& client = cluster.NewClient();
    const TimePoint t0 = cluster.engine().Now();
    const auto open =
        cluster.OpenAndWait(client, "/store/nonexistent", cms::AccessMode::kRead, false);
    const double seconds =
        std::chrono::duration<double>(cluster.engine().Now() - t0).count();
    const auto nohaves =
        cluster.fabric().DeliveredOfType(VariantIndexOf<proto::CmsNoHave>());
    table.AddRow({always ? "always-respond" : "rarely-respond",
                  Fmt("%.2fs%s", seconds,
                      open.err == proto::XrdErr::kNotFound ? "" : " (!)"),
                  Fmt("%llu", static_cast<unsigned long long>(nohaves))});
  }
  table.Print();
  std::printf("(This reproduction keeps the rarely-respond verdict path for both\n"
              "protocols — as production Scalla does — so the negative responses\n"
              "are pure overhead; the table shows the delay both designs pay.)\n\n");
}

}  // namespace
}  // namespace scalla

int main() {
  scalla::bench::PrintHeader(
      "E06", "request-rarely-respond vs always-respond",
      "non-response as negative is most efficient when fewer than half the "
      "servers hold the file; the cost is the full-delay wait on negatives");
  const auto totals = scalla::TableMessageCounts();
  scalla::TableNonexistentLatency();
  // Deterministic fabric message counts at the paper's low-replication
  // sweet spot (4 holders of 32 servers).
  std::printf("\nJSON {\"bench\":\"query_protocol\",\"replicas\":4,\"servers\":32,"
              "\"rarely_msgs_per_locate\":%.2f,\"always_msgs_per_locate\":%.2f}\n",
              totals.rarely, totals.always);
  return 0;
}

// Ablation — replica selection criteria (paper section II-B3: "a
// selection is made based on configuration defined criteria (e.g., load,
// selection frequency, space, etc.)"). Not a numbered paper experiment;
// DESIGN.md lists it as a design-choice ablation. We replicate a hot file
// set across servers with skewed capabilities and compare how each
// criterion spreads the work.
#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "sim/workload.h"

namespace scalla {
namespace {

using bench::Fmt;

struct SpreadResult {
  double maxShare = 0;    // busiest server's share of opens
  double idealShare = 0;  // 1/replicas
  std::uint64_t slowServerOpens = 0;
};

SpreadResult Run(cms::SelectCriterion criterion, int servers, int replicas,
                 std::size_t opens) {
  sim::ClusterSpec spec;
  spec.servers = servers;
  spec.selection = criterion;
  spec.cms.deadline = std::chrono::milliseconds(500);
  sim::SimCluster cluster(spec);
  cluster.Start();

  // One hot file on `replicas` servers; server 0 (if a replica) reports
  // itself heavily loaded and nearly full.
  for (int r = 0; r < replicas; ++r) {
    cluster.PlaceFile(static_cast<std::size_t>(r), "/store/hot", "x");
  }
  cluster.server(0).ReportLoad(/*load=*/95, /*freeSpace=*/1 << 10);
  for (int r = 1; r < replicas; ++r) {
    cluster.server(static_cast<std::size_t>(r)).ReportLoad(5, std::uint64_t{1} << 34);
  }
  cluster.engine().RunUntilIdle();

  auto& client = cluster.NewClient();
  cluster.OpenAndWait(client, "/store/hot", cms::AccessMode::kRead, false);  // warm

  std::map<net::NodeAddr, std::uint64_t> hits;
  for (std::size_t i = 0; i < opens; ++i) {
    const auto open =
        cluster.OpenAndWait(client, "/store/hot", cms::AccessMode::kRead, false);
    if (open.err == proto::XrdErr::kNone) ++hits[open.file.node];
  }
  SpreadResult result;
  result.idealShare = 1.0 / replicas;
  for (const auto& [node, count] : hits) {
    result.maxShare = std::max(
        result.maxShare, static_cast<double>(count) / static_cast<double>(opens));
    if (node == cluster.server(0).config().addr) result.slowServerOpens = count;
  }
  return result;
}

const char* Name(cms::SelectCriterion c) {
  switch (c) {
    case cms::SelectCriterion::kRoundRobin: return "round-robin";
    case cms::SelectCriterion::kLoad: return "load";
    case cms::SelectCriterion::kSpace: return "space";
    case cms::SelectCriterion::kFrequency: return "frequency";
    case cms::SelectCriterion::kRandom: return "random";
  }
  return "?";
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  bench::PrintHeader(
      "ablation", "replica selection criteria",
      "selection among multiple holders uses configured criteria: load, "
      "selection frequency, space, etc. (section II-B3)");

  bench::Table table({"criterion", "busiest share", "ideal share",
                      "opens to overloaded server (of 400)"});
  std::uint64_t loadOverloadedOpens = 0, rrOverloadedOpens = 0;
  for (const auto criterion :
       {cms::SelectCriterion::kRoundRobin, cms::SelectCriterion::kRandom,
        cms::SelectCriterion::kFrequency, cms::SelectCriterion::kLoad,
        cms::SelectCriterion::kSpace}) {
    const auto r = Run(criterion, 8, 4, 400);
    if (criterion == cms::SelectCriterion::kLoad) loadOverloadedOpens = r.slowServerOpens;
    if (criterion == cms::SelectCriterion::kRoundRobin) rrOverloadedOpens = r.slowServerOpens;
    table.AddRow({Name(criterion), Fmt("%.0f%%", r.maxShare * 100),
                  Fmt("%.0f%%", r.idealShare * 100),
                  Fmt("%llu", static_cast<unsigned long long>(r.slowServerOpens))});
  }
  table.Print();
  std::printf("Round-robin / random / frequency spread evenly but keep sending a\n"
              "quarter of the traffic to the overloaded replica; load- and\n"
              "space-based selection steer entirely away from it (at the price of\n"
              "concentrating on the best server until reports change).\n\n");
  // Deterministic open counters: load-based selection must keep steering
  // around the overloaded replica while round-robin keeps hitting it.
  std::printf("\nJSON {\"bench\":\"selection\",\"opens\":400,"
              "\"load_overloaded_opens\":%llu,\"roundrobin_overloaded_opens\":%llu}\n",
              static_cast<unsigned long long>(loadOverloadedOpens),
              static_cast<unsigned long long>(rrOverloadedOpens));
  return 0;
}

// E02 — section II-B5: "requests for files whose information has been
// cached require less than 50us per tree level. Requests for unknown files
// incur an additional latency equal to the time it takes a leaf node to
// respond; increasing the redirection time to about 150us ... as more
// simultaneous requests need to be processed, the average redirection time
// ... rises with a very low linear slope".
//
// Absolute numbers depend on the latency model (we use a 25us one-way LAN
// link + 5us service, vs. the authors' 1GbE testbed); the SHAPE is what
// this harness reproduces: a constant per-level cost, a fixed cold-open
// premium, and a shallow linear load slope.
#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "sim/workload.h"

namespace scalla {
namespace {

using bench::Fmt;
using sim::ClusterSpec;
using sim::SimCluster;

ClusterSpec BaseSpec(int servers, int fanout) {
  ClusterSpec spec;
  spec.servers = servers;
  spec.fanout = fanout;
  return spec;
}

// Mean warm / cold open latency for one cluster shape.
struct ColdWarm {
  double coldUs = 0;
  double warmUs = 0;
  int depth = 0;
};

ColdWarm MeasureColdWarm(int servers, int fanout, std::size_t files) {
  SimCluster cluster(BaseSpec(servers, fanout));
  cluster.Start();
  util::Rng rng(42);
  const auto paths = sim::PopulateFiles(cluster, files, 1, rng);
  auto& client = cluster.NewClient();

  util::LatencyRecorder cold, warm;
  for (const auto& path : paths) {
    const TimePoint t0 = cluster.engine().Now();
    const auto open = cluster.OpenAndWait(client, path, cms::AccessMode::kRead, false);
    if (open.err == proto::XrdErr::kNone) cold.Record(cluster.engine().Now() - t0);
  }
  for (const auto& path : paths) {
    const TimePoint t0 = cluster.engine().Now();
    const auto open = cluster.OpenAndWait(client, path, cms::AccessMode::kRead, false);
    if (open.err == proto::XrdErr::kNone) warm.Record(cluster.engine().Now() - t0);
  }
  return ColdWarm{cold.MeanNanos() / 1e3, warm.MeanNanos() / 1e3, cluster.Depth()};
}

// Deterministic sim-time metrics surfaced in the JSON summary line that
// scripts/bench.sh collects and tools/bench_compare gates.
struct JsonMetrics {
  double warmPerLevelUs = 0;  // deepest shape in the per-level table
  double coldPremiumUs = 0;
  double slopeUsPerClient = 0;  // (mean@64 - mean@1) / 63
};

void TablePerLevel(JsonMetrics& json) {
  bench::Table table({"servers", "fanout", "tree depth", "warm open", "cold open",
                      "warm per level", "cold premium"});
  for (const auto& [servers, fanout] : std::vector<std::pair<int, int>>{
           {16, 64}, {16, 4}, {16, 2}, {64, 64}, {256, 16}}) {
    const ColdWarm r = MeasureColdWarm(servers, fanout, 64);
    table.AddRow({Fmt("%d", servers), Fmt("%d", fanout), Fmt("%d", r.depth),
                  Fmt("%.1fus", r.warmUs), Fmt("%.1fus", r.coldUs),
                  Fmt("%.1fus", r.warmUs / r.depth),
                  Fmt("%.1fus", r.coldUs - r.warmUs)});
    json.warmPerLevelUs = r.warmUs / r.depth;
    json.coldPremiumUs = r.coldUs - r.warmUs;
  }
  table.Print();
}

void TableLoadSlope(JsonMetrics& json) {
  std::printf("Load slope: closed-loop clients against a 32-server cluster\n"
              "(cache warm; each client keeps one open outstanding).\n\n");
  bench::Table table({"clients", "completed", "mean latency", "p99 latency",
                      "vs 1-client"});
  double base = 0;
  for (const int clients : {1, 2, 4, 8, 16, 32, 64}) {
    SimCluster cluster(BaseSpec(32, 64));
    cluster.Start();
    util::Rng rng(7);
    const auto paths = sim::PopulateFiles(cluster, 256, 2, rng);
    // Warm the manager cache first.
    auto& warmer = cluster.NewClient();
    for (const auto& path : paths) {
      cluster.OpenAndWait(warmer, path, cms::AccessMode::kRead, false);
    }
    const auto result = sim::RunClosedLoopLoad(cluster, static_cast<std::size_t>(clients),
                                               paths, 2000, 0.9, rng);
    const double mean = result.latency.MeanNanos() / 1e3;
    if (clients == 1) base = mean;
    if (clients == 64) json.slopeUsPerClient = (mean - base) / 63.0;
    table.AddRow({Fmt("%d", clients), Fmt("%zu", result.completed),
                  Fmt("%.1fus", mean),
                  Fmt("%.1fus",
                      static_cast<double>(result.latency.PercentileNanos(0.99)) / 1e3),
                  Fmt("%.2fx", mean / base)});
  }
  table.Print();
}

}  // namespace
}  // namespace scalla

int main() {
  scalla::bench::PrintHeader(
      "E02", "redirection latency: per-level cost, cold premium, load slope",
      "<50us/tree level cached; ~150us uncached; low linear slope under load");
  scalla::JsonMetrics json;
  scalla::TablePerLevel(json);
  scalla::TableLoadSlope(json);
  std::printf("\nJSON {\"bench\":\"redirection_latency\",\"warm_per_level_us\":%.3f,"
              "\"cold_premium_us\":%.3f,\"slope_us_per_client\":%.4f}\n",
              json.warmPerLevelUs, json.coldPremiumUs, json.slopeUsPerClient);
  return 0;
}

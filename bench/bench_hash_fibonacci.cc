// E01 — Figure 2 / footnote 4: "Despite the uniform distribution of CRC32,
// we found much higher collision rates with power-of-two sized tables
// compared to Fibonacci-sized", and "look-up time is constant" once the
// table stops growing.
//
// Why: CRC32 is linear over GF(2). File-name populations whose varying
// field strides through structured values (block-aligned counters, hex
// ids, fixed-width numbering — all common in physics data stores) produce
// hash values confined to affine subspaces; a power-of-two modulus keeps
// only the low bits of such values, so whole subspaces alias. A Fibonacci
// modulus folds every bit into the bucket index. The shape table sweeps
// key populations and reports measured collisions against the
// random-uniform ideal; the micro section times raw look-ups.
#include <benchmark/benchmark.h>

#include <cmath>

#include "baseline/chained_table.h"
#include "bench/bench_common.h"
#include "util/crc32.h"
#include "util/fibonacci.h"
#include "util/rng.h"

namespace scalla {
namespace {

using KeyGen = std::string (*)(std::size_t);

std::string HepRunFile(std::size_t i) {
  return util::MakeFilePath(i / 997, i % 997);
}
std::string Stride64(std::size_t i) {
  char b[64];
  std::snprintf(b, sizeof(b), "/store/blk%zu.dat", i * 64);
  return b;
}
std::string HexStride16(std::size_t i) {
  char b[64];
  std::snprintf(b, sizeof(b), "/store/AA%08zX.root", i * 16);
  return b;
}
std::string DatasetLike(std::size_t i) {
  char b[96];
  std::snprintf(b, sizeof(b), "/atlas/mc12_8TeV/NTUP/file.%08zu.root.%zu", i, i % 4);
  return b;
}

struct KeyShape {
  const char* name;
  KeyGen gen;
};
const KeyShape kShapes[] = {
    {"run/file paths", &HepRunFile},
    {"stride-64 names", &Stride64},
    {"hex stride-16", &HexStride16},
    {"dataset suffix", &DatasetLike},
};

// Expected collisions if hash values were uniform random: n - m(1-(1-1/m)^n).
double RandomIdealCollisions(double n, double m) {
  return n - m * (1.0 - std::pow(1.0 - 1.0 / m, n));
}

int CollisionsAt(const std::vector<std::uint32_t>& hashes, std::size_t buckets) {
  std::vector<std::uint8_t> seen(buckets, 0);
  int collisions = 0;
  for (const std::uint32_t h : hashes) {
    auto& b = seen[h % buckets];
    if (b != 0) ++collisions;
    if (b < 255) ++b;
  }
  return collisions;
}

// Worst-case collisions-vs-random-ideal ratio per sizing policy plus the
// final grown-table probe cost, for the JSON gate line.
struct JsonMetrics {
  double fibWorstVsIdeal = 0;
  double pow2WorstVsIdeal = 0;
  double finalProbesPerGet = 0;
};

JsonMetrics PrintShapeTable() {
  bench::PrintHeader("E01", "CRC32 dispersion vs table sizing policy",
                     "much higher collision rates with power-of-two sized "
                     "tables compared to Fibonacci-sized (footnote 4)");
  constexpr std::size_t kN = 100000;
  // Matched scale: the Fibonacci and power-of-two bucket counts bracket
  // the same ~0.5 load factor; the random-ideal column normalizes away
  // the residual size difference.
  const std::size_t fib = util::FibonacciAtLeast(kN * 2 - 1);  // 196418
  const std::size_t pow2 = std::size_t{1} << 18;               // 262144

  JsonMetrics json;
  bench::Table table({"key population", "modulus", "buckets", "collisions",
                      "random ideal", "vs ideal"});
  for (const auto& shape : kShapes) {
    std::vector<std::uint32_t> hashes;
    hashes.reserve(kN);
    for (std::size_t i = 0; i < kN; ++i) hashes.push_back(util::Crc32(shape.gen(i)));
    for (const auto& [label, buckets] :
         std::vector<std::pair<const char*, std::size_t>>{{"fibonacci", fib},
                                                          {"power-of-two", pow2}}) {
      const int measured = CollisionsAt(hashes, buckets);
      const double ideal = RandomIdealCollisions(static_cast<double>(kN),
                                                 static_cast<double>(buckets));
      const double ratio = measured / ideal;
      if (buckets == fib) {
        json.fibWorstVsIdeal = std::max(json.fibWorstVsIdeal, ratio);
      } else {
        json.pow2WorstVsIdeal = std::max(json.pow2WorstVsIdeal, ratio);
      }
      table.AddRow({shape.name, label, bench::Fmt("%zu", buckets),
                    bench::Fmt("%d", measured), bench::Fmt("%.0f", ideal),
                    bench::Fmt("%.2fx", ratio)});
    }
  }
  table.Print();
  std::printf(
      "Fibonacci moduli track the random ideal for EVERY key population;\n"
      "power-of-two moduli are erratic — sometimes lucky, but up to ~2x the\n"
      "ideal on stride-structured names, and growing a power-of-two table\n"
      "does not help (the aliasing lives in the discarded high bits).\n\n");

  // Growth behaviour: the paper says resizing ceases and look-up stays
  // constant; show probes/get as the table grows through Fibonacci sizes.
  std::printf("Look-up cost across growth (Fibonacci policy, run/file keys):\n\n");
  bench::Table growth({"entries", "buckets", "rehashes", "mean probes/get"});
  baseline::ChainedTable t(baseline::SizingPolicy::kFibonacci, 89);
  std::size_t next = 1000;
  for (std::size_t i = 0; i < 500000; ++i) {
    t.Put(HepRunFile(i), i);
    if (i + 1 == next) {
      t.ResetProbes();
      std::uint64_t v = 0;
      for (std::size_t k = 0; k <= i; k += 7) t.Get(HepRunFile(k), &v);
      json.finalProbesPerGet =
          static_cast<double>(t.Probes()) / static_cast<double>(i / 7 + 1);
      growth.AddRow({bench::Fmt("%zu", i + 1), bench::Fmt("%zu", t.Buckets()),
                     bench::Fmt("%zu", t.Rehashes()),
                     bench::Fmt("%.3f", json.finalProbesPerGet)});
      next *= 5;
    }
  }
  growth.Print();
  return json;
}

void BM_Lookup(benchmark::State& state, baseline::SizingPolicy policy) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(HepRunFile(i));
  baseline::ChainedTable table(policy, 89);
  for (std::size_t i = 0; i < keys.size(); ++i) table.Put(keys[i], i);
  std::size_t i = 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(keys[i], &v));
    i = (i + 1) % keys.size();
  }
}

BENCHMARK_CAPTURE(BM_Lookup, fibonacci, baseline::SizingPolicy::kFibonacci)
    ->Arg(10000)
    ->Arg(100000);
BENCHMARK_CAPTURE(BM_Lookup, pow2, baseline::SizingPolicy::kPowerOfTwo)
    ->Arg(10000)
    ->Arg(100000);
BENCHMARK_CAPTURE(BM_Lookup, prime, baseline::SizingPolicy::kPrime)
    ->Arg(10000)
    ->Arg(100000);

}  // namespace
}  // namespace scalla

int main(int argc, char** argv) {
  const scalla::JsonMetrics json = scalla::PrintShapeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // Deterministic dispersion metrics only — the wall-clock micro section
  // above is too host-sensitive to gate.
  std::printf("\nJSON {\"bench\":\"hash_fibonacci\",\"fib_worst_vs_ideal\":%.4f,"
              "\"pow2_worst_vs_ideal\":%.4f,\"final_probes_per_get\":%.4f}\n",
              json.fibWorstVsIdeal, json.pow2WorstVsIdeal, json.finalProbesPerGet);
  return 0;
}

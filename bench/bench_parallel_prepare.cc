// E08 — section III-B2: file creation (and offline-file access) forces a
// full-delay wait because non-existence is established by silence. The
// parallel prepare operation runs the look-ups in the background so that a
// client working through a list of files observes "at most a single full
// delay" externally.
//
// Two workloads: (a) bulk creation of N new files; (b) bulk access to N
// MSS-resident files (staging). Each with and without a prepare pass.
#include "bench/bench_common.h"
#include "sim/cluster.h"

namespace scalla {
namespace {

using bench::Fmt;
using cms::AccessMode;

std::vector<std::string> NewPaths(const char* stem, int n) {
  std::vector<std::string> paths;
  for (int i = 0; i < n; ++i) {
    paths.push_back(std::string("/store/") + stem + std::to_string(i));
  }
  return paths;
}

double CreateWorkloadSeconds(int files, bool withPrepare, Duration deadline) {
  sim::ClusterSpec spec;
  spec.servers = 8;
  spec.cms.deadline = deadline;
  sim::SimCluster cluster(spec);
  cluster.Start();
  auto& client = cluster.NewClient();
  const auto paths = NewPaths("new", files);

  const TimePoint t0 = cluster.engine().Now();
  if (withPrepare) {
    // Announce the upcoming creations; the cluster resolves non-existence
    // for every path in parallel in the background.
    (void)cluster.PrepareAndWait(client, paths, AccessMode::kWrite);
    cluster.engine().RunFor(deadline + std::chrono::milliseconds(200));
  }
  for (const auto& path : paths) {
    const auto open = cluster.OpenAndWait(client, path, AccessMode::kWrite, true,
                                          std::chrono::minutes(5));
    if (open.err != proto::XrdErr::kNone) return -1;
    std::optional<proto::XrdErr> closed;
    client.Close(open.file, [&closed](proto::XrdErr e) { closed = e; });
    cluster.engine().RunUntilPredicate([&closed] { return closed.has_value(); },
                                       cluster.engine().Now() + std::chrono::seconds(5));
  }
  return std::chrono::duration<double>(cluster.engine().Now() - t0).count();
}

double StagingWorkloadSeconds(int files, bool withPrepare, Duration stageDelay) {
  sim::ClusterSpec spec;
  spec.servers = 8;
  spec.withMss = true;
  spec.mss.stageDelay = stageDelay;
  spec.cms.deadline = std::chrono::seconds(1);
  sim::SimCluster cluster(spec);
  cluster.Start();
  const auto paths = NewPaths("tape", files);
  for (int i = 0; i < files; ++i) {
    cluster.mssStorage(static_cast<std::size_t>(i % 8))
        ->PutInMss(paths[static_cast<std::size_t>(i)], 1024);
  }
  auto& client = cluster.NewClient();
  const TimePoint t0 = cluster.engine().Now();
  if (withPrepare) {
    // Locate queries find the files pending; opens at the leaves kick the
    // stages. Prepare warms locations AND starts every stage in parallel
    // when the leaf receives the first open... here the prepare itself
    // triggers BeginStage on each hosting leaf via background locates
    // followed by the client's bulk open loop.
    (void)cluster.PrepareAndWait(client, paths, AccessMode::kRead);
    cluster.engine().RunFor(std::chrono::milliseconds(500));
    // Kick every stage by opening all files once without waiting (the
    // first open returns kWait immediately and staging proceeds).
    std::vector<int> done(static_cast<std::size_t>(files), 0);
    for (int i = 0; i < files; ++i) {
      client.Open(paths[static_cast<std::size_t>(i)], AccessMode::kRead, false,
                  [&done, i](const client::OpenOutcome& o) {
                    done[static_cast<std::size_t>(i)] = o.err == proto::XrdErr::kNone ? 1 : -1;
                  });
    }
    cluster.engine().RunUntilPredicate(
        [&done] {
          for (const int d : done) {
            if (d == 0) return false;
          }
          return true;
        },
        cluster.engine().Now() + std::chrono::hours(1));
  } else {
    for (const auto& path : paths) {
      const auto open = cluster.OpenAndWait(client, path, AccessMode::kRead, false,
                                            std::chrono::hours(1));
      if (open.err != proto::XrdErr::kNone) return -1;
    }
  }
  return std::chrono::duration<double>(cluster.engine().Now() - t0).count();
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  bench::PrintHeader(
      "E08", "parallel prepare: bulk creates and bulk staging",
      "each background look-up suffers a full delay, but externally at most "
      "a single full delay is encountered by the client");

  double createRatio16 = 0, stageRatio16 = 0;
  {
    const Duration deadline = std::chrono::seconds(2);
    std::printf("Bulk creation of N new files (full delay = %.0fs):\n\n",
                std::chrono::duration<double>(deadline).count());
    bench::Table table({"files", "without prepare", "with prepare", "ratio",
                        "ideal (1 delay)"});
    for (const int files : {1, 4, 8, 16}) {
      const double without = CreateWorkloadSeconds(files, false, deadline);
      const double with = CreateWorkloadSeconds(files, true, deadline);
      if (files == 16) createRatio16 = without / with;
      table.AddRow({Fmt("%d", files), Fmt("%.2fs", without), Fmt("%.2fs", with),
                    Fmt("%.1fx", without / with),
                    Fmt("%.2fs", std::chrono::duration<double>(deadline).count())});
    }
    table.Print();
    std::printf("Without prepare each create pays the full delay serially (N x delay);\n"
                "with prepare the delays overlap and the client sees ~one delay.\n\n");
  }

  {
    const Duration stage = std::chrono::seconds(60);
    std::printf("Bulk access to N MSS-resident files (stage = %.0fs each):\n\n",
                std::chrono::duration<double>(stage).count());
    bench::Table table({"files", "sequential opens", "prepare + opens", "ratio"});
    for (const int files : {2, 8, 16}) {
      const double without = StagingWorkloadSeconds(files, false, stage);
      const double with = StagingWorkloadSeconds(files, true, stage);
      if (files == 16) stageRatio16 = without / with;
      table.AddRow({Fmt("%d", files), Fmt("%.0fs", without), Fmt("%.0fs", with),
                    Fmt("%.1fx", without / with)});
    }
    table.Print();
  }
  // Virtual-clock speedup ratios at the widest fan-out (16 files).
  std::printf("\nJSON {\"bench\":\"parallel_prepare\",\"files\":16,"
              "\"create_speedup\":%.3f,\"staging_speedup\":%.3f}\n",
              createRatio16, stageRatio16);
  return 0;
}

// E13 — section IV-B: Qserv uses Scalla as its distributed dispatch layer;
// masters reach the worker hosting partition N simply by opening a path
// containing N ("there is no configuration for the number of nodes in the
// cluster"). We measure shard-dispatch throughput and query latency as
// workers are added with the data re-partitioned across them, plus the
// worker-loss behaviour Scalla's fault handling gives Qserv for free.
#include "bench/bench_common.h"
#include "qserv/master.h"
#include "qserv/worker.h"
#include "sim/cluster.h"

namespace scalla {
namespace {

using bench::Fmt;

class QservRig {
 public:
  QservRig(int workers, int chunks, std::size_t objects) : chunks_(chunks) {
    sim::ClusterSpec spec;
    spec.servers = workers;
    spec.cms.deadline = std::chrono::milliseconds(500);
    cluster_ = std::make_unique<sim::SimCluster>(spec);
    util::Rng rng(7);
    auto catalog = qserv::GenerateCatalog(objects, chunks, rng);
    for (int w = 0; w < workers; ++w) {
      oss_.push_back(std::make_unique<qserv::QservOss>(cluster_->engine().clock()));
    }
    for (auto& [chunk, rows] : catalog) {
      oss_[static_cast<std::size_t>(chunk % workers)]->HostChunk(chunk, std::move(rows));
    }
    for (int w = 0; w < workers; ++w) {
      auto& leaf = cluster_->server(static_cast<std::size_t>(w));
      xrd::NodeConfig cfg = leaf.config();
      cfg.exports = oss_[static_cast<std::size_t>(w)]->Exports();
      nodes_.push_back(std::make_unique<xrd::ScallaNode>(
          cfg, cluster_->engine(), cluster_->fabric(), oss_[static_cast<std::size_t>(w)].get()));
      cluster_->fabric().Register(cfg.addr, nodes_.back().get());
    }
    for (auto& n : nodes_) n->Start();
    cluster_->engine().RunUntilIdle();
    client_ = &cluster_->NewClient();
    master_ = std::make_unique<qserv::QservMaster>(*client_);
  }

  qserv::QueryResult Run(const std::string& text) {
    std::vector<int> chunks;
    for (int c = 0; c < chunks_; ++c) chunks.push_back(c);
    std::optional<qserv::QueryResult> out;
    master_->RunQuery(text, chunks, [&out](const qserv::QueryResult& r) { out = r; });
    cluster_->engine().RunUntilPredicate(
        [&out] { return out.has_value(); },
        cluster_->engine().Now() + std::chrono::minutes(5));
    qserv::QueryResult failed;
    failed.err = proto::XrdErr::kIo;
    return out.value_or(failed);
  }

  sim::SimCluster& cluster() { return *cluster_; }

 private:
  int chunks_;
  std::unique_ptr<sim::SimCluster> cluster_;
  std::vector<std::unique_ptr<qserv::QservOss>> oss_;
  std::vector<std::unique_ptr<xrd::ScallaNode>> nodes_;
  client::ScallaClient* client_ = nullptr;
  std::unique_ptr<qserv::QservMaster> master_;
};

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  bench::PrintHeader(
      "E13", "Qserv dispatch over Scalla",
      "masters reach partition data by path; node count needs no "
      "configuration; fault handling and location come from the Scalla layer");

  {
    std::printf("Query latency vs worker count (48 chunks, 20k objects,\n"
                "virtual time; first query pays location discovery, later ones\n"
                "ride the warm cache):\n\n");
    bench::Table table({"workers", "chunks/worker", "1st query", "warm query",
                        "warm shard rate"});
    for (const int workers : {2, 4, 8, 16}) {
      QservRig rig(workers, 48, 20000);
      const TimePoint t0 = rig.cluster().engine().Now();
      const auto first = rig.Run("COUNT");
      const double firstMs =
          std::chrono::duration<double>(rig.cluster().engine().Now() - t0).count() * 1e3;
      const TimePoint t1 = rig.cluster().engine().Now();
      const auto warm = rig.Run("AVG mag");
      const double warmMs =
          std::chrono::duration<double>(rig.cluster().engine().Now() - t1).count() * 1e3;
      table.AddRow({Fmt("%d", workers), Fmt("%d", 48 / workers),
                    Fmt("%.1fms%s", firstMs,
                        first.err == proto::XrdErr::kNone ? "" : " (!)"),
                    Fmt("%.1fms%s", warmMs,
                        warm.err == proto::XrdErr::kNone ? "" : " (!)"),
                    Fmt("%.0f shards/s", 48.0 / (warmMs / 1e3))});
    }
    table.Print();
  }

  {
    std::printf("Dispatch throughput: back-to-back warm queries (8 workers, 48\n"
                "chunks) — each query is 48 open/write/open/read/close cycles\n"
                "through the Scalla layer:\n\n");
    QservRig rig(8, 48, 20000);
    rig.Run("COUNT");  // warm locations
    const int queries = 50;
    const TimePoint t0 = rig.cluster().engine().Now();
    int ok = 0;
    for (int q = 0; q < queries; ++q) {
      if (rig.Run(q % 2 == 0 ? "AVG mag" : "COUNT WHERE mag BETWEEN 15 AND 20").err ==
          proto::XrdErr::kNone) {
        ++ok;
      }
    }
    const double seconds =
        std::chrono::duration<double>(rig.cluster().engine().Now() - t0).count();
    bench::Table table({"queries", "ok", "virtual time", "queries/s", "shard ops/s"});
    table.AddRow({Fmt("%d", queries), Fmt("%d", ok), Fmt("%.2fs", seconds),
                  Fmt("%.1f", queries / seconds), Fmt("%.0f", queries * 48.0 / seconds)});
    table.Print();
    // Virtual-clock dispatch metrics: every query must succeed and the
    // warm-path throughput is deterministic.
    std::printf("\nJSON {\"bench\":\"qserv_dispatch\",\"queries\":%d,\"ok\":%d,"
                "\"queries_per_sec\":%.2f}\n",
                queries, ok, queries / seconds);
  }
  return 0;
}

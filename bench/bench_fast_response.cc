// E07 — section III-B1: the fast response queue lowers the delay for an
// unknown (but existing) file from the 5s full delay to roughly the time
// it takes any one server to respond (~100us), with the 133ms sweep as the
// safety bound. We measure first-open latency with the mechanism on vs off
// (ablation), and show the sweep bound engaging when servers respond
// slower than 133ms.
#include "bench/bench_common.h"
#include "sim/cluster.h"
#include "sim/workload.h"

namespace scalla {
namespace {

using bench::Fmt;

double MeanFirstOpenUs(bool fastResponse, Duration linkLatency, std::size_t files,
                       double* p99 = nullptr, double* maxUs = nullptr) {
  sim::ClusterSpec spec;
  spec.servers = 16;
  spec.cms.fastResponse = fastResponse;
  spec.latency.linkLatency = linkLatency;
  sim::SimCluster cluster(spec);
  cluster.Start();
  util::Rng rng(21);
  const auto paths = sim::PopulateFiles(cluster, files, 1, rng);
  auto& client = cluster.NewClient();
  util::LatencyRecorder rec;
  for (const auto& path : paths) {
    const TimePoint t0 = cluster.engine().Now();
    const auto open = cluster.OpenAndWait(client, path, cms::AccessMode::kRead, false,
                                          std::chrono::minutes(2));
    if (open.err == proto::XrdErr::kNone) rec.Record(cluster.engine().Now() - t0);
  }
  if (p99 != nullptr) *p99 = static_cast<double>(rec.PercentileNanos(0.99)) / 1e3;
  if (maxUs != nullptr) *maxUs = static_cast<double>(rec.MaxNanos()) / 1e3;
  return rec.MeanNanos() / 1e3;
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  bench::PrintHeader(
      "E07", "fast response queue: first-access latency",
      "redirect in ~the fastest server's response time (~100us) instead of "
      "the 5s full delay; requests get up to 133ms before a full wait");

  double fastMeanUs = 0, fullMeanUs = 0;
  {
    std::printf("First open of uncached-but-existing files, 16 servers:\n\n");
    bench::Table table({"fast response queue", "mean first-open", "p99", "speedup"});
    double p99on = 0, p99off = 0;
    const double on = MeanFirstOpenUs(true, std::chrono::microseconds(25), 64, &p99on);
    const double off = MeanFirstOpenUs(false, std::chrono::microseconds(25), 64, &p99off);
    fastMeanUs = on;
    fullMeanUs = off;
    table.AddRow({"on (Scalla)", Fmt("%.0fus", on), Fmt("%.0fus", p99on), "1.0x"});
    table.AddRow({"off (full delay)", Fmt("%.0fus", off), Fmt("%.0fus", p99off),
                  Fmt("%.0fx slower", off / on)});
    table.Print();
  }

  {
    std::printf("The 133ms sweep bound: slower and slower server responses.\n"
                "Below the bound the client is released by the response; past it\n"
                "the anchor expires and the client pays the full delay instead.\n\n");
    bench::Table table({"one-way link latency", "mean first-open", "max first-open",
                        "within sweep bound?"});
    for (const auto link :
         {std::chrono::microseconds(25), std::chrono::microseconds(2500),
          std::chrono::microseconds(40000), std::chrono::microseconds(90000)}) {
      double maxUs = 0;
      const double mean = MeanFirstOpenUs(true, link, 24, nullptr, &maxUs);
      const bool within = 2 * link < std::chrono::milliseconds(133);
      table.AddRow({Fmt("%.1fms", std::chrono::duration<double>(link).count() * 1e3),
                    Fmt("%.1fms", mean / 1e3), Fmt("%.1fms", maxUs / 1e3),
                    within ? "yes" : "borderline/no"});
    }
    table.Print();
    std::printf("Servers answering within ~100us leave a comfortable margin under\n"
                "the 133ms clock, as the paper argues; only pathological latencies\n"
                "push waiters into the full-delay fallback.\n\n");
  }
  // Virtual-clock first-open means at the 25us link point (deterministic).
  std::printf("\nJSON {\"bench\":\"fast_response\",\"fast_mean_us\":%.1f,"
              "\"full_mean_us\":%.1f,\"speedup\":%.1f}\n",
              fastMeanUs, fullMeanUs, fullMeanUs / fastMeanUs);
  return 0;
}

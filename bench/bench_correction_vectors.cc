// E05 — Figure 3 / section III-A4: corrections add O(1) overhead to each
// look-up, and the per-window V_wc/C_wn memo makes churn cost "practically
// constant time regardless of the number of location objects" — at worst a
// small degradation for one or two window periods.
//
// We fill the cache, inject membership churn (a server connecting), then
// measure fetch cost with the memo ON vs OFF, plus a google-benchmark
// micro-section for the raw correction computation.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "cms/correction_state.h"
#include "cms/location_cache.h"
#include "util/clock.h"
#include "util/rng.h"

namespace scalla {
namespace {

using bench::Fmt;
using bench::Stopwatch;

struct ChurnResult {
  double cleanNs = 0;      // fetch with no pending correction
  double churnNs = 0;      // fetch right after a membership change
  std::size_t memoHits = 0;
  std::size_t corrections = 0;
};

ChurnResult Run(std::size_t entries, bool memo) {
  cms::CmsConfig config;
  config.correctionMemo = memo;
  util::ManualClock clock;
  cms::CorrectionState corrections;
  for (int s = 0; s < 8; ++s) corrections.OnConnect(s);
  cms::LocationCache cache(config, clock, corrections);
  ServerSet vm = ServerSet::FirstN(8);

  for (std::size_t i = 0; i < entries; ++i) {
    cache.Lookup(util::MakeFilePath(i / 997, i % 997), vm, ServerSet::None(),
                 cms::LocationCache::AddPolicy::kCreate);
  }

  ChurnResult result;
  util::Rng rng(11);
  const std::size_t probes = std::min<std::size_t>(entries, 100000);

  // Clean fetches: C_n == N_c everywhere.
  {
    Stopwatch timer;
    for (std::size_t i = 0; i < probes; ++i) {
      const std::uint64_t id = rng.NextBelow(entries);
      cache.Lookup(util::MakeFilePath(id / 997, id % 997), vm, ServerSet::None(),
                   cms::LocationCache::AddPolicy::kFindOnly);
    }
    result.cleanNs = timer.ElapsedNs() / static_cast<double>(probes);
  }

  // Churn: a new server connects; every cached object now needs Figure 3.
  corrections.OnConnect(8);
  vm.set(8);
  {
    Stopwatch timer;
    for (std::size_t i = 0; i < probes; ++i) {
      const std::uint64_t id = rng.NextBelow(entries);
      cache.Lookup(util::MakeFilePath(id / 997, id % 997), vm, ServerSet::None(),
                   cms::LocationCache::AddPolicy::kFindOnly);
    }
    result.churnNs = timer.ElapsedNs() / static_cast<double>(probes);
  }
  const auto stats = cache.GetStats();
  result.memoHits = stats.correctionMemoHits;
  result.corrections = stats.corrections;
  return result;
}

void PrintShapeTable() {
  bench::PrintHeader(
      "E05", "correction-vector overhead and the V_wc window memo",
      "O(1) correction per look-up; per-window memoisation makes churn cost "
      "practically constant regardless of cache size");
  bench::Table table({"entries", "V_wc memo", "clean fetch", "post-churn fetch",
                      "churn overhead", "corrections", "memo hits"});
  ChurnResult biggest;
  for (const std::size_t entries : {10000u, 100000u, 400000u}) {
    for (const bool memo : {true, false}) {
      const auto r = Run(entries, memo);
      if (memo) biggest = r;
      table.AddRow({Fmt("%zu", entries), memo ? "on" : "off",
                    Fmt("%.0fns", r.cleanNs), Fmt("%.0fns", r.churnNs),
                    Fmt("%.0fns", r.churnNs - r.cleanNs),
                    Fmt("%zu", r.corrections), Fmt("%zu", r.memoHits)});
    }
  }
  table.Print();
  // Counter metrics are deterministic (seeded probes); the ns columns are
  // host wall clock, so the gate tracks only the counts.
  std::printf("\nJSON {\"bench\":\"correction_vectors\",\"entries\":400000,"
              "\"corrections\":%zu,\"memo_hits\":%zu}\n",
              biggest.corrections, biggest.memoHits);
  std::printf("With the memo each window computes V_c once and every other object\n"
              "in the window reuses it; without it every corrected fetch rescans\n"
              "the C[] array. Both are O(1) per fetch (64 counters), so the paper's\n"
              "optimization shows up as a constant-factor, not asymptotic, saving.\n\n");
}

void BM_CorrectionSince(benchmark::State& state) {
  cms::CorrectionState cs;
  for (int s = 0; s < 64; ++s) cs.OnConnect(s);
  std::uint64_t cn = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.CorrectionSince(cn));
    cn = (cn + 1) % 64;
  }
}
BENCHMARK(BM_CorrectionSince);

void BM_FetchCorrected(benchmark::State& state) {
  const bool memo = state.range(0) != 0;
  cms::CmsConfig config;
  config.correctionMemo = memo;
  util::ManualClock clock;
  cms::CorrectionState corrections;
  corrections.OnConnect(0);
  cms::LocationCache cache(config, clock, corrections);
  ServerSet vm = ServerSet::FirstN(1);
  for (int i = 0; i < 10000; ++i) {
    cache.Lookup(util::MakeFilePath(0, i), vm, ServerSet::None(),
                 cms::LocationCache::AddPolicy::kCreate);
  }
  int i = 0;
  int churnSlot = 1;
  for (auto _ : state) {
    if (i == 0) {
      // periodic churn keeps corrections flowing
      corrections.OnConnect(churnSlot);
      vm.set(churnSlot);
      churnSlot = 1 + (churnSlot % 62);
    }
    benchmark::DoNotOptimize(cache.Lookup(util::MakeFilePath(0, i), vm, ServerSet::None(),
                                          cms::LocationCache::AddPolicy::kFindOnly));
    i = (i + 1) % 10000;
  }
}
BENCHMARK(BM_FetchCorrected)->Arg(1)->Arg(0);

}  // namespace
}  // namespace scalla

int main(int argc, char** argv) {
  scalla::PrintShapeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E03 — section III-A2: the cache reaches an equilibrium bounded by
// (creation rate x lifetime); with ~1000 creates/s and L_t = 8h that is
// 28.8M location objects ~= 16GB of RAM (~590 bytes/object), table growth
// ceases, and typical deployments (50-100 creates/s) stay well below 1GB.
//
// We run the real LocationCache against a virtual clock at scaled-down
// parameters (creation rate x lifetime shape is what matters), report the
// measured equilibrium and bytes/object, and extrapolate to the paper's
// parameters.
#include "bench/bench_common.h"
#include "cms/correction_state.h"
#include "cms/location_cache.h"
#include "util/clock.h"
#include "util/rng.h"

namespace scalla {
namespace {

using bench::Fmt;

struct EquilibriumResult {
  std::size_t peakLive = 0;
  std::size_t steadyLive = 0;
  double bytesPerObject = 0;
  std::size_t rehashesTotal = 0;
  std::size_t rehashesAfterWarm = 0;
  std::size_t finalBuckets = 0;
};

// Simulates `lifetimes` L_t periods at `ratePerSec` creates/s with the
// given lifetime, ticking windows on schedule.
EquilibriumResult Run(double ratePerSec, Duration lifetime, double lifetimes) {
  cms::CmsConfig config;
  config.lifetime = lifetime;
  util::ManualClock clock;
  cms::CorrectionState corrections;
  corrections.OnConnect(0);
  cms::LocationCache cache(config, clock, corrections);
  const ServerSet vm = ServerSet::FirstN(1);

  const Duration tick = config.WindowTick();
  const auto createsPerTick = static_cast<std::size_t>(
      ratePerSec * std::chrono::duration<double>(tick).count());
  const auto totalTicks =
      static_cast<std::size_t>(lifetimes * kMaxServersPerSet);

  EquilibriumResult result;
  std::uint64_t fileId = 0;
  std::size_t warmRehashes = 0;
  for (std::size_t t = 0; t < totalTicks; ++t) {
    for (std::size_t i = 0; i < createsPerTick; ++i) {
      cache.Lookup(util::MakeFilePath(fileId / 997, fileId % 997), vm, ServerSet::None(),
                   cms::LocationCache::AddPolicy::kCreate);
      ++fileId;
    }
    clock.Advance(tick);
    if (auto purge = cache.OnWindowTick()) purge();
    const auto stats = cache.GetStats();
    result.peakLive = std::max(result.peakLive, stats.liveObjects);
    if (t == totalTicks / 2) warmRehashes = stats.rehashes;  // warmed up
  }
  const auto stats = cache.GetStats();
  result.steadyLive = stats.liveObjects;
  result.rehashesTotal = stats.rehashes;
  result.rehashesAfterWarm = stats.rehashes - warmRehashes;
  result.finalBuckets = stats.buckets;
  result.bytesPerObject =
      stats.allocatedObjects == 0
          ? 0
          : static_cast<double>(stats.approxBytes) /
                static_cast<double>(stats.allocatedObjects);
  return result;
}

}  // namespace
}  // namespace scalla

int main() {
  using namespace scalla;
  bench::PrintHeader("E03", "cache equilibrium: rate x lifetime bounds the table",
                     "max entries = creation rate x L_t (28.8M at 1000/s x 8h "
                     "~= 16GB, ~590B/object); growth ceases at equilibrium");

  bench::Table table({"creates/s", "L_t", "bound (rate*L_t)", "peak live",
                      "steady live", "bytes/object", "est. memory @peak",
                      "rehashes (total)", "rehashes (2nd half)"});
  struct Case {
    double rate;
    Duration lifetime;
    double lifetimes;
  };
  const Case cases[] = {
      {50, std::chrono::minutes(16), 2.0},
      {200, std::chrono::minutes(16), 2.0},
      {1000, std::chrono::minutes(16), 2.0},
      {1000, std::chrono::minutes(64), 1.5},
  };
  double bytesPerObject = 0;
  EquilibriumResult last;
  double lastBound = 0;
  for (const auto& c : cases) {
    const auto r = Run(c.rate, c.lifetime, c.lifetimes);
    const double bound = c.rate * std::chrono::duration<double>(c.lifetime).count();
    bytesPerObject = r.bytesPerObject;
    last = r;
    lastBound = bound;
    table.AddRow({bench::Fmt("%.0f", c.rate),
                  bench::Fmt("%.0fmin",
                             std::chrono::duration<double>(c.lifetime).count() / 60),
                  bench::Fmt("%.0f", bound), bench::Fmt("%zu", r.peakLive),
                  bench::Fmt("%zu", r.steadyLive),
                  bench::Fmt("%.0fB", r.bytesPerObject),
                  bench::Fmt("%.1fMB", static_cast<double>(r.peakLive) *
                                           r.bytesPerObject / 1e6),
                  bench::Fmt("%zu", r.rehashesTotal),
                  bench::Fmt("%zu", r.rehashesAfterWarm)});
  }
  table.Print();

  std::printf("Extrapolation to the paper's parameters (1000 creates/s, L_t=8h):\n");
  const double paperObjects = 1000.0 * 8 * 3600;
  std::printf("  %.1fM location objects x %.0fB/object = %.1fGB "
              "(paper: 28.8M objects ~= 16GB at ~590B/object)\n",
              paperObjects / 1e6, bytesPerObject, paperObjects * bytesPerObject / 1e9);
  std::printf("  At a typical 50-100 creates/s the bound is %.0f-%.0fM objects "
              "= %.2f-%.2fGB (paper: \"normally stays well below 1GB\")\n\n",
              50.0 * 8 * 3600 / 1e6, 100.0 * 8 * 3600 / 1e6,
              50.0 * 8 * 3600 * bytesPerObject / 1e9,
              100.0 * 8 * 3600 * bytesPerObject / 1e9);

  // Virtual-clock metrics for the regression gate (the heaviest case):
  // equilibrium must stay under the rate x L_t bound, growth must cease
  // (no second-half rehashes), bytes/object must not creep.
  std::printf("\nJSON {\"bench\":\"cache_equilibrium\",\"bound\":%.0f,"
              "\"peak_live\":%zu,\"steady_live\":%zu,\"bytes_per_object\":%.1f,"
              "\"rehashes_after_warm\":%zu}\n",
              lastBound, last.peakLive, last.steadyLive, last.bytesPerObject,
              last.rehashesAfterWarm);
  return 0;
}

#!/usr/bin/env bash
# Benchmark harness: Release-ish build (default preset is RelWithDebInfo),
# run every bench that emits a machine-scrapable "JSON {...}" summary
# line, and collect those lines into BENCH_PR8.json (one JSON object per
# line). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_PR8.json"
BENCHES=(bench_fabric bench_proxy_cache bench_federation bench_location_cache)

echo "=== build: default preset ==="
cmake --preset default
cmake --build --preset default -j

: > "$OUT"
for bench in "${BENCHES[@]}"; do
  echo
  echo "=== run: $bench ==="
  # A bench may exit non-zero when its claim check fails on a loaded
  # machine; still collect its JSON so the numbers are inspectable.
  output=$("./build/bench/$bench" 2>&1) || true
  printf '%s\n' "$output"
  printf '%s\n' "$output" | sed -n 's/^JSON //p' >> "$OUT"
done

echo
echo "collected $(wc -l < "$OUT") JSON summaries into $OUT"

#!/usr/bin/env bash
# Benchmark harness: Release-ish build (default preset is RelWithDebInfo),
# run every bench that emits a machine-scrapable "JSON {...}" summary
# line, and collect those lines into one JSONL file (one JSON object per
# line). Run from the repository root.
#
# Output file: first positional argument, else $BENCH_OUT, else
# BENCH_PR10.json. The result feeds scripts' bench-gate stage:
#   build/tools/bench_compare bench/baseline.json <output>
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-${BENCH_OUT:-BENCH_PR10.json}}"

# Every bench binary that prints a "JSON {...}" summary. Keep in sync with
# bench/CMakeLists.txt and bench/baseline.json.
BENCHES=(
  bench_cache_equilibrium
  bench_campaign
  bench_correction_vectors
  bench_deadline_sync
  bench_eviction_window
  bench_fabric
  bench_fast_response
  bench_federation
  bench_hash_fibonacci
  bench_location_cache
  bench_parallel_prepare
  bench_proxy_cache
  bench_qserv_dispatch
  bench_query_protocol
  bench_rechaining
  bench_redirection_latency
  bench_registration
  bench_selection
  bench_tree_scaling
)

echo "=== build: default preset ==="
cmake --preset default
cmake --build --preset default -j

: > "$OUT"
for bench in "${BENCHES[@]}"; do
  echo
  echo "=== run: $bench ==="
  # A bench may exit non-zero when its claim check fails on a loaded
  # machine; still collect its JSON so the numbers are inspectable.
  output=$("./build/bench/$bench" 2>&1) || true
  printf '%s\n' "$output"
  printf '%s\n' "$output" | sed -n 's/^JSON //p' >> "$OUT"
done

echo
echo "collected $(wc -l < "$OUT") JSON summaries into $OUT"

#!/usr/bin/env bash
# Full verification: the regular build + test suite, the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer, and the threaded suites
# (pcache proxy, TCP cluster) under ThreadSanitizer (CMake presets
# "default", "asan-ubsan", "tsan"). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build + test: default preset ==="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

echo
echo "=== build + test: asan-ubsan preset ==="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j
ctest --preset asan-ubsan -j

echo
echo "=== build + test (threaded suites): tsan preset ==="
cmake --preset tsan
cmake --build --preset tsan -j
ctest --preset tsan -j -R "pcache_test|tcp_cluster_test|sched_test|tcp_fabric_test"

echo
echo "verify: all suites passed"

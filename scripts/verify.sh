#!/usr/bin/env bash
# Full verification: the regular build + test suite, then the same suite
# under AddressSanitizer + UndefinedBehaviorSanitizer (CMake presets
# "default" and "asan-ubsan"). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build + test: default preset ==="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

echo
echo "=== build + test: asan-ubsan preset ==="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j
ctest --preset asan-ubsan -j

echo
echo "verify: all suites passed"

#!/usr/bin/env bash
# Full verification: the regular build + test suite, the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer, and the threaded suites
# (pcache proxy, TCP cluster, heartbeat liveness, chaos) under
# ThreadSanitizer (CMake presets "default", "asan-ubsan", "tsan"). Run
# from the repository root.
#
# ctest is invoked with --test-dir and an explicit -j value: the ctest
# that ships with CMake 3.25 treats a bare `-j` as taking the *next*
# argument as its job count, silently eating a following -R/-L/-LE and
# defeating the tier split below.
#
# Tests labelled tier2 (long-running real-socket chaos/stress suites) are
# excluded from the fast default stage and run in their own stage; set
# SCALLA_SKIP_TIER2=1 to skip that stage on a quick iteration loop.
#
# The bench-gate stage re-runs every JSON-emitting bench and compares the
# deterministic metrics against bench/baseline.json (tolerances per
# metric); set SCALLA_SKIP_BENCH_GATE=1 to skip it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== build + test: default preset (tier 1) ==="
cmake --preset default
cmake --build --preset default -j
ctest --test-dir build --output-on-failure -j 4 -LE tier2

if [[ "${SCALLA_SKIP_TIER2:-0}" != "1" ]]; then
  echo
  echo "=== test: default preset (tier 2 chaos/stress) ==="
  ctest --test-dir build --output-on-failure -L tier2
fi

if [[ "${SCALLA_SKIP_BENCH_GATE:-0}" != "1" ]]; then
  echo
  echo "=== bench-gate: regression check against bench/baseline.json ==="
  BENCH_OUT="build/bench_current.json" ./scripts/bench.sh > build/bench_run.log 2>&1 || {
    echo "bench run failed; see build/bench_run.log"
    exit 1
  }
  ./build/tools/bench_compare bench/baseline.json build/bench_current.json
fi

echo
echo "=== build + test: asan-ubsan preset ==="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j
ctest --test-dir build-asan --output-on-failure -j 4 -LE tier2

echo
echo "=== build + test (threaded + liveness suites): tsan preset ==="
cmake --preset tsan
cmake --build --preset tsan -j
ctest --test-dir build-tsan --output-on-failure -j 4 \
  -R "pcache_test|pcache_property_test|tcp_cluster_test|sched_test|tcp_fabric_test|fabric_reactor_test|heartbeat_test|conformance_test|federation_test|cms_cache_property_test"
# The heartbeat/drain/suspend story over real threads lives inside
# chaos_test (tier2, TcpLivenessTest fixture) — run the whole suite.
ctest --test-dir build-tsan --output-on-failure -R chaos_test

echo
echo "verify: all suites passed"

// Federation demo: two independent Scalla clusters under one meta-manager
// that clusters the clusters. A client holding ONLY the meta address
// opens files in either cluster: the meta resolves the owning cluster
// with the same name-cache machinery a manager uses for servers — one
// level up — and redirects to that cluster's head.
//
//   $ ./federation_demo
//
// The same wiring runs over real TCP: start two clusters of
// scalla_daemon processes whose manager configs carry `fed.meta`, one
// daemon with `all.role meta`, and point scalla_cli --head at the meta
// (see docs/FEDERATION.md).
#include <cstdio>

#include "sim/federation.h"

using namespace scalla;

int main() {
  // 1. Two clusters x 3 data servers, subscribed to one meta-manager.
  //    Cluster 1 is "farther" (locality 2), so when both clusters hold a
  //    replica the meta prefers cluster 0.
  sim::FederationSpec spec;
  spec.clusters = 2;
  spec.cluster.servers = 3;
  spec.cluster.cms.deadline = std::chrono::seconds(1);  // snappier demo
  spec.meta.cms.deadline = std::chrono::seconds(1);
  spec.localities = {0, 2};

  sim::SimFederation fed(spec);
  // Pre-place a file in each cluster (as a transfer system would).
  fed.PlaceFile(0, 0, "/store/west.root", "data in cluster 0");
  fed.PlaceFile(1, 2, "/store/east.root", "data in cluster 1");
  fed.Start();
  std::printf("federation up: %zu clusters behind the meta (heads subscribed: %s, %s)\n",
              fed.ClusterCount(),
              fed.cluster(0).head().FedSubscribed() ? "yes" : "no",
              fed.cluster(1).head().FedSubscribed() ? "yes" : "no");

  // 2. One client, one address — the meta's. It can reach both files.
  client::ScallaClient& client = fed.NewClient();
  for (const char* path : {"/store/west.root", "/store/east.root"}) {
    const Result<std::string> data = fed.ReadAll(client, path);
    const auto open = fed.OpenAndWait(client, path, cms::AccessMode::kRead, false);
    std::printf("open %s: \"%s\" via node %u (%d redirect hops: meta -> head -> server)\n",
                path, data ? data.value().c_str() : "FAILED", open.file.node,
                open.redirects);
  }

  // 3. Creation through the meta: it picks a writable cluster, the file
  //    lands on one of its servers, and the new location digests back up
  //    (server -> cluster head -> meta).
  const Result<void> put = fed.PutFile(client, "/store/new.root", "born federated");
  std::printf("create /store/new.root through the meta: %s\n",
              put ? "ok" : put.error().message.c_str());

  // 4. The meta's own view: subscriptions, cached locations, redirects.
  const auto snap = fed.meta().SnapshotMetrics();
  std::printf("meta: %llu subscribes, %llu locates, %llu redirects, "
              "cache hit rate %.0f%%\n",
              static_cast<unsigned long long>(snap.Counter("fed.subscribes")),
              static_cast<unsigned long long>(snap.Counter("fed.locates")),
              static_cast<unsigned long long>(snap.Counter("fed.redirects_issued")),
              100.0 * snap.Counter("cache.hits") /
                  std::max<std::uint64_t>(1, snap.Counter("cache.lookups")));

  // 5. Federation-wide stats: one StatsQuery at the meta fans out to
  //    every cluster head and folds the whole tree.
  const auto stats = fed.FederationStats(&client);
  std::printf("federation stats: %u nodes folded across %lld clusters\n",
              stats.nodeCount,
              static_cast<long long>(stats.snapshot.Gauge("fed.clusters")));
  return 0;
}

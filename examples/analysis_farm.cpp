// analysis_farm: the workload Scalla was built for (paper section II-A) —
// a BaBar-style analysis campaign. Hundreds of jobs each perform
// "several meta-data operations on dozens of files" before reading event
// data; files live on many servers, some replicated, some still on the
// Mass Storage System. The example shows:
//   - parallel prepare hiding the staging/lookup delays (section III-B2),
//   - the location cache turning a query-flood-per-file into cached
//     redirects for the rest of the campaign,
//   - replica spreading across servers.
//
//   $ ./analysis_farm [jobs] [filesPerJob]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "sim/cluster.h"
#include "sim/workload.h"

using namespace scalla;

int main(int argc, char** argv) {
  const int jobs = argc > 1 ? std::atoi(argv[1]) : 40;
  const int filesPerJob = argc > 2 ? std::atoi(argv[2]) : 24;

  // A 32-server farm; a tenth of the data set is still on tape.
  sim::ClusterSpec spec;
  spec.servers = 32;
  spec.withMss = true;
  spec.mss.stageDelay = std::chrono::seconds(45);
  spec.cms.deadline = std::chrono::seconds(2);
  sim::SimCluster cluster(spec);
  cluster.Start();

  util::Rng rng(2001);  // the year BaBar switched to flat files
  const std::size_t nFiles = 800;
  std::vector<std::string> dataset;
  for (std::size_t i = 0; i < nFiles; ++i) {
    const std::string path = util::MakeFilePath(i / 100, i % 100);
    if (i % 10 == 0) {
      cluster.mssStorage(rng.NextBelow(32))->PutInMss(path, 4096);  // on tape
    } else {
      const int replicas = 1 + static_cast<int>(rng.NextBelow(3));
      for (int r = 0; r < replicas; ++r) {
        cluster.PlaceFile(rng.NextBelow(32), path, std::string(4096, 'E'));
      }
    }
    dataset.push_back(path);
  }
  std::printf("dataset: %zu files on %zu servers (10%% MSS-resident)\n\n",
              dataset.size(), cluster.ServerCount());

  // Each job: pick its file list, PREPARE it, then open/read/close each.
  const util::ZipfSampler zipf(dataset.size(), 0.8);
  util::LatencyRecorder jobTimes;
  std::map<net::NodeAddr, int> serverHits;
  std::size_t opens = 0, errors = 0;

  const TimePoint campaignStart = cluster.engine().Now();
  for (int j = 0; j < jobs; ++j) {
    client::ScallaClient& job = cluster.NewClient();
    std::vector<std::string> wanted;
    for (int f = 0; f < filesPerJob; ++f) wanted.push_back(dataset[zipf.Sample(rng)]);

    const TimePoint jobStart = cluster.engine().Now();
    // Announce the file list: the cluster resolves and stages in parallel.
    (void)cluster.PrepareAndWait(job, wanted, cms::AccessMode::kRead);

    for (const auto& path : wanted) {
      const auto open = cluster.OpenAndWait(job, path, cms::AccessMode::kRead, false,
                                            std::chrono::minutes(5));
      if (open.err != proto::XrdErr::kNone) {
        ++errors;
        continue;
      }
      ++opens;
      ++serverHits[open.file.node];
      std::optional<proto::XrdErr> closed;
      job.Close(open.file, [&closed](proto::XrdErr e) { closed = e; });
      cluster.engine().RunUntilPredicate([&closed] { return closed.has_value(); },
                                         cluster.engine().Now() + std::chrono::seconds(5));
    }
    jobTimes.Record(cluster.engine().Now() - jobStart);
  }
  const double campaignSeconds =
      std::chrono::duration<double>(cluster.engine().Now() - campaignStart).count();

  std::printf("campaign: %d jobs x %d files -> %zu opens, %zu errors in %.1fs "
              "of cluster time\n",
              jobs, filesPerJob, opens, errors, campaignSeconds);
  std::printf("job wall time: %s\n", jobTimes.Summary().c_str());

  const auto rs = cluster.head().resolver().GetStats();
  std::printf("\nmanager resolver: %zu locates, %zu served from cache, "
              "%zu fast redirects, %zu query floods (%zu messages)\n",
              rs.locates, rs.redirects, rs.fastRedirects, rs.queriesSent,
              rs.queryMessages);
  const auto cs = cluster.head().cache().GetStats();
  std::printf("location cache: %zu objects, %zu-bucket table, %zu rehashes, "
              "hit rate %.1f%%\n",
              cs.liveObjects, cs.buckets, cs.rehashes,
              100.0 * static_cast<double>(cs.hits) / static_cast<double>(cs.lookups));

  std::printf("\nload spread over data servers (opens per server):\n  ");
  for (std::size_t s = 0; s < cluster.ServerCount(); ++s) {
    std::printf("%d ", serverHits[cluster.server(s).config().addr]);
  }
  std::printf("\n");
  return 0;
}

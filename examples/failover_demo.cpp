// failover_demo: the recoverability story (paper sections III-A4, III-C1,
// VI). Watch the cluster ride out a data-server crash: clients fail over
// to a surviving replica, the cached location information self-corrects
// via the V_m/V_c machinery when the server is dropped and later returns
// as a new member, and no persistent state is ever rebuilt.
//
//   $ ./failover_demo
#include <cstdio>

#include "sim/cluster.h"

using namespace scalla;

namespace {

void Status(sim::SimCluster& cluster, const char* when) {
  const auto online = cluster.head().membership().OnlineSet();
  const auto offline = cluster.head().membership().OfflineSet();
  std::printf("[t=%7.2fs] %-34s online=%d offline=%d members=%zu\n",
              std::chrono::duration<double>(
                  cluster.engine().Now().time_since_epoch())
                  .count(),
              when, online.count(), offline.count(),
              cluster.head().membership().MemberCount());
}

void TryOpen(sim::SimCluster& cluster, client::ScallaClient& client, const char* label) {
  const auto open =
      cluster.OpenAndWait(client, "/store/precious.root", cms::AccessMode::kRead, false);
  if (open.err == proto::XrdErr::kNone) {
    std::printf("    open (%s): OK via node %u, %d redirect(s), %d recovery(ies), "
                "%.0fus\n",
                label, open.file.node, open.redirects, open.recoveries,
                std::chrono::duration<double>(open.elapsed).count() * 1e6);
    std::optional<proto::XrdErr> closed;
    client.Close(open.file, [&closed](proto::XrdErr e) { closed = e; });
    cluster.engine().RunUntilIdle();
  } else {
    std::printf("    open (%s): FAILED (err=%d)\n", label, static_cast<int>(open.err));
  }
}

}  // namespace

int main() {
  sim::ClusterSpec spec;
  spec.servers = 4;
  spec.cms.deadline = std::chrono::seconds(1);
  spec.cms.dropDelay = std::chrono::minutes(5);  // disconnect -> drop window
  sim::SimCluster cluster(spec);
  cluster.Start();
  Status(cluster, "cluster started (4 servers)");

  // The file lives on two replicas.
  cluster.PlaceFile(1, "/store/precious.root", "irreplaceable bits");
  cluster.PlaceFile(2, "/store/precious.root", "irreplaceable bits");
  auto& client = cluster.NewClient();
  TryOpen(cluster, client, "both replicas up");
  TryOpen(cluster, client, "cached");

  // Server 1 crashes. The manager marks it offline but keeps it as a
  // member — "the hope is that the server is encountering a transient
  // problem and will soon reconnect".
  std::printf("\n--- server1 crashes ---\n");
  cluster.CrashServer(1);
  cluster.engine().RunUntilIdle();
  Status(cluster, "after crash (offline, not dropped)");
  TryOpen(cluster, client, "failover to replica");
  TryOpen(cluster, client, "failover, cached");

  // It stays down past the drop delay: dropped from the cluster, removed
  // from every V_m; its slot is free.
  std::printf("\n--- drop delay elapses ---\n");
  // The drop scan runs every dropDelay/4; run well past the delay so the
  // scan both comes due and finds the disconnect older than the window.
  cluster.engine().RunFor(spec.cms.dropDelay * 2);
  Status(cluster, "after drop");
  TryOpen(cluster, client, "post-drop");

  // The server returns. Re-login treats it as a NEW member (N_c bump), so
  // every cached location object learns to re-query it on next fetch —
  // the Figure 3 correction in action.
  std::printf("\n--- server1 returns ---\n");
  cluster.RestartServer(1);
  cluster.engine().RunFor(std::chrono::seconds(10));
  Status(cluster, "after rejoin (as new member)");
  TryOpen(cluster, client, "rejoined; corrections applied");

  // And the other replica can now crash safely: the rejoined server is
  // rediscovered through the corrected V_q.
  std::printf("\n--- server2 crashes too ---\n");
  cluster.CrashServer(2);
  cluster.engine().RunUntilIdle();
  TryOpen(cluster, client, "only the rejoined copy left");

  const auto cs = cluster.head().cache().GetStats();
  std::printf("\nmanager cache corrections applied: %zu (window-memo hits: %zu)\n",
              cs.corrections, cs.correctionMemoHits);
  std::printf("No persistent state was written or recovered at any point — the\n"
              "location view was reconstructed purely from logins and queries.\n");
  return 0;
}

// qserv_demo: the LSST Qserv prototype pattern (paper section IV-B) — a
// shared-nothing astronomical query system that uses Scalla as its
// distributed dispatch layer. Workers publish per-partition paths
// (/qserv/chunk<N>); the master reaches "a worker hosting that particular
// partition" simply by opening such a path, with no worker list anywhere.
//
//   $ ./qserv_demo [workers] [chunks] [objects]
#include <cstdio>
#include <cstdlib>

#include "qserv/master.h"
#include "qserv/worker.h"
#include "sim/cluster.h"

using namespace scalla;

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 6;
  const int chunks = argc > 2 ? std::atoi(argv[2]) : 24;
  const std::size_t objects = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 50000;

  // A Scalla cluster whose leaves are Qserv workers.
  sim::ClusterSpec spec;
  spec.servers = workers;
  spec.cms.deadline = std::chrono::milliseconds(500);
  sim::SimCluster cluster(spec);

  // Generate and partition the synthetic sky catalog.
  util::Rng rng(1919);
  auto catalog = qserv::GenerateCatalog(objects, chunks, rng);
  std::printf("catalog: %zu objects in %d RA chunks across %d workers\n", objects,
              chunks, workers);

  std::vector<std::unique_ptr<qserv::QservOss>> storage;
  std::vector<std::unique_ptr<xrd::ScallaNode>> nodes;
  for (int w = 0; w < workers; ++w) {
    storage.push_back(std::make_unique<qserv::QservOss>(cluster.engine().clock()));
  }
  for (auto& [chunk, rows] : catalog) {
    storage[static_cast<std::size_t>(chunk % workers)]->HostChunk(chunk, std::move(rows));
  }
  // Each worker node exports exactly its chunk prefixes; that export set
  // IS the data->host mapping the master leans on.
  for (int w = 0; w < workers; ++w) {
    auto& leaf = cluster.server(static_cast<std::size_t>(w));
    xrd::NodeConfig cfg = leaf.config();
    cfg.exports = storage[static_cast<std::size_t>(w)]->Exports();
    nodes.push_back(std::make_unique<xrd::ScallaNode>(cfg, cluster.engine(),
                                                      cluster.fabric(),
                                                      storage[static_cast<std::size_t>(w)].get()));
    cluster.fabric().Register(cfg.addr, nodes.back().get());
    std::printf("  worker %d exports %zu chunk prefixes\n", w, cfg.exports.size());
  }
  for (auto& n : nodes) n->Start();
  cluster.engine().RunUntilIdle();

  // The master: just a Scalla client plus partial-aggregate folding.
  client::ScallaClient& channel = cluster.NewClient();
  qserv::QservMaster master(channel);
  std::vector<int> allChunks;
  for (int c = 0; c < chunks; ++c) allChunks.push_back(c);

  const char* queries[] = {
      "COUNT",
      "AVG mag",
      "MIN mag",
      "MAX mag",
      "COUNT WHERE ra BETWEEN 120 AND 180",
      "AVG mag WHERE dec BETWEEN -10 AND 10",
  };
  std::printf("\n%-44s %14s %10s %8s\n", "query", "result", "chunks", "time");
  for (const char* q : queries) {
    std::optional<qserv::QueryResult> out;
    const TimePoint t0 = cluster.engine().Now();
    master.RunQuery(q, allChunks, [&out](const qserv::QueryResult& r) { out = r; });
    cluster.engine().RunUntilPredicate([&out] { return out.has_value(); },
                                       cluster.engine().Now() + std::chrono::minutes(2));
    if (!out.has_value() || out->err != proto::XrdErr::kNone) {
      std::printf("%-44s %14s\n", q, "FAILED");
      continue;
    }
    const double ms =
        std::chrono::duration<double>(cluster.engine().Now() - t0).count() * 1e3;
    std::printf("%-44s %14.4f %7d/%-2d %6.2fms\n", q, out->value, out->chunksOk,
                chunks, ms);
  }

  // The OTHER access mode the paper highlights: "quick retrieval
  // (retrieve all facts for a single object)". The director index names
  // the chunk; Scalla names the worker; one shard dispatch, no scan.
  // A real loader builds the index while partitioning; regenerating the
  // catalog with the same seed reproduces the identical partitioning.
  qserv::DirectorIndex index;
  {
    util::Rng reseed(1919);
    const auto rebuilt = qserv::GenerateCatalog(objects, chunks, reseed);
    index = qserv::BuildDirectorIndex(rebuilt);
  }
  std::printf("\nquick retrieval via the director index (%zu objects indexed):\n",
              index.Size());
  for (const std::uint64_t id : {std::uint64_t{17}, objects / 2, objects}) {
    std::optional<std::pair<proto::XrdErr, std::optional<qserv::ObjectRow>>> got;
    const TimePoint t0 = cluster.engine().Now();
    master.GetObject(id, index,
                     [&got](proto::XrdErr err, std::optional<qserv::ObjectRow> row) {
                       got = std::make_pair(err, row);
                     });
    cluster.engine().RunUntilPredicate([&got] { return got.has_value(); },
                                       cluster.engine().Now() + std::chrono::minutes(1));
    const double us =
        std::chrono::duration<double>(cluster.engine().Now() - t0).count() * 1e6;
    if (got.has_value() && got->first == proto::XrdErr::kNone && got->second) {
      std::printf("  GET %-8llu -> ra=%.4f dec=%+.4f mag=%.3f  (chunk %d, %.0fus)\n",
                  static_cast<unsigned long long>(id), got->second->ra,
                  got->second->dec, got->second->mag,
                  qserv::ChunkOf(got->second->ra, chunks), us);
    } else {
      std::printf("  GET %llu -> not found\n", static_cast<unsigned long long>(id));
    }
  }

  std::size_t tasks = 0;
  for (const auto& s : storage) tasks += s->TasksExecuted();
  std::printf("\nworkers executed %zu chunk tasks, dispatched purely by path —\n"
              "no worker list, node count, or placement map configured anywhere.\n",
              tasks);
  return 0;
}

// Quickstart: build a small Scalla cluster (one manager, four data
// servers) inside the discrete-event simulator, store a file, read it
// back, and look at what the cluster did.
//
//   $ ./quickstart
//
// The same node/client classes run over real TCP sockets — see
// tests/tcp_cluster_test.cc for that wiring; the simulator is the fastest
// way to see the system end to end.
#include <cstdio>

#include "sim/cluster.h"

using namespace scalla;

int main() {
  // 1. Describe the cluster: 4 data servers exporting /store under one
  //    manager. (Spec defaults follow the paper: 8h cache lifetime, 5s
  //    full delay, 133ms fast-response sweep, 64-ary tree.)
  sim::ClusterSpec spec;
  spec.servers = 4;
  spec.exports = {"/store"};
  spec.cms.deadline = std::chrono::seconds(1);  // snappier demo

  sim::SimCluster cluster(spec);
  cluster.Start();
  std::printf("cluster up: %zu data servers behind the manager, tree depth %d\n",
              cluster.ServerCount(), cluster.Depth());

  // 2. A client writes a new file. The manager confirms non-existence
  //    (the full-delay check), picks a server, and redirects the client.
  client::ScallaClient& client = cluster.NewClient();
  const Result<void> put =
      cluster.PutFile(client, "/store/hello.root", "hello, scalla!");
  std::printf("create /store/hello.root: %s\n",
              put ? "ok" : put.error().message.c_str());

  // 3. Read it back. The open goes manager -> (location cache) -> leaf.
  const Result<std::string> data = cluster.ReadAll(client, "/store/hello.root");
  std::printf("read back: \"%s\"\n", data ? data.value().c_str() : "FAILED");

  // 4. Open it again: the second open rides the manager's location cache.
  const auto open =
      cluster.OpenAndWait(client, "/store/hello.root", cms::AccessMode::kRead, false);
  std::printf("cached re-open: %s in %.1fus with %d redirect(s)\n",
              open.err == proto::XrdErr::kNone ? "ok" : "FAILED",
              std::chrono::duration<double>(open.elapsed).count() * 1e6,
              open.redirects);

  // 5. Peek at the machinery the paper describes.
  const auto cacheStats = cluster.head().cache().GetStats();
  const auto resolverStats = cluster.head().resolver().GetStats();
  std::printf("\nmanager location cache: %zu objects in a %zu-bucket Fibonacci table\n",
              cacheStats.liveObjects, cacheStats.buckets);
  std::printf("resolver: %zu locates, %zu cache redirects, %zu fast redirects, "
              "%zu query messages\n",
              resolverStats.locates, resolverStats.redirects,
              resolverStats.fastRedirects, resolverStats.queryMessages);

  // 6. One StatsQuery to the head folds every node's metrics registry
  //    into a single snapshot (kStatsQuery travels down the tree,
  //    kStatsReply merges on the way back up).
  const auto stats = cluster.ClusterStats(&client);
  std::printf("\ncluster-wide stats (%u nodes):\n%s",
              stats.nodeCount, stats.snapshot.ToText().c_str());
  return 0;
}

#include "oss/mss_oss.h"

namespace scalla::oss {

void MssOss::PutInMss(const std::string& path, std::uint64_t size) {
  std::lock_guard lock(mu_);
  catalog_[path] = size;
}

void MssOss::SettleLocked() {
  const TimePoint now = clock_.Now();
  for (auto it = staging_.begin(); it != staging_.end();) {
    if (it->second <= now) {
      const auto cat = catalog_.find(it->first);
      const std::uint64_t size = cat != catalog_.end() ? cat->second : 0;
      files_[it->first] = File{std::string(size, 'M'), now};
      it = staging_.erase(it);
    } else {
      ++it;
    }
  }
}

FileState MssOss::StateOf(const std::string& path) {
  std::lock_guard lock(mu_);
  SettleLocked();
  if (files_.count(path) != 0) return FileState::kOnline;
  if (staging_.count(path) != 0) return FileState::kStaging;
  if (catalog_.count(path) != 0) return FileState::kInMss;
  return FileState::kAbsent;
}

std::optional<Duration> MssOss::BeginStage(const std::string& path) {
  std::lock_guard lock(mu_);
  SettleLocked();
  if (files_.count(path) != 0) return Duration::zero();  // already online
  const auto it = staging_.find(path);
  if (it != staging_.end()) return it->second - clock_.Now();
  if (catalog_.count(path) == 0) return std::nullopt;  // not on tape
  staging_[path] = clock_.Now() + config_.stageDelay;
  return config_.stageDelay;
}

std::size_t MssOss::StagingCount() {
  std::lock_guard lock(mu_);
  SettleLocked();
  return staging_.size();
}

}  // namespace scalla::oss

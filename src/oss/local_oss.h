// Directory-backed storage: Scalla paths map onto files under a root
// directory via the host's native file system, matching production
// xrootd's data-server behaviour.
#pragma once

#include <filesystem>
#include <mutex>

#include "oss/oss.h"

namespace scalla::oss {

class LocalOss final : public Oss {
 public:
  /// `root` must exist and be a directory.
  explicit LocalOss(std::filesystem::path root);

  FileState StateOf(const std::string& path) override;
  Result<void> Create(const std::string& path) override;
  Result<void> Write(const std::string& path, std::uint64_t offset,
                     std::string_view data) override;
  Result<std::string> Read(const std::string& path, std::uint64_t offset,
                           std::uint32_t length) override;
  std::optional<StatInfo> Stat(const std::string& path) override;
  Result<void> Unlink(const std::string& path) override;
  std::vector<std::string> List(const std::string& prefix) override;

 private:
  /// Maps a Scalla path to a host path, rejecting escapes ("..").
  std::optional<std::filesystem::path> Resolve(const std::string& path) const;

  std::filesystem::path root_;
  std::mutex mu_;  // serializes multi-step create/write sequences
};

}  // namespace scalla::oss

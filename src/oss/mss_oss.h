// Mass Storage System simulator. The paper's clusters front tape systems:
// a file may be "offline" (on tape), and a server that can stage it
// answers location queries with "being prepared to be online" — the V_p
// state — while the stage takes minutes. Here the MSS is a catalog of
// (path, size) entries plus a configurable stage delay; completion is
// evaluated lazily against the injected clock so the simulator needs no
// background thread.
#pragma once

#include <unordered_map>

#include "oss/mem_oss.h"

namespace scalla::oss {

struct MssConfig {
  Duration stageDelay = std::chrono::seconds(30);
};

class MssOss final : public MemOss {
 public:
  MssOss(util::Clock& clock, MssConfig config) : MemOss(clock), config_(config) {}

  /// Registers a file as resident on the MSS (not online).
  void PutInMss(const std::string& path, std::uint64_t size);

  FileState StateOf(const std::string& path) override;
  std::optional<Duration> BeginStage(const std::string& path) override;

  /// Files currently staging (after lazily completing finished ones).
  std::size_t StagingCount();

 private:
  // Completes any stage whose deadline has passed: materializes the file
  // online with synthetic content of the cataloged size.
  void SettleLocked();

  MssConfig config_;
  std::unordered_map<std::string, std::uint64_t> catalog_;    // on tape
  std::unordered_map<std::string, TimePoint> staging_;        // path -> done-at
};

}  // namespace scalla::oss

// In-memory storage backend.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "oss/oss.h"
#include "util/clock.h"

namespace scalla::oss {

class MemOss : public Oss {
 public:
  /// `capacityBytes` caps stored data (0 = unlimited): at/over capacity,
  /// Create fails with kNoSpace and Write refuses to grow files — the
  /// condition that drives placement away from full servers.
  explicit MemOss(util::Clock& clock, std::uint64_t capacityBytes = 0)
      : clock_(clock), capacity_(capacityBytes) {}

  FileState StateOf(const std::string& path) override;
  Result<void> Create(const std::string& path) override;
  Result<void> Write(const std::string& path, std::uint64_t offset,
                     std::string_view data) override;
  Result<std::string> Read(const std::string& path, std::uint64_t offset,
                           std::uint32_t length) override;
  std::optional<StatInfo> Stat(const std::string& path) override;
  Result<void> Unlink(const std::string& path) override;
  std::vector<std::string> List(const std::string& prefix) override;

  /// Seeds a file with content (test/workload setup).
  void Put(const std::string& path, std::string data);

  std::optional<std::uint64_t> UsedBytes() override { return TotalBytes(); }

  std::size_t FileCount() const;
  std::uint64_t TotalBytes() const;

 protected:
  struct File {
    std::string data;
    TimePoint mtime{};
  };

  std::uint64_t TotalBytesLocked() const;

  util::Clock& clock_;
  std::uint64_t capacity_ = 0;
  mutable std::mutex mu_;
  std::map<std::string, File> files_;  // ordered: prefix listing is a range scan
};

}  // namespace scalla::oss

// Storage-system abstraction behind each data server, mirroring xrootd's
// oss layer. "At a data server level, the namespace conforms to full POSIX
// semantics since each data server uses the host's native file system"
// (paper section II-B4). Three backends:
//   MemOss   — in-memory store (tests, simulation, Qserv workers);
//   MssOss   — MemOss plus a simulated Mass Storage System: named files
//              exist on "tape" and must be staged online, which takes a
//              configurable delay and drives the V_p (pending) machinery;
//   LocalOss — a real directory on the host file system.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "proto/messages.h"
#include "util/result.h"
#include "util/types.h"

namespace scalla::oss {

enum class FileState {
  kAbsent,   // nowhere on this server
  kOnline,   // readable right now
  kStaging,  // being copied from the MSS; readable once done
  kInMss,    // on the MSS only; a stage must be requested
};

struct StatInfo {
  std::uint64_t size = 0;
  TimePoint mtime{};
};

class Oss {
 public:
  virtual ~Oss() = default;

  virtual FileState StateOf(const std::string& path) = 0;

  /// Creates an empty online file. kExists if it is already present
  /// anywhere (online or MSS).
  virtual Result<void> Create(const std::string& path) = 0;

  /// Writes at `offset`, extending the file as needed. kNotFound if the
  /// file is not online.
  virtual Result<void> Write(const std::string& path, std::uint64_t offset,
                             std::string_view data) = 0;

  /// Reads up to `length` bytes at `offset`; short reads at EOF (an empty
  /// string past it).
  virtual Result<std::string> Read(const std::string& path, std::uint64_t offset,
                                   std::uint32_t length) = 0;

  virtual std::optional<StatInfo> Stat(const std::string& path) = 0;

  virtual Result<void> Unlink(const std::string& path) = 0;

  /// Online files under `prefix` (data-server-local namespace; the global
  /// view is assembled by the Cluster Name Space daemon).
  virtual std::vector<std::string> List(const std::string& prefix) = 0;

  /// Requests a stage for a kInMss file. Returns the remaining time until
  /// it is online, or std::nullopt if the file is not stageable. Safe to
  /// call repeatedly; repeated calls report the remaining time.
  virtual std::optional<Duration> BeginStage(const std::string& path) {
    (void)path;
    return std::nullopt;
  }

  /// Bytes currently stored, when the backend can tell cheaply (feeds the
  /// free-space selection metric via load reports).
  virtual std::optional<std::uint64_t> UsedBytes() { return std::nullopt; }
};

}  // namespace scalla::oss

#include "oss/mem_oss.h"

#include <algorithm>

namespace scalla::oss {

FileState MemOss::StateOf(const std::string& path) {
  std::lock_guard lock(mu_);
  return files_.count(path) != 0 ? FileState::kOnline : FileState::kAbsent;
}

std::uint64_t MemOss::TotalBytesLocked() const {
  std::uint64_t total = 0;
  for (const auto& [_, f] : files_) total += f.data.size();
  return total;
}

Result<void> MemOss::Create(const std::string& path) {
  std::lock_guard lock(mu_);
  if (files_.count(path) != 0) {
    return Result<void>::Err(proto::XrdErr::kExists, "create '" + path + "': exists");
  }
  if (capacity_ != 0 && TotalBytesLocked() >= capacity_) {
    return Result<void>::Err(proto::XrdErr::kNoSpace, "create '" + path + "': no space");
  }
  files_[path] = File{std::string(), clock_.Now()};
  return Result<void>::Ok();
}

Result<void> MemOss::Write(const std::string& path, std::uint64_t offset,
                           std::string_view data) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Result<void>::Err(proto::XrdErr::kNotFound, "write '" + path + "': not found");
  }
  File& f = it->second;
  if (offset + data.size() > f.data.size()) {
    const std::uint64_t growth = offset + data.size() - f.data.size();
    if (capacity_ != 0 && TotalBytesLocked() + growth > capacity_) {
      return Result<void>::Err(proto::XrdErr::kNoSpace, "write '" + path + "': no space");
    }
    f.data.resize(offset + data.size(), '\0');
  }
  std::copy(data.begin(), data.end(), f.data.begin() + static_cast<std::ptrdiff_t>(offset));
  f.mtime = clock_.Now();
  return Result<void>::Ok();
}

Result<std::string> MemOss::Read(const std::string& path, std::uint64_t offset,
                                 std::uint32_t length) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Result<std::string>::Err(proto::XrdErr::kNotFound,
                                    "read '" + path + "': not found");
  }
  const File& f = it->second;
  if (offset >= f.data.size()) return std::string();  // EOF: empty read
  const std::size_t n = std::min<std::size_t>(length, f.data.size() - offset);
  return f.data.substr(offset, n);
}

std::optional<StatInfo> MemOss::Stat(const std::string& path) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return StatInfo{it->second.data.size(), it->second.mtime};
}

Result<void> MemOss::Unlink(const std::string& path) {
  std::lock_guard lock(mu_);
  if (files_.erase(path) == 0) {
    return Result<void>::Err(proto::XrdErr::kNotFound, "unlink '" + path + "': not found");
  }
  return Result<void>::Ok();
}

std::vector<std::string> MemOss::List(const std::string& prefix) {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void MemOss::Put(const std::string& path, std::string data) {
  std::lock_guard lock(mu_);
  files_[path] = File{std::move(data), clock_.Now()};
}

std::size_t MemOss::FileCount() const {
  std::lock_guard lock(mu_);
  return files_.size();
}

std::uint64_t MemOss::TotalBytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [_, f] : files_) total += f.data.size();
  return total;
}

}  // namespace scalla::oss

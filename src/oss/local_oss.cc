#include "oss/local_oss.h"

#include <fstream>

namespace scalla::oss {

namespace fs = std::filesystem;

LocalOss::LocalOss(fs::path root) : root_(std::move(root)) {}

std::optional<fs::path> LocalOss::Resolve(const std::string& path) const {
  fs::path rel(path);
  fs::path out = root_;
  for (const auto& part : rel.relative_path()) {
    if (part == "..") return std::nullopt;
    if (part == ".") continue;
    out /= part;
  }
  return out;
}

FileState LocalOss::StateOf(const std::string& path) {
  const auto host = Resolve(path);
  if (!host) return FileState::kAbsent;
  std::error_code ec;
  return fs::is_regular_file(*host, ec) ? FileState::kOnline : FileState::kAbsent;
}

proto::XrdErr LocalOss::Create(const std::string& path) {
  const auto host = Resolve(path);
  if (!host) return proto::XrdErr::kInvalid;
  std::lock_guard lock(mu_);
  std::error_code ec;
  if (fs::exists(*host, ec)) return proto::XrdErr::kExists;
  fs::create_directories(host->parent_path(), ec);
  std::ofstream out(*host, std::ios::binary);
  return out.good() ? proto::XrdErr::kNone : proto::XrdErr::kIo;
}

proto::XrdErr LocalOss::Write(const std::string& path, std::uint64_t offset,
                              std::string_view data) {
  const auto host = Resolve(path);
  if (!host) return proto::XrdErr::kInvalid;
  std::lock_guard lock(mu_);
  std::error_code ec;
  if (!fs::is_regular_file(*host, ec)) return proto::XrdErr::kNotFound;
  std::fstream out(*host, std::ios::binary | std::ios::in | std::ios::out);
  if (!out.good()) return proto::XrdErr::kIo;
  out.seekp(static_cast<std::streamoff>(offset));
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return out.good() ? proto::XrdErr::kNone : proto::XrdErr::kIo;
}

proto::XrdErr LocalOss::Read(const std::string& path, std::uint64_t offset,
                             std::uint32_t length, std::string* out) {
  const auto host = Resolve(path);
  if (!host) return proto::XrdErr::kInvalid;
  std::ifstream in(*host, std::ios::binary);
  if (!in.good()) return proto::XrdErr::kNotFound;
  in.seekg(static_cast<std::streamoff>(offset));
  out->resize(length);
  in.read(out->data(), static_cast<std::streamsize>(length));
  out->resize(static_cast<std::size_t>(in.gcount()));
  return proto::XrdErr::kNone;
}

std::optional<StatInfo> LocalOss::Stat(const std::string& path) {
  const auto host = Resolve(path);
  if (!host) return std::nullopt;
  std::error_code ec;
  if (!fs::is_regular_file(*host, ec)) return std::nullopt;
  StatInfo info;
  info.size = fs::file_size(*host, ec);
  return info;
}

proto::XrdErr LocalOss::Unlink(const std::string& path) {
  const auto host = Resolve(path);
  if (!host) return proto::XrdErr::kInvalid;
  std::lock_guard lock(mu_);
  std::error_code ec;
  return fs::remove(*host, ec) ? proto::XrdErr::kNone : proto::XrdErr::kNotFound;
}

std::vector<std::string> LocalOss::List(const std::string& prefix) {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    std::string logical = "/" + fs::relative(it->path(), root_, ec).generic_string();
    if (logical.compare(0, prefix.size(), prefix) == 0) out.push_back(std::move(logical));
  }
  return out;
}

}  // namespace scalla::oss

#include "oss/local_oss.h"

#include <fstream>

namespace scalla::oss {

namespace fs = std::filesystem;

LocalOss::LocalOss(fs::path root) : root_(std::move(root)) {}

std::optional<fs::path> LocalOss::Resolve(const std::string& path) const {
  fs::path rel(path);
  fs::path out = root_;
  for (const auto& part : rel.relative_path()) {
    if (part == "..") return std::nullopt;
    if (part == ".") continue;
    out /= part;
  }
  return out;
}

FileState LocalOss::StateOf(const std::string& path) {
  const auto host = Resolve(path);
  if (!host) return FileState::kAbsent;
  std::error_code ec;
  return fs::is_regular_file(*host, ec) ? FileState::kOnline : FileState::kAbsent;
}

Result<void> LocalOss::Create(const std::string& path) {
  const auto host = Resolve(path);
  if (!host) {
    return Result<void>::Err(proto::XrdErr::kInvalid, "create '" + path + "': bad path");
  }
  std::lock_guard lock(mu_);
  std::error_code ec;
  if (fs::exists(*host, ec)) {
    return Result<void>::Err(proto::XrdErr::kExists, "create '" + path + "': exists");
  }
  fs::create_directories(host->parent_path(), ec);
  std::ofstream out(*host, std::ios::binary);
  if (!out.good()) {
    return Result<void>::Err(proto::XrdErr::kIo, "create '" + path + "': I/O error");
  }
  return Result<void>::Ok();
}

Result<void> LocalOss::Write(const std::string& path, std::uint64_t offset,
                             std::string_view data) {
  const auto host = Resolve(path);
  if (!host) {
    return Result<void>::Err(proto::XrdErr::kInvalid, "write '" + path + "': bad path");
  }
  std::lock_guard lock(mu_);
  std::error_code ec;
  if (!fs::is_regular_file(*host, ec)) {
    return Result<void>::Err(proto::XrdErr::kNotFound, "write '" + path + "': not found");
  }
  std::fstream out(*host, std::ios::binary | std::ios::in | std::ios::out);
  if (!out.good()) {
    return Result<void>::Err(proto::XrdErr::kIo, "write '" + path + "': I/O error");
  }
  out.seekp(static_cast<std::streamoff>(offset));
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out.good()) {
    return Result<void>::Err(proto::XrdErr::kIo, "write '" + path + "': I/O error");
  }
  return Result<void>::Ok();
}

Result<std::string> LocalOss::Read(const std::string& path, std::uint64_t offset,
                                   std::uint32_t length) {
  const auto host = Resolve(path);
  if (!host) {
    return Result<std::string>::Err(proto::XrdErr::kInvalid,
                                    "read '" + path + "': bad path");
  }
  std::ifstream in(*host, std::ios::binary);
  if (!in.good()) {
    return Result<std::string>::Err(proto::XrdErr::kNotFound,
                                    "read '" + path + "': not found");
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::string out;
  out.resize(length);
  in.read(out.data(), static_cast<std::streamsize>(length));
  out.resize(static_cast<std::size_t>(in.gcount()));
  return out;
}

std::optional<StatInfo> LocalOss::Stat(const std::string& path) {
  const auto host = Resolve(path);
  if (!host) return std::nullopt;
  std::error_code ec;
  if (!fs::is_regular_file(*host, ec)) return std::nullopt;
  StatInfo info;
  info.size = fs::file_size(*host, ec);
  return info;
}

Result<void> LocalOss::Unlink(const std::string& path) {
  const auto host = Resolve(path);
  if (!host) {
    return Result<void>::Err(proto::XrdErr::kInvalid, "unlink '" + path + "': bad path");
  }
  std::lock_guard lock(mu_);
  std::error_code ec;
  if (!fs::remove(*host, ec)) {
    return Result<void>::Err(proto::XrdErr::kNotFound, "unlink '" + path + "': not found");
  }
  return Result<void>::Ok();
}

std::vector<std::string> LocalOss::List(const std::string& prefix) {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    std::string logical = "/" + fs::relative(it->path(), root_, ec).generic_string();
    if (logical.compare(0, prefix.size(), prefix) == 0) out.push_back(std::move(logical));
  }
  return out;
}

}  // namespace scalla::oss

// MetricsSnapshot: a point-in-time, plain-data copy of a MetricsRegistry.
// Snapshots travel on the wire (kStatsReply) and merge up the cluster tree,
// so this header depends only on the standard library — proto/messages.h
// includes it to embed a snapshot in a message struct.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace scalla::obs {

/// Fixed-quantile digest of a histogram. Percentiles are approximate after
/// a Merge (count-weighted averages), exact for a single-node snapshot.
struct HistogramStat {
  std::uint64_t count = 0;
  std::int64_t minNanos = 0;
  std::int64_t maxNanos = 0;
  double meanNanos = 0;
  double p50Nanos = 0;
  double p99Nanos = 0;

  bool operator==(const HistogramStat&) const = default;
};

/// Name→value tables, each kept sorted by name so snapshots are
/// deterministic and two snapshots of the same cluster state compare equal.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStat>> histograms;

  bool operator==(const MetricsSnapshot&) const = default;

  /// Adds `delta` to the named counter, inserting it (sorted) if missing.
  void AddCounter(const std::string& name, std::uint64_t delta);
  /// Adds `delta` to the named gauge, inserting it (sorted) if missing.
  void AddGauge(const std::string& name, std::int64_t delta);
  /// Merges a histogram digest: counts sum, min/max take extremes,
  /// mean/percentiles become count-weighted averages.
  void MergeHistogram(const std::string& name, const HistogramStat& h);

  /// Folds `other` into this snapshot (counter/gauge sums, digest merges).
  void Merge(const MetricsSnapshot& other);

  /// Value lookups; 0 / nullptr when the name is absent.
  std::uint64_t Counter(const std::string& name) const;
  std::int64_t Gauge(const std::string& name) const;
  const HistogramStat* Histogram(const std::string& name) const;

  /// Single-line-per-metric human listing, sorted by name.
  std::string ToText() const;
  /// Compact JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
};

}  // namespace scalla::obs

// MetricsRegistry: named Counter/Gauge/Histogram instruments with a cheap
// Snapshot(). Instruments live as long as the registry (std::map gives
// stable addresses), so hot paths hold plain references and pay one relaxed
// atomic op per event. Snapshot() is safe against concurrent writers —
// counters/gauges are atomics, histograms take a short mutex — which is what
// lets the daemon thread and the stats protocol read while actors write.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/snapshot.h"
#include "util/stats.h"

namespace scalla::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, open handles); can go down.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency distribution backed by util::LatencyRecorder. The mutex makes
/// Record/Digest safe across threads; actor hot paths are single-threaded so
/// the lock is uncontended there.
class Histogram {
 public:
  void Record(Duration d) { RecordNanos(d.count()); }
  void RecordNanos(std::int64_t ns) {
    std::lock_guard lock(mu_);
    recorder_.RecordNanos(ns);
  }

  std::size_t count() const {
    std::lock_guard lock(mu_);
    return recorder_.count();
  }
  double MeanNanos() const {
    std::lock_guard lock(mu_);
    return recorder_.MeanNanos();
  }
  std::int64_t PercentileNanos(double q) const {
    std::lock_guard lock(mu_);
    return recorder_.PercentileNanos(q);
  }

  /// Fixed-quantile digest for snapshots; all-zero when empty.
  HistogramStat Digest() const;

 private:
  mutable std::mutex mu_;
  util::LatencyRecorder recorder_;
};

/// Owns instruments by name. GetX() registers on first use and returns the
/// same instrument on every later call, so call sites can cache references.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Point-in-time copy of every instrument, name-sorted.
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;  // guards map shape only, not instrument values
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace scalla::obs

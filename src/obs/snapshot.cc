#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>

namespace scalla::obs {
namespace {

// Finds the slot for `name` in a name-sorted vector, inserting a default
// entry when absent. Returns the (possibly new) element.
template <typename V>
V& SortedSlot(std::vector<std::pair<std::string, V>>& table, const std::string& name) {
  const auto it = std::lower_bound(
      table.begin(), table.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it != table.end() && it->first == name) return it->second;
  return table.insert(it, {name, V{}})->second;
}

template <typename V>
const V* SortedFind(const std::vector<std::pair<std::string, V>>& table,
                    const std::string& name) {
  const auto it = std::lower_bound(
      table.begin(), table.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it != table.end() && it->first == name) return &it->second;
  return nullptr;
}

std::string JsonNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void MetricsSnapshot::AddCounter(const std::string& name, std::uint64_t delta) {
  SortedSlot(counters, name) += delta;
}

void MetricsSnapshot::AddGauge(const std::string& name, std::int64_t delta) {
  SortedSlot(gauges, name) += delta;
}

void MetricsSnapshot::MergeHistogram(const std::string& name, const HistogramStat& h) {
  if (h.count == 0) return;  // empty digests carry no information
  HistogramStat& slot = SortedSlot(histograms, name);
  if (slot.count == 0) {
    slot = h;
    return;
  }
  const double a = static_cast<double>(slot.count);
  const double b = static_cast<double>(h.count);
  slot.minNanos = std::min(slot.minNanos, h.minNanos);
  slot.maxNanos = std::max(slot.maxNanos, h.maxNanos);
  slot.meanNanos = (slot.meanNanos * a + h.meanNanos * b) / (a + b);
  slot.p50Nanos = (slot.p50Nanos * a + h.p50Nanos * b) / (a + b);
  slot.p99Nanos = (slot.p99Nanos * a + h.p99Nanos * b) / (a + b);
  slot.count += h.count;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) AddCounter(name, v);
  for (const auto& [name, v] : other.gauges) AddGauge(name, v);
  for (const auto& [name, h] : other.histograms) MergeHistogram(name, h);
}

std::uint64_t MetricsSnapshot::Counter(const std::string& name) const {
  const std::uint64_t* v = SortedFind(counters, name);
  return v == nullptr ? 0 : *v;
}

std::int64_t MetricsSnapshot::Gauge(const std::string& name) const {
  const std::int64_t* v = SortedFind(gauges, name);
  return v == nullptr ? 0 : *v;
}

const HistogramStat* MetricsSnapshot::Histogram(const std::string& name) const {
  return SortedFind(histograms, name);
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), "%-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof(buf), "%-40s %lld\n", name.c_str(),
                  static_cast<long long>(v));
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-40s n=%llu mean=%.0fns p50=%.0fns p99=%.0fns max=%lldns\n",
                  name.c_str(), static_cast<unsigned long long>(h.count), h.meanNanos,
                  h.p50Nanos, h.p99Nanos, static_cast<long long>(h.maxNanos));
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":" + std::to_string(h.count) +
           ",\"min_ns\":" + std::to_string(h.minNanos) +
           ",\"max_ns\":" + std::to_string(h.maxNanos) +
           ",\"mean_ns\":" + JsonNumber(h.meanNanos) +
           ",\"p50_ns\":" + JsonNumber(h.p50Nanos) +
           ",\"p99_ns\":" + JsonNumber(h.p99Nanos) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace scalla::obs

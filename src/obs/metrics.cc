#include "obs/metrics.h"

namespace scalla::obs {

HistogramStat Histogram::Digest() const {
  std::lock_guard lock(mu_);
  HistogramStat d;
  d.count = recorder_.count();
  if (d.count == 0) return d;
  d.minNanos = recorder_.MinNanos();
  d.maxNanos = recorder_.MaxNanos();
  d.meanNanos = recorder_.MeanNanos();
  const auto pcts = recorder_.PercentilesNanos({0.5, 0.99});
  d.p50Nanos = static_cast<double>(pcts[0]);
  d.p99Nanos = static_cast<double>(pcts[1]);
  return d;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard lock(mu_);
  return histograms_[name];
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c.Value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g.Value());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h.Digest());
  }
  return snap;
}

}  // namespace scalla::obs

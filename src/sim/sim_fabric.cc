#include "sim/sim_fabric.h"

#include <algorithm>
#include <utility>

namespace scalla::sim {
namespace {

std::uint64_t LinkKey(net::NodeAddr a, net::NodeAddr b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

}  // namespace

SimFabric::SimFabric(EventEngine& engine, LatencyModel model, std::uint64_t seed)
    : engine_(engine), model_(model), rng_(seed) {}

void SimFabric::Register(net::NodeAddr addr, net::MessageSink* sink) {
  sinks_[addr] = sink;
}

void SimFabric::Unregister(net::NodeAddr addr) { sinks_.erase(addr); }

bool SimFabric::Reachable(net::NodeAddr from, net::NodeAddr to) const {
  if (down_.count(from) != 0 || down_.count(to) != 0) return false;
  if (cutLinks_.count(LinkKey(from, to)) != 0) return false;
  return sinks_.count(to) != 0;
}

void SimFabric::Send(net::NodeAddr from, net::NodeAddr to, proto::Message message) {
  ++counters_.messagesSent;
  if (wedged_.count(from) != 0 || wedged_.count(to) != 0) {
    // A wedged endpoint's connections look healthy, so the loss is silent:
    // no OnPeerDown, unlike the downed/cut cases below.
    ++counters_.messagesDropped;
    return;
  }
  if (!Reachable(from, to)) {
    ++counters_.messagesDropped;
    // Model a broken connection: the sender learns its peer is gone.
    const auto senderIt = sinks_.find(from);
    if (senderIt != sinks_.end() && down_.count(from) == 0) {
      net::MessageSink* sender = senderIt->second;
      engine_.Post([sender, to] { sender->OnPeerDown(to); });
    }
    return;
  }
  Duration wire = model_.linkLatency;
  if (model_.jitter > Duration::zero()) {
    wire += Duration(static_cast<std::int64_t>(
        rng_.NextBelow(static_cast<std::uint64_t>(model_.jitter.count()))));
  }
  // Single-threaded receiver model: the message starts service when it
  // arrives AND the receiver is free; handler runs at service completion.
  TimePoint deliverAt = engine_.Now() + wire + model_.serviceTime;
  if (model_.serialService) {
    const TimePoint arrival = engine_.Now() + wire;
    TimePoint& busy = busyUntil_[to];
    const TimePoint start = std::max(arrival, busy);
    busy = start + model_.serviceTime;
    deliverAt = busy;
  }
  const std::size_t type = message.index();
  engine_.ScheduleAt(deliverAt,
                     [this, from, to, msg = std::move(message), type]() mutable {
                       // Re-check reachability at delivery time: a link cut
                       // (or wedge) while the message was "in flight" loses it.
                       if (wedged_.count(from) != 0 || wedged_.count(to) != 0 ||
                           !Reachable(from, to)) {
                         ++counters_.messagesDropped;
                         return;
                       }
                       ++counters_.messagesDelivered;
                       ++deliveredByType_[type];
                       sinks_[to]->OnMessage(from, std::move(msg));
                     });
}

net::Fabric::Counters SimFabric::GetCounters() const { return counters_; }

void SimFabric::SetDown(net::NodeAddr addr, bool down) {
  if (down) {
    down_.insert(addr);
  } else {
    down_.erase(addr);
  }
}

void SimFabric::SetWedged(net::NodeAddr addr, bool wedged) {
  if (wedged) {
    wedged_.insert(addr);
  } else {
    wedged_.erase(addr);
  }
}

void SimFabric::SetLinkCut(net::NodeAddr a, net::NodeAddr b, bool cut) {
  if (cut) {
    cutLinks_.insert(LinkKey(a, b));
  } else {
    cutLinks_.erase(LinkKey(a, b));
  }
}

std::uint64_t SimFabric::DeliveredOfType(std::size_t variantIndex) const {
  const auto it = deliveredByType_.find(variantIndex);
  return it == deliveredByType_.end() ? 0 : it->second;
}

void SimFabric::ResetCounters() {
  counters_ = Counters{};
  deliveredByType_.clear();
}

}  // namespace scalla::sim

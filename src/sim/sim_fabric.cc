#include "sim/sim_fabric.h"

#include <algorithm>
#include <utility>

namespace scalla::sim {
namespace {

std::uint64_t LinkKey(net::NodeAddr a, net::NodeAddr b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

}  // namespace

SimFabric::SimFabric(EventEngine& engine, LatencyModel model, std::uint64_t seed,
                     net::FabricOptions options)
    : engine_(engine), model_(model), rng_(seed), options_(options) {}

void SimFabric::Register(net::NodeAddr addr, net::MessageSink* sink) {
  sinks_[addr] = sink;
}

void SimFabric::Unregister(net::NodeAddr addr) { sinks_.erase(addr); }

bool SimFabric::Reachable(net::NodeAddr from, net::NodeAddr to) const {
  if (down_.count(from) != 0 || down_.count(to) != 0) return false;
  if (cutLinks_.count(LinkKey(from, to)) != 0) return false;
  return sinks_.count(to) != 0;
}

void SimFabric::Send(net::NodeAddr from, net::NodeAddr to, proto::Message message) {
  ++counters_.messagesSent;
  ++perPeer_[to].messagesSent;
  if (wedged_.count(from) != 0 || wedged_.count(to) != 0) {
    // A wedged endpoint's connections look healthy, so the loss is silent:
    // no OnPeerDown, unlike the downed/cut cases below.
    ++counters_.messagesDropped;
    ++perPeer_[to].messagesDropped;
    return;
  }
  if (!Reachable(from, to)) {
    ++counters_.messagesDropped;
    ++perPeer_[to].messagesDropped;
    // Model a broken connection: the sender learns its peer is gone.
    const auto senderIt = sinks_.find(from);
    if (senderIt != sinks_.end() && down_.count(from) == 0) {
      net::MessageSink* sender = senderIt->second;
      engine_.Post([sender, to] { sender->OnPeerDown(to); });
    }
    return;
  }
  if (drops_.count(PairKey(from, to)) != 0) {
    // Lossy link: the message vanishes silently (the sender is NOT told,
    // matching the TCP transport's SetDrop).
    ++counters_.messagesDropped;
    ++perPeer_[to].messagesDropped;
    return;
  }
  // The same bounded-queue semantics as the TCP transport: too many
  // messages in flight on one (from,to) pair overflows, drops, and
  // signals the sender.
  std::uint64_t& inFlight = inFlight_[PairKey(from, to)];
  if (inFlight >= options_.maxQueuedMessages) {
    ++counters_.messagesDropped;
    ++counters_.queueOverflows;
    ++perPeer_[to].messagesDropped;
    ++perPeer_[to].queueOverflows;
    const auto senderIt = sinks_.find(from);
    if (senderIt != sinks_.end()) {
      net::MessageSink* sender = senderIt->second;
      engine_.Post([sender, to] { sender->OnPeerDown(to); });
    }
    return;
  }
  ++inFlight;
  Duration wire = model_.linkLatency;
  if (model_.jitter > Duration::zero()) {
    wire += Duration(static_cast<std::int64_t>(
        rng_.NextBelow(static_cast<std::uint64_t>(model_.jitter.count()))));
  }
  const auto delayIt = delays_.find(PairKey(from, to));
  if (delayIt != delays_.end()) wire += delayIt->second;
  // Single-threaded receiver model: the message starts service when it
  // arrives AND the receiver is free; handler runs at service completion.
  TimePoint deliverAt = engine_.Now() + wire + model_.serviceTime;
  if (model_.serialService) {
    const TimePoint arrival = engine_.Now() + wire;
    TimePoint& busy = busyUntil_[to];
    const TimePoint start = std::max(arrival, busy);
    busy = start + model_.serviceTime;
    deliverAt = busy;
  }
  const std::size_t type = message.index();
  engine_.ScheduleAt(deliverAt,
                     [this, from, to, msg = std::move(message), type]() mutable {
                       auto& inFlightNow = inFlight_[PairKey(from, to)];
                       if (inFlightNow > 0) --inFlightNow;
                       // Re-check reachability at delivery time: a link cut
                       // (wedge, drop) while the message was "in flight"
                       // loses it.
                       if (wedged_.count(from) != 0 || wedged_.count(to) != 0 ||
                           drops_.count(PairKey(from, to)) != 0 ||
                           !Reachable(from, to)) {
                         ++counters_.messagesDropped;
                         ++perPeer_[to].messagesDropped;
                         return;
                       }
                       ++counters_.messagesDelivered;
                       ++perPeer_[from].messagesDelivered;
                       ++deliveredByType_[type];
                       sinks_[to]->OnMessage(from, std::move(msg));
                     });
}

net::Fabric::Counters SimFabric::GetCounters() const { return counters_; }

net::Fabric::Counters SimFabric::PerPeerCounters(net::NodeAddr peer) const {
  const auto it = perPeer_.find(peer);
  return it == perPeer_.end() ? Counters{} : it->second;
}

void SimFabric::SetDown(net::NodeAddr addr, bool down) {
  if (down) {
    down_.insert(addr);
  } else {
    down_.erase(addr);
  }
}

void SimFabric::SetWedged(net::NodeAddr addr, bool wedged) {
  if (wedged) {
    wedged_.insert(addr);
  } else {
    wedged_.erase(addr);
  }
}

void SimFabric::SetLinkCut(net::NodeAddr a, net::NodeAddr b, bool cut) {
  if (cut) {
    cutLinks_.insert(LinkKey(a, b));
  } else {
    cutLinks_.erase(LinkKey(a, b));
  }
}

void SimFabric::SetDrop(net::NodeAddr from, net::NodeAddr to, bool drop) {
  if (drop) {
    drops_.insert(PairKey(from, to));
  } else {
    drops_.erase(PairKey(from, to));
  }
}

void SimFabric::SetDelay(net::NodeAddr from, net::NodeAddr to, Duration delay) {
  if (delay > Duration::zero()) {
    delays_[PairKey(from, to)] = delay;
  } else {
    delays_.erase(PairKey(from, to));
  }
}

std::uint64_t SimFabric::DeliveredOfType(std::size_t variantIndex) const {
  const auto it = deliveredByType_.find(variantIndex);
  return it == deliveredByType_.end() ? 0 : it->second;
}

void SimFabric::ResetCounters() {
  counters_ = Counters{};
  perPeer_.clear();
  deliveredByType_.clear();
}

}  // namespace scalla::sim

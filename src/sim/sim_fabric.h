// In-process message fabric with a configurable latency model, driven by
// the discrete-event engine. Reproduces the paper's LAN environment shape:
// a per-link one-way latency (default 25 us) plus a per-message CPU
// service time (default 5 us), with optional jitter. Supports failure
// injection (downed endpoints, cut links) and per-message-type counters
// for the protocol-efficiency experiment (E06).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "net/fabric.h"
#include "sim/event_engine.h"
#include "util/rng.h"

namespace scalla::sim {

struct LatencyModel {
  Duration linkLatency = std::chrono::microseconds(25);   // one-way wire+stack
  Duration serviceTime = std::chrono::microseconds(5);    // receiver CPU cost
  Duration jitter = Duration::zero();                     // uniform [0, jitter)
  // When true (default) each endpoint serves messages one at a time, so
  // offered load queues behind a busy receiver — the contention that makes
  // "redirection time rises with a very low linear slope as load
  // increases" (paper section II-B5) measurable. When false, delivery is
  // pure delay (infinite receiver capacity).
  bool serialService = true;
};

class SimFabric final : public net::Fabric {
 public:
  explicit SimFabric(EventEngine& engine, LatencyModel model = {},
                     std::uint64_t seed = 0xfab41cULL);

  /// Registers an endpoint. Delivery runs as an engine event.
  void Register(net::NodeAddr addr, net::MessageSink* sink);
  void Unregister(net::NodeAddr addr);

  // ---- net::Fabric ----
  void Send(net::NodeAddr from, net::NodeAddr to, proto::Message message) override;
  Counters GetCounters() const override;

  // ---- failure injection ----
  /// Downed endpoints drop everything in and out; peers that later send to
  /// them get OnPeerDown on first drop (models a broken connection).
  void SetDown(net::NodeAddr addr, bool down);
  /// Cuts (or restores) the bidirectional link between two endpoints.
  void SetLinkCut(net::NodeAddr a, net::NodeAddr b, bool cut);
  /// Wedges an endpoint: the process hangs but its connections stay "up",
  /// so everything it sends or receives is silently lost and NO peer gets
  /// OnPeerDown — the failure mode only a heartbeat can detect.
  void SetWedged(net::NodeAddr addr, bool wedged);

  /// Per-message-type delivered counts, keyed by variant index (E06).
  std::uint64_t DeliveredOfType(std::size_t variantIndex) const;
  void ResetCounters();

 private:
  bool Reachable(net::NodeAddr from, net::NodeAddr to) const;

  EventEngine& engine_;
  LatencyModel model_;
  util::Rng rng_;
  std::unordered_map<net::NodeAddr, net::MessageSink*> sinks_;
  std::unordered_map<net::NodeAddr, TimePoint> busyUntil_;  // per-receiver queue
  std::unordered_set<net::NodeAddr> down_;
  std::unordered_set<net::NodeAddr> wedged_;
  std::unordered_set<std::uint64_t> cutLinks_;  // key: min<<32|max
  Counters counters_;
  std::unordered_map<std::size_t, std::uint64_t> deliveredByType_;
};

}  // namespace scalla::sim

// In-process message fabric with a configurable latency model, driven by
// the discrete-event engine. Reproduces the paper's LAN environment shape:
// a per-link one-way latency (default 25 us) plus a per-message CPU
// service time (default 5 us), with optional jitter. Implements the full
// net::FaultInjector surface (down, cut, drop, delay, wedge) so chaos
// scenarios written against net::Fabric* run unchanged over the simulator
// and over real sockets, and per-message-type counters for the
// protocol-efficiency experiment (E06).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "net/fabric.h"
#include "sim/event_engine.h"
#include "util/rng.h"

namespace scalla::sim {

struct LatencyModel {
  Duration linkLatency = std::chrono::microseconds(25);   // one-way wire+stack
  Duration serviceTime = std::chrono::microseconds(5);    // receiver CPU cost
  Duration jitter = Duration::zero();                     // uniform [0, jitter)
  // When true (default) each endpoint serves messages one at a time, so
  // offered load queues behind a busy receiver — the contention that makes
  // "redirection time rises with a very low linear slope as load
  // increases" (paper section II-B5) measurable. When false, delivery is
  // pure delay (infinite receiver capacity).
  bool serialService = true;
};

class SimFabric final : public net::Fabric {
 public:
  /// `options` is the same struct the TCP transport takes; the simulator
  /// honours maxQueuedMessages semantically (as a per-(from,to) in-flight
  /// bound) and ignores the socket-level knobs (loopThreads, timeouts,
  /// sendBufferBytes), which have no in-process analogue.
  explicit SimFabric(EventEngine& engine, LatencyModel model = {},
                     std::uint64_t seed = 0xfab41cULL,
                     net::FabricOptions options = {});

  /// Registers an endpoint. Delivery runs as an engine event.
  void Register(net::NodeAddr addr, net::MessageSink* sink);
  void Unregister(net::NodeAddr addr);

  // ---- net::Fabric ----
  void Send(net::NodeAddr from, net::NodeAddr to, proto::Message message) override;
  Counters GetCounters() const override;
  Counters PerPeerCounters(net::NodeAddr peer) const override;

  // ---- net::FaultInjector ----
  void SetDown(net::NodeAddr addr, bool down) override;
  void SetLinkCut(net::NodeAddr a, net::NodeAddr b, bool cut) override;
  /// Silent one-way loss from -> to: messages vanish, no OnPeerDown.
  void SetDrop(net::NodeAddr from, net::NodeAddr to, bool drop) override;
  /// Extra one-way latency added to each message from -> to (the sim
  /// analogue of the TCP transport's per-pair send pacing). Zero clears.
  void SetDelay(net::NodeAddr from, net::NodeAddr to, Duration delay) override;
  void SetWedged(net::NodeAddr addr, bool wedged) override;

  /// Per-message-type delivered counts, keyed by variant index (E06).
  std::uint64_t DeliveredOfType(std::size_t variantIndex) const;
  void ResetCounters();

 private:
  bool Reachable(net::NodeAddr from, net::NodeAddr to) const;
  static std::uint64_t PairKey(net::NodeAddr from, net::NodeAddr to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  EventEngine& engine_;
  LatencyModel model_;
  util::Rng rng_;
  net::FabricOptions options_;
  std::unordered_map<net::NodeAddr, net::MessageSink*> sinks_;
  std::unordered_map<net::NodeAddr, TimePoint> busyUntil_;  // per-receiver queue
  std::unordered_set<net::NodeAddr> down_;
  std::unordered_set<net::NodeAddr> wedged_;
  std::unordered_set<std::uint64_t> cutLinks_;  // key: min<<32|max
  std::unordered_set<std::uint64_t> drops_;     // key: from<<32|to
  std::unordered_map<std::uint64_t, Duration> delays_;  // key: from<<32|to
  std::unordered_map<std::uint64_t, std::uint64_t> inFlight_;  // per-pair bound
  Counters counters_;
  std::map<net::NodeAddr, Counters> perPeer_;
  std::unordered_map<std::size_t, std::uint64_t> deliveredByType_;
};

}  // namespace scalla::sim

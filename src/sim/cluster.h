// Cluster harness: builds a complete Scalla deployment — 64-ary tree of
// manager / supervisors / servers (Figure 1), per-leaf storage, clients —
// inside one discrete-event simulation, and provides synchronous driving
// helpers for tests, benchmarks and examples.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/scalla_client.h"
#include "cnsd/cns_daemon.h"
#include "oss/mem_oss.h"
#include "oss/mss_oss.h"
#include "pcache/proxy_node.h"
#include "sim/event_engine.h"
#include "sim/sim_fabric.h"
#include "util/result.h"
#include "xrd/scalla_node.h"

namespace scalla::sim {

struct ClusterSpec {
  int servers = 4;   // leaf data servers
  int managers = 1;  // redundant logical heads ("which can be one of many")
  int fanout = kMaxServersPerSet;  // children per head (64 in the paper)
  std::vector<std::string> exports{"/store"};
  cms::CmsConfig cms;
  LatencyModel latency;
  cms::SelectCriterion selection = cms::SelectCriterion::kRoundRobin;
  bool alwaysRespond = false;  // E06 baseline protocol
  bool withMss = false;        // leaves get a staging-capable backend
  oss::MssConfig mss;
  bool withCnsd = false;       // run a Cluster Name Space daemon
  // Proxy cache tier (pcache): one caching proxy fronting the head.
  bool withProxy = false;
  pcache::BlockCacheConfig proxyCache;   // DRAM tier
  // Disk tier (0 disables): simulated with a SimCluster-owned MemOss, so
  // tests and benches exercise spill/promote/ghost admission without
  // touching the host file system.
  std::uint64_t proxyDiskCapacity = 0;
  double proxyDiskHighWatermark = 0.95;
  double proxyDiskLowWatermark = 0.80;
  std::size_t proxyGhostEntries = 0;     // 0 = auto
  int proxyReadAhead = 0;
  // Per-attempt open timeout for clients made by NewClient (0 = client
  // default). Liveness tests shorten it so opens vectored at a wedged
  // server recover quickly.
  Duration clientOpenTimeout = Duration::zero();
  // Federation: when `meta` is set the cluster head subscribes to that
  // meta-manager under `clusterName` with the given locality weight.
  net::NodeAddr meta = 0;
  std::string clusterName;
  std::uint32_t locality = 0;
};

class SimCluster {
 public:
  explicit SimCluster(const ClusterSpec& spec);
  /// Builds the cluster on a shared engine/fabric (federation harness):
  /// node addresses are allocated starting at `firstAddr`, so several
  /// clusters can coexist on one fabric with disjoint address bands.
  SimCluster(const ClusterSpec& spec, EventEngine& engine, SimFabric& fabric,
             net::NodeAddr firstAddr);
  ~SimCluster();

  /// Starts every node and settles logins (virtual time advances a hair).
  void Start();

  EventEngine& engine() { return *engine_; }
  SimFabric& fabric() { return *fabric_; }
  xrd::ScallaNode& head() { return *managers_[0]; }
  std::size_t ManagerCount() const { return managers_.size(); }
  xrd::ScallaNode& manager(std::size_t i) { return *managers_[i]; }
  /// Crashes / restores a redundant manager (head failover testing).
  void CrashManager(std::size_t i);
  void RestoreManager(std::size_t i);

  std::size_t ServerCount() const { return leaves_.size(); }
  xrd::ScallaNode& server(std::size_t i) { return *leaves_[i]; }
  oss::MemOss& storage(std::size_t i) { return *storages_[i]; }
  oss::MssOss* mssStorage(std::size_t i);
  std::size_t SupervisorCount() const { return supervisors_.size(); }
  xrd::ScallaNode& supervisor(std::size_t i) { return *supervisors_[i]; }

  /// Tree depth in redirection hops from the head to a leaf (1 when the
  /// manager's children are the servers).
  int Depth() const { return depth_; }

  /// Creates a client endpoint attached to the head.
  client::ScallaClient& NewClient();

  /// The proxy cache tier (spec.withProxy), or nullptr.
  pcache::ProxyCacheNode* proxy() { return proxy_.get(); }
  /// Creates a client whose head IS the proxy (spec.withProxy required).
  client::ScallaClient& NewProxyClient();

  /// The namespace daemon (spec.withCnsd), or nullptr.
  cnsd::CnsDaemon* cns() { return cns_.get(); }
  /// Drives a client List through the cnsd to completion.
  Result<std::vector<std::string>> ListAndWait(client::ScallaClient& c,
                                               const std::string& prefix);

  /// Seeds `path` with `data` on leaf `i` (bypassing the protocol, like
  /// files pre-placed by a transfer system).
  void PlaceFile(std::size_t i, const std::string& path, std::string data);

  // ---- synchronous driving helpers (run the engine until completion) ----
  client::OpenOutcome OpenAndWait(client::ScallaClient& c, const std::string& path,
                                  cms::AccessMode mode, bool create,
                                  Duration timeout = std::chrono::seconds(120));
  Result<std::string> ReadAll(client::ScallaClient& c, const std::string& path);
  Result<void> PutFile(client::ScallaClient& c, const std::string& path,
                       std::string data);
  Result<void> UnlinkAndWait(client::ScallaClient& c, const std::string& path);
  Result<void> PrepareAndWait(client::ScallaClient& c,
                              const std::vector<std::string>& paths,
                              cms::AccessMode mode);

  /// Tree-aggregated metrics via the observability protocol: issues a
  /// StatsQuery from `c` (or a throwaway client when null) against the
  /// current head and drives the engine until the reply lands.
  client::ScallaClient::ClusterStats ClusterStats(client::ScallaClient* c = nullptr);

  /// Crashes leaf `i`: drops it from the fabric so peers see it down.
  void CrashServer(std::size_t i);
  /// Restarts leaf `i` (it re-logs-in; run the engine to settle).
  void RestartServer(std::size_t i);
  /// Wedges leaf `i`: the process hangs with its connections intact, so
  /// nobody gets OnPeerDown — only the heartbeat notices.
  void WedgeServer(std::size_t i);
  /// Un-wedges leaf `i`; the head's next reconnect invitation restores it.
  void UnwedgeServer(std::size_t i);

  /// Drives a client Drain/restore through the head to completion.
  Result<proto::CmsDrainResp> DrainAndWait(client::ScallaClient& c,
                                           const std::string& server,
                                           bool restore = false);

  /// Advances virtual time by `d`, processing periodic timers on the way.
  void RunFor(Duration d);

  const ClusterSpec& spec() const { return spec_; }

 private:
  struct BuildResult {
    net::NodeAddr addr = 0;
    int depth = 0;
  };
  BuildResult BuildSubtree(const std::vector<net::NodeAddr>& parents, int nServers,
                           int level);
  void BuildChildren(const std::vector<net::NodeAddr>& parents, int nServers, int level,
                     int* maxChildDepth);
  void Build();
  net::NodeAddr NextAddr() { return nextAddr_++; }
  xrd::ScallaNode* FindNode(net::NodeAddr addr);

  ClusterSpec spec_;
  // Standalone clusters own their engine/fabric; federated ones borrow a
  // shared pair from the SimFederation harness.
  std::unique_ptr<EventEngine> ownedEngine_;
  std::unique_ptr<SimFabric> ownedFabric_;
  EventEngine* engine_ = nullptr;
  SimFabric* fabric_ = nullptr;
  net::NodeAddr nextAddr_ = 1;
  int depth_ = 0;
  int supervisorSeq_ = 0;

  std::unique_ptr<cnsd::CnsDaemon> cns_;
  net::NodeAddr cnsAddr_ = 0;
  std::vector<std::unique_ptr<xrd::ScallaNode>> managers_;
  std::vector<std::unique_ptr<xrd::ScallaNode>> supervisors_;
  std::vector<std::unique_ptr<xrd::ScallaNode>> leaves_;
  // Declared before proxy_: the disk tier must outlive the proxy that
  // spills into it.
  std::unique_ptr<oss::MemOss> proxyDisk_;
  std::unique_ptr<pcache::ProxyCacheNode> proxy_;
  std::vector<std::unique_ptr<oss::MemOss>> storages_;
  std::vector<std::unique_ptr<client::ScallaClient>> clients_;
};

}  // namespace scalla::sim

// Workload generation and measurement over a SimCluster: file population
// with configurable replication, Zipf-popularity open streams, and a
// closed-loop multi-client load driver — the synthetic stand-ins for the
// paper's HEP analysis traffic (section II-A: "several meta-data
// operations on dozens of files per job", thousands of transactions/s).
#pragma once

#include <string>
#include <vector>

#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"

namespace scalla::sim {

/// Seeds `nFiles` distinct files, each replicated on `replication` random
/// distinct leaves. Returns the paths ("/store/data/runNNN/fileNNN.root").
std::vector<std::string> PopulateFiles(SimCluster& cluster, std::size_t nFiles,
                                       int replication, util::Rng& rng,
                                       std::size_t fileSize = 0);

struct WorkloadResult {
  util::LatencyRecorder latency;  // client-observed open latency (virtual time)
  std::size_t completed = 0;
  std::size_t errors = 0;
  // Simulated time the workload spanned (engine clock delta) vs host time
  // spent computing it. Campaign JSON reports both under distinct keys so
  // a loaded CI machine can never flip a latency claim check: every claim
  // is judged on simElapsed / recorded virtual latencies, wallSeconds is
  // informational only.
  Duration simElapsed = Duration::zero();
  double wallSeconds = 0;
};

/// Sequential open stream from one client; file choice is Zipf(s) over
/// `paths` (s = 0 -> uniform). Each open is driven to completion before
/// the next (pure latency measurement, no queueing).
WorkloadResult RunOpenStream(SimCluster& cluster, client::ScallaClient& client,
                             const std::vector<std::string>& paths, std::size_t nOps,
                             double zipfS, util::Rng& rng);

/// Closed-loop load: `nClients` clients each keep one open outstanding
/// (completing one immediately issues the next) until `totalOps` complete.
/// This is how the "redirection time rises with a very low linear slope as
/// load increases" claim (section II-B5) is measured: offered load scales
/// with the client count.
WorkloadResult RunClosedLoopLoad(SimCluster& cluster, std::size_t nClients,
                                 const std::vector<std::string>& paths,
                                 std::size_t totalOps, double zipfS, util::Rng& rng);

/// Closed-loop load over caller-provided client endpoints (the scenario
/// factory reuses one bounded actor pool across load phases instead of
/// registering fresh fabric endpoints per phase). Only the first
/// `nClients` of `clients` participate.
WorkloadResult RunClosedLoopLoad(SimCluster& cluster,
                                 const std::vector<client::ScallaClient*>& clients,
                                 std::size_t nClients,
                                 const std::vector<std::string>& paths,
                                 std::size_t totalOps, double zipfS, util::Rng& rng);

}  // namespace scalla::sim

// Discrete-event simulation engine: a virtual clock plus an event queue.
// Implements sched::Executor so the cms/xrd node code runs unmodified with
// virtual time. Single-threaded by design: determinism is the point.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>

#include "sched/executor.h"
#include "util/clock.h"
#include "util/types.h"

namespace scalla::sim {

class SimClock final : public util::Clock {
 public:
  TimePoint Now() const override { return now_; }
  void Set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_{};
};

class EventEngine final : public sched::Executor {
 public:
  EventEngine() = default;

  // ---- sched::Executor ----
  void Post(sched::Task task) override;
  sched::TimerId RunAfter(Duration delay, sched::Task task) override;
  sched::TimerId RunEvery(Duration period, sched::Task task) override;
  bool Cancel(sched::TimerId id) override;
  util::Clock& clock() override { return clock_; }

  // ---- simulation control ----
  /// Schedules `task` at absolute virtual time `at` (>= Now()).
  void ScheduleAt(TimePoint at, sched::Task task);

  /// Processes events until the queue is empty (periodic timers are paused
  /// during drain so they cannot run forever). Returns events processed.
  std::size_t RunUntilIdle();

  /// Advances virtual time to `deadline`, processing every event due in
  /// between (including periodic timers). Returns events processed.
  std::size_t RunUntil(TimePoint deadline);
  std::size_t RunFor(Duration d) { return RunUntil(clock_.Now() + d); }

  /// Processes events until `stop()` returns true or `deadline` passes.
  /// Returns true if the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& stop, TimePoint deadline);

  TimePoint Now() const { return clock_.Now(); }
  std::size_t PendingEvents() const { return events_.size(); }
  std::uint64_t ProcessedEvents() const { return processed_; }

 private:
  struct Event {
    std::uint64_t id = 0;      // timer id; 0 for plain events
    Duration period{};         // repeat period; zero for one-shot
    sched::Task task;
  };

  bool RunOne();  // pops and runs the earliest event; false if none

  SimClock clock_;
  std::multimap<TimePoint, Event> events_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t nextTimerId_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t nonPeriodic_ = 0;  // pending one-shot events (idle detection)
};

}  // namespace scalla::sim

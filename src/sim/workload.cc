#include "sim/workload.h"

#include <chrono>
#include <unordered_set>

namespace scalla::sim {
namespace {

double WallSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::vector<std::string> PopulateFiles(SimCluster& cluster, std::size_t nFiles,
                                       int replication, util::Rng& rng,
                                       std::size_t fileSize) {
  std::vector<std::string> paths;
  paths.reserve(nFiles);
  const std::size_t nServers = cluster.ServerCount();
  for (std::size_t i = 0; i < nFiles; ++i) {
    std::string path = util::MakeFilePath(i / 1000, i % 1000);
    std::unordered_set<std::size_t> placed;
    const int copies = std::min<int>(replication, static_cast<int>(nServers));
    while (static_cast<int>(placed.size()) < copies) {
      const std::size_t s = rng.NextBelow(nServers);
      if (placed.insert(s).second) {
        cluster.PlaceFile(s, path, std::string(fileSize, 'D'));
      }
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

WorkloadResult RunOpenStream(SimCluster& cluster, client::ScallaClient& client,
                             const std::vector<std::string>& paths, std::size_t nOps,
                             double zipfS, util::Rng& rng) {
  WorkloadResult result;
  const auto wallStart = std::chrono::steady_clock::now();
  const TimePoint simStart = cluster.engine().Now();
  const util::ZipfSampler zipf(paths.size(), zipfS);
  for (std::size_t i = 0; i < nOps; ++i) {
    const std::string& path = paths[zipf.Sample(rng)];
    const TimePoint start = cluster.engine().Now();
    const auto outcome = cluster.OpenAndWait(client, path, cms::AccessMode::kRead, false);
    if (outcome.err == proto::XrdErr::kNone) {
      result.latency.Record(cluster.engine().Now() - start);
      ++result.completed;
      auto closed = std::make_shared<std::optional<proto::XrdErr>>();
      client.Close(outcome.file, [closed](proto::XrdErr err) { *closed = err; });
      cluster.engine().RunUntilPredicate([closed] { return closed->has_value(); },
                                         cluster.engine().Now() + std::chrono::seconds(5));
    } else {
      ++result.errors;
    }
  }
  result.simElapsed = cluster.engine().Now() - simStart;
  result.wallSeconds = WallSecondsSince(wallStart);
  return result;
}

WorkloadResult RunClosedLoopLoad(SimCluster& cluster,
                                 const std::vector<client::ScallaClient*>& clients,
                                 std::size_t nClients,
                                 const std::vector<std::string>& paths,
                                 std::size_t totalOps, double zipfS, util::Rng& rng) {
  WorkloadResult result;
  const auto wallStart = std::chrono::steady_clock::now();
  const TimePoint simStart = cluster.engine().Now();
  const util::ZipfSampler zipf(paths.size(), zipfS);
  std::size_t issued = 0;

  struct Loop {
    client::ScallaClient* client;
  };
  std::vector<Loop> loops;
  nClients = std::min(nClients, clients.size());
  loops.reserve(nClients);
  for (std::size_t i = 0; i < nClients; ++i) loops.push_back({clients[i]});

  // Each completion immediately issues the next open; captures reference
  // state that outlives every callback (function-local, driven below).
  std::function<void(Loop&)> issueNext = [&](Loop& loop) {
    if (issued >= totalOps) return;
    ++issued;
    const std::string& path = paths[zipf.Sample(rng)];
    const TimePoint start = cluster.engine().Now();
    loop.client->Open(path, cms::AccessMode::kRead, false,
                      [&, start](const client::OpenOutcome& o) {
                        if (o.err == proto::XrdErr::kNone) {
                          result.latency.Record(cluster.engine().Now() - start);
                          ++result.completed;
                          loop.client->Close(o.file, [](proto::XrdErr) {});
                        } else {
                          ++result.errors;
                        }
                        issueNext(loop);
                      });
  };

  for (auto& loop : loops) issueNext(loop);
  cluster.engine().RunUntilPredicate(
      [&] { return result.completed + result.errors >= totalOps; },
      cluster.engine().Now() + std::chrono::hours(2));
  result.simElapsed = cluster.engine().Now() - simStart;
  result.wallSeconds = WallSecondsSince(wallStart);
  return result;
}

WorkloadResult RunClosedLoopLoad(SimCluster& cluster, std::size_t nClients,
                                 const std::vector<std::string>& paths,
                                 std::size_t totalOps, double zipfS, util::Rng& rng) {
  std::vector<client::ScallaClient*> clients;
  clients.reserve(nClients);
  for (std::size_t i = 0; i < nClients; ++i) clients.push_back(&cluster.NewClient());
  return RunClosedLoopLoad(cluster, clients, nClients, paths, totalOps, zipfS, rng);
}

}  // namespace scalla::sim

#include "sim/scenario.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace scalla::sim {
namespace {

double WallSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double NanosToUs(double ns) { return ns / 1e3; }

std::string FmtF(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Folds every node's in-process metrics registry into one snapshot.
/// Deliberately NOT the kStatsQuery protocol: accounting must see wedged
/// nodes too, cost zero virtual time, and leave the traffic under
/// measurement untouched.
obs::MetricsSnapshot AggregateStats(SimCluster& cluster) {
  obs::MetricsSnapshot acc;
  for (std::size_t i = 0; i < cluster.ManagerCount(); ++i) {
    acc.Merge(cluster.manager(i).SnapshotMetrics());
  }
  for (std::size_t i = 0; i < cluster.SupervisorCount(); ++i) {
    acc.Merge(cluster.supervisor(i).SnapshotMetrics());
  }
  for (std::size_t i = 0; i < cluster.ServerCount(); ++i) {
    acc.Merge(cluster.server(i).SnapshotMetrics());
  }
  return acc;
}

std::uint64_t CounterDelta(const obs::MetricsSnapshot& before,
                           const obs::MetricsSnapshot& after, const std::string& name) {
  const std::uint64_t b = before.Counter(name);
  const std::uint64_t a = after.Counter(name);
  return a > b ? a - b : 0;
}

ClusterSpec ToClusterSpec(const CampaignSpec& spec) {
  ClusterSpec cs;
  cs.servers = spec.servers;
  cs.fanout = spec.fanout;
  cs.managers = spec.managers;
  cs.cms.ping = spec.heartbeat;
  cs.withMss = spec.withMss;
  cs.mss.stageDelay = spec.mssStageDelay;
  cs.withProxy = spec.withProxy;
  if (spec.withProxy) cs.proxyCache.capacityBytes = spec.proxyCacheBytes;
  return cs;
}

struct PhaseDriver {
  SimCluster& cluster;
  const CampaignSpec& spec;
  std::vector<client::ScallaClient*>& pool;
  util::Rng& rng;
  std::size_t& globalIssued;  // across phases: drives identity assignment

  PhaseResult Run(const PhaseSpec& phase, const std::vector<std::string>& paths) {
    PhaseResult out;
    out.name = phase.name;
    out.concurrency = std::min(phase.concurrency, pool.size());
    const auto wallStart = std::chrono::steady_clock::now();
    const TimePoint simStart = cluster.engine().Now();

    util::LatencyRecorder latency;
    const util::ZipfSampler zipf(paths.size(), phase.zipfS);
    std::size_t issued = 0;
    std::size_t completed = 0;
    std::size_t errors = 0;

    // Closed loop with per-op identity: op k is issued on behalf of
    // simulated client identity (globalIssued + k) % population, so a
    // campaign that drives N >= population ops has exercised every
    // distinct identity. With spec.personalize each identity rotates the
    // Zipf stream by its own hash — a million-identity population offers
    // a genuinely wider mix than a thousand-identity one.
    std::function<void(std::size_t)> issueNext = [&](std::size_t actor) {
      if (issued >= phase.ops) return;
      const std::size_t identity = (globalIssued + issued) % std::max<std::size_t>(1, spec.population);
      ++issued;
      std::size_t pathIdx = zipf.Sample(rng);
      if (spec.personalize) {
        pathIdx = (pathIdx + SplitMix64(identity) % paths.size()) % paths.size();
      }
      const std::string& path = paths[pathIdx];
      const TimePoint start = cluster.engine().Now();
      pool[actor]->Open(path, cms::AccessMode::kRead, false,
                        [&, actor, start](const client::OpenOutcome& o) {
                          if (o.err == proto::XrdErr::kNone) {
                            latency.Record(cluster.engine().Now() - start);
                            ++completed;
                            pool[actor]->Close(o.file, [](proto::XrdErr) {});
                          } else {
                            ++errors;
                          }
                          issueNext(actor);
                        });
    };

    for (std::size_t a = 0; a < out.concurrency; ++a) issueNext(a);
    cluster.engine().RunUntilPredicate(
        [&] { return completed + errors >= phase.ops; },
        cluster.engine().Now() + std::chrono::hours(12));

    globalIssued += issued;
    out.completed = completed;
    out.errors = errors;
    if (latency.count() > 0) {
      out.meanUs = NanosToUs(latency.MeanNanos());
      const auto qs = latency.PercentilesNanos({0.5, 0.99});
      out.p50Us = NanosToUs(static_cast<double>(qs[0]));
      out.p99Us = NanosToUs(static_cast<double>(qs[1]));
      out.maxUs = NanosToUs(static_cast<double>(latency.MaxNanos()));
    }
    out.simElapsed = cluster.engine().Now() - simStart;
    out.wallSeconds = WallSecondsSince(wallStart);
    return out;
  }
};

/// Least-squares slope of meanUs against concurrency; 0 with < 2 points.
double FitSlope(const std::vector<PhaseResult>& phases,
                const std::vector<PhaseSpec>& specs) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < phases.size() && i < specs.size(); ++i) {
    if (!specs[i].inSlopeFit || phases[i].completed == 0) continue;
    const double x = static_cast<double>(phases[i].concurrency);
    const double y = phases[i].meanUs;
    sx += x; sy += y; sxx += x * x; sxy += x * y;
    ++n;
  }
  if (n < 2) return 0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0) return 0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace

bool CampaignResult::ok() const {
  for (const CheckResult& c : checks) {
    if (!c.pass) return false;
  }
  return true;
}

std::string CampaignResult::MetricsJson() const {
  std::string j = "{\"bench\":\"campaign." + name + "\"";
  j += ",\"seed\":" + std::to_string(seed);
  j += ",\"servers\":" + std::to_string(servers);
  j += ",\"supervisors\":" + std::to_string(supervisors);
  j += ",\"depth\":" + std::to_string(depth);
  j += ",\"population\":" + std::to_string(population);
  j += ",\"distinct_identities\":" + std::to_string(distinctIdentities);
  j += ",\"completed\":" + std::to_string(totalCompleted);
  j += ",\"errors\":" + std::to_string(totalErrors);
  j += ",\"warm_probe_mean_us\":" + FmtF(warmProbeMeanUs);
  j += ",\"warm_per_level_us\":" + FmtF(warmPerLevelUs);
  j += ",\"slope_us_per_client\":" + FmtF(slopeUsPerClient);
  j += ",\"sim_elapsed_ms\":" +
       FmtF(std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(simElapsed)
                .count());
  j += ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    if (i > 0) j += ",";
    j += "{\"name\":\"" + p.name + "\"";
    j += ",\"concurrency\":" + std::to_string(p.concurrency);
    j += ",\"completed\":" + std::to_string(p.completed);
    j += ",\"errors\":" + std::to_string(p.errors);
    j += ",\"mean_us\":" + FmtF(p.meanUs);
    j += ",\"p50_us\":" + FmtF(p.p50Us);
    j += ",\"p99_us\":" + FmtF(p.p99Us);
    j += ",\"sim_elapsed_ms\":" +
         FmtF(std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(p.simElapsed)
                  .count());
    j += "}";
  }
  j += "],\"faults\":[";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultResult& f = faults[i];
    if (i > 0) j += ",";
    j += "{\"before_phase\":" + std::to_string(f.beforePhase);
    j += ",\"crashed\":" + std::to_string(f.crashed);
    j += ",\"deaths\":" + std::to_string(f.deathsDelta);
    j += ",\"settle_corrections\":" + std::to_string(f.settleCorrections);
    j += ",\"settle_lookups\":" + std::to_string(f.settleLookups);
    j += ",\"post_corrections\":" + std::to_string(f.postCorrections);
    j += ",\"post_lookups\":" + std::to_string(f.postLookups);
    j += "}";
  }
  j += "],\"checks\":[";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const CheckResult& c = checks[i];
    if (i > 0) j += ",";
    j += "{\"name\":\"" + c.name + "\",\"pass\":" + (c.pass ? "true" : "false");
    j += ",\"value\":" + FmtF(c.value) + ",\"bound\":" + FmtF(c.bound) + "}";
  }
  j += "]}";
  return j;
}

std::string CampaignResult::JsonLine() const {
  std::string j = MetricsJson();
  // Splice host-side timing in before the closing brace; claim checks and
  // the determinism test never read it.
  j.pop_back();
  j += ",\"wall_seconds\":" + FmtF(wallSeconds) + "}";
  return j;
}

CampaignResult RunCampaign(const CampaignSpec& spec) {
  const auto wallStart = std::chrono::steady_clock::now();
  CampaignResult result;
  result.name = spec.name;
  result.seed = spec.seed;
  result.population = spec.population;

  SimCluster cluster(ToClusterSpec(spec));
  cluster.Start();
  const TimePoint simStart = cluster.engine().Now();
  result.depth = cluster.Depth();
  result.servers = cluster.ServerCount();
  result.supervisors = cluster.SupervisorCount();

  util::Rng rng(spec.seed);

  // ---- namespace ----
  std::vector<std::string> paths;
  if (spec.filesInMss) {
    // MSS-resident namespace: files exist on tape, not on any leaf disk;
    // the first open of each must trigger (exactly one) stage.
    paths.reserve(spec.files);
    const std::size_t nServers = cluster.ServerCount();
    for (std::size_t i = 0; i < spec.files; ++i) {
      std::string path = util::MakeFilePath(i / 1000, i % 1000);
      const int copies = std::min<int>(spec.replication, static_cast<int>(nServers));
      for (int c = 0; c < copies; ++c) {
        const std::size_t s = rng.NextBelow(nServers);
        if (oss::MssOss* mss = cluster.mssStorage(s)) {
          mss->PutInMss(path, std::max<std::size_t>(spec.fileBytes, 1));
        }
      }
      paths.push_back(std::move(path));
    }
  } else {
    paths = PopulateFiles(cluster, spec.files, spec.replication, rng, spec.fileBytes);
  }

  // ---- client pool ----
  std::size_t poolSize = spec.pool;
  for (const PhaseSpec& p : spec.phases) poolSize = std::max(poolSize, p.concurrency);
  std::vector<client::ScallaClient*> pool;
  pool.reserve(poolSize);
  for (std::size_t i = 0; i < poolSize; ++i) {
    pool.push_back(spec.withProxy ? &cluster.NewProxyClient() : &cluster.NewClient());
  }

  // ---- prewarm + warm probe ----
  if (spec.prewarm && !spec.filesInMss) {
    for (const std::string& path : paths) {
      cluster.OpenAndWait(*pool[0], path, cms::AccessMode::kRead, false);
    }
  }
  if (spec.probeOps > 0 && spec.prewarm && !spec.filesInMss) {
    util::LatencyRecorder probe;
    for (std::size_t i = 0; i < spec.probeOps; ++i) {
      const std::string& path = paths[i % paths.size()];
      const TimePoint t0 = cluster.engine().Now();
      const auto open = cluster.OpenAndWait(*pool[0], path, cms::AccessMode::kRead, false);
      if (open.err == proto::XrdErr::kNone) probe.Record(cluster.engine().Now() - t0);
    }
    if (probe.count() > 0) {
      result.warmProbeMeanUs = NanosToUs(probe.MeanNanos());
      result.warmPerLevelUs = result.warmProbeMeanUs / std::max(1, result.depth);
    }
  }

  const obs::MetricsSnapshot campaignStart = AggregateStats(cluster);

  // ---- phases with the fault schedule woven between them ----
  std::size_t globalIssued = 0;
  PhaseDriver driver{cluster, spec, pool, rng, globalIssued};
  struct PendingFault {
    FaultResult result;
    obs::MetricsSnapshot atFault;  // corrections/lookups accounted from here on
  };
  std::vector<PendingFault> pending;

  for (std::size_t pi = 0; pi <= spec.phases.size(); ++pi) {
    for (const FaultSpec& f : spec.faults) {
      if (f.beforePhase != pi) continue;
      switch (f.kind) {
        case FaultSpec::Kind::kCrashServers: {
          // Wedge, not disconnect: correlated rack power loss looks like
          // silence, so only the heartbeat can declare the deaths — the
          // path the O(1)-correction claim is about. The settle window
          // (no client traffic) must cover ping x misslimit.
          const obs::MetricsSnapshot before = AggregateStats(cluster);
          const std::size_t end =
              std::min(cluster.ServerCount(), f.firstServer + f.serverCount);
          for (std::size_t s = f.firstServer; s < end; ++s) cluster.WedgeServer(s);
          cluster.RunFor(f.settle);
          const obs::MetricsSnapshot after = AggregateStats(cluster);
          PendingFault pf;
          pf.result.beforePhase = pi;
          pf.result.crashed =
              std::min(cluster.ServerCount(), f.firstServer + f.serverCount) - f.firstServer;
          pf.result.deathsDelta = CounterDelta(before, after, "membership.deaths");
          pf.result.settleCorrections = CounterDelta(before, after, "cache.corrections");
          pf.result.settleLookups = CounterDelta(before, after, "cache.lookups");
          pf.atFault = after;
          pending.push_back(std::move(pf));
          break;
        }
        case FaultSpec::Kind::kRestartServers:
          for (std::size_t s = f.firstServer;
               s < std::min(cluster.ServerCount(), f.firstServer + f.serverCount); ++s) {
            cluster.UnwedgeServer(s);
          }
          cluster.RunFor(f.settle);  // reconnect invitations re-admit them
          break;
        case FaultSpec::Kind::kDrainServers:
        case FaultSpec::Kind::kRestoreServers: {
          const bool restore = f.kind == FaultSpec::Kind::kRestoreServers;
          for (std::size_t s = f.firstServer;
               s < std::min(cluster.ServerCount(), f.firstServer + f.serverCount); ++s) {
            (void)cluster.DrainAndWait(*pool[0], "server" + std::to_string(s), restore);
          }
          cluster.RunFor(f.settle);
          break;
        }
      }
    }
    if (pi < spec.phases.size()) {
      result.phases.push_back(driver.Run(spec.phases[pi], paths));
    }
  }

  const obs::MetricsSnapshot campaignEnd = AggregateStats(cluster);
  for (PendingFault& pf : pending) {
    pf.result.postCorrections = CounterDelta(pf.atFault, campaignEnd, "cache.corrections");
    pf.result.postLookups = CounterDelta(pf.atFault, campaignEnd, "cache.lookups");
    result.faults.push_back(pf.result);
  }

  for (const PhaseResult& p : result.phases) {
    result.totalCompleted += p.completed;
    result.totalErrors += p.errors;
  }
  result.distinctIdentities =
      std::min(spec.population, globalIssued);
  result.slopeUsPerClient = FitSlope(result.phases, spec.phases);

  // ---- claim checks ----
  const ClaimChecks& checks = spec.checks;
  if (checks.perLevelUsMax > 0) {
    result.checks.push_back({"per_level_us", result.warmPerLevelUs > 0 &&
                                                 result.warmPerLevelUs <= checks.perLevelUsMax,
                             result.warmPerLevelUs, checks.perLevelUsMax});
  }
  if (checks.slopeUsPerClientMax > 0) {
    result.checks.push_back({"slope_us_per_client",
                             result.slopeUsPerClient <= checks.slopeUsPerClientMax,
                             result.slopeUsPerClient, checks.slopeUsPerClientMax});
  }
  if (checks.errorRateMax >= 0) {
    const double total = static_cast<double>(result.totalCompleted + result.totalErrors);
    const double rate = total > 0 ? static_cast<double>(result.totalErrors) / total : 0;
    result.checks.push_back({"error_rate", rate <= checks.errorRateMax, rate,
                             checks.errorRateMax});
  }
  if (checks.correctionAccounting) {
    for (const FaultResult& f : result.faults) {
      // All deaths declared; zero correction work while quiet (nothing
      // eager); afterwards corrections are lazy: bounded by lookups.
      const bool deathsOk = f.deathsDelta >= f.crashed;
      const bool quietOk = f.settleCorrections == 0 && f.settleLookups == 0;
      const bool lazyOk = f.postCorrections <= f.postLookups;
      result.checks.push_back({"correction_deaths", deathsOk,
                               static_cast<double>(f.deathsDelta),
                               static_cast<double>(f.crashed)});
      result.checks.push_back({"correction_quiet_settle", quietOk,
                               static_cast<double>(f.settleCorrections), 0});
      result.checks.push_back({"correction_lazy_bound", lazyOk,
                               static_cast<double>(f.postCorrections),
                               static_cast<double>(f.postLookups)});
    }
  }
  for (const CounterCheck& cc : checks.counters) {
    const double delta = static_cast<double>(CounterDelta(campaignStart, campaignEnd, cc.counter));
    const bool pass = delta >= cc.minDelta && (cc.maxDelta < 0 || delta <= cc.maxDelta);
    result.checks.push_back({"counter:" + cc.counter, pass, delta,
                             cc.maxDelta < 0 ? cc.minDelta : cc.maxDelta});
  }

  result.simElapsed = cluster.engine().Now() - simStart;
  result.wallSeconds = WallSecondsSince(wallStart);
  return result;
}

// ---- campaign library ----

CampaignSpec SmokeCampaign() {
  CampaignSpec spec;
  spec.name = "smoke";
  spec.seed = 7;
  spec.servers = 64;
  spec.fanout = 8;  // 64 leaves under 8 supervisors: depth 2
  spec.files = 512;
  spec.replication = 3;
  spec.population = 50000;
  spec.pool = 64;
  spec.personalize = true;
  spec.phases = {
      {"load4", 4, 4000, 0.9, true},
      {"load16", 16, 6000, 0.9, true},
      {"load64", 64, 10000, 0.9, true},
  };
  // One quarter-rack wedge with full correction accounting.
  FaultSpec crash;
  crash.kind = FaultSpec::Kind::kCrashServers;
  crash.beforePhase = 2;
  crash.firstServer = 0;
  crash.serverCount = 4;
  crash.settle = std::chrono::seconds(3);
  FaultSpec restart = crash;
  restart.kind = FaultSpec::Kind::kRestartServers;
  restart.beforePhase = 3;  // after the last phase: heal before teardown
  spec.faults = {crash, restart};
  spec.checks.perLevelUsMax = 150;
  spec.checks.slopeUsPerClientMax = 40;
  // During the degraded window the manager's stale bits can route an open
  // to the wedged rack's supervisor until the lazy correction lands; those
  // opens burn a client retry timeout and a few percent fail. Bounding the
  // rate (rather than zero) is the honest claim.
  spec.checks.errorRateMax = 0.05;
  spec.checks.correctionAccounting = true;
  return spec;
}

CampaignSpec FlashCrowdCampaign() {
  CampaignSpec spec;
  spec.name = "flash_crowd";
  spec.seed = 21;
  spec.servers = 128;
  spec.fanout = 16;
  spec.files = 64;  // one hot path dominates: tiny namespace, s = 1.2
  spec.replication = 4;
  spec.population = 200000;
  spec.pool = 256;
  spec.phases = {
      {"simmer", 16, 4000, 1.2, true},
      {"surge", 64, 8000, 1.2, true},
      {"crowd", 256, 20000, 1.2, true},
  };
  spec.checks.perLevelUsMax = 150;
  // The crowd all queues on the same head/server chain; the paper's claim
  // is only that the slope stays LINEAR and shallow per added client.
  spec.checks.slopeUsPerClientMax = 40;
  spec.checks.errorRateMax = 0;
  return spec;
}

CampaignSpec OpenStampedeCampaign() {
  CampaignSpec spec;
  spec.name = "open_stampede";
  spec.seed = 33;
  spec.servers = 64;
  spec.fanout = 8;
  spec.files = 32;
  spec.replication = 2;
  spec.population = 100000;
  spec.pool = 128;
  spec.prewarm = false;  // the whole point: every open races a cold path
  spec.probeOps = 0;
  spec.phases = {
      {"stampede", 128, 6000, 0.0, false},
  };
  spec.checks.errorRateMax = 0;
  // 128 clients race 32 cold paths: the fast-response queue must coalesce
  // concurrent lookups (waiters join an anchor instead of re-flooding),
  // and the tree must see roughly one query flood per path, not per open.
  spec.checks.counters = {
      {"respq.joins", 1, -1},
      {"resolver.queries_sent", 1, 1000},
  };
  return spec;
}

CampaignSpec CorrelatedRackFailureCampaign(std::size_t files) {
  CampaignSpec spec;
  spec.name = files == 2048 ? "rack_failure" : "rack_failure_" + std::to_string(files);
  spec.seed = 47;
  spec.servers = 256;
  spec.fanout = 16;  // 16 racks of 16
  spec.files = files;
  spec.replication = 3;
  spec.population = 100000;
  spec.pool = 128;
  spec.personalize = true;
  spec.phases = {
      {"steady", 64, 20000, 0.9, false},
      {"degraded", 64, 20000, 0.9, false},
      {"healed", 64, 10000, 0.9, false},
  };
  FaultSpec crash;
  crash.kind = FaultSpec::Kind::kCrashServers;
  crash.beforePhase = 1;
  crash.firstServer = 16;  // rack 1: one whole supervisor subtree
  crash.serverCount = 16;
  crash.settle = std::chrono::seconds(3);
  FaultSpec restart = crash;
  restart.kind = FaultSpec::Kind::kRestartServers;
  restart.beforePhase = 2;
  spec.faults = {crash, restart};
  spec.checks.perLevelUsMax = 150;
  // (16/256)^3 per file leaves all three replicas in the dead rack; with
  // Zipf sampling the expected hit rate on such files stays well under 1%.
  spec.checks.errorRateMax = 0.01;
  spec.checks.correctionAccounting = true;
  return spec;
}

CampaignSpec MssStagingStormCampaign() {
  CampaignSpec spec;
  spec.name = "mss_storm";
  spec.seed = 59;
  spec.servers = 64;
  spec.fanout = 8;
  spec.withMss = true;
  spec.mssStageDelay = std::chrono::milliseconds(200);
  spec.withProxy = true;
  spec.files = 256;
  spec.replication = 1;
  spec.filesInMss = true;
  spec.population = 50000;
  spec.pool = 128;
  spec.prewarm = false;
  spec.probeOps = 0;
  spec.phases = {
      {"storm", 128, 4000, 0.8, false},
  };
  spec.checks.errorRateMax = 0;
  // A 4000-open burst over 256 tape-resident files must start at most one
  // stage per file (wait/retry + response-queue coalescing absorb the
  // rest) — a staging storm must not multiply MSS traffic.
  spec.checks.counters = {
      {"node.stages_started", 1, 256},
  };
  return spec;
}

CampaignSpec RollingUpgradeCampaign() {
  CampaignSpec spec;
  spec.name = "rolling_upgrade";
  spec.seed = 71;
  spec.servers = 64;
  spec.fanout = 8;  // 8 racks of 8: drain/restore one rack per step
  spec.files = 1024;
  spec.replication = 3;
  spec.population = 50000;
  spec.pool = 64;
  for (int rack = 0; rack < 4; ++rack) {
    FaultSpec drain;
    drain.kind = FaultSpec::Kind::kDrainServers;
    drain.beforePhase = static_cast<std::size_t>(rack);
    drain.firstServer = static_cast<std::size_t>(rack) * 8;
    drain.serverCount = 8;
    drain.settle = std::chrono::milliseconds(200);
    FaultSpec restore = drain;
    restore.kind = FaultSpec::Kind::kRestoreServers;
    restore.beforePhase = static_cast<std::size_t>(rack) + 1;
    spec.faults.push_back(drain);
    spec.faults.push_back(restore);
    spec.phases.push_back({"rack" + std::to_string(rack), 32, 6000, 0.9, false});
  }
  // An open routed to the draining rack's supervisor stalls until every
  // selectable holder reappears (or the client gives up), and a file whose
  // every replica sits in that rack is legitimately unselectable for the
  // step; a few percent of opens fail during each handover. The hard
  // invariant is the counter pair below: drains are operator events, never
  // heartbeat deaths.
  spec.checks.errorRateMax = 0.05;
  spec.checks.counters = {
      {"membership.drains", 4 * 8, -1},  // 4 racks x 8 servers drained
      {"membership.deaths", 0, 0},
  };
  return spec;
}

CampaignSpec MillionClientCampaign() {
  CampaignSpec spec;
  spec.name = "million_client";
  spec.seed = 101;
  spec.servers = 1024;
  spec.fanout = 10;  // 1024 leaves -> 3 supervisor levels above them
  spec.heartbeat = std::chrono::milliseconds(500);
  spec.files = 4096;
  spec.replication = 3;
  spec.population = 1200000;
  spec.pool = 2048;
  spec.personalize = true;
  spec.probeOps = 512;
  spec.phases = {
      {"ramp256", 256, 150000, 0.9, true},
      {"ramp512", 512, 250000, 0.9, true},
      {"ramp1024", 1024, 300000, 0.9, true},
      {"ramp2048", 2048, 350000, 0.9, true},
  };
  // Correlated rack failure before the final ramp, healed at the end.
  FaultSpec crash;
  crash.kind = FaultSpec::Kind::kCrashServers;
  crash.beforePhase = 3;
  crash.firstServer = 0;
  crash.serverCount = 32;
  crash.settle = std::chrono::seconds(3);
  FaultSpec restart = crash;
  restart.kind = FaultSpec::Kind::kRestartServers;
  restart.beforePhase = 4;
  spec.faults = {crash, restart};
  spec.checks.perLevelUsMax = 150;
  spec.checks.slopeUsPerClientMax = 10;
  spec.checks.errorRateMax = 0.05;
  spec.checks.correctionAccounting = true;
  return spec;
}

CampaignResult RunFederationPartitionCampaign(std::uint64_t seed) {
  const auto wallStart = std::chrono::steady_clock::now();
  CampaignResult result;
  result.name = "federation_partition";
  result.seed = seed;

  FederationSpec spec;
  spec.clusters = 3;
  spec.cluster.servers = 32;
  spec.cluster.fanout = 8;
  // Tight heartbeat so the partition crosses ping x misslimit inside the
  // settle window; a long drop delay keeps the dead cluster a member, so
  // the meta's reconnect invitation can actually restore it on rejoin.
  spec.meta.cms.ping = std::chrono::seconds(1);
  spec.meta.cms.missLimit = 3;
  spec.meta.cms.dropDelay = std::chrono::hours(1);
  SimFederation fed(spec);
  fed.Start();
  const TimePoint simStart = fed.engine().Now();
  result.depth = fed.cluster(0).Depth() + 1;  // + the meta hop
  for (std::size_t c = 0; c < fed.ClusterCount(); ++c) {
    result.servers += fed.cluster(c).ServerCount();
    result.supervisors += fed.cluster(c).SupervisorCount();
  }

  util::Rng rng(seed);
  // Each cluster owns a disjoint slice of the namespace.
  std::vector<std::vector<std::string>> byCluster(fed.ClusterCount());
  for (std::size_t c = 0; c < fed.ClusterCount(); ++c) {
    for (std::size_t i = 0; i < 64; ++i) {
      std::string path = util::MakeFilePath(c, i);
      fed.PlaceFile(c, rng.NextBelow(fed.cluster(c).ServerCount()), path,
                    std::string(16, 'F'));
      byCluster[c].push_back(std::move(path));
    }
  }

  auto& client = fed.NewClient();
  auto runPhase = [&](const std::string& name, const std::vector<std::size_t>& clusters,
                      std::size_t ops) {
    PhaseResult pr;
    pr.name = name;
    pr.concurrency = 1;
    const auto phaseWall = std::chrono::steady_clock::now();
    const TimePoint phaseStart = fed.engine().Now();
    util::LatencyRecorder latency;
    for (std::size_t i = 0; i < ops; ++i) {
      const std::size_t c = clusters[i % clusters.size()];
      const std::string& path = byCluster[c][rng.NextBelow(byCluster[c].size())];
      const TimePoint t0 = fed.engine().Now();
      const auto open = fed.OpenAndWait(client, path, cms::AccessMode::kRead, false,
                                        std::chrono::seconds(30));
      if (open.err == proto::XrdErr::kNone) {
        latency.Record(fed.engine().Now() - t0);
        ++pr.completed;
      } else {
        ++pr.errors;
      }
    }
    if (latency.count() > 0) {
      pr.meanUs = NanosToUs(latency.MeanNanos());
      const auto qs = latency.PercentilesNanos({0.5, 0.99});
      pr.p50Us = NanosToUs(static_cast<double>(qs[0]));
      pr.p99Us = NanosToUs(static_cast<double>(qs[1]));
      pr.maxUs = NanosToUs(static_cast<double>(latency.MaxNanos()));
    }
    pr.simElapsed = fed.engine().Now() - phaseStart;
    pr.wallSeconds = WallSecondsSince(phaseWall);
    result.phases.push_back(pr);
  };

  // Baseline across all three clusters, then partition cluster 1 away.
  runPhase("all_clusters", {0, 1, 2}, 300);
  const obs::MetricsSnapshot beforePartition = fed.meta().SnapshotMetrics();
  fed.PartitionCluster(1);
  fed.RunFor(std::chrono::seconds(5));  // > ping x misslimit: meta sheds it
  const obs::MetricsSnapshot afterShed = fed.meta().SnapshotMetrics();

  // Survivors keep answering; the shed cluster's files fail fast (kLoop /
  // not-found, never a hang past the open deadline).
  runPhase("partitioned_survivors", {0, 2}, 200);
  runPhase("partitioned_lost", {1}, 30);
  const std::size_t lostErrors = result.phases.back().errors;

  fed.RejoinCluster(1);
  fed.RunFor(std::chrono::seconds(5));  // reconnect invite + resubscribe
  // Relearning the shed cluster's locations takes bounded retries (the
  // first post-rejoin lookups race the resubscription); drive a fixed
  // resync loop before the measured phase so its verdict is about steady
  // state, not the handover instant.
  for (int attempt = 0; attempt < 5; ++attempt) {
    const auto back = fed.OpenAndWait(client, byCluster[1][0], cms::AccessMode::kRead,
                                      false, std::chrono::seconds(30));
    if (back.err == proto::XrdErr::kNone) break;
    fed.RunFor(std::chrono::seconds(2));
  }
  runPhase("rejoined", {0, 1, 2}, 300);

  FaultResult fault;
  fault.beforePhase = 1;
  fault.crashed = 1;  // one whole cluster
  fault.deathsDelta = CounterDelta(beforePartition, afterShed, "membership.deaths");
  fault.settleCorrections = CounterDelta(beforePartition, afterShed, "cache.corrections");
  fault.settleLookups = CounterDelta(beforePartition, afterShed, "cache.lookups");
  result.faults.push_back(fault);

  for (const PhaseResult& p : result.phases) {
    result.totalCompleted += p.completed;
    result.totalErrors += p.errors;
  }
  result.population = 1;
  result.distinctIdentities = 1;

  const PhaseResult& survivors = result.phases[1];
  const PhaseResult& rejoined = result.phases.back();
  result.checks.push_back({"meta_declared_death", fault.deathsDelta >= 1,
                           static_cast<double>(fault.deathsDelta), 1});
  result.checks.push_back({"quiet_shed", fault.settleLookups == 0 &&
                                             fault.settleCorrections == 0,
                           static_cast<double>(fault.settleCorrections), 0});
  result.checks.push_back({"survivors_unaffected", survivors.errors == 0,
                           static_cast<double>(survivors.errors), 0});
  result.checks.push_back({"lost_cluster_fails_fast", lostErrors == 30,
                           static_cast<double>(lostErrors), 30});
  result.checks.push_back({"rejoin_restores", rejoined.errors == 0,
                           static_cast<double>(rejoined.errors), 0});

  result.simElapsed = fed.engine().Now() - simStart;
  result.wallSeconds = WallSecondsSince(wallStart);
  return result;
}

std::vector<std::pair<std::string, CampaignRunner>> CampaignRegistry() {
  return {
      {"smoke", [] { return RunCampaign(SmokeCampaign()); }},
      {"flash_crowd", [] { return RunCampaign(FlashCrowdCampaign()); }},
      {"open_stampede", [] { return RunCampaign(OpenStampedeCampaign()); }},
      {"rack_failure", [] { return RunCampaign(CorrelatedRackFailureCampaign()); }},
      {"mss_storm", [] { return RunCampaign(MssStagingStormCampaign()); }},
      {"rolling_upgrade", [] { return RunCampaign(RollingUpgradeCampaign()); }},
      {"federation_partition", [] { return RunFederationPartitionCampaign(); }},
  };
}

}  // namespace scalla::sim

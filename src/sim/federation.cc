#include "sim/federation.h"

#include <cassert>

namespace scalla::sim {

namespace {
// Each member cluster allocates node addresses from its own band so the
// shared fabric never sees a collision; 1000 addresses per cluster is
// far beyond any tree the 64-slot ServerSet can host.
constexpr net::NodeAddr kClusterAddrBand = 1000;
}  // namespace

SimFederation::SimFederation(const FederationSpec& spec)
    : spec_(spec), fabric_(engine_, spec.latency) {
  assert(spec_.clusters >= 1);

  fed::MetaConfig mcfg = spec_.meta;
  if (mcfg.addr == 0) mcfg.addr = 1;
  meta_ = std::make_unique<fed::MetaManager>(mcfg, engine_, fabric_);
  fabric_.Register(mcfg.addr, meta_.get());

  for (int c = 0; c < spec_.clusters; ++c) {
    ClusterSpec cs = spec_.cluster;
    cs.meta = mcfg.addr;
    cs.clusterName = "cluster" + std::to_string(c);
    cs.locality = static_cast<std::size_t>(c) < spec_.localities.size()
                      ? spec_.localities[c]
                      : 0;
    clusters_.push_back(std::make_unique<SimCluster>(
        cs, engine_, fabric_, kClusterAddrBand * (c + 1)));
  }

  if (spec_.withEdgeProxy) {
    pcache::ProxyCacheConfig pcfg;
    pcfg.addr = nextClientAddr_++;
    pcfg.name = "edge0";
    pcfg.origin.head = mcfg.addr;  // the meta IS the proxy's origin head
    pcfg.cache = spec_.edgeProxyCache;
    proxy_ = std::make_unique<pcache::ProxyCacheNode>(pcfg, engine_, fabric_);
    fabric_.Register(pcfg.addr, proxy_.get());
  }
}

SimFederation::~SimFederation() {
  // Clusters stop their own nodes; the meta holds engine timers too.
  meta_->Stop();
}

void SimFederation::Start() {
  meta_->Start();
  for (auto& c : clusters_) c->Start();
  engine_.RunUntilIdle();  // logins + FedSubscribe settle
}

client::ScallaClient& SimFederation::NewClient() {
  client::ClientConfig cfg;
  cfg.addr = nextClientAddr_++;
  cfg.head = meta_->config().addr;
  if (spec_.cluster.clientOpenTimeout > Duration::zero()) {
    cfg.openTimeout = spec_.cluster.clientOpenTimeout;
  }
  auto c = std::make_unique<client::ScallaClient>(cfg, engine_, fabric_);
  fabric_.Register(cfg.addr, c.get());
  clients_.push_back(std::move(c));
  return *clients_.back();
}

client::ScallaClient& SimFederation::NewEdgeClient() {
  assert(proxy_ != nullptr);
  client::ClientConfig cfg;
  cfg.addr = nextClientAddr_++;
  cfg.head = proxy_->config().addr;
  auto c = std::make_unique<client::ScallaClient>(cfg, engine_, fabric_);
  fabric_.Register(cfg.addr, c.get());
  clients_.push_back(std::move(c));
  return *clients_.back();
}

void SimFederation::PlaceFile(std::size_t c, std::size_t leaf, const std::string& path,
                              std::string data) {
  clusters_[c]->PlaceFile(leaf, path, std::move(data));
}

client::OpenOutcome SimFederation::OpenAndWait(client::ScallaClient& c,
                                               const std::string& path,
                                               cms::AccessMode mode, bool create,
                                               Duration timeout) {
  // The driving helpers only touch the shared engine, so any member
  // cluster's implementation drives the whole federation.
  return clusters_.front()->OpenAndWait(c, path, mode, create, timeout);
}

Result<std::string> SimFederation::ReadAll(client::ScallaClient& c,
                                           const std::string& path) {
  return clusters_.front()->ReadAll(c, path);
}

Result<void> SimFederation::PutFile(client::ScallaClient& c, const std::string& path,
                                    std::string data) {
  return clusters_.front()->PutFile(c, path, std::move(data));
}

client::ScallaClient::ClusterStats SimFederation::FederationStats(
    client::ScallaClient* c) {
  client::ScallaClient& querier = c ? *c : NewClient();
  auto result = std::make_shared<std::optional<client::ScallaClient::ClusterStats>>();
  querier.QueryStats(
      [result](const client::ScallaClient::ClusterStats& stats) { *result = stats; });
  engine_.RunUntilPredicate([result] { return result->has_value(); },
                            engine_.Now() + std::chrono::seconds(30));
  return result->value_or(client::ScallaClient::ClusterStats{});
}

void SimFederation::PartitionCluster(std::size_t i) {
  const net::NodeAddr meta = meta_->config().addr;
  for (std::size_t m = 0; m < clusters_[i]->ManagerCount(); ++m) {
    const net::NodeAddr head = clusters_[i]->manager(m).config().addr;
    fabric_.SetDrop(meta, head, true);
    fabric_.SetDrop(head, meta, true);
  }
}

void SimFederation::RejoinCluster(std::size_t i) {
  const net::NodeAddr meta = meta_->config().addr;
  for (std::size_t m = 0; m < clusters_[i]->ManagerCount(); ++m) {
    const net::NodeAddr head = clusters_[i]->manager(m).config().addr;
    fabric_.SetDrop(meta, head, false);
    fabric_.SetDrop(head, meta, false);
  }
}

void SimFederation::RunFor(Duration d) { engine_.RunUntil(engine_.Now() + d); }

}  // namespace scalla::sim

#include "sim/cluster.h"

#include <algorithm>
#include <cassert>

namespace scalla::sim {

SimCluster::SimCluster(const ClusterSpec& spec)
    : spec_(spec),
      ownedEngine_(std::make_unique<EventEngine>()),
      ownedFabric_(std::make_unique<SimFabric>(*ownedEngine_, spec.latency)),
      engine_(ownedEngine_.get()),
      fabric_(ownedFabric_.get()) {
  Build();
}

SimCluster::SimCluster(const ClusterSpec& spec, EventEngine& engine, SimFabric& fabric,
                       net::NodeAddr firstAddr)
    : spec_(spec), engine_(&engine), fabric_(&fabric), nextAddr_(firstAddr) {
  Build();
}

void SimCluster::Build() {
  assert(spec_.servers >= 1);
  assert(spec_.managers >= 1);
  assert(spec_.fanout >= 2 && spec_.fanout <= kMaxServersPerSet);

  if (spec_.withCnsd) {
    cnsAddr_ = NextAddr();
    cns_ = std::make_unique<cnsd::CnsDaemon>(cnsAddr_, *fabric_);
    fabric_->Register(cnsAddr_, cns_.get());
  }

  // The logical head: one manager, or several redundant ones that every
  // top-level subordinate logs into.
  std::vector<net::NodeAddr> heads;
  for (int m = 0; m < spec_.managers; ++m) {
    xrd::NodeConfig cfg;
    cfg.role = xrd::NodeRole::kManager;
    cfg.name = "manager" + std::to_string(m);
    cfg.addr = NextAddr();
    cfg.exports = spec_.exports;
    cfg.cms = spec_.cms;
    cfg.selection = spec_.selection;
    cfg.alwaysRespond = spec_.alwaysRespond;
    cfg.meta = spec_.meta;
    cfg.clusterName = spec_.clusterName;
    cfg.locality = spec_.locality;
    auto node = std::make_unique<xrd::ScallaNode>(cfg, *engine_, *fabric_, nullptr);
    fabric_->Register(cfg.addr, node.get());
    heads.push_back(cfg.addr);
    managers_.push_back(std::move(node));
  }

  int maxChildDepth = 0;
  BuildChildren(heads, spec_.servers, /*level=*/1, &maxChildDepth);
  depth_ = maxChildDepth + 1;

  if (spec_.withProxy) {
    pcache::ProxyCacheConfig pcfg;
    pcfg.addr = NextAddr();
    pcfg.name = "proxy0";
    pcfg.origin.head = heads.front();
    pcfg.origin.extraHeads.assign(heads.begin() + 1, heads.end());
    pcfg.origin.cnsd = cnsAddr_;
    pcfg.cache = spec_.proxyCache;
    pcfg.readAhead = spec_.proxyReadAhead;
    if (spec_.proxyDiskCapacity > 0) {
      proxyDisk_ = std::make_unique<oss::MemOss>(engine_->clock());
      pcfg.diskOss = proxyDisk_.get();
      pcfg.diskCapacityBytes = spec_.proxyDiskCapacity;
      pcfg.diskHighWatermark = spec_.proxyDiskHighWatermark;
      pcfg.diskLowWatermark = spec_.proxyDiskLowWatermark;
      pcfg.ghostEntries = spec_.proxyGhostEntries;
    }
    proxy_ = std::make_unique<pcache::ProxyCacheNode>(pcfg, *engine_, *fabric_);
    fabric_->Register(pcfg.addr, proxy_.get());
  }
}

SimCluster::~SimCluster() {
  // Nodes hold timers on the engine; stop them before members tear down.
  for (auto& m : managers_) m->Stop();
  for (auto& s : supervisors_) s->Stop();
  for (auto& l : leaves_) l->Stop();
}

void SimCluster::BuildChildren(const std::vector<net::NodeAddr>& parents, int nServers,
                               int level, int* maxChildDepth) {
  // Split the servers across at most `fanout` children. A child with one
  // server is a leaf; a larger share becomes a supervisor subtree.
  int remaining = nServers;
  const int children = std::min(spec_.fanout, nServers);
  for (int c = 0; c < children; ++c) {
    const int share =
        remaining / (children - c) + (remaining % (children - c) != 0 ? 1 : 0);
    const BuildResult child = BuildSubtree(parents, share, level);
    *maxChildDepth = std::max(*maxChildDepth, child.depth);
    remaining -= share;
  }
}

SimCluster::BuildResult SimCluster::BuildSubtree(const std::vector<net::NodeAddr>& parents,
                                                 int nServers, int level) {
  const net::NodeAddr addr = NextAddr();
  xrd::NodeConfig cfg;
  cfg.addr = addr;
  cfg.parent = parents.front();
  cfg.extraParents.assign(parents.begin() + 1, parents.end());
  cfg.exports = spec_.exports;
  cfg.cms = spec_.cms;
  cfg.selection = spec_.selection;
  cfg.alwaysRespond = spec_.alwaysRespond;

  if (nServers == 1) {
    const std::size_t idx = leaves_.size();
    auto storage = spec_.withMss
                       ? std::make_unique<oss::MssOss>(engine_->clock(), spec_.mss)
                       : std::make_unique<oss::MemOss>(engine_->clock());
    cfg.role = xrd::NodeRole::kServer;
    cfg.name = "server" + std::to_string(idx);
    cfg.cnsd = cnsAddr_;  // leaves publish namespace events (0 = none)
    auto node = std::make_unique<xrd::ScallaNode>(cfg, *engine_, *fabric_, storage.get());
    fabric_->Register(addr, node.get());
    leaves_.push_back(std::move(node));
    storages_.push_back(std::move(storage));
    return BuildResult{addr, 0};
  }

  cfg.role = xrd::NodeRole::kSupervisor;
  cfg.name = "sup" + std::to_string(supervisorSeq_++);
  auto node = std::make_unique<xrd::ScallaNode>(cfg, *engine_, *fabric_, nullptr);
  fabric_->Register(addr, node.get());
  supervisors_.push_back(std::move(node));

  int maxChildDepth = 0;
  BuildChildren({addr}, nServers, level + 1, &maxChildDepth);
  return BuildResult{addr, maxChildDepth + 1};
}

void SimCluster::Start() {
  for (auto& m : managers_) m->Start();
  for (auto& s : supervisors_) s->Start();
  for (auto& l : leaves_) l->Start();
  engine_->RunUntilIdle();  // logins settle
}

oss::MssOss* SimCluster::mssStorage(std::size_t i) {
  return spec_.withMss ? static_cast<oss::MssOss*>(storages_[i].get()) : nullptr;
}

Result<std::vector<std::string>> SimCluster::ListAndWait(client::ScallaClient& c,
                                                         const std::string& prefix) {
  // Callbacks that outlive a timed-out wait land in shared storage, never
  // in dead stack slots (same pattern in every AndWait helper below).
  auto result =
      std::make_shared<std::optional<std::pair<proto::XrdErr, std::vector<std::string>>>>();
  c.List(prefix, [result](proto::XrdErr err, std::vector<std::string> names) {
    *result = std::make_pair(err, std::move(names));
  });
  engine_->RunUntilPredicate([result] { return result->has_value(); },
                            engine_->Now() + std::chrono::seconds(30));
  if (!result->has_value()) {
    return ScallaError{proto::XrdErr::kIo, "list '" + prefix + "': timed out"};
  }
  if ((*result)->first != proto::XrdErr::kNone) {
    return ScallaError{(*result)->first,
                       "list '" + prefix + "': " + XrdErrName((*result)->first)};
  }
  return std::move((*result)->second);
}

client::ScallaClient& SimCluster::NewClient() {
  client::ClientConfig cfg;
  cfg.addr = NextAddr();
  cfg.head = managers_[0]->config().addr;
  cfg.cnsd = cnsAddr_;
  if (spec_.clientOpenTimeout > Duration::zero()) {
    cfg.openTimeout = spec_.clientOpenTimeout;
  }
  for (std::size_t m = 1; m < managers_.size(); ++m) {
    cfg.extraHeads.push_back(managers_[m]->config().addr);
  }
  auto c = std::make_unique<client::ScallaClient>(cfg, *engine_, *fabric_);
  fabric_->Register(cfg.addr, c.get());
  clients_.push_back(std::move(c));
  return *clients_.back();
}

client::ScallaClient& SimCluster::NewProxyClient() {
  assert(proxy_ != nullptr);
  client::ClientConfig cfg;
  cfg.addr = NextAddr();
  cfg.head = proxy_->config().addr;
  cfg.cnsd = cnsAddr_;
  auto c = std::make_unique<client::ScallaClient>(cfg, *engine_, *fabric_);
  fabric_->Register(cfg.addr, c.get());
  clients_.push_back(std::move(c));
  return *clients_.back();
}

void SimCluster::PlaceFile(std::size_t i, const std::string& path, std::string data) {
  storages_[i]->Put(path, std::move(data));
}

client::OpenOutcome SimCluster::OpenAndWait(client::ScallaClient& c,
                                            const std::string& path, cms::AccessMode mode,
                                            bool create, Duration timeout) {
  auto result = std::make_shared<std::optional<client::OpenOutcome>>();
  c.Open(path, mode, create,
         [result](const client::OpenOutcome& o) { *result = o; });
  engine_->RunUntilPredicate([result] { return result->has_value(); },
                            engine_->Now() + timeout);
  if (!result->has_value()) {
    client::OpenOutcome timedOut;
    timedOut.err = proto::XrdErr::kIo;
    return timedOut;
  }
  return **result;
}

Result<std::string> SimCluster::ReadAll(client::ScallaClient& c,
                                        const std::string& path) {
  const auto open = OpenAndWait(c, path, cms::AccessMode::kRead, false);
  if (open.err != proto::XrdErr::kNone) {
    return ScallaError{open.err, "open '" + path + "': " + XrdErrName(open.err)};
  }
  std::string all;
  std::uint64_t offset = 0;
  for (;;) {
    auto result = std::make_shared<std::optional<std::pair<proto::XrdErr, std::string>>>();
    c.Read(open.file, offset, 1 << 16, [result](proto::XrdErr err, std::string data) {
      *result = std::make_pair(err, std::move(data));
    });
    engine_->RunUntilPredicate([result] { return result->has_value(); },
                              engine_->Now() + std::chrono::seconds(30));
    if (!result->has_value()) {
      return ScallaError{proto::XrdErr::kIo, "read '" + path + "': timed out"};
    }
    if ((*result)->first != proto::XrdErr::kNone) {
      return ScallaError{(*result)->first,
                         "read '" + path + "': " + XrdErrName((*result)->first)};
    }
    if ((*result)->second.empty()) break;
    offset += (*result)->second.size();
    all += std::move((*result)->second);
  }
  auto closed = std::make_shared<std::optional<proto::XrdErr>>();
  c.Close(open.file, [closed](proto::XrdErr err) { *closed = err; });
  engine_->RunUntilPredicate([closed] { return closed->has_value(); },
                            engine_->Now() + std::chrono::seconds(30));
  return all;
}

Result<void> SimCluster::PutFile(client::ScallaClient& c, const std::string& path,
                                 std::string data) {
  const auto open = OpenAndWait(c, path, cms::AccessMode::kWrite, /*create=*/true);
  if (open.err != proto::XrdErr::kNone) {
    return ScallaError{open.err, "open '" + path + "': " + XrdErrName(open.err)};
  }
  auto werr = std::make_shared<std::optional<proto::XrdErr>>();
  c.Write(open.file, 0, std::move(data),
          [werr](proto::XrdErr err, std::uint32_t) { *werr = err; });
  engine_->RunUntilPredicate([werr] { return werr->has_value(); },
                            engine_->Now() + std::chrono::seconds(30));
  auto cerr = std::make_shared<std::optional<proto::XrdErr>>();
  c.Close(open.file, [cerr](proto::XrdErr err) { *cerr = err; });
  engine_->RunUntilPredicate([cerr] { return cerr->has_value(); },
                            engine_->Now() + std::chrono::seconds(30));
  return Result<void>::From(
      werr->value_or(proto::XrdErr::kIo) != proto::XrdErr::kNone
          ? werr->value_or(proto::XrdErr::kIo)
          : cerr->value_or(proto::XrdErr::kIo),
      "put '" + path + "'");
}

Result<void> SimCluster::UnlinkAndWait(client::ScallaClient& c, const std::string& path) {
  auto result = std::make_shared<std::optional<proto::XrdErr>>();
  c.Unlink(path, [result](proto::XrdErr err) { *result = err; });
  engine_->RunUntilPredicate([result] { return result->has_value(); },
                            engine_->Now() + std::chrono::seconds(60));
  return Result<void>::From(result->value_or(proto::XrdErr::kIo),
                            "unlink '" + path + "'");
}

Result<void> SimCluster::PrepareAndWait(client::ScallaClient& c,
                                        const std::vector<std::string>& paths,
                                        cms::AccessMode mode) {
  auto result = std::make_shared<std::optional<proto::XrdErr>>();
  c.Prepare(paths, mode, [result](proto::XrdErr err) { *result = err; });
  engine_->RunUntilPredicate([result] { return result->has_value(); },
                            engine_->Now() + std::chrono::seconds(60));
  return Result<void>::From(result->value_or(proto::XrdErr::kIo), "prepare batch");
}

client::ScallaClient::ClusterStats SimCluster::ClusterStats(client::ScallaClient* c) {
  client::ScallaClient& querier = c ? *c : NewClient();
  auto result = std::make_shared<std::optional<client::ScallaClient::ClusterStats>>();
  querier.QueryStats(
      [result](const client::ScallaClient::ClusterStats& stats) { *result = stats; });
  engine_->RunUntilPredicate([result] { return result->has_value(); },
                            engine_->Now() + std::chrono::seconds(30));
  return result->value_or(client::ScallaClient::ClusterStats{});
}

xrd::ScallaNode* SimCluster::FindNode(net::NodeAddr addr) {
  for (auto& m : managers_) {
    if (m->config().addr == addr) return m.get();
  }
  for (auto& s : supervisors_) {
    if (s->config().addr == addr) return s.get();
  }
  for (auto& l : leaves_) {
    if (l->config().addr == addr) return l.get();
  }
  return nullptr;
}

void SimCluster::CrashServer(std::size_t i) {
  fabric_->SetDown(leaves_[i]->config().addr, true);
  // Every parent discovers the loss when it next touches the peer;
  // surface it immediately the way a broken TCP connection would.
  const net::NodeAddr addr = leaves_[i]->config().addr;
  std::vector<net::NodeAddr> parents = leaves_[i]->Parents();
  engine_->Post([this, parents, addr] {
    for (const net::NodeAddr parent : parents) {
      if (xrd::ScallaNode* p = FindNode(parent)) p->OnPeerDown(addr);
    }
  });
}

void SimCluster::CrashManager(std::size_t i) {
  const net::NodeAddr addr = managers_[i]->config().addr;
  fabric_->SetDown(addr, true);
  // Clients and subordinates learn on their next send (the fabric calls
  // their OnPeerDown), mirroring TCP connection failure.
}

void SimCluster::RestoreManager(std::size_t i) {
  fabric_->SetDown(managers_[i]->config().addr, false);
}

void SimCluster::RestartServer(std::size_t i) {
  fabric_->SetDown(leaves_[i]->config().addr, false);
  // The node's login retry timer re-announces it; nudge immediately.
  leaves_[i]->Stop();
  leaves_[i]->Start();
}

void SimCluster::WedgeServer(std::size_t i) {
  fabric_->SetWedged(leaves_[i]->config().addr, true);
}

void SimCluster::UnwedgeServer(std::size_t i) {
  fabric_->SetWedged(leaves_[i]->config().addr, false);
}

Result<proto::CmsDrainResp> SimCluster::DrainAndWait(client::ScallaClient& c,
                                                     const std::string& server,
                                                     bool restore) {
  auto result =
      std::make_shared<std::optional<std::pair<proto::XrdErr, proto::CmsDrainResp>>>();
  c.Drain(server, restore,
          [result](proto::XrdErr err, const proto::CmsDrainResp& resp) {
            *result = std::make_pair(err, resp);
          });
  engine_->RunUntilPredicate([result] { return result->has_value(); },
                            engine_->Now() + std::chrono::seconds(30));
  if (!result->has_value()) {
    return ScallaError{proto::XrdErr::kIo, "drain '" + server + "': timed out"};
  }
  if ((*result)->first != proto::XrdErr::kNone) {
    const std::string detail = (*result)->second.error.empty()
                                   ? XrdErrName((*result)->first)
                                   : (*result)->second.error;
    return ScallaError{(*result)->first, "drain '" + server + "': " + detail};
  }
  return (*result)->second;
}

void SimCluster::RunFor(Duration d) { engine_->RunUntil(engine_->Now() + d); }

}  // namespace scalla::sim

// Scenario factory: declarative campaign descriptions compiled into
// seeded, deterministic discrete-event runs at production scale —
// thousands of servers in multi-level supervisor trees, simulated client
// populations in the millions — with the paper's headline claims attached
// as machine-checked invariants instead of eyeballed bench tables:
//
//   * per-level resolution cost stays O(100us)-shaped as depth grows
//     (section II-B5: "<50us per tree level" on the authors' testbed; our
//     latency model is 25us links + 5us service, so the per-level budget
//     here is ~100us),
//   * correction work per death is O(1) in cached entries (section
//     III-A4: deaths bump a per-slot counter; every cached location is
//     corrected lazily on its next fetch, never eagerly walked),
//   * redirection latency rises with a very low linear slope as offered
//     load increases (section II-B5).
//
// A campaign is pure data (CampaignSpec); RunCampaign builds the cluster,
// seeds the namespace, drives the load phases and fault schedule on
// virtual time, and returns every claim verdict plus a deterministic
// metrics summary — the same seed always produces byte-identical
// MetricsJson() output, which tests/scenario_test.cc pins. The campaign
// library at the bottom covers the scenarios the ROADMAP names: flash
// crowd, open stampede, correlated rack failure, MSS staging storm,
// rolling upgrade, federation-wide partition, and the tier-2
// million-client run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/federation.h"
#include "sim/workload.h"

namespace scalla::sim {

/// One closed-loop load phase: `concurrency` pool actors each keep one
/// open outstanding until the phase has driven `ops` opens.
struct PhaseSpec {
  std::string name;
  std::size_t concurrency = 1;
  std::size_t ops = 1000;
  double zipfS = 0.9;          // popularity skew over the file population
  bool inSlopeFit = false;     // participates in the latency-vs-load fit
};

/// One scheduled fault, applied at the boundary before phase
/// `beforePhase` runs. Crash faults are followed by a quiet settle window
/// (no client traffic) long enough for the heartbeat to declare deaths —
/// the window where the O(1)-correction claim is accounted: any eager
/// cache walk at death time would show up as correction/lookup counter
/// movement with zero opens in flight.
struct FaultSpec {
  enum class Kind {
    // Wedge [firstServer, firstServer+serverCount): the process hangs with
    // its connections intact (correlated power loss looks like silence),
    // so nobody gets OnPeerDown and only the heartbeat can declare the
    // deaths — the path the O(1)-correction claim is about.
    kCrashServers,
    kRestartServers,  // un-wedge; the head's reconnect invitation restores them
    kDrainServers,    // operator drain by cms name ("serverN")
    kRestoreServers,  // undo the drain
  };
  Kind kind = Kind::kCrashServers;
  std::size_t beforePhase = 0;
  std::size_t firstServer = 0;
  std::size_t serverCount = 1;
  Duration settle = std::chrono::seconds(2);
};

/// Aggregate-counter delta bound over the whole campaign (head-tree
/// StatsQuery at start vs end). maxDelta < 0 means unbounded above.
struct CounterCheck {
  std::string counter;
  double minDelta = 0;
  double maxDelta = -1;
};

/// Claim checks; zero / negative bounds disable a check.
struct ClaimChecks {
  // Warm-probe mean open latency divided by tree depth must stay under
  // this many microseconds (the O(100us)-shaped per-level cost).
  double perLevelUsMax = 0;
  // Least-squares slope of phase mean latency (us) vs concurrency over
  // the inSlopeFit phases must stay under this (us per added client).
  double slopeUsPerClientMax = 0;
  // errors / (completed + errors) across all phases; < 0 disables.
  double errorRateMax = -1;
  // Enforce the O(1)-correction accounting on every crash fault: zero
  // correction/lookup movement during the quiet settle window (no eager
  // walk), deaths == crashed servers, and afterwards lazy corrections
  // never exceed lookups.
  bool correctionAccounting = false;
  std::vector<CounterCheck> counters;
};

struct CampaignSpec {
  std::string name;
  std::uint64_t seed = 1;

  // ---- topology ----
  int servers = 64;
  int fanout = 64;
  int managers = 1;
  Duration heartbeat = std::chrono::milliseconds(500);  // cms.ping (0 = off)
  bool withMss = false;
  Duration mssStageDelay = std::chrono::milliseconds(200);
  bool withProxy = false;      // pool actors open through the pcache proxy
  std::size_t proxyCacheBytes = 64 << 20;

  // ---- namespace ----
  std::size_t files = 1024;
  int replication = 2;
  std::size_t fileBytes = 0;
  bool filesInMss = false;     // files start MSS-resident (staging storms)

  // ---- client population ----
  // Distinct simulated client identities the arrival process draws from.
  // Identities are multiplexed over a bounded pool of connected endpoints
  // (`pool`), the way millions of analysis jobs funnel through a bounded
  // set of gateway connections; with `personalize` each identity applies
  // its own deterministic rotation to the Zipf stream, so the offered mix
  // genuinely widens as the population grows.
  std::size_t population = 10000;
  std::size_t pool = 64;
  bool personalize = false;

  // Warm probe: after seeding (and optional prewarm), one client re-opens
  // `probeOps` already-located paths to measure the per-level resolution
  // cost with zero queueing. 0 disables the probe (and the per-level check).
  std::size_t probeOps = 256;
  bool prewarm = true;  // open every path once before measuring

  std::vector<PhaseSpec> phases;
  std::vector<FaultSpec> faults;
  ClaimChecks checks;
};

struct PhaseResult {
  std::string name;
  std::size_t concurrency = 0;
  std::size_t completed = 0;
  std::size_t errors = 0;
  double meanUs = 0;
  double p50Us = 0;
  double p99Us = 0;
  double maxUs = 0;
  // Virtual time the phase spanned vs host time spent computing it; claim
  // checks only ever read the sim side.
  Duration simElapsed = Duration::zero();
  double wallSeconds = 0;
};

/// Accounting around one crash fault (correctionAccounting check).
struct FaultResult {
  std::size_t beforePhase = 0;
  std::size_t crashed = 0;
  std::uint64_t deathsDelta = 0;        // membership.deaths over the settle
  std::uint64_t settleCorrections = 0;  // cache.corrections over the settle
  std::uint64_t settleLookups = 0;      // cache.lookups over the settle
  std::uint64_t postCorrections = 0;    // corrections from fault to campaign end
  std::uint64_t postLookups = 0;        // lookups from fault to campaign end
};

struct CheckResult {
  std::string name;
  bool pass = false;
  double value = 0;
  double bound = 0;
};

struct CampaignResult {
  std::string name;
  std::uint64_t seed = 0;
  int depth = 0;
  std::size_t servers = 0;
  std::size_t supervisors = 0;
  std::size_t population = 0;
  std::size_t distinctIdentities = 0;  // identities that actually issued opens
  std::size_t totalCompleted = 0;
  std::size_t totalErrors = 0;
  double warmPerLevelUs = 0;   // warm-probe mean / depth
  double warmProbeMeanUs = 0;
  double slopeUsPerClient = 0; // fit over inSlopeFit phases (0 when < 2 points)
  std::vector<PhaseResult> phases;
  std::vector<FaultResult> faults;
  std::vector<CheckResult> checks;
  Duration simElapsed = Duration::zero();
  double wallSeconds = 0;

  bool ok() const;
  /// Deterministic summary: everything derived from virtual time and
  /// seeded randomness, nothing from the host clock. Byte-identical for
  /// the same spec + seed (tests/scenario_test.cc pins this).
  std::string MetricsJson() const;
  /// MetricsJson plus host-side wall_seconds, as one bench JSON line.
  std::string JsonLine() const;
};

/// Compiles and runs a campaign on a fresh SimCluster. Deterministic for
/// a fixed spec (all randomness flows from spec.seed; virtual time only).
CampaignResult RunCampaign(const CampaignSpec& spec);

// ---- campaign library (see docs/SCENARIOS.md for the claim map) ----

/// Tier-1 smoke: 64 servers at depth 2, tens of thousands of opens, every
/// claim check on; finishes in a couple of wall seconds.
CampaignSpec SmokeCampaign();
/// Everyone hammers one hot path while the tail keeps background load.
CampaignSpec FlashCrowdCampaign();
/// Cold-path open stampede racing the fast-response queue: many clients
/// open the same unlocated files at the same instant; the queue must
/// coalesce lookups instead of flooding the tree per client.
CampaignSpec OpenStampedeCampaign();
/// A whole rack (contiguous leaf range under one supervisor subtree) dies
/// mid-load; O(1)-correction accounting plus recovery error bounds.
CampaignSpec CorrelatedRackFailureCampaign(std::size_t files = 2048);
/// Cold MSS-resident namespace behind a pcache proxy; a read burst must
/// coalesce stages (at most one per file) instead of stampeding the MSS.
CampaignSpec MssStagingStormCampaign();
/// Drain a rack, keep serving, restore, roll to the next — zero errors
/// and zero heartbeat deaths across the whole upgrade.
CampaignSpec RollingUpgradeCampaign();
/// The ROADMAP item 4 scale point (tier-2): >= 1,000,000 opens from a
/// million-identity population across >= 1,000 servers in a >= 3-level
/// supervisor tree, with a correlated rack failure mid-run and all three
/// paper claims enforced.
CampaignSpec MillionClientCampaign();

/// Federation-wide partition (built on SimFederation rather than a single
/// cluster): member clusters keep serving while one is partitioned away,
/// the meta sheds it in O(1) on the federation heartbeat, and rejoin
/// restores the global namespace. Returns the same CampaignResult shape.
CampaignResult RunFederationPartitionCampaign(std::uint64_t seed = 11);

/// Name -> runner for every library campaign (bench_campaign and the
/// tier-2 suite iterate this).
using CampaignRunner = std::function<CampaignResult()>;
std::vector<std::pair<std::string, CampaignRunner>> CampaignRegistry();

}  // namespace scalla::sim

// Federation harness: several independent SimClusters sharing one
// discrete-event engine and fabric, fronted by a fed::MetaManager that
// clusters the clusters. Clients built here hold ONLY the meta-head
// address and reach files in any member cluster through the two-hop
// redirect walk (meta -> cluster head -> data server).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/scalla_client.h"
#include "fed/meta_manager.h"
#include "pcache/proxy_node.h"
#include "sim/cluster.h"
#include "sim/event_engine.h"
#include "sim/sim_fabric.h"
#include "util/result.h"

namespace scalla::sim {

struct FederationSpec {
  int clusters = 2;
  // Template applied to every member cluster (servers, exports, cms, ...).
  // meta / clusterName / locality are filled in per cluster by the harness.
  ClusterSpec cluster;
  // Meta-manager tier configuration; selection defaults to kLoad so the
  // locality weights below actually steer cross-cluster replica choice.
  fed::MetaConfig meta;
  LatencyModel latency;
  // Per-cluster locality weight (distance from the meta's site); missing
  // entries default to 0 (= nearest).
  std::vector<std::uint32_t> localities;
  // Federation edge cache: a pcache proxy whose origin head IS the meta.
  bool withEdgeProxy = false;
  pcache::BlockCacheConfig edgeProxyCache;
};

class SimFederation {
 public:
  explicit SimFederation(const FederationSpec& spec);
  ~SimFederation();

  /// Starts the meta and every cluster, settles subscriptions.
  void Start();

  EventEngine& engine() { return engine_; }
  SimFabric& fabric() { return fabric_; }
  fed::MetaManager& meta() { return *meta_; }
  std::size_t ClusterCount() const { return clusters_.size(); }
  SimCluster& cluster(std::size_t i) { return *clusters_[i]; }
  pcache::ProxyCacheNode* edgeProxy() { return proxy_.get(); }

  /// A client that knows only the meta-head address.
  client::ScallaClient& NewClient();
  /// A client whose head is the federation edge proxy (withEdgeProxy).
  client::ScallaClient& NewEdgeClient();

  /// Seeds `path` on leaf `leaf` of cluster `c` (pre-placed file).
  void PlaceFile(std::size_t c, std::size_t leaf, const std::string& path,
                 std::string data);

  // Synchronous driving helpers (shared engine, any member cluster's
  // helpers drive the whole federation — delegate to cluster 0).
  client::OpenOutcome OpenAndWait(client::ScallaClient& c, const std::string& path,
                                  cms::AccessMode mode, bool create,
                                  Duration timeout = std::chrono::seconds(120));
  Result<std::string> ReadAll(client::ScallaClient& c, const std::string& path);
  Result<void> PutFile(client::ScallaClient& c, const std::string& path,
                       std::string data);
  client::ScallaClient::ClusterStats FederationStats(client::ScallaClient* c = nullptr);

  /// Partitions cluster `i` from the meta: traffic between the meta and
  /// every head of that cluster is silently dropped in both directions —
  /// nobody gets OnPeerDown, so only the federation heartbeat notices
  /// (DeclareDead -> O(1) correction-vector shed).
  void PartitionCluster(std::size_t i);
  /// Heals the partition; the meta's reconnect invitation re-subscribes
  /// the cluster head on the next heartbeat tick.
  void RejoinCluster(std::size_t i);

  /// Advances virtual time by `d`, processing periodic timers on the way.
  void RunFor(Duration d);

  const FederationSpec& spec() const { return spec_; }

 private:
  FederationSpec spec_;
  EventEngine engine_;
  SimFabric fabric_;
  std::unique_ptr<fed::MetaManager> meta_;
  std::vector<std::unique_ptr<SimCluster>> clusters_;
  std::unique_ptr<pcache::ProxyCacheNode> proxy_;
  std::vector<std::unique_ptr<client::ScallaClient>> clients_;
  net::NodeAddr nextClientAddr_ = 100;  // below the 1000-per-cluster bands
};

}  // namespace scalla::sim

#include "sim/event_engine.h"

#include <utility>

namespace scalla::sim {

void EventEngine::Post(sched::Task task) { ScheduleAt(clock_.Now(), std::move(task)); }

void EventEngine::ScheduleAt(TimePoint at, sched::Task task) {
  if (at < clock_.Now()) at = clock_.Now();
  events_.emplace(at, Event{0, Duration::zero(), std::move(task)});
  ++nonPeriodic_;
}

sched::TimerId EventEngine::RunAfter(Duration delay, sched::Task task) {
  const sched::TimerId id = nextTimerId_++;
  events_.emplace(clock_.Now() + delay, Event{id, Duration::zero(), std::move(task)});
  ++nonPeriodic_;
  return id;
}

sched::TimerId EventEngine::RunEvery(Duration period, sched::Task task) {
  const sched::TimerId id = nextTimerId_++;
  events_.emplace(clock_.Now() + period, Event{id, period, std::move(task)});
  return id;
}

bool EventEngine::Cancel(sched::TimerId id) {
  if (id == sched::kInvalidTimer) return false;
  cancelled_.insert(id);
  return true;
}

bool EventEngine::RunOne() {
  while (!events_.empty()) {
    auto node = events_.extract(events_.begin());
    Event ev = std::move(node.mapped());
    const TimePoint due = node.key();
    if (ev.period == Duration::zero()) --nonPeriodic_;
    if (ev.id != 0 && cancelled_.erase(ev.id) > 0) continue;  // lazily dropped
    clock_.Set(due);
    if (ev.period > Duration::zero()) {
      // Re-arm before running so the task can Cancel itself.
      events_.emplace(due + ev.period, Event{ev.id, ev.period, ev.task});
    }
    ev.task();
    ++processed_;
    return true;
  }
  return false;
}

std::size_t EventEngine::RunUntilIdle() {
  std::size_t n = 0;
  while (nonPeriodic_ > 0 && RunOne()) ++n;
  return n;
}

std::size_t EventEngine::RunUntil(TimePoint deadline) {
  std::size_t n = 0;
  while (!events_.empty() && events_.begin()->first <= deadline && RunOne()) ++n;
  if (clock_.Now() < deadline) clock_.Set(deadline);
  return n;
}

bool EventEngine::RunUntilPredicate(const std::function<bool()>& stop, TimePoint deadline) {
  while (!stop()) {
    if (events_.empty() || events_.begin()->first > deadline) {
      if (clock_.Now() < deadline) clock_.Set(deadline);
      return stop();
    }
    RunOne();
  }
  return true;
}

}  // namespace scalla::sim

#include "proto/wire.h"

#include <bit>
#include <cstring>
#include <type_traits>

#include "proto/wire_fields.h"

namespace scalla::proto {
namespace {

class Writer {
 public:
  std::string out;

  void Put(bool v) { out.push_back(v ? 1 : 0); }
  void Put(std::uint8_t v) { out.push_back(static_cast<char>(v)); }
  void Put(std::uint32_t v) { PutLe(v); }
  void Put(std::int32_t v) { PutLe(static_cast<std::uint32_t>(v)); }
  void Put(std::uint64_t v) { PutLe(v); }
  void Put(std::int64_t v) { PutLe(static_cast<std::uint64_t>(v)); }
  void Put(const std::string& s) {
    Put(static_cast<std::uint32_t>(s.size()));
    out.append(s);
  }
  void Put(const std::vector<std::string>& v) {
    Put(static_cast<std::uint32_t>(v.size()));
    for (const auto& s : v) Put(s);
  }
  void Put(const ReadSeg& seg) {
    Put(seg.offset);
    Put(seg.length);
  }
  void Put(const std::vector<ReadSeg>& v) {
    Put(static_cast<std::uint32_t>(v.size()));
    for (const auto& seg : v) Put(seg);
  }
  // Doubles travel as their IEEE-754 bit pattern in a u64 (exact round-trip).
  void Put(double v) { Put(std::bit_cast<std::uint64_t>(v)); }
  void Put(const obs::HistogramStat& h) {
    Fields(h.count, h.minNanos, h.maxNanos, h.meanNanos, h.p50Nanos, h.p99Nanos);
  }
  void Put(const obs::MetricsSnapshot& s) {
    Put(static_cast<std::uint32_t>(s.counters.size()));
    for (const auto& [name, v] : s.counters) Fields(name, v);
    Put(static_cast<std::uint32_t>(s.gauges.size()));
    for (const auto& [name, v] : s.gauges) Fields(name, v);
    Put(static_cast<std::uint32_t>(s.histograms.size()));
    for (const auto& [name, h] : s.histograms) Fields(name, h);
  }
  template <typename E>
    requires std::is_enum_v<E>
  void Put(E v) {
    Put(static_cast<std::underlying_type_t<E>>(v));
  }

  template <typename... Ts>
  void Fields(const Ts&... fields) {
    (Put(fields), ...);
  }

 private:
  template <typename T>
  void PutLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
};

class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}

  bool ok() const { return ok_ && in_.empty(); }

  void Get(bool& v) {
    std::uint8_t b = 0;
    GetLe(b);
    v = b != 0;
  }
  void Get(std::uint8_t& v) { GetLe(v); }
  void Get(std::uint32_t& v) { GetLe(v); }
  void Get(std::int32_t& v) {
    std::uint32_t u = 0;
    GetLe(u);
    v = static_cast<std::int32_t>(u);
  }
  void Get(std::uint64_t& v) { GetLe(v); }
  void Get(std::int64_t& v) {
    std::uint64_t u = 0;
    GetLe(u);
    v = static_cast<std::int64_t>(u);
  }
  void Get(std::string& s) {
    std::uint32_t len = 0;
    GetLe(len);
    if (!ok_ || len > in_.size() || len > kMaxFrameBody) {
      ok_ = false;
      return;
    }
    s.assign(in_.data(), len);
    in_.remove_prefix(len);
  }
  void Get(std::vector<std::string>& v) {
    std::uint32_t count = 0;
    GetLe(count);
    if (!ok_ || count > in_.size()) {  // each entry needs >= 4 bytes
      ok_ = false;
      return;
    }
    v.clear();
    v.reserve(count);
    for (std::uint32_t i = 0; i < count && ok_; ++i) {
      v.emplace_back();
      Get(v.back());
    }
  }
  void Get(ReadSeg& seg) {
    GetLe(seg.offset);
    GetLe(seg.length);
  }
  void Get(std::vector<ReadSeg>& v) {
    std::uint32_t count = 0;
    GetLe(count);
    if (!ok_ || count > in_.size()) {  // each entry needs >= 12 bytes
      ok_ = false;
      return;
    }
    v.clear();
    v.reserve(count);
    for (std::uint32_t i = 0; i < count && ok_; ++i) {
      v.emplace_back();
      Get(v.back());
    }
  }
  void Get(double& v) {
    std::uint64_t bits = 0;
    GetLe(bits);
    v = std::bit_cast<double>(bits);
  }
  void Get(obs::HistogramStat& h) {
    Fields(h.count, h.minNanos, h.maxNanos, h.meanNanos, h.p50Nanos, h.p99Nanos);
  }
  void Get(obs::MetricsSnapshot& s) {
    const auto table = [this](auto& entries) {
      std::uint32_t count = 0;
      GetLe(count);
      if (!ok_ || count > in_.size()) {  // each entry needs >= 4 bytes of name
        ok_ = false;
        return;
      }
      entries.clear();
      entries.reserve(count);
      for (std::uint32_t i = 0; i < count && ok_; ++i) {
        entries.emplace_back();
        Fields(entries.back().first, entries.back().second);
      }
    };
    table(s.counters);
    table(s.gauges);
    table(s.histograms);
  }
  template <typename E>
    requires std::is_enum_v<E>
  void Get(E& v) {
    std::underlying_type_t<E> raw{};
    Get(raw);
    v = static_cast<E>(raw);
  }

  template <typename... Ts>
  void Fields(Ts&... fields) {
    (Get(fields), ...);
  }

 private:
  template <typename T>
  void GetLe(T& v) {
    if (!ok_ || in_.size() < sizeof(T)) {
      ok_ = false;
      v = T{};
      return;
    }
    T out{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<unsigned char>(in_[i])) << (8 * i);
    }
    in_.remove_prefix(sizeof(T));
    v = out;
  }

  std::string_view in_;
  bool ok_ = true;
};

// Field lists live in proto/wire_fields.h (one Visit overload per message
// type), shared by Encode (Writer), Decode (Reader), and tests.

template <std::size_t I = 0>
std::optional<Message> DecodeIndex(std::size_t index, Reader& reader) {
  if constexpr (I >= std::variant_size_v<Message>) {
    (void)reader;
    return std::nullopt;
  } else {
    if (index == I) {
      std::variant_alternative_t<I, Message> m{};
      wire::Visit(reader, m);
      if (!reader.ok()) return std::nullopt;
      return Message(std::move(m));
    }
    return DecodeIndex<I + 1>(index, reader);
  }
}

}  // namespace

std::string Encode(const Message& message) {
  std::string out;
  EncodeAppend(message, out);
  return out;
}

void EncodeAppend(const Message& message, std::string& out) {
  // The Writer swaps the caller's buffer in and out, so encoding into a
  // pooled buffer with enough capacity performs no allocation.
  Writer writer;
  writer.out.swap(out);
  writer.Put(static_cast<std::uint8_t>(message.index()));
  std::visit(
      [&writer](const auto& m) {
        wire::Visit(writer, const_cast<std::decay_t<decltype(m)>&>(m));
      },
      message);
  out.swap(writer.out);
}

std::optional<Message> Decode(std::string_view body) {
  if (body.empty() || body.size() > kMaxFrameBody) return std::nullopt;
  const auto index = static_cast<std::size_t>(static_cast<unsigned char>(body[0]));
  Reader reader(body.substr(1));
  return DecodeIndex(index, reader);
}

const char* MessageName(const Message& m) {
  static constexpr const char* kNames[] = {
      "CmsLogin", "CmsLoginResp", "CmsQuery", "CmsHave", "CmsNoHave", "CmsGone",
      "CmsLoad", "XrdOpen", "XrdOpenResp", "XrdRead", "XrdReadResp", "XrdWrite",
      "XrdWriteResp", "XrdClose", "XrdCloseResp", "XrdStat", "XrdStatResp",
      "XrdUnlink", "XrdUnlinkResp", "XrdPrepare", "XrdPrepareResp", "CnsList",
      "CnsListResp", "XrdReadV", "XrdReadVResp", "XrdChecksum", "XrdChecksumResp",
      "StatsQuery", "StatsReply", "PcacheAdmin", "PcacheAdminResp", "CmsPing",
      "CmsPong", "CmsDeath", "CmsDrain", "CmsDrainResp", "FedSubscribe",
      "FedSubscribeResp", "FedQuery", "FedHave", "FedGone", "FedLocate",
      "FedRedirect"};
  static_assert(sizeof(kNames) / sizeof(kNames[0]) == std::variant_size_v<Message>);
  return kNames[m.index()];
}

}  // namespace scalla::proto

// Field lists for every protocol message, shared by the binary
// serializer (proto/wire.cc) and by tests that need to walk a message's
// fields generically (e.g. the seeded round-trip property test). Each
// message type has exactly one Visit overload naming its fields once, in
// declaration order; an archive is anything with a variadic
// `Fields(fs...)` member that dispatches per-field (write, read, fill
// with random values, ...).
#pragma once

#include "proto/messages.h"

namespace scalla::proto::wire {

// Unknown message types fail at compile time rather than serializing as
// nothing.
template <class Ar, class M>
void Visit(Ar& ar, M& m) = delete;

template <class Ar> void Visit(Ar& ar, CmsLogin& m) {
  ar.Fields(m.name, m.exports, m.allowWrite, m.isSupervisor);
}
template <class Ar> void Visit(Ar& ar, CmsLoginResp& m) {
  ar.Fields(m.ok, m.slot, m.error, m.redirect);
}
template <class Ar> void Visit(Ar& ar, CmsQuery& m) {
  ar.Fields(m.path, m.hash, m.mode, m.refresh);
}
template <class Ar> void Visit(Ar& ar, CmsHave& m) {
  ar.Fields(m.path, m.hash, m.pending, m.allowWrite, m.newfile);
}
template <class Ar> void Visit(Ar& ar, CmsNoHave& m) { ar.Fields(m.path, m.hash); }
template <class Ar> void Visit(Ar& ar, CmsGone& m) { ar.Fields(m.path); }
template <class Ar> void Visit(Ar& ar, CmsLoad& m) {
  ar.Fields(m.load, m.freeSpace, m.name);
}
template <class Ar> void Visit(Ar& ar, XrdOpen& m) {
  ar.Fields(m.reqId, m.path, m.mode, m.create, m.refresh, m.avoidNode);
}
template <class Ar> void Visit(Ar& ar, XrdOpenResp& m) {
  ar.Fields(m.reqId, m.status, m.err, m.redirectNode, m.waitNs, m.fileHandle, m.message);
}
template <class Ar> void Visit(Ar& ar, XrdRead& m) {
  ar.Fields(m.reqId, m.fileHandle, m.offset, m.length);
}
template <class Ar> void Visit(Ar& ar, XrdReadResp& m) { ar.Fields(m.reqId, m.err, m.data); }
template <class Ar> void Visit(Ar& ar, XrdWrite& m) {
  ar.Fields(m.reqId, m.fileHandle, m.offset, m.data);
}
template <class Ar> void Visit(Ar& ar, XrdWriteResp& m) {
  ar.Fields(m.reqId, m.err, m.written);
}
template <class Ar> void Visit(Ar& ar, XrdClose& m) { ar.Fields(m.reqId, m.fileHandle); }
template <class Ar> void Visit(Ar& ar, XrdCloseResp& m) { ar.Fields(m.reqId, m.err); }
template <class Ar> void Visit(Ar& ar, XrdStat& m) { ar.Fields(m.reqId, m.path); }
template <class Ar> void Visit(Ar& ar, XrdStatResp& m) {
  ar.Fields(m.reqId, m.status, m.err, m.redirectNode, m.waitNs, m.size);
}
template <class Ar> void Visit(Ar& ar, XrdUnlink& m) { ar.Fields(m.reqId, m.path); }
template <class Ar> void Visit(Ar& ar, XrdUnlinkResp& m) {
  ar.Fields(m.reqId, m.status, m.err, m.redirectNode, m.waitNs);
}
template <class Ar> void Visit(Ar& ar, XrdPrepare& m) {
  ar.Fields(m.reqId, m.paths, m.mode);
}
template <class Ar> void Visit(Ar& ar, XrdPrepareResp& m) { ar.Fields(m.reqId, m.err); }
template <class Ar> void Visit(Ar& ar, CnsList& m) { ar.Fields(m.reqId, m.prefix); }
template <class Ar> void Visit(Ar& ar, CnsListResp& m) {
  ar.Fields(m.reqId, m.err, m.names);
}
template <class Ar> void Visit(Ar& ar, XrdReadV& m) {
  ar.Fields(m.reqId, m.fileHandle, m.segments);
}
template <class Ar> void Visit(Ar& ar, XrdReadVResp& m) {
  ar.Fields(m.reqId, m.err, m.chunks);
}
template <class Ar> void Visit(Ar& ar, XrdChecksum& m) { ar.Fields(m.reqId, m.path); }
template <class Ar> void Visit(Ar& ar, XrdChecksumResp& m) {
  ar.Fields(m.reqId, m.status, m.err, m.redirectNode, m.waitNs, m.crc32);
}
template <class Ar> void Visit(Ar& ar, StatsQuery& m) { ar.Fields(m.reqId); }
template <class Ar> void Visit(Ar& ar, StatsReply& m) {
  ar.Fields(m.reqId, m.nodeCount, m.snapshot);
}
template <class Ar> void Visit(Ar& ar, PcacheAdmin& m) {
  ar.Fields(m.reqId, m.op, m.path);
}
template <class Ar> void Visit(Ar& ar, PcacheAdminResp& m) {
  ar.Fields(m.reqId, m.err, m.blocksPurged, m.usedBytes, m.blockCount,
            m.dramUsedBytes, m.dramBlockCount, m.diskUsedBytes, m.diskBlockCount);
}
template <class Ar> void Visit(Ar& ar, CmsPing& m) { ar.Fields(m.seq, m.reconnect); }
template <class Ar> void Visit(Ar& ar, CmsPong& m) {
  ar.Fields(m.seq, m.load, m.freeSpace);
}
template <class Ar> void Visit(Ar& ar, CmsDeath& m) { ar.Fields(m.server); }
template <class Ar> void Visit(Ar& ar, CmsDrain& m) {
  ar.Fields(m.reqId, m.server, m.restore);
}
template <class Ar> void Visit(Ar& ar, CmsDrainResp& m) {
  ar.Fields(m.reqId, m.ok, m.applied, m.error);
}
template <class Ar> void Visit(Ar& ar, FedSubscribe& m) {
  ar.Fields(m.cluster, m.exports, m.allowWrite, m.locality);
}
template <class Ar> void Visit(Ar& ar, FedSubscribeResp& m) {
  ar.Fields(m.ok, m.clusterId, m.error);
}
template <class Ar> void Visit(Ar& ar, FedQuery& m) {
  ar.Fields(m.path, m.hash, m.mode, m.refresh);
}
template <class Ar> void Visit(Ar& ar, FedHave& m) {
  ar.Fields(m.path, m.hash, m.pending, m.allowWrite, m.newfile);
}
template <class Ar> void Visit(Ar& ar, FedGone& m) { ar.Fields(m.path); }
template <class Ar> void Visit(Ar& ar, FedLocate& m) {
  ar.Fields(m.reqId, m.path, m.mode, m.refresh, m.avoidCluster);
}
template <class Ar> void Visit(Ar& ar, FedRedirect& m) {
  ar.Fields(m.reqId, m.status, m.err, m.clusterId, m.cluster, m.headAddr, m.waitNs);
}

}  // namespace scalla::proto::wire

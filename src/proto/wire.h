// Binary wire format for proto::Message, used by the TCP transport. A
// frame on the wire is:
//   u32 length (of everything after this field, little-endian)
//   u8  message type (variant index)
//   ... payload fields in declaration order
// Integers are little-endian; strings are u32 length + bytes.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "proto/messages.h"

namespace scalla::proto {

/// Serializes a message, WITHOUT the outer length prefix (the transport
/// adds framing).
std::string Encode(const Message& message);

/// Appends the encoding of `message` to `out`. With a pooled buffer of
/// sufficient capacity this performs no allocation — the TCP send path
/// uses it to reuse frame buffers across messages.
void EncodeAppend(const Message& message, std::string& out);

/// Parses a frame body produced by Encode. std::nullopt on malformed input
/// (truncation, unknown type, oversized string).
std::optional<Message> Decode(std::string_view body);

/// Maximum accepted frame body; protects the decoder from hostile lengths.
inline constexpr std::size_t kMaxFrameBody = 64 * 1024 * 1024;

}  // namespace scalla::proto

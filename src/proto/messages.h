// Protocol messages. Two protocol families share one transport:
//   - cms: node-to-node cluster management (login, locate queries, have
//     responses, load reports) — the cmsd protocol;
//   - xrd: client-to-node file access (open/read/write/close/stat/...,
//     with redirect/wait responses) — the xrootd protocol.
// Messages are plain structs gathered into a std::variant; the in-process
// transports pass them directly, the TCP transport serializes them via
// proto/wire.h.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "obs/snapshot.h"
#include "util/types.h"

namespace scalla::proto {

// --------------------------------------------------------------------
// cms protocol (node <-> node)

/// Subordinate -> parent: join the cluster, declaring export prefixes.
/// Registration is deliberately light — path prefixes only, never a file
/// manifest (paper section V).
struct CmsLogin {
  std::string name;                   // stable identity ("host:port")
  std::vector<std::string> exports;   // exported path prefixes
  bool allowWrite = true;
  bool isSupervisor = false;          // subordinate heads its own subtree
};

struct CmsLoginResp {
  bool ok = false;
  std::int32_t slot = -1;   // assigned server slot (bit position)
  std::string error;
  // When a cluster set is full (64 members, paper section II-B1), the
  // head redirects the newcomer to one of its supervisor subordinates,
  // keeping "nodes can be added easily" true past 64 servers.
  std::uint32_t redirect = 0;  // try logging in here instead (0 = none)
};

/// Parent -> subordinates: "do you have <path>?" (request-rarely-respond:
/// holders answer CmsHave; everyone else stays silent).
struct CmsQuery {
  std::string path;
  std::uint32_t hash = 0;   // CRC32, forwarded so responders can echo it
  std::uint8_t mode = 0;    // AccessMode
  bool refresh = false;     // supervisors refresh their subtree view too
};

/// Subordinate -> parent: positive response. Also used as an unsolicited
/// new-file notification (newfile=true), which supervisors propagate
/// upward so manager caches learn about creations without re-flooding.
struct CmsHave {
  std::string path;
  std::uint32_t hash = 0;   // echoed so the manager never re-hashes
  bool pending = false;     // file is being staged (V_p rather than V_h)
  bool allowWrite = true;
  bool newfile = false;
};

/// Subordinate -> parent: explicit negative response. Only emitted by the
/// always-respond baseline protocol (experiment E06); real Scalla treats
/// non-response as "no".
struct CmsNoHave {
  std::string path;
  std::uint32_t hash = 0;
};

/// Subordinate -> parent: the file is gone (unlinked / lost).
struct CmsGone {
  std::string path;
};

/// Subordinate -> parent: periodic load/space report used for selection.
/// Routed by `name` (stable identity) rather than connection slot, so a
/// report that races a re-login still lands on the right member.
struct CmsLoad {
  std::uint32_t load = 0;
  std::uint64_t freeSpace = 0;
  std::string name;  // reporter's stable identity ("" = route by sender addr)
};

// --------------------------------------------------------------------
// xrd protocol (client <-> node)

enum class XrdStatus : std::uint8_t {
  kOk = 0,
  kRedirect = 1,  // re-issue the request at `host`
  kWait = 2,      // wait `waitNs`, then retry here
  kError = 3,
};

enum class XrdErr : std::int32_t {
  kNone = 0,
  kNotFound = 2,       // ENOENT
  kIo = 5,             // EIO
  kExists = 17,        // EEXIST
  kInvalid = 22,       // EINVAL
  kNoSpace = 28,       // ENOSPC
  kLoop = 40,          // ELOOP: redirect chain exceeded client.maxredirects
  kStale = 116,        // ESTALE: retry from a consistent state
};

struct XrdOpen {
  std::uint64_t reqId = 0;
  std::string path;
  std::uint8_t mode = 0;      // AccessMode
  bool create = false;
  bool refresh = false;       // ask for a cache refresh (client recovery)
  std::uint32_t avoidNode = 0;  // fabric address of the node that failed (0 = none)
};

struct XrdOpenResp {
  std::uint64_t reqId = 0;
  XrdStatus status = XrdStatus::kError;
  XrdErr err = XrdErr::kNone;
  std::uint32_t redirectNode = 0;  // transport address of the target node
  std::int64_t waitNs = 0;
  std::uint64_t fileHandle = 0;
  std::string message;
};

struct XrdRead {
  std::uint64_t reqId = 0;
  std::uint64_t fileHandle = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

struct XrdReadResp {
  std::uint64_t reqId = 0;
  XrdErr err = XrdErr::kNone;
  std::string data;
};

struct XrdWrite {
  std::uint64_t reqId = 0;
  std::uint64_t fileHandle = 0;
  std::uint64_t offset = 0;
  std::string data;
};

struct XrdWriteResp {
  std::uint64_t reqId = 0;
  XrdErr err = XrdErr::kNone;
  std::uint32_t written = 0;
};

/// One segment of a vector read.
struct ReadSeg {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  bool operator==(const ReadSeg&) const = default;
};

/// Vector read: many (offset, length) segments in one request — the
/// pattern ROOT analysis produces (sparse branch reads), served in a
/// single round trip.
struct XrdReadV {
  std::uint64_t reqId = 0;
  std::uint64_t fileHandle = 0;
  std::vector<ReadSeg> segments;
};

struct XrdReadVResp {
  std::uint64_t reqId = 0;
  XrdErr err = XrdErr::kNone;
  std::vector<std::string> chunks;  // one per requested segment
};

/// Checksum query (xrootd's kXR_query checksum): managers redirect it
/// like any meta-data operation; the data server computes CRC32 over the
/// file content.
struct XrdChecksum {
  std::uint64_t reqId = 0;
  std::string path;
};

struct XrdChecksumResp {
  std::uint64_t reqId = 0;
  XrdStatus status = XrdStatus::kError;
  XrdErr err = XrdErr::kNone;
  std::uint32_t redirectNode = 0;
  std::int64_t waitNs = 0;
  std::uint32_t crc32 = 0;
};

struct XrdClose {
  std::uint64_t reqId = 0;
  std::uint64_t fileHandle = 0;
};

struct XrdCloseResp {
  std::uint64_t reqId = 0;
  XrdErr err = XrdErr::kNone;
};

struct XrdStat {
  std::uint64_t reqId = 0;
  std::string path;
};

struct XrdStatResp {
  std::uint64_t reqId = 0;
  XrdStatus status = XrdStatus::kError;  // managers redirect stats too
  XrdErr err = XrdErr::kNone;
  std::uint32_t redirectNode = 0;
  std::int64_t waitNs = 0;
  std::uint64_t size = 0;
};

struct XrdUnlink {
  std::uint64_t reqId = 0;
  std::string path;
};

struct XrdUnlinkResp {
  std::uint64_t reqId = 0;
  XrdStatus status = XrdStatus::kError;
  XrdErr err = XrdErr::kNone;
  std::uint32_t redirectNode = 0;
  std::int64_t waitNs = 0;
};

/// Parallel prepare (paper section III-B2): a list of files that will be
/// needed; the node spawns parallel background look-ups so the client
/// externally observes at most one full delay.
struct XrdPrepare {
  std::uint64_t reqId = 0;
  std::vector<std::string> paths;
  std::uint8_t mode = 0;
};

struct XrdPrepareResp {
  std::uint64_t reqId = 0;
  XrdErr err = XrdErr::kNone;
};

/// Global namespace listing, served by the Cluster Name Space daemon
/// (paper footnote 3) — NOT by managers, which keep a flat namespace.
struct CnsList {
  std::uint64_t reqId = 0;
  std::string prefix;
};

struct CnsListResp {
  std::uint64_t reqId = 0;
  XrdErr err = XrdErr::kNone;
  std::vector<std::string> names;
};

// --------------------------------------------------------------------
// Observability (any peer <-> node)

/// "Send me your subtree's metrics." A manager or supervisor fans the query
/// out to its online subordinates, merges their replies into its own
/// snapshot, and answers with the aggregate; a data server replies
/// immediately. Clients use the same frame against the head manager, so one
/// query yields a whole-cluster view.
struct StatsQuery {
  std::uint64_t reqId = 0;
};

struct StatsReply {
  std::uint64_t reqId = 0;
  std::uint32_t nodeCount = 0;  // nodes folded into this snapshot
  obs::MetricsSnapshot snapshot;
};

// --------------------------------------------------------------------
// Proxy cache administration (client <-> pcache proxy)

enum class PcacheAdminOp : std::uint8_t {
  kStat = 0,       // report occupancy only
  kPurgePath = 1,  // drop every cached block of `path`
  kPurgeAll = 2,   // drop the whole cache
};

/// Admin frame for a caching proxy (pcache tier). Regular nodes answer it
/// with kInvalid so a mistargeted purge fails loudly instead of silently.
struct PcacheAdmin {
  std::uint64_t reqId = 0;
  PcacheAdminOp op = PcacheAdminOp::kStat;
  std::string path;  // kPurgePath only
};

struct PcacheAdminResp {
  std::uint64_t reqId = 0;
  XrdErr err = XrdErr::kNone;       // kInvalid when the target is not a proxy
  std::uint64_t blocksPurged = 0;
  std::uint64_t usedBytes = 0;      // post-operation cache occupancy (both tiers)
  std::uint64_t blockCount = 0;
  // Per-tier breakdown (tiered pcache; zero on a DRAM-only proxy's disk side).
  std::uint64_t dramUsedBytes = 0;
  std::uint64_t dramBlockCount = 0;
  std::uint64_t diskUsedBytes = 0;
  std::uint64_t diskBlockCount = 0;
};

// --------------------------------------------------------------------
// Liveness & membership administration (cms protocol)

/// Parent -> subordinate: heartbeat probe. A subordinate that misses
/// `cms.misslimit` consecutive probes is declared dead (its cache bits are
/// cleared through the correction vector, like CmsGone but for every path).
/// With `reconnect` set the parent believes the subordinate is offline and
/// is inviting it to log in again (the self-healing rejoin path).
struct CmsPing {
  std::uint64_t seq = 0;
  bool reconnect = false;
};

/// Subordinate -> parent: heartbeat answer. Piggybacks the load/space
/// numbers so selection metrics stay fresh even between CmsLoad reports.
struct CmsPong {
  std::uint64_t seq = 0;
  std::uint32_t load = 0;
  std::uint64_t freeSpace = 0;
};

/// Parent -> supervisor subordinates: "<server> was declared dead"; each
/// supervisor clears the server from its own membership/cache and fans the
/// notice further down its subtree.
struct CmsDeath {
  std::string server;
};

/// Operator -> head (or head -> supervisors, reqId=0): gracefully drain a
/// server out of selection (restore=false) or re-admit it (restore=true).
/// A drained server stays logged in and cached; it just stops winning
/// selection until restored.
struct CmsDrain {
  std::uint64_t reqId = 0;  // 0 = fanned down the tree, no reply expected
  std::string server;
  bool restore = false;
};

struct CmsDrainResp {
  std::uint64_t reqId = 0;
  bool ok = false;
  bool applied = false;  // false: unknown here, forwarded to subtree heads
  std::string error;
};

// --------------------------------------------------------------------
// Federation (fed protocol): cluster head <-> meta-manager. The same
// subscribe / locate / redirect machinery one level up — the meta-manager
// fronts up to 64 *clusters* exactly as a manager fronts 64 servers.

/// Cluster head -> meta-manager: subscribe this cluster into the
/// federation, declaring its export prefixes. Registration stays light
/// (prefixes only, never a file manifest), mirroring CmsLogin.
struct FedSubscribe {
  std::string cluster;                // stable cluster identity ("cern", "slac")
  std::vector<std::string> exports;   // cluster-wide exported path prefixes
  bool allowWrite = true;
  std::uint32_t locality = 0;         // distance weight; lower = preferred
};

struct FedSubscribeResp {
  bool ok = false;
  std::int32_t clusterId = -1;  // assigned cluster slot (bit position)
  std::string error;
};

/// Meta-manager -> cluster heads: "does your cluster have <path>?"
/// Request-rarely-respond one level up: owning heads answer FedHave;
/// everyone else stays silent and the deadline decides.
struct FedQuery {
  std::string path;
  std::uint32_t hash = 0;   // CRC32, echoed back so the meta never re-hashes
  std::uint8_t mode = 0;    // AccessMode
  bool refresh = false;     // head refreshes its own subtree view too
};

/// Cluster head -> meta-manager: positive response. Also sent unsolicited
/// as an upward new-file digest (newfile=true) so the meta's cluster-
/// location cache learns about creations without re-flooding the fleet.
struct FedHave {
  std::string path;
  std::uint32_t hash = 0;
  bool pending = false;
  bool allowWrite = true;
  bool newfile = false;
};

/// Cluster head -> meta-manager: upward invalidation — the last replica
/// of <path> in this cluster is gone.
struct FedGone {
  std::string path;
};

/// Client/tool -> meta-manager: explicit "which cluster owns <path>?"
/// (the fed-level analogue of an XrdOpen that never opens). Used by
/// `scalla_cli fed locate` and by tests probing the meta's cache.
struct FedLocate {
  std::uint64_t reqId = 0;
  std::string path;
  std::uint8_t mode = 0;        // AccessMode
  bool refresh = false;
  std::uint32_t avoidCluster = 0;  // head addr that just failed (0 = none)
};

struct FedRedirect {
  std::uint64_t reqId = 0;
  XrdStatus status = XrdStatus::kError;
  XrdErr err = XrdErr::kNone;
  std::int32_t clusterId = -1;
  std::string cluster;          // owning cluster's stable identity
  std::uint32_t headAddr = 0;   // fabric address of that cluster's head
  std::int64_t waitNs = 0;      // kWait: retry after this delay
};

using Message =
    std::variant<CmsLogin, CmsLoginResp, CmsQuery, CmsHave, CmsNoHave, CmsGone, CmsLoad,
                 XrdOpen, XrdOpenResp, XrdRead, XrdReadResp, XrdWrite, XrdWriteResp,
                 XrdClose, XrdCloseResp, XrdStat, XrdStatResp, XrdUnlink, XrdUnlinkResp,
                 XrdPrepare, XrdPrepareResp, CnsList, CnsListResp, XrdReadV, XrdReadVResp,
                 XrdChecksum, XrdChecksumResp, StatsQuery, StatsReply, PcacheAdmin,
                 PcacheAdminResp, CmsPing, CmsPong, CmsDeath, CmsDrain, CmsDrainResp,
                 FedSubscribe, FedSubscribeResp, FedQuery, FedHave, FedGone, FedLocate,
                 FedRedirect>;

/// Human-readable tag for logging.
const char* MessageName(const Message& m);

}  // namespace scalla::proto

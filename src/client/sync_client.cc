#include "client/sync_client.h"

#include <future>

namespace scalla::client {
namespace {

// Waits for the async result, mapping a timeout to kIo. The shared_ptr
// keeps the promise alive if the callback outlives an abandoned wait.
template <typename T>
T Await(std::future<T>& future, Duration timeout, T timeoutValue) {
  if (future.wait_for(timeout) != std::future_status::ready) return timeoutValue;
  return future.get();
}

}  // namespace

SyncClient::SyncClient(const ClientConfig& config, sched::Executor& executor,
                       net::Fabric& fabric, Duration timeout)
    : executor_(executor), inner_(config, executor, fabric), timeout_(timeout) {}

OpenOutcome SyncClient::Open(const std::string& path, cms::AccessMode mode, bool create) {
  auto prom = std::make_shared<std::promise<OpenOutcome>>();
  auto fut = prom->get_future();
  executor_.Post([this, path, mode, create, prom] {
    inner_.Open(path, mode, create,
                [prom](const OpenOutcome& outcome) { prom->set_value(outcome); });
  });
  OpenOutcome timedOut;
  timedOut.err = proto::XrdErr::kIo;
  return Await(fut, timeout_, timedOut);
}

std::pair<proto::XrdErr, std::string> SyncClient::Read(const FileRef& file,
                                                       std::uint64_t offset,
                                                       std::uint32_t length) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, std::string>>>();
  auto fut = prom->get_future();
  executor_.Post([this, file, offset, length, prom] {
    inner_.Read(file, offset, length, [prom](proto::XrdErr err, std::string data) {
      prom->set_value({err, std::move(data)});
    });
  });
  return Await(fut, timeout_, {proto::XrdErr::kIo, std::string()});
}

std::pair<proto::XrdErr, std::vector<std::string>> SyncClient::ReadV(
    const FileRef& file, std::vector<proto::ReadSeg> segments) {
  auto prom = std::make_shared<
      std::promise<std::pair<proto::XrdErr, std::vector<std::string>>>>();
  auto fut = prom->get_future();
  executor_.Post([this, file, segments = std::move(segments), prom]() mutable {
    inner_.ReadV(file, std::move(segments),
                 [prom](proto::XrdErr err, std::vector<std::string> chunks) {
                   prom->set_value({err, std::move(chunks)});
                 });
  });
  return Await(fut, timeout_, {proto::XrdErr::kIo, std::vector<std::string>()});
}

std::pair<proto::XrdErr, std::uint32_t> SyncClient::Checksum(const std::string& path) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, std::uint32_t>>>();
  auto fut = prom->get_future();
  executor_.Post([this, path, prom] {
    inner_.Checksum(path, [prom](proto::XrdErr err, std::uint32_t crc) {
      prom->set_value({err, crc});
    });
  });
  return Await(fut, timeout_, {proto::XrdErr::kIo, std::uint32_t{0}});
}

std::pair<proto::XrdErr, std::uint32_t> SyncClient::Write(const FileRef& file,
                                                          std::uint64_t offset,
                                                          std::string data) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, std::uint32_t>>>();
  auto fut = prom->get_future();
  executor_.Post([this, file, offset, data = std::move(data), prom]() mutable {
    inner_.Write(file, offset, std::move(data),
                 [prom](proto::XrdErr err, std::uint32_t n) { prom->set_value({err, n}); });
  });
  return Await(fut, timeout_, {proto::XrdErr::kIo, std::uint32_t{0}});
}

proto::XrdErr SyncClient::Close(const FileRef& file) {
  auto prom = std::make_shared<std::promise<proto::XrdErr>>();
  auto fut = prom->get_future();
  executor_.Post([this, file, prom] {
    inner_.Close(file, [prom](proto::XrdErr err) { prom->set_value(err); });
  });
  return Await(fut, timeout_, proto::XrdErr::kIo);
}

std::pair<proto::XrdErr, std::uint64_t> SyncClient::Stat(const std::string& path) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, std::uint64_t>>>();
  auto fut = prom->get_future();
  executor_.Post([this, path, prom] {
    inner_.Stat(path, [prom](proto::XrdErr err, std::uint64_t size) {
      prom->set_value({err, size});
    });
  });
  return Await(fut, timeout_, {proto::XrdErr::kIo, std::uint64_t{0}});
}

proto::XrdErr SyncClient::Unlink(const std::string& path) {
  auto prom = std::make_shared<std::promise<proto::XrdErr>>();
  auto fut = prom->get_future();
  executor_.Post([this, path, prom] {
    inner_.Unlink(path, [prom](proto::XrdErr err) { prom->set_value(err); });
  });
  return Await(fut, timeout_, proto::XrdErr::kIo);
}

proto::XrdErr SyncClient::Prepare(const std::vector<std::string>& paths,
                                  cms::AccessMode mode) {
  auto prom = std::make_shared<std::promise<proto::XrdErr>>();
  auto fut = prom->get_future();
  executor_.Post([this, paths, mode, prom] {
    inner_.Prepare(paths, mode, [prom](proto::XrdErr err) { prom->set_value(err); });
  });
  return Await(fut, timeout_, proto::XrdErr::kIo);
}

proto::XrdErr SyncClient::PutFile(const std::string& path, std::string data) {
  const OpenOutcome open = Open(path, cms::AccessMode::kWrite, /*create=*/true);
  if (open.err != proto::XrdErr::kNone) return open.err;
  const auto [werr, n] = Write(open.file, 0, std::move(data));
  const proto::XrdErr cerr = Close(open.file);
  if (werr != proto::XrdErr::kNone) return werr;
  (void)n;
  return cerr;
}

std::pair<proto::XrdErr, std::string> SyncClient::GetFile(const std::string& path) {
  const OpenOutcome open = Open(path, cms::AccessMode::kRead, /*create=*/false);
  if (open.err != proto::XrdErr::kNone) return {open.err, std::string()};
  std::string all;
  std::uint64_t offset = 0;
  for (;;) {
    auto [err, chunk] = Read(open.file, offset, 1 << 16);
    if (err != proto::XrdErr::kNone) {
      Close(open.file);
      return {err, std::string()};
    }
    if (chunk.empty()) break;
    offset += chunk.size();
    all += std::move(chunk);
  }
  Close(open.file);
  return {proto::XrdErr::kNone, std::move(all)};
}

}  // namespace scalla::client

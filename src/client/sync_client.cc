#include "client/sync_client.h"

#include <future>

namespace scalla::client {
namespace {

// Waits for the async result, mapping a timeout to kIo. The shared_ptr
// keeps the promise alive if the callback outlives an abandoned wait.
template <typename T>
T Await(std::future<T>& future, Duration timeout, T timeoutValue) {
  if (future.wait_for(timeout) != std::future_status::ready) return timeoutValue;
  return future.get();
}

ScallaError MakeError(proto::XrdErr err, const char* op, const std::string& subject) {
  return ScallaError{err, std::string(op) + " '" + subject + "': " + XrdErrName(err)};
}

}  // namespace

SyncClient::SyncClient(const ClientConfig& config, sched::Executor& executor,
                       net::Fabric& fabric, Duration timeout)
    : executor_(executor), inner_(config, executor, fabric), timeout_(timeout) {}

OpenOutcome SyncClient::Open(const std::string& path, cms::AccessMode mode, bool create) {
  auto prom = std::make_shared<std::promise<OpenOutcome>>();
  auto fut = prom->get_future();
  executor_.Post([this, path, mode, create, prom] {
    inner_.Open(path, mode, create,
                [prom](const OpenOutcome& outcome) { prom->set_value(outcome); });
  });
  OpenOutcome timedOut;
  timedOut.err = proto::XrdErr::kIo;
  return Await(fut, timeout_, timedOut);
}

Result<std::string> SyncClient::Read(const FileRef& file, std::uint64_t offset,
                                     std::uint32_t length) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, std::string>>>();
  auto fut = prom->get_future();
  executor_.Post([this, file, offset, length, prom] {
    inner_.Read(file, offset, length, [prom](proto::XrdErr err, std::string data) {
      prom->set_value({err, std::move(data)});
    });
  });
  auto [err, data] = Await(fut, timeout_, {proto::XrdErr::kIo, std::string()});
  if (err != proto::XrdErr::kNone) return MakeError(err, "read", "handle");
  return std::move(data);
}

Result<std::vector<std::string>> SyncClient::ReadV(
    const FileRef& file, const std::vector<proto::ReadSeg>& segments) {
  auto prom = std::make_shared<
      std::promise<std::pair<proto::XrdErr, std::vector<std::string>>>>();
  auto fut = prom->get_future();
  executor_.Post([this, file, segments, prom]() mutable {
    inner_.ReadV(file, std::move(segments),
                 [prom](proto::XrdErr err, std::vector<std::string> chunks) {
                   prom->set_value({err, std::move(chunks)});
                 });
  });
  auto [err, chunks] = Await(fut, timeout_, {proto::XrdErr::kIo, std::vector<std::string>()});
  if (err != proto::XrdErr::kNone) return MakeError(err, "readv", "handle");
  return std::move(chunks);
}

Result<std::uint32_t> SyncClient::Checksum(const std::string& path) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, std::uint32_t>>>();
  auto fut = prom->get_future();
  executor_.Post([this, path, prom] {
    inner_.Checksum(path, [prom](proto::XrdErr err, std::uint32_t crc) {
      prom->set_value({err, crc});
    });
  });
  const auto [err, crc] = Await(fut, timeout_, {proto::XrdErr::kIo, std::uint32_t{0}});
  if (err != proto::XrdErr::kNone) return MakeError(err, "checksum", path);
  return crc;
}

Result<std::uint32_t> SyncClient::Write(const FileRef& file, std::uint64_t offset,
                                        std::string data) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, std::uint32_t>>>();
  auto fut = prom->get_future();
  executor_.Post([this, file, offset, data = std::move(data), prom]() mutable {
    inner_.Write(file, offset, std::move(data),
                 [prom](proto::XrdErr err, std::uint32_t n) { prom->set_value({err, n}); });
  });
  const auto [err, n] = Await(fut, timeout_, {proto::XrdErr::kIo, std::uint32_t{0}});
  if (err != proto::XrdErr::kNone) return MakeError(err, "write", "handle");
  return n;
}

Result<void> SyncClient::Close(const FileRef& file) {
  auto prom = std::make_shared<std::promise<proto::XrdErr>>();
  auto fut = prom->get_future();
  executor_.Post([this, file, prom] {
    inner_.Close(file, [prom](proto::XrdErr err) { prom->set_value(err); });
  });
  const proto::XrdErr err = Await(fut, timeout_, proto::XrdErr::kIo);
  if (err != proto::XrdErr::kNone) return MakeError(err, "close", "handle");
  return Result<void>::Ok();
}

Result<std::uint64_t> SyncClient::Stat(const std::string& path) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, std::uint64_t>>>();
  auto fut = prom->get_future();
  executor_.Post([this, path, prom] {
    inner_.Stat(path, [prom](proto::XrdErr err, std::uint64_t size) {
      prom->set_value({err, size});
    });
  });
  const auto [err, size] = Await(fut, timeout_, {proto::XrdErr::kIo, std::uint64_t{0}});
  if (err != proto::XrdErr::kNone) return MakeError(err, "stat", path);
  return size;
}

Result<void> SyncClient::Unlink(const std::string& path) {
  auto prom = std::make_shared<std::promise<proto::XrdErr>>();
  auto fut = prom->get_future();
  executor_.Post([this, path, prom] {
    inner_.Unlink(path, [prom](proto::XrdErr err) { prom->set_value(err); });
  });
  const proto::XrdErr err = Await(fut, timeout_, proto::XrdErr::kIo);
  if (err != proto::XrdErr::kNone) return MakeError(err, "unlink", path);
  return Result<void>::Ok();
}

Result<void> SyncClient::Prepare(const std::vector<std::string>& paths,
                                 cms::AccessMode mode) {
  auto prom = std::make_shared<std::promise<proto::XrdErr>>();
  auto fut = prom->get_future();
  executor_.Post([this, paths, mode, prom] {
    inner_.Prepare(paths, mode, [prom](proto::XrdErr err) { prom->set_value(err); });
  });
  const proto::XrdErr err = Await(fut, timeout_, proto::XrdErr::kIo);
  if (err != proto::XrdErr::kNone) return MakeError(err, "prepare", "batch");
  return Result<void>::Ok();
}

Result<void> SyncClient::PutFile(const std::string& path, std::string data) {
  const OpenOutcome open = Open(path, cms::AccessMode::kWrite, /*create=*/true);
  if (open.err != proto::XrdErr::kNone) return MakeError(open.err, "open", path);
  const auto written = Write(open.file, 0, std::move(data));
  const auto closed = Close(open.file);
  if (!written) return written.error();
  if (!closed) return closed.error();
  return Result<void>::Ok();
}

Result<std::string> SyncClient::GetFile(const std::string& path) {
  const OpenOutcome open = Open(path, cms::AccessMode::kRead, /*create=*/false);
  if (open.err != proto::XrdErr::kNone) return MakeError(open.err, "open", path);
  std::string all;
  std::uint64_t offset = 0;
  for (;;) {
    auto chunk = Read(open.file, offset, 1 << 16);
    if (!chunk) {
      (void)Close(open.file);
      return chunk.error();
    }
    if (chunk.value().empty()) break;
    offset += chunk.value().size();
    all += std::move(chunk).value();
  }
  (void)Close(open.file);
  return all;
}

Result<ScallaClient::ClusterStats> SyncClient::Stats() {
  auto prom = std::make_shared<std::promise<ScallaClient::ClusterStats>>();
  auto fut = prom->get_future();
  executor_.Post([this, prom] {
    inner_.QueryStats(
        [prom](const ScallaClient::ClusterStats& stats) { prom->set_value(stats); },
        timeout_);
  });
  // The inner query times out on its own; pad the blocking wait a little so
  // the ok=false outcome (rather than a promise abandonment) surfaces.
  ScallaClient::ClusterStats stats =
      Await(fut, timeout_ + std::chrono::seconds(1), ScallaClient::ClusterStats{});
  if (!stats.ok) return MakeError(proto::XrdErr::kIo, "stats", "cluster");
  return stats;
}

Result<proto::PcacheAdminResp> SyncClient::CacheAdmin(proto::PcacheAdminOp op,
                                                      const std::string& path) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, proto::PcacheAdminResp>>>();
  auto fut = prom->get_future();
  executor_.Post([this, op, path, prom] {
    inner_.CacheAdmin(op, path, [prom](proto::XrdErr err, proto::PcacheAdminResp resp) {
      prom->set_value({err, std::move(resp)});
    });
  });
  auto [err, resp] = Await(fut, timeout_, {proto::XrdErr::kIo, proto::PcacheAdminResp{}});
  if (err != proto::XrdErr::kNone) return MakeError(err, "cache-admin", path);
  return resp;
}

Result<proto::CmsDrainResp> SyncClient::Drain(const std::string& server, bool restore) {
  auto prom = std::make_shared<std::promise<std::pair<proto::XrdErr, proto::CmsDrainResp>>>();
  auto fut = prom->get_future();
  executor_.Post([this, server, restore, prom] {
    inner_.Drain(server, restore,
                 [prom](proto::XrdErr err, const proto::CmsDrainResp& resp) {
                   prom->set_value({err, resp});
                 });
  });
  auto [err, resp] = Await(fut, timeout_, {proto::XrdErr::kIo, proto::CmsDrainResp{}});
  if (err != proto::XrdErr::kNone) {
    return ScallaError{err, "drain '" + server + "': " +
                                (resp.error.empty() ? XrdErrName(err) : resp.error)};
  }
  return resp;
}

}  // namespace scalla::client

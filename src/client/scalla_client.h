// Asynchronous Scalla client: speaks the xrd protocol to a cluster head,
// following redirects down the tree, honouring wait/retry responses, and
// performing the paper's client recovery — on being vectored to a server
// that cannot serve the file it re-asks the head with a refresh request
// naming the failing host (section III-C1).
//
// The client is an actor on an executor (event-driven), so the same code
// runs under the discrete-event simulator and over real TCP; SyncClient
// wraps it with a blocking API for threaded use.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cms/types.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "sched/executor.h"
#include "util/rng.h"

namespace scalla::client {

struct ClientConfig {
  net::NodeAddr addr = 0;       // this client's fabric address
  net::NodeAddr head = 0;       // the cluster's logical head node
  // Redundant heads: "clients first contact the logical head node (which
  // can be one of many)". On losing the current head the client rotates
  // to the next and restarts affected requests there.
  std::vector<net::NodeAddr> extraHeads;
  net::NodeAddr cnsd = 0;       // Cluster Name Space daemon (0 = none)
  int maxRecoveries = 4;        // refresh/avoid cycles before giving up
  // Redirect-loop guard (config directive `client.maxredirects`): bounds
  // the TOTAL redirect hops one request may follow across all attempts.
  // Two heads pointing at each other (e.g. a meta-manager and a cluster
  // head with crossed caches) would otherwise ping-pong the client
  // forever; on breach the request fails with the distinct XrdErr::kLoop
  // instead of a generic I/O error. 8 comfortably covers the deepest
  // legitimate walk: meta -> cluster head -> supervisor chain -> server.
  int maxRedirects = 8;
  int maxWaits = 64;            // wait/retry cycles (staging can be long)
  // kStale answers are re-issued at the head after a short jittered delay
  // (never synchronously) and give up past the cap — a head stuck
  // answering stale must not spin the client forever.
  int maxStaleRetries = 8;
  Duration staleRetryDelay = std::chrono::milliseconds(2);
  // Per-attempt open timeout. A wedged server never answers and never
  // breaks the connection, so without this an open vectored at it would
  // hang forever; on expiry the open runs the same refresh/avoid recovery
  // as a connection loss. Zero disables the timer.
  Duration openTimeout = std::chrono::seconds(10);
};

/// A successfully opened file: which node serves it and its handle there.
struct FileRef {
  net::NodeAddr node = 0;
  std::uint64_t handle = 0;
};

struct OpenOutcome {
  proto::XrdErr err = proto::XrdErr::kNone;
  FileRef file;
  int redirects = 0;   // hops followed
  int waits = 0;       // wait/retry cycles taken
  int recoveries = 0;  // refresh cycles taken
  Duration elapsed{};  // request start to completion
};

class ScallaClient : public net::MessageSink {
 public:
  ScallaClient(const ClientConfig& config, sched::Executor& executor, net::Fabric& fabric);

  using OpenCallback = std::function<void(const OpenOutcome&)>;
  using ReadCallback = std::function<void(proto::XrdErr, std::string data)>;
  using WriteCallback = std::function<void(proto::XrdErr, std::uint32_t written)>;
  using DoneCallback = std::function<void(proto::XrdErr)>;
  using StatCallback = std::function<void(proto::XrdErr, std::uint64_t size)>;

  /// Opens `path` via the head node. With create=true a missing file is
  /// created on a server chosen by the head (after the full-delay
  /// non-existence check the paper describes).
  void Open(const std::string& path, cms::AccessMode mode, bool create, OpenCallback done);

  void Read(const FileRef& file, std::uint64_t offset, std::uint32_t length,
            ReadCallback done);

  using ReadVCallback = std::function<void(proto::XrdErr, std::vector<std::string>)>;
  /// Vector read: all segments in one round trip.
  void ReadV(const FileRef& file, std::vector<proto::ReadSeg> segments,
             ReadVCallback done);

  using ChecksumCallback = std::function<void(proto::XrdErr, std::uint32_t crc32)>;
  /// CRC32 of the file's content, computed by the data server holding it
  /// (follows redirects like any meta-data operation).
  void Checksum(const std::string& path, ChecksumCallback done);
  void Write(const FileRef& file, std::uint64_t offset, std::string data,
             WriteCallback done);
  void Close(const FileRef& file, DoneCallback done);
  void Stat(const std::string& path, StatCallback done);
  void Unlink(const std::string& path, DoneCallback done);

  /// Parallel prepare (section III-B2): announce upcoming accesses so the
  /// cluster warms its location cache / starts stages in parallel.
  void Prepare(const std::vector<std::string>& paths, cms::AccessMode mode,
               DoneCallback done);

  using ListCallback = std::function<void(proto::XrdErr, std::vector<std::string>)>;
  /// Global namespace listing via the Cluster Name Space daemon (managers
  /// do not implement ls — paper section II-B4). Requires config.cnsd.
  void List(const std::string& prefix, ListCallback done);

  /// Tree-aggregated cluster metrics: the head folds its whole subtree's
  /// snapshots into one (kStatsQuery/kStatsReply). ok=false means the head
  /// never answered within `timeout`.
  struct ClusterStats {
    bool ok = false;
    std::uint32_t nodeCount = 0;  // nodes folded into the snapshot
    obs::MetricsSnapshot snapshot;
  };
  using StatsQueryCallback = std::function<void(const ClusterStats&)>;
  void QueryStats(StatsQueryCallback done, Duration timeout = std::chrono::seconds(5));

  using CacheAdminCallback =
      std::function<void(proto::XrdErr, proto::PcacheAdminResp)>;
  /// Proxy cache administration aimed at the current head: occupancy query
  /// or purge. A non-proxy head answers kInvalid.
  void CacheAdmin(proto::PcacheAdminOp op, const std::string& path,
                  CacheAdminCallback done);

  using DrainCallback = std::function<void(proto::XrdErr, const proto::CmsDrainResp&)>;
  /// Operator drain: asks the head to take `server` (by cms name) out of
  /// selection while keeping it online; restore=true undoes it. The head
  /// fans the request down to supervisors when it does not know the name.
  void Drain(const std::string& server, bool restore, DrainCallback done);

  // net::MessageSink
  void OnMessage(net::NodeAddr from, proto::Message message) override;
  /// Connection-loss recovery: pending opens/stats/unlinks aimed at the
  /// dead node restart at the head (with avoid+refresh for opens, the
  /// paper's recovery idiom); pending I/O on it fails with kIo.
  void OnPeerDown(net::NodeAddr peer) override;

  /// Latency of completed Open calls (the redirection-latency metric the
  /// paper quotes: "<50us per tree level" once cached).
  const obs::Histogram& OpenLatency() const { return openLatency_; }

  /// The client's own instruments (retries, failovers, recoveries, open
  /// latency) — local counters, distinct from QueryStats' cluster view.
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::MetricsSnapshot SnapshotMetrics() const { return metrics_.Snapshot(); }

  /// The head this client currently targets (changes on head failover).
  net::NodeAddr CurrentHead() const { return heads_[headIdx_]; }

 private:
  struct OpenState {
    std::string path;
    cms::AccessMode mode;
    bool create = false;
    bool refresh = false;
    net::NodeAddr avoidNode = 0;
    net::NodeAddr currentNode = 0;
    OpenCallback done;
    OpenOutcome outcome;
    TimePoint start{};
    int staleRetries = 0;
    sched::TimerId timer = sched::kInvalidTimer;  // per-attempt timeout
  };
  struct StatState {
    std::string path;
    net::NodeAddr currentNode = 0;
    StatCallback done;
    int hops = 0;
    int waits = 0;
  };
  struct UnlinkState {
    std::string path;
    net::NodeAddr currentNode = 0;
    DoneCallback done;
    int hops = 0;
    int waits = 0;
    int recoveries = 0;
  };
  struct ChecksumState {
    std::string path;
    net::NodeAddr currentNode = 0;
    ChecksumCallback done;
    int hops = 0;
    int waits = 0;
  };
  struct StatsQueryState {
    StatsQueryCallback done;
    sched::TimerId timer = sched::kInvalidTimer;
  };

  void SendOpen(std::uint64_t reqId);
  void FinishOpen(std::uint64_t reqId, proto::XrdErr err, FileRef file);
  void CancelOpenTimer(OpenState& s);
  void OnOpenTimeout(std::uint64_t reqId);
  void HandleOpenResp(net::NodeAddr from, const proto::XrdOpenResp& m);
  void HandleStatResp(net::NodeAddr from, const proto::XrdStatResp& m);
  void HandleUnlinkResp(net::NodeAddr from, const proto::XrdUnlinkResp& m);
  void HandleChecksumResp(net::NodeAddr from, const proto::XrdChecksumResp& m);
  void HandleStatsReply(net::NodeAddr from, const proto::StatsReply& m);

  bool IsHead(net::NodeAddr addr) const;
  void RotateHeadAwayFrom(net::NodeAddr dead);

  ClientConfig config_;
  sched::Executor& executor_;
  net::Fabric& fabric_;
  std::vector<net::NodeAddr> heads_;
  std::size_t headIdx_ = 0;
  util::Rng rng_;  // stale-retry jitter (seeded per client for determinism)

  std::uint64_t nextReqId_ = 1;
  std::unordered_map<std::uint64_t, OpenState> opens_;
  std::unordered_map<std::uint64_t, StatState> stats_;
  std::unordered_map<std::uint64_t, UnlinkState> unlinks_;
  std::unordered_map<std::uint64_t, ReadCallback> reads_;
  std::unordered_map<std::uint64_t, ReadVCallback> readvs_;
  std::unordered_map<std::uint64_t, ChecksumState> checksums_;
  std::unordered_map<std::uint64_t, WriteCallback> writes_;
  std::unordered_map<std::uint64_t, DoneCallback> closes_;
  std::unordered_map<std::uint64_t, DoneCallback> prepares_;
  std::unordered_map<std::uint64_t, ListCallback> lists_;
  std::unordered_map<std::uint64_t, StatsQueryState> statsQueries_;
  std::unordered_map<std::uint64_t, CacheAdminCallback> cacheAdmins_;
  std::unordered_map<std::uint64_t, DrainCallback> drains_;

  // Registry first: the instrument references below point into it.
  obs::MetricsRegistry metrics_;
  obs::Histogram& openLatency_;   // client.open_latency
  obs::Counter& retriesMetric_;   // client.retries — wait/stale re-issues
  obs::Counter& failoversMetric_; // client.head_failovers
  obs::Counter& recoveriesMetric_;  // client.recoveries — refresh/avoid cycles
  obs::Counter& redirectsMetric_;   // client.redirects_followed
  obs::Counter& loopBreaksMetric_;  // client.redirect_loop_breaks — kLoop failures
};

}  // namespace scalla::client

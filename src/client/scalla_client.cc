#include "client/scalla_client.h"

#include <utility>

namespace scalla::client {

ScallaClient::ScallaClient(const ClientConfig& config, sched::Executor& executor,
                           net::Fabric& fabric)
    : config_(config),
      executor_(executor),
      fabric_(fabric),
      rng_(0x57a1eULL ^ config.addr),
      openLatency_(metrics_.GetHistogram("client.open_latency")),
      retriesMetric_(metrics_.GetCounter("client.retries")),
      failoversMetric_(metrics_.GetCounter("client.head_failovers")),
      recoveriesMetric_(metrics_.GetCounter("client.recoveries")),
      redirectsMetric_(metrics_.GetCounter("client.redirects_followed")),
      loopBreaksMetric_(metrics_.GetCounter("client.redirect_loop_breaks")) {
  heads_.push_back(config_.head);
  for (const net::NodeAddr h : config_.extraHeads) {
    if (h != 0) heads_.push_back(h);
  }
}

bool ScallaClient::IsHead(net::NodeAddr addr) const {
  for (const net::NodeAddr h : heads_) {
    if (h == addr) return true;
  }
  return false;
}

void ScallaClient::RotateHeadAwayFrom(net::NodeAddr dead) {
  if (heads_.size() < 2 || CurrentHead() != dead) return;
  headIdx_ = (headIdx_ + 1) % heads_.size();
  failoversMetric_.Inc();
}

void ScallaClient::Open(const std::string& path, cms::AccessMode mode, bool create,
                        OpenCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  OpenState state;
  state.path = path;
  state.mode = mode;
  state.create = create;
  state.currentNode = CurrentHead();
  state.done = std::move(done);
  state.start = executor_.clock().Now();
  opens_.emplace(reqId, std::move(state));
  SendOpen(reqId);
}

void ScallaClient::SendOpen(std::uint64_t reqId) {
  const auto it = opens_.find(reqId);
  if (it == opens_.end()) return;
  OpenState& s = it->second;
  proto::XrdOpen msg;
  msg.reqId = reqId;
  msg.path = s.path;
  msg.mode = s.mode == cms::AccessMode::kRead ? 0 : 1;
  msg.create = s.create;
  msg.refresh = s.refresh;
  msg.avoidNode = s.avoidNode;
  // Refresh requests always restart at the head node.
  s.refresh = false;
  fabric_.Send(config_.addr, s.currentNode, std::move(msg));
  CancelOpenTimer(s);
  if (config_.openTimeout > Duration::zero()) {
    s.timer = executor_.RunAfter(config_.openTimeout,
                                 [this, reqId] { OnOpenTimeout(reqId); });
  }
}

void ScallaClient::CancelOpenTimer(OpenState& s) {
  if (s.timer == sched::kInvalidTimer) return;
  executor_.Cancel(s.timer);
  s.timer = sched::kInvalidTimer;
}

void ScallaClient::OnOpenTimeout(std::uint64_t reqId) {
  const auto it = opens_.find(reqId);
  if (it == opens_.end()) return;
  OpenState& s = it->second;
  s.timer = sched::kInvalidTimer;
  // The current target went silent without breaking the connection (a
  // wedged process): recover exactly as if the connection had died.
  if (++s.outcome.recoveries > config_.maxRecoveries) {
    FinishOpen(reqId, proto::XrdErr::kIo, {});
    return;
  }
  recoveriesMetric_.Inc();
  if (IsHead(s.currentNode)) {
    RotateHeadAwayFrom(s.currentNode);
  } else {
    s.refresh = true;
    s.avoidNode = s.currentNode;
  }
  s.currentNode = CurrentHead();
  SendOpen(reqId);
}

void ScallaClient::FinishOpen(std::uint64_t reqId, proto::XrdErr err, FileRef file) {
  auto node = opens_.extract(reqId);
  if (node.empty()) return;
  OpenState& s = node.mapped();
  CancelOpenTimer(s);
  s.outcome.err = err;
  s.outcome.file = file;
  s.outcome.elapsed = executor_.clock().Now() - s.start;
  if (err == proto::XrdErr::kNone) openLatency_.Record(s.outcome.elapsed);
  s.done(s.outcome);
}

void ScallaClient::HandleOpenResp(net::NodeAddr from, const proto::XrdOpenResp& m) {
  const auto it = opens_.find(m.reqId);
  if (it == opens_.end()) return;
  OpenState& s = it->second;
  // Any response ends the current attempt; delayed re-sends re-arm it.
  CancelOpenTimer(s);

  switch (m.status) {
    case proto::XrdStatus::kOk:
      FinishOpen(m.reqId, proto::XrdErr::kNone, FileRef{from, m.fileHandle});
      return;

    case proto::XrdStatus::kRedirect:
      if (++s.outcome.redirects > config_.maxRedirects) {
        loopBreaksMetric_.Inc();
        FinishOpen(m.reqId, proto::XrdErr::kLoop, {});
        return;
      }
      redirectsMetric_.Inc();
      s.currentNode = m.redirectNode;
      SendOpen(m.reqId);
      return;

    case proto::XrdStatus::kWait: {
      if (++s.outcome.waits > config_.maxWaits) {
        FinishOpen(m.reqId, proto::XrdErr::kIo, {});
        return;
      }
      retriesMetric_.Inc();
      const Duration wait{m.waitNs};
      executor_.RunAfter(wait, [this, reqId = m.reqId] { SendOpen(reqId); });
      return;
    }

    case proto::XrdStatus::kError:
      if (m.err == proto::XrdErr::kStale) {
        // Transient inconsistency: retry from the head — but never
        // synchronously and never forever. A head that keeps answering
        // kStale would otherwise spin an infinite immediate re-send loop;
        // cap the retries and space them with a short jittered delay.
        if (++s.staleRetries > config_.maxStaleRetries) {
          FinishOpen(m.reqId, proto::XrdErr::kStale, {});
          return;
        }
        retriesMetric_.Inc();
        s.currentNode = CurrentHead();
        const auto base = config_.staleRetryDelay.count();
        const Duration delay{base + static_cast<Duration::rep>(rng_.NextBelow(
                                        static_cast<std::uint64_t>(base) + 1))};
        executor_.RunAfter(delay, [this, reqId = m.reqId] { SendOpen(reqId); });
        return;
      }
      if ((m.err == proto::XrdErr::kNotFound || m.err == proto::XrdErr::kNoSpace) &&
          !IsHead(from)) {
        // Vectored to a server that cannot serve the file (stale cache,
        // or a full server refusing a creation): the general recovery is
        // to reissue at the head asking for a cache refresh and naming
        // the failing host (section III-C1).
        if (++s.outcome.recoveries > config_.maxRecoveries) {
          FinishOpen(m.reqId, proto::XrdErr::kNotFound, {});
          return;
        }
        recoveriesMetric_.Inc();
        s.refresh = true;
        s.avoidNode = from;
        s.currentNode = CurrentHead();
        SendOpen(m.reqId);
        return;
      }
      FinishOpen(m.reqId, m.err, {});
      return;
  }
}

void ScallaClient::Read(const FileRef& file, std::uint64_t offset, std::uint32_t length,
                        ReadCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  reads_.emplace(reqId, std::move(done));
  proto::XrdRead msg;
  msg.reqId = reqId;
  msg.fileHandle = file.handle;
  msg.offset = offset;
  msg.length = length;
  fabric_.Send(config_.addr, file.node, std::move(msg));
}

void ScallaClient::ReadV(const FileRef& file, std::vector<proto::ReadSeg> segments,
                         ReadVCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  readvs_.emplace(reqId, std::move(done));
  proto::XrdReadV msg;
  msg.reqId = reqId;
  msg.fileHandle = file.handle;
  msg.segments = std::move(segments);
  fabric_.Send(config_.addr, file.node, std::move(msg));
}

void ScallaClient::Checksum(const std::string& path, ChecksumCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  ChecksumState state;
  state.path = path;
  state.currentNode = CurrentHead();
  state.done = std::move(done);
  checksums_.emplace(reqId, std::move(state));
  fabric_.Send(config_.addr, CurrentHead(), proto::XrdChecksum{reqId, path});
}

void ScallaClient::HandleChecksumResp(net::NodeAddr from, const proto::XrdChecksumResp& m) {
  (void)from;
  const auto it = checksums_.find(m.reqId);
  if (it == checksums_.end()) return;
  ChecksumState& s = it->second;
  switch (m.status) {
    case proto::XrdStatus::kOk: {
      auto node = checksums_.extract(m.reqId);
      node.mapped().done(proto::XrdErr::kNone, m.crc32);
      return;
    }
    case proto::XrdStatus::kRedirect:
      if (++s.hops > config_.maxRedirects) {
        loopBreaksMetric_.Inc();
        auto node = checksums_.extract(m.reqId);
        node.mapped().done(proto::XrdErr::kLoop, 0);
        return;
      }
      s.currentNode = m.redirectNode;
      fabric_.Send(config_.addr, s.currentNode, proto::XrdChecksum{m.reqId, s.path});
      return;
    case proto::XrdStatus::kWait: {
      if (++s.waits > config_.maxWaits) break;
      const Duration wait{m.waitNs};
      executor_.RunAfter(wait, [this, reqId = m.reqId] {
        const auto cit = checksums_.find(reqId);
        if (cit == checksums_.end()) return;
        fabric_.Send(config_.addr, cit->second.currentNode,
                     proto::XrdChecksum{reqId, cit->second.path});
      });
      return;
    }
    case proto::XrdStatus::kError: {
      auto node = checksums_.extract(m.reqId);
      node.mapped().done(m.err, 0);
      return;
    }
  }
  auto node = checksums_.extract(m.reqId);
  node.mapped().done(proto::XrdErr::kIo, 0);
}

void ScallaClient::Write(const FileRef& file, std::uint64_t offset, std::string data,
                         WriteCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  writes_.emplace(reqId, std::move(done));
  proto::XrdWrite msg;
  msg.reqId = reqId;
  msg.fileHandle = file.handle;
  msg.offset = offset;
  msg.data = std::move(data);
  fabric_.Send(config_.addr, file.node, std::move(msg));
}

void ScallaClient::Close(const FileRef& file, DoneCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  closes_.emplace(reqId, std::move(done));
  fabric_.Send(config_.addr, file.node, proto::XrdClose{reqId, file.handle});
}

void ScallaClient::Stat(const std::string& path, StatCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  StatState state;
  state.path = path;
  state.currentNode = CurrentHead();
  state.done = std::move(done);
  stats_.emplace(reqId, std::move(state));
  fabric_.Send(config_.addr, CurrentHead(), proto::XrdStat{reqId, path});
}

void ScallaClient::HandleStatResp(net::NodeAddr from, const proto::XrdStatResp& m) {
  (void)from;
  const auto it = stats_.find(m.reqId);
  if (it == stats_.end()) return;
  StatState& s = it->second;
  switch (m.status) {
    case proto::XrdStatus::kOk: {
      auto node = stats_.extract(m.reqId);
      node.mapped().done(proto::XrdErr::kNone, m.size);
      return;
    }
    case proto::XrdStatus::kRedirect:
      if (++s.hops > config_.maxRedirects) {
        loopBreaksMetric_.Inc();
        auto node = stats_.extract(m.reqId);
        node.mapped().done(proto::XrdErr::kLoop, 0);
        return;
      }
      s.currentNode = m.redirectNode;
      fabric_.Send(config_.addr, s.currentNode, proto::XrdStat{m.reqId, s.path});
      return;
    case proto::XrdStatus::kWait: {
      if (++s.waits > config_.maxWaits) break;
      const Duration wait{m.waitNs};
      executor_.RunAfter(wait, [this, reqId = m.reqId] {
        const auto sit = stats_.find(reqId);
        if (sit == stats_.end()) return;
        fabric_.Send(config_.addr, sit->second.currentNode,
                     proto::XrdStat{reqId, sit->second.path});
      });
      return;
    }
    case proto::XrdStatus::kError: {
      auto node = stats_.extract(m.reqId);
      node.mapped().done(m.err, 0);
      return;
    }
  }
  auto node = stats_.extract(m.reqId);
  node.mapped().done(proto::XrdErr::kIo, 0);
}

void ScallaClient::Unlink(const std::string& path, DoneCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  UnlinkState state;
  state.path = path;
  state.currentNode = CurrentHead();
  state.done = std::move(done);
  unlinks_.emplace(reqId, std::move(state));
  fabric_.Send(config_.addr, CurrentHead(), proto::XrdUnlink{reqId, path});
}

void ScallaClient::HandleUnlinkResp(net::NodeAddr from, const proto::XrdUnlinkResp& m) {
  (void)from;
  const auto it = unlinks_.find(m.reqId);
  if (it == unlinks_.end()) return;
  UnlinkState& s = it->second;
  switch (m.status) {
    case proto::XrdStatus::kOk: {
      auto node = unlinks_.extract(m.reqId);
      node.mapped().done(proto::XrdErr::kNone);
      return;
    }
    case proto::XrdStatus::kRedirect:
      if (++s.hops > config_.maxRedirects) {
        loopBreaksMetric_.Inc();
        auto node = unlinks_.extract(m.reqId);
        node.mapped().done(proto::XrdErr::kLoop);
        return;
      }
      s.currentNode = m.redirectNode;
      fabric_.Send(config_.addr, s.currentNode, proto::XrdUnlink{m.reqId, s.path});
      return;
    case proto::XrdStatus::kWait: {
      if (++s.waits > config_.maxWaits) break;
      const Duration wait{m.waitNs};
      executor_.RunAfter(wait, [this, reqId = m.reqId] {
        const auto uit = unlinks_.find(reqId);
        if (uit == unlinks_.end()) return;
        fabric_.Send(config_.addr, uit->second.currentNode,
                     proto::XrdUnlink{reqId, uit->second.path});
      });
      return;
    }
    case proto::XrdStatus::kError: {
      auto node = unlinks_.extract(m.reqId);
      node.mapped().done(m.err);
      return;
    }
  }
  auto node = unlinks_.extract(m.reqId);
  node.mapped().done(proto::XrdErr::kIo);
}

void ScallaClient::Prepare(const std::vector<std::string>& paths, cms::AccessMode mode,
                           DoneCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  prepares_.emplace(reqId, std::move(done));
  proto::XrdPrepare msg;
  msg.reqId = reqId;
  msg.paths = paths;
  msg.mode = mode == cms::AccessMode::kRead ? 0 : 1;
  fabric_.Send(config_.addr, CurrentHead(), std::move(msg));
}

void ScallaClient::OnPeerDown(net::NodeAddr peer) {
  if (IsHead(peer)) {
    // Head gone: fail over to a redundant head if one is configured,
    // restarting the affected requests there; otherwise fail them.
    RotateHeadAwayFrom(peer);
    const bool haveAlternate = CurrentHead() != peer;
    std::vector<std::uint64_t> dead;
    for (auto& [id, s] : opens_) {
      if (s.currentNode != peer) continue;
      if (haveAlternate && ++s.outcome.recoveries <= config_.maxRecoveries) {
        recoveriesMetric_.Inc();
        s.currentNode = CurrentHead();
        SendOpen(id);
      } else {
        dead.push_back(id);
      }
    }
    for (const std::uint64_t id : dead) FinishOpen(id, proto::XrdErr::kIo, {});
    if (haveAlternate) {
      // Stats queries only ever target the head: re-issue every pending
      // one at the standby (the original timeout keeps running).
      for (const auto& [id, s] : statsQueries_) {
        (void)s;
        fabric_.Send(config_.addr, CurrentHead(), proto::StatsQuery{id});
      }
    }
    return;
  }
  // A data server died: restart affected opens at the head with the
  // refresh/avoid recovery the paper prescribes for failing vectors.
  for (auto& [id, s] : opens_) {
    if (s.currentNode != peer) continue;
    if (++s.outcome.recoveries > config_.maxRecoveries) {
      // Cap reached; surface the failure. (Finish outside the loop.)
      continue;
    }
    recoveriesMetric_.Inc();
    s.refresh = true;
    s.avoidNode = peer;
    s.currentNode = CurrentHead();
    SendOpen(id);
  }
  std::vector<std::uint64_t> failed;
  for (const auto& [id, s] : opens_) {
    if (s.currentNode == peer && s.outcome.recoveries > config_.maxRecoveries) {
      failed.push_back(id);
    }
  }
  for (const std::uint64_t id : failed) FinishOpen(id, proto::XrdErr::kIo, {});
}

void ScallaClient::QueryStats(StatsQueryCallback done, Duration timeout) {
  const std::uint64_t reqId = nextReqId_++;
  StatsQueryState state;
  state.done = std::move(done);
  state.timer = executor_.RunAfter(timeout, [this, reqId] {
    auto node = statsQueries_.extract(reqId);
    if (node.empty()) return;
    node.mapped().done(ClusterStats{});  // ok=false: head never answered
  });
  statsQueries_.emplace(reqId, std::move(state));
  fabric_.Send(config_.addr, CurrentHead(), proto::StatsQuery{reqId});
}

void ScallaClient::HandleStatsReply(net::NodeAddr from, const proto::StatsReply& m) {
  (void)from;
  auto node = statsQueries_.extract(m.reqId);
  if (node.empty()) return;  // reply after timeout
  if (node.mapped().timer != sched::kInvalidTimer) executor_.Cancel(node.mapped().timer);
  ClusterStats out;
  out.ok = true;
  out.nodeCount = m.nodeCount;
  out.snapshot = m.snapshot;
  node.mapped().done(out);
}

void ScallaClient::CacheAdmin(proto::PcacheAdminOp op, const std::string& path,
                              CacheAdminCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  cacheAdmins_.emplace(reqId, std::move(done));
  proto::PcacheAdmin msg;
  msg.reqId = reqId;
  msg.op = op;
  msg.path = path;
  fabric_.Send(config_.addr, CurrentHead(), std::move(msg));
}

void ScallaClient::Drain(const std::string& server, bool restore, DrainCallback done) {
  const std::uint64_t reqId = nextReqId_++;
  drains_.emplace(reqId, std::move(done));
  proto::CmsDrain msg;
  msg.reqId = reqId;
  msg.server = server;
  msg.restore = restore;
  fabric_.Send(config_.addr, CurrentHead(), std::move(msg));
}

void ScallaClient::List(const std::string& prefix, ListCallback done) {
  if (config_.cnsd == 0) {
    done(proto::XrdErr::kInvalid, {});
    return;
  }
  const std::uint64_t reqId = nextReqId_++;
  lists_.emplace(reqId, std::move(done));
  fabric_.Send(config_.addr, config_.cnsd, proto::CnsList{reqId, prefix});
}

void ScallaClient::OnMessage(net::NodeAddr from, proto::Message message) {
  std::visit(
      [this, from](auto&& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, proto::XrdOpenResp>) {
          HandleOpenResp(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdReadResp>) {
          auto node = reads_.extract(m.reqId);
          if (!node.empty()) node.mapped()(m.err, std::move(m.data));
        } else if constexpr (std::is_same_v<M, proto::XrdReadVResp>) {
          auto node = readvs_.extract(m.reqId);
          if (!node.empty()) node.mapped()(m.err, std::move(m.chunks));
        } else if constexpr (std::is_same_v<M, proto::XrdChecksumResp>) {
          HandleChecksumResp(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdWriteResp>) {
          auto node = writes_.extract(m.reqId);
          if (!node.empty()) node.mapped()(m.err, m.written);
        } else if constexpr (std::is_same_v<M, proto::XrdCloseResp>) {
          auto node = closes_.extract(m.reqId);
          if (!node.empty()) node.mapped()(m.err);
        } else if constexpr (std::is_same_v<M, proto::XrdStatResp>) {
          HandleStatResp(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdUnlinkResp>) {
          HandleUnlinkResp(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdPrepareResp>) {
          auto node = prepares_.extract(m.reqId);
          if (!node.empty()) node.mapped()(m.err);
        } else if constexpr (std::is_same_v<M, proto::CnsListResp>) {
          auto node = lists_.extract(m.reqId);
          if (!node.empty()) node.mapped()(m.err, std::move(m.names));
        } else if constexpr (std::is_same_v<M, proto::StatsReply>) {
          HandleStatsReply(from, m);
        } else if constexpr (std::is_same_v<M, proto::PcacheAdminResp>) {
          auto node = cacheAdmins_.extract(m.reqId);
          if (!node.empty()) node.mapped()(m.err, std::move(m));
        } else if constexpr (std::is_same_v<M, proto::CmsDrainResp>) {
          auto node = drains_.extract(m.reqId);
          if (!node.empty()) {
            node.mapped()(m.ok ? proto::XrdErr::kNone : proto::XrdErr::kInvalid, m);
          }
        }
      },
      std::move(message));
}

}  // namespace scalla::client

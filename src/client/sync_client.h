// Blocking facade over ScallaClient for threaded (real-time) use: each
// call posts the asynchronous operation onto the client's executor and
// waits for its completion. Intended for application code and the TCP
// integration tests; simulation code drives ScallaClient directly.
//
// Every operation returns scalla::Result<T>: test `if (r)` for success,
// then r.value(); on failure r.error() carries the protocol code plus a
// message naming the operation and path.
#pragma once

#include <memory>

#include "client/scalla_client.h"
#include "util/result.h"

namespace scalla::client {

class SyncClient {
 public:
  /// `executor` must be a real-time executor (e.g. sched::ThreadExecutor)
  /// distinct from the calling thread, or every call would deadlock.
  SyncClient(const ClientConfig& config, sched::Executor& executor, net::Fabric& fabric,
             Duration timeout = std::chrono::seconds(60));

  ScallaClient& async() { return inner_; }

  OpenOutcome Open(const std::string& path, cms::AccessMode mode, bool create = false);
  Result<std::string> Read(const FileRef& file, std::uint64_t offset,
                           std::uint32_t length);
  Result<std::vector<std::string>> ReadV(const FileRef& file,
                                         const std::vector<proto::ReadSeg>& segments);
  Result<std::uint32_t> Checksum(const std::string& path);
  Result<std::uint32_t> Write(const FileRef& file, std::uint64_t offset,
                              std::string data);
  Result<void> Close(const FileRef& file);
  Result<std::uint64_t> Stat(const std::string& path);
  Result<void> Unlink(const std::string& path);
  Result<void> Prepare(const std::vector<std::string>& paths, cms::AccessMode mode);

  /// Convenience: full write of a small file (open-create, write, close).
  Result<void> PutFile(const std::string& path, std::string data);
  /// Convenience: full read of a small file.
  Result<std::string> GetFile(const std::string& path);

  /// Tree-aggregated cluster metrics from the head (kStatsQuery).
  Result<ScallaClient::ClusterStats> Stats();

  /// Proxy cache administration (kPcacheAdmin): purge/occupancy against a
  /// pcache head. Non-proxy nodes answer kInvalid.
  Result<proto::PcacheAdminResp> CacheAdmin(proto::PcacheAdminOp op,
                                            const std::string& path = {});

  /// Operator drain/restore of a named server via the head (kCmsDrain).
  Result<proto::CmsDrainResp> Drain(const std::string& server, bool restore = false);

 private:
  sched::Executor& executor_;
  ScallaClient inner_;
  Duration timeout_;
};

}  // namespace scalla::client

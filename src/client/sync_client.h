// Blocking facade over ScallaClient for threaded (real-time) use: each
// call posts the asynchronous operation onto the client's executor and
// waits for its completion. Intended for application code and the TCP
// integration tests; simulation code drives ScallaClient directly.
#pragma once

#include <memory>

#include "client/scalla_client.h"

namespace scalla::client {

class SyncClient {
 public:
  /// `executor` must be a real-time executor (e.g. sched::ThreadExecutor)
  /// distinct from the calling thread, or every call would deadlock.
  SyncClient(const ClientConfig& config, sched::Executor& executor, net::Fabric& fabric,
             Duration timeout = std::chrono::seconds(60));

  ScallaClient& async() { return inner_; }

  OpenOutcome Open(const std::string& path, cms::AccessMode mode, bool create = false);
  std::pair<proto::XrdErr, std::string> Read(const FileRef& file, std::uint64_t offset,
                                             std::uint32_t length);
  std::pair<proto::XrdErr, std::vector<std::string>> ReadV(
      const FileRef& file, std::vector<proto::ReadSeg> segments);
  std::pair<proto::XrdErr, std::uint32_t> Checksum(const std::string& path);
  std::pair<proto::XrdErr, std::uint32_t> Write(const FileRef& file, std::uint64_t offset,
                                                std::string data);
  proto::XrdErr Close(const FileRef& file);
  std::pair<proto::XrdErr, std::uint64_t> Stat(const std::string& path);
  proto::XrdErr Unlink(const std::string& path);
  proto::XrdErr Prepare(const std::vector<std::string>& paths, cms::AccessMode mode);

  /// Convenience: full write of a small file (open-create, write, close).
  proto::XrdErr PutFile(const std::string& path, std::string data);
  /// Convenience: full read of a small file.
  std::pair<proto::XrdErr, std::string> GetFile(const std::string& path);

 private:
  sched::Executor& executor_;
  ScallaClient inner_;
  Duration timeout_;
};

}  // namespace scalla::client

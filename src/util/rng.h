// Deterministic pseudo-randomness for workload generation: xoshiro256**
// seeded via SplitMix64, plus the samplers the benchmark harness needs
// (uniform ranges, Zipf file popularity, exponential inter-arrival times).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scalla::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ca11a0ULL);

  std::uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  bool NextBool(double pTrue = 0.5);

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed ranks in [0, n), exponent `s` (s = 0 is uniform). Uses
/// the standard rejection-inversion-free CDF table for the modest n the
/// benches use; O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);
  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Generates plausible HEP-style file paths ("/store/data/run001234/
/// file00042.root"), so hash benches exercise realistic key shapes.
std::string MakeFilePath(std::uint64_t run, std::uint64_t file);

}  // namespace scalla::util

// Injectable time source. Every paper mechanism that involves time — the
// L_t/64 window tick, the 133 ms fast-response sweep, the 5 s processing
// deadline, drop timeouts — reads time through this interface so the same
// cmsd code runs against real time (SystemClock) and against the
// discrete-event simulator's virtual time (sim::SimClock).
#pragma once

#include "util/types.h"

namespace scalla::util {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
};

/// Real steady-clock time.
class SystemClock final : public Clock {
 public:
  TimePoint Now() const override;
  /// Process-wide instance for call sites that do not need injection.
  static SystemClock& Instance();
};

/// A clock advanced explicitly by tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_(start) {}
  TimePoint Now() const override { return now_; }
  void Advance(Duration d) { now_ += d; }
  void Set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

}  // namespace scalla::util

#include "util/fibonacci.h"

#include <array>

namespace scalla::util {
namespace {

// All Fibonacci numbers that fit in 64 bits (F(1)..F(93)), deduplicated at
// the front (F(1)=F(2)=1).
constexpr std::array<std::uint64_t, 92> BuildTable() {
  std::array<std::uint64_t, 92> t{};
  std::uint64_t a = 1, b = 2;
  for (auto& v : t) {
    v = a;
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
  return t;
}

constexpr auto kFib = BuildTable();

}  // namespace

std::uint64_t FibonacciAtLeast(std::uint64_t n) {
  for (const std::uint64_t f : kFib) {
    if (f >= n) return f;
  }
  return kFib.back();
}

std::uint64_t NextFibonacci(std::uint64_t fib) {
  for (std::size_t i = 0; i < kFib.size(); ++i) {
    if (kFib[i] == fib) return i + 1 < kFib.size() ? kFib[i + 1] : kFib.back();
    if (kFib[i] > fib) return kFib[i];  // tolerate non-Fibonacci input
  }
  return kFib.back();
}

bool IsFibonacci(std::uint64_t n) {
  for (const std::uint64_t f : kFib) {
    if (f == n) return true;
    if (f > n) return false;
  }
  return false;
}

}  // namespace scalla::util

// ServerSet: a 64-bit vector in which bit i stands for server slot i of a
// cluster set. The cmsd location state is "described by three 64-bit
// vectors: V_h, V_p and V_q" (paper section III-A1); ServerSet is the type
// of those vectors as well as of the correction vectors V_m and V_c
// (section III-A4).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "util/types.h"

namespace scalla {

class ServerSet {
 public:
  constexpr ServerSet() = default;
  constexpr explicit ServerSet(std::uint64_t bits) : bits_(bits) {}

  /// The set {slot}.
  static constexpr ServerSet Single(ServerSlot slot) {
    return ServerSet(std::uint64_t{1} << slot);
  }
  /// The set {0, 1, ..., n-1}; n == 64 yields the full set.
  static constexpr ServerSet FirstN(int n) {
    return n >= kMaxServersPerSet ? All() : ServerSet((std::uint64_t{1} << n) - 1);
  }
  static constexpr ServerSet All() { return ServerSet(~std::uint64_t{0}); }
  static constexpr ServerSet None() { return ServerSet(0); }

  constexpr bool empty() const { return bits_ == 0; }
  constexpr int count() const { return std::popcount(bits_); }
  constexpr bool test(ServerSlot slot) const { return (bits_ >> slot) & 1u; }
  constexpr std::uint64_t bits() const { return bits_; }

  constexpr void set(ServerSlot slot) { bits_ |= std::uint64_t{1} << slot; }
  constexpr void reset(ServerSlot slot) { bits_ &= ~(std::uint64_t{1} << slot); }
  constexpr void clear() { bits_ = 0; }

  /// Lowest slot present, or -1 when empty.
  constexpr ServerSlot first() const {
    return bits_ == 0 ? -1 : std::countr_zero(bits_);
  }
  /// Lowest slot greater than `slot`, or -1. Enables `for (s = first(); s
  /// >= 0; s = next(s))` iteration.
  constexpr ServerSlot next(ServerSlot slot) const {
    const std::uint64_t rest = slot >= 63 ? 0 : bits_ & ~((std::uint64_t{2} << slot) - 1);
    return rest == 0 ? -1 : std::countr_zero(rest);
  }

  constexpr ServerSet operator|(ServerSet o) const { return ServerSet(bits_ | o.bits_); }
  constexpr ServerSet operator&(ServerSet o) const { return ServerSet(bits_ & o.bits_); }
  constexpr ServerSet operator^(ServerSet o) const { return ServerSet(bits_ ^ o.bits_); }
  constexpr ServerSet operator~() const { return ServerSet(~bits_); }
  constexpr ServerSet& operator|=(ServerSet o) { bits_ |= o.bits_; return *this; }
  constexpr ServerSet& operator&=(ServerSet o) { bits_ &= o.bits_; return *this; }
  constexpr ServerSet& operator^=(ServerSet o) { bits_ ^= o.bits_; return *this; }
  constexpr bool operator==(const ServerSet&) const = default;

  /// Set difference: the members of *this not in `o`.
  constexpr ServerSet Without(ServerSet o) const { return ServerSet(bits_ & ~o.bits_); }
  constexpr bool Intersects(ServerSet o) const { return (bits_ & o.bits_) != 0; }
  constexpr bool Contains(ServerSet o) const { return (bits_ & o.bits_) == o.bits_; }

  /// "{0,3,17}" style rendering for logs and test failure messages.
  std::string ToString() const;

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace scalla

#include "util/clock.h"

namespace scalla::util {

TimePoint SystemClock::Now() const {
  return std::chrono::time_point_cast<Duration>(std::chrono::steady_clock::now());
}

SystemClock& SystemClock::Instance() {
  static SystemClock clock;
  return clock;
}

}  // namespace scalla::util

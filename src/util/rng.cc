#include "util/rng.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace scalla::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = SplitMix64(seed);
}

std::uint64_t Rng::Next() {
  // xoshiro256**
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::NextBool(double pTrue) { return NextDouble() < pTrue; }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  std::size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

std::string MakeFilePath(std::uint64_t run, std::uint64_t file) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/store/data/run%06llu/file%05llu.root",
                static_cast<unsigned long long>(run),
                static_cast<unsigned long long>(file));
  return buf;
}

}  // namespace scalla::util

#include "util/bench_gate.h"

#include <cmath>
#include <cstdio>

namespace scalla::util {
namespace {

std::string FmtDouble(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}

}  // namespace

std::string GateReport::ToText() const {
  std::string out = "bench gate: " + std::to_string(checked) + " tracked metric(s), " +
                    std::to_string(failures.size()) + " regression(s)\n";
  for (const GateIssue& f : failures) {
    out += "  FAIL " + f.metric + ": " + f.message + "\n";
  }
  return out;
}

Result<GateReport> CompareBenchMetrics(const Json& baseline,
                                       const std::vector<Json>& currentLines) {
  const Json* metrics = baseline.Find("metrics");
  if (metrics == nullptr || !metrics->IsObject()) {
    return ScallaError{proto::XrdErr::kInvalid, "baseline has no \"metrics\" object"};
  }

  // Index the current lines by their "bench" tag.
  std::vector<std::pair<std::string, const Json*>> benches;
  for (const Json& line : currentLines) {
    const Json* tag = line.Find("bench");
    if (tag != nullptr && tag->type() == Json::Type::kString) {
      benches.emplace_back(tag->AsString(), &line);
    }
  }

  GateReport report;
  Result<GateReport> badBaseline = GateReport{};  // overwritten before use
  bool baselineBroken = false;
  metrics->ForEachMember([&](const std::string& name, const Json& spec) {
    if (baselineBroken) return;
    const Json* value = spec.Find("value");
    if (!spec.IsObject() || value == nullptr || !value->IsNumber()) {
      badBaseline = ScallaError{proto::XrdErr::kInvalid,
                                "baseline metric '" + name + "' has no numeric \"value\""};
      baselineBroken = true;
      return;
    }
    const double expect = value->AsNumber();
    const Json* tol = spec.Find("tol_pct");
    const double tolPct = (tol != nullptr && tol->IsNumber()) ? tol->AsNumber() : 10.0;
    const Json* dirSpec = spec.Find("dir");
    const std::string dir =
        (dirSpec != nullptr && dirSpec->type() == Json::Type::kString) ? dirSpec->AsString()
                                                                       : "both";
    if (dir != "max" && dir != "min" && dir != "both") {
      badBaseline = ScallaError{proto::XrdErr::kInvalid,
                                "baseline metric '" + name + "' has bad dir '" + dir + "'"};
      baselineBroken = true;
      return;
    }

    ++report.checked;

    // "<bench>.<path>": the bench tag is the longest line tag that
    // prefixes the metric name at a '.' boundary (tags themselves may
    // contain dots, e.g. "campaign.smoke").
    const Json* line = nullptr;
    std::string path;
    std::size_t bestLen = 0;
    for (const auto& [tag, candidate] : benches) {
      if (name.size() > tag.size() + 1 && name.compare(0, tag.size(), tag) == 0 &&
          name[tag.size()] == '.' && tag.size() > bestLen) {
        line = candidate;
        path = name.substr(tag.size() + 1);
        bestLen = tag.size();
      }
    }
    if (line == nullptr) {
      report.failures.push_back(
          {name, "no bench summary line with a matching \"bench\" tag was collected"});
      return;
    }
    const Json* current = line->Lookup(path);
    if (current == nullptr || !current->IsNumber()) {
      report.failures.push_back({name, "metric missing from the current bench output"});
      return;
    }
    const double got = current->AsNumber();
    const double slack = std::abs(expect) * tolPct / 100.0;
    const bool tooHigh = got > expect + slack;
    const bool tooLow = got < expect - slack;
    const bool fail =
        (dir == "max" && tooHigh) || (dir == "min" && tooLow) || (dir == "both" && (tooHigh || tooLow));
    if (fail) {
      report.failures.push_back(
          {name, "current " + FmtDouble(got) + " vs baseline " + FmtDouble(expect) +
                     " (tol " + FmtDouble(tolPct) + "%, dir " + dir + ")"});
    }
  });
  if (baselineBroken) return badBaseline;
  return report;
}

Result<std::vector<Json>> ParseBenchLines(const std::string& text) {
  std::vector<Json> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    if (!line.empty() && line.find_first_not_of(" \t\r") != std::string_view::npos) {
      auto parsed = Json::Parse(line);
      if (!parsed) {
        return ScallaError{proto::XrdErr::kInvalid,
                           "bench line " + std::to_string(lines.size() + 1) + ": " +
                               parsed.error().message};
      }
      lines.push_back(std::move(parsed).value());
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

}  // namespace scalla::util

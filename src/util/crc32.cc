#include "util/crc32.h"

#include <array>

namespace scalla::util {
namespace {

// 8 tables of 256 entries each, generated at static-init time. Table 0 is
// the classic byte-at-a-time table; table k folds k additional zero bytes,
// enabling the slice-by-8 inner loop to consume 8 bytes per iteration.
struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Crc32Tables() {
    constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? kPoly : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (int k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;

  // Align-insensitive slice-by-8 main loop.
  while (len >= 8) {
    const std::uint32_t lo = crc ^ (std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
                                    std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24);
    const std::uint32_t hi = std::uint32_t{p[4]} | std::uint32_t{p[5]} << 8 |
                             std::uint32_t{p[6]} << 16 | std::uint32_t{p[7]} << 24;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace scalla::util

#include "util/config.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace scalla::util {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

}  // namespace

std::optional<Duration> ParseDuration(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    ++i;
  }
  if (i == 0) return std::nullopt;
  double value = 0;
  const std::string num(text.substr(0, i));
  char* end = nullptr;
  value = std::strtod(num.c_str(), &end);
  if (end == num.c_str() || *end != '\0') return std::nullopt;
  const std::string_view unit = Trim(text.substr(i));
  double scale;  // to nanoseconds
  if (unit.empty() || unit == "ns") {
    scale = 1;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else if (unit == "m") {
    scale = 60e9;
  } else if (unit == "h") {
    scale = 3600e9;
  } else {
    return std::nullopt;
  }
  return Duration(static_cast<std::int64_t>(value * scale));
}

std::optional<Config> Config::Parse(std::string_view text, std::string* error) {
  Config cfg;
  std::size_t lineNo = 0;
  while (!text.empty()) {
    ++lineNo;
    const std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{} : text.substr(eol + 1);
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    std::size_t sep = line.find_first_of(" \t=");
    if (sep == std::string_view::npos) {
      if (error) *error = "line " + std::to_string(lineNo) + ": missing value";
      return std::nullopt;
    }
    const std::string_view key = Trim(line.substr(0, sep));
    std::string_view value = Trim(line.substr(sep + 1));
    if (!value.empty() && value.front() == '=') value = Trim(value.substr(1));
    if (value.empty()) {
      if (error) *error = "line " + std::to_string(lineNo) + ": missing value";
      return std::nullopt;
    }
    cfg.Set(std::string(key), std::string(value));
  }
  return cfg;
}

void Config::Set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::Has(std::string_view key) const { return entries_.find(key) != entries_.end(); }

std::optional<std::string> Config::GetString(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Config::GetInt(std::string_view key) const {
  const auto s = GetString(key);
  if (!s) return std::nullopt;
  std::int64_t value = 0;
  const auto [p, ec] = std::from_chars(s->data(), s->data() + s->size(), value);
  if (ec != std::errc{} || p != s->data() + s->size()) return std::nullopt;
  return value;
}

std::optional<double> Config::GetDouble(std::string_view key) const {
  const auto s = GetString(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(s->c_str(), &end);
  if (end != s->c_str() + s->size()) return std::nullopt;
  return value;
}

std::optional<bool> Config::GetBool(std::string_view key) const {
  const auto s = GetString(key);
  if (!s) return std::nullopt;
  if (*s == "true" || *s == "1" || *s == "yes" || *s == "on") return true;
  if (*s == "false" || *s == "0" || *s == "no" || *s == "off") return false;
  return std::nullopt;
}

std::optional<Duration> Config::GetDuration(std::string_view key) const {
  const auto s = GetString(key);
  if (!s) return std::nullopt;
  return ParseDuration(*s);
}

std::string Config::GetStringOr(std::string_view key, std::string_view def) const {
  return GetString(key).value_or(std::string(def));
}
std::int64_t Config::GetIntOr(std::string_view key, std::int64_t def) const {
  return GetInt(key).value_or(def);
}
double Config::GetDoubleOr(std::string_view key, double def) const {
  return GetDouble(key).value_or(def);
}
bool Config::GetBoolOr(std::string_view key, bool def) const {
  return GetBool(key).value_or(def);
}
Duration Config::GetDurationOr(std::string_view key, Duration def) const {
  return GetDuration(key).value_or(def);
}

}  // namespace scalla::util

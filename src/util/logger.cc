#include "util/logger.h"

#include <cstdarg>

namespace scalla::util {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, std::string_view component, std::string_view message) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::lock_guard lock(mu_);
  std::fprintf(stderr, "%s [%.*s] %.*s\n", kNames[static_cast<int>(level)],
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

namespace detail {

std::string FormatLog(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace detail
}  // namespace scalla::util

// Minimal JSON value: parse / serialize / path lookup, no external deps.
// Built for the bench-regression gate, which reads the one-object-per-line
// summaries the benches print ("JSON {...}") plus the committed
// bench/baseline.json, so it supports exactly the JSON that those emit:
// objects, arrays, finite doubles, strings (no \uXXXX escapes), bools,
// null. Object member order is preserved so serialization round-trips the
// deterministic bench output byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace scalla::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json MakeBool(bool b);
  static Json MakeNumber(double d);
  static Json MakeString(std::string s);
  static Json MakeArray();
  static Json MakeObject();

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsObject() const { return type_ == Type::kObject; }
  bool IsArray() const { return type_ == Type::kArray; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  std::size_t Size() const;  // array/object element count (else 0)
  /// Array element i, or nullptr when out of range / not an array.
  const Json* At(std::size_t i) const;
  /// Object member by key, or nullptr when absent / not an object.
  const Json* Find(std::string_view key) const;

  /// Visits object members in insertion order (no-op for non-objects).
  template <typename F>
  void ForEachMember(F&& f) const {
    if (type_ != Type::kObject) return;
    for (const auto& [key, value] : object_) f(key, value);
  }

  /// Walks a dotted path with optional array subscripts:
  /// "runs[2].warm_open_us" -> Find("runs")->At(2)->Find("warm_open_us").
  /// A backslash escapes the next character ("metrics.campaign\\.smoke"
  /// addresses the key "campaign.smoke"). nullptr when any step is missing.
  const Json* Lookup(std::string_view path) const;

  /// Creates/overwrites the value at `path`, materializing intermediate
  /// objects and growing arrays with nulls as needed. Returns false when
  /// the path walks through an existing non-container value.
  bool SetByPath(std::string_view path, Json value);

  /// Object member append (keeps insertion order; no duplicate check).
  void Add(std::string key, Json value);
  /// Array element append.
  void Push(Json value);

  /// Compact serialization (numbers via shortest round-trip format).
  std::string Dump() const;

  /// Parses one JSON value (surrounding whitespace allowed).
  static Result<Json> Parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace scalla::util

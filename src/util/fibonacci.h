// Fibonacci table sizing. The location-cache hash table "is sized to be a
// Fibonacci number of entries" and grows to "the subsequent Fibonacci
// number" when 80% full (paper section III-A1, Figure 2). The authors found
// CRC32 modulo a Fibonacci number disperses file names much more uniformly
// than power-of-two tables (footnote 4); bench/bench_hash_fibonacci.cc
// reproduces that comparison.
#pragma once

#include <cstdint>

namespace scalla::util {

/// Returns the smallest Fibonacci number >= n (n >= 1). Saturates at the
/// largest Fibonacci number representable in 64 bits.
std::uint64_t FibonacciAtLeast(std::uint64_t n);

/// Returns the Fibonacci number immediately after `fib`. `fib` must itself
/// be a Fibonacci number >= 1. Saturates as above.
std::uint64_t NextFibonacci(std::uint64_t fib);

/// True if n is a Fibonacci number (n >= 1).
bool IsFibonacci(std::uint64_t n);

}  // namespace scalla::util

#include "util/result.h"

namespace scalla {

const char* XrdErrName(proto::XrdErr err) {
  switch (err) {
    case proto::XrdErr::kNone: return "ok";
    case proto::XrdErr::kNotFound: return "not found";
    case proto::XrdErr::kIo: return "I/O error";
    case proto::XrdErr::kExists: return "already exists";
    case proto::XrdErr::kInvalid: return "invalid argument";
    case proto::XrdErr::kNoSpace: return "no space";
    case proto::XrdErr::kStale: return "stale state";
  }
  return "unknown error";
}

}  // namespace scalla

// Result<T>: the library's unified value-or-error return type. Client
// facades and cluster driving helpers return Result<T> instead of ad-hoc
// std::pair<XrdErr, T> tuples, so every call site reads the same way:
//
//   auto file = client.GetFile("/store/f");
//   if (!file) { log(file.error().message); return; }
//   use(file.value());
//
// The error side carries the protocol error code plus a human-readable
// message naming the operation that failed.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

#include "proto/messages.h"

namespace scalla {

/// Why an operation failed: the xrd protocol code plus context.
struct ScallaError {
  proto::XrdErr code = proto::XrdErr::kIo;
  std::string message;
};

/// Human-readable tag for an error code ("not found", "I/O error", ...).
const char* XrdErrName(proto::XrdErr err);

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}                    // NOLINT: implicit
  Result(ScallaError error) : state_(std::move(error)) {}          // NOLINT: implicit

  static Result Ok(T value) { return Result(std::move(value)); }
  static Result Err(proto::XrdErr code, std::string message = {}) {
    return Result(ScallaError{code, std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// kNone on success, the failure code otherwise.
  proto::XrdErr code() const {
    return ok() ? proto::XrdErr::kNone : std::get<ScallaError>(state_).code;
  }

  const T& value() const& { assert(ok()); return std::get<T>(state_); }
  T& value() & { assert(ok()); return std::get<T>(state_); }
  T&& value() && { assert(ok()); return std::get<T>(std::move(state_)); }
  T value_or(T fallback) const& { return ok() ? std::get<T>(state_) : std::move(fallback); }

  const ScallaError& error() const { assert(!ok()); return std::get<ScallaError>(state_); }

 private:
  std::variant<T, ScallaError> state_;
};

/// Result<void>: success carries no value, failure a ScallaError.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(ScallaError error) : error_(std::move(error)) {}          // NOLINT: implicit

  static Result Ok() { return Result(); }
  static Result Err(proto::XrdErr code, std::string message = {}) {
    return Result(ScallaError{code, std::move(message)});
  }
  /// Adapter for the transition off raw codes: kNone maps to success.
  static Result From(proto::XrdErr code, std::string message = {}) {
    if (code == proto::XrdErr::kNone) return Ok();
    return Err(code, std::move(message));
  }

  bool ok() const { return error_.code == proto::XrdErr::kNone; }
  explicit operator bool() const { return ok(); }
  proto::XrdErr code() const { return error_.code; }
  const ScallaError& error() const { assert(!ok()); return error_; }

 private:
  ScallaError error_{proto::XrdErr::kNone, {}};
};

}  // namespace scalla

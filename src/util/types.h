// Common type aliases used throughout the Scalla reproduction.
#pragma once

#include <chrono>
#include <cstdint>

namespace scalla {

/// All internal timekeeping is done in nanoseconds on a steady timeline.
/// Under simulation the timeline is virtual; under real execution it is
/// std::chrono::steady_clock. Both are exposed through util::Clock.
using Duration = std::chrono::nanoseconds;

/// A point on the (real or virtual) steady timeline.
using TimePoint = std::chrono::time_point<std::chrono::steady_clock, Duration>;

using namespace std::chrono_literals;

/// Identifies a server slot within one cluster set (0..63). Slot numbering
/// is what maps servers onto bits of the V_h/V_p/V_q vectors (paper
/// section III-A1).
using ServerSlot = int;

/// Maximum number of directly addressable servers per cluster set; Scalla
/// clusters nodes "in sets of 64 and the sets are arranged in a 64-ary
/// tree" (paper section II-B1).
inline constexpr int kMaxServersPerSet = 64;

}  // namespace scalla

#include "util/stats.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace scalla::util {

LatencyRecorder::LatencyRecorder(std::size_t maxSamples) : maxSamples_(maxSamples) {
  min_ = std::numeric_limits<std::int64_t>::max();
  max_ = std::numeric_limits<std::int64_t>::min();
}

void LatencyRecorder::Record(Duration d) { RecordNanos(d.count()); }

void LatencyRecorder::RecordNanos(std::int64_t ns) {
  ++count_;
  sum_ += static_cast<double>(ns);
  min_ = std::min(min_, ns);
  max_ = std::max(max_, ns);
  if (samples_.size() < maxSamples_) samples_.push_back(ns);
}

double LatencyRecorder::MeanNanos() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::int64_t LatencyRecorder::MinNanos() const { return count_ == 0 ? 0 : min_; }
std::int64_t LatencyRecorder::MaxNanos() const { return count_ == 0 ? 0 : max_; }

namespace {

std::int64_t PickQuantile(const std::vector<std::int64_t>& sorted, double q) {
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[idx];
}

}  // namespace

std::int64_t LatencyRecorder::PercentileNanos(double q) const {
  if (samples_.empty()) return 0;
  std::vector<std::int64_t> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return PickQuantile(sorted, q);
}

std::vector<std::int64_t> LatencyRecorder::PercentilesNanos(
    const std::vector<double>& qs) const {
  std::vector<std::int64_t> out(qs.size(), 0);
  if (samples_.empty()) return out;
  std::vector<std::int64_t> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < qs.size(); ++i) out[i] = PickQuantile(sorted, qs[i]);
  return out;
}

void LatencyRecorder::Clear() {
  samples_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::int64_t>::max();
  max_ = std::numeric_limits<std::int64_t>::min();
}

std::string LatencyRecorder::Summary() const {
  const auto pcts = PercentilesNanos({0.5, 0.99});
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%s p50=%s p99=%s max=%s", count_,
                FormatNanos(MeanNanos()).c_str(),
                FormatNanos(static_cast<double>(pcts[0])).c_str(),
                FormatNanos(static_cast<double>(pcts[1])).c_str(),
                FormatNanos(static_cast<double>(MaxNanos())).c_str());
  return buf;
}

std::string FormatNanos(double ns) {
  char buf[48];
  const double abs = ns < 0 ? -ns : ns;
  if (abs < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (abs < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else if (abs < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

}  // namespace scalla::util

// Key/value configuration in the spirit of xrootd's directive files:
//   # comment
//   cms.lifetime 8h
//   cms.delay 5s
//   oss.path /data
// Values are plain tokens; durations accept ns/us/ms/s/m/h suffixes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "util/types.h"

namespace scalla::util {

class Config {
 public:
  /// Parses directive text. Returns std::nullopt and fills *error on
  /// malformed input (line without a value, bad duration, etc.).
  static std::optional<Config> Parse(std::string_view text, std::string* error = nullptr);

  void Set(std::string key, std::string value);
  bool Has(std::string_view key) const;

  std::optional<std::string> GetString(std::string_view key) const;
  std::optional<std::int64_t> GetInt(std::string_view key) const;
  std::optional<double> GetDouble(std::string_view key) const;
  std::optional<bool> GetBool(std::string_view key) const;
  std::optional<Duration> GetDuration(std::string_view key) const;

  std::string GetStringOr(std::string_view key, std::string_view def) const;
  std::int64_t GetIntOr(std::string_view key, std::int64_t def) const;
  double GetDoubleOr(std::string_view key, double def) const;
  bool GetBoolOr(std::string_view key, bool def) const;
  Duration GetDurationOr(std::string_view key, Duration def) const;

  const std::map<std::string, std::string, std::less<>>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

/// Parses "250us", "8h", "1500" (bare = nanoseconds). std::nullopt on error.
std::optional<Duration> ParseDuration(std::string_view text);

}  // namespace scalla::util

// Bench regression gate: compares the JSON summaries collected by
// scripts/bench.sh against the committed bench/baseline.json and fails
// when a tracked metric regresses beyond its tolerance — the mechanism
// that turns the BENCH_PR*.json trajectory from advisory into enforced
// (scripts/verify.sh bench-gate stage, tools/bench_compare).
//
// Baseline format (bench/baseline.json):
//
//   {
//     "metrics": {
//       "<bench>.<path>": {"value": 55.0, "tol_pct": 10, "dir": "max"},
//       ...
//     }
//   }
//
// `<bench>` is the "bench" field of one JSON summary line; `<path>` is a
// dotted lookup into that line ("runs[2].warm_open_us"). `dir` says which
// direction is a regression:
//   "max"  — metric is cost-like (latency, bytes): fail when
//            current > value * (1 + tol_pct/100)
//   "min"  — metric is goodness-like (throughput, hit rate, scaling
//            factor): fail when current < value * (1 - tol_pct/100)
//   "both" — fail outside value * (1 ± tol_pct/100) (default)
// A tracked metric missing from the current run is itself a failure: a
// bench silently dropping a metric must not pass the gate.
#pragma once

#include <string>
#include <vector>

#include "util/json.h"
#include "util/result.h"

namespace scalla::util {

struct GateIssue {
  std::string metric;
  std::string message;
};

struct GateReport {
  std::size_t checked = 0;
  std::vector<GateIssue> failures;
  bool ok() const { return failures.empty(); }
  /// Human listing: one line per tracked metric failure.
  std::string ToText() const;
};

/// `currentLines`: one parsed JSON object per bench summary line. Returns
/// an error when the baseline itself is malformed (no "metrics" object,
/// bad tolerance spec) — a broken baseline must not silently pass.
Result<GateReport> CompareBenchMetrics(const Json& baseline,
                                       const std::vector<Json>& currentLines);

/// Splits a collected bench file (one JSON object per line, as written by
/// scripts/bench.sh) into parsed lines; blank lines are skipped.
Result<std::vector<Json>> ParseBenchLines(const std::string& text);

}  // namespace scalla::util

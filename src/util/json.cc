#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace scalla::util {
namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool Eof() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  ScallaError Error(const std::string& what) const {
    return ScallaError{proto::XrdErr::kInvalid,
                       "json: " + what + " at offset " + std::to_string(pos)};
  }

  Result<Json> ParseValue() {
    SkipWs();
    if (Eof()) return Error("unexpected end of input");
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto s = ParseString();
      if (!s) return s.error();
      return Json::MakeString(std::move(s).value());
    }
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<Json> ParseObject() {
    ++pos;  // '{'
    Json obj = Json::MakeObject();
    SkipWs();
    if (!Eof() && Peek() == '}') { ++pos; return obj; }
    for (;;) {
      SkipWs();
      if (Eof() || Peek() != '"') return Error("expected object key");
      auto key = ParseString();
      if (!key) return key.error();
      SkipWs();
      if (Eof() || Peek() != ':') return Error("expected ':'");
      ++pos;
      auto value = ParseValue();
      if (!value) return value.error();
      obj.Add(std::move(key).value(), std::move(value).value());
      SkipWs();
      if (Eof()) return Error("unterminated object");
      if (Peek() == ',') { ++pos; continue; }
      if (Peek() == '}') { ++pos; return obj; }
      return Error("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray() {
    ++pos;  // '['
    Json arr = Json::MakeArray();
    SkipWs();
    if (!Eof() && Peek() == ']') { ++pos; return arr; }
    for (;;) {
      auto value = ParseValue();
      if (!value) return value.error();
      arr.Push(std::move(value).value());
      SkipWs();
      if (Eof()) return Error("unterminated array");
      if (Peek() == ',') { ++pos; continue; }
      if (Peek() == ']') { ++pos; return arr; }
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos;  // '"'
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: return Error("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseBool() {
    if (text.substr(pos, 4) == "true") { pos += 4; return Json::MakeBool(true); }
    if (text.substr(pos, 5) == "false") { pos += 5; return Json::MakeBool(false); }
    return Error("bad literal");
  }

  Result<Json> ParseNull() {
    if (text.substr(pos, 4) == "null") { pos += 4; return Json(); }
    return Error("bad literal");
  }

  Result<Json> ParseNumber() {
    const std::size_t start = pos;
    if (!Eof() && (Peek() == '-' || Peek() == '+')) ++pos;
    while (!Eof() && (std::isdigit(static_cast<unsigned char>(Peek())) || Peek() == '.' ||
                      Peek() == 'e' || Peek() == 'E' || Peek() == '-' || Peek() == '+')) {
      ++pos;
    }
    if (pos == start) return Error("expected number");
    // std::from_chars(double) is missing in some libstdc++ configurations;
    // strtod over a bounded copy is equivalent for this grammar.
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("bad number '" + token + "'");
    }
    return Json::MakeNumber(value);
  }
};

void DumpTo(const Json& j, std::string& out);

void DumpString(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void DumpNumber(double d, std::string& out) {
  // Integral values print without a fractional part ("3", not "3.000000"),
  // everything else with the SHORTEST representation that round-trips, so
  // parse(dump(x)) == x and "185.002" doesn't balloon to 17 digits.
  if (d == static_cast<double>(static_cast<long long>(d)) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out += buf;
}

void DumpTo(const Json& j, std::string& out) {
  switch (j.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += j.AsBool() ? "true" : "false"; break;
    case Json::Type::kNumber: DumpNumber(j.AsNumber(), out); break;
    case Json::Type::kString: DumpString(j.AsString(), out); break;
    case Json::Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < j.Size(); ++i) {
        if (i > 0) out += ',';
        DumpTo(*j.At(i), out);
      }
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      out += '{';
      // Size()/At() cover arrays only; walk members via Lookup-free access.
      bool first = true;
      j.ForEachMember([&](const std::string& key, const Json& value) {
        if (!first) out += ',';
        first = false;
        DumpString(key, out);
        out += ':';
        DumpTo(value, out);
      });
      out += '}';
      break;
    }
  }
}

// One step of a metric path: a key plus optional array subscripts.
struct PathStep {
  std::string key;
  std::vector<std::size_t> indices;
};

// "runs[2].warm" -> [{runs,[2]},{warm,[]}]; false on malformed subscripts.
// A backslash escapes the next character, so keys containing literal dots
// or brackets (bench metric names like "campaign.smoke") stay addressable:
// "metrics.campaign\.smoke.value".
bool SplitPath(std::string_view path, std::vector<PathStep>& steps) {
  std::size_t i = 0;
  while (i < path.size()) {
    PathStep step;
    while (i < path.size() && path[i] != '.' && path[i] != '[') {
      if (path[i] == '\\' && i + 1 < path.size()) ++i;
      step.key += path[i++];
    }
    while (i < path.size() && path[i] == '[') {
      ++i;
      std::size_t index = 0;
      bool any = false;
      while (i < path.size() && std::isdigit(static_cast<unsigned char>(path[i]))) {
        index = index * 10 + static_cast<std::size_t>(path[i++] - '0');
        any = true;
      }
      if (!any || i >= path.size() || path[i] != ']') return false;
      ++i;
      step.indices.push_back(index);
    }
    if (i < path.size()) {
      if (path[i] != '.') return false;
      ++i;
    }
    if (step.key.empty() && step.indices.empty()) return false;
    steps.push_back(std::move(step));
  }
  return !steps.empty();
}

}  // namespace

Json Json::MakeBool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::MakeNumber(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = d;
  return j;
}

Json Json::MakeString(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

std::size_t Json::Size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const Json* Json::At(std::size_t i) const {
  if (type_ != Type::kArray || i >= array_.size()) return nullptr;
  return &array_[i];
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json* Json::Lookup(std::string_view path) const {
  std::vector<PathStep> steps;
  if (!SplitPath(path, steps)) return nullptr;
  const Json* cur = this;
  for (const PathStep& step : steps) {
    if (!step.key.empty()) {
      cur = cur->Find(step.key);
      if (cur == nullptr) return nullptr;
    }
    for (const std::size_t index : step.indices) {
      cur = cur->At(index);
      if (cur == nullptr) return nullptr;
    }
  }
  return cur;
}

bool Json::SetByPath(std::string_view path, Json value) {
  std::vector<PathStep> steps;
  if (!SplitPath(path, steps)) return false;

  // Walk mutably, materializing objects/arrays; `slot` is where the next
  // step (or the final value) lands.
  Json* slot = this;
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const PathStep& step = steps[s];
    if (!step.key.empty()) {
      if (slot->type_ == Type::kNull) *slot = MakeObject();
      if (slot->type_ != Type::kObject) return false;
      Json* found = nullptr;
      for (auto& [k, v] : slot->object_) {
        if (k == step.key) { found = &v; break; }
      }
      if (found == nullptr) {
        slot->object_.emplace_back(step.key, Json());
        found = &slot->object_.back().second;
      }
      slot = found;
    }
    for (const std::size_t index : step.indices) {
      if (slot->type_ == Type::kNull) *slot = MakeArray();
      if (slot->type_ != Type::kArray) return false;
      if (slot->array_.size() <= index) slot->array_.resize(index + 1);
      slot = &slot->array_[index];
    }
    if (s + 1 == steps.size()) *slot = std::move(value);
  }
  return true;
}

void Json::Add(std::string key, Json value) {
  if (type_ != Type::kObject) *this = MakeObject();
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::Push(Json value) {
  if (type_ != Type::kArray) *this = MakeArray();
  array_.push_back(std::move(value));
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(*this, out);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  Parser p{text};
  auto value = p.ParseValue();
  if (!value) return value;
  p.SkipWs();
  if (!p.Eof()) return p.Error("trailing characters");
  return value;
}

}  // namespace scalla::util

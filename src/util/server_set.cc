#include "util/server_set.h"

namespace scalla {

std::string ServerSet::ToString() const {
  std::string out = "{";
  bool firstOut = true;
  for (ServerSlot s = first(); s >= 0; s = next(s)) {
    if (!firstOut) out += ',';
    out += std::to_string(s);
    firstOut = false;
  }
  out += '}';
  return out;
}

}  // namespace scalla

// CRC32 (IEEE 802.3 polynomial, reflected) used as the file-name hash for
// the cmsd location cache ("The hash key is a CRC32 encoding of the file
// name", paper section III-A1). Implemented with a slice-by-8 table walk so
// hashing long paths stays off the critical-path profile.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace scalla::util {

/// Computes the CRC32 of `data`, continuing from `seed` (pass 0 to start a
/// fresh checksum). The result matches zlib's crc32().
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

/// Convenience overload for string keys (file paths).
inline std::uint32_t Crc32(std::string_view s, std::uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace scalla::util

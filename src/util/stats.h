// Latency/statistics recorders used by the benchmark harness and by node
// instrumentation. LatencyRecorder keeps exact samples up to a cap (enough
// for the bench scales here) and reports mean plus percentiles; Counter and
// Gauge are trivial wrappers that make instrumented code self-describing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace scalla::util {

class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t maxSamples = 1 << 22);

  void Record(Duration d);
  void RecordNanos(std::int64_t ns);

  std::size_t count() const { return count_; }
  double MeanNanos() const;
  std::int64_t MinNanos() const;
  std::int64_t MaxNanos() const;
  /// q in [0,1]; exact over retained samples (sorts a local copy, so the
  /// method is genuinely const and safe to call from snapshot readers).
  std::int64_t PercentileNanos(double q) const;
  /// Batch variant: one sort for all quantiles. Out matches qs in order.
  std::vector<std::int64_t> PercentilesNanos(const std::vector<double>& qs) const;

  void Clear();

  /// "n=1000 mean=41.2us p50=39us p99=80us max=120us"
  std::string Summary() const;

 private:
  std::vector<std::int64_t> samples_;
  std::size_t maxSamples_;
  std::size_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0;
};

/// Formats nanoseconds with an adaptive unit ("312ns", "41.2us", "1.50s").
std::string FormatNanos(double ns);

}  // namespace scalla::util

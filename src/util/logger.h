// Minimal leveled logger. Production Scalla logs through XrdSysError; here
// a single process hosts entire simulated clusters, so the logger carries a
// component tag per message and is globally rate-independent (no locking
// hot paths: level check first, then a single mutexed write).
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace scalla::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& Instance();

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool Enabled(LogLevel level) const { return level >= level_; }

  /// Writes "LEVEL [component] message\n" to stderr.
  void Write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

namespace detail {
std::string FormatLog(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define SCALLA_LOG(level, component, ...)                                   \
  do {                                                                      \
    auto& scalla_logger = ::scalla::util::Logger::Instance();               \
    if (scalla_logger.Enabled(level)) {                                     \
      scalla_logger.Write(level, component,                                 \
                          ::scalla::util::detail::FormatLog(__VA_ARGS__));  \
    }                                                                       \
  } while (0)

#define SCALLA_DEBUG(component, ...) \
  SCALLA_LOG(::scalla::util::LogLevel::kDebug, component, __VA_ARGS__)
#define SCALLA_INFO(component, ...) \
  SCALLA_LOG(::scalla::util::LogLevel::kInfo, component, __VA_ARGS__)
#define SCALLA_WARN(component, ...) \
  SCALLA_LOG(::scalla::util::LogLevel::kWarn, component, __VA_ARGS__)
#define SCALLA_ERROR(component, ...) \
  SCALLA_LOG(::scalla::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace scalla::util

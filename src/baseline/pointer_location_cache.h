// The pointer-chased predecessor of cms::LocationCache, preserved as the
// comparison baseline and property-test oracle for the arena rewrite.
//
// Same paper-mandated semantics — CRC32 keys, Fibonacci bucket sizing with
// growth at 80% live load, 64 eviction windows with hide-then-purge and
// deferred re-chaining, authenticator-checked references — but the classic
// storage layout the arena replaced: per-entry heap nodes allocated in
// slabs, 64-bit pointer links, std::string keys, and a pointer-vector free
// list. The hidden-entry edge-case fixes (empty-key guard, RemoveLocation
// hide, live-only growth) are applied here too, so an identical op
// sequence must produce identical observable behaviour on both
// implementations (tests/cms_cache_property_test.cc).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cms/correction_state.h"
#include "cms/location_cache.h"  // for cms::RespSlotRef
#include "cms/types.h"
#include "util/clock.h"

namespace scalla::baseline {

/// Mirrors cms::RespSlotRef (index + epoch anchor reference).
using RespSlotRef = scalla::cms::RespSlotRef;

class LocationNode;  // defined in pointer_location_cache.cc

/// Authenticated reference: node pointer plus authenticator.
struct PointerLocRef {
  LocationNode* obj = nullptr;
  std::uint32_t auth = 0;
  explicit operator bool() const { return obj != nullptr; }
};

class PointerLocationCache {
 public:
  PointerLocationCache(const cms::CmsConfig& config, util::Clock& clock,
                       cms::CorrectionState& corrections);
  ~PointerLocationCache();

  PointerLocationCache(const PointerLocationCache&) = delete;
  PointerLocationCache& operator=(const PointerLocationCache&) = delete;

  enum class AddPolicy { kFindOnly, kCreate };

  struct FetchResult {
    PointerLocRef ref;
    cms::LocInfo info;
    bool found = false;
    bool created = false;
    bool deadlineActive = false;
    Duration deadlineRemaining{};
  };

  FetchResult Lookup(std::string_view path, ServerSet vm, ServerSet offline,
                     AddPolicy policy);
  bool BeginQuery(const PointerLocRef& ref, ServerSet queried, TimePoint deadline);

  struct UpdateResult {
    bool found = false;
    cms::LocInfo info;
    RespSlotRef releaseRead;
    RespSlotRef releaseWrite;
  };
  UpdateResult AddLocation(std::string_view path, std::uint32_t hash, ServerSlot server,
                           bool pending, bool allowWrite);
  void RemoveLocation(std::string_view path, ServerSlot server);
  bool Refresh(const PointerLocRef& ref, ServerSet vm, TimePoint deadline);
  RespSlotRef GetRespSlot(const PointerLocRef& ref, cms::AccessMode mode) const;
  bool SetRespSlot(const PointerLocRef& ref, cms::AccessMode mode, RespSlotRef slot);
  bool ReadInfo(const PointerLocRef& ref, ServerSet vm, ServerSet offline,
                cms::LocInfo* out);
  std::function<void()> OnWindowTick();

  static std::uint32_t HashOf(std::string_view path);

  struct Stats {
    std::size_t buckets = 0;
    std::size_t liveObjects = 0;
    std::size_t hiddenObjects = 0;
    std::size_t allocatedObjects = 0;
    std::size_t freeObjects = 0;
    std::size_t rehashes = 0;
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t creates = 0;
    std::size_t corrections = 0;
    std::size_t correctionMemoHits = 0;
    std::size_t probes = 0;
    std::size_t recycled = 0;
    std::size_t rechained = 0;
    std::uint64_t windowTicks = 0;
    std::size_t approxBytes = 0;
  };
  Stats GetStats() const;

  int CurrentWindow() const;

 private:
  struct Window {
    LocationNode* head = nullptr;
    std::uint64_t memoCn = ~std::uint64_t{0};
    std::uint64_t memoNc = ~std::uint64_t{0};
    ServerSet memoVc;
    std::size_t size = 0;
  };

  LocationNode* FindLocked(std::string_view path, std::uint32_t hash) const;
  LocationNode* AllocateLocked();
  void InsertLocked(LocationNode* obj, std::string_view path, std::uint32_t hash,
                    ServerSet vm);
  void MaybeGrowLocked();
  void ApplyCorrectionsLocked(LocationNode* obj, ServerSet vm, ServerSet offline);
  bool ValidLocked(const PointerLocRef& ref) const;
  void HideLocked(LocationNode* obj);
  void UnlinkFromHashLocked(LocationNode* obj);
  std::size_t PurgeWindow(int window, std::size_t maxBatch);
  cms::LocInfo InfoOf(const LocationNode* obj) const;

  const cms::CmsConfig config_;
  util::Clock& clock_;
  cms::CorrectionState& corrections_;

  mutable std::mutex mu_;
  std::vector<LocationNode*> buckets_;
  std::array<Window, kMaxServersPerSet> windows_;
  std::uint64_t tw_ = 0;

  std::vector<std::unique_ptr<LocationNode[]>> slabs_;
  std::vector<LocationNode*> freeList_;

  mutable Stats stats_;
};

}  // namespace scalla::baseline

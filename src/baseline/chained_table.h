// Chained hash table with a pluggable sizing policy — the apparatus for
// experiment E01 (paper footnote 4): the authors "found much higher
// collision rates with power-of-two sized tables compared to
// Fibonacci-sized" under CRC32 keys. Both policies share this code so the
// comparison isolates the sizing rule.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scalla::baseline {

enum class SizingPolicy {
  kFibonacci,  // grow to the next Fibonacci number (Scalla's choice)
  kPowerOfTwo, // grow to the next power of two (the common default)
  kPrime,      // grow to the next prime (textbook alternative, for context)
};

class ChainedTable {
 public:
  ChainedTable(SizingPolicy policy, std::size_t initialBuckets, double loadFactor = 0.8);
  ~ChainedTable();

  ChainedTable(const ChainedTable&) = delete;
  ChainedTable& operator=(const ChainedTable&) = delete;

  /// Inserts (or overwrites) key -> value. Key hash is CRC32 of the key,
  /// exactly as the location cache hashes file names.
  void Put(std::string_view key, std::uint64_t value);

  /// Returns true and sets *value if present. Counts probes.
  bool Get(std::string_view key, std::uint64_t* value) const;

  bool Erase(std::string_view key);

  std::size_t Size() const { return size_; }
  std::size_t Buckets() const { return buckets_.size(); }
  std::size_t Rehashes() const { return rehashes_; }

  struct ChainStats {
    std::size_t maxChain = 0;
    double meanChain = 0;        // over non-empty buckets
    std::size_t emptyBuckets = 0;
    std::size_t collisions = 0;  // entries beyond the first in each bucket
  };
  ChainStats GetChainStats() const;

  /// Probes performed by Get calls since the last reset.
  std::uint64_t Probes() const { return probes_; }
  void ResetProbes() { probes_ = 0; }

 private:
  struct Node {
    Node* next;
    std::uint32_t hash;
    std::string key;
    std::uint64_t value;
  };

  std::size_t NextSize(std::size_t current) const;
  void MaybeGrow();

  SizingPolicy policy_;
  double loadFactor_;
  std::vector<Node*> buckets_;
  std::size_t size_ = 0;
  std::size_t rehashes_ = 0;
  mutable std::uint64_t probes_ = 0;
};

}  // namespace scalla::baseline

#include "baseline/central_directory.h"

namespace scalla::baseline {

std::uint64_t CentralDirectory::RegisterServer(ServerSlot slot,
                                               const std::vector<std::string>& manifest) {
  std::uint64_t bytes = 0;
  for (const auto& path : manifest) {
    locations_[path].set(slot);
    bytes += path.size() + 4;  // length-framed path on the wire
  }
  return bytes;
}

std::size_t CentralDirectory::DeregisterServer(ServerSlot slot) {
  std::size_t touched = 0;
  for (auto it = locations_.begin(); it != locations_.end();) {
    if (it->second.test(slot)) {
      it->second.reset(slot);
      ++touched;
      if (it->second.empty()) {
        it = locations_.erase(it);
        continue;
      }
    }
    ++it;
  }
  return touched;
}

ServerSet CentralDirectory::Locate(const std::string& path) const {
  const auto it = locations_.find(path);
  return it == locations_.end() ? ServerSet::None() : it->second;
}

}  // namespace scalla::baseline

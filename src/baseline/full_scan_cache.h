// Full-scan TTL eviction baseline for experiment E04. Instead of Scalla's
// 64-window sliding scheme (which touches ~1.6% of the cache per tick and
// purges in the background), this cache stores an expiry time per entry
// and periodically scans the ENTIRE table, removing expired entries in the
// foreground — the straightforward design the paper's scheme improves on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/types.h"

namespace scalla::baseline {

class FullScanCache {
 public:
  FullScanCache(util::Clock& clock, Duration ttl, std::size_t initialBuckets = 89);
  ~FullScanCache();

  FullScanCache(const FullScanCache&) = delete;
  FullScanCache& operator=(const FullScanCache&) = delete;

  void Put(std::string_view key, std::uint64_t value);
  bool Get(std::string_view key, std::uint64_t* value) const;

  /// Scans every bucket, erasing expired entries. Returns entries removed
  /// and reports via *touched how many entries were examined — the
  /// foreground pause is proportional to the WHOLE cache, not to the
  /// expiring fraction.
  std::size_t ScanAndEvict(std::size_t* touched = nullptr);

  std::size_t Size() const { return size_; }

 private:
  struct Node {
    Node* next;
    std::uint32_t hash;
    TimePoint expiry;
    std::string key;
    std::uint64_t value;
  };

  void MaybeGrow();

  util::Clock& clock_;
  Duration ttl_;
  std::vector<Node*> buckets_;
  std::size_t size_ = 0;
};

}  // namespace scalla::baseline

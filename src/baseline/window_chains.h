// Re-chaining cost apparatus for experiment E09 (paper section III-C1).
// When a location object is refreshed, its T_a moves to the current window
// but Scalla does NOT move it between window chains immediately; the
// deletion job re-chains every moved object in one linear pass. The
// alternative — moving each object on every refresh — must first FIND the
// object inside its singly-linked chain, so a refresh-heavy window decays
// to quadratic total work. Both policies are implemented here over the
// same chain structure so the bench isolates the policy.
#pragma once

#include <cstdint>
#include <vector>

namespace scalla::baseline {

enum class RechainPolicy {
  kDeferred,   // Scalla: update T_a only; purge pass re-chains in bulk
  kImmediate,  // unlink from the old chain (linear search) on every refresh
};

class WindowChains {
 public:
  WindowChains(RechainPolicy policy, int windows = 64);
  ~WindowChains();

  WindowChains(const WindowChains&) = delete;
  WindowChains& operator=(const WindowChains&) = delete;

  /// Adds an object to window `w`; returns its id.
  std::uint64_t Add(int w);

  /// Refreshes object `id`: its logical window becomes `w`.
  void Refresh(std::uint64_t id, int w);

  /// Processes window `w` as the purge job would: removes objects whose
  /// logical window is `w`, re-chains the rest. Returns objects freed.
  std::size_t Purge(int w);

  /// Link traversals performed (the work metric the bench reports).
  std::uint64_t Traversals() const { return traversals_; }
  void ResetTraversals() { traversals_ = 0; }

  std::size_t SizeOf(int w) const;

 private:
  struct Node {
    Node* next = nullptr;
    int window = 0;   // logical T_a
    int chain = 0;    // physical chain it currently sits on
    bool dead = false;
  };

  void Unlink(Node* node);

  RechainPolicy policy_;
  std::vector<Node*> heads_;
  std::vector<Node*> all_;  // id -> node
  std::uint64_t traversals_ = 0;
};

}  // namespace scalla::baseline

#include "baseline/pointer_location_cache.h"

#include <cstring>

#include "util/crc32.h"
#include "util/fibonacci.h"

namespace scalla::baseline {
namespace {

constexpr std::size_t kPurgeBatch = 128;
constexpr std::size_t kSlabObjects = 1024;

}  // namespace

/// One cached file-location node: the classic layout with 64-bit pointer
/// links and a heap-backed std::string key.
class LocationNode {
 public:
  LocationNode* hashNext = nullptr;
  LocationNode* windowNext = nullptr;
  std::uint32_t hash = 0;
  std::uint32_t keyLen = 0;  // 0 => hidden (unfindable but pointer-valid)
  std::uint8_t addWindow = 0;
  std::uint32_t auth = 1;
  std::uint64_t cn = 0;
  TimePoint deadline{};
  ServerSet vh, vp, vq;
  RespSlotRef rr, rw;
  std::string key;
};

PointerLocationCache::PointerLocationCache(const cms::CmsConfig& config,
                                           util::Clock& clock,
                                           cms::CorrectionState& corrections)
    : config_(config), clock_(clock), corrections_(corrections) {
  buckets_.assign(util::FibonacciAtLeast(config_.initialBuckets), nullptr);
}

PointerLocationCache::~PointerLocationCache() = default;

std::uint32_t PointerLocationCache::HashOf(std::string_view path) {
  return util::Crc32(path);
}

cms::LocInfo PointerLocationCache::InfoOf(const LocationNode* obj) const {
  return cms::LocInfo{obj->vh, obj->vp, obj->vq};
}

bool PointerLocationCache::ValidLocked(const PointerLocRef& ref) const {
  return ref.obj != nullptr && ref.obj->auth == ref.auth;
}

LocationNode* PointerLocationCache::FindLocked(std::string_view path,
                                               std::uint32_t hash) const {
  LocationNode* obj = buckets_[hash % buckets_.size()];
  while (obj != nullptr) {
    ++stats_.probes;
    // keyLen == 0 marks a hidden node: never match it (even a zero-length
    // probe must not resurrect an entry awaiting purge).
    if (obj->keyLen != 0 && obj->hash == hash && obj->keyLen == path.size() &&
        std::memcmp(obj->key.data(), path.data(), path.size()) == 0) {
      return obj;
    }
    obj = obj->hashNext;
  }
  return nullptr;
}

LocationNode* PointerLocationCache::AllocateLocked() {
  if (freeList_.empty()) {
    slabs_.push_back(std::make_unique<LocationNode[]>(kSlabObjects));
    LocationNode* block = slabs_.back().get();
    freeList_.reserve(freeList_.size() + kSlabObjects);
    for (std::size_t i = kSlabObjects; i-- > 0;) freeList_.push_back(&block[i]);
    stats_.allocatedObjects += kSlabObjects;
    stats_.approxBytes += kSlabObjects * sizeof(LocationNode);
  }
  LocationNode* obj = freeList_.back();
  freeList_.pop_back();
  return obj;
}

void PointerLocationCache::InsertLocked(LocationNode* obj, std::string_view path,
                                        std::uint32_t hash, ServerSet vm) {
  obj->hash = hash;
  obj->key.assign(path);
  obj->keyLen = static_cast<std::uint32_t>(path.size());
  obj->addWindow = static_cast<std::uint8_t>(tw_ % kMaxServersPerSet);
  obj->cn = corrections_.Epoch();
  obj->deadline = clock_.Now() + config_.deadline;
  obj->vh = ServerSet::None();
  obj->vp = ServerSet::None();
  obj->vq = vm;
  obj->rr = RespSlotRef{};
  obj->rw = RespSlotRef{};

  LocationNode*& bucket = buckets_[hash % buckets_.size()];
  obj->hashNext = bucket;
  bucket = obj;

  Window& win = windows_[obj->addWindow];
  obj->windowNext = win.head;
  win.head = obj;
  ++win.size;

  ++stats_.liveObjects;
  ++stats_.creates;
  stats_.approxBytes += obj->key.capacity();
  MaybeGrowLocked();
}

void PointerLocationCache::MaybeGrowLocked() {
  // Live entries only: a hide-pass burst must not trigger a premature
  // grow + full rehash of nodes about to be recycled.
  if (static_cast<double>(stats_.liveObjects) <
      config_.growthLoadFactor * static_cast<double>(buckets_.size())) {
    return;
  }
  const std::size_t newSize = util::NextFibonacci(buckets_.size());
  if (newSize == buckets_.size()) return;
  std::vector<LocationNode*> fresh(newSize, nullptr);
  for (LocationNode* head : buckets_) {
    while (head != nullptr) {
      LocationNode* next = head->hashNext;
      LocationNode*& dst = fresh[head->hash % newSize];
      head->hashNext = dst;
      dst = head;
      head = next;
    }
  }
  buckets_.swap(fresh);
  ++stats_.rehashes;
}

void PointerLocationCache::ApplyCorrectionsLocked(LocationNode* obj, ServerSet vm,
                                                  ServerSet offline) {
  if (obj->cn != corrections_.Epoch()) {
    ++stats_.corrections;
    Window& win = windows_[obj->addWindow];
    ServerSet vc;
    if (config_.correctionMemo && win.memoCn == obj->cn &&
        win.memoNc == corrections_.Epoch()) {
      vc = win.memoVc;
      ++stats_.correctionMemoHits;
    } else {
      vc = corrections_.CorrectionSince(obj->cn);
      win.memoCn = obj->cn;
      win.memoNc = corrections_.Epoch();
      win.memoVc = vc;
    }
    obj->vq = (obj->vq | vc) & vm;
    obj->vh = obj->vh.Without(obj->vq) & vm;
    obj->vp = obj->vp.Without(obj->vq) & vm;
    obj->cn = corrections_.Epoch();
  }

  const ServerSet off = offline & (obj->vh | obj->vp) & vm;
  if (!off.empty()) {
    obj->vq |= off;
    obj->vh = obj->vh.Without(off);
    obj->vp = obj->vp.Without(off);
  }
}

PointerLocationCache::FetchResult PointerLocationCache::Lookup(std::string_view path,
                                                               ServerSet vm,
                                                               ServerSet offline,
                                                               AddPolicy policy) {
  FetchResult result;
  const std::uint32_t hash = HashOf(path);
  std::lock_guard lock(mu_);
  ++stats_.lookups;
  if (path.empty()) return result;  // zero-length keys are the hidden marker

  LocationNode* obj = FindLocked(path, hash);
  if (obj == nullptr) {
    if (policy == AddPolicy::kFindOnly) return result;
    obj = AllocateLocked();
    InsertLocked(obj, path, hash, vm);
    result.created = true;
  } else {
    ++stats_.hits;
    ApplyCorrectionsLocked(obj, vm, offline);
  }

  result.found = true;
  result.ref = PointerLocRef{obj, obj->auth};
  result.info = InfoOf(obj);
  const TimePoint now = clock_.Now();
  result.deadlineActive = obj->deadline > now;
  result.deadlineRemaining = result.deadlineActive ? obj->deadline - now : Duration::zero();
  return result;
}

bool PointerLocationCache::BeginQuery(const PointerLocRef& ref, ServerSet queried,
                                      TimePoint deadline) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  ref.obj->vq = ref.obj->vq.Without(queried);
  ref.obj->deadline = deadline;
  return true;
}

PointerLocationCache::UpdateResult PointerLocationCache::AddLocation(
    std::string_view path, std::uint32_t hash, ServerSlot server, bool pending,
    bool allowWrite) {
  UpdateResult result;
  if (path.empty()) return result;
  std::lock_guard lock(mu_);
  LocationNode* obj = FindLocked(path, hash);
  if (obj == nullptr) return result;

  result.found = true;
  obj->vq.reset(server);
  if (pending) {
    obj->vp.set(server);
  } else {
    obj->vh.set(server);
    obj->vp.reset(server);
  }

  if (obj->rr.IsSet()) result.releaseRead = obj->rr;
  if (allowWrite && obj->rw.IsSet()) result.releaseWrite = obj->rw;
  result.info = InfoOf(obj);
  return result;
}

void PointerLocationCache::HideLocked(LocationNode* obj) {
  obj->keyLen = 0;
  ++obj->auth;
  --stats_.liveObjects;
  ++stats_.hiddenObjects;
}

void PointerLocationCache::RemoveLocation(std::string_view path, ServerSlot server) {
  if (path.empty()) return;
  const std::uint32_t hash = HashOf(path);
  std::lock_guard lock(mu_);
  LocationNode* obj = FindLocked(path, hash);
  if (obj == nullptr) return;
  obj->vh.reset(server);
  obj->vp.reset(server);
  if (obj->vh.empty() && obj->vp.empty() && obj->vq.empty()) {
    // Last holder gone and nothing left to query: hide so the next
    // look-up re-creates and re-queries instead of hitting an all-empty
    // record.
    HideLocked(obj);
  }
}

bool PointerLocationCache::Refresh(const PointerLocRef& ref, ServerSet vm,
                                   TimePoint deadline) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  LocationNode* obj = ref.obj;
  obj->vh = ServerSet::None();
  obj->vp = ServerSet::None();
  obj->vq = vm;
  obj->cn = corrections_.Epoch();
  obj->deadline = deadline;
  obj->addWindow = static_cast<std::uint8_t>(tw_ % kMaxServersPerSet);
  return true;
}

RespSlotRef PointerLocationCache::GetRespSlot(const PointerLocRef& ref,
                                              cms::AccessMode mode) const {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return RespSlotRef{};
  return mode == cms::AccessMode::kRead ? ref.obj->rr : ref.obj->rw;
}

bool PointerLocationCache::SetRespSlot(const PointerLocRef& ref, cms::AccessMode mode,
                                       RespSlotRef slot) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  (mode == cms::AccessMode::kRead ? ref.obj->rr : ref.obj->rw) = slot;
  return true;
}

bool PointerLocationCache::ReadInfo(const PointerLocRef& ref, ServerSet vm,
                                    ServerSet offline, cms::LocInfo* out) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  ApplyCorrectionsLocked(ref.obj, vm, offline);
  *out = InfoOf(ref.obj);
  return true;
}

std::function<void()> PointerLocationCache::OnWindowTick() {
  std::lock_guard lock(mu_);
  ++tw_;
  ++stats_.windowTicks;
  const int w = static_cast<int>(tw_ % kMaxServersPerSet);
  Window& win = windows_[w];

  for (LocationNode* obj = win.head; obj != nullptr; obj = obj->windowNext) {
    if (obj->keyLen != 0 && obj->addWindow == w) HideLocked(obj);
  }
  win.memoCn = ~std::uint64_t{0};
  win.memoNc = ~std::uint64_t{0};

  if (win.head == nullptr) return {};
  return [this, w] { PurgeWindow(w, kPurgeBatch); };
}

std::size_t PointerLocationCache::PurgeWindow(int window, std::size_t maxBatch) {
  LocationNode* list = nullptr;
  {
    std::lock_guard lock(mu_);
    list = windows_[window].head;
    windows_[window].head = nullptr;
    windows_[window].size = 0;
  }
  std::size_t freed = 0;
  while (list != nullptr) {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < maxBatch && list != nullptr; ++i) {
      LocationNode* obj = list;
      list = obj->windowNext;
      if (obj->keyLen == 0) {
        UnlinkFromHashLocked(obj);
        ++obj->auth;
        stats_.approxBytes -= obj->key.capacity();
        obj->key.clear();
        obj->key.shrink_to_fit();
        obj->rr = RespSlotRef{};
        obj->rw = RespSlotRef{};
        freeList_.push_back(obj);
        --stats_.hiddenObjects;
        ++stats_.recycled;
        ++freed;
      } else {
        Window& dst = windows_[obj->addWindow];
        obj->windowNext = dst.head;
        dst.head = obj;
        ++dst.size;
        if (obj->addWindow != window) ++stats_.rechained;
      }
    }
  }
  return freed;
}

void PointerLocationCache::UnlinkFromHashLocked(LocationNode* obj) {
  LocationNode** link = &buckets_[obj->hash % buckets_.size()];
  while (*link != nullptr) {
    if (*link == obj) {
      *link = obj->hashNext;
      obj->hashNext = nullptr;
      return;
    }
    link = &(*link)->hashNext;
  }
}

PointerLocationCache::Stats PointerLocationCache::GetStats() const {
  std::lock_guard lock(mu_);
  Stats s = stats_;
  s.buckets = buckets_.size();
  s.freeObjects = freeList_.size();
  return s;
}

int PointerLocationCache::CurrentWindow() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(tw_ % kMaxServersPerSet);
}

}  // namespace scalla::baseline

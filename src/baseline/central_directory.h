// GFS/AFS-style central directory baseline for experiment E12 (paper
// section V). A joining server transmits its ENTIRE file manifest to the
// master, which records every file's location eagerly; look-ups are then
// local. Scalla instead registers only export prefixes and discovers
// locations on demand — "node registration and deregistration are
// extremely light operations". The bench compares registration cost and
// restart-to-first-service time as a function of files per server.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/server_set.h"

namespace scalla::baseline {

class CentralDirectory {
 public:
  /// Registers a server with its full manifest. Cost is O(manifest).
  /// Returns bytes "transmitted" (sum of path lengths + framing), the
  /// quantity the restart bench charges against the network.
  std::uint64_t RegisterServer(ServerSlot slot, const std::vector<std::string>& manifest);

  /// Deregisters: every mapping mentioning the server must be updated.
  /// Cost is O(entries).
  std::size_t DeregisterServer(ServerSlot slot);

  /// Location lookup: O(1), complete (no discovery traffic ever needed).
  ServerSet Locate(const std::string& path) const;

  std::size_t EntryCount() const { return locations_.size(); }

 private:
  std::unordered_map<std::string, ServerSet> locations_;
};

}  // namespace scalla::baseline

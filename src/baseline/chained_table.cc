#include "baseline/chained_table.h"

#include "util/crc32.h"
#include "util/fibonacci.h"

namespace scalla::baseline {
namespace {

bool IsPrime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

std::size_t NextPrimeAtLeast(std::size_t n) {
  while (!IsPrime(n)) ++n;
  return n;
}

std::size_t NextPow2AtLeast(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ChainedTable::ChainedTable(SizingPolicy policy, std::size_t initialBuckets,
                           double loadFactor)
    : policy_(policy), loadFactor_(loadFactor) {
  std::size_t n = initialBuckets;
  switch (policy_) {
    case SizingPolicy::kFibonacci: n = util::FibonacciAtLeast(n); break;
    case SizingPolicy::kPowerOfTwo: n = NextPow2AtLeast(n); break;
    case SizingPolicy::kPrime: n = NextPrimeAtLeast(n); break;
  }
  buckets_.assign(n, nullptr);
}

ChainedTable::~ChainedTable() {
  for (Node* head : buckets_) {
    while (head != nullptr) {
      Node* next = head->next;
      delete head;
      head = next;
    }
  }
}

std::size_t ChainedTable::NextSize(std::size_t current) const {
  switch (policy_) {
    case SizingPolicy::kFibonacci: return util::NextFibonacci(current);
    case SizingPolicy::kPowerOfTwo: return current * 2;
    case SizingPolicy::kPrime: return NextPrimeAtLeast(current * 2);
  }
  return current * 2;
}

void ChainedTable::MaybeGrow() {
  if (static_cast<double>(size_) < loadFactor_ * static_cast<double>(buckets_.size())) {
    return;
  }
  const std::size_t newSize = NextSize(buckets_.size());
  std::vector<Node*> fresh(newSize, nullptr);
  for (Node* head : buckets_) {
    while (head != nullptr) {
      Node* next = head->next;
      Node*& dst = fresh[head->hash % newSize];
      head->next = dst;
      dst = head;
      head = next;
    }
  }
  buckets_.swap(fresh);
  ++rehashes_;
}

void ChainedTable::Put(std::string_view key, std::uint64_t value) {
  const std::uint32_t hash = util::Crc32(key);
  Node*& bucket = buckets_[hash % buckets_.size()];
  for (Node* n = bucket; n != nullptr; n = n->next) {
    if (n->hash == hash && n->key == key) {
      n->value = value;
      return;
    }
  }
  bucket = new Node{bucket, hash, std::string(key), value};
  ++size_;
  MaybeGrow();
}

bool ChainedTable::Get(std::string_view key, std::uint64_t* value) const {
  const std::uint32_t hash = util::Crc32(key);
  for (const Node* n = buckets_[hash % buckets_.size()]; n != nullptr; n = n->next) {
    ++probes_;
    if (n->hash == hash && n->key == key) {
      *value = n->value;
      return true;
    }
  }
  return false;
}

bool ChainedTable::Erase(std::string_view key) {
  const std::uint32_t hash = util::Crc32(key);
  Node** link = &buckets_[hash % buckets_.size()];
  while (*link != nullptr) {
    if ((*link)->hash == hash && (*link)->key == key) {
      Node* victim = *link;
      *link = victim->next;
      delete victim;
      --size_;
      return true;
    }
    link = &(*link)->next;
  }
  return false;
}

ChainedTable::ChainStats ChainedTable::GetChainStats() const {
  ChainStats stats;
  std::size_t nonEmpty = 0;
  std::size_t total = 0;
  for (const Node* head : buckets_) {
    std::size_t len = 0;
    for (const Node* n = head; n != nullptr; n = n->next) ++len;
    if (len == 0) {
      ++stats.emptyBuckets;
      continue;
    }
    ++nonEmpty;
    total += len;
    stats.collisions += len - 1;
    stats.maxChain = std::max(stats.maxChain, len);
  }
  stats.meanChain = nonEmpty == 0 ? 0.0
                                  : static_cast<double>(total) / static_cast<double>(nonEmpty);
  return stats;
}

}  // namespace scalla::baseline

#include "baseline/full_scan_cache.h"

#include "util/crc32.h"
#include "util/fibonacci.h"

namespace scalla::baseline {

FullScanCache::FullScanCache(util::Clock& clock, Duration ttl, std::size_t initialBuckets)
    : clock_(clock), ttl_(ttl) {
  buckets_.assign(util::FibonacciAtLeast(initialBuckets), nullptr);
}

FullScanCache::~FullScanCache() {
  for (Node* head : buckets_) {
    while (head != nullptr) {
      Node* next = head->next;
      delete head;
      head = next;
    }
  }
}

void FullScanCache::MaybeGrow() {
  if (static_cast<double>(size_) < 0.8 * static_cast<double>(buckets_.size())) return;
  const std::size_t newSize = util::NextFibonacci(buckets_.size());
  std::vector<Node*> fresh(newSize, nullptr);
  for (Node* head : buckets_) {
    while (head != nullptr) {
      Node* next = head->next;
      Node*& dst = fresh[head->hash % newSize];
      head->next = dst;
      dst = head;
      head = next;
    }
  }
  buckets_.swap(fresh);
}

void FullScanCache::Put(std::string_view key, std::uint64_t value) {
  const std::uint32_t hash = util::Crc32(key);
  Node*& bucket = buckets_[hash % buckets_.size()];
  for (Node* n = bucket; n != nullptr; n = n->next) {
    if (n->hash == hash && n->key == key) {
      n->value = value;
      n->expiry = clock_.Now() + ttl_;
      return;
    }
  }
  bucket = new Node{bucket, hash, clock_.Now() + ttl_, std::string(key), value};
  ++size_;
  MaybeGrow();
}

bool FullScanCache::Get(std::string_view key, std::uint64_t* value) const {
  const std::uint32_t hash = util::Crc32(key);
  const TimePoint now = clock_.Now();
  for (const Node* n = buckets_[hash % buckets_.size()]; n != nullptr; n = n->next) {
    if (n->hash == hash && n->key == key) {
      if (n->expiry <= now) return false;  // expired but not yet scanned out
      *value = n->value;
      return true;
    }
  }
  return false;
}

std::size_t FullScanCache::ScanAndEvict(std::size_t* touched) {
  const TimePoint now = clock_.Now();
  std::size_t removed = 0;
  std::size_t examined = 0;
  for (Node*& bucket : buckets_) {
    Node** link = &bucket;
    while (*link != nullptr) {
      ++examined;
      if ((*link)->expiry <= now) {
        Node* victim = *link;
        *link = victim->next;
        delete victim;
        --size_;
        ++removed;
      } else {
        link = &(*link)->next;
      }
    }
  }
  if (touched != nullptr) *touched = examined;
  return removed;
}

}  // namespace scalla::baseline

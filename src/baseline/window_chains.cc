#include "baseline/window_chains.h"

namespace scalla::baseline {

WindowChains::WindowChains(RechainPolicy policy, int windows)
    : policy_(policy), heads_(static_cast<std::size_t>(windows), nullptr) {}

WindowChains::~WindowChains() {
  for (Node* n : all_) delete n;
}

std::uint64_t WindowChains::Add(int w) {
  Node* node = new Node;
  node->window = w;
  node->chain = w;
  node->next = heads_[w];
  heads_[w] = node;
  all_.push_back(node);
  return all_.size() - 1;
}

void WindowChains::Unlink(Node* node) {
  // Singly-linked: finding the predecessor costs a walk — this is exactly
  // the per-refresh price the deferred policy avoids.
  Node** link = &heads_[node->chain];
  while (*link != nullptr) {
    ++traversals_;
    if (*link == node) {
      *link = node->next;
      node->next = nullptr;
      return;
    }
    link = &(*link)->next;
  }
}

void WindowChains::Refresh(std::uint64_t id, int w) {
  Node* node = all_[id];
  if (node->dead) return;
  node->window = w;
  if (policy_ == RechainPolicy::kImmediate && node->chain != w) {
    Unlink(node);
    node->chain = w;
    node->next = heads_[w];
    heads_[w] = node;
  }
}

std::size_t WindowChains::Purge(int w) {
  Node* list = heads_[w];
  heads_[w] = nullptr;
  std::size_t freed = 0;
  while (list != nullptr) {
    ++traversals_;
    Node* node = list;
    list = node->next;
    node->next = nullptr;
    if (node->window == w) {
      node->dead = true;  // recycled in the real cache; flagged here
      ++freed;
    } else {
      node->chain = node->window;  // deferred re-chain, one hop
      node->next = heads_[node->window];
      heads_[node->window] = node;
    }
  }
  return freed;
}

std::size_t WindowChains::SizeOf(int w) const {
  std::size_t n = 0;
  for (const Node* node = heads_[w]; node != nullptr; node = node->next) ++n;
  return n;
}

}  // namespace scalla::baseline

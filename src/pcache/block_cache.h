// Block cache for the proxy tier: fixed-size blocks keyed by (path, block
// index), sharded for lock spread, with strict global LRU eviction driven
// by high/low watermarks — the XCache/PFC design: inserts are cheap until
// used bytes cross the high watermark, then the cache evicts oldest-first
// down to the low watermark so eviction runs in bursts instead of on every
// insert. Pinned blocks (mid-insert, mid-read-ahead) are never evicted.
//
// SingleFlight coalesces concurrent misses on the same block: the first
// requester becomes the fetch owner, later requesters queue behind it and
// share the one origin fetch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/messages.h"

namespace scalla::pcache {

struct BlockCacheConfig {
  std::uint32_t blockSize = 64 * 1024;       // bytes per cache block
  std::uint64_t capacityBytes = 64 * 1024 * 1024;
  double highWatermark = 0.95;               // start evicting above this
  double lowWatermark = 0.80;                // evict down to this
  std::size_t shards = 8;
};

/// Identifies one cached block of one file.
struct BlockKey {
  std::string path;
  std::uint64_t index = 0;

  bool operator==(const BlockKey&) const = default;
};

struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t usedBytes = 0;
  std::uint64_t blockCount = 0;
};

/// One block removed by the watermark sweep, handed to the eviction sink
/// (the tiered cache spills these to disk instead of dropping them).
struct EvictedBlock {
  BlockKey key;
  std::string data;
  int pins = 0;  // always 0: pinned blocks are never evicted
};

class BlockCache {
 public:
  explicit BlockCache(const BlockCacheConfig& config);

  std::uint32_t BlockSize() const { return config_.blockSize; }

  /// Cache hit: returns the block's bytes and bumps its recency.
  /// Miss returns nullopt. Both outcomes count toward hit/miss stats.
  std::optional<std::string> Lookup(const std::string& path, std::uint64_t index);

  /// Recency- and stats-neutral presence probe (read-ahead planning).
  bool Contains(const std::string& path, std::uint64_t index) const;

  /// Stores a block (replacing any previous copy), then evicts down to the
  /// low watermark if used bytes crossed the high watermark. With
  /// pinned=true the block enters pinned and must be Unpin()ed.
  void Insert(const std::string& path, std::uint64_t index, std::string data,
              bool pinned = false);

  /// Pins a resident block against eviction. Returns false on miss.
  bool Pin(const std::string& path, std::uint64_t index);
  void Unpin(const std::string& path, std::uint64_t index);

  /// Drops every block of `path`; returns how many were dropped. Pinned
  /// blocks survive (a fetch in flight keeps its block).
  std::uint64_t Purge(const std::string& path);
  std::uint64_t PurgeAll();

  BlockCacheStats GetStats() const;
  std::uint64_t UsedBytes() const;

  /// Blocks of `path` currently resident (lifecycle accounting).
  std::uint64_t CountBlocks(const std::string& path) const;

  /// Watermark-eviction victims are handed to `sink` (with their bytes)
  /// instead of being silently dropped; the tiered cache uses this to
  /// spill DRAM victims to the disk tier. The sink runs outside every
  /// shard lock (but under the sweep lock, so sinks never overlap). Set
  /// once, before the cache sees concurrent traffic.
  void SetEvictionSink(std::function<void(EvictedBlock)> sink) {
    evictionSink_ = std::move(sink);
  }

 private:
  struct Entry {
    std::string data;
    std::uint64_t stamp = 0;    // global LRU recency; larger = fresher
    int pins = 0;
    std::list<BlockKey>::iterator lruIt;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::map<std::uint64_t, Entry>> files;
    std::list<BlockKey> lru;    // front = oldest within this shard
  };

  Shard& ShardOf(const std::string& path, std::uint64_t index);
  const Shard& ShardOf(const std::string& path, std::uint64_t index) const;
  void EvictToLowWatermark();

  BlockCacheConfig config_;
  std::vector<Shard> shards_;
  std::mutex evictMu_;  // serializes watermark eviction sweeps
  std::function<void(EvictedBlock)> evictionSink_;

  std::atomic<std::uint64_t> nextStamp_{1};
  std::atomic<std::uint64_t> usedBytes_{0};
  std::atomic<std::uint64_t> blockCount_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Deduplicates concurrent fetches of the same block. The first Begin()
/// for a key returns true (the caller owns the origin fetch); later calls
/// enqueue their waiter and return false. Complete() delivers the outcome
/// to every queued waiter.
class SingleFlight {
 public:
  using Waiter = std::function<void(proto::XrdErr, const std::string&)>;

  /// Registers interest in (path, index). Returns true if the caller is
  /// now the fetch owner; false if a fetch is already in flight (the
  /// waiter fires on its completion).
  bool Begin(const std::string& path, std::uint64_t index, Waiter waiter);

  /// Owner-only variant for read-ahead: claims the key if nobody holds it,
  /// without queueing a waiter. Returns false if a fetch is in flight.
  bool TryOwn(const std::string& path, std::uint64_t index);

  /// Resolves the key, invoking all queued waiters (outside the lock).
  void Complete(const std::string& path, std::uint64_t index, proto::XrdErr err,
                const std::string& data);

  /// How many Begin() calls piggybacked on an existing fetch.
  std::uint64_t Coalesced() const { return coalesced_.load(std::memory_order_relaxed); }

  /// Fetches currently in flight.
  std::size_t InFlight() const;

 private:
  static std::string Key(const std::string& path, std::uint64_t index);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<Waiter>> inflight_;
  std::atomic<std::uint64_t> coalesced_{0};
};

}  // namespace scalla::pcache

#include "pcache/block_cache.h"

#include <algorithm>

namespace scalla::pcache {

BlockCache::BlockCache(const BlockCacheConfig& config)
    : config_(config), shards_(std::max<std::size_t>(config.shards, 1)) {}

BlockCache::Shard& BlockCache::ShardOf(const std::string& path, std::uint64_t index) {
  const std::size_t h = std::hash<std::string>{}(path) ^ (index * 0x9E3779B97F4A7C15ull);
  return shards_[h % shards_.size()];
}

const BlockCache::Shard& BlockCache::ShardOf(const std::string& path,
                                             std::uint64_t index) const {
  const std::size_t h = std::hash<std::string>{}(path) ^ (index * 0x9E3779B97F4A7C15ull);
  return shards_[h % shards_.size()];
}

std::optional<std::string> BlockCache::Lookup(const std::string& path,
                                              std::uint64_t index) {
  Shard& shard = ShardOf(path, index);
  std::lock_guard lock(shard.mu);
  const auto fileIt = shard.files.find(path);
  if (fileIt == shard.files.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto it = fileIt->second.find(index);
  if (it == fileIt->second.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Entry& e = it->second;
  e.stamp = nextStamp_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.end(), shard.lru, e.lruIt);  // bump to freshest
  hits_.fetch_add(1, std::memory_order_relaxed);
  return e.data;
}

bool BlockCache::Contains(const std::string& path, std::uint64_t index) const {
  const Shard& shard = ShardOf(path, index);
  std::lock_guard lock(shard.mu);
  const auto fileIt = shard.files.find(path);
  return fileIt != shard.files.end() && fileIt->second.count(index) != 0;
}

void BlockCache::Insert(const std::string& path, std::uint64_t index,
                        std::string data, bool pinned) {
  {
    Shard& shard = ShardOf(path, index);
    std::lock_guard lock(shard.mu);
    auto& perFile = shard.files[path];
    const auto it = perFile.find(index);
    if (it != perFile.end()) {
      // Replace in place; recency bumps like a hit.
      Entry& e = it->second;
      usedBytes_.fetch_sub(e.data.size(), std::memory_order_relaxed);
      usedBytes_.fetch_add(data.size(), std::memory_order_relaxed);
      e.data = std::move(data);
      e.stamp = nextStamp_.fetch_add(1, std::memory_order_relaxed);
      if (pinned) ++e.pins;
      shard.lru.splice(shard.lru.end(), shard.lru, e.lruIt);
    } else {
      Entry e;
      e.stamp = nextStamp_.fetch_add(1, std::memory_order_relaxed);
      e.pins = pinned ? 1 : 0;
      usedBytes_.fetch_add(data.size(), std::memory_order_relaxed);
      blockCount_.fetch_add(1, std::memory_order_relaxed);
      shard.lru.push_back(BlockKey{path, index});
      e.lruIt = std::prev(shard.lru.end());
      e.data = std::move(data);
      perFile.emplace(index, std::move(e));
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto high =
      static_cast<std::uint64_t>(config_.highWatermark *
                                 static_cast<double>(config_.capacityBytes));
  if (usedBytes_.load(std::memory_order_relaxed) > high) EvictToLowWatermark();
}

void BlockCache::EvictToLowWatermark() {
  // One sweep at a time: concurrent inserters queue here rather than
  // racing each other over the same victims.
  std::lock_guard evictLock(evictMu_);
  const auto low = static_cast<std::uint64_t>(
      config_.lowWatermark * static_cast<double>(config_.capacityBytes));

  // Victim = globally oldest unpinned block, by the global stamp: cache
  // each shard's oldest unpinned candidate and take the minimum stamp
  // across shards. A shard's candidate only changes when this sweep evicts
  // from it (or a concurrent touch invalidates the cached stamp, caught by
  // re-validation below), so the sweep locks one shard per eviction
  // instead of re-scanning all of them — a burst of E evictions costs
  // O(shards + E) lock rounds, and recency stays globally ordered even
  // though each shard keeps its own LRU list.
  struct Candidate {
    bool valid = false;
    BlockKey key;
    std::uint64_t stamp = 0;
  };
  std::vector<Candidate> candidates(shards_.size());
  const auto refresh = [&](std::size_t s) {
    Candidate c;
    Shard& shard = shards_[s];
    std::lock_guard lock(shard.mu);
    for (const BlockKey& key : shard.lru) {
      const Entry& e = shard.files.at(key.path).at(key.index);
      if (e.pins > 0) continue;  // pinned: skip, try the next-oldest
      c.valid = true;
      c.key = key;
      c.stamp = e.stamp;
      break;  // shard's LRU order == stamp order; first unpinned is oldest
    }
    candidates[s] = c;
  };
  for (std::size_t s = 0; s < shards_.size(); ++s) refresh(s);

  while (usedBytes_.load(std::memory_order_relaxed) > low) {
    std::size_t victim = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!candidates[s].valid) continue;
      if (victim == shards_.size() || candidates[s].stamp < candidates[victim].stamp) {
        victim = s;
      }
    }
    if (victim == shards_.size()) return;  // everything left is pinned
    const Candidate cand = candidates[victim];
    EvictedBlock evicted;
    bool taken = false;
    {
      Shard& shard = shards_[victim];
      std::lock_guard lock(shard.mu);
      const auto fileIt = shard.files.find(cand.key.path);
      if (fileIt != shard.files.end()) {
        const auto it = fileIt->second.find(cand.key.index);
        if (it != fileIt->second.end() && it->second.pins == 0 &&
            it->second.stamp == cand.stamp) {
          usedBytes_.fetch_sub(it->second.data.size(), std::memory_order_relaxed);
          blockCount_.fetch_sub(1, std::memory_order_relaxed);
          evictions_.fetch_add(1, std::memory_order_relaxed);
          shard.lru.erase(it->second.lruIt);
          evicted.key = cand.key;
          evicted.data = std::move(it->second.data);
          taken = true;
          fileIt->second.erase(it);
          if (fileIt->second.empty()) shard.files.erase(fileIt);
        }
      }
    }
    // Touched, purged, or pinned between peek and take: re-peek the shard.
    refresh(victim);
    if (!taken) continue;
    if (evictionSink_) evictionSink_(std::move(evicted));
  }
}

bool BlockCache::Pin(const std::string& path, std::uint64_t index) {
  Shard& shard = ShardOf(path, index);
  std::lock_guard lock(shard.mu);
  const auto fileIt = shard.files.find(path);
  if (fileIt == shard.files.end()) return false;
  const auto it = fileIt->second.find(index);
  if (it == fileIt->second.end()) return false;
  ++it->second.pins;
  return true;
}

void BlockCache::Unpin(const std::string& path, std::uint64_t index) {
  Shard& shard = ShardOf(path, index);
  std::lock_guard lock(shard.mu);
  const auto fileIt = shard.files.find(path);
  if (fileIt == shard.files.end()) return;
  const auto it = fileIt->second.find(index);
  if (it == fileIt->second.end()) return;
  if (it->second.pins > 0) --it->second.pins;
}

std::uint64_t BlockCache::Purge(const std::string& path) {
  std::uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    const auto fileIt = shard.files.find(path);
    if (fileIt == shard.files.end()) continue;
    for (auto it = fileIt->second.begin(); it != fileIt->second.end();) {
      if (it->second.pins > 0) {
        ++it;
        continue;
      }
      usedBytes_.fetch_sub(it->second.data.size(), std::memory_order_relaxed);
      blockCount_.fetch_sub(1, std::memory_order_relaxed);
      shard.lru.erase(it->second.lruIt);
      it = fileIt->second.erase(it);
      ++dropped;
    }
    if (fileIt->second.empty()) shard.files.erase(fileIt);
  }
  return dropped;
}

std::uint64_t BlockCache::PurgeAll() {
  std::uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (auto fileIt = shard.files.begin(); fileIt != shard.files.end();) {
      for (auto it = fileIt->second.begin(); it != fileIt->second.end();) {
        if (it->second.pins > 0) {
          ++it;
          continue;
        }
        usedBytes_.fetch_sub(it->second.data.size(), std::memory_order_relaxed);
        blockCount_.fetch_sub(1, std::memory_order_relaxed);
        shard.lru.erase(it->second.lruIt);
        it = fileIt->second.erase(it);
        ++dropped;
      }
      if (fileIt->second.empty()) {
        fileIt = shard.files.erase(fileIt);
      } else {
        ++fileIt;
      }
    }
  }
  return dropped;
}

BlockCacheStats BlockCache::GetStats() const {
  BlockCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.usedBytes = usedBytes_.load(std::memory_order_relaxed);
  s.blockCount = blockCount_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t BlockCache::UsedBytes() const {
  return usedBytes_.load(std::memory_order_relaxed);
}

std::uint64_t BlockCache::CountBlocks(const std::string& path) const {
  std::uint64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    const auto fileIt = shard.files.find(path);
    if (fileIt != shard.files.end()) n += fileIt->second.size();
  }
  return n;
}

// --------------------------------------------------------- SingleFlight

std::string SingleFlight::Key(const std::string& path, std::uint64_t index) {
  return path + '\0' + std::to_string(index);
}

bool SingleFlight::Begin(const std::string& path, std::uint64_t index, Waiter waiter) {
  std::lock_guard lock(mu_);
  const auto [it, inserted] = inflight_.try_emplace(Key(path, index));
  it->second.push_back(std::move(waiter));
  if (!inserted) coalesced_.fetch_add(1, std::memory_order_relaxed);
  return inserted;
}

bool SingleFlight::TryOwn(const std::string& path, std::uint64_t index) {
  std::lock_guard lock(mu_);
  return inflight_.try_emplace(Key(path, index)).second;
}

void SingleFlight::Complete(const std::string& path, std::uint64_t index,
                            proto::XrdErr err, const std::string& data) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard lock(mu_);
    const auto it = inflight_.find(Key(path, index));
    if (it == inflight_.end()) return;
    waiters = std::move(it->second);
    inflight_.erase(it);
  }
  for (const Waiter& w : waiters) w(err, data);
}

std::size_t SingleFlight::InFlight() const {
  std::lock_guard lock(mu_);
  return inflight_.size();
}

}  // namespace scalla::pcache

#include "pcache/block_cache.h"

#include <algorithm>

namespace scalla::pcache {

BlockCache::BlockCache(const BlockCacheConfig& config)
    : config_(config), shards_(std::max<std::size_t>(config.shards, 1)) {}

BlockCache::Shard& BlockCache::ShardOf(const std::string& path, std::uint64_t index) {
  const std::size_t h = std::hash<std::string>{}(path) ^ (index * 0x9E3779B97F4A7C15ull);
  return shards_[h % shards_.size()];
}

const BlockCache::Shard& BlockCache::ShardOf(const std::string& path,
                                             std::uint64_t index) const {
  const std::size_t h = std::hash<std::string>{}(path) ^ (index * 0x9E3779B97F4A7C15ull);
  return shards_[h % shards_.size()];
}

std::optional<std::string> BlockCache::Lookup(const std::string& path,
                                              std::uint64_t index) {
  Shard& shard = ShardOf(path, index);
  std::lock_guard lock(shard.mu);
  const auto fileIt = shard.files.find(path);
  if (fileIt == shard.files.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto it = fileIt->second.find(index);
  if (it == fileIt->second.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Entry& e = it->second;
  e.stamp = nextStamp_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.end(), shard.lru, e.lruIt);  // bump to freshest
  hits_.fetch_add(1, std::memory_order_relaxed);
  return e.data;
}

bool BlockCache::Contains(const std::string& path, std::uint64_t index) const {
  const Shard& shard = ShardOf(path, index);
  std::lock_guard lock(shard.mu);
  const auto fileIt = shard.files.find(path);
  return fileIt != shard.files.end() && fileIt->second.count(index) != 0;
}

void BlockCache::Insert(const std::string& path, std::uint64_t index,
                        std::string data, bool pinned) {
  {
    Shard& shard = ShardOf(path, index);
    std::lock_guard lock(shard.mu);
    auto& perFile = shard.files[path];
    const auto it = perFile.find(index);
    if (it != perFile.end()) {
      // Replace in place; recency bumps like a hit.
      Entry& e = it->second;
      usedBytes_.fetch_sub(e.data.size(), std::memory_order_relaxed);
      usedBytes_.fetch_add(data.size(), std::memory_order_relaxed);
      e.data = std::move(data);
      e.stamp = nextStamp_.fetch_add(1, std::memory_order_relaxed);
      if (pinned) ++e.pins;
      shard.lru.splice(shard.lru.end(), shard.lru, e.lruIt);
    } else {
      Entry e;
      e.stamp = nextStamp_.fetch_add(1, std::memory_order_relaxed);
      e.pins = pinned ? 1 : 0;
      usedBytes_.fetch_add(data.size(), std::memory_order_relaxed);
      blockCount_.fetch_add(1, std::memory_order_relaxed);
      shard.lru.push_back(BlockKey{path, index});
      e.lruIt = std::prev(shard.lru.end());
      e.data = std::move(data);
      perFile.emplace(index, std::move(e));
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto high =
      static_cast<std::uint64_t>(config_.highWatermark *
                                 static_cast<double>(config_.capacityBytes));
  if (usedBytes_.load(std::memory_order_relaxed) > high) EvictToLowWatermark();
}

void BlockCache::EvictToLowWatermark() {
  // One sweep at a time: concurrent inserters queue here rather than
  // racing each other over the same victims.
  std::lock_guard evictLock(evictMu_);
  const auto low = static_cast<std::uint64_t>(
      config_.lowWatermark * static_cast<double>(config_.capacityBytes));
  while (usedBytes_.load(std::memory_order_relaxed) > low) {
    // Victim = globally oldest unpinned block: take each shard's oldest
    // unpinned candidate, then the minimum stamp across shards.
    Shard* victimShard = nullptr;
    std::uint64_t victimStamp = 0;
    BlockKey victimKey;
    for (Shard& shard : shards_) {
      std::lock_guard lock(shard.mu);
      for (const BlockKey& key : shard.lru) {
        const Entry& e = shard.files.at(key.path).at(key.index);
        if (e.pins > 0) continue;  // pinned: skip, try the next-oldest
        if (victimShard == nullptr || e.stamp < victimStamp) {
          victimShard = &shard;
          victimStamp = e.stamp;
          victimKey = key;
        }
        break;  // shard's LRU order == stamp order; first unpinned is oldest
      }
    }
    if (victimShard == nullptr) return;  // everything left is pinned
    std::lock_guard lock(victimShard->mu);
    const auto fileIt = victimShard->files.find(victimKey.path);
    if (fileIt == victimShard->files.end()) continue;  // raced with a purge
    const auto it = fileIt->second.find(victimKey.index);
    if (it == fileIt->second.end() || it->second.pins > 0 ||
        it->second.stamp != victimStamp) {
      continue;  // touched between peek and take; re-scan
    }
    usedBytes_.fetch_sub(it->second.data.size(), std::memory_order_relaxed);
    blockCount_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    victimShard->lru.erase(it->second.lruIt);
    fileIt->second.erase(it);
    if (fileIt->second.empty()) victimShard->files.erase(fileIt);
  }
}

bool BlockCache::Pin(const std::string& path, std::uint64_t index) {
  Shard& shard = ShardOf(path, index);
  std::lock_guard lock(shard.mu);
  const auto fileIt = shard.files.find(path);
  if (fileIt == shard.files.end()) return false;
  const auto it = fileIt->second.find(index);
  if (it == fileIt->second.end()) return false;
  ++it->second.pins;
  return true;
}

void BlockCache::Unpin(const std::string& path, std::uint64_t index) {
  Shard& shard = ShardOf(path, index);
  std::lock_guard lock(shard.mu);
  const auto fileIt = shard.files.find(path);
  if (fileIt == shard.files.end()) return;
  const auto it = fileIt->second.find(index);
  if (it == fileIt->second.end()) return;
  if (it->second.pins > 0) --it->second.pins;
}

std::uint64_t BlockCache::Purge(const std::string& path) {
  std::uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    const auto fileIt = shard.files.find(path);
    if (fileIt == shard.files.end()) continue;
    for (auto it = fileIt->second.begin(); it != fileIt->second.end();) {
      if (it->second.pins > 0) {
        ++it;
        continue;
      }
      usedBytes_.fetch_sub(it->second.data.size(), std::memory_order_relaxed);
      blockCount_.fetch_sub(1, std::memory_order_relaxed);
      shard.lru.erase(it->second.lruIt);
      it = fileIt->second.erase(it);
      ++dropped;
    }
    if (fileIt->second.empty()) shard.files.erase(fileIt);
  }
  return dropped;
}

std::uint64_t BlockCache::PurgeAll() {
  std::uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (auto fileIt = shard.files.begin(); fileIt != shard.files.end();) {
      for (auto it = fileIt->second.begin(); it != fileIt->second.end();) {
        if (it->second.pins > 0) {
          ++it;
          continue;
        }
        usedBytes_.fetch_sub(it->second.data.size(), std::memory_order_relaxed);
        blockCount_.fetch_sub(1, std::memory_order_relaxed);
        shard.lru.erase(it->second.lruIt);
        it = fileIt->second.erase(it);
        ++dropped;
      }
      if (fileIt->second.empty()) {
        fileIt = shard.files.erase(fileIt);
      } else {
        ++fileIt;
      }
    }
  }
  return dropped;
}

BlockCacheStats BlockCache::GetStats() const {
  BlockCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.usedBytes = usedBytes_.load(std::memory_order_relaxed);
  s.blockCount = blockCount_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t BlockCache::UsedBytes() const {
  return usedBytes_.load(std::memory_order_relaxed);
}

// --------------------------------------------------------- SingleFlight

std::string SingleFlight::Key(const std::string& path, std::uint64_t index) {
  return path + '\0' + std::to_string(index);
}

bool SingleFlight::Begin(const std::string& path, std::uint64_t index, Waiter waiter) {
  std::lock_guard lock(mu_);
  const auto [it, inserted] = inflight_.try_emplace(Key(path, index));
  it->second.push_back(std::move(waiter));
  if (!inserted) coalesced_.fetch_add(1, std::memory_order_relaxed);
  return inserted;
}

bool SingleFlight::TryOwn(const std::string& path, std::uint64_t index) {
  std::lock_guard lock(mu_);
  return inflight_.try_emplace(Key(path, index)).second;
}

void SingleFlight::Complete(const std::string& path, std::uint64_t index,
                            proto::XrdErr err, const std::string& data) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard lock(mu_);
    const auto it = inflight_.find(Key(path, index));
    if (it == inflight_.end()) return;
    waiters = std::move(it->second);
    inflight_.erase(it);
  }
  for (const Waiter& w : waiters) w(err, data);
}

std::size_t SingleFlight::InFlight() const {
  std::lock_guard lock(mu_);
  return inflight_.size();
}

}  // namespace scalla::pcache

// Two-tier proxy cache: the sharded-LRU DRAM BlockCache layered over a
// local-disk tier backed by any oss::Oss (LocalOss in the daemon, MemOss
// in simulation). The shape follows ScaleStore's DRAM-over-SSD buffer
// manager and XCache's disk-backed proxy, with workload-driven placement:
//
//   - Ghost-list admission (2Q/TinyLFU-style): a first-touch block goes to
//     the DISK tier and leaves a ghost entry; only a block that proves
//     reuse (its key is found in the ghost list, or it is hit on disk)
//     earns a DRAM slot. A sequential scan therefore flows through the
//     disk tier without evicting the DRAM-resident hot set.
//   - Spill-on-evict: DRAM watermark victims are written to disk (via the
//     BlockCache eviction sink) instead of being dropped, so DRAM eviction
//     is a demotion, not data loss.
//   - Promote-on-disk-hit: a disk hit returns the bytes immediately and
//     promotes the block to DRAM.
//   - A block lives in at most ONE tier at a time (admission and promotion
//     erase the disk copy), so a stale disk copy can never shadow a newer
//     DRAM write.
//
// Spill and promotion run asynchronously on a small background worker (any
// sched::Executor) when `asyncTierOps` is set; tests that want a
// deterministic single-threaded oracle run with asyncTierOps=false, which
// applies them inline. Async tasks capture a weak reference to the cache
// internals plus the purge epoch current at capture time, so a task that
// lands after the cache died, or after a purge, drops itself instead of
// resurrecting purged blocks.
//
// Per-file lifecycle stats (first/last access, lookups, reuses, resident
// blocks per tier) feed `scalla_cli cachestat` and the Bellavita-style
// workload studies in the bench.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "oss/oss.h"
#include "pcache/block_cache.h"
#include "sched/executor.h"
#include "util/clock.h"
#include "util/result.h"

namespace scalla::pcache {

struct TieredCacheConfig {
  BlockCacheConfig dram;
  /// 0 disables the disk tier entirely (single-tier legacy behaviour:
  /// every insert goes straight to DRAM, evictions are data loss).
  std::uint64_t diskCapacityBytes = 0;
  double diskHighWatermark = 0.95;  // start evicting disk above this
  double diskLowWatermark = 0.80;   // evict disk down to this
  /// Ghost-list capacity in entries; 0 = auto (4x the DRAM block slots).
  std::size_t ghostEntries = 0;
  /// Run spill/promote on the executor (true) or inline (false).
  bool asyncTierOps = true;
};

/// Range/consistency checks for a tiered config, mirroring
/// net::ValidateFabricOptions: the config loader and the constructor agree
/// on what is legal, and bad directive files fail loudly.
Result<void> ValidateTieredConfig(const TieredCacheConfig& config);

enum class CacheTier : std::uint8_t { kNone = 0, kDram = 1, kDisk = 2 };

struct TieredCacheStats {
  // Combined lookup outcomes (either tier answering counts as a hit).
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  // Per-tier detail.
  BlockCacheStats dram;            // the DRAM tier's own counters
  std::uint64_t dramHits = 0;      // lookups answered from DRAM
  std::uint64_t diskHits = 0;      // lookups answered from disk
  std::uint64_t diskUsedBytes = 0;
  std::uint64_t diskBlockCount = 0;
  std::uint64_t diskEvictions = 0;      // disk watermark victims (data loss)
  std::uint64_t diskWriteFailures = 0;  // spills/inserts the backend refused
  // Placement traffic.
  std::uint64_t admitsDram = 0;  // inserts that earned a DRAM slot
  std::uint64_t admitsDisk = 0;  // first-touch inserts routed to disk
  std::uint64_t spills = 0;      // DRAM victims demoted to disk
  std::uint64_t droppedSpills = 0;  // DRAM victims lost (stale epoch / failure)
  std::uint64_t promotions = 0;     // disk hits promoted to DRAM
  std::uint64_t ghostHits = 0;      // admissions proven by the ghost list
  std::uint64_t filesTracked = 0;   // lifecycle entries
};

/// Lifecycle of one path through the cache (Bellavita et al.'s access
/// metadata: when it arrived, when it was last wanted, how often reuse
/// actually happened, and where its blocks live right now).
struct FileLifecycle {
  TimePoint firstAccess{};
  TimePoint lastAccess{};
  std::uint64_t lookups = 0;
  std::uint64_t reuses = 0;  // lookups answered by either tier
  std::uint64_t dramBlocks = 0;
  std::uint64_t diskBlocks = 0;
};

class TieredBlockCache {
 public:
  struct LookupResult {
    std::optional<std::string> data;
    CacheTier tier = CacheTier::kNone;  // which tier answered (kNone = miss)
  };

  /// `disk` must outlive the cache and is required when
  /// config.diskCapacityBytes > 0. `executor` runs async spill/promote
  /// (may be null when asyncTierOps=false). The config must pass
  /// ValidateTieredConfig.
  TieredBlockCache(const TieredCacheConfig& config, oss::Oss* disk,
                   sched::Executor* executor, util::Clock& clock);
  ~TieredBlockCache();

  TieredBlockCache(const TieredBlockCache&) = delete;
  TieredBlockCache& operator=(const TieredBlockCache&) = delete;

  std::uint32_t BlockSize() const;
  bool DiskEnabled() const;

  /// DRAM, then disk. A disk hit returns the bytes and schedules (or
  /// applies) promotion to DRAM. Both outcomes count toward stats.
  std::optional<std::string> Lookup(const std::string& path, std::uint64_t index);
  LookupResult LookupDetailed(const std::string& path, std::uint64_t index);

  /// Recency- and stats-neutral presence probe across both tiers.
  bool Contains(const std::string& path, std::uint64_t index) const;

  /// Admission-controlled store: DRAM if the block is already DRAM-resident
  /// or proves reuse via the ghost list, else the disk tier. With the disk
  /// tier disabled, behaves exactly like BlockCache::Insert.
  void Insert(const std::string& path, std::uint64_t index, std::string data,
              bool pinned = false);

  /// Pins the block in whichever tier holds it (pinned blocks are never
  /// evicted, spilled over, or purged). Returns false on miss.
  bool Pin(const std::string& path, std::uint64_t index);
  void Unpin(const std::string& path, std::uint64_t index);

  /// Drops every unpinned block of `path` from BOTH tiers (and the ghost
  /// list), and invalidates in-flight spill/promote tasks for it.
  std::uint64_t Purge(const std::string& path);
  std::uint64_t PurgeAll();

  /// Legacy combined view (what the single-tier BlockCache reported):
  /// hits/misses are tier-agnostic lookup outcomes, usedBytes/blockCount
  /// span both tiers, evictions counts true data loss only (a spill to
  /// disk is a demotion, not an eviction).
  BlockCacheStats GetStats() const;
  TieredCacheStats GetTieredStats() const;
  std::uint64_t UsedBytes() const;

  std::optional<FileLifecycle> FileStats(const std::string& path) const;

  /// Spill/promote tasks posted but not yet executed (0 at quiescence;
  /// tests drain on this before asserting exact occupancy).
  std::size_t PendingTierOps() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace scalla::pcache

// ProxyCacheNode: an XCache-style caching proxy in front of a Scalla
// cluster. To clients it speaks the ordinary xrd protocol (open / read /
// readv / stat / close) at a single fabric address; internally it serves
// reads from a block cache and resolves misses through an embedded
// ScallaClient, which brings the full redirect / wait-retry / refresh
// recovery machinery along for free — a staging (MSS) origin file just
// looks like a slow first fetch.
//
// Properties the tests pin down:
//   - a warm hit never touches the cluster (no resolver traffic, no origin
//     fetch): the proxy answers from its own block cache and session table;
//   - concurrent misses on one block coalesce into exactly one origin
//     fetch (SingleFlight);
//   - the cache evicts oldest-first between the high and low watermarks;
//   - sequential demand fetches trigger read-ahead of the next N blocks.
//
// The proxy is read-only: writes and creates are refused with kInvalid
// (production proxy caches front read-mostly analysis traffic; write-through
// is future work, see docs/PCACHE.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/scalla_client.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "pcache/block_cache.h"
#include "pcache/tiered_cache.h"
#include "sched/executor.h"

namespace scalla::pcache {

struct ProxyCacheConfig {
  net::NodeAddr addr = 0;            // the proxy's fabric address
  std::string name = "proxy";
  /// Origin-side client config. `origin.addr` is overwritten with `addr`
  /// (the proxy and its embedded client share one fabric address; request
  /// and response message types are disjoint, so routing is unambiguous).
  client::ClientConfig origin;
  BlockCacheConfig cache;            // the DRAM tier
  /// Disk tier (0 disables): DRAM victims spill here, disk hits promote
  /// back, and first-touch blocks land here until the ghost list proves
  /// reuse. Requires `diskOss`.
  std::uint64_t diskCapacityBytes = 0;
  double diskHighWatermark = 0.95;
  double diskLowWatermark = 0.80;
  std::size_t ghostEntries = 0;      // 0 = auto (4x DRAM block slots)
  /// Backing store for the disk tier (LocalOss in the daemon, MemOss in
  /// simulation). Non-owning; must outlive the proxy.
  oss::Oss* diskOss = nullptr;
  int readAhead = 0;                 // blocks prefetched past a demand miss
  Duration statsTimeout = std::chrono::seconds(2);  // origin QueryStats wait
};

class ProxyCacheNode : public net::MessageSink {
 public:
  ProxyCacheNode(const ProxyCacheConfig& config, sched::Executor& executor,
                 net::Fabric& fabric);

  // net::MessageSink
  void OnMessage(net::NodeAddr from, proto::Message message) override;
  void OnPeerDown(net::NodeAddr peer) override;

  const ProxyCacheConfig& config() const { return config_; }
  TieredBlockCache& cache() { return cache_; }
  SingleFlight& singleFlight() { return singleFlight_; }
  client::ScallaClient& origin() { return origin_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Registry instruments plus cache/coalescing stats under pcache.* names
  /// and the embedded origin client's client.* instruments; answers the
  /// cluster stats protocol with this merged view.
  obs::MetricsSnapshot SnapshotMetrics() const;

 private:
  static constexpr std::uint64_t kUnknownSize = ~std::uint64_t{0};

  /// Per-path origin state, shared by every client handle on that path.
  /// Sessions outlive client closes: the origin handle and learned size
  /// are the proxy's metadata cache, which is what lets a warm open or
  /// read complete without any cluster traffic.
  struct FileSession {
    bool validated = false;   // an origin open has ever succeeded
    bool originOpen = false;  // origin handle currently usable
    bool opening = false;     // origin open in flight
    client::FileRef origin;
    std::uint64_t knownSize = kUnknownSize;
    int refs = 0;             // live client handles on this path
    // Continuations parked on origin-open completion: client open replies
    // and deferred block fetches.
    std::vector<std::function<void(proto::XrdErr)>> awaitingOrigin;
  };

  /// One client read (or one readv segment) being assembled from blocks.
  struct PendingRange {
    std::string path;
    std::uint64_t offset = 0;
    std::uint64_t end = 0;          // clamped exclusive end
    std::uint64_t firstBlock = 0;
    std::vector<std::string> blocks;
    int outstanding = 0;
    proto::XrdErr err = proto::XrdErr::kNone;
    std::function<void(proto::XrdErr, std::string)> done;
  };

  // request handlers (client -> proxy)
  void HandleOpen(net::NodeAddr from, const proto::XrdOpen& m);
  void HandleRead(net::NodeAddr from, const proto::XrdRead& m);
  void HandleReadV(net::NodeAddr from, const proto::XrdReadV& m);
  void HandleClose(net::NodeAddr from, const proto::XrdClose& m);
  void HandleStat(net::NodeAddr from, const proto::XrdStat& m);
  void HandleUnlink(net::NodeAddr from, const proto::XrdUnlink& m);
  void HandleChecksum(net::NodeAddr from, const proto::XrdChecksum& m);
  void HandlePrepare(net::NodeAddr from, const proto::XrdPrepare& m);
  void HandleStatsQuery(net::NodeAddr from, const proto::StatsQuery& m);
  void HandlePcacheAdmin(net::NodeAddr from, const proto::PcacheAdmin& m);

  // origin-side plumbing
  void EnsureOriginOpen(const std::string& path);
  void OnOriginOpen(const std::string& path, const client::OpenOutcome& outcome);
  /// Runs (and clears) a session's parked continuations, then drops the
  /// session if the origin open failed and nothing references it anymore.
  void FlushAwaiting(const std::string& path, proto::XrdErr err);
  /// Resolves [offset, offset+length) through cache + origin; `done` gets
  /// the assembled bytes (possibly short at EOF).
  void GatherRange(const std::string& path, std::uint64_t offset, std::uint32_t length,
                   std::function<void(proto::XrdErr, std::string)> done);
  void OnBlockReady(std::uint64_t rangeId, std::uint64_t blockIdx, proto::XrdErr err,
                    const std::string& data);
  void FinishRange(std::uint64_t rangeId);
  /// Fetch owner path: issues (or defers until origin-open) the one origin
  /// read for a block. demand=false marks read-ahead (no further cascade).
  void StartFetch(const std::string& path, std::uint64_t index, bool demand);
  void DoFetch(const std::string& path, std::uint64_t index, bool demand);
  void OnFetchDone(const std::string& path, std::uint64_t index, bool demand,
                   proto::XrdErr err, std::string data);
  void StartReadAhead(const std::string& path, std::uint64_t fromIndex);
  void LearnSize(const std::string& path, std::uint64_t size);

  ProxyCacheConfig config_;
  sched::Executor& executor_;
  net::Fabric& fabric_;
  TieredBlockCache cache_;
  SingleFlight singleFlight_;
  client::ScallaClient origin_;

  std::unordered_map<std::string, FileSession> sessions_;
  std::unordered_map<std::uint64_t, std::string> handles_;  // client handle -> path
  std::uint64_t nextHandle_ = 1;
  std::unordered_map<std::uint64_t, PendingRange> ranges_;
  std::uint64_t nextRangeId_ = 1;

  // Registry first: references below point into it.
  obs::MetricsRegistry metrics_;
  obs::Counter& opensLocal_;      // pcache.opens_local — warm opens, no cluster traffic
  obs::Counter& originOpens_;     // pcache.origin_opens — resolver round trips
  obs::Counter& originFetches_;   // pcache.origin_fetches — block reads at origin
  obs::Counter& bytesFromCache_;  // pcache.bytes_from_cache (either tier)
  obs::Counter& bytesFromDisk_;   // pcache.bytes_from_disk (disk-tier share)
  obs::Counter& bytesFromOrigin_; // pcache.bytes_from_origin
  obs::Counter& readAheads_;      // pcache.readaheads — prefetches issued
  obs::Counter& readsLocal_;      // pcache.reads_local — client reads served
  obs::Counter& readsWithMiss_;   // pcache.reads_with_miss — reads that touched origin
  obs::Histogram& readLatency_;   // pcache.read_latency
};

}  // namespace scalla::pcache

#include "pcache/tiered_cache.h"

#include <algorithm>
#include <atomic>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace scalla::pcache {

namespace {

/// Name of one block in the disk-tier oss namespace. The index entry is
/// authoritative for the block's size: a rewrite that shrinks a block
/// leaves stale tail bytes in the backing file, and bounding reads by the
/// indexed size keeps them invisible.
std::string DiskBlockPath(const std::string& path, std::uint64_t index) {
  return path + "#b" + std::to_string(index);
}

bool BadWatermarks(double low, double high) {
  return low <= 0 || low > high || high > 1.0;
}

}  // namespace

Result<void> ValidateTieredConfig(const TieredCacheConfig& config) {
  if (config.dram.blockSize == 0) {
    return Result<void>::Err(proto::XrdErr::kInvalid,
                             "pcache.blocksize must be positive");
  }
  if (config.dram.capacityBytes == 0) {
    return Result<void>::Err(proto::XrdErr::kInvalid,
                             "pcache.capacity must be positive");
  }
  if (BadWatermarks(config.dram.lowWatermark, config.dram.highWatermark)) {
    return Result<void>::Err(proto::XrdErr::kInvalid,
                             "pcache watermarks need 0 < lowater <= hiwater <= 1");
  }
  if (config.diskCapacityBytes > 0) {
    if (config.diskCapacityBytes < config.dram.blockSize) {
      return Result<void>::Err(proto::XrdErr::kInvalid,
                               "pcache.disk.capacity must hold at least one block");
    }
    if (BadWatermarks(config.diskLowWatermark, config.diskHighWatermark)) {
      return Result<void>::Err(
          proto::XrdErr::kInvalid,
          "pcache disk watermarks need 0 < lowater <= hiwater <= 1");
    }
  }
  return Result<void>::Ok();
}

// ---------------------------------------------------------------- Impl

/// All mutable state lives here behind a shared_ptr: async spill/promote
/// tasks capture a weak reference, so a task that fires after the cache is
/// destroyed locks nothing and drops itself (no blocking destructor — a
/// sim executor may never run the task at all).
struct TieredBlockCache::Impl : std::enable_shared_from_this<TieredBlockCache::Impl> {
  struct DiskEntry {
    std::uint64_t size = 0;
    std::uint64_t stamp = 0;  // shares the DRAM tier's recency domain
    int pins = 0;
    std::list<BlockKey>::iterator lruIt;
  };
  struct FileState {
    FileLifecycle life;
    std::uint64_t epoch = 0;  // bumped by Purge(path); stale tasks drop
  };
  /// Purge generation captured when a spill/promote is scheduled; the task
  /// re-checks it so a purge between capture and execution wins.
  struct EpochStamp {
    std::uint64_t global = 0;
    std::uint64_t path = 0;
  };

  Impl(const TieredCacheConfig& cfg, oss::Oss* diskOss, sched::Executor* ex,
       util::Clock& clk)
      : config(cfg), disk(diskOss), executor(ex), clock(&clk), dram(cfg.dram) {
    asyncMode = config.asyncTierOps && executor != nullptr && DiskEnabled();
    const std::size_t dramSlots = static_cast<std::size_t>(
        config.dram.capacityBytes / std::max<std::uint32_t>(config.dram.blockSize, 1) + 1);
    ghostCapacity = config.ghostEntries != 0 ? config.ghostEntries : 4 * dramSlots;
  }

  bool DiskEnabled() const { return config.diskCapacityBytes > 0 && disk != nullptr; }

  // ---- tier-op scheduling ------------------------------------------

  void RunTierOp(std::function<void(Impl&)> op) {
    if (!asyncMode) {
      op(*this);
      return;
    }
    pendingOps.fetch_add(1, std::memory_order_acq_rel);
    std::weak_ptr<Impl> weak = weak_from_this();
    executor->Post([weak, op = std::move(op)] {
      auto impl = weak.lock();
      if (!impl) return;
      op(*impl);
      impl->pendingOps.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  EpochStamp SnapshotEpochs(const std::string& path) const {
    EpochStamp e;
    e.global = globalEpoch.load(std::memory_order_acquire);
    std::lock_guard lock(lifeMu);
    const auto it = files.find(path);
    e.path = it == files.end() ? 0 : it->second.epoch;
    return e;
  }

  bool EpochsValid(const std::string& path, const EpochStamp& e) const {
    if (globalEpoch.load(std::memory_order_acquire) != e.global) return false;
    std::lock_guard lock(lifeMu);
    const auto it = files.find(path);
    return (it == files.end() ? 0 : it->second.epoch) == e.path;
  }

  // ---- lifecycle ----------------------------------------------------

  void LifeOnAccess(const std::string& path, bool reuse) {
    const TimePoint now = clock->Now();
    std::lock_guard lock(lifeMu);
    FileState& st = files[path];
    if (st.life.lookups == 0 && st.life.firstAccess == TimePoint{}) {
      st.life.firstAccess = now;
    }
    st.life.lastAccess = now;
    ++st.life.lookups;
    if (reuse) ++st.life.reuses;
  }

  void LifeOnInsert(const std::string& path) {
    const TimePoint now = clock->Now();
    std::lock_guard lock(lifeMu);
    FileState& st = files[path];
    if (st.life.firstAccess == TimePoint{} && st.life.lookups == 0) {
      st.life.firstAccess = now;
    }
    st.life.lastAccess = now;
  }

  // ---- ghost list (admission filter) --------------------------------
  // Keys are DiskBlockPath() strings. Lock order: ghostMu is a leaf —
  // taken alone, or inside diskMu (disk eviction re-arming a key).

  bool GhostConsume(const std::string& key) {
    std::lock_guard lock(ghostMu);
    const auto it = ghostMap.find(key);
    if (it == ghostMap.end()) return false;
    ghostFifo.erase(it->second);
    ghostMap.erase(it);
    return true;
  }

  void GhostRecord(const std::string& key) {
    std::lock_guard lock(ghostMu);
    if (ghostMap.count(key) != 0) return;
    ghostFifo.push_back(key);
    ghostMap.emplace(key, std::prev(ghostFifo.end()));
    while (ghostMap.size() > ghostCapacity) {
      ghostMap.erase(ghostFifo.front());
      ghostFifo.pop_front();
    }
  }

  void GhostDropPath(const std::string& path) {
    const std::string prefix = path + "#b";
    std::lock_guard lock(ghostMu);
    for (auto it = ghostFifo.begin(); it != ghostFifo.end();) {
      if (it->compare(0, prefix.size(), prefix) == 0) {
        ghostMap.erase(*it);
        it = ghostFifo.erase(it);
      } else {
        ++it;
      }
    }
  }

  void GhostClear() {
    std::lock_guard lock(ghostMu);
    ghostFifo.clear();
    ghostMap.clear();
  }

  // ---- disk tier ----------------------------------------------------
  // The in-memory index (sizes, pins, LRU) is authoritative; the oss only
  // holds bytes. All oss calls happen under diskMu, which serializes disk
  // I/O — acceptable because the async worker keeps it off the read path.
  // Lock order: dram's evictMu_ > diskMu > ghostMu; diskMu never wraps a
  // DRAM shard lock.

  /// Writes the block and indexes it. `pins` seeds the entry's pin count
  /// (admission transfers pins when a block changes tier).
  bool DiskInsert(const std::string& path, std::uint64_t index,
                  const std::string& data, int pins) {
    const std::string dpath = DiskBlockPath(path, index);
    std::lock_guard lock(diskMu);
    if (disk->StateOf(dpath) == oss::FileState::kAbsent) {
      if (const auto created = disk->Create(dpath); !created.ok()) {
        diskWriteFailures.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    if (const auto written = disk->Write(dpath, 0, data); !written.ok()) {
      diskWriteFailures.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    auto& perFile = diskFiles[path];
    const auto it = perFile.find(index);
    if (it != perFile.end()) {
      diskUsedBytes += data.size();
      diskUsedBytes -= it->second.size;
      it->second.size = data.size();
      it->second.pins += pins;
      it->second.stamp = nextStamp.fetch_add(1, std::memory_order_relaxed);
      diskLru.splice(diskLru.end(), diskLru, it->second.lruIt);
    } else {
      DiskEntry e;
      e.size = data.size();
      e.pins = pins;
      e.stamp = nextStamp.fetch_add(1, std::memory_order_relaxed);
      diskLru.push_back(BlockKey{path, index});
      e.lruIt = std::prev(diskLru.end());
      perFile.emplace(index, e);
      diskUsedBytes += data.size();
      ++diskBlocks;
    }
    EvictDiskLocked();
    return true;
  }

  /// Removes a block from the disk tier. Returns the entry's pin count
  /// (>= 0) so a tier change can carry pins along, or -1 if not resident.
  int DiskErase(const std::string& path, std::uint64_t index) {
    std::lock_guard lock(diskMu);
    const auto fileIt = diskFiles.find(path);
    if (fileIt == diskFiles.end()) return -1;
    const auto it = fileIt->second.find(index);
    if (it == fileIt->second.end()) return -1;
    const int pins = it->second.pins;
    diskUsedBytes -= it->second.size;
    --diskBlocks;
    diskLru.erase(it->second.lruIt);
    fileIt->second.erase(it);
    if (fileIt->second.empty()) diskFiles.erase(fileIt);
    (void)disk->Unlink(DiskBlockPath(path, index));
    return pins;
  }

  struct DiskHit {
    std::string data;
    bool promotable = false;  // pinned entries stay put (pins live on disk)
  };

  std::optional<DiskHit> DiskLookup(const std::string& path, std::uint64_t index) {
    std::lock_guard lock(diskMu);
    const auto fileIt = diskFiles.find(path);
    if (fileIt == diskFiles.end()) return std::nullopt;
    const auto it = fileIt->second.find(index);
    if (it == fileIt->second.end()) return std::nullopt;
    DiskEntry& e = it->second;
    auto read = disk->Read(DiskBlockPath(path, index), 0,
                           static_cast<std::uint32_t>(e.size));
    if (!read.ok() || read.value().size() != e.size) {
      // Torn or missing backing file: drop the index entry, report a miss
      // (the origin re-fetch repairs it).
      diskUsedBytes -= e.size;
      --diskBlocks;
      diskLru.erase(e.lruIt);
      fileIt->second.erase(it);
      if (fileIt->second.empty()) diskFiles.erase(fileIt);
      return std::nullopt;
    }
    e.stamp = nextStamp.fetch_add(1, std::memory_order_relaxed);
    diskLru.splice(diskLru.end(), diskLru, e.lruIt);
    DiskHit hit;
    hit.data = std::move(read).value();
    hit.promotable = e.pins == 0;
    return hit;
  }

  /// Requires diskMu. Burst-evicts oldest-first between the watermarks;
  /// victims leave a ghost entry so a re-fetch proves reuse and earns DRAM.
  void EvictDiskLocked() {
    const auto high = static_cast<std::uint64_t>(
        config.diskHighWatermark * static_cast<double>(config.diskCapacityBytes));
    if (diskUsedBytes <= high) return;
    const auto low = static_cast<std::uint64_t>(
        config.diskLowWatermark * static_cast<double>(config.diskCapacityBytes));
    auto it = diskLru.begin();
    while (diskUsedBytes > low && it != diskLru.end()) {
      const BlockKey key = *it;
      const auto fileIt = diskFiles.find(key.path);
      DiskEntry& e = fileIt->second.at(key.index);
      if (e.pins > 0) {
        ++it;
        continue;
      }
      ++it;  // advance off the victim before erasing it
      diskUsedBytes -= e.size;
      --diskBlocks;
      diskEvictions.fetch_add(1, std::memory_order_relaxed);
      (void)disk->Unlink(DiskBlockPath(key.path, key.index));
      diskLru.erase(e.lruIt);
      fileIt->second.erase(key.index);
      if (fileIt->second.empty()) diskFiles.erase(fileIt);
      GhostRecord(DiskBlockPath(key.path, key.index));
    }
  }

  std::uint64_t DiskPurge(const std::string& path) {
    std::lock_guard lock(diskMu);
    const auto fileIt = diskFiles.find(path);
    if (fileIt == diskFiles.end()) return 0;
    std::uint64_t dropped = 0;
    for (auto it = fileIt->second.begin(); it != fileIt->second.end();) {
      if (it->second.pins > 0) {
        ++it;
        continue;
      }
      diskUsedBytes -= it->second.size;
      --diskBlocks;
      diskLru.erase(it->second.lruIt);
      (void)disk->Unlink(DiskBlockPath(path, it->first));
      it = fileIt->second.erase(it);
      ++dropped;
    }
    if (fileIt->second.empty()) diskFiles.erase(fileIt);
    return dropped;
  }

  std::uint64_t DiskPurgeAll() {
    std::lock_guard lock(diskMu);
    std::uint64_t dropped = 0;
    for (auto fileIt = diskFiles.begin(); fileIt != diskFiles.end();) {
      for (auto it = fileIt->second.begin(); it != fileIt->second.end();) {
        if (it->second.pins > 0) {
          ++it;
          continue;
        }
        diskUsedBytes -= it->second.size;
        --diskBlocks;
        diskLru.erase(it->second.lruIt);
        (void)disk->Unlink(DiskBlockPath(fileIt->first, it->first));
        it = fileIt->second.erase(it);
        ++dropped;
      }
      if (fileIt->second.empty()) {
        fileIt = diskFiles.erase(fileIt);
      } else {
        ++fileIt;
      }
    }
    return dropped;
  }

  bool DiskContains(const std::string& path, std::uint64_t index) const {
    std::lock_guard lock(diskMu);
    const auto fileIt = diskFiles.find(path);
    return fileIt != diskFiles.end() && fileIt->second.count(index) != 0;
  }

  // ---- tier movement ------------------------------------------------

  /// DRAM watermark victim arriving at the disk tier (the demotion half of
  /// the tier dance). Runs via RunTierOp.
  void Spill(EvictedBlock block, const EpochStamp& epochs) {
    if (!EpochsValid(block.key.path, epochs)) {
      droppedSpills.fetch_add(1, std::memory_order_relaxed);
      return;  // purged since eviction; do not resurrect
    }
    if (dram.Contains(block.key.path, block.key.index)) {
      // Re-inserted into DRAM since eviction: the DRAM copy is newer, and
      // a block lives in one tier only.
      droppedSpills.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (DiskInsert(block.key.path, block.key.index, block.data, /*pins=*/0)) {
      spills.fetch_add(1, std::memory_order_relaxed);
    } else {
      droppedSpills.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Disk hit earning its DRAM slot. Erase-first claims the block: if it
  /// is already gone (purged, evicted, promoted by a racing lookup), the
  /// promotion is stale and drops itself.
  void Promote(const std::string& path, std::uint64_t index, std::string data,
               const EpochStamp& epochs) {
    if (!EpochsValid(path, epochs)) return;
    const int pins = DiskErase(path, index);
    if (pins < 0) return;
    dram.Insert(path, index, std::move(data), /*pinned=*/pins > 0);
    for (int i = 1; i < pins; ++i) dram.Pin(path, index);
    promotions.fetch_add(1, std::memory_order_relaxed);
  }

  TieredCacheConfig config;
  oss::Oss* disk = nullptr;
  sched::Executor* executor = nullptr;
  util::Clock* clock = nullptr;
  bool asyncMode = false;
  BlockCache dram;

  mutable std::mutex diskMu;
  std::unordered_map<std::string, std::map<std::uint64_t, DiskEntry>> diskFiles;
  std::list<BlockKey> diskLru;  // front = oldest
  std::uint64_t diskUsedBytes = 0;
  std::uint64_t diskBlocks = 0;

  mutable std::mutex ghostMu;
  std::list<std::string> ghostFifo;  // front = oldest
  std::unordered_map<std::string, std::list<std::string>::iterator> ghostMap;
  std::size_t ghostCapacity = 0;

  mutable std::mutex lifeMu;
  std::unordered_map<std::string, FileState> files;
  std::atomic<std::uint64_t> globalEpoch{0};

  std::atomic<std::uint64_t> nextStamp{1};
  std::atomic<std::size_t> pendingOps{0};

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> inserts{0};
  std::atomic<std::uint64_t> dramHits{0};
  std::atomic<std::uint64_t> diskHits{0};
  std::atomic<std::uint64_t> diskEvictions{0};
  std::atomic<std::uint64_t> diskWriteFailures{0};
  std::atomic<std::uint64_t> admitsDram{0};
  std::atomic<std::uint64_t> admitsDisk{0};
  std::atomic<std::uint64_t> spills{0};
  std::atomic<std::uint64_t> droppedSpills{0};
  std::atomic<std::uint64_t> promotions{0};
  std::atomic<std::uint64_t> ghostHits{0};
};

// --------------------------------------------------- TieredBlockCache

TieredBlockCache::TieredBlockCache(const TieredCacheConfig& config, oss::Oss* disk,
                                   sched::Executor* executor, util::Clock& clock)
    : impl_(std::make_shared<Impl>(config, disk, executor, clock)) {
  if (impl_->DiskEnabled()) {
    // The sink runs under the DRAM sweep lock (never a shard lock); the
    // raw pointer is safe because the sink lives inside impl_->dram.
    Impl* impl = impl_.get();
    impl_->dram.SetEvictionSink([impl](EvictedBlock block) {
      const Impl::EpochStamp epochs = impl->SnapshotEpochs(block.key.path);
      impl->RunTierOp([block = std::move(block), epochs](Impl& i) mutable {
        i.Spill(std::move(block), epochs);
      });
    });
  }
}

TieredBlockCache::~TieredBlockCache() = default;

std::uint32_t TieredBlockCache::BlockSize() const {
  return impl_->config.dram.blockSize;
}

bool TieredBlockCache::DiskEnabled() const { return impl_->DiskEnabled(); }

std::optional<std::string> TieredBlockCache::Lookup(const std::string& path,
                                                    std::uint64_t index) {
  return LookupDetailed(path, index).data;
}

TieredBlockCache::LookupResult TieredBlockCache::LookupDetailed(
    const std::string& path, std::uint64_t index) {
  Impl& impl = *impl_;
  LookupResult res;
  if (auto hit = impl.dram.Lookup(path, index); hit.has_value()) {
    impl.hits.fetch_add(1, std::memory_order_relaxed);
    impl.dramHits.fetch_add(1, std::memory_order_relaxed);
    impl.LifeOnAccess(path, /*reuse=*/true);
    res.data = std::move(hit);
    res.tier = CacheTier::kDram;
    return res;
  }
  if (impl.DiskEnabled()) {
    // Capture the purge epoch before touching the bytes: a purge landing
    // after this point invalidates the scheduled promotion.
    const Impl::EpochStamp epochs = impl.SnapshotEpochs(path);
    if (auto hit = impl.DiskLookup(path, index); hit.has_value()) {
      impl.hits.fetch_add(1, std::memory_order_relaxed);
      impl.diskHits.fetch_add(1, std::memory_order_relaxed);
      impl.LifeOnAccess(path, /*reuse=*/true);
      res.data = hit->data;
      res.tier = CacheTier::kDisk;
      if (hit->promotable) {
        impl.RunTierOp([path, index, data = std::move(hit->data), epochs](
                           Impl& i) mutable {
          i.Promote(path, index, std::move(data), epochs);
        });
      }
      return res;
    }
  }
  impl.misses.fetch_add(1, std::memory_order_relaxed);
  impl.LifeOnAccess(path, /*reuse=*/false);
  return res;
}

bool TieredBlockCache::Contains(const std::string& path, std::uint64_t index) const {
  if (impl_->dram.Contains(path, index)) return true;
  return impl_->DiskEnabled() && impl_->DiskContains(path, index);
}

void TieredBlockCache::Insert(const std::string& path, std::uint64_t index,
                              std::string data, bool pinned) {
  Impl& impl = *impl_;
  impl.inserts.fetch_add(1, std::memory_order_relaxed);
  impl.LifeOnInsert(path);
  if (!impl.DiskEnabled()) {
    impl.dram.Insert(path, index, std::move(data), pinned);
    return;
  }
  if (impl.dram.Contains(path, index)) {
    // Already DRAM-resident: replace in place (recency bumps like a hit).
    impl.admitsDram.fetch_add(1, std::memory_order_relaxed);
    impl.dram.Insert(path, index, std::move(data), pinned);
    return;
  }
  const std::string ghostKey = DiskBlockPath(path, index);
  const bool provenReuse = impl.GhostConsume(ghostKey);
  const int diskPins = impl.DiskErase(path, index);  // exclusivity: one tier
  if (provenReuse || diskPins >= 0) {
    // The key has history (ghost entry, or a disk-resident copy being
    // replaced): it earned a DRAM slot.
    if (provenReuse) impl.ghostHits.fetch_add(1, std::memory_order_relaxed);
    impl.admitsDram.fetch_add(1, std::memory_order_relaxed);
    impl.dram.Insert(path, index, std::move(data), pinned || diskPins > 0);
    // The block's pins follow it across the tier change: the entry must
    // end up with (pinned ? 1 : 0) + diskPins pins, of which Insert's
    // pinned flag already granted one.
    int extra = (pinned ? 1 : 0) + std::max(diskPins, 0);
    if (pinned || diskPins > 0) extra -= 1;
    for (int i = 0; i < extra; ++i) impl.dram.Pin(path, index);
    return;
  }
  // First touch: route to the disk tier and remember the key, so the next
  // insert of this block proves reuse. Scans flow through disk.
  impl.admitsDisk.fetch_add(1, std::memory_order_relaxed);
  if (!impl.DiskInsert(path, index, data, pinned ? 1 : 0)) {
    // Backend refused the write: fall back to DRAM rather than lose a
    // block the proxy may hold pinned mid-fetch.
    impl.dram.Insert(path, index, std::move(data), pinned);
    return;
  }
  impl.GhostRecord(ghostKey);
}

bool TieredBlockCache::Pin(const std::string& path, std::uint64_t index) {
  Impl& impl = *impl_;
  if (impl.dram.Pin(path, index)) return true;
  if (!impl.DiskEnabled()) return false;
  std::lock_guard lock(impl.diskMu);
  const auto fileIt = impl.diskFiles.find(path);
  if (fileIt == impl.diskFiles.end()) return false;
  const auto it = fileIt->second.find(index);
  if (it == fileIt->second.end()) return false;
  ++it->second.pins;
  return true;
}

void TieredBlockCache::Unpin(const std::string& path, std::uint64_t index) {
  Impl& impl = *impl_;
  if (impl.dram.Contains(path, index)) {
    impl.dram.Unpin(path, index);
    return;
  }
  if (!impl.DiskEnabled()) return;
  std::lock_guard lock(impl.diskMu);
  const auto fileIt = impl.diskFiles.find(path);
  if (fileIt == impl.diskFiles.end()) return;
  const auto it = fileIt->second.find(index);
  if (it == fileIt->second.end()) return;
  if (it->second.pins > 0) --it->second.pins;
}

std::uint64_t TieredBlockCache::Purge(const std::string& path) {
  Impl& impl = *impl_;
  {
    // Invalidate in-flight spill/promote tasks for this path. Only bump an
    // existing entry: resident blocks imply a lifecycle entry, so a purge
    // of an unknown path has nothing in flight to invalidate.
    std::lock_guard lock(impl.lifeMu);
    const auto it = impl.files.find(path);
    if (it != impl.files.end()) ++it->second.epoch;
  }
  std::uint64_t dropped = impl.dram.Purge(path);
  if (impl.DiskEnabled()) {
    dropped += impl.DiskPurge(path);
    impl.GhostDropPath(path);
  }
  return dropped;
}

std::uint64_t TieredBlockCache::PurgeAll() {
  Impl& impl = *impl_;
  impl.globalEpoch.fetch_add(1, std::memory_order_acq_rel);
  std::uint64_t dropped = impl.dram.PurgeAll();
  if (impl.DiskEnabled()) {
    dropped += impl.DiskPurgeAll();
    impl.GhostClear();
  }
  return dropped;
}

BlockCacheStats TieredBlockCache::GetStats() const {
  const TieredCacheStats t = GetTieredStats();
  BlockCacheStats s;
  s.hits = t.hits;
  s.misses = t.misses;
  s.inserts = t.inserts;
  s.usedBytes = t.dram.usedBytes + t.diskUsedBytes;
  s.blockCount = t.dram.blockCount + t.diskBlockCount;
  // Evictions = true data loss. With the disk tier on, a DRAM eviction is
  // a demotion; loss happens at disk eviction or when a spill is dropped.
  s.evictions = impl_->DiskEnabled() ? t.diskEvictions + t.droppedSpills
                                     : t.dram.evictions;
  return s;
}

TieredCacheStats TieredBlockCache::GetTieredStats() const {
  const Impl& impl = *impl_;
  TieredCacheStats t;
  t.dram = impl.dram.GetStats();
  t.hits = impl.hits.load(std::memory_order_relaxed);
  t.misses = impl.misses.load(std::memory_order_relaxed);
  t.inserts = impl.inserts.load(std::memory_order_relaxed);
  t.dramHits = impl.dramHits.load(std::memory_order_relaxed);
  t.diskHits = impl.diskHits.load(std::memory_order_relaxed);
  t.diskEvictions = impl.diskEvictions.load(std::memory_order_relaxed);
  t.diskWriteFailures = impl.diskWriteFailures.load(std::memory_order_relaxed);
  t.admitsDram = impl.admitsDram.load(std::memory_order_relaxed);
  t.admitsDisk = impl.admitsDisk.load(std::memory_order_relaxed);
  t.spills = impl.spills.load(std::memory_order_relaxed);
  t.droppedSpills = impl.droppedSpills.load(std::memory_order_relaxed);
  t.promotions = impl.promotions.load(std::memory_order_relaxed);
  t.ghostHits = impl.ghostHits.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(impl.diskMu);
    t.diskUsedBytes = impl.diskUsedBytes;
    t.diskBlockCount = impl.diskBlocks;
  }
  {
    std::lock_guard lock(impl.lifeMu);
    t.filesTracked = impl.files.size();
  }
  return t;
}

std::uint64_t TieredBlockCache::UsedBytes() const {
  std::uint64_t bytes = impl_->dram.UsedBytes();
  std::lock_guard lock(impl_->diskMu);
  return bytes + impl_->diskUsedBytes;
}

std::optional<FileLifecycle> TieredBlockCache::FileStats(
    const std::string& path) const {
  const Impl& impl = *impl_;
  FileLifecycle life;
  {
    std::lock_guard lock(impl.lifeMu);
    const auto it = impl.files.find(path);
    if (it == impl.files.end()) return std::nullopt;
    life = it->second.life;
  }
  life.dramBlocks = impl.dram.CountBlocks(path);
  {
    std::lock_guard lock(impl.diskMu);
    const auto it = impl.diskFiles.find(path);
    life.diskBlocks = it == impl.diskFiles.end() ? 0 : it->second.size();
  }
  return life;
}

std::size_t TieredBlockCache::PendingTierOps() const {
  return impl_->pendingOps.load(std::memory_order_acquire);
}

}  // namespace scalla::pcache

#include "pcache/proxy_node.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace scalla::pcache {

namespace {

client::ClientConfig OriginConfig(const ProxyCacheConfig& config) {
  client::ClientConfig origin = config.origin;
  origin.addr = config.addr;  // proxy and embedded client share one address
  return origin;
}

TieredCacheConfig TieredConfig(const ProxyCacheConfig& config) {
  TieredCacheConfig tiered;
  tiered.dram = config.cache;
  tiered.diskCapacityBytes = config.diskOss != nullptr ? config.diskCapacityBytes : 0;
  tiered.diskHighWatermark = config.diskHighWatermark;
  tiered.diskLowWatermark = config.diskLowWatermark;
  tiered.ghostEntries = config.ghostEntries;
  return tiered;
}

}  // namespace

ProxyCacheNode::ProxyCacheNode(const ProxyCacheConfig& config,
                               sched::Executor& executor, net::Fabric& fabric)
    : config_(config),
      executor_(executor),
      fabric_(fabric),
      cache_(TieredConfig(config), config.diskOss, &executor, executor.clock()),
      origin_(OriginConfig(config), executor, fabric),
      opensLocal_(metrics_.GetCounter("pcache.opens_local")),
      originOpens_(metrics_.GetCounter("pcache.origin_opens")),
      originFetches_(metrics_.GetCounter("pcache.origin_fetches")),
      bytesFromCache_(metrics_.GetCounter("pcache.bytes_from_cache")),
      bytesFromDisk_(metrics_.GetCounter("pcache.bytes_from_disk")),
      bytesFromOrigin_(metrics_.GetCounter("pcache.bytes_from_origin")),
      readAheads_(metrics_.GetCounter("pcache.readaheads")),
      readsLocal_(metrics_.GetCounter("pcache.reads_local")),
      readsWithMiss_(metrics_.GetCounter("pcache.reads_with_miss")),
      readLatency_(metrics_.GetHistogram("pcache.read_latency")) {
  config_.origin.addr = config_.addr;
}

void ProxyCacheNode::OnMessage(net::NodeAddr from, proto::Message message) {
  std::visit(
      [&](auto&& m) {
        using M = std::decay_t<decltype(m)>;
        // Requests a client aims at the proxy.
        if constexpr (std::is_same_v<M, proto::XrdOpen>) {
          HandleOpen(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdRead>) {
          HandleRead(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdReadV>) {
          HandleReadV(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdClose>) {
          HandleClose(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdStat>) {
          HandleStat(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdUnlink>) {
          HandleUnlink(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdChecksum>) {
          HandleChecksum(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdPrepare>) {
          HandlePrepare(from, m);
        } else if constexpr (std::is_same_v<M, proto::StatsQuery>) {
          HandleStatsQuery(from, m);
        } else if constexpr (std::is_same_v<M, proto::PcacheAdmin>) {
          HandlePcacheAdmin(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdWrite>) {
          proto::XrdWriteResp resp;
          resp.reqId = m.reqId;
          resp.err = proto::XrdErr::kInvalid;  // the proxy tier is read-only
          fabric_.Send(config_.addr, from, std::move(resp));
        } else if constexpr (std::is_same_v<M, proto::XrdOpenResp> ||
                             std::is_same_v<M, proto::XrdReadResp> ||
                             std::is_same_v<M, proto::XrdReadVResp> ||
                             std::is_same_v<M, proto::XrdWriteResp> ||
                             std::is_same_v<M, proto::XrdCloseResp> ||
                             std::is_same_v<M, proto::XrdStatResp> ||
                             std::is_same_v<M, proto::XrdUnlinkResp> ||
                             std::is_same_v<M, proto::XrdPrepareResp> ||
                             std::is_same_v<M, proto::XrdChecksumResp> ||
                             std::is_same_v<M, proto::CnsListResp> ||
                             std::is_same_v<M, proto::StatsReply>) {
          // Origin-side responses belong to the embedded client.
          origin_.OnMessage(from, std::forward<decltype(m)>(m));
        }
        // Everything else (cms frames, stray PcacheAdminResp) is ignored;
        // the proxy is not a cluster member.
      },
      std::move(message));
}

void ProxyCacheNode::OnPeerDown(net::NodeAddr peer) {
  origin_.OnPeerDown(peer);
  for (auto& [path, session] : sessions_) {
    if (session.originOpen && session.origin.node == peer) {
      // Keep the session (size and cached blocks stay valid); the next
      // miss re-opens at the head with the usual recovery machinery.
      session.originOpen = false;
    }
  }
}

// ------------------------------------------------------------- open path

void ProxyCacheNode::HandleOpen(net::NodeAddr from, const proto::XrdOpen& m) {
  proto::XrdOpenResp resp;
  resp.reqId = m.reqId;
  if (m.create || m.mode == static_cast<std::uint8_t>(cms::AccessMode::kWrite)) {
    resp.status = proto::XrdStatus::kError;
    resp.err = proto::XrdErr::kInvalid;
    resp.message = "pcache proxy is read-only";
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  FileSession& session = sessions_[m.path];
  if (session.validated) {
    // Warm open: the path is known good; answer without cluster traffic.
    const std::uint64_t handle = nextHandle_++;
    handles_[handle] = m.path;
    ++session.refs;
    opensLocal_.Inc();
    resp.status = proto::XrdStatus::kOk;
    resp.fileHandle = handle;
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  const std::string path = m.path;
  const std::uint64_t reqId = m.reqId;
  session.awaitingOrigin.push_back([this, from, reqId, path](proto::XrdErr err) {
    proto::XrdOpenResp r;
    r.reqId = reqId;
    if (err == proto::XrdErr::kNone) {
      const std::uint64_t handle = nextHandle_++;
      handles_[handle] = path;
      ++sessions_[path].refs;
      r.status = proto::XrdStatus::kOk;
      r.fileHandle = handle;
    } else {
      r.status = proto::XrdStatus::kError;
      r.err = err;
    }
    fabric_.Send(config_.addr, from, std::move(r));
  });
  EnsureOriginOpen(path);
}

void ProxyCacheNode::EnsureOriginOpen(const std::string& path) {
  FileSession& session = sessions_[path];
  if (session.opening) return;
  session.opening = true;
  originOpens_.Inc();
  origin_.Open(path, cms::AccessMode::kRead, /*create=*/false,
               [this, path](const client::OpenOutcome& outcome) {
                 OnOriginOpen(path, outcome);
               });
}

void ProxyCacheNode::OnOriginOpen(const std::string& path,
                                  const client::OpenOutcome& outcome) {
  const auto it = sessions_.find(path);
  if (it == sessions_.end()) return;  // purged while the open was in flight
  FileSession& session = it->second;
  if (outcome.err != proto::XrdErr::kNone) {
    session.opening = false;
    FlushAwaiting(path, outcome.err);
    return;
  }
  session.origin = outcome.file;
  session.originOpen = true;
  if (session.validated) {
    // Re-open after the origin server died: the learned size and cached
    // blocks are still good, so admit the parked work immediately.
    session.opening = false;
    FlushAwaiting(path, proto::XrdErr::kNone);
    return;
  }
  // First contact: learn the size (one stat) before admitting readers, so
  // every range is clamped to EOF and a cold read of a small file never
  // sprays fetches across the whole requested window. `opening` stays set
  // so new opens keep parking instead of re-issuing.
  origin_.Stat(path, [this, path](proto::XrdErr err, std::uint64_t size) {
    const auto sit = sessions_.find(path);
    if (sit == sessions_.end()) return;
    sit->second.opening = false;
    sit->second.validated = true;  // the open itself succeeded
    if (err == proto::XrdErr::kNone) LearnSize(path, size);
    FlushAwaiting(path, proto::XrdErr::kNone);
  });
}

void ProxyCacheNode::FlushAwaiting(const std::string& path, proto::XrdErr err) {
  auto it = sessions_.find(path);
  if (it == sessions_.end()) return;
  std::vector<std::function<void(proto::XrdErr)>> waiters;
  waiters.swap(it->second.awaitingOrigin);
  for (const auto& w : waiters) w(err);
  // Re-check: a waiter may have touched the map (e.g. a fetch re-queued
  // behind a fresh open attempt after a failure).
  it = sessions_.find(path);
  if (it != sessions_.end() && !it->second.validated && it->second.refs == 0 &&
      it->second.awaitingOrigin.empty() && !it->second.opening) {
    sessions_.erase(it);
  }
}

// ------------------------------------------------------------- read path

void ProxyCacheNode::HandleRead(net::NodeAddr from, const proto::XrdRead& m) {
  const auto it = handles_.find(m.fileHandle);
  if (it == handles_.end()) {
    proto::XrdReadResp resp;
    resp.reqId = m.reqId;
    resp.err = proto::XrdErr::kInvalid;
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  readsLocal_.Inc();
  const TimePoint start = executor_.clock().Now();
  const std::uint64_t reqId = m.reqId;
  GatherRange(it->second, m.offset, m.length,
              [this, from, reqId, start](proto::XrdErr err, std::string data) {
                readLatency_.Record(executor_.clock().Now() - start);
                proto::XrdReadResp resp;
                resp.reqId = reqId;
                resp.err = err;
                resp.data = std::move(data);
                fabric_.Send(config_.addr, from, std::move(resp));
              });
}

void ProxyCacheNode::HandleReadV(net::NodeAddr from, const proto::XrdReadV& m) {
  proto::XrdReadVResp resp;
  resp.reqId = m.reqId;
  const auto it = handles_.find(m.fileHandle);
  if (it == handles_.end()) {
    resp.err = proto::XrdErr::kInvalid;
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  if (m.segments.empty()) {
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  readsLocal_.Inc();
  // Each segment gathers independently; the last one to land replies.
  struct VectorRead {
    std::uint64_t reqId = 0;
    net::NodeAddr from = 0;
    std::vector<std::string> chunks;
    std::size_t outstanding = 0;
    proto::XrdErr err = proto::XrdErr::kNone;
  };
  auto state = std::make_shared<VectorRead>();
  state->reqId = m.reqId;
  state->from = from;
  state->chunks.resize(m.segments.size());
  state->outstanding = m.segments.size();
  const std::string& path = it->second;
  for (std::size_t i = 0; i < m.segments.size(); ++i) {
    GatherRange(path, m.segments[i].offset, m.segments[i].length,
                [this, state, i](proto::XrdErr err, std::string data) {
                  if (err != proto::XrdErr::kNone && state->err == proto::XrdErr::kNone) {
                    state->err = err;
                  }
                  state->chunks[i] = std::move(data);
                  if (--state->outstanding > 0) return;
                  proto::XrdReadVResp r;
                  r.reqId = state->reqId;
                  r.err = state->err;
                  if (state->err == proto::XrdErr::kNone) {
                    r.chunks = std::move(state->chunks);
                  }
                  fabric_.Send(config_.addr, state->from, std::move(r));
                });
  }
}

void ProxyCacheNode::GatherRange(const std::string& path, std::uint64_t offset,
                                 std::uint32_t length,
                                 std::function<void(proto::XrdErr, std::string)> done) {
  const std::uint32_t bs = cache_.BlockSize();
  const auto sessionIt = sessions_.find(path);
  if (sessionIt == sessions_.end() || !sessionIt->second.validated) {
    done(proto::XrdErr::kInvalid, {});
    return;
  }
  std::uint64_t end = offset + length;
  const std::uint64_t knownSize = sessionIt->second.knownSize;
  if (knownSize != kUnknownSize) end = std::min(end, knownSize);
  if (end <= offset || length == 0) {
    done(proto::XrdErr::kNone, {});  // at/past EOF
    return;
  }
  const std::uint64_t first = offset / bs;
  const std::uint64_t last = (end - 1) / bs;

  const std::uint64_t rangeId = nextRangeId_++;
  PendingRange& range = ranges_[rangeId];
  range.path = path;
  range.offset = offset;
  range.end = end;
  range.firstBlock = first;
  range.blocks.resize(static_cast<std::size_t>(last - first + 1));
  range.outstanding = static_cast<int>(range.blocks.size());
  range.done = std::move(done);

  bool missed = false;
  for (std::uint64_t idx = first; idx <= last; ++idx) {
    TieredBlockCache::LookupResult hit = cache_.LookupDetailed(path, idx);
    if (hit.data.has_value()) {
      bytesFromCache_.Inc(hit.data->size());
      if (hit.tier == CacheTier::kDisk) bytesFromDisk_.Inc(hit.data->size());
      range.blocks[static_cast<std::size_t>(idx - first)] = std::move(*hit.data);
      --range.outstanding;
      continue;
    }
    missed = true;
    const bool owner = singleFlight_.Begin(
        path, idx, [this, rangeId, idx](proto::XrdErr err, const std::string& data) {
          OnBlockReady(rangeId, idx, err, data);
        });
    if (owner) StartFetch(path, idx, /*demand=*/true);
  }
  if (missed) readsWithMiss_.Inc();
  if (ranges_.at(rangeId).outstanding == 0) FinishRange(rangeId);
}

void ProxyCacheNode::OnBlockReady(std::uint64_t rangeId, std::uint64_t blockIdx,
                                  proto::XrdErr err, const std::string& data) {
  const auto it = ranges_.find(rangeId);
  if (it == ranges_.end()) return;
  PendingRange& range = it->second;
  if (err != proto::XrdErr::kNone && range.err == proto::XrdErr::kNone) range.err = err;
  range.blocks[static_cast<std::size_t>(blockIdx - range.firstBlock)] = data;
  if (--range.outstanding == 0) FinishRange(rangeId);
}

void ProxyCacheNode::FinishRange(std::uint64_t rangeId) {
  auto node = ranges_.extract(rangeId);
  PendingRange& range = node.mapped();
  if (range.err != proto::XrdErr::kNone) {
    range.done(range.err, {});
    return;
  }
  const std::uint32_t bs = cache_.BlockSize();
  std::string out;
  out.reserve(static_cast<std::size_t>(range.end - range.offset));
  for (std::size_t i = 0; i < range.blocks.size(); ++i) {
    const std::string& block = range.blocks[i];
    const std::uint64_t blockStart = (range.firstBlock + i) * bs;
    const std::uint64_t segStart = std::max(range.offset, blockStart);
    const std::uint64_t segEnd = std::min(range.end, blockStart + block.size());
    if (segEnd > segStart) {
      out.append(block, static_cast<std::size_t>(segStart - blockStart),
                 static_cast<std::size_t>(segEnd - segStart));
    }
    if (block.size() < bs) break;  // EOF inside this block
  }
  range.done(proto::XrdErr::kNone, std::move(out));
}

// ------------------------------------------------------------ fetch path

void ProxyCacheNode::StartFetch(const std::string& path, std::uint64_t index,
                                bool demand) {
  FileSession& session = sessions_[path];
  if (!session.originOpen) {
    // Origin handle missing (first touch, or origin server died): park the
    // fetch behind an origin open.
    session.awaitingOrigin.push_back([this, path, index, demand](proto::XrdErr err) {
      if (err != proto::XrdErr::kNone) {
        singleFlight_.Complete(path, index, err, {});
        return;
      }
      DoFetch(path, index, demand);
    });
    EnsureOriginOpen(path);
    return;
  }
  DoFetch(path, index, demand);
}

void ProxyCacheNode::DoFetch(const std::string& path, std::uint64_t index, bool demand) {
  const std::uint32_t bs = cache_.BlockSize();
  originFetches_.Inc();
  origin_.Read(sessions_[path].origin, index * bs, bs,
               [this, path, index, demand](proto::XrdErr err, std::string data) {
                 OnFetchDone(path, index, demand, err, std::move(data));
               });
}

void ProxyCacheNode::OnFetchDone(const std::string& path, std::uint64_t index,
                                 bool demand, proto::XrdErr err, std::string data) {
  const std::uint32_t bs = cache_.BlockSize();
  if (err != proto::XrdErr::kNone) {
    singleFlight_.Complete(path, index, err, {});
    return;
  }
  bytesFromOrigin_.Inc(data.size());
  const bool fullBlock = data.size() == bs;
  if (!fullBlock) LearnSize(path, index * bs + data.size());
  if (!data.empty()) {
    // Pin across Complete so the insert's own eviction sweep (and any
    // insert a waiter triggers) cannot victimize this block first.
    cache_.Insert(path, index, data, /*pinned=*/true);
    singleFlight_.Complete(path, index, proto::XrdErr::kNone, data);
    cache_.Unpin(path, index);
  } else {
    singleFlight_.Complete(path, index, proto::XrdErr::kNone, data);
  }
  if (demand && fullBlock && config_.readAhead > 0) {
    StartReadAhead(path, index + 1);
  }
}

void ProxyCacheNode::StartReadAhead(const std::string& path, std::uint64_t fromIndex) {
  const std::uint32_t bs = cache_.BlockSize();
  const auto it = sessions_.find(path);
  if (it == sessions_.end()) return;
  const std::uint64_t knownSize = it->second.knownSize;
  for (int k = 0; k < config_.readAhead; ++k) {
    const std::uint64_t idx = fromIndex + static_cast<std::uint64_t>(k);
    if (knownSize != kUnknownSize && idx * bs >= knownSize) break;
    if (cache_.Contains(path, idx)) continue;
    if (!singleFlight_.TryOwn(path, idx)) continue;  // demand fetch already racing
    readAheads_.Inc();
    StartFetch(path, idx, /*demand=*/false);
  }
}

void ProxyCacheNode::LearnSize(const std::string& path, std::uint64_t size) {
  const auto it = sessions_.find(path);
  if (it == sessions_.end()) return;
  if (it->second.knownSize == kUnknownSize || size < it->second.knownSize) {
    it->second.knownSize = size;
  }
}

// ------------------------------------------------------- metadata + admin

void ProxyCacheNode::HandleClose(net::NodeAddr from, const proto::XrdClose& m) {
  proto::XrdCloseResp resp;
  resp.reqId = m.reqId;
  const auto it = handles_.find(m.fileHandle);
  if (it == handles_.end()) {
    resp.err = proto::XrdErr::kInvalid;
  } else {
    const auto sessionIt = sessions_.find(it->second);
    if (sessionIt != sessions_.end() && sessionIt->second.refs > 0) {
      --sessionIt->second.refs;
    }
    // The origin handle stays open: the session is the proxy's metadata
    // cache, so the next open on this path is warm.
    handles_.erase(it);
  }
  fabric_.Send(config_.addr, from, std::move(resp));
}

void ProxyCacheNode::HandleStat(net::NodeAddr from, const proto::XrdStat& m) {
  const auto it = sessions_.find(m.path);
  if (it != sessions_.end() && it->second.knownSize != kUnknownSize) {
    proto::XrdStatResp resp;
    resp.reqId = m.reqId;
    resp.status = proto::XrdStatus::kOk;
    resp.size = it->second.knownSize;
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  const std::uint64_t reqId = m.reqId;
  const std::string path = m.path;
  origin_.Stat(path, [this, from, reqId, path](proto::XrdErr err, std::uint64_t size) {
    if (err == proto::XrdErr::kNone) LearnSize(path, size);
    proto::XrdStatResp resp;
    resp.reqId = reqId;
    resp.status = err == proto::XrdErr::kNone ? proto::XrdStatus::kOk
                                              : proto::XrdStatus::kError;
    resp.err = err;
    resp.size = size;
    fabric_.Send(config_.addr, from, std::move(resp));
  });
}

void ProxyCacheNode::HandleUnlink(net::NodeAddr from, const proto::XrdUnlink& m) {
  const std::uint64_t reqId = m.reqId;
  const std::string path = m.path;
  origin_.Unlink(path, [this, from, reqId, path](proto::XrdErr err) {
    if (err == proto::XrdErr::kNone) {
      (void)cache_.Purge(path);
      sessions_.erase(path);  // stale handles on it now answer kInvalid
    }
    proto::XrdUnlinkResp resp;
    resp.reqId = reqId;
    resp.status = err == proto::XrdErr::kNone ? proto::XrdStatus::kOk
                                              : proto::XrdStatus::kError;
    resp.err = err;
    fabric_.Send(config_.addr, from, std::move(resp));
  });
}

void ProxyCacheNode::HandleChecksum(net::NodeAddr from, const proto::XrdChecksum& m) {
  const std::uint64_t reqId = m.reqId;
  origin_.Checksum(m.path, [this, from, reqId](proto::XrdErr err, std::uint32_t crc) {
    proto::XrdChecksumResp resp;
    resp.reqId = reqId;
    resp.status = err == proto::XrdErr::kNone ? proto::XrdStatus::kOk
                                              : proto::XrdStatus::kError;
    resp.err = err;
    resp.crc32 = crc;
    fabric_.Send(config_.addr, from, std::move(resp));
  });
}

void ProxyCacheNode::HandlePrepare(net::NodeAddr from, const proto::XrdPrepare& m) {
  const std::uint64_t reqId = m.reqId;
  const auto mode = static_cast<cms::AccessMode>(m.mode);
  origin_.Prepare(m.paths, mode, [this, from, reqId](proto::XrdErr err) {
    proto::XrdPrepareResp resp;
    resp.reqId = reqId;
    resp.err = err;
    fabric_.Send(config_.addr, from, std::move(resp));
  });
}

void ProxyCacheNode::HandleStatsQuery(net::NodeAddr from, const proto::StatsQuery& m) {
  const std::uint64_t reqId = m.reqId;
  origin_.QueryStats(
      [this, from, reqId](const client::ScallaClient::ClusterStats& cs) {
        proto::StatsReply reply;
        reply.reqId = reqId;
        reply.snapshot = SnapshotMetrics();
        reply.nodeCount = 1;
        if (cs.ok) {
          reply.snapshot.Merge(cs.snapshot);
          reply.nodeCount += cs.nodeCount;
        }
        fabric_.Send(config_.addr, from, std::move(reply));
      },
      config_.statsTimeout);
}

void ProxyCacheNode::HandlePcacheAdmin(net::NodeAddr from, const proto::PcacheAdmin& m) {
  proto::PcacheAdminResp resp;
  resp.reqId = m.reqId;
  switch (m.op) {
    case proto::PcacheAdminOp::kStat:
      break;
    case proto::PcacheAdminOp::kPurgePath:
      resp.blocksPurged = cache_.Purge(m.path);
      break;
    case proto::PcacheAdminOp::kPurgeAll:
      resp.blocksPurged = cache_.PurgeAll();
      break;
  }
  const TieredCacheStats stats = cache_.GetTieredStats();
  resp.usedBytes = stats.dram.usedBytes + stats.diskUsedBytes;
  resp.blockCount = stats.dram.blockCount + stats.diskBlockCount;
  resp.dramUsedBytes = stats.dram.usedBytes;
  resp.dramBlockCount = stats.dram.blockCount;
  resp.diskUsedBytes = stats.diskUsedBytes;
  resp.diskBlockCount = stats.diskBlockCount;
  fabric_.Send(config_.addr, from, std::move(resp));
}

obs::MetricsSnapshot ProxyCacheNode::SnapshotMetrics() const {
  obs::MetricsSnapshot snap = metrics_.Snapshot();
  const BlockCacheStats stats = cache_.GetStats();
  const TieredCacheStats tiered = cache_.GetTieredStats();
  snap.AddCounter("pcache.hits", stats.hits);
  snap.AddCounter("pcache.misses", stats.misses);
  snap.AddCounter("pcache.inserts", stats.inserts);
  snap.AddCounter("pcache.evictions", stats.evictions);
  snap.AddCounter("pcache.coalesced", singleFlight_.Coalesced());
  snap.AddGauge("pcache.used_bytes", static_cast<std::int64_t>(stats.usedBytes));
  snap.AddGauge("pcache.blocks", static_cast<std::int64_t>(stats.blockCount));
  // Per-tier detail (DRAM vs disk) plus the placement traffic between the
  // tiers: admissions, spills, promotions, and ghost-list admission proofs.
  snap.AddCounter("pcache.dram.hits", tiered.dramHits);
  snap.AddCounter("pcache.dram.evictions", tiered.dram.evictions);
  snap.AddGauge("pcache.dram.used_bytes",
                static_cast<std::int64_t>(tiered.dram.usedBytes));
  snap.AddGauge("pcache.dram.blocks",
                static_cast<std::int64_t>(tiered.dram.blockCount));
  snap.AddCounter("pcache.disk.hits", tiered.diskHits);
  snap.AddCounter("pcache.disk.evictions", tiered.diskEvictions);
  snap.AddCounter("pcache.disk.write_failures", tiered.diskWriteFailures);
  snap.AddGauge("pcache.disk.used_bytes",
                static_cast<std::int64_t>(tiered.diskUsedBytes));
  snap.AddGauge("pcache.disk.blocks",
                static_cast<std::int64_t>(tiered.diskBlockCount));
  snap.AddCounter("pcache.admits_dram", tiered.admitsDram);
  snap.AddCounter("pcache.admits_disk", tiered.admitsDisk);
  snap.AddCounter("pcache.spills", tiered.spills);
  snap.AddCounter("pcache.dropped_spills", tiered.droppedSpills);
  snap.AddCounter("pcache.promotions", tiered.promotions);
  snap.AddCounter("pcache.ghost_hits", tiered.ghostHits);
  snap.AddGauge("pcache.files_tracked",
                static_cast<std::int64_t>(tiered.filesTracked));
  // The embedded client's instruments show the proxy's cluster-facing
  // behaviour (redirects followed, recoveries, open latency).
  snap.Merge(origin_.SnapshotMetrics());
  snap.AddCounter("node.count", 1);
  return snap;
}

}  // namespace scalla::pcache

// Minimal aggregate query language for the Qserv demonstration. The paper
// uses MySQL as the per-node engine; the queries Qserv shards are
// partition-local scans whose partials a master combines, which this
// grammar captures:
//
//   COUNT | SUM <field> | MIN <field> | MAX <field> | AVG <field>
//     [ WHERE <field> BETWEEN <lo> AND <hi> ]
//   GET <objectId>
//
// with <field> in {ra, dec, mag, id}. Workers return a partial
// "<sum> <count> <min> <max>" for aggregates; GET returns the row itself
// and supports the paper's "quick retrieval (retrieve all facts for a
// single object)" access mode — the master routes it to exactly one
// chunk via the director index.
#pragma once

#include <optional>
#include <string>

#include "qserv/catalog.h"

namespace scalla::qserv {

enum class Agg { kCount, kSum, kMin, kMax, kAvg, kGet };
enum class Field { kRa, kDec, kMag, kId };

struct Query {
  Agg agg = Agg::kCount;
  Field field = Field::kMag;
  bool hasWhere = false;
  Field whereField = Field::kRa;
  double lo = 0;
  double hi = 0;
  std::uint64_t objectId = 0;  // kGet only
};

/// Parses the grammar above; std::nullopt with *error set on bad input.
std::optional<Query> ParseQuery(const std::string& text, std::string* error = nullptr);

std::string FormatQuery(const Query& q);

/// Partial aggregate, combinable across chunks.
struct Partial {
  double sum = 0;
  std::uint64_t count = 0;
  double min = 0;
  double max = 0;  // min/max meaningful only when count > 0
};

Partial ExecuteOnRows(const Query& q, const std::vector<ObjectRow>& rows);
Partial Combine(const Partial& a, const Partial& b);
/// The final scalar the user asked for (0 for empty COUNT-like results).
double Finalize(const Query& q, const Partial& p);

std::string SerializePartial(const Partial& p);
std::optional<Partial> ParsePartial(const std::string& text);

}  // namespace scalla::qserv

// Qserv master: shards an aggregate query across chunks, dispatching each
// shard by opening the chunk's task inbox *by path* — Scalla's data->host
// mapping finds a worker hosting that partition; the master holds no
// worker list and "there is no configuration for the number of nodes in
// the cluster" (paper section IV-B). Partial results come back the same
// way, as files.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/scalla_client.h"
#include "qserv/query.h"
#include "qserv/worker.h"

namespace scalla::qserv {

struct QueryResult {
  proto::XrdErr err = proto::XrdErr::kNone;
  double value = 0;            // finalized aggregate
  Partial combined;            // the folded partials
  int chunksOk = 0;
  int chunksFailed = 0;
};

class QservMaster {
 public:
  /// `client` must outlive the master; all dispatch I/O flows through it
  /// (and therefore through the Scalla cluster it points at).
  explicit QservMaster(client::ScallaClient& client) : client_(client) {}

  using ResultCallback = std::function<void(const QueryResult&)>;

  /// Runs `queryText` over `chunks`, fanning all shards out concurrently;
  /// `done` fires once every shard finished (or failed).
  void RunQuery(const std::string& queryText, const std::vector<int>& chunks,
                ResultCallback done);

  using ObjectCallback =
      std::function<void(proto::XrdErr, std::optional<ObjectRow>)>;

  /// Quick retrieval (paper section IV-B): fetch one object's record. The
  /// director index names the single chunk to visit; Scalla's path
  /// mapping names the worker — one shard dispatch instead of a scan.
  void GetObject(std::uint64_t objectId, const DirectorIndex& index,
                 ObjectCallback done);

 private:
  struct Shard;   // one chunk's dispatch state machine
  struct Pending; // one query's aggregation state

  void DispatchShard(std::shared_ptr<Pending> pending, int chunk);
  /// Shared open-write-open-read cycle: runs `taskText` on `chunk` and
  /// hands the raw result text to `done` (empty + error on failure).
  void DispatchRaw(int chunk, const std::string& taskText,
                   std::function<void(proto::XrdErr, std::string)> done);

  client::ScallaClient& client_;
  std::uint64_t nextQueryId_ = 1;
};

}  // namespace scalla::qserv

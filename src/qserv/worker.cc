#include "qserv/worker.h"

#include <cstdio>
#include <cstdlib>

namespace scalla::qserv {

std::string ChunkPrefix(int chunk) { return "/qserv/chunk" + std::to_string(chunk); }
std::string TaskInboxPath(int chunk) { return ChunkPrefix(chunk) + "/task"; }
std::string ResultPath(int chunk, std::uint64_t qid) {
  return ChunkPrefix(chunk) + "/r/" + std::to_string(qid);
}

std::string QservOss::HostChunk(int chunk, std::vector<ObjectRow> rows) {
  const std::string prefix = ChunkPrefix(chunk);
  Put(prefix + "/data", SerializeRows(rows));
  Put(TaskInboxPath(chunk), std::string());
  {
    std::lock_guard lock(mu_);
    chunks_[chunk] = std::move(rows);
  }
  return prefix;
}

std::vector<std::string> QservOss::Exports() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(chunks_.size());
  for (const auto& [chunk, _] : chunks_) out.push_back(ChunkPrefix(chunk));
  return out;
}

Result<void> QservOss::Write(const std::string& path, std::uint64_t offset,
                             std::string_view data) {
  Result<void> written = MemOss::Write(path, offset, data);
  if (!written) return written;

  // Task submission? Path shape: /qserv/chunk<N>/task
  constexpr std::string_view kPrefix = "/qserv/chunk";
  if (path.compare(0, kPrefix.size(), kPrefix) != 0) return written;
  const std::size_t slash = path.find('/', kPrefix.size());
  if (slash == std::string::npos || path.substr(slash) != "/task") return written;
  const int chunk = std::atoi(path.c_str() + kPrefix.size());

  // Payload: "<qid>\n<query text>".
  const std::string payload(data);
  const std::size_t newline = payload.find('\n');
  if (newline == std::string::npos) return written;
  const std::uint64_t qid = std::strtoull(payload.c_str(), nullptr, 10);
  const auto query = ParseQuery(payload.substr(newline + 1));
  if (!query.has_value()) {
    Put(ResultPath(chunk, qid), "ERROR bad query");
    return written;
  }

  std::vector<ObjectRow>* rows = nullptr;
  {
    std::lock_guard lock(mu_);
    const auto it = chunks_.find(chunk);
    if (it != chunks_.end()) rows = &it->second;
  }
  if (rows == nullptr) {
    Put(ResultPath(chunk, qid), "ERROR no such chunk");
    return written;
  }
  if (query->agg == Agg::kGet) {
    // Point retrieval: return the full record (or NOTFOUND).
    std::string result = "NOTFOUND";
    for (const auto& row : *rows) {
      if (row.objectId == query->objectId) {
        result = SerializeRows({row});
        break;
      }
    }
    Put(ResultPath(chunk, qid), std::move(result));
    ++tasksExecuted_;
    return written;
  }
  const Partial partial = ExecuteOnRows(*query, *rows);
  Put(ResultPath(chunk, qid), SerializePartial(partial));
  ++tasksExecuted_;
  return written;
}

}  // namespace scalla::qserv

#include "qserv/query.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace scalla::qserv {
namespace {

std::optional<Field> FieldOf(const std::string& token) {
  if (token == "ra") return Field::kRa;
  if (token == "dec") return Field::kDec;
  if (token == "mag") return Field::kMag;
  if (token == "id") return Field::kId;
  return std::nullopt;
}

const char* FieldName(Field f) {
  switch (f) {
    case Field::kRa: return "ra";
    case Field::kDec: return "dec";
    case Field::kMag: return "mag";
    case Field::kId: return "id";
  }
  return "?";
}

double ValueOf(const ObjectRow& row, Field f) {
  switch (f) {
    case Field::kRa: return row.ra;
    case Field::kDec: return row.dec;
    case Field::kMag: return row.mag;
    case Field::kId: return static_cast<double>(row.objectId);
  }
  return 0;
}

}  // namespace

std::optional<Query> ParseQuery(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string token;
  Query q;
  if (!(in >> token)) {
    if (error) *error = "empty query";
    return std::nullopt;
  }
  if (token == "COUNT") {
    q.agg = Agg::kCount;
  } else if (token == "GET") {
    q.agg = Agg::kGet;
    unsigned long long id = 0;
    if (!(in >> id) || id == 0) {
      if (error) *error = "GET needs a positive object id";
      return std::nullopt;
    }
    q.objectId = id;
    std::string extra;
    if (in >> extra) {
      if (error) *error = "GET takes no further clauses";
      return std::nullopt;
    }
    return q;
  } else if (token == "SUM" || token == "MIN" || token == "MAX" || token == "AVG") {
    q.agg = token == "SUM" ? Agg::kSum
            : token == "MIN" ? Agg::kMin
            : token == "MAX" ? Agg::kMax
                             : Agg::kAvg;
    std::string fieldTok;
    if (!(in >> fieldTok)) {
      if (error) *error = token + " needs a field";
      return std::nullopt;
    }
    const auto field = FieldOf(fieldTok);
    if (!field) {
      if (error) *error = "unknown field: " + fieldTok;
      return std::nullopt;
    }
    q.field = *field;
  } else {
    if (error) *error = "unknown aggregate: " + token;
    return std::nullopt;
  }

  if (in >> token) {
    if (token != "WHERE") {
      if (error) *error = "expected WHERE, got " + token;
      return std::nullopt;
    }
    std::string fieldTok, betweenTok, andTok;
    if (!(in >> fieldTok >> betweenTok >> q.lo >> andTok >> q.hi) ||
        betweenTok != "BETWEEN" || andTok != "AND") {
      if (error) *error = "malformed WHERE clause";
      return std::nullopt;
    }
    const auto field = FieldOf(fieldTok);
    if (!field) {
      if (error) *error = "unknown field: " + fieldTok;
      return std::nullopt;
    }
    q.hasWhere = true;
    q.whereField = *field;
  }
  return q;
}

std::string FormatQuery(const Query& q) {
  std::string out;
  switch (q.agg) {
    case Agg::kCount: out = "COUNT"; break;
    case Agg::kSum: out = std::string("SUM ") + FieldName(q.field); break;
    case Agg::kMin: out = std::string("MIN ") + FieldName(q.field); break;
    case Agg::kMax: out = std::string("MAX ") + FieldName(q.field); break;
    case Agg::kAvg: out = std::string("AVG ") + FieldName(q.field); break;
    case Agg::kGet: return "GET " + std::to_string(q.objectId);
  }
  if (q.hasWhere) {
    char where[96];
    std::snprintf(where, sizeof(where), " WHERE %s BETWEEN %.6f AND %.6f",
                  FieldName(q.whereField), q.lo, q.hi);
    out += where;
  }
  return out;
}

Partial ExecuteOnRows(const Query& q, const std::vector<ObjectRow>& rows) {
  Partial p;
  if (q.agg == Agg::kGet) {
    // Point retrieval: the "value" of a hit is its row; the partial only
    // carries found/not-found — callers use FindRow for the full record.
    for (const auto& row : rows) {
      if (row.objectId == q.objectId) {
        p.count = 1;
        p.sum = p.min = p.max = static_cast<double>(row.objectId);
        break;
      }
    }
    return p;
  }
  for (const auto& row : rows) {
    if (q.hasWhere) {
      const double v = ValueOf(row, q.whereField);
      if (v < q.lo || v > q.hi) continue;
    }
    const double v = ValueOf(row, q.field);
    if (p.count == 0) {
      p.min = v;
      p.max = v;
    } else {
      p.min = std::min(p.min, v);
      p.max = std::max(p.max, v);
    }
    p.sum += v;
    ++p.count;
  }
  return p;
}

Partial Combine(const Partial& a, const Partial& b) {
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  Partial out;
  out.sum = a.sum + b.sum;
  out.count = a.count + b.count;
  out.min = std::min(a.min, b.min);
  out.max = std::max(a.max, b.max);
  return out;
}

double Finalize(const Query& q, const Partial& p) {
  switch (q.agg) {
    case Agg::kCount: return static_cast<double>(p.count);
    case Agg::kSum: return p.sum;
    case Agg::kMin: return p.count == 0 ? 0 : p.min;
    case Agg::kMax: return p.count == 0 ? 0 : p.max;
    case Agg::kAvg: return p.count == 0 ? 0 : p.sum / static_cast<double>(p.count);
    case Agg::kGet: return static_cast<double>(p.count);  // found flag
  }
  return 0;
}

std::string SerializePartial(const Partial& p) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.10g %llu %.10g %.10g", p.sum,
                static_cast<unsigned long long>(p.count), p.min, p.max);
  return buf;
}

std::optional<Partial> ParsePartial(const std::string& text) {
  Partial p;
  unsigned long long count = 0;
  std::istringstream in(text);
  if (!(in >> p.sum >> count >> p.min >> p.max)) return std::nullopt;
  p.count = count;
  return p;
}

}  // namespace scalla::qserv

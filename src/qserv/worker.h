// Qserv worker storage: an oss backend that doubles as a task executor.
// "Qserv masters communicate with workers by opening, reading, writing,
// and closing files in Scalla. Workers ... report their data availability
// by publishing or exporting paths that include a partition number"
// (paper section IV-B). Concretely:
//   - the worker exports /qserv/chunk<N> for each chunk it hosts and seeds
//     a task inbox file /qserv/chunk<N>/task;
//   - a master write of "<qid>\n<query>" to the inbox is intercepted here,
//     the query runs against the chunk's rows, and the partial result
//     materializes at /qserv/chunk<N>/r/<qid> for the master to read.
// The worker never knows the cluster size or the master's identity — all
// rendezvous flows through Scalla's data->host mapping.
#pragma once

#include <map>

#include "oss/mem_oss.h"
#include "qserv/query.h"

namespace scalla::qserv {

class QservOss final : public oss::MemOss {
 public:
  explicit QservOss(util::Clock& clock) : MemOss(clock) {}

  /// Hosts `rows` as chunk `chunk`: stores the data file and the task
  /// inbox. Returns the export prefix ("/qserv/chunk<N>") the owning node
  /// must publish.
  std::string HostChunk(int chunk, std::vector<ObjectRow> rows);

  /// Export prefixes for every hosted chunk.
  std::vector<std::string> Exports() const;

  Result<void> Write(const std::string& path, std::uint64_t offset,
                     std::string_view data) override;

  std::size_t TasksExecuted() const { return tasksExecuted_; }

 private:
  std::map<int, std::vector<ObjectRow>> chunks_;
  std::size_t tasksExecuted_ = 0;
};

/// "/qserv/chunk<N>" for chunk N.
std::string ChunkPrefix(int chunk);
/// "/qserv/chunk<N>/task".
std::string TaskInboxPath(int chunk);
/// "/qserv/chunk<N>/r/<qid>".
std::string ResultPath(int chunk, std::uint64_t qid);

}  // namespace scalla::qserv

// Synthetic astronomical catalog for the Qserv demonstration (paper
// section IV-B). LSST's real catalog holds billions of objects; here a
// generator produces objects with (ra, dec, mag) attributes, spatially
// partitioned into chunks by right-ascension stripe — the shared-nothing
// partitioning Qserv dispatches against.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace scalla::qserv {

struct ObjectRow {
  std::uint64_t objectId = 0;
  double ra = 0;   // right ascension, [0, 360)
  double dec = 0;  // declination, [-90, 90]
  double mag = 0;  // magnitude, ~[14, 28]
};

/// Chunk number of a position: RA stripes of width 360/nChunks.
int ChunkOf(double ra, int nChunks);

/// Generates `nObjects` rows grouped by chunk (chunk -> rows).
std::map<int, std::vector<ObjectRow>> GenerateCatalog(std::size_t nObjects, int nChunks,
                                                      util::Rng& rng);

/// Serializes rows to the on-disk text form workers load ("id ra dec mag"
/// per line) and back — the CSV-ish interchange the demo loader uses.
std::string SerializeRows(const std::vector<ObjectRow>& rows);
std::vector<ObjectRow> ParseRows(const std::string& text);

/// Director index: objectId -> chunk. LSST's catalog "support[s] both
/// quick retrieval (retrieve all facts for a single object) and longer
/// analysis" (paper section IV-B); the quick path needs to know WHICH
/// partition holds an object without scanning them all — Qserv calls this
/// the secondary/director index. Built once at load time.
class DirectorIndex {
 public:
  void Add(std::uint64_t objectId, int chunk) { index_[objectId] = chunk; }
  /// -1 when the object is unknown.
  int ChunkOfObject(std::uint64_t objectId) const {
    const auto it = index_.find(objectId);
    return it == index_.end() ? -1 : it->second;
  }
  std::size_t Size() const { return index_.size(); }

 private:
  std::unordered_map<std::uint64_t, int> index_;
};

/// Builds the director index for a partitioned catalog.
DirectorIndex BuildDirectorIndex(const std::map<int, std::vector<ObjectRow>>& chunks);

}  // namespace scalla::qserv

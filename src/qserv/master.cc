#include "qserv/master.h"

#include <memory>

namespace scalla::qserv {

struct QservMaster::Pending {
  Query query;
  ResultCallback done;
  int outstanding = 0;
  QueryResult result;

  void ShardDone(bool ok, const Partial& partial) {
    if (ok) {
      result.combined = Combine(result.combined, partial);
      ++result.chunksOk;
    } else {
      ++result.chunksFailed;
    }
    if (--outstanding == 0) {
      result.err = result.chunksFailed == 0 ? proto::XrdErr::kNone : proto::XrdErr::kIo;
      result.value = Finalize(query, result.combined);
      done(result);
    }
  }
};

void QservMaster::RunQuery(const std::string& queryText, const std::vector<int>& chunks,
                           ResultCallback done) {
  auto pending = std::make_shared<Pending>();
  const auto parsed = ParseQuery(queryText);
  if (!parsed.has_value() || chunks.empty()) {
    QueryResult bad;
    bad.err = proto::XrdErr::kInvalid;
    done(bad);
    return;
  }
  pending->query = *parsed;
  pending->done = std::move(done);
  pending->outstanding = static_cast<int>(chunks.size());
  for (const int chunk : chunks) DispatchShard(pending, chunk);
}

void QservMaster::DispatchRaw(int chunk, const std::string& taskText,
                              std::function<void(proto::XrdErr, std::string)> done) {
  const std::uint64_t qid = nextQueryId_++;

  // 1. Open the chunk's task inbox for write: Scalla locates a worker
  //    hosting this partition — the master configures no worker list.
  client_.Open(
      TaskInboxPath(chunk), cms::AccessMode::kWrite, /*create=*/false,
      [this, chunk, qid, taskText, done](const client::OpenOutcome& open) {
        if (open.err != proto::XrdErr::kNone) {
          done(open.err, std::string());
          return;
        }
        // 2. Write the task; the worker executes it inline.
        const std::string payload = std::to_string(qid) + "\n" + taskText;
        client_.Write(
            open.file, 0, payload,
            [this, chunk, qid, done, file = open.file](proto::XrdErr werr,
                                                       std::uint32_t) {
              client_.Close(file, [](proto::XrdErr) {});
              if (werr != proto::XrdErr::kNone) {
                done(werr, std::string());
                return;
              }
              // 3. Read the result file back.
              client_.Open(
                  ResultPath(chunk, qid), cms::AccessMode::kRead, false,
                  [this, done](const client::OpenOutcome& ropen) {
                    if (ropen.err != proto::XrdErr::kNone) {
                      done(ropen.err, std::string());
                      return;
                    }
                    client_.Read(ropen.file, 0, 1 << 16,
                                 [this, done, file = ropen.file](proto::XrdErr rerr,
                                                                 std::string data) {
                                   client_.Close(file, [](proto::XrdErr) {});
                                   done(rerr, std::move(data));
                                 });
                  });
            });
      });
}

void QservMaster::DispatchShard(std::shared_ptr<Pending> pending, int chunk) {
  DispatchRaw(chunk, FormatQuery(pending->query),
              [pending](proto::XrdErr err, std::string data) {
                if (err != proto::XrdErr::kNone) {
                  pending->ShardDone(false, Partial{});
                  return;
                }
                const auto partial = ParsePartial(data);
                pending->ShardDone(partial.has_value(), partial.value_or(Partial{}));
              });
}

void QservMaster::GetObject(std::uint64_t objectId, const DirectorIndex& index,
                            ObjectCallback done) {
  const int chunk = index.ChunkOfObject(objectId);
  if (chunk < 0) {
    done(proto::XrdErr::kNotFound, std::nullopt);
    return;
  }
  Query q;
  q.agg = Agg::kGet;
  q.objectId = objectId;
  DispatchRaw(chunk, FormatQuery(q),
              [done](proto::XrdErr err, std::string data) {
                if (err != proto::XrdErr::kNone) {
                  done(err, std::nullopt);
                  return;
                }
                if (data.rfind("NOTFOUND", 0) == 0 || data.rfind("ERROR", 0) == 0) {
                  done(proto::XrdErr::kNotFound, std::nullopt);
                  return;
                }
                const auto rows = ParseRows(data);
                if (rows.size() != 1) {
                  done(proto::XrdErr::kIo, std::nullopt);
                  return;
                }
                done(proto::XrdErr::kNone, rows[0]);
              });
}

}  // namespace scalla::qserv

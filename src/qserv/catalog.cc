#include "qserv/catalog.h"

#include <cstdio>
#include <sstream>

namespace scalla::qserv {

int ChunkOf(double ra, int nChunks) {
  while (ra < 0) ra += 360.0;
  while (ra >= 360.0) ra -= 360.0;
  const int chunk = static_cast<int>(ra / (360.0 / nChunks));
  return chunk >= nChunks ? nChunks - 1 : chunk;
}

std::map<int, std::vector<ObjectRow>> GenerateCatalog(std::size_t nObjects, int nChunks,
                                                      util::Rng& rng) {
  std::map<int, std::vector<ObjectRow>> chunks;
  for (std::size_t i = 0; i < nObjects; ++i) {
    ObjectRow row;
    row.objectId = i + 1;
    row.ra = rng.NextDouble() * 360.0;
    row.dec = rng.NextDouble() * 180.0 - 90.0;
    row.mag = 14.0 + rng.NextDouble() * 14.0;
    chunks[ChunkOf(row.ra, nChunks)].push_back(row);
  }
  return chunks;
}

std::string SerializeRows(const std::vector<ObjectRow>& rows) {
  std::string out;
  char line[128];
  for (const auto& r : rows) {
    std::snprintf(line, sizeof(line), "%llu %.6f %.6f %.4f\n",
                  static_cast<unsigned long long>(r.objectId), r.ra, r.dec, r.mag);
    out += line;
  }
  return out;
}

DirectorIndex BuildDirectorIndex(const std::map<int, std::vector<ObjectRow>>& chunks) {
  DirectorIndex index;
  for (const auto& [chunk, rows] : chunks) {
    for (const auto& row : rows) index.Add(row.objectId, chunk);
  }
  return index;
}

std::vector<ObjectRow> ParseRows(const std::string& text) {
  std::vector<ObjectRow> rows;
  std::istringstream in(text);
  ObjectRow row;
  unsigned long long id = 0;
  while (in >> id >> row.ra >> row.dec >> row.mag) {
    row.objectId = id;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace scalla::qserv

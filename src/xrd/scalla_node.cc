#include "xrd/scalla_node.h"

#include <algorithm>
#include <utility>

#include "util/crc32.h"
#include "util/logger.h"

namespace scalla::xrd {

using cms::AccessMode;
using cms::LocateResult;
using cms::LocateStatus;

namespace {

AccessMode ModeOf(std::uint8_t raw) {
  return raw == 0 ? AccessMode::kRead : AccessMode::kWrite;
}

}  // namespace

ScallaNode::NodeMetrics::NodeMetrics(obs::MetricsRegistry& r)
    : opensServed(r.GetCounter("node.opens_served")),
      reads(r.GetCounter("node.reads")),
      writes(r.GetCounter("node.writes")),
      queriesAnswered(r.GetCounter("node.queries_answered")),
      queriesSilent(r.GetCounter("node.queries_silent")),
      redirectsIssued(r.GetCounter("node.redirects_issued")),
      waitsIssued(r.GetCounter("node.waits_issued")),
      stagesStarted(r.GetCounter("node.stages_started")),
      creates(r.GetCounter("node.creates")),
      loginsAccepted(r.GetCounter("node.logins_accepted")),
      loginsSent(r.GetCounter("node.logins_sent")),
      refreshes(r.GetCounter("node.refreshes")),
      statsQueries(r.GetCounter("node.stats_queries")),
      pingsSent(r.GetCounter("node.pings_sent")),
      pongsReceived(r.GetCounter("node.pongs_received")) {}

ScallaNode::ScallaNode(NodeConfig config, sched::Executor& executor, net::Fabric& fabric,
                       oss::Oss* storage)
    : config_(std::move(config)),
      executor_(executor),
      fabric_(fabric),
      storage_(storage),
      membership_(config_.cms, executor.clock()),
      cache_(config_.cms, executor.clock(), membership_.corrections()),
      respq_(config_.cms, executor.clock()),
      selection_(config_.selection),
      resolver_(config_.cms, executor.clock(), membership_, cache_, respq_, selection_,
                [this](ServerSet targets, const std::string& path, std::uint32_t hash,
                       AccessMode mode) { SendQueryDown(targets, path, hash, mode); }),
      maintenance_(config_.cms, executor, cache_, respq_, membership_),
      nm_(metrics_) {
  slotAddr_.fill(0);
  if (config_.parent != 0) parents_.push_back(config_.parent);
  for (const net::NodeAddr p : config_.extraParents) {
    if (p != 0) parents_.push_back(p);
  }
}

bool ScallaNode::LoggedIn() const { return slotAtParent_.size() == parents_.size(); }

bool ScallaNode::LoggedInTo(net::NodeAddr parent) const {
  return slotAtParent_.count(parent) != 0;
}

bool ScallaNode::IsParent(net::NodeAddr addr) const {
  for (const net::NodeAddr p : parents_) {
    if (p == addr) return true;
  }
  return false;
}

ScallaNode::~ScallaNode() { Stop(); }

void ScallaNode::Start() {
  if (started_) return;
  started_ = true;
  if (!parents_.empty()) SendLogins();
  if (!config_.startTimers) return;
  cms::MaintenanceDriver::Options opts;
  opts.windowTick = true;
  opts.dropScan = IsHead();
  maintenance_.Start(opts, [this](ServerSlot slot) {
    const net::NodeAddr addr = slotAddr_[slot];
    if (addr != 0) {
      addrSlot_.erase(addr);
      slotAddr_[slot] = 0;
    }
  });
  if (config_.role == NodeRole::kServer && config_.loadReportInterval > Duration::zero()) {
    loadTimer_ = executor_.RunEvery(config_.loadReportInterval, [this] {
      const auto [load, free] = CurrentLoad();
      ReportLoad(load, free);
    });
  }
  if (IsHead() && config_.cms.ping > Duration::zero()) {
    pingTimer_ = executor_.RunEvery(config_.cms.ping, [this] { HeartbeatTick(); });
  }
  if (config_.role == NodeRole::kManager && config_.meta != 0) {
    SendFedSubscribe();
    fedTimer_ = executor_.RunEvery(config_.loginRetry, [this] {
      if (!FedSubscribed()) SendFedSubscribe();
    });
  }
}

void ScallaNode::Stop() {
  maintenance_.Stop();
  for (sched::TimerId* id : {&loginTimer_, &loadTimer_, &pingTimer_, &fedTimer_}) {
    if (*id != sched::kInvalidTimer) {
      executor_.Cancel(*id);
      *id = sched::kInvalidTimer;
    }
  }
  // Pending aggregations die with the node; requesters hit their own
  // timeouts just as they would on a crash.
  for (auto& [_, agg] : statsAggs_) {
    if (agg.timer != sched::kInvalidTimer) executor_.Cancel(agg.timer);
  }
  statsAggs_.clear();
  fedClusterId_ = -1;  // a restarted manager re-subscribes from scratch
  started_ = false;
}

net::NodeAddr ScallaNode::AddrOfSlot(ServerSlot slot) const {
  return slot >= 0 && slot < kMaxServersPerSet ? slotAddr_[slot] : 0;
}

std::optional<ServerSlot> ScallaNode::SlotOfAddr(net::NodeAddr addr) const {
  const auto it = addrSlot_.find(addr);
  if (it == addrSlot_.end()) return std::nullopt;
  return it->second;
}

void ScallaNode::SendLoginTo(net::NodeAddr parent) {
  proto::CmsLogin login;
  login.name = config_.name;
  login.exports = config_.exports;
  login.allowWrite = config_.allowWrite;
  login.isSupervisor = config_.role == NodeRole::kSupervisor;
  nm_.loginsSent.Inc();
  fabric_.Send(config_.addr, parent, std::move(login));
}

void ScallaNode::SendLogins() {
  for (const net::NodeAddr parent : parents_) SendLoginTo(parent);
  // Re-send until responses arrive (lost logins / parent restarts).
  if (loginTimer_ == sched::kInvalidTimer) {
    loginTimer_ = executor_.RunEvery(config_.loginRetry, [this] {
      for (const net::NodeAddr parent : parents_) {
        if (!LoggedInTo(parent)) SendLoginTo(parent);
      }
    });
  }
}

void ScallaNode::SendQueryDown(ServerSet targets, const std::string& path,
                               std::uint32_t hash, AccessMode mode) {
  proto::CmsQuery query;
  query.path = path;
  query.hash = hash;
  query.mode = mode == AccessMode::kRead ? 0 : 1;
  for (ServerSlot s = targets.first(); s >= 0; s = targets.next(s)) {
    const net::NodeAddr addr = slotAddr_[s];
    if (addr != 0) fabric_.Send(config_.addr, addr, query);
  }
}

// ---------------------------------------------------------------------
// federation (manager <-> meta-manager)

void ScallaNode::SendFedSubscribe() {
  proto::FedSubscribe sub;
  sub.cluster = config_.clusterName.empty() ? config_.name : config_.clusterName;
  sub.exports = config_.exports;
  sub.allowWrite = config_.allowWrite;
  sub.locality = config_.locality;
  fabric_.Send(config_.addr, config_.meta, std::move(sub));
}

void ScallaNode::HandleFedSubscribeResp(net::NodeAddr from,
                                        const proto::FedSubscribeResp& m) {
  if (from != config_.meta) return;
  if (!m.ok) {
    SCALLA_WARN("node", "%s: federation subscribe rejected: %s", config_.name.c_str(),
                m.error.c_str());
    return;
  }
  fedClusterId_ = m.clusterId;
}

void ScallaNode::HandleFedQuery(net::NodeAddr from, const proto::FedQuery& m) {
  if (from != config_.meta || config_.role != NodeRole::kManager) return;
  // Request-rarely-respond one level up: resolve within this cluster and
  // compress any number of internal replicas into a single "this cluster
  // has it" (the supervisor CmsQuery answer, lifted to federation scope).
  cms::LocateOptions opts;
  opts.mode = ModeOf(m.mode);
  opts.refresh = m.refresh;
  resolver_.Locate(m.path, opts,
                   [this, from, path = m.path, hash = m.hash](const LocateResult& r) {
                     if (r.status == LocateStatus::kRedirect) {
                       proto::FedHave resp;
                       resp.path = path;
                       resp.hash = hash;
                       resp.pending = r.pending;
                       resp.allowWrite = config_.allowWrite;
                       fabric_.Send(config_.addr, from, std::move(resp));
                       nm_.queriesAnswered.Inc();
                     } else {
                       nm_.queriesSilent.Inc();
                     }
                   });
}

void ScallaNode::NotifyMetaHave(const proto::CmsHave& m) {
  if (config_.role != NodeRole::kManager || config_.meta == 0) return;
  proto::FedHave up;
  up.path = m.path;
  up.hash = m.hash;
  up.pending = m.pending;
  up.allowWrite = config_.allowWrite;
  up.newfile = true;
  fabric_.Send(config_.addr, config_.meta, std::move(up));
}

void ScallaNode::NotifyParentHave(const std::string& path, bool pending) {
  proto::CmsHave have;
  have.path = path;
  have.hash = cms::LocationCache::HashOf(path);
  have.pending = pending;
  have.allowWrite = config_.allowWrite;
  have.newfile = true;
  if (config_.cnsd != 0) fabric_.Send(config_.addr, config_.cnsd, have);
  for (const net::NodeAddr parent : parents_) fabric_.Send(config_.addr, parent, have);
}

std::string ScallaNode::DescribeStatus() const {
  const auto cache = cache_.GetStats();
  const auto resolver = resolver_.GetStats();
  const auto respq = respq_.GetStats();
  char buf[640];
  const char* role = config_.role == NodeRole::kManager      ? "manager"
                     : config_.role == NodeRole::kSupervisor ? "supervisor"
                                                             : "server";
  std::snprintf(
      buf, sizeof(buf),
      "%s '%s' addr=%u members=%zu online=%d\n"
      "  cache: %zu live / %zu buckets (fib), %zu lookups (%.1f%% hit), "
      "%zu rehashes, %zu corrections (%zu memoized), %zu recycled\n"
      "  resolver: %zu locates, %zu cached redirects, %zu fast redirects, "
      "%zu floods (%zu msgs), %zu not-found, %zu full delays\n"
      "  respq: %zu anchors busy, %zu adds, %zu releases, %zu expirations\n"
      "  files: %zu open handles, %llu opens, %llu creates, %llu queries answered",
      role, config_.name.c_str(), config_.addr, membership_.MemberCount(),
      membership_.OnlineSet().count(), cache.liveObjects, cache.buckets, cache.lookups,
      cache.lookups == 0 ? 0.0
                         : 100.0 * static_cast<double>(cache.hits) /
                               static_cast<double>(cache.lookups),
      cache.rehashes, cache.corrections, cache.correctionMemoHits, cache.recycled,
      resolver.locates, resolver.redirects, resolver.fastRedirects,
      resolver.queriesSent, resolver.queryMessages, resolver.notFound,
      resolver.fullDelays, respq.anchorsInUse, respq.adds, respq.releases,
      respq.expirations, openFiles_.size(),
      static_cast<unsigned long long>(nm_.opensServed.Value()),
      static_cast<unsigned long long>(nm_.creates.Value()),
      static_cast<unsigned long long>(nm_.queriesAnswered.Value()));
  return buf;
}

ScallaNode::Stats ScallaNode::GetStats() const {
  Stats s;
  s.opensServed = nm_.opensServed.Value();
  s.reads = nm_.reads.Value();
  s.writes = nm_.writes.Value();
  s.queriesAnswered = nm_.queriesAnswered.Value();
  s.queriesSilent = nm_.queriesSilent.Value();
  s.redirectsIssued = nm_.redirectsIssued.Value();
  s.waitsIssued = nm_.waitsIssued.Value();
  s.stagesStarted = nm_.stagesStarted.Value();
  s.creates = nm_.creates.Value();
  return s;
}

obs::MetricsSnapshot ScallaNode::SnapshotMetrics() const {
  obs::MetricsSnapshot snap = metrics_.Snapshot();
  // Component-internal stats join under canonical dotted names, so cluster
  // aggregates carry the paper's cache/resolution story, not just the
  // node-level counters.
  const auto cache = cache_.GetStats();
  snap.AddCounter("cache.lookups", cache.lookups);
  snap.AddCounter("cache.hits", cache.hits);
  snap.AddCounter("cache.misses", cache.lookups - cache.hits);
  snap.AddCounter("cache.creates", cache.creates);
  snap.AddCounter("cache.corrections", cache.corrections);
  snap.AddCounter("cache.correction_memo_hits", cache.correctionMemoHits);
  snap.AddCounter("cache.rehashes", cache.rehashes);
  snap.AddCounter("cache.window_ticks", cache.windowTicks);
  snap.AddCounter("cache.recycled", cache.recycled);
  snap.AddGauge("cache.live_objects", static_cast<std::int64_t>(cache.liveObjects));
  snap.AddGauge("cache.approx_bytes", static_cast<std::int64_t>(cache.approxBytes));
  // Arena occupancy (index-linked layout): slots in use vs allocated, the
  // per-entry footprint, and budget-pressure evictions.
  snap.AddGauge("cache.arena_bytes", static_cast<std::int64_t>(cache.arenaBytes));
  snap.AddGauge("cache.bytes_per_entry",
                static_cast<std::int64_t>(
                    cache.liveObjects == 0
                        ? 0
                        : cache.approxBytes / cache.liveObjects));
  snap.AddGauge("cache.arena_occupancy_pct",
                static_cast<std::int64_t>(
                    cache.allocatedObjects == 0
                        ? 0
                        : 100 * (cache.allocatedObjects - cache.freeObjects) /
                              cache.allocatedObjects));
  snap.AddCounter("cache.budget_evictions", cache.budgetEvictions);
  snap.AddCounter("cache.create_failures", cache.createFailures);
  const auto resolver = resolver_.GetStats();
  snap.AddCounter("resolver.locates", resolver.locates);
  snap.AddCounter("resolver.redirects", resolver.redirects);
  snap.AddCounter("resolver.fast_redirects", resolver.fastRedirects);
  snap.AddCounter("resolver.not_found", resolver.notFound);
  snap.AddCounter("resolver.full_delays", resolver.fullDelays);
  snap.AddCounter("resolver.queries_sent", resolver.queriesSent);
  snap.AddCounter("resolver.query_messages", resolver.queryMessages);
  snap.AddCounter("resolver.deferrals", resolver.deferrals);
  const auto respq = respq_.GetStats();
  snap.AddCounter("respq.adds", respq.adds);
  snap.AddCounter("respq.joins", respq.joins);
  snap.AddCounter("respq.releases", respq.releases);
  snap.AddCounter("respq.expirations", respq.expirations);
  snap.AddCounter("respq.rejected_full", respq.rejectedFull);
  snap.AddGauge("respq.anchors_in_use", static_cast<std::int64_t>(respq.anchorsInUse));
  const auto maint = maintenance_.GetStats();
  snap.AddCounter("maintenance.window_ticks", maint.windowTicks);
  snap.AddCounter("maintenance.sweeps", maint.sweeps);
  snap.AddCounter("maintenance.drop_scans", maint.dropScans);
  snap.AddCounter("maintenance.members_dropped", maint.membersDropped);
  const auto live = membership_.GetLivenessStats();
  snap.AddCounter("membership.deaths", live.deaths);
  snap.AddCounter("membership.rejoins", live.rejoins);
  snap.AddCounter("membership.suspends", live.suspends);
  snap.AddCounter("membership.resumes", live.resumes);
  snap.AddCounter("membership.drains", live.drains);
  snap.AddGauge("membership.suspended",
                static_cast<std::int64_t>(membership_.SuspendedSet().count()));
  snap.AddGauge("membership.draining",
                static_cast<std::int64_t>(membership_.DrainingSet().count()));
  snap.AddGauge("membership.path_arena_bytes",
                static_cast<std::int64_t>(membership_.PathArenaBytes()));
  snap.AddGauge("node.open_handles", static_cast<std::int64_t>(openFiles_.size()));
  snap.AddGauge("node.members", static_cast<std::int64_t>(membership_.MemberCount()));
  snap.AddCounter("node.count", 1);  // lets aggregated views report fleet size
  if (config_.exportFabricStats) {
    const auto net = fabric_.GetCounters();
    snap.AddCounter("fabric.messages_sent", net.messagesSent);
    snap.AddCounter("fabric.messages_delivered", net.messagesDelivered);
    snap.AddCounter("fabric.messages_dropped", net.messagesDropped);
    snap.AddCounter("fabric.frames_sent", net.framesSent);
    snap.AddCounter("fabric.frames_received", net.framesReceived);
    snap.AddCounter("fabric.bytes_sent", net.bytesSent);
    snap.AddCounter("fabric.bytes_received", net.bytesReceived);
    snap.AddCounter("fabric.reconnects", net.reconnects);
    snap.AddCounter("fabric.idle_reaps", net.idleReaps);
    snap.AddCounter("fabric.queue_overflows", net.queueOverflows);
    // Per-link wire attribution for this node's long-lived peers (its
    // heads and the cnsd): where the daemon's traffic actually goes.
    std::vector<net::NodeAddr> links(parents_.begin(), parents_.end());
    if (config_.cnsd != 0) links.push_back(config_.cnsd);
    for (const net::NodeAddr peer : links) {
      const auto link = fabric_.PerPeerCounters(peer);
      const std::string prefix = "fabric.link." + std::to_string(peer) + ".";
      snap.AddCounter(prefix + "frames_sent", link.framesSent);
      snap.AddCounter(prefix + "frames_received", link.framesReceived);
      snap.AddCounter(prefix + "bytes_sent", link.bytesSent);
      snap.AddCounter(prefix + "bytes_received", link.bytesReceived);
    }
  }
  return snap;
}

std::pair<std::uint32_t, std::uint64_t> ScallaNode::CurrentLoad() const {
  if (config_.role != NodeRole::kServer || storage_ == nullptr) return {0, 0};
  const std::uint64_t used = storage_->UsedBytes().value_or(0);
  const std::uint64_t free =
      used < config_.assumedCapacity ? config_.assumedCapacity - used : 0;
  return {static_cast<std::uint32_t>(openFiles_.size()), free};
}

void ScallaNode::ReportLoad(std::uint32_t load, std::uint64_t freeSpace) {
  lastLoad_ = load;
  lastFree_ = freeSpace;
  for (const net::NodeAddr parent : parents_) {
    fabric_.Send(config_.addr, parent, proto::CmsLoad{load, freeSpace, config_.name});
  }
}

void ScallaNode::OnPeerDown(net::NodeAddr peer) {
  if (IsParent(peer)) {
    slotAtParent_.erase(peer);
    return;  // loginTimer_ keeps retrying
  }
  const auto slot = SlotOfAddr(peer);
  if (slot.has_value()) membership_.Disconnect(*slot);
}

void ScallaNode::OnMessage(net::NodeAddr from, proto::Message message) {
  std::visit(
      [this, from](auto&& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, proto::CmsLogin>) {
          HandleLogin(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsLoginResp>) {
          HandleLoginResp(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsQuery>) {
          HandleQuery(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsHave>) {
          HandleHave(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsNoHave>) {
          // Request-rarely-respond: negatives carry no information here.
          // (Only the always-respond baseline emits them; the fabric's
          // per-type counters measure their cost in experiment E06.)
        } else if constexpr (std::is_same_v<M, proto::CmsGone>) {
          HandleGone(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsLoad>) {
          HandleLoad(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsPing>) {
          HandlePing(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsPong>) {
          HandlePong(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsDeath>) {
          HandleDeath(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsDrain>) {
          HandleDrain(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdOpen>) {
          HandleOpen(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdRead>) {
          HandleRead(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdReadV>) {
          HandleReadV(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdChecksum>) {
          HandleChecksum(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdWrite>) {
          HandleWrite(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdClose>) {
          HandleClose(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdStat>) {
          HandleStat(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdUnlink>) {
          HandleUnlink(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdPrepare>) {
          HandlePrepare(from, m);
        } else if constexpr (std::is_same_v<M, proto::StatsQuery>) {
          HandleStatsQuery(from, m);
        } else if constexpr (std::is_same_v<M, proto::StatsReply>) {
          HandleStatsReply(from, m);
        } else if constexpr (std::is_same_v<M, proto::FedSubscribeResp>) {
          HandleFedSubscribeResp(from, m);
        } else if constexpr (std::is_same_v<M, proto::FedQuery>) {
          HandleFedQuery(from, m);
        } else if constexpr (std::is_same_v<M, proto::PcacheAdmin>) {
          // Cache administration only means something at a pcache proxy;
          // answer kInvalid so a mistargeted purge fails loudly.
          proto::PcacheAdminResp resp;
          resp.reqId = m.reqId;
          resp.err = proto::XrdErr::kInvalid;
          fabric_.Send(config_.addr, from, std::move(resp));
        } else {
          // CnsList et al. are served by the namespace daemon, not nodes.
        }
      },
      std::move(message));
}

// ---------------------------------------------------------------------
// stats aggregation

void ScallaNode::HandleStatsQuery(net::NodeAddr from, const proto::StatsQuery& m) {
  nm_.statsQueries.Inc();
  // Leaf (or head with no online subordinates): answer from local state.
  ServerSet online = IsHead() ? membership_.OnlineSet() : ServerSet::None();
  std::vector<net::NodeAddr> targets;
  for (ServerSlot s = online.first(); s >= 0; s = online.next(s)) {
    if (slotAddr_[s] != 0) targets.push_back(slotAddr_[s]);
  }
  if (targets.empty()) {
    proto::StatsReply reply;
    reply.reqId = m.reqId;
    reply.nodeCount = 1;
    reply.snapshot = SnapshotMetrics();
    fabric_.Send(config_.addr, from, std::move(reply));
    return;
  }

  // Head: fan the query down the tree under a fresh reqId (this node's own
  // downward id space), fold replies, answer the requester when the last
  // subordinate reports or the timeout fires — whichever comes first.
  const std::uint64_t aggId = nextStatsAggId_++;
  StatsAggregation& agg = statsAggs_[aggId];
  agg.requester = from;
  agg.requesterReqId = m.reqId;
  agg.acc = SnapshotMetrics();
  agg.nodeCount = 1;
  agg.outstanding = static_cast<int>(targets.size());
  agg.timer = executor_.RunAfter(config_.statsTimeout,
                                 [this, aggId] { FinishStatsAggregation(aggId); });
  for (const net::NodeAddr target : targets) {
    fabric_.Send(config_.addr, target, proto::StatsQuery{aggId});
  }
}

void ScallaNode::HandleStatsReply(net::NodeAddr from, const proto::StatsReply& m) {
  if (!SlotOfAddr(from).has_value()) return;  // not a subordinate we know
  const auto it = statsAggs_.find(m.reqId);
  if (it == statsAggs_.end()) return;  // late reply after timeout
  StatsAggregation& agg = it->second;
  agg.acc.Merge(m.snapshot);
  agg.nodeCount += m.nodeCount;
  if (--agg.outstanding <= 0) FinishStatsAggregation(m.reqId);
}

void ScallaNode::FinishStatsAggregation(std::uint64_t aggId) {
  const auto it = statsAggs_.find(aggId);
  if (it == statsAggs_.end()) return;
  StatsAggregation& agg = it->second;
  if (agg.timer != sched::kInvalidTimer) {
    executor_.Cancel(agg.timer);
    agg.timer = sched::kInvalidTimer;
  }
  proto::StatsReply reply;
  reply.reqId = agg.requesterReqId;
  reply.nodeCount = agg.nodeCount;
  reply.snapshot = std::move(agg.acc);
  const net::NodeAddr requester = agg.requester;
  statsAggs_.erase(it);
  fabric_.Send(config_.addr, requester, std::move(reply));
}

// ---------------------------------------------------------------------
// cms handlers

void ScallaNode::HandleLogin(net::NodeAddr from, const proto::CmsLogin& m) {
  proto::CmsLoginResp resp;
  if (!IsHead()) {
    resp.ok = false;
    resp.error = "not a cluster head";
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  // A re-login from a known address may land on a different slot (changed
  // exports drop the old identity); clear the stale mapping first.
  const auto oldSlot = SlotOfAddr(from);
  const auto result = membership_.Login(m.name, m.exports, m.allowWrite, m.isSupervisor);
  if (!result.has_value()) {
    // Set full: send the newcomer down to a supervisor with capacity —
    // the 64-ary tree grows at the leaves, not by widening a set.
    resp.ok = false;
    resp.error = "cluster set full";
    for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
      const auto info = membership_.InfoOf(s);
      if (info && info->online && info->isSupervisor && slotAddr_[s] != 0) {
        resp.redirect = slotAddr_[s];
        break;
      }
    }
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  if (oldSlot.has_value() && *oldSlot != result->slot) slotAddr_[*oldSlot] = 0;
  slotAddr_[result->slot] = from;
  addrSlot_[from] = result->slot;
  nm_.loginsAccepted.Inc();
  resp.ok = true;
  resp.slot = result->slot;
  fabric_.Send(config_.addr, from, std::move(resp));
}

void ScallaNode::HandleLoginResp(net::NodeAddr from, const proto::CmsLoginResp& m) {
  if (!IsParent(from)) return;
  if (!m.ok) {
    if (m.redirect != 0 && !IsParent(m.redirect)) {
      // The head's set is full; adopt the supervisor it pointed us at as
      // our parent on that side of the tree and log in there.
      for (net::NodeAddr& parent : parents_) {
        if (parent == from) {
          slotAtParent_.erase(from);
          parent = m.redirect;
          SendLoginTo(m.redirect);
          return;
        }
      }
    }
    SCALLA_WARN("node", "%s: login rejected: %s", config_.name.c_str(), m.error.c_str());
    return;
  }
  slotAtParent_[from] = m.slot;
}

void ScallaNode::HandleQuery(net::NodeAddr from, const proto::CmsQuery& m) {
  const AccessMode mode = ModeOf(m.mode);
  if (config_.role == NodeRole::kServer) {
    // Leaf: consult local storage. Request-rarely-respond — only holders
    // answer; an MSS-resident file counts as "being prepared to be online"
    // (V_p) since this server can stage it.
    const oss::FileState state = storage_->StateOf(m.path);
    bool have = false, pending = false;
    switch (state) {
      case oss::FileState::kOnline:
        have = true;
        break;
      case oss::FileState::kStaging:
      case oss::FileState::kInMss:
        have = true;
        pending = true;
        break;
      case oss::FileState::kAbsent:
        break;
    }
    if (have && mode == AccessMode::kWrite && !config_.allowWrite) have = false;
    if (have) {
      proto::CmsHave resp;
      resp.path = m.path;
      resp.hash = m.hash;
      resp.pending = pending;
      resp.allowWrite = config_.allowWrite;
      fabric_.Send(config_.addr, from, std::move(resp));
      nm_.queriesAnswered.Inc();
    } else if (config_.alwaysRespond) {
      fabric_.Send(config_.addr, from, proto::CmsNoHave{m.path, m.hash});
    } else {
      nm_.queriesSilent.Inc();  // silence IS the negative response
    }
    return;
  }

  // Supervisor: resolve within the subtree; if anything down there has the
  // file, answer with a single CmsHave — "multiple responses ... are
  // compressed into a single response indicating that the supervisor has
  // the file" (section II-B2).
  cms::LocateOptions opts;
  opts.mode = mode;
  opts.refresh = m.refresh;
  resolver_.Locate(m.path, opts,
                   [this, from, path = m.path, hash = m.hash](const LocateResult& r) {
                     if (r.status == LocateStatus::kRedirect) {
                       proto::CmsHave resp;
                       resp.path = path;
                       resp.hash = hash;
                       resp.pending = r.pending;
                       resp.allowWrite = config_.allowWrite;
                       fabric_.Send(config_.addr, from, std::move(resp));
                       nm_.queriesAnswered.Inc();
                     } else if (r.status == LocateStatus::kNotFound &&
                                config_.alwaysRespond) {
                       fabric_.Send(config_.addr, from, proto::CmsNoHave{path, hash});
                     } else {
                       nm_.queriesSilent.Inc();
                     }
                   });
}

void ScallaNode::HandleHave(net::NodeAddr from, const proto::CmsHave& m) {
  const auto slot = SlotOfAddr(from);
  if (!slot.has_value()) return;  // not a subordinate we know
  resolver_.OnHave(m.path, m.hash, *slot, m.pending, m.allowWrite);
  // New-file notifications propagate to the root so every level's cache
  // learns about creations that happened beneath it.
  if (m.newfile && !parents_.empty()) {
    proto::CmsHave up = m;
    up.allowWrite = config_.allowWrite;
    for (const net::NodeAddr parent : parents_) fabric_.Send(config_.addr, parent, up);
  }
  // At the cluster root the digest continues upward to the federation
  // meta-manager (if subscribed) so its cluster-location cache learns
  // about the creation without a FedQuery flood.
  if (m.newfile) NotifyMetaHave(m);
}

void ScallaNode::HandleGone(net::NodeAddr from, const proto::CmsGone& m) {
  const auto slot = SlotOfAddr(from);
  if (!slot.has_value()) return;
  resolver_.OnGone(m.path, *slot);
  for (const net::NodeAddr parent : parents_) fabric_.Send(config_.addr, parent, m);
  // Upward federation invalidation. Conservative: the meta clears this
  // whole cluster's bit even when other internal replicas remain — the
  // next FedQuery flood relearns them, trading a rare re-query for never
  // serving a cluster that lost its last copy.
  if (config_.role == NodeRole::kManager && config_.meta != 0) {
    fabric_.Send(config_.addr, config_.meta, proto::FedGone{m.path});
  }
}

void ScallaNode::HandleLoad(net::NodeAddr from, const proto::CmsLoad& m) {
  // Route by stable identity first: a report that raced a re-login under a
  // different slot id must not be credited to whoever holds the old slot.
  if (!m.name.empty() &&
      membership_.ReportLoadByName(m.name, m.load, m.freeSpace).has_value()) {
    return;
  }
  const auto slot = SlotOfAddr(from);
  if (!slot.has_value()) return;
  membership_.ReportLoad(*slot, m.load, m.freeSpace);
}

// ---------------------------------------------------------------------
// liveness / membership administration

void ScallaNode::HeartbeatTick() {
  const auto hb = membership_.HeartbeatTick();
  proto::CmsPing ping;
  ping.seq = ++pingSeq_;
  for (const ServerSlot s : hb.ping) {
    const net::NodeAddr addr = slotAddr_[s];
    if (addr == 0) continue;
    nm_.pingsSent.Inc();
    fabric_.Send(config_.addr, addr, ping);
  }
  // Offline members still in the drop window get a reconnect invitation:
  // a wedged server that recovers re-logs in and resumes its slot.
  proto::CmsPing invite;
  invite.seq = ping.seq;
  invite.reconnect = true;
  for (const ServerSlot s : hb.reconnect) {
    const net::NodeAddr addr = slotAddr_[s];
    if (addr == 0) continue;
    nm_.pingsSent.Inc();
    fabric_.Send(config_.addr, addr, invite);
  }
  for (const auto& [slot, name] : hb.died) {
    SCALLA_WARN("node", "%s: declaring '%s' (slot %d) dead after %d missed pings",
                config_.name.c_str(), name.c_str(), slot, config_.cms.missLimit);
    FanToSupervisors(proto::CmsDeath{name});
  }
}

void ScallaNode::HandlePing(net::NodeAddr from, const proto::CmsPing& m) {
  // A manager's "parent" for liveness purposes includes the federation
  // meta-manager: it pings cluster heads exactly as heads ping servers.
  const bool fromMeta = config_.meta != 0 && from == config_.meta &&
                        config_.role == NodeRole::kManager;
  if (!IsParent(from) && !fromMeta) return;
  if (m.reconnect) {
    if (fromMeta) {
      // The meta declared this whole cluster dead (partition healed):
      // re-subscribe to resume the cluster slot and restore its paths.
      fedClusterId_ = -1;
      SendFedSubscribe();
      return;
    }
    // The parent declared us dead (or saw us disconnect); re-login to
    // resume our slot and restore our paths — no full cluster refresh.
    slotAtParent_.erase(from);
    SendLoginTo(from);
    return;
  }
  proto::CmsPong pong;
  pong.seq = m.seq;
  pong.load = lastLoad_;
  pong.freeSpace = lastFree_;
  fabric_.Send(config_.addr, from, std::move(pong));
}

void ScallaNode::HandlePong(net::NodeAddr from, const proto::CmsPong& m) {
  const auto slot = SlotOfAddr(from);
  if (!slot.has_value()) return;
  nm_.pongsReceived.Inc();
  membership_.OnPong(*slot);
  // Piggybacked load keeps selection metrics fresh between CmsLoad reports
  // (and drives suspend/resume just like a report would).
  const auto info = membership_.InfoOf(*slot);
  if (info.has_value() && info->online) {
    membership_.ReportLoad(*slot, m.load, m.freeSpace);
  }
}

void ScallaNode::HandleDeath(net::NodeAddr from, const proto::CmsDeath& m) {
  if (!IsParent(from)) return;  // death notices only flow down the tree
  const auto slot = membership_.SlotOf(m.server);
  if (slot.has_value()) membership_.DeclareDead(*slot);
  // Fan further down regardless: the dead server may live deeper in a
  // subtree this node only knows through a supervisor.
  FanToSupervisors(m);
}

void ScallaNode::HandleDrain(net::NodeAddr from, const proto::CmsDrain& m) {
  const auto reply = [&](bool ok, bool applied, std::string error) {
    if (m.reqId == 0) return;  // fanned notices carry no reply path
    proto::CmsDrainResp resp;
    resp.reqId = m.reqId;
    resp.ok = ok;
    resp.applied = applied;
    resp.error = std::move(error);
    fabric_.Send(config_.addr, from, std::move(resp));
  };
  if (!IsHead()) {
    reply(false, false, "not a cluster head");
    return;
  }
  const auto slot = membership_.SlotOf(m.server);
  if (slot.has_value()) {
    membership_.SetDraining(*slot, !m.restore);
    reply(true, true, "");
    return;
  }
  // Unknown here: the server may sit deeper in the tree; forward to every
  // supervisor subtree (best-effort, no replies expected on that leg).
  const int fanned = FanToSupervisors(proto::CmsDrain{0, m.server, m.restore});
  if (fanned > 0) {
    reply(true, false, "");
  } else {
    reply(false, false, "unknown server '" + m.server + "'");
  }
}

int ScallaNode::FanToSupervisors(const proto::Message& notice) {
  int fanned = 0;
  const ServerSet online = membership_.OnlineSet();
  for (ServerSlot s = online.first(); s >= 0; s = online.next(s)) {
    const auto info = membership_.InfoOf(s);
    if (!info.has_value() || !info->isSupervisor) continue;
    const net::NodeAddr addr = slotAddr_[s];
    if (addr == 0) continue;
    fabric_.Send(config_.addr, addr, notice);
    ++fanned;
  }
  return fanned;
}

// ---------------------------------------------------------------------
// xrd handlers

void ScallaNode::HandleOpen(net::NodeAddr from, const proto::XrdOpen& m) {
  if (IsHead()) {
    HeadOpen(from, m);
  } else {
    LeafOpen(from, m);
  }
}

void ScallaNode::HeadOpen(net::NodeAddr from, const proto::XrdOpen& m) {
  if (m.refresh) nm_.refreshes.Inc();
  cms::LocateOptions opts;
  opts.mode = ModeOf(m.mode);
  opts.refresh = m.refresh;
  if (m.avoidNode != 0) {
    const auto avoidSlot = SlotOfAddr(m.avoidNode);
    if (avoidSlot.has_value()) opts.avoid = *avoidSlot;
  }
  resolver_.Locate(
      m.path, opts,
      [this, from, reqId = m.reqId, path = m.path, create = m.create,
       avoid = opts.avoid, mode = opts.mode](const LocateResult& r) {
        proto::XrdOpenResp resp;
        resp.reqId = reqId;
        switch (r.status) {
          case LocateStatus::kRedirect:
            resp.status = proto::XrdStatus::kRedirect;
            resp.redirectNode = AddrOfSlot(r.server);
            nm_.redirectsIssued.Inc();
            break;
          case LocateStatus::kWait:
            resp.status = proto::XrdStatus::kWait;
            resp.waitNs = r.wait.count();
            nm_.waitsIssued.Inc();
            break;
          case LocateStatus::kRetry:
            resp.status = proto::XrdStatus::kError;
            resp.err = proto::XrdErr::kStale;
            break;
          case LocateStatus::kNotFound: {
            if (!create) {
              resp.status = proto::XrdStatus::kError;
              resp.err = proto::XrdErr::kNotFound;
              break;
            }
            // Creation: the full delay has confirmed non-existence; place
            // the new file on an eligible, selectable (online and neither
            // suspended nor draining), writable subordinate — avoiding a
            // server that already refused this client (e.g. out of space).
            ServerSet candidates =
                membership_.EligibleFor(path) & membership_.SelectableSet();
            ServerSet writable;
            for (ServerSlot s = candidates.first(); s >= 0;
                 s = candidates.next(s)) {
              const auto info = membership_.InfoOf(s);
              if (info && info->allowWrite) writable.set(s);
            }
            ServerSet avoidSet;
            if (avoid >= 0) avoidSet.set(avoid);
            const ServerSlot target = selection_.Choose(
                writable.Without(avoidSet).empty() ? writable
                                                   : writable.Without(avoidSet),
                ServerSet::None(), membership_);
            if (target < 0) {
              resp.status = proto::XrdStatus::kError;
              resp.err = proto::XrdErr::kNoSpace;
            } else {
              resp.status = proto::XrdStatus::kRedirect;
              resp.redirectNode = AddrOfSlot(target);
              nm_.redirectsIssued.Inc();
            }
            break;
          }
        }
        fabric_.Send(config_.addr, from, std::move(resp));
      });
}

void ScallaNode::LeafOpen(net::NodeAddr from, const proto::XrdOpen& m) {
  proto::XrdOpenResp resp;
  resp.reqId = m.reqId;
  const AccessMode mode = ModeOf(m.mode);
  if (mode == AccessMode::kWrite && !config_.allowWrite) {
    resp.status = proto::XrdStatus::kError;
    resp.err = proto::XrdErr::kInvalid;
    resp.message = "read-only server";
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }

  switch (storage_->StateOf(m.path)) {
    case oss::FileState::kOnline: {
      const std::uint64_t fh = nextHandle_++;
      openFiles_[fh] = OpenFile{m.path, mode};
      resp.status = proto::XrdStatus::kOk;
      resp.fileHandle = fh;
      nm_.opensServed.Inc();
      break;
    }
    case oss::FileState::kInMss:
      nm_.stagesStarted.Inc();
      [[fallthrough]];
    case oss::FileState::kStaging: {
      // Kick (or poll) the stage and tell the client how long to wait.
      const auto remaining = storage_->BeginStage(m.path);
      resp.status = proto::XrdStatus::kWait;
      const Duration wait = remaining.value_or(config_.stagePollHint);
      resp.waitNs = std::min(wait, config_.stagePollHint).count();
      if (resp.waitNs <= 0) resp.waitNs = Duration(std::chrono::milliseconds(1)).count();
      nm_.waitsIssued.Inc();
      break;
    }
    case oss::FileState::kAbsent: {
      if (!m.create) {
        // The manager's cache vectored the client here in error (timing
        // edge, deletion race): the client recovers by re-asking the head
        // with refresh + avoid (section III-C1).
        resp.status = proto::XrdStatus::kError;
        resp.err = proto::XrdErr::kNotFound;
        break;
      }
      const Result<void> created = storage_->Create(m.path);
      if (!created) {
        resp.status = proto::XrdStatus::kError;
        resp.err = created.code();
        resp.message = created.error().message;
        break;
      }
      const std::uint64_t fh = nextHandle_++;
      openFiles_[fh] = OpenFile{m.path, mode};
      resp.status = proto::XrdStatus::kOk;
      resp.fileHandle = fh;
      nm_.creates.Inc();
      nm_.opensServed.Inc();
      NotifyParentHave(m.path, false);
      break;
    }
  }
  fabric_.Send(config_.addr, from, std::move(resp));
}

void ScallaNode::HandleRead(net::NodeAddr from, const proto::XrdRead& m) {
  proto::XrdReadResp resp;
  resp.reqId = m.reqId;
  const auto it = openFiles_.find(m.fileHandle);
  if (config_.role != NodeRole::kServer || it == openFiles_.end()) {
    resp.err = proto::XrdErr::kInvalid;
  } else {
    Result<std::string> data = storage_->Read(it->second.path, m.offset, m.length);
    if (data) {
      resp.data = std::move(data).value();
    } else {
      resp.err = data.code();
    }
    nm_.reads.Inc();
  }
  fabric_.Send(config_.addr, from, std::move(resp));
}

void ScallaNode::HandleReadV(net::NodeAddr from, const proto::XrdReadV& m) {
  // Vector read: every segment served from one request — the sparse
  // access pattern ROOT produces, without per-segment round trips.
  proto::XrdReadVResp resp;
  resp.reqId = m.reqId;
  const auto it = openFiles_.find(m.fileHandle);
  if (config_.role != NodeRole::kServer || it == openFiles_.end()) {
    resp.err = proto::XrdErr::kInvalid;
  } else {
    resp.chunks.reserve(m.segments.size());
    for (const auto& seg : m.segments) {
      Result<std::string> chunk = storage_->Read(it->second.path, seg.offset, seg.length);
      if (!chunk) {
        resp.err = chunk.code();
        resp.chunks.clear();
        break;
      }
      resp.chunks.push_back(std::move(chunk).value());
      nm_.reads.Inc();
    }
  }
  fabric_.Send(config_.addr, from, std::move(resp));
}

void ScallaNode::HandleChecksum(net::NodeAddr from, const proto::XrdChecksum& m) {
  proto::XrdChecksumResp resp;
  resp.reqId = m.reqId;
  if (!IsHead()) {
    // Data server: checksum the whole file content.
    std::uint32_t crc = 0;
    std::uint64_t offset = 0;
    proto::XrdErr err = proto::XrdErr::kNone;
    for (;;) {
      const Result<std::string> data = storage_->Read(m.path, offset, 1 << 16);
      if (!data) {
        err = data.code();
        break;
      }
      if (data.value().empty()) break;
      crc = util::Crc32(data.value(), crc);
      offset += data.value().size();
    }
    if (err != proto::XrdErr::kNone && offset == 0) {
      resp.status = proto::XrdStatus::kError;
      resp.err = err;
    } else {
      resp.status = proto::XrdStatus::kOk;
      resp.crc32 = crc;
    }
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  // Head: redirect like any meta-data operation.
  cms::LocateOptions opts;
  resolver_.Locate(m.path, opts,
                   [this, from, reqId = m.reqId](const LocateResult& r) {
                     proto::XrdChecksumResp out;
                     out.reqId = reqId;
                     switch (r.status) {
                       case LocateStatus::kRedirect:
                         out.status = proto::XrdStatus::kRedirect;
                         out.redirectNode = AddrOfSlot(r.server);
                         break;
                       case LocateStatus::kWait:
                         out.status = proto::XrdStatus::kWait;
                         out.waitNs = r.wait.count();
                         break;
                       default:
                         out.status = proto::XrdStatus::kError;
                         out.err = r.status == LocateStatus::kRetry
                                       ? proto::XrdErr::kStale
                                       : proto::XrdErr::kNotFound;
                     }
                     fabric_.Send(config_.addr, from, std::move(out));
                   });
}

void ScallaNode::HandleWrite(net::NodeAddr from, const proto::XrdWrite& m) {
  proto::XrdWriteResp resp;
  resp.reqId = m.reqId;
  const auto it = openFiles_.find(m.fileHandle);
  if (config_.role != NodeRole::kServer || it == openFiles_.end()) {
    resp.err = proto::XrdErr::kInvalid;
  } else if (it->second.mode != AccessMode::kWrite) {
    resp.err = proto::XrdErr::kInvalid;
  } else {
    const Result<void> written = storage_->Write(it->second.path, m.offset, m.data);
    resp.err = written.code();
    resp.written = written ? static_cast<std::uint32_t>(m.data.size()) : 0;
    nm_.writes.Inc();
  }
  fabric_.Send(config_.addr, from, std::move(resp));
}

void ScallaNode::HandleClose(net::NodeAddr from, const proto::XrdClose& m) {
  proto::XrdCloseResp resp;
  resp.reqId = m.reqId;
  resp.err = openFiles_.erase(m.fileHandle) != 0 ? proto::XrdErr::kNone
                                                 : proto::XrdErr::kInvalid;
  fabric_.Send(config_.addr, from, std::move(resp));
}

void ScallaNode::HandleStat(net::NodeAddr from, const proto::XrdStat& m) {
  proto::XrdStatResp resp;
  resp.reqId = m.reqId;
  if (!IsHead()) {
    const auto info = storage_->Stat(m.path);
    if (info.has_value()) {
      resp.status = proto::XrdStatus::kOk;
      resp.size = info->size;
    } else {
      resp.status = proto::XrdStatus::kError;
      resp.err = proto::XrdErr::kNotFound;
    }
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  cms::LocateOptions opts;  // stat is a read-mode meta-data operation
  resolver_.Locate(m.path, opts,
                   [this, from, reqId = m.reqId](const LocateResult& r) {
                     proto::XrdStatResp out;
                     out.reqId = reqId;
                     switch (r.status) {
                       case LocateStatus::kRedirect:
                         out.status = proto::XrdStatus::kRedirect;
                         out.redirectNode = AddrOfSlot(r.server);
                         break;
                       case LocateStatus::kWait:
                         out.status = proto::XrdStatus::kWait;
                         out.waitNs = r.wait.count();
                         break;
                       default:
                         out.status = proto::XrdStatus::kError;
                         out.err = r.status == LocateStatus::kRetry
                                       ? proto::XrdErr::kStale
                                       : proto::XrdErr::kNotFound;
                     }
                     fabric_.Send(config_.addr, from, std::move(out));
                   });
}

void ScallaNode::HandleUnlink(net::NodeAddr from, const proto::XrdUnlink& m) {
  proto::XrdUnlinkResp resp;
  resp.reqId = m.reqId;
  if (!IsHead()) {
    const Result<void> unlinked = storage_->Unlink(m.path);
    resp.status = unlinked ? proto::XrdStatus::kOk : proto::XrdStatus::kError;
    resp.err = unlinked.code();
    if (unlinked) {
      for (const net::NodeAddr parent : parents_) {
        fabric_.Send(config_.addr, parent, proto::CmsGone{m.path});
      }
      if (config_.cnsd != 0) {
        fabric_.Send(config_.addr, config_.cnsd, proto::CmsGone{m.path});
      }
    }
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  cms::LocateOptions opts;
  resolver_.Locate(m.path, opts,
                   [this, from, reqId = m.reqId](const LocateResult& r) {
                     proto::XrdUnlinkResp out;
                     out.reqId = reqId;
                     switch (r.status) {
                       case LocateStatus::kRedirect:
                         out.status = proto::XrdStatus::kRedirect;
                         out.redirectNode = AddrOfSlot(r.server);
                         break;
                       case LocateStatus::kWait:
                         out.status = proto::XrdStatus::kWait;
                         out.waitNs = r.wait.count();
                         break;
                       default:
                         out.status = proto::XrdStatus::kError;
                         out.err = r.status == LocateStatus::kRetry
                                       ? proto::XrdErr::kStale
                                       : proto::XrdErr::kNotFound;
                     }
                     fabric_.Send(config_.addr, from, std::move(out));
                   });
}

void ScallaNode::HandlePrepare(net::NodeAddr from, const proto::XrdPrepare& m) {
  // Parallel prepare (section III-B2): spawn one background look-up per
  // file; each may suffer the full delay internally, but the client sees
  // at most one because they run concurrently.
  if (IsHead()) {
    cms::LocateOptions opts;
    opts.mode = ModeOf(m.mode);
    for (const auto& path : m.paths) {
      resolver_.Locate(path, opts, [](const LocateResult&) { /* warming only */ });
    }
  } else {
    for (const auto& path : m.paths) storage_->BeginStage(path);
  }
  proto::XrdPrepareResp resp;
  resp.reqId = m.reqId;
  fabric_.Send(config_.addr, from, std::move(resp));
}

}  // namespace scalla::xrd

// A Scalla node: the xrootd data/redirector server paired with its cmsd,
// modeled as one object with two protocol roles (the paper's systems are
// "symmetric in that for each xrootd there is a corresponding cmsd").
//
// Roles (paper section II-B):
//   kManager    — a cluster head: accepts subordinate logins, resolves
//                 client requests, redirects clients downward.
//   kSupervisor — a manager for its subtree AND a server to its parent:
//                 answers parent CmsQuery by resolving within its subtree,
//                 compressing multiple subordinate responses into a single
//                 "I have it"; redirects clients that reach it further down.
//   kServer     — a leaf: answers CmsQuery from its storage (oss), serves
//                 actual file I/O, stages MSS-resident files.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cms/location_cache.h"
#include "cms/maintenance.h"
#include "cms/membership.h"
#include "cms/resolver.h"
#include "cms/response_queue.h"
#include "cms/selection.h"
#include "cms/types.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "oss/oss.h"
#include "sched/executor.h"

namespace scalla::xrd {

// kProxy names a pcache::ProxyCacheNode in configuration files; ScallaNode
// itself is never constructed with it (the daemon branches on the role).
enum class NodeRole { kManager, kSupervisor, kServer, kProxy };

struct NodeConfig {
  NodeRole role = NodeRole::kServer;
  std::string name;              // stable identity, e.g. "server07"
  net::NodeAddr addr = 0;
  net::NodeAddr parent = 0;      // 0 = none (manager)
  // Additional redundant heads. "Clients first contact the logical head
  // node (which can be one of many)" and "every node in the cluster can
  // be replicated" (paper sections II-B1/II-B2): a subordinate logs into
  // ALL of its heads so each keeps an independent location view and any
  // of them can serve clients.
  std::vector<net::NodeAddr> extraParents;
  std::vector<std::string> exports{"/"};
  cms::CmsConfig cms;
  cms::SelectCriterion selection = cms::SelectCriterion::kRoundRobin;
  bool allowWrite = true;
  bool alwaysRespond = false;    // E06 baseline: emit explicit CmsNoHave
  bool startTimers = true;       // window tick / sweep / drop scan
  net::NodeAddr cnsd = 0;        // Cluster Name Space daemon to notify (0 = none)
  Duration loginRetry = std::chrono::seconds(2);
  Duration stagePollHint = std::chrono::seconds(5);  // wait we hand staging clients
  // Periodic load/space reports to parents (selection metrics, paper
  // section II-B3). Zero disables; tests may call ReportLoad directly.
  Duration loadReportInterval = Duration::zero();
  std::uint64_t assumedCapacity = std::uint64_t{1} << 40;  // 1 TB default
  // How long a head waits for subordinate StatsReply frames before
  // answering a StatsQuery with whatever the subtree delivered.
  Duration statsTimeout = std::chrono::seconds(2);
  // Federation (managers only): subscribe this cluster into a meta-manager
  // so clients holding only the meta's address can reach files here. The
  // manager answers the meta's FedQuery floods by resolving within its own
  // cluster (compressing any number of internal replicas into one
  // "cluster has it") and streams new-file / gone digests upward so the
  // meta's cluster-location cache stays warm without re-flooding.
  net::NodeAddr meta = 0;            // meta-manager fabric address (0 = none)
  std::string clusterName;           // stable federation identity ("cern")
  std::uint32_t locality = 0;        // federation distance weight (lower = near)
  // Export fabric.* transport counters (global plus per-parent link
  // attribution) in SnapshotMetrics. Off by default: the fabric is shared
  // by every endpoint in-process, so only one node per process — the
  // daemon's — should fold its counters into a stats tree, or cluster
  // aggregates would multiply-count the same wire traffic.
  bool exportFabricStats = false;
};

class ScallaNode : public net::MessageSink {
 public:
  /// `storage` is required for kServer, ignored otherwise. The node does
  /// not own it (workloads pre-populate and inspect it).
  ScallaNode(NodeConfig config, sched::Executor& executor, net::Fabric& fabric,
             oss::Oss* storage);
  ~ScallaNode() override;

  ScallaNode(const ScallaNode&) = delete;
  ScallaNode& operator=(const ScallaNode&) = delete;

  /// Logs into the parent (if any) and starts maintenance timers.
  void Start();
  /// Cancels timers; the node stops answering (used before teardown).
  void Stop();

  // net::MessageSink
  void OnMessage(net::NodeAddr from, proto::Message message) override;
  void OnPeerDown(net::NodeAddr peer) override;

  // ---- introspection (tests / benches / examples) ----
  const NodeConfig& config() const { return config_; }
  /// Logged into every configured parent?
  bool LoggedIn() const;
  bool LoggedInTo(net::NodeAddr parent) const;
  const std::vector<net::NodeAddr>& Parents() const { return parents_; }
  cms::Membership& membership() { return membership_; }
  cms::LocationCache& cache() { return cache_; }
  cms::Resolver& resolver() { return resolver_; }
  cms::FastResponseQueue& respq() { return respq_; }
  oss::Oss* storage() { return storage_; }
  net::NodeAddr AddrOfSlot(ServerSlot slot) const;
  std::optional<ServerSlot> SlotOfAddr(net::NodeAddr addr) const;

  struct Stats {
    std::uint64_t opensServed = 0;      // leaf opens completed
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t queriesAnswered = 0;  // CmsHave sent
    std::uint64_t queriesSilent = 0;    // non-responses (rarely-respond)
    std::uint64_t redirectsIssued = 0;
    std::uint64_t waitsIssued = 0;
    std::uint64_t stagesStarted = 0;
    std::uint64_t creates = 0;
  };
  /// Legacy view of the node.* counters (kept for existing tests/benches).
  Stats GetStats() const;

  /// The node's instrument registry (tests and embedders may add their own
  /// instruments; they ride along in every snapshot).
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Local point-in-time metrics: registry instruments plus the cache /
  /// resolver / response-queue / maintenance component stats translated to
  /// canonical dotted names ("cache.hits", "resolver.redirects", ...).
  obs::MetricsSnapshot SnapshotMetrics() const;

  cms::MaintenanceDriver& maintenance() { return maintenance_; }

  /// Subscribed into the federation meta-manager? (managers with
  /// config.meta only; others always false)
  bool FedSubscribed() const { return fedClusterId_ >= 0; }
  std::int32_t FedClusterId() const { return fedClusterId_; }

  /// Sends a load/space report to the parent (selection metrics).
  void ReportLoad(std::uint32_t load, std::uint64_t freeSpace);

  /// Multi-line human-readable status (role, membership, cache, resolver,
  /// response-queue counters) for operator tooling and logs.
  std::string DescribeStatus() const;

 private:
  bool IsHead() const { return config_.role != NodeRole::kServer; }

  // cms message handlers
  void HandleLogin(net::NodeAddr from, const proto::CmsLogin& m);
  void HandleLoginResp(net::NodeAddr from, const proto::CmsLoginResp& m);
  void HandleQuery(net::NodeAddr from, const proto::CmsQuery& m);
  void HandleHave(net::NodeAddr from, const proto::CmsHave& m);
  void HandleGone(net::NodeAddr from, const proto::CmsGone& m);
  void HandleLoad(net::NodeAddr from, const proto::CmsLoad& m);

  // liveness / membership administration
  void HeartbeatTick();
  void HandlePing(net::NodeAddr from, const proto::CmsPing& m);
  void HandlePong(net::NodeAddr from, const proto::CmsPong& m);
  void HandleDeath(net::NodeAddr from, const proto::CmsDeath& m);
  void HandleDrain(net::NodeAddr from, const proto::CmsDrain& m);
  /// Fans a death/drain notice to every online supervisor subordinate so
  /// the whole subtree repairs its view. Returns targets reached.
  int FanToSupervisors(const proto::Message& notice);
  /// Current load/space numbers a pong or load report should carry.
  std::pair<std::uint32_t, std::uint64_t> CurrentLoad() const;

  // xrd message handlers
  void HandleOpen(net::NodeAddr from, const proto::XrdOpen& m);
  void HandleRead(net::NodeAddr from, const proto::XrdRead& m);
  void HandleReadV(net::NodeAddr from, const proto::XrdReadV& m);
  void HandleChecksum(net::NodeAddr from, const proto::XrdChecksum& m);
  void HandleWrite(net::NodeAddr from, const proto::XrdWrite& m);
  void HandleClose(net::NodeAddr from, const proto::XrdClose& m);
  void HandleStat(net::NodeAddr from, const proto::XrdStat& m);
  void HandleUnlink(net::NodeAddr from, const proto::XrdUnlink& m);
  void HandlePrepare(net::NodeAddr from, const proto::XrdPrepare& m);

  // stats aggregation (tentpole observability protocol)
  void HandleStatsQuery(net::NodeAddr from, const proto::StatsQuery& m);
  void HandleStatsReply(net::NodeAddr from, const proto::StatsReply& m);
  void FinishStatsAggregation(std::uint64_t aggId);

  // federation (manager <-> meta-manager)
  void SendFedSubscribe();
  void HandleFedSubscribeResp(net::NodeAddr from, const proto::FedSubscribeResp& m);
  void HandleFedQuery(net::NodeAddr from, const proto::FedQuery& m);
  void NotifyMetaHave(const proto::CmsHave& m);

  // role-specific pieces
  void HeadOpen(net::NodeAddr from, const proto::XrdOpen& m);
  void LeafOpen(net::NodeAddr from, const proto::XrdOpen& m);
  void SendLogins();
  void SendLoginTo(net::NodeAddr parent);
  bool IsParent(net::NodeAddr addr) const;
  void SendQueryDown(ServerSet targets, const std::string& path, std::uint32_t hash,
                     cms::AccessMode mode);
  void NotifyParentHave(const std::string& path, bool pending);

  NodeConfig config_;
  sched::Executor& executor_;
  net::Fabric& fabric_;
  oss::Oss* storage_;

  cms::Membership membership_;
  cms::LocationCache cache_;
  cms::FastResponseQueue respq_;
  cms::SelectionPolicy selection_;
  cms::Resolver resolver_;
  cms::MaintenanceDriver maintenance_;

  // Instruments the hot handlers bump. The registry owns them; the struct
  // caches references so handlers pay one relaxed atomic add per event.
  obs::MetricsRegistry metrics_;
  struct NodeMetrics {
    obs::Counter& opensServed;
    obs::Counter& reads;
    obs::Counter& writes;
    obs::Counter& queriesAnswered;
    obs::Counter& queriesSilent;
    obs::Counter& redirectsIssued;
    obs::Counter& waitsIssued;
    obs::Counter& stagesStarted;
    obs::Counter& creates;
    obs::Counter& loginsAccepted;  // subordinate logins this head admitted
    obs::Counter& loginsSent;      // login attempts toward parents
    obs::Counter& refreshes;       // opens carrying the refresh flag
    obs::Counter& statsQueries;    // StatsQuery frames served
    obs::Counter& pingsSent;       // heartbeat probes sent to subordinates
    obs::Counter& pongsReceived;   // heartbeat answers received
    explicit NodeMetrics(obs::MetricsRegistry& r);
  };
  NodeMetrics nm_;

  // slot <-> fabric address maps for subordinates
  std::array<net::NodeAddr, kMaxServersPerSet> slotAddr_{};
  std::unordered_map<net::NodeAddr, ServerSlot> addrSlot_;

  bool started_ = false;
  std::vector<net::NodeAddr> parents_;  // config_.parent + extraParents
  std::unordered_map<net::NodeAddr, ServerSlot> slotAtParent_;  // logged-in only

  // leaf open-file table
  struct OpenFile {
    std::string path;
    cms::AccessMode mode = cms::AccessMode::kRead;
  };
  std::unordered_map<std::uint64_t, OpenFile> openFiles_;
  std::uint64_t nextHandle_ = 1;

  sched::TimerId loginTimer_ = sched::kInvalidTimer;
  sched::TimerId loadTimer_ = sched::kInvalidTimer;
  sched::TimerId pingTimer_ = sched::kInvalidTimer;
  sched::TimerId fedTimer_ = sched::kInvalidTimer;  // FedSubscribe retry
  std::int32_t fedClusterId_ = -1;  // slot at the meta (-1 = not subscribed)
  std::uint64_t pingSeq_ = 0;
  // Last load/space numbers this node reported upward; pongs echo them so
  // parent selection metrics stay fresh between CmsLoad reports.
  std::uint32_t lastLoad_ = 0;
  std::uint64_t lastFree_ = 0;

  // One in-flight subtree aggregation per received StatsQuery. The key is
  // the reqId used on this node's *downward* queries; replies echo it.
  struct StatsAggregation {
    net::NodeAddr requester = 0;
    std::uint64_t requesterReqId = 0;
    obs::MetricsSnapshot acc;
    std::uint32_t nodeCount = 0;
    int outstanding = 0;
    sched::TimerId timer = sched::kInvalidTimer;
  };
  std::unordered_map<std::uint64_t, StatsAggregation> statsAggs_;
  std::uint64_t nextStatsAggId_ = 1;
};

}  // namespace scalla::xrd

// Directive-file configuration for Scalla nodes, in the spirit of
// xrootd's xrd.cf:
//
//   all.role        server            # manager | supervisor | server
//   all.name        dataserver07
//   all.addr        12                # fabric address (TCP: basePort+addr)
//   all.manager     1                 # parent address(es), space-separated
//   all.export      /store /scratch
//   cms.lifetime    8h
//   cms.delay       5s
//   cms.sweep       133ms
//   cms.dropdelay   10m
//   cms.cachebytes  256m              # location-cache byte budget (0 = unbounded)
//   cms.selection   roundrobin        # load | space | frequency | random
//   xrd.allowwrite  true
//   xrd.loadreport  30s
//   oss.localroot   /data/xrd         # serve a real directory (server role)
//
// A proxy cache tier (all.role proxy) additionally understands:
//
//   pcache.blocksize  64k              # cache block size
//   pcache.capacity   256m             # DRAM-tier cache bytes
//   pcache.hiwater    0.95             # DRAM eviction trigger (fraction)
//   pcache.lowater    0.80             # DRAM eviction target (fraction)
//   pcache.readahead  4                # blocks prefetched past a miss
//
// and, for the two-tier cache (docs/PCACHE.md), an optional disk tier
// that DRAM victims spill into and first-touch blocks land on until the
// ghost list proves reuse:
//
//   pcache.disk.capacity  16g          # disk-tier bytes (0 disables)
//   pcache.disk.path      /data/pcache # backing directory (required if on)
//   pcache.disk.hiwater   0.95         # disk eviction trigger (fraction)
//   pcache.disk.lowater   0.80         # disk eviction target (fraction)
//   pcache.ghost          65536        # ghost-list entries (0 = auto)
//
// (all.manager names the origin cluster heads for a proxy.)
//
// Federation (see docs/FEDERATION.md). A cluster head subscribes to a
// meta-manager with:
//
//   fed.meta        1                 # the meta-manager's fabric address
//   fed.cluster     site-a            # global cluster name at the meta
//   fed.locality    0                 # distance weight (0 = nearest)
//
// and the meta tier itself runs as its own role:
//
//   all.role        meta              # fronts up to 64 cluster heads
//
// Transport tuning (any role; parsed once into net::FabricOptions and
// validated with net::ValidateFabricOptions, so bad values fail loudly):
//
//   fabric.loopthreads     2           # reactor event-loop pool size
//   fabric.connecttimeout  1s          # non-blocking connect deadline
//   fabric.writetimeout    2s          # write-progress deadline
//   fabric.queuedepth      4096        # per-peer bounded outbound queue
//   fabric.idletimeout     0           # idle-connection reap (0 disables)
//   fabric.sendbuf         0           # SO_SNDBUF bytes (0 = OS default)
//
// Unknown keys are reported as errors so typos do not silently default.
#pragma once

#include <optional>
#include <string>

#include "net/tcp_fabric.h"
#include "pcache/tiered_cache.h"
#include "util/config.h"
#include "xrd/scalla_node.h"

namespace scalla::xrd {

struct LoadedNodeConfig {
  NodeConfig node;
  // all.role meta: run a fed::MetaManager instead of a ScallaNode (the
  // node fields name/addr/cms/selection seed its MetaConfig).
  bool isMeta = false;
  std::string localRoot;  // non-empty => back the server with LocalOss
  net::FabricOptions fabric;  // fabric.* transport tuning
  // Proxy role only (node.role == NodeRole::kProxy). `pcacheTiered` is
  // validated with pcache::ValidateTieredConfig; a non-zero disk capacity
  // requires pcacheDiskRoot (the LocalOss directory backing the tier).
  pcache::TieredCacheConfig pcacheTiered;
  std::string pcacheDiskRoot;
  int pcacheReadAhead = 0;
};

/// Parses directive text into a node configuration. Returns std::nullopt
/// and fills *error on malformed input, unknown keys, or missing
/// requirements (role, addr; manager for non-manager roles).
std::optional<LoadedNodeConfig> LoadNodeConfig(const std::string& text,
                                               std::string* error);

}  // namespace scalla::xrd

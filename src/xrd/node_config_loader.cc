#include "xrd/node_config_loader.h"

#include <set>
#include <sstream>

namespace scalla::xrd {
namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Byte sizes with optional k/m/g suffix ("64k", "256m", "1g", "4096").
std::optional<std::uint64_t> ParseSize(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return std::nullopt;
  std::uint64_t scale = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': scale = 1024ull; break;
      case 'm': case 'M': scale = 1024ull * 1024; break;
      case 'g': case 'G': scale = 1024ull * 1024 * 1024; break;
      default: return std::nullopt;
    }
    if (*(end + 1) != '\0') return std::nullopt;
  }
  return value * scale;
}

}  // namespace

std::optional<LoadedNodeConfig> LoadNodeConfig(const std::string& text,
                                               std::string* error) {
  const auto parsed = util::Config::Parse(text, error);
  if (!parsed.has_value()) return std::nullopt;

  static const std::set<std::string> kKnown = {
      "all.role",      "all.name",      "all.addr",     "all.manager",
      "all.export",    "cms.lifetime",  "cms.delay",    "cms.sweep",
      "cms.dropdelay", "cms.selection", "cms.ping",     "cms.misslimit",
      "cms.suspendload", "cms.resumeload", "cms.cachebytes",
      "xrd.allowwrite", "xrd.loadreport",
      "oss.localroot", "all.cnsd",      "pcache.blocksize", "pcache.capacity",
      "pcache.hiwater", "pcache.lowater", "pcache.readahead",
      "pcache.disk.capacity", "pcache.disk.path", "pcache.disk.hiwater",
      "pcache.disk.lowater", "pcache.ghost",
      "fabric.connecttimeout", "fabric.writetimeout", "fabric.queuedepth",
      "fabric.loopthreads",    "fabric.idletimeout",  "fabric.sendbuf",
      "fed.meta",      "fed.cluster",   "fed.locality"};
  for (const auto& [key, _] : parsed->entries()) {
    if (kKnown.count(key) == 0) {
      Fail(error, "unknown directive: " + key);
      return std::nullopt;
    }
  }

  LoadedNodeConfig out;
  NodeConfig& cfg = out.node;

  const auto role = parsed->GetString("all.role");
  if (!role.has_value()) {
    Fail(error, "all.role is required");
    return std::nullopt;
  }
  if (*role == "manager") {
    cfg.role = NodeRole::kManager;
  } else if (*role == "supervisor") {
    cfg.role = NodeRole::kSupervisor;
  } else if (*role == "server") {
    cfg.role = NodeRole::kServer;
  } else if (*role == "proxy") {
    cfg.role = NodeRole::kProxy;
  } else if (*role == "meta") {
    // The federation tier: serves no data and exports no paths of its
    // own, so the export/manager requirements below do not apply.
    cfg.role = NodeRole::kManager;
    out.isMeta = true;
  } else {
    Fail(error, "all.role must be manager|supervisor|server|proxy|meta, got " + *role);
    return std::nullopt;
  }

  const auto addr = parsed->GetInt("all.addr");
  if (!addr.has_value() || *addr <= 0) {
    Fail(error, "all.addr (positive integer) is required");
    return std::nullopt;
  }
  cfg.addr = static_cast<net::NodeAddr>(*addr);
  cfg.name = parsed->GetStringOr("all.name", "node" + std::to_string(*addr));

  if (const auto managers = parsed->GetString("all.manager"); managers.has_value()) {
    std::istringstream in(*managers);
    std::string tok;
    std::vector<net::NodeAddr> parents;
    while (in >> tok) {
      const long value = std::strtol(tok.c_str(), nullptr, 10);
      if (value <= 0) {
        Fail(error, "all.manager entries must be positive integers");
        return std::nullopt;
      }
      parents.push_back(static_cast<net::NodeAddr>(value));
    }
    if (!parents.empty()) {
      cfg.parent = parents.front();
      cfg.extraParents.assign(parents.begin() + 1, parents.end());
    }
  }
  if (cfg.role != NodeRole::kManager && cfg.parent == 0) {
    Fail(error, "all.manager is required for supervisor/server roles");
    return std::nullopt;
  }

  const bool hasFedKey = parsed->Has("fed.meta") || parsed->Has("fed.cluster") ||
                         parsed->Has("fed.locality");
  if (hasFedKey && (cfg.role != NodeRole::kManager || out.isMeta)) {
    Fail(error, "fed.* directives only apply to the manager role");
    return std::nullopt;
  }
  if (const auto meta = parsed->GetInt("fed.meta"); meta.has_value()) {
    if (*meta <= 0) {
      Fail(error, "fed.meta must be a positive fabric address");
      return std::nullopt;
    }
    cfg.meta = static_cast<net::NodeAddr>(*meta);
  } else if (parsed->Has("fed.meta")) {
    Fail(error, "fed.meta must be an integer");
    return std::nullopt;
  }
  cfg.clusterName = parsed->GetStringOr("fed.cluster", "");
  if (const auto locality = parsed->GetInt("fed.locality"); locality.has_value()) {
    if (*locality < 0) {
      Fail(error, "fed.locality must be non-negative (0 = nearest)");
      return std::nullopt;
    }
    cfg.locality = static_cast<std::uint32_t>(*locality);
  }
  if ((parsed->Has("fed.cluster") || parsed->Has("fed.locality")) && cfg.meta == 0) {
    Fail(error, "fed.cluster/fed.locality require fed.meta");
    return std::nullopt;
  }

  cfg.exports.clear();  // the struct default ("/") must be stated explicitly
  if (const auto exports = parsed->GetString("all.export"); exports.has_value()) {
    std::istringstream in(*exports);
    std::string tok;
    while (in >> tok) cfg.exports.push_back(tok);
  }
  if (cfg.exports.empty() && cfg.role != NodeRole::kProxy && !out.isMeta) {
    Fail(error, "all.export must list at least one prefix");
    return std::nullopt;
  }

  cfg.cms.lifetime = parsed->GetDurationOr("cms.lifetime", cfg.cms.lifetime);
  cfg.cms.deadline = parsed->GetDurationOr("cms.delay", cfg.cms.deadline);
  cfg.cms.sweepPeriod = parsed->GetDurationOr("cms.sweep", cfg.cms.sweepPeriod);
  cfg.cms.dropDelay = parsed->GetDurationOr("cms.dropdelay", cfg.cms.dropDelay);

  if (parsed->Has("cms.ping")) {
    const auto ping = parsed->GetDuration("cms.ping");
    if (!ping.has_value() || *ping < Duration::zero()) {
      Fail(error, "cms.ping must be a non-negative duration (0 disables)");
      return std::nullopt;
    }
    cfg.cms.ping = *ping;
  }
  if (const auto limit = parsed->GetInt("cms.misslimit"); limit.has_value()) {
    if (*limit < 1) {
      Fail(error, "cms.misslimit must be at least 1");
      return std::nullopt;
    }
    cfg.cms.missLimit = static_cast<int>(*limit);
  } else if (parsed->Has("cms.misslimit")) {
    Fail(error, "cms.misslimit must be an integer");
    return std::nullopt;
  }
  if (const auto load = parsed->GetInt("cms.suspendload"); load.has_value()) {
    if (*load < 0) {
      Fail(error, "cms.suspendload must be non-negative (0 disables)");
      return std::nullopt;
    }
    cfg.cms.suspendLoad = static_cast<std::uint32_t>(*load);
  }
  if (const auto load = parsed->GetInt("cms.resumeload"); load.has_value()) {
    if (*load < 0) {
      Fail(error, "cms.resumeload must be non-negative");
      return std::nullopt;
    }
    cfg.cms.resumeLoad = static_cast<std::uint32_t>(*load);
  }
  if (cfg.cms.suspendLoad > 0 && cfg.cms.resumeLoad >= cfg.cms.suspendLoad) {
    Fail(error, "cms.resumeload must be below cms.suspendload");
    return std::nullopt;
  }
  if (parsed->Has("cms.cachebytes")) {
    const auto budget = ParseSize(parsed->GetStringOr("cms.cachebytes", ""));
    if (!budget.has_value()) {
      Fail(error, "cms.cachebytes must be a byte size (e.g. 256m; 0 = unbounded)");
      return std::nullopt;
    }
    // A non-zero budget below 1 MiB cannot hold the initial bucket table
    // plus one arena growth and would thrash the emergency evictor.
    if (*budget != 0 && *budget < 1024ull * 1024) {
      Fail(error, "cms.cachebytes must be 0 (unbounded) or at least 1m");
      return std::nullopt;
    }
    cfg.cms.cacheBytes = static_cast<std::size_t>(*budget);
  }

  if (const auto sel = parsed->GetString("cms.selection"); sel.has_value()) {
    if (*sel == "roundrobin") {
      cfg.selection = cms::SelectCriterion::kRoundRobin;
    } else if (*sel == "load") {
      cfg.selection = cms::SelectCriterion::kLoad;
    } else if (*sel == "space") {
      cfg.selection = cms::SelectCriterion::kSpace;
    } else if (*sel == "frequency") {
      cfg.selection = cms::SelectCriterion::kFrequency;
    } else if (*sel == "random") {
      cfg.selection = cms::SelectCriterion::kRandom;
    } else {
      Fail(error, "cms.selection: unknown criterion " + *sel);
      return std::nullopt;
    }
  }

  if (const auto allow = parsed->GetBool("xrd.allowwrite"); allow.has_value()) {
    cfg.allowWrite = *allow;
  } else if (parsed->Has("xrd.allowwrite")) {
    Fail(error, "xrd.allowwrite must be a boolean");
    return std::nullopt;
  }
  cfg.loadReportInterval =
      parsed->GetDurationOr("xrd.loadreport", cfg.loadReportInterval);
  if (const auto cnsd = parsed->GetInt("all.cnsd"); cnsd.has_value()) {
    cfg.cnsd = static_cast<net::NodeAddr>(*cnsd);
  }

  out.localRoot = parsed->GetStringOr("oss.localroot", "");
  if (!out.localRoot.empty() && cfg.role != NodeRole::kServer) {
    Fail(error, "oss.localroot only applies to the server role");
    return std::nullopt;
  }

  bool hasPcacheKey = false;
  for (const auto& [key, _] : parsed->entries()) {
    if (key.rfind("pcache.", 0) == 0) hasPcacheKey = true;
  }
  if (hasPcacheKey && cfg.role != NodeRole::kProxy) {
    Fail(error, "pcache.* directives only apply to the proxy role");
    return std::nullopt;
  }
  if (cfg.role == NodeRole::kProxy) {
    pcache::BlockCacheConfig& dram = out.pcacheTiered.dram;
    if (const auto bs = parsed->GetString("pcache.blocksize"); bs.has_value()) {
      const auto size = ParseSize(*bs);
      if (!size.has_value() || *size == 0) {
        Fail(error, "pcache.blocksize: bad size " + *bs);
        return std::nullopt;
      }
      dram.blockSize = static_cast<std::uint32_t>(*size);
    }
    if (const auto cap = parsed->GetString("pcache.capacity"); cap.has_value()) {
      const auto size = ParseSize(*cap);
      if (!size.has_value() || *size == 0) {
        Fail(error, "pcache.capacity: bad size " + *cap);
        return std::nullopt;
      }
      dram.capacityBytes = *size;
    }
    dram.highWatermark = parsed->GetDoubleOr("pcache.hiwater", dram.highWatermark);
    dram.lowWatermark = parsed->GetDoubleOr("pcache.lowater", dram.lowWatermark);
    if (const auto cap = parsed->GetString("pcache.disk.capacity"); cap.has_value()) {
      const auto size = ParseSize(*cap);
      if (!size.has_value()) {
        Fail(error, "pcache.disk.capacity: bad size " + *cap + " (0 disables)");
        return std::nullopt;
      }
      out.pcacheTiered.diskCapacityBytes = *size;
    }
    out.pcacheTiered.diskHighWatermark = parsed->GetDoubleOr(
        "pcache.disk.hiwater", out.pcacheTiered.diskHighWatermark);
    out.pcacheTiered.diskLowWatermark = parsed->GetDoubleOr(
        "pcache.disk.lowater", out.pcacheTiered.diskLowWatermark);
    if (const auto ghost = parsed->GetInt("pcache.ghost"); ghost.has_value()) {
      if (*ghost < 0) {
        Fail(error, "pcache.ghost must be non-negative (0 = auto)");
        return std::nullopt;
      }
      out.pcacheTiered.ghostEntries = static_cast<std::size_t>(*ghost);
    } else if (parsed->Has("pcache.ghost")) {
      Fail(error, "pcache.ghost must be an integer entry count");
      return std::nullopt;
    }
    out.pcacheDiskRoot = parsed->GetStringOr("pcache.disk.path", "");
    if (out.pcacheTiered.diskCapacityBytes > 0 && out.pcacheDiskRoot.empty()) {
      Fail(error, "pcache.disk.capacity requires pcache.disk.path");
      return std::nullopt;
    }
    if (const auto valid = pcache::ValidateTieredConfig(out.pcacheTiered);
        !valid.ok()) {
      Fail(error, valid.error().message);
      return std::nullopt;
    }
    out.pcacheReadAhead =
        static_cast<int>(parsed->GetIntOr("pcache.readahead", 0));
  }

  // fabric.* parses into one net::FabricOptions shared by every transport;
  // range checking is centralized in net::ValidateFabricOptions below so
  // the loader and transport constructors agree on what is legal.
  Duration connectTimeout(out.fabric.connectTimeout);
  Duration writeTimeout(out.fabric.writeTimeout);
  Duration idleTimeout(out.fabric.idleTimeout);
  for (const auto& [key, dest] :
       {std::pair<const char*, Duration*>{"fabric.connecttimeout", &connectTimeout},
        {"fabric.writetimeout", &writeTimeout},
        {"fabric.idletimeout", &idleTimeout}}) {
    if (!parsed->Has(key)) continue;
    const auto value = parsed->GetDuration(key);
    if (!value.has_value()) {
      Fail(error, std::string(key) + " must be a duration");
      return std::nullopt;
    }
    *dest = *value;
  }
  out.fabric.connectTimeout =
      std::chrono::duration_cast<std::chrono::milliseconds>(connectTimeout);
  out.fabric.writeTimeout =
      std::chrono::duration_cast<std::chrono::milliseconds>(writeTimeout);
  out.fabric.idleTimeout =
      std::chrono::duration_cast<std::chrono::milliseconds>(idleTimeout);
  if (parsed->Has("fabric.queuedepth")) {
    const auto depth = parsed->GetInt("fabric.queuedepth");
    if (!depth.has_value() || *depth <= 0) {
      Fail(error, "fabric.queuedepth must be a positive integer");
      return std::nullopt;
    }
    out.fabric.maxQueuedMessages = static_cast<std::size_t>(*depth);
  }
  if (parsed->Has("fabric.loopthreads")) {
    const auto threads = parsed->GetInt("fabric.loopthreads");
    if (!threads.has_value()) {
      Fail(error, "fabric.loopthreads must be an integer");
      return std::nullopt;
    }
    out.fabric.loopThreads = static_cast<int>(*threads);
  }
  if (parsed->Has("fabric.sendbuf")) {
    const auto size = ParseSize(parsed->GetStringOr("fabric.sendbuf", ""));
    if (!size.has_value()) {
      Fail(error, "fabric.sendbuf must be a byte size (0 = OS default)");
      return std::nullopt;
    }
    out.fabric.sendBufferBytes = static_cast<std::size_t>(*size);
  }
  if (const auto valid = net::ValidateFabricOptions(out.fabric); !valid.ok()) {
    Fail(error, valid.error().message);
    return std::nullopt;
  }
  return out;
}

}  // namespace scalla::xrd

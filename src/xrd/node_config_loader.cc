#include "xrd/node_config_loader.h"

#include <set>
#include <sstream>

namespace scalla::xrd {
namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::optional<LoadedNodeConfig> LoadNodeConfig(const std::string& text,
                                               std::string* error) {
  const auto parsed = util::Config::Parse(text, error);
  if (!parsed.has_value()) return std::nullopt;

  static const std::set<std::string> kKnown = {
      "all.role",      "all.name",      "all.addr",     "all.manager",
      "all.export",    "cms.lifetime",  "cms.delay",    "cms.sweep",
      "cms.dropdelay", "cms.selection", "xrd.allowwrite", "xrd.loadreport",
      "oss.localroot", "all.cnsd"};
  for (const auto& [key, _] : parsed->entries()) {
    if (kKnown.count(key) == 0) {
      Fail(error, "unknown directive: " + key);
      return std::nullopt;
    }
  }

  LoadedNodeConfig out;
  NodeConfig& cfg = out.node;

  const auto role = parsed->GetString("all.role");
  if (!role.has_value()) {
    Fail(error, "all.role is required");
    return std::nullopt;
  }
  if (*role == "manager") {
    cfg.role = NodeRole::kManager;
  } else if (*role == "supervisor") {
    cfg.role = NodeRole::kSupervisor;
  } else if (*role == "server") {
    cfg.role = NodeRole::kServer;
  } else {
    Fail(error, "all.role must be manager|supervisor|server, got " + *role);
    return std::nullopt;
  }

  const auto addr = parsed->GetInt("all.addr");
  if (!addr.has_value() || *addr <= 0) {
    Fail(error, "all.addr (positive integer) is required");
    return std::nullopt;
  }
  cfg.addr = static_cast<net::NodeAddr>(*addr);
  cfg.name = parsed->GetStringOr("all.name", "node" + std::to_string(*addr));

  if (const auto managers = parsed->GetString("all.manager"); managers.has_value()) {
    std::istringstream in(*managers);
    std::string tok;
    std::vector<net::NodeAddr> parents;
    while (in >> tok) {
      const long value = std::strtol(tok.c_str(), nullptr, 10);
      if (value <= 0) {
        Fail(error, "all.manager entries must be positive integers");
        return std::nullopt;
      }
      parents.push_back(static_cast<net::NodeAddr>(value));
    }
    if (!parents.empty()) {
      cfg.parent = parents.front();
      cfg.extraParents.assign(parents.begin() + 1, parents.end());
    }
  }
  if (cfg.role != NodeRole::kManager && cfg.parent == 0) {
    Fail(error, "all.manager is required for supervisor/server roles");
    return std::nullopt;
  }

  cfg.exports.clear();  // the struct default ("/") must be stated explicitly
  if (const auto exports = parsed->GetString("all.export"); exports.has_value()) {
    std::istringstream in(*exports);
    std::string tok;
    while (in >> tok) cfg.exports.push_back(tok);
  }
  if (cfg.exports.empty()) {
    Fail(error, "all.export must list at least one prefix");
    return std::nullopt;
  }

  cfg.cms.lifetime = parsed->GetDurationOr("cms.lifetime", cfg.cms.lifetime);
  cfg.cms.deadline = parsed->GetDurationOr("cms.delay", cfg.cms.deadline);
  cfg.cms.sweepPeriod = parsed->GetDurationOr("cms.sweep", cfg.cms.sweepPeriod);
  cfg.cms.dropDelay = parsed->GetDurationOr("cms.dropdelay", cfg.cms.dropDelay);

  if (const auto sel = parsed->GetString("cms.selection"); sel.has_value()) {
    if (*sel == "roundrobin") {
      cfg.selection = cms::SelectCriterion::kRoundRobin;
    } else if (*sel == "load") {
      cfg.selection = cms::SelectCriterion::kLoad;
    } else if (*sel == "space") {
      cfg.selection = cms::SelectCriterion::kSpace;
    } else if (*sel == "frequency") {
      cfg.selection = cms::SelectCriterion::kFrequency;
    } else if (*sel == "random") {
      cfg.selection = cms::SelectCriterion::kRandom;
    } else {
      Fail(error, "cms.selection: unknown criterion " + *sel);
      return std::nullopt;
    }
  }

  if (const auto allow = parsed->GetBool("xrd.allowwrite"); allow.has_value()) {
    cfg.allowWrite = *allow;
  } else if (parsed->Has("xrd.allowwrite")) {
    Fail(error, "xrd.allowwrite must be a boolean");
    return std::nullopt;
  }
  cfg.loadReportInterval =
      parsed->GetDurationOr("xrd.loadreport", cfg.loadReportInterval);
  if (const auto cnsd = parsed->GetInt("all.cnsd"); cnsd.has_value()) {
    cfg.cnsd = static_cast<net::NodeAddr>(*cnsd);
  }

  out.localRoot = parsed->GetStringOr("oss.localroot", "");
  if (!out.localRoot.empty() && cfg.role != NodeRole::kServer) {
    Fail(error, "oss.localroot only applies to the server role");
    return std::nullopt;
  }
  return out;
}

}  // namespace scalla::xrd

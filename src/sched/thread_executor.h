// Single-threaded real-time executor: one dispatch thread drains posted
// tasks and due timers in order. Each node in a threaded (TCP) cluster owns
// one ThreadExecutor, giving the node's logic serialized execution — the
// actor-style equivalent of the paper's "avoid locks whenever possible".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "sched/executor.h"

namespace scalla::sched {

class ThreadExecutor final : public Executor {
 public:
  ThreadExecutor();
  ~ThreadExecutor() override;

  ThreadExecutor(const ThreadExecutor&) = delete;
  ThreadExecutor& operator=(const ThreadExecutor&) = delete;

  void Post(Task task) override;
  TimerId RunAfter(Duration delay, Task task) override;
  TimerId RunEvery(Duration period, Task task) override;
  bool Cancel(TimerId id) override;
  util::Clock& clock() override { return clock_; }

  /// Requests shutdown and joins the dispatch thread. Pending tasks are
  /// dropped; running task completes. Idempotent.
  void Stop();

  /// True when called from the dispatch thread (for assertions).
  bool InDispatchThread() const;

 private:
  struct Timer {
    TimerId id;
    TimePoint due;
    Duration period;  // zero => one-shot
    Task task;
  };

  void Run();
  TimerId AddTimer(Duration delay, Duration period, Task task);

  util::SystemClock clock_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  std::multimap<TimePoint, Timer> timers_;
  std::uint64_t nextTimerId_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace scalla::sched

#include "sched/thread_executor.h"

#include <utility>
#include <vector>

namespace scalla::sched {

ThreadExecutor::ThreadExecutor() : thread_([this] { Run(); }) {}

ThreadExecutor::~ThreadExecutor() { Stop(); }

void ThreadExecutor::Post(Task task) {
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

TimerId ThreadExecutor::AddTimer(Duration delay, Duration period, Task task) {
  TimerId id;
  {
    std::lock_guard lock(mu_);
    if (stopping_) return kInvalidTimer;
    id = nextTimerId_++;
    const TimePoint due = clock_.Now() + delay;
    timers_.emplace(due, Timer{id, due, period, std::move(task)});
  }
  cv_.notify_one();
  return id;
}

TimerId ThreadExecutor::RunAfter(Duration delay, Task task) {
  return AddTimer(delay, Duration::zero(), std::move(task));
}

TimerId ThreadExecutor::RunEvery(Duration period, Task task) {
  return AddTimer(period, period, std::move(task));
}

bool ThreadExecutor::Cancel(TimerId id) {
  std::lock_guard lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == id) {
      timers_.erase(it);
      return true;
    }
  }
  return false;
}

void ThreadExecutor::Stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      // Already stopping; just make sure the thread is joined below.
    }
    stopping_ = true;
    tasks_.clear();
    timers_.clear();
  }
  cv_.notify_one();
  if (thread_.joinable() && thread_.get_id() != std::this_thread::get_id()) {
    thread_.join();
  }
}

bool ThreadExecutor::InDispatchThread() const {
  return std::this_thread::get_id() == thread_.get_id();
}

void ThreadExecutor::Run() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    const TimePoint now = clock_.Now();

    // Fire all due timers.
    while (!timers_.empty() && timers_.begin()->first <= now) {
      auto node = timers_.extract(timers_.begin());
      Timer timer = std::move(node.mapped());
      if (timer.period > Duration::zero()) {
        Timer repeat = timer;  // re-arm before running so Cancel works inside
        repeat.due = now + timer.period;
        timers_.emplace(repeat.due, std::move(repeat));
      }
      lock.unlock();
      timer.task();
      lock.lock();
      if (stopping_) return;
    }

    if (!tasks_.empty()) {
      Task task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      continue;
    }

    if (timers_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty() || !timers_.empty(); });
    } else {
      cv_.wait_until(lock, std::chrono::time_point_cast<std::chrono::steady_clock::duration>(
                               timers_.begin()->first));
    }
  }
}

}  // namespace scalla::sched

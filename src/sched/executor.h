// Execution abstraction. The paper's cmsd runs several cooperating
// threads: the L_t/64 window-tick thread, the background purge jobs, the
// 133 ms fast-response sweep thread, and per-request worker threads. In
// this reproduction each such activity is expressed as tasks and timers on
// an Executor so that identical cms code runs:
//   - under sched::ThreadExecutor  -> real threads, real time;
//   - under sim::SimExecutor       -> single-threaded discrete-event
//     simulation with virtual time (deterministic tests, large-scale
//     latency benches on one core).
#pragma once

#include <cstdint>
#include <functional>

#include "util/clock.h"
#include "util/types.h"

namespace scalla::sched {

using Task = std::function<void()>;
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs `task` as soon as possible, after previously posted tasks.
  virtual void Post(Task task) = 0;

  /// Runs `task` once, `delay` from now. Returns a cancellation handle.
  virtual TimerId RunAfter(Duration delay, Task task) = 0;

  /// Runs `task` every `period`, first firing one period from now.
  virtual TimerId RunEvery(Duration period, Task task) = 0;

  /// Cancels a timer; returns false if it already fired (one-shot) or was
  /// never valid.
  virtual bool Cancel(TimerId id) = 0;

  /// The time source this executor schedules against.
  virtual util::Clock& clock() = 0;
};

}  // namespace scalla::sched

#include "cnsd/cns_daemon.h"

namespace scalla::cnsd {

void CnsDaemon::OnMessage(net::NodeAddr from, proto::Message message) {
  std::visit(
      [this, from](auto&& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, proto::CmsHave>) {
          names_.insert(m.path);
        } else if constexpr (std::is_same_v<M, proto::CmsGone>) {
          names_.erase(m.path);
        } else if constexpr (std::is_same_v<M, proto::CnsList>) {
          proto::CnsListResp resp;
          resp.reqId = m.reqId;
          for (auto it = names_.lower_bound(m.prefix); it != names_.end(); ++it) {
            if (it->compare(0, m.prefix.size(), m.prefix) != 0) break;
            resp.names.push_back(*it);
          }
          fabric_.Send(addr_, from, std::move(resp));
        }
      },
      std::move(message));
}

}  // namespace scalla::cnsd

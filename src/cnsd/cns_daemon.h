// Cluster Name Space daemon. Scalla managers keep a flat namespace and
// deliberately do not implement a global ls; "full POSIX semantics can be
// implemented in higher level functions ... with a Cluster Name Space
// daemon" (paper section II-B4, footnote 3, and section V). This daemon
// subscribes to create/unlink notifications (the CmsHave newfile /
// CmsGone traffic the nodes already emit) and answers CnsList queries
// with the union namespace.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "net/fabric.h"

namespace scalla::cnsd {

class CnsDaemon : public net::MessageSink {
 public:
  CnsDaemon(net::NodeAddr addr, net::Fabric& fabric)
      : addr_(addr), fabric_(fabric) {}

  // net::MessageSink
  void OnMessage(net::NodeAddr from, proto::Message message) override;

  std::size_t NameCount() const { return names_.size(); }

 private:
  net::NodeAddr addr_;
  net::Fabric& fabric_;
  std::set<std::string> names_;  // sorted: list is a range scan
};

}  // namespace scalla::cnsd

// Federation tier: the meta-manager that clusters the clusters.
//
// The paper's 64-ary B-tree composes: the same subscribe / locate /
// redirect machinery that lets a manager front 64 servers lets a
// meta-manager front 64 *clusters*. Independent clusters' head managers
// subscribe here (FedSubscribe) exactly as servers log into a manager;
// the meta resolves a path to the owning cluster with the same
// name-cache machinery one level up — ServerSet correction vectors keyed
// by cluster ID instead of server slot, CRC32 + Fibonacci hashing and
// window eviction reused verbatim from src/cms/ — and redirects the
// client to that cluster's head, which resolves to a data server as
// today. Request-rarely-respond also lifts one level: the meta floods
// FedQuery to subscribed heads and only owners answer (FedHave).
//
// Cross-cluster replica preference uses locality weights: each cluster
// subscribes with a distance weight folded into its reported load, so a
// load-based selection prefers near clusters when several hold a file.
// A pcache proxy whose origin head is the meta acts as a federation edge
// cache with no new proxy code (its embedded client follows the two-hop
// redirect walk like any other client).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "cms/location_cache.h"
#include "cms/maintenance.h"
#include "cms/membership.h"
#include "cms/resolver.h"
#include "cms/response_queue.h"
#include "cms/selection.h"
#include "cms/types.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "sched/executor.h"

namespace scalla::fed {

struct MetaConfig {
  std::string name = "meta";
  net::NodeAddr addr = 0;
  cms::CmsConfig cms;
  // kLoad makes locality weights effective: a cluster's reported load is
  // locality * kLocalityScale + its heads' piggybacked load, so nearer
  // clusters win ties. Round-robin ignores locality (still correct).
  cms::SelectCriterion selection = cms::SelectCriterion::kLoad;
  bool startTimers = true;
  Duration statsTimeout = std::chrono::seconds(2);
};

class MetaManager : public net::MessageSink {
 public:
  /// Load units one locality step is worth; keeps locality dominant over
  /// the (small) head load numbers without saturating the u32.
  static constexpr std::uint32_t kLocalityScale = 1000;

  MetaManager(MetaConfig config, sched::Executor& executor, net::Fabric& fabric);
  ~MetaManager() override;

  MetaManager(const MetaManager&) = delete;
  MetaManager& operator=(const MetaManager&) = delete;

  /// Starts maintenance timers (window tick, sweep, drop scan, heartbeat).
  void Start();
  void Stop();

  // net::MessageSink
  void OnMessage(net::NodeAddr from, proto::Message message) override;
  void OnPeerDown(net::NodeAddr peer) override;

  // ---- introspection (tests / benches / tools) ----
  const MetaConfig& config() const { return config_; }
  cms::Membership& membership() { return membership_; }
  cms::LocationCache& cache() { return cache_; }
  cms::Resolver& resolver() { return resolver_; }
  net::NodeAddr HeadOfCluster(ServerSlot clusterId) const;
  std::optional<ServerSlot> ClusterOfHead(net::NodeAddr addr) const;

  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Local metrics under fed.* plus the reused cache/resolver/respq
  /// component stats — same canonical dotted names as a ScallaNode, so
  /// federation-level StatsQuery merges compose with cluster aggregates.
  obs::MetricsSnapshot SnapshotMetrics() const;

 private:
  // fed protocol (cluster heads)
  void HandleSubscribe(net::NodeAddr from, const proto::FedSubscribe& m);
  void HandleHave(net::NodeAddr from, const proto::FedHave& m);
  void HandleGone(net::NodeAddr from, const proto::FedGone& m);
  void HandleLocate(net::NodeAddr from, const proto::FedLocate& m);

  // xrd protocol (clients): every meta answer is redirect / wait / error —
  // the meta serves no data and holds no namespace, only location bits.
  void HandleOpen(net::NodeAddr from, const proto::XrdOpen& m);
  void HandleStat(net::NodeAddr from, const proto::XrdStat& m);
  void HandleUnlink(net::NodeAddr from, const proto::XrdUnlink& m);
  void HandleChecksum(net::NodeAddr from, const proto::XrdChecksum& m);
  void HandlePrepare(net::NodeAddr from, const proto::XrdPrepare& m);

  // liveness
  void HeartbeatTick();
  void HandlePong(net::NodeAddr from, const proto::CmsPong& m);

  // observability
  void HandleStatsQuery(net::NodeAddr from, const proto::StatsQuery& m);
  void HandleStatsReply(net::NodeAddr from, const proto::StatsReply& m);
  void FinishStatsAggregation(std::uint64_t aggId);

  void SendQueryDown(ServerSet targets, const std::string& path, std::uint32_t hash,
                     cms::AccessMode mode);
  /// Pick a writable, selectable cluster for a creation (avoiding the one
  /// that just refused the client).
  ServerSlot ChooseCreateTarget(const std::string& path, ServerSlot avoid);
  std::uint32_t EffectiveLoad(ServerSlot clusterId, std::uint32_t headLoad) const;

  MetaConfig config_;
  sched::Executor& executor_;
  net::Fabric& fabric_;

  cms::Membership membership_;
  cms::LocationCache cache_;
  cms::FastResponseQueue respq_;
  cms::SelectionPolicy selection_;
  cms::Resolver resolver_;
  cms::MaintenanceDriver maintenance_;

  obs::MetricsRegistry metrics_;
  struct FedMetrics {
    obs::Counter& subscribes;       // FedSubscribe frames admitted
    obs::Counter& locates;          // client-visible resolutions served
    obs::Counter& redirects;        // redirects issued to cluster heads
    obs::Counter& waits;            // wait answers issued
    obs::Counter& notFound;         // global-namespace misses
    obs::Counter& clusterDeaths;    // heartbeat death declarations
    obs::Counter& pingsSent;
    obs::Counter& pongsReceived;
    obs::Counter& statsQueries;
    explicit FedMetrics(obs::MetricsRegistry& r);
  };
  FedMetrics fm_;

  // cluster slot <-> head fabric address, plus per-cluster locality weight
  std::array<net::NodeAddr, kMaxServersPerSet> slotAddr_{};
  std::array<std::uint32_t, kMaxServersPerSet> locality_{};
  std::unordered_map<net::NodeAddr, ServerSlot> addrSlot_;

  bool started_ = false;
  std::uint64_t pingSeq_ = 0;
  sched::TimerId pingTimer_ = sched::kInvalidTimer;

  // Federation-level StatsQuery merge: fan to every online cluster head,
  // fold their (already tree-aggregated) snapshots plus our own fed.* view.
  struct StatsAggregation {
    net::NodeAddr requester = 0;
    std::uint64_t requesterReqId = 0;
    obs::MetricsSnapshot acc;
    std::uint32_t nodeCount = 0;
    int outstanding = 0;
    sched::TimerId timer = sched::kInvalidTimer;
  };
  std::unordered_map<std::uint64_t, StatsAggregation> statsAggs_;
  std::uint64_t nextStatsAggId_ = 1;
};

}  // namespace scalla::fed

#include "fed/meta_manager.h"

#include <utility>

#include "util/logger.h"

namespace scalla::fed {

using cms::AccessMode;
using cms::LocateResult;
using cms::LocateStatus;

namespace {

AccessMode ModeOf(std::uint8_t raw) {
  return raw == 0 ? AccessMode::kRead : AccessMode::kWrite;
}

}  // namespace

MetaManager::FedMetrics::FedMetrics(obs::MetricsRegistry& r)
    : subscribes(r.GetCounter("fed.subscribes")),
      locates(r.GetCounter("fed.locates")),
      redirects(r.GetCounter("fed.redirects_issued")),
      waits(r.GetCounter("fed.waits_issued")),
      notFound(r.GetCounter("fed.not_found")),
      clusterDeaths(r.GetCounter("fed.cluster_deaths")),
      pingsSent(r.GetCounter("fed.pings_sent")),
      pongsReceived(r.GetCounter("fed.pongs_received")),
      statsQueries(r.GetCounter("fed.stats_queries")) {}

MetaManager::MetaManager(MetaConfig config, sched::Executor& executor,
                         net::Fabric& fabric)
    : config_(std::move(config)),
      executor_(executor),
      fabric_(fabric),
      membership_(config_.cms, executor.clock()),
      cache_(config_.cms, executor.clock(), membership_.corrections()),
      respq_(config_.cms, executor.clock()),
      selection_(config_.selection),
      resolver_(config_.cms, executor.clock(), membership_, cache_, respq_, selection_,
                [this](ServerSet targets, const std::string& path, std::uint32_t hash,
                       AccessMode mode) { SendQueryDown(targets, path, hash, mode); }),
      maintenance_(config_.cms, executor, cache_, respq_, membership_),
      fm_(metrics_) {
  slotAddr_.fill(0);
  locality_.fill(0);
}

MetaManager::~MetaManager() { Stop(); }

void MetaManager::Start() {
  if (started_) return;
  started_ = true;
  if (!config_.startTimers) return;
  cms::MaintenanceDriver::Options opts;
  opts.windowTick = true;
  opts.dropScan = true;
  maintenance_.Start(opts, [this](ServerSlot slot) {
    const net::NodeAddr addr = slotAddr_[slot];
    if (addr != 0) {
      addrSlot_.erase(addr);
      slotAddr_[slot] = 0;
    }
  });
  if (config_.cms.ping > Duration::zero()) {
    pingTimer_ = executor_.RunEvery(config_.cms.ping, [this] { HeartbeatTick(); });
  }
}

void MetaManager::Stop() {
  maintenance_.Stop();
  if (pingTimer_ != sched::kInvalidTimer) {
    executor_.Cancel(pingTimer_);
    pingTimer_ = sched::kInvalidTimer;
  }
  for (auto& [_, agg] : statsAggs_) {
    if (agg.timer != sched::kInvalidTimer) executor_.Cancel(agg.timer);
  }
  statsAggs_.clear();
  started_ = false;
}

net::NodeAddr MetaManager::HeadOfCluster(ServerSlot clusterId) const {
  return clusterId >= 0 && clusterId < kMaxServersPerSet ? slotAddr_[clusterId] : 0;
}

std::optional<ServerSlot> MetaManager::ClusterOfHead(net::NodeAddr addr) const {
  const auto it = addrSlot_.find(addr);
  if (it == addrSlot_.end()) return std::nullopt;
  return it->second;
}

std::uint32_t MetaManager::EffectiveLoad(ServerSlot clusterId,
                                         std::uint32_t headLoad) const {
  // Locality dominates: a far cluster only wins a load-based selection
  // when every nearer replica is saturated past a full locality step.
  return locality_[clusterId] * kLocalityScale + headLoad;
}

obs::MetricsSnapshot MetaManager::SnapshotMetrics() const {
  obs::MetricsSnapshot snap = metrics_.Snapshot();
  const auto cache = cache_.GetStats();
  snap.AddCounter("cache.lookups", cache.lookups);
  snap.AddCounter("cache.hits", cache.hits);
  snap.AddCounter("cache.misses", cache.lookups - cache.hits);
  snap.AddCounter("cache.creates", cache.creates);
  snap.AddCounter("cache.corrections", cache.corrections);
  snap.AddCounter("cache.window_ticks", cache.windowTicks);
  snap.AddGauge("cache.live_objects", static_cast<std::int64_t>(cache.liveObjects));
  snap.AddGauge("cache.arena_bytes", static_cast<std::int64_t>(cache.arenaBytes));
  snap.AddGauge("cache.bytes_per_entry",
                static_cast<std::int64_t>(
                    cache.liveObjects == 0
                        ? 0
                        : cache.approxBytes / cache.liveObjects));
  snap.AddCounter("cache.budget_evictions", cache.budgetEvictions);
  const auto resolver = resolver_.GetStats();
  snap.AddCounter("resolver.locates", resolver.locates);
  snap.AddCounter("resolver.redirects", resolver.redirects);
  snap.AddCounter("resolver.fast_redirects", resolver.fastRedirects);
  snap.AddCounter("resolver.not_found", resolver.notFound);
  snap.AddCounter("resolver.full_delays", resolver.fullDelays);
  snap.AddCounter("resolver.queries_sent", resolver.queriesSent);
  snap.AddCounter("resolver.query_messages", resolver.queryMessages);
  const auto respq = respq_.GetStats();
  snap.AddCounter("respq.adds", respq.adds);
  snap.AddCounter("respq.releases", respq.releases);
  snap.AddCounter("respq.expirations", respq.expirations);
  const auto live = membership_.GetLivenessStats();
  snap.AddCounter("membership.deaths", live.deaths);
  snap.AddCounter("membership.rejoins", live.rejoins);
  snap.AddGauge("fed.clusters", static_cast<std::int64_t>(membership_.MemberCount()));
  snap.AddGauge("fed.clusters_online",
                static_cast<std::int64_t>(membership_.OnlineSet().count()));
  return snap;
}

void MetaManager::SendQueryDown(ServerSet targets, const std::string& path,
                                std::uint32_t hash, AccessMode mode) {
  proto::FedQuery query;
  query.path = path;
  query.hash = hash;
  query.mode = mode == AccessMode::kRead ? 0 : 1;
  for (ServerSlot s = targets.first(); s >= 0; s = targets.next(s)) {
    const net::NodeAddr addr = slotAddr_[s];
    if (addr != 0) fabric_.Send(config_.addr, addr, query);
  }
}

void MetaManager::OnPeerDown(net::NodeAddr peer) {
  const auto slot = ClusterOfHead(peer);
  if (slot.has_value()) membership_.Disconnect(*slot);
}

void MetaManager::OnMessage(net::NodeAddr from, proto::Message message) {
  std::visit(
      [this, from](auto&& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, proto::FedSubscribe>) {
          HandleSubscribe(from, m);
        } else if constexpr (std::is_same_v<M, proto::FedHave>) {
          HandleHave(from, m);
        } else if constexpr (std::is_same_v<M, proto::FedGone>) {
          HandleGone(from, m);
        } else if constexpr (std::is_same_v<M, proto::FedLocate>) {
          HandleLocate(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdOpen>) {
          HandleOpen(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdStat>) {
          HandleStat(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdUnlink>) {
          HandleUnlink(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdChecksum>) {
          HandleChecksum(from, m);
        } else if constexpr (std::is_same_v<M, proto::XrdPrepare>) {
          HandlePrepare(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsPong>) {
          HandlePong(from, m);
        } else if constexpr (std::is_same_v<M, proto::CmsDrain>) {
          // Operator drain by cluster name: takes a whole cluster out of
          // federation selection while it stays subscribed.
          proto::CmsDrainResp resp;
          resp.reqId = m.reqId;
          const auto slot = membership_.SlotOf(m.server);
          if (slot.has_value()) {
            membership_.SetDraining(*slot, !m.restore);
            resp.ok = true;
            resp.applied = true;
          } else {
            resp.error = "unknown cluster '" + m.server + "'";
          }
          if (m.reqId != 0) fabric_.Send(config_.addr, from, std::move(resp));
        } else if constexpr (std::is_same_v<M, proto::StatsQuery>) {
          HandleStatsQuery(from, m);
        } else if constexpr (std::is_same_v<M, proto::StatsReply>) {
          HandleStatsReply(from, m);
        } else if constexpr (std::is_same_v<M, proto::PcacheAdmin>) {
          proto::PcacheAdminResp resp;
          resp.reqId = m.reqId;
          resp.err = proto::XrdErr::kInvalid;
          fabric_.Send(config_.addr, from, std::move(resp));
        } else {
          // Data-path frames (read/write/close) never arrive here: the
          // meta redirects before any handle exists.
        }
      },
      std::move(message));
}

// ---------------------------------------------------------------------
// fed protocol

void MetaManager::HandleSubscribe(net::NodeAddr from, const proto::FedSubscribe& m) {
  proto::FedSubscribeResp resp;
  const auto oldSlot = ClusterOfHead(from);
  const auto result = membership_.Login(m.cluster, m.exports, m.allowWrite,
                                        /*isSupervisor=*/false);
  if (!result.has_value()) {
    // 64 clusters per meta; federations grow by stacking metas, which is
    // out of scope here — fail loudly rather than silently dropping.
    resp.ok = false;
    resp.error = "federation set full";
    fabric_.Send(config_.addr, from, std::move(resp));
    return;
  }
  if (oldSlot.has_value() && *oldSlot != result->slot) slotAddr_[*oldSlot] = 0;
  slotAddr_[result->slot] = from;
  addrSlot_[from] = result->slot;
  locality_[result->slot] = m.locality;
  membership_.ReportLoad(result->slot, EffectiveLoad(result->slot, 0),
                         std::uint64_t{1} << 40);
  fm_.subscribes.Inc();
  resp.ok = true;
  resp.clusterId = result->slot;
  fabric_.Send(config_.addr, from, std::move(resp));
}

void MetaManager::HandleHave(net::NodeAddr from, const proto::FedHave& m) {
  const auto slot = ClusterOfHead(from);
  if (!slot.has_value()) return;  // not a subscribed cluster head
  resolver_.OnHave(m.path, m.hash, *slot, m.pending, m.allowWrite);
}

void MetaManager::HandleGone(net::NodeAddr from, const proto::FedGone& m) {
  const auto slot = ClusterOfHead(from);
  if (!slot.has_value()) return;
  resolver_.OnGone(m.path, *slot);
}

void MetaManager::HandleLocate(net::NodeAddr from, const proto::FedLocate& m) {
  fm_.locates.Inc();
  cms::LocateOptions opts;
  opts.mode = ModeOf(m.mode);
  opts.refresh = m.refresh;
  if (m.avoidCluster != 0) {
    const auto avoid = ClusterOfHead(m.avoidCluster);
    if (avoid.has_value()) opts.avoid = *avoid;
  }
  resolver_.Locate(m.path, opts, [this, from, reqId = m.reqId](const LocateResult& r) {
    proto::FedRedirect resp;
    resp.reqId = reqId;
    switch (r.status) {
      case LocateStatus::kRedirect: {
        resp.status = proto::XrdStatus::kRedirect;
        resp.clusterId = r.server;
        resp.headAddr = slotAddr_[r.server];
        const auto info = membership_.InfoOf(r.server);
        if (info.has_value()) resp.cluster = info->name;
        fm_.redirects.Inc();
        break;
      }
      case LocateStatus::kWait:
        resp.status = proto::XrdStatus::kWait;
        resp.waitNs = r.wait.count();
        fm_.waits.Inc();
        break;
      case LocateStatus::kRetry:
        resp.status = proto::XrdStatus::kError;
        resp.err = proto::XrdErr::kStale;
        break;
      case LocateStatus::kNotFound:
        resp.status = proto::XrdStatus::kError;
        resp.err = proto::XrdErr::kNotFound;
        fm_.notFound.Inc();
        break;
    }
    fabric_.Send(config_.addr, from, std::move(resp));
  });
}

// ---------------------------------------------------------------------
// xrd protocol: the meta is a pure redirector one level above the heads

ServerSlot MetaManager::ChooseCreateTarget(const std::string& path, ServerSlot avoid) {
  ServerSet candidates = membership_.EligibleFor(path) & membership_.SelectableSet();
  ServerSet writable;
  for (ServerSlot s = candidates.first(); s >= 0; s = candidates.next(s)) {
    const auto info = membership_.InfoOf(s);
    if (info && info->allowWrite) writable.set(s);
  }
  ServerSet avoidSet;
  if (avoid >= 0) avoidSet.set(avoid);
  return selection_.Choose(
      writable.Without(avoidSet).empty() ? writable : writable.Without(avoidSet),
      ServerSet::None(), membership_);
}

void MetaManager::HandleOpen(net::NodeAddr from, const proto::XrdOpen& m) {
  fm_.locates.Inc();
  cms::LocateOptions opts;
  opts.mode = ModeOf(m.mode);
  opts.refresh = m.refresh;
  if (m.avoidNode != 0) {
    // The avoid address is meaningful here only when it names a cluster
    // head; a failing data server inside a cluster is that head's problem.
    const auto avoid = ClusterOfHead(m.avoidNode);
    if (avoid.has_value()) opts.avoid = *avoid;
  }
  resolver_.Locate(
      m.path, opts,
      [this, from, reqId = m.reqId, path = m.path, create = m.create,
       avoid = opts.avoid](const LocateResult& r) {
        proto::XrdOpenResp resp;
        resp.reqId = reqId;
        switch (r.status) {
          case LocateStatus::kRedirect:
            resp.status = proto::XrdStatus::kRedirect;
            resp.redirectNode = slotAddr_[r.server];
            fm_.redirects.Inc();
            break;
          case LocateStatus::kWait:
            resp.status = proto::XrdStatus::kWait;
            resp.waitNs = r.wait.count();
            fm_.waits.Inc();
            break;
          case LocateStatus::kRetry:
            resp.status = proto::XrdStatus::kError;
            resp.err = proto::XrdErr::kStale;
            break;
          case LocateStatus::kNotFound: {
            if (!create) {
              resp.status = proto::XrdStatus::kError;
              resp.err = proto::XrdErr::kNotFound;
              fm_.notFound.Inc();
              break;
            }
            // Creation: the full delay confirmed global non-existence;
            // place the file in a writable cluster (locality-weighted) and
            // let that cluster's head pick the actual server.
            const ServerSlot target = ChooseCreateTarget(path, avoid);
            if (target < 0) {
              resp.status = proto::XrdStatus::kError;
              resp.err = proto::XrdErr::kNoSpace;
            } else {
              resp.status = proto::XrdStatus::kRedirect;
              resp.redirectNode = slotAddr_[target];
              fm_.redirects.Inc();
            }
            break;
          }
        }
        fabric_.Send(config_.addr, from, std::move(resp));
      });
}

void MetaManager::HandleStat(net::NodeAddr from, const proto::XrdStat& m) {
  fm_.locates.Inc();
  cms::LocateOptions opts;
  resolver_.Locate(m.path, opts, [this, from, reqId = m.reqId](const LocateResult& r) {
    proto::XrdStatResp out;
    out.reqId = reqId;
    switch (r.status) {
      case LocateStatus::kRedirect:
        out.status = proto::XrdStatus::kRedirect;
        out.redirectNode = slotAddr_[r.server];
        fm_.redirects.Inc();
        break;
      case LocateStatus::kWait:
        out.status = proto::XrdStatus::kWait;
        out.waitNs = r.wait.count();
        break;
      default:
        out.status = proto::XrdStatus::kError;
        out.err = r.status == LocateStatus::kRetry ? proto::XrdErr::kStale
                                                   : proto::XrdErr::kNotFound;
    }
    fabric_.Send(config_.addr, from, std::move(out));
  });
}

void MetaManager::HandleUnlink(net::NodeAddr from, const proto::XrdUnlink& m) {
  fm_.locates.Inc();
  cms::LocateOptions opts;
  resolver_.Locate(m.path, opts, [this, from, reqId = m.reqId](const LocateResult& r) {
    proto::XrdUnlinkResp out;
    out.reqId = reqId;
    switch (r.status) {
      case LocateStatus::kRedirect:
        out.status = proto::XrdStatus::kRedirect;
        out.redirectNode = slotAddr_[r.server];
        fm_.redirects.Inc();
        break;
      case LocateStatus::kWait:
        out.status = proto::XrdStatus::kWait;
        out.waitNs = r.wait.count();
        break;
      default:
        out.status = proto::XrdStatus::kError;
        out.err = r.status == LocateStatus::kRetry ? proto::XrdErr::kStale
                                                   : proto::XrdErr::kNotFound;
    }
    fabric_.Send(config_.addr, from, std::move(out));
  });
}

void MetaManager::HandleChecksum(net::NodeAddr from, const proto::XrdChecksum& m) {
  fm_.locates.Inc();
  cms::LocateOptions opts;
  resolver_.Locate(m.path, opts, [this, from, reqId = m.reqId](const LocateResult& r) {
    proto::XrdChecksumResp out;
    out.reqId = reqId;
    switch (r.status) {
      case LocateStatus::kRedirect:
        out.status = proto::XrdStatus::kRedirect;
        out.redirectNode = slotAddr_[r.server];
        fm_.redirects.Inc();
        break;
      case LocateStatus::kWait:
        out.status = proto::XrdStatus::kWait;
        out.waitNs = r.wait.count();
        break;
      default:
        out.status = proto::XrdStatus::kError;
        out.err = r.status == LocateStatus::kRetry ? proto::XrdErr::kStale
                                                   : proto::XrdErr::kNotFound;
    }
    fabric_.Send(config_.addr, from, std::move(out));
  });
}

void MetaManager::HandlePrepare(net::NodeAddr from, const proto::XrdPrepare& m) {
  // Parallel prepare at federation scope: warm the cluster-location cache
  // for every named path concurrently (section III-B2, one level up).
  cms::LocateOptions opts;
  opts.mode = ModeOf(m.mode);
  for (const auto& path : m.paths) {
    resolver_.Locate(path, opts, [](const LocateResult&) { /* warming only */ });
  }
  proto::XrdPrepareResp resp;
  resp.reqId = m.reqId;
  fabric_.Send(config_.addr, from, std::move(resp));
}

// ---------------------------------------------------------------------
// liveness

void MetaManager::HeartbeatTick() {
  const auto hb = membership_.HeartbeatTick();
  proto::CmsPing ping;
  ping.seq = ++pingSeq_;
  for (const ServerSlot s : hb.ping) {
    const net::NodeAddr addr = slotAddr_[s];
    if (addr == 0) continue;
    fm_.pingsSent.Inc();
    fabric_.Send(config_.addr, addr, ping);
  }
  proto::CmsPing invite;
  invite.seq = ping.seq;
  invite.reconnect = true;
  for (const ServerSlot s : hb.reconnect) {
    const net::NodeAddr addr = slotAddr_[s];
    if (addr == 0) continue;
    fm_.pingsSent.Inc();
    fabric_.Send(config_.addr, addr, invite);
  }
  for (const auto& [slot, name] : hb.died) {
    // DeclareDead already ran inside HeartbeatTick: one correction-counter
    // bump sheds the whole cluster's V_h/V_p bits lazily, in O(1).
    SCALLA_WARN("fed", "%s: declaring cluster '%s' (id %d) dead after %d missed pings",
                config_.name.c_str(), name.c_str(), slot, config_.cms.missLimit);
    fm_.clusterDeaths.Inc();
  }
}

void MetaManager::HandlePong(net::NodeAddr from, const proto::CmsPong& m) {
  const auto slot = ClusterOfHead(from);
  if (!slot.has_value()) return;
  fm_.pongsReceived.Inc();
  membership_.OnPong(*slot);
  const auto info = membership_.InfoOf(*slot);
  if (info.has_value() && info->online) {
    // Piggybacked head load, weighted by the cluster's locality, keeps
    // the cross-cluster replica preference fresh between subscriptions.
    membership_.ReportLoad(*slot, EffectiveLoad(*slot, m.load), m.freeSpace);
  }
}

// ---------------------------------------------------------------------
// observability: federation-level StatsQuery merge

void MetaManager::HandleStatsQuery(net::NodeAddr from, const proto::StatsQuery& m) {
  fm_.statsQueries.Inc();
  const ServerSet online = membership_.OnlineSet();
  std::vector<net::NodeAddr> targets;
  for (ServerSlot s = online.first(); s >= 0; s = online.next(s)) {
    if (slotAddr_[s] != 0) targets.push_back(slotAddr_[s]);
  }
  if (targets.empty()) {
    proto::StatsReply reply;
    reply.reqId = m.reqId;
    reply.nodeCount = 1;
    reply.snapshot = SnapshotMetrics();
    fabric_.Send(config_.addr, from, std::move(reply));
    return;
  }
  const std::uint64_t aggId = nextStatsAggId_++;
  StatsAggregation& agg = statsAggs_[aggId];
  agg.requester = from;
  agg.requesterReqId = m.reqId;
  agg.acc = SnapshotMetrics();
  agg.nodeCount = 1;
  agg.outstanding = static_cast<int>(targets.size());
  agg.timer = executor_.RunAfter(config_.statsTimeout,
                                 [this, aggId] { FinishStatsAggregation(aggId); });
  // Each head answers with its already tree-aggregated cluster snapshot;
  // the meta's fold is therefore a federation-of-clusters merge.
  for (const net::NodeAddr target : targets) {
    fabric_.Send(config_.addr, target, proto::StatsQuery{aggId});
  }
}

void MetaManager::HandleStatsReply(net::NodeAddr from, const proto::StatsReply& m) {
  if (!ClusterOfHead(from).has_value()) return;
  const auto it = statsAggs_.find(m.reqId);
  if (it == statsAggs_.end()) return;  // late reply after timeout
  StatsAggregation& agg = it->second;
  agg.acc.Merge(m.snapshot);
  agg.nodeCount += m.nodeCount;
  if (--agg.outstanding <= 0) FinishStatsAggregation(m.reqId);
}

void MetaManager::FinishStatsAggregation(std::uint64_t aggId) {
  const auto it = statsAggs_.find(aggId);
  if (it == statsAggs_.end()) return;
  StatsAggregation& agg = it->second;
  if (agg.timer != sched::kInvalidTimer) {
    executor_.Cancel(agg.timer);
    agg.timer = sched::kInvalidTimer;
  }
  proto::StatsReply reply;
  reply.reqId = agg.requesterReqId;
  reply.nodeCount = agg.nodeCount;
  reply.snapshot = std::move(agg.acc);
  const net::NodeAddr requester = agg.requester;
  statsAggs_.erase(it);
  fabric_.Send(config_.addr, requester, std::move(reply));
}

}  // namespace scalla::fed

// The cmsd file-location cache (paper section III-A) — the component
// "largely responsible for very low client redirection latency".
//
// Structure (Figure 2), rebuilt as a contiguous arena in the djbdns
// cache.c style:
//  - Location records hold the V_h/V_p/V_q server-set vectors plus the C_n
//    correction snapshot, the T_a add-window, a processing deadline, and
//    loosely-coupled fast-response-queue references.
//  - All records live in ONE contiguous slab of fixed 128-byte slots.
//    Every link — hash-bucket chain, eviction-window chain, free list,
//    key-extension chain — is a 32-bit slot index, not a 64-bit pointer,
//    so the whole structure stays compact and survives slab growth
//    (indices are stable where pointers would dangle).
//  - Key bytes are stored inline in the record; names longer than the
//    inline capacity chain additional slots from the same arena, so the
//    hot path never touches the heap.
//  - Records are keyed by CRC32(file name) into an index-linked hash
//    table; the bucket count is always a Fibonacci number and grows to
//    the next Fibonacci number at 80% *live* load.
//  - Records are simultaneously chained into one of 64 eviction windows.
//    A window tick (every L_t/64) *hides* the expiring window's entries by
//    zeroing their key length — O(window) and invisible to look-ups — and
//    hands back a background job that physically unlinks and recycles them
//    and performs the *deferred re-chaining* of refreshed objects
//    (section III-C1).
//  - Records are never deallocated; their slots recycle through an
//    index-linked free list (O(1) push/pop). A LocRef carries the slot
//    index plus an authenticator counter so stale references are detected
//    with one comparison (section III-B1).
//  - `cms.cachebytes` (CmsConfig::cacheBytes) puts a hard byte budget on
//    the arena + bucket storage. Under budget pressure the cache
//    force-expires the window closest to its natural expiry (hide +
//    inline purge) instead of allocating past the cap.
//
// Thread safety: all public methods are safe to call concurrently; a
// single internal mutex guards the table (the paper's "avoid locks" claim
// is about not holding locks *across* protocol steps, which the
// LocRef/authenticator design provides: no lock is held between Lookup and
// the later BeginQuery/AddLocation calls).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cms/correction_state.h"
#include "cms/types.h"
#include "util/clock.h"

namespace scalla::cms {

/// Reference to a fast-response-queue anchor: index plus epoch. The epoch
/// makes the cache<->queue coupling loose: either side can invalidate
/// without touching the other (section III-B).
struct RespSlotRef {
  std::int32_t slot = -1;
  std::uint32_t epoch = 0;
  bool IsSet() const { return slot >= 0; }
};

/// Sentinel for "no slot" in every 32-bit index link of the cache arena.
inline constexpr std::uint32_t kNullCacheIndex = 0xFFFFFFFFu;

/// Authenticated reference to a location record: the record's arena slot
/// index plus the authenticator it carried when the reference was minted.
/// Valid while the record has not been hidden/recycled since.
struct LocRef {
  std::uint32_t index = kNullCacheIndex;
  std::uint32_t auth = 0;
  explicit operator bool() const { return index != kNullCacheIndex; }
};

class LocationCache {
 public:
  /// Fixed size of one arena slot; a location record occupies exactly one
  /// slot, a long key chains additional slots. Exposed for bench/tests.
  static constexpr std::size_t kRecordBytes = 128;

  LocationCache(const CmsConfig& config, util::Clock& clock, CorrectionState& corrections);
  ~LocationCache();

  LocationCache(const LocationCache&) = delete;
  LocationCache& operator=(const LocationCache&) = delete;

  enum class AddPolicy { kFindOnly, kCreate };

  struct FetchResult {
    LocRef ref;                    // null when not found and kFindOnly
    LocInfo info;                  // corrected per Figure 3
    bool found = false;
    bool created = false;          // object cached by this call
    bool deadlineActive = false;   // some thread is (likely) querying
    Duration deadlineRemaining{};  // valid when deadlineActive
  };

  /// Cache look-up (resolution step 1). `vm` is the export-table V_m for
  /// the path; `offline` is the membership's currently-offline set, whose
  /// members holding the file are shifted into V_q (section III-A4 case 1).
  /// Empty paths are rejected (never found, never created): a zero-length
  /// key is the "hidden" marker and must not be able to match one.
  /// kCreate can also come back not-found when the byte budget is
  /// exhausted and nothing could be force-expired.
  FetchResult Lookup(std::string_view path, ServerSet vm, ServerSet offline,
                     AddPolicy policy);

  /// Marks `queried` servers as asked (clears them from V_q — resolution
  /// step 6 records only servers that could NOT be queried) and arms the
  /// processing deadline. Returns false on a stale reference.
  bool BeginQuery(const LocRef& ref, ServerSet queried, TimePoint deadline);

  /// Applies a server's positive response (it has / is preparing the
  /// file). Returns the fast-response references to release, already
  /// cleared from the object, mirroring the paper's update method. The
  /// precomputed `hash` is passed along with the name, eliminating
  /// re-hashing on the response path (section III-B1).
  struct UpdateResult {
    bool found = false;
    LocInfo info;
    RespSlotRef releaseRead;
    RespSlotRef releaseWrite;
  };
  UpdateResult AddLocation(std::string_view path, std::uint32_t hash, ServerSlot server,
                           bool pending, bool allowWrite);

  /// Clears a server from V_h/V_p for a path (server reported the file
  /// gone, or an I/O error was confirmed). When the last holder goes and
  /// nothing is left to query the entry is hidden, so the next look-up
  /// re-creates and re-queries instead of hitting an all-empty record.
  void RemoveLocation(std::string_view path, ServerSlot server);

  /// Refresh (section III-C1): treat as new un-cached request — requery
  /// all eligible servers, reset vectors, update T_a to the current window
  /// WITHOUT re-chaining (deferred to the purge job). Returns false on a
  /// stale reference.
  bool Refresh(const LocRef& ref, ServerSet vm, TimePoint deadline);

  /// Fast-response-queue association accessors (all validate the ref).
  RespSlotRef GetRespSlot(const LocRef& ref, AccessMode mode) const;
  bool SetRespSlot(const LocRef& ref, AccessMode mode, RespSlotRef slot);

  /// Re-reads the (corrected) state of a referenced object. Returns false
  /// on a stale reference.
  bool ReadInfo(const LocRef& ref, ServerSet vm, ServerSet offline, LocInfo* out);

  /// Advances the window clock T_w: hides every expiring entry in the new
  /// window (key length = 0) and returns the background purge job that
  /// physically recycles them and re-chains refreshed objects. The caller
  /// schedules the job (executor/thread); it may also run it inline.
  /// Returns an empty function when the expiring window was empty.
  std::function<void()> OnWindowTick();

  /// CRC32 of a path — the protocol forwards this alongside file names.
  static std::uint32_t HashOf(std::string_view path);

  struct Stats {
    std::size_t buckets = 0;
    std::size_t liveObjects = 0;     // visible entries
    std::size_t hiddenObjects = 0;   // hidden, awaiting purge
    std::size_t allocatedObjects = 0;  // arena slots (records + extensions)
    std::size_t freeObjects = 0;       // slots on the free list
    std::size_t rehashes = 0;
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t creates = 0;
    std::size_t corrections = 0;        // Figure-3 applications
    std::size_t correctionMemoHits = 0; // served from the window's V_wc
    std::size_t probes = 0;             // chain links walked across lookups
    std::size_t recycled = 0;           // objects purged & freed
    std::size_t rechained = 0;          // deferred re-chains performed
    std::uint64_t windowTicks = 0;
    std::size_t approxBytes = 0;        // arenaBytes + bucketBytes
    // Arena accounting (new with the index-linked layout):
    std::size_t arenaBytes = 0;         // slot storage, kRecordBytes each
    std::size_t bucketBytes = 0;        // 4 bytes per bucket link
    std::size_t budgetBytes = 0;        // cms.cachebytes (0 = unbounded)
    std::size_t extensionSlots = 0;     // slots holding overflow key bytes
    std::size_t budgetEvictions = 0;    // entries force-expired by budget
    std::size_t createFailures = 0;     // kCreate refused (budget exhausted)
  };
  Stats GetStats() const;

  /// Test hook: window index objects added "now" would get.
  int CurrentWindow() const;

 private:
  struct Record;   // one 128-byte arena slot; defined in location_cache.cc
  struct ExtSlot;  // overlay for key-extension slots

  struct Window {
    std::uint32_t head = kNullCacheIndex;
    // Per-window correction memo (V_wc / C_wn, section III-A4): objects in
    // this window that share a C_n snapshot reuse one computed V_c. The
    // memo is applicable only while N_c is unchanged, so it records both
    // the snapshot it corrects from and the epoch it corrects to.
    std::uint64_t memoCn = ~std::uint64_t{0};
    std::uint64_t memoNc = ~std::uint64_t{0};
    ServerSet memoVc;
    std::size_t size = 0;
  };

  Record* At(std::uint32_t index) const;
  ExtSlot* ExtAt(std::uint32_t index) const;
  std::uint32_t FindLocked(std::string_view path, std::uint32_t hash) const;
  bool KeyEqualsLocked(const Record* rec, std::string_view path) const;
  std::uint32_t AllocateSlotLocked();
  bool GrowArenaLocked();
  std::size_t EmergencyEvictLocked();
  bool InsertLocked(std::uint32_t index, std::string_view path, std::uint32_t hash,
                    ServerSet vm);
  // Index-based on purpose: allocating extension slots may move the arena,
  // so the record is re-resolved from its slot index after each allocation.
  bool StoreKeyLocked(std::uint32_t recIndex, std::string_view path);
  void FreeKeyChainLocked(Record* rec);
  void FreeSlotLocked(std::uint32_t index);
  void MaybeGrowLocked();
  void ApplyCorrectionsLocked(Record* rec, ServerSet vm, ServerSet offline);
  bool ValidLocked(const LocRef& ref) const;
  void HideLocked(Record* rec);
  void UnlinkFromHashLocked(std::uint32_t index);
  // Recycles a hidden record (1) or re-chains a visible one (0).
  std::size_t RecycleOrRechainLocked(std::uint32_t index, int window);
  std::size_t PurgeWindow(int window, std::size_t maxBatch);  // takes mu_ in batches
  LocInfo InfoOf(const Record* rec) const;

  const CmsConfig config_;
  util::Clock& clock_;
  CorrectionState& corrections_;

  mutable std::mutex mu_;
  std::vector<std::uint32_t> buckets_;  // 32-bit index links, kNullCacheIndex empty
  std::array<Window, kMaxServersPerSet> windows_;
  std::uint64_t tw_ = 0;  // window clock T_w (monotonic tick count)

  // The arena: one contiguous slab of kRecordBytes slots. Growth doubles
  // the slab (bounded by cacheBytes) and memcpy-moves it — safe because
  // every link is an index. Fresh slots are handed out by advancing
  // bumpNext_ (slots past it are never touched, so capacity overshoot
  // stays virtual); recycled slots return through freeHead_, an intrusive
  // index-linked free list threaded through Record::hashNext.
  std::unique_ptr<std::byte[]> arena_;
  std::uint32_t slotCapacity_ = 0;
  std::uint32_t bumpNext_ = 0;
  std::uint32_t freeHead_ = kNullCacheIndex;
  std::size_t freeCount_ = 0;

  mutable Stats stats_;
};

}  // namespace scalla::cms

// The cmsd file-location cache (paper section III-A) — the component
// "largely responsible for very low client redirection latency".
//
// Structure (Figure 2):
//  - Location objects hold the V_h/V_p/V_q server-set vectors plus the C_n
//    correction snapshot, the T_a add-window, a processing deadline, and
//    loosely-coupled fast-response-queue references.
//  - Objects live in a one-level hash table keyed by CRC32(file name),
//    chained on collision; the bucket count is always a Fibonacci number
//    and grows to the next Fibonacci number at 80% load.
//  - Objects are simultaneously chained into one of 64 eviction windows.
//    A window tick (every L_t/64) *hides* the expiring window's entries by
//    zeroing their key length — O(window) and invisible to look-ups — and
//    hands back a background job that physically unlinks and recycles them
//    and performs the *deferred re-chaining* of refreshed objects
//    (section III-C1).
//  - Location objects are never deleted; their storage is recycled through
//    a free list. A LocRef carries an authenticator counter so stale
//    references are detected with one comparison (section III-B1).
//
// Thread safety: all public methods are safe to call concurrently; a
// single internal mutex guards the table (the paper's "avoid locks" claim
// is about not holding locks *across* protocol steps, which the
// LocRef/authenticator design provides: no lock is held between Lookup and
// the later BeginQuery/AddLocation calls).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cms/correction_state.h"
#include "cms/types.h"
#include "util/clock.h"

namespace scalla::cms {

/// Reference to a fast-response-queue anchor: index plus epoch. The epoch
/// makes the cache<->queue coupling loose: either side can invalidate
/// without touching the other (section III-B).
struct RespSlotRef {
  std::int32_t slot = -1;
  std::uint32_t epoch = 0;
  bool IsSet() const { return slot >= 0; }
};

class LocationObject;  // defined in location_cache.cc

/// Authenticated reference to a location object. Valid while the object
/// has not been removed (hidden/recycled) since the reference was minted.
struct LocRef {
  LocationObject* obj = nullptr;
  std::uint32_t auth = 0;
  explicit operator bool() const { return obj != nullptr; }
};

class LocationCache {
 public:
  LocationCache(const CmsConfig& config, util::Clock& clock, CorrectionState& corrections);
  ~LocationCache();

  LocationCache(const LocationCache&) = delete;
  LocationCache& operator=(const LocationCache&) = delete;

  enum class AddPolicy { kFindOnly, kCreate };

  struct FetchResult {
    LocRef ref;                    // null when not found and kFindOnly
    LocInfo info;                  // corrected per Figure 3
    bool found = false;
    bool created = false;          // object cached by this call
    bool deadlineActive = false;   // some thread is (likely) querying
    Duration deadlineRemaining{};  // valid when deadlineActive
  };

  /// Cache look-up (resolution step 1). `vm` is the export-table V_m for
  /// the path; `offline` is the membership's currently-offline set, whose
  /// members holding the file are shifted into V_q (section III-A4 case 1).
  FetchResult Lookup(std::string_view path, ServerSet vm, ServerSet offline,
                     AddPolicy policy);

  /// Marks `queried` servers as asked (clears them from V_q — resolution
  /// step 6 records only servers that could NOT be queried) and arms the
  /// processing deadline. Returns false on a stale reference.
  bool BeginQuery(const LocRef& ref, ServerSet queried, TimePoint deadline);

  /// Applies a server's positive response (it has / is preparing the
  /// file). Returns the fast-response references to release, already
  /// cleared from the object, mirroring the paper's update method. The
  /// precomputed `hash` is passed along with the name, eliminating
  /// re-hashing on the response path (section III-B1).
  struct UpdateResult {
    bool found = false;
    LocInfo info;
    RespSlotRef releaseRead;
    RespSlotRef releaseWrite;
  };
  UpdateResult AddLocation(std::string_view path, std::uint32_t hash, ServerSlot server,
                           bool pending, bool allowWrite);

  /// Clears a server from V_h/V_p for a path (server reported the file
  /// gone, or an I/O error was confirmed).
  void RemoveLocation(std::string_view path, ServerSlot server);

  /// Refresh (section III-C1): treat as new un-cached request — requery
  /// all eligible servers, reset vectors, update T_a to the current window
  /// WITHOUT re-chaining (deferred to the purge job). Returns false on a
  /// stale reference.
  bool Refresh(const LocRef& ref, ServerSet vm, TimePoint deadline);

  /// Fast-response-queue association accessors (all validate the ref).
  RespSlotRef GetRespSlot(const LocRef& ref, AccessMode mode) const;
  bool SetRespSlot(const LocRef& ref, AccessMode mode, RespSlotRef slot);

  /// Re-reads the (corrected) state of a referenced object. Returns false
  /// on a stale reference.
  bool ReadInfo(const LocRef& ref, ServerSet vm, ServerSet offline, LocInfo* out);

  /// Advances the window clock T_w: hides every expiring entry in the new
  /// window (key length = 0) and returns the background purge job that
  /// physically recycles them and re-chains refreshed objects. The caller
  /// schedules the job (executor/thread); it may also run it inline.
  /// Returns an empty function when the expiring window was empty.
  std::function<void()> OnWindowTick();

  /// CRC32 of a path — the protocol forwards this alongside file names.
  static std::uint32_t HashOf(std::string_view path);

  struct Stats {
    std::size_t buckets = 0;
    std::size_t liveObjects = 0;     // visible entries
    std::size_t hiddenObjects = 0;   // hidden, awaiting purge
    std::size_t allocatedObjects = 0;
    std::size_t freeObjects = 0;
    std::size_t rehashes = 0;
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t creates = 0;
    std::size_t corrections = 0;        // Figure-3 applications
    std::size_t correctionMemoHits = 0; // served from the window's V_wc
    std::size_t probes = 0;             // chain links walked across lookups
    std::size_t recycled = 0;           // objects purged & freed
    std::size_t rechained = 0;          // deferred re-chains performed
    std::uint64_t windowTicks = 0;
    std::size_t approxBytes = 0;        // objects + key storage
  };
  Stats GetStats() const;

  /// Test hook: window index objects added "now" would get.
  int CurrentWindow() const;

 private:
  struct Window {
    LocationObject* head = nullptr;
    // Per-window correction memo (V_wc / C_wn, section III-A4): objects in
    // this window that share a C_n snapshot reuse one computed V_c. The
    // memo is applicable only while N_c is unchanged, so it records both
    // the snapshot it corrects from and the epoch it corrects to.
    std::uint64_t memoCn = ~std::uint64_t{0};
    std::uint64_t memoNc = ~std::uint64_t{0};
    ServerSet memoVc;
    std::size_t size = 0;
  };

  LocationObject* FindLocked(std::string_view path, std::uint32_t hash) const;
  LocationObject* AllocateLocked();
  void InsertLocked(LocationObject* obj, std::string_view path, std::uint32_t hash,
                    ServerSet vm);
  void MaybeGrowLocked();
  void ApplyCorrectionsLocked(LocationObject* obj, ServerSet vm, ServerSet offline);
  bool ValidLocked(const LocRef& ref) const;
  void UnlinkFromHashLocked(LocationObject* obj);
  std::size_t PurgeWindow(int window, std::size_t maxBatch);  // takes mu_ in batches
  LocInfo InfoOf(const LocationObject* obj) const;

  const CmsConfig config_;
  util::Clock& clock_;
  CorrectionState& corrections_;

  mutable std::mutex mu_;
  std::vector<LocationObject*> buckets_;
  std::array<Window, kMaxServersPerSet> windows_;
  std::uint64_t tw_ = 0;  // window clock T_w (monotonic tick count)

  // Slab storage: blocks of objects, never deallocated until destruction.
  std::vector<std::unique_ptr<LocationObject[]>> slabs_;
  std::vector<LocationObject*> freeList_;

  mutable Stats stats_;
};

}  // namespace scalla::cms

#include "cms/membership.h"

namespace scalla::cms {

Membership::Membership(const CmsConfig& config, util::Clock& clock)
    : config_(config), clock_(clock) {}

ServerSlot Membership::FindFreeSlotLocked() const {
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (!members_[s].has_value()) return s;
  }
  return -1;
}

std::optional<Membership::LoginResult> Membership::Login(
    const std::string& name, const std::vector<std::string>& exports, bool allowWrite,
    bool isSupervisor) {
  std::lock_guard lock(mu_);

  // Reconnection of a still-known member?
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (!members_[s] || members_[s]->name != name) continue;
    if (paths_.SameExports(s, exports)) {
      // Un-dropped reconnect with identical exports: all cached location
      // information for this slot remains valid; information cached while
      // it was offline kept the server in V_q (queries could not be
      // issued), so no correction epoch bump is needed.
      if (!members_[s]->online) ++liveness_.rejoins;
      members_[s]->online = true;
      members_[s]->allowWrite = allowWrite;
      members_[s]->isSupervisor = isSupervisor;
      members_[s]->missedPings = 0;
      members_[s]->suspended = false;  // fresh start; draining is sticky
      return LoginResult{s, false, true};
    }
    // "If the server reconnects within the drop time limit but has a new
    // set of exported paths the reconnection is also treated as a new
    // connection." Drop first, then fall through to fresh registration.
    DropLocked(s);
    break;
  }

  const ServerSlot slot = FindFreeSlotLocked();
  if (slot < 0) return std::nullopt;  // set full: caller redirects to a supervisor

  MemberInfo info;
  info.name = name;
  info.slot = slot;
  info.online = true;
  info.allowWrite = allowWrite;
  info.isSupervisor = isSupervisor;
  members_[slot] = std::move(info);
  for (const auto& prefix : exports) paths_.AddExport(slot, prefix);
  corrections_.OnConnect(slot);  // adds the server to V_c-tracking (C[], N_c)
  return LoginResult{slot, true, false};
}

void Membership::Disconnect(ServerSlot slot) {
  std::lock_guard lock(mu_);
  if (slot < 0 || slot >= kMaxServersPerSet || !members_[slot]) return;
  members_[slot]->online = false;
  members_[slot]->disconnectTime = clock_.Now();
  members_[slot]->missedPings = 0;
}

Membership::HeartbeatOutcome Membership::HeartbeatTick() {
  std::lock_guard lock(mu_);
  HeartbeatOutcome out;
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (!members_[s]) continue;
    MemberInfo& m = *members_[s];
    if (!m.online) {
      // Still within the drop window: invite it back (self-healing rejoin).
      out.reconnect.push_back(s);
      continue;
    }
    if (++m.missedPings >= config_.missLimit) {
      m.online = false;
      m.disconnectTime = clock_.Now();
      m.missedPings = 0;
      m.suspended = false;
      corrections_.Touch(s);  // cached V_h/V_p bits shed lazily via V_q
      ++liveness_.deaths;
      out.died.emplace_back(s, m.name);
    } else {
      out.ping.push_back(s);
    }
  }
  return out;
}

void Membership::OnPong(ServerSlot slot) {
  std::lock_guard lock(mu_);
  if (slot < 0 || slot >= kMaxServersPerSet || !members_[slot]) return;
  members_[slot]->missedPings = 0;
}

bool Membership::DeclareDead(ServerSlot slot) {
  std::lock_guard lock(mu_);
  if (slot < 0 || slot >= kMaxServersPerSet || !members_[slot]) return false;
  MemberInfo& m = *members_[slot];
  if (!m.online) return false;
  m.online = false;
  m.disconnectTime = clock_.Now();
  m.missedPings = 0;
  m.suspended = false;
  corrections_.Touch(slot);
  ++liveness_.deaths;
  return true;
}

bool Membership::SetDraining(ServerSlot slot, bool draining) {
  std::lock_guard lock(mu_);
  if (slot < 0 || slot >= kMaxServersPerSet || !members_[slot]) return false;
  if (draining && !members_[slot]->draining) ++liveness_.drains;
  members_[slot]->draining = draining;
  return true;
}

std::vector<ServerSlot> Membership::DropExpired() {
  std::lock_guard lock(mu_);
  std::vector<ServerSlot> dropped;
  const TimePoint cutoff = clock_.Now() - config_.dropDelay;
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (members_[s] && !members_[s]->online && members_[s]->disconnectTime <= cutoff) {
      DropLocked(s);
      dropped.push_back(s);
    }
  }
  return dropped;
}

bool Membership::Drop(ServerSlot slot) {
  std::lock_guard lock(mu_);
  if (slot < 0 || slot >= kMaxServersPerSet || !members_[slot]) return false;
  DropLocked(slot);
  return true;
}

void Membership::DropLocked(ServerSlot slot) {
  paths_.RemoveServer(slot);      // removed from each V_m where it appears
  corrections_.OnDrop(slot);
  members_[slot].reset();
}

ServerSet Membership::OnlineSet() const {
  std::lock_guard lock(mu_);
  ServerSet set;
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (members_[s] && members_[s]->online) set.set(s);
  }
  return set;
}

ServerSet Membership::OfflineSet() const {
  std::lock_guard lock(mu_);
  ServerSet set;
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (members_[s] && !members_[s]->online) set.set(s);
  }
  return set;
}

ServerSet Membership::MemberSet() const {
  std::lock_guard lock(mu_);
  ServerSet set;
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (members_[s]) set.set(s);
  }
  return set;
}

ServerSet Membership::SelectableSet() const {
  std::lock_guard lock(mu_);
  ServerSet set;
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (members_[s] && members_[s]->online && !members_[s]->suspended &&
        !members_[s]->draining) {
      set.set(s);
    }
  }
  return set;
}

ServerSet Membership::SuspendedSet() const {
  std::lock_guard lock(mu_);
  ServerSet set;
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (members_[s] && members_[s]->suspended) set.set(s);
  }
  return set;
}

ServerSet Membership::DrainingSet() const {
  std::lock_guard lock(mu_);
  ServerSet set;
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (members_[s] && members_[s]->draining) set.set(s);
  }
  return set;
}

bool Membership::IsSelectable(ServerSlot slot) const {
  std::lock_guard lock(mu_);
  if (slot < 0 || slot >= kMaxServersPerSet || !members_[slot]) return false;
  const MemberInfo& m = *members_[slot];
  return m.online && !m.suspended && !m.draining;
}

std::optional<MemberInfo> Membership::InfoOf(ServerSlot slot) const {
  std::lock_guard lock(mu_);
  if (slot < 0 || slot >= kMaxServersPerSet) return std::nullopt;
  return members_[slot];
}

std::optional<ServerSlot> Membership::SlotOf(const std::string& name) const {
  std::lock_guard lock(mu_);
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (members_[s] && members_[s]->name == name) return s;
  }
  return std::nullopt;
}

void Membership::ApplyLoadLocked(MemberInfo& m, std::uint32_t load,
                                 std::uint64_t freeSpace) {
  m.load = load;
  m.freeSpace = freeSpace;
  if (config_.suspendLoad == 0) return;
  const std::uint32_t resumeAt =
      config_.resumeLoad > 0 ? config_.resumeLoad : config_.suspendLoad / 2;
  if (!m.suspended && load >= config_.suspendLoad) {
    m.suspended = true;
    ++liveness_.suspends;
  } else if (m.suspended && load <= resumeAt) {
    m.suspended = false;
    ++liveness_.resumes;
  }
}

void Membership::ReportLoad(ServerSlot slot, std::uint32_t load, std::uint64_t freeSpace) {
  std::lock_guard lock(mu_);
  if (slot < 0 || slot >= kMaxServersPerSet || !members_[slot]) return;
  ApplyLoadLocked(*members_[slot], load, freeSpace);
}

std::optional<ServerSlot> Membership::ReportLoadByName(const std::string& name,
                                                       std::uint32_t load,
                                                       std::uint64_t freeSpace) {
  std::lock_guard lock(mu_);
  for (ServerSlot s = 0; s < kMaxServersPerSet; ++s) {
    if (!members_[s] || members_[s]->name != name) continue;
    ApplyLoadLocked(*members_[s], load, freeSpace);
    return s;
  }
  return std::nullopt;
}

void Membership::CountSelection(ServerSlot slot) {
  std::lock_guard lock(mu_);
  if (slot < 0 || slot >= kMaxServersPerSet || !members_[slot]) return;
  ++members_[slot]->selectionCount;
}

ServerSet Membership::EligibleFor(std::string_view path) const {
  std::lock_guard lock(mu_);
  return paths_.Match(path);
}

Membership::LivenessStats Membership::GetLivenessStats() const {
  std::lock_guard lock(mu_);
  return liveness_;
}

std::size_t Membership::PathArenaBytes() const {
  std::lock_guard lock(mu_);
  return paths_.ArenaBytes();
}

std::size_t Membership::MemberCount() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& m : members_) n += m.has_value() ? 1 : 0;
  return n;
}

}  // namespace scalla::cms

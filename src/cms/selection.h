// Server selection. "If more than one node has the file, a selection is
// made based on configuration defined criteria (e.g., load, selection
// frequency, space, etc.)" (paper section II-B3).
#pragma once

#include "cms/membership.h"
#include "cms/types.h"

namespace scalla::cms {

enum class SelectCriterion {
  kRoundRobin,  // rotate through candidates (default)
  kLoad,        // lowest reported load
  kSpace,       // most free space
  kFrequency,   // least often selected
  kRandom,      // uniform (seeded; deterministic in tests)
};

class SelectionPolicy {
 public:
  explicit SelectionPolicy(SelectCriterion criterion = SelectCriterion::kRoundRobin,
                           std::uint64_t seed = 0x5e1ec7ULL);

  /// Picks one server out of `candidates` minus `avoid`, consulting the
  /// membership's per-server metrics. Falls back to ignoring `avoid` when
  /// it would leave nothing (a failing server is better than none only if
  /// it is the only choice — the client will then trigger a refresh).
  /// Returns -1 when candidates is empty. Records the selection for the
  /// frequency criterion.
  ServerSlot Choose(ServerSet candidates, ServerSet avoid, Membership& membership);

  SelectCriterion criterion() const { return criterion_; }

 private:
  ServerSlot ChooseFrom(ServerSet set, Membership& membership);

  SelectCriterion criterion_;
  ServerSlot lastChoice_ = -1;  // round-robin cursor
  std::uint64_t rngState_;
};

}  // namespace scalla::cms

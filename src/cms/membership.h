// Cluster membership for one cmsd: assigns the 0..63 server slots that map
// onto V_h/V_p/V_q bits, tracks online/offline state, and implements the
// paper's three-phase lifecycle (section III-A4):
//   disconnect  -> server marked offline but still a member ("the hope is
//                  that the server is encountering a transient problem");
//   drop        -> after a configurable delay the server is removed from
//                  every V_m and its slot freed;
//   reconnect   -> within the drop window and with identical exports the
//                  server resumes its slot with no correction cost; with
//                  different exports (or after a drop) it is a new server,
//                  which bumps N_c so cached objects learn about it.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cms/correction_state.h"
#include "cms/path_table.h"
#include "cms/types.h"
#include "util/clock.h"

namespace scalla::cms {

struct MemberInfo {
  std::string name;   // stable identity, e.g. "dataserver07:1094"
  ServerSlot slot = -1;
  bool online = false;
  bool allowWrite = true;
  bool isSupervisor = false;  // subordinate is itself a cluster head
  TimePoint disconnectTime{};
  // Selection metrics, refreshed by load reports.
  std::uint32_t load = 0;           // abstract load units (lower is better)
  std::uint64_t freeSpace = 0;      // bytes available
  std::uint64_t selectionCount = 0; // times chosen by the selector
  // Liveness / availability state.
  int missedPings = 0;       // consecutive unanswered heartbeat probes
  bool suspended = false;    // overloaded: cached but not selectable
  bool draining = false;     // operator drain: cached but not selectable
};

class Membership {
 public:
  Membership(const CmsConfig& config, util::Clock& clock);

  struct LoginResult {
    ServerSlot slot = -1;
    bool isNew = false;        // treated as a new server (N_c bumped)
    bool reconnected = false;  // resumed a live slot
  };

  /// Registers `name` with its export prefixes. Returns std::nullopt when
  /// the set is full (64 members) — the caller should direct the server to
  /// a supervisor instead. Registration is deliberately light: only path
  /// prefixes are recorded, never file manifests (section V).
  std::optional<LoginResult> Login(const std::string& name,
                                   const std::vector<std::string>& exports,
                                   bool allowWrite = true, bool isSupervisor = false);

  /// Marks the member offline; membership is retained until DropExpired.
  void Disconnect(ServerSlot slot);

  /// Heartbeat liveness (one call per cms.ping tick). Every online member
  /// is charged one missed probe (the charge is repaid by OnPong); members
  /// reaching the miss limit are declared dead in place. Offline members
  /// still within the drop window are listed for a reconnect invitation.
  struct HeartbeatOutcome {
    std::vector<ServerSlot> ping;       // online members to probe
    std::vector<ServerSlot> reconnect;  // offline members to invite back
    std::vector<std::pair<ServerSlot, std::string>> died;  // declared dead now
  };
  HeartbeatOutcome HeartbeatTick();

  /// Heartbeat answer from `slot`: clears its missed-probe count.
  void OnPong(ServerSlot slot);

  /// Declares an online member dead: offline immediately (no drop — the
  /// slot and exports are kept for a cheap rejoin) and its correction
  /// counter touched, so every cached location object lazily sheds the
  /// server's V_h/V_p bits into V_q on next fetch, exactly like CmsGone
  /// but for all paths in O(1). Returns false if not an online member.
  bool DeclareDead(ServerSlot slot);

  /// Operator drain (restore=false readmits). Returns false for non-members.
  bool SetDraining(ServerSlot slot, bool draining);

  /// Drops members offline for longer than dropDelay. Returns their slots.
  std::vector<ServerSlot> DropExpired();

  /// Forces an immediate drop (testing / administrative removal).
  bool Drop(ServerSlot slot);

  ServerSet OnlineSet() const;
  ServerSet OfflineSet() const;  // members currently unreachable
  ServerSet MemberSet() const;
  /// Online and neither suspended nor draining — the set SelectionPolicy
  /// may choose from. Suspended/drained members stay in OnlineSet (they
  /// keep answering queries and holding cache bits).
  ServerSet SelectableSet() const;
  ServerSet SuspendedSet() const;
  ServerSet DrainingSet() const;
  bool IsSelectable(ServerSlot slot) const;

  std::optional<MemberInfo> InfoOf(ServerSlot slot) const;
  std::optional<ServerSlot> SlotOf(const std::string& name) const;

  void ReportLoad(ServerSlot slot, std::uint32_t load, std::uint64_t freeSpace);
  /// Load report routed by stable identity: survives a re-login that
  /// assigned the server a different slot (a stale slot id would credit
  /// the report to whoever holds that slot now). Returns the slot the
  /// report landed on, if any.
  std::optional<ServerSlot> ReportLoadByName(const std::string& name,
                                             std::uint32_t load,
                                             std::uint64_t freeSpace);
  void CountSelection(ServerSlot slot);

  /// Monotonic liveness counters, surfaced as membership.* metrics.
  struct LivenessStats {
    std::uint64_t deaths = 0;    // heartbeat declarations
    std::uint64_t rejoins = 0;   // offline member logged back in
    std::uint64_t suspends = 0;  // load crossed cms.suspendload
    std::uint64_t resumes = 0;   // load fell back to cms.resumeload
    std::uint64_t drains = 0;    // operator drains applied
  };
  LivenessStats GetLivenessStats() const;

  /// Bytes held by the export-prefix string arena backing PathTable,
  /// surfaced as the membership.path_arena_bytes gauge.
  std::size_t PathArenaBytes() const;

  /// V_m for a path (longest matching export prefix).
  ServerSet EligibleFor(std::string_view path) const;

  const CorrectionState& corrections() const { return corrections_; }
  CorrectionState& corrections() { return corrections_; }

  std::size_t MemberCount() const;

 private:
  ServerSlot FindFreeSlotLocked() const;
  void DropLocked(ServerSlot slot);
  void ApplyLoadLocked(MemberInfo& m, std::uint32_t load, std::uint64_t freeSpace);

  const CmsConfig config_;
  util::Clock& clock_;

  mutable std::mutex mu_;
  std::array<std::optional<MemberInfo>, kMaxServersPerSet> members_;
  PathTable paths_;
  CorrectionState corrections_;
  LivenessStats liveness_;
};

}  // namespace scalla::cms

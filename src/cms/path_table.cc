#include "cms/path_table.h"

#include <algorithm>

namespace scalla::cms {

std::string NormalizePrefix(std::string_view prefix) {
  std::string out;
  if (prefix.empty() || prefix.front() != '/') out.push_back('/');
  out.append(prefix);
  while (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

bool PathTable::PrefixMatches(std::string_view prefix, std::string_view path) {
  if (prefix == "/") return !path.empty() && path.front() == '/';
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

void PathTable::AddExport(ServerSlot server, std::string_view prefix) {
  const std::string norm = NormalizePrefix(prefix);
  for (auto& e : entries_) {
    if (PrefixOf(e) == norm) {
      e.servers.set(server);
      return;
    }
  }
  Entry e;
  e.offset = static_cast<std::uint32_t>(arena_.size());
  e.length = static_cast<std::uint32_t>(norm.size());
  e.servers.set(server);
  arena_.append(norm);
  entries_.push_back(e);
}

void PathTable::RemoveServer(ServerSlot server) {
  for (auto& e : entries_) e.servers.reset(server);
  const auto dead = std::remove_if(entries_.begin(), entries_.end(),
                                   [](const Entry& e) { return e.servers.empty(); });
  if (dead == entries_.end()) return;
  entries_.erase(dead, entries_.end());
  CompactArena();
}

void PathTable::CompactArena() {
  // Pruning leaves dead byte runs behind; rebuild the arena so it stays
  // exactly the live prefixes. Rare (server drop) and the table is small.
  std::string fresh;
  fresh.reserve(arena_.size());
  for (auto& e : entries_) {
    const std::string_view prefix = PrefixOf(e);
    e.offset = static_cast<std::uint32_t>(fresh.size());
    fresh.append(prefix);
  }
  arena_.swap(fresh);
}

ServerSet PathTable::Match(std::string_view path) const {
  const Entry* best = nullptr;
  for (const auto& e : entries_) {
    if (PrefixMatches(PrefixOf(e), path) &&
        (best == nullptr || e.length > best->length)) {
      best = &e;
    }
  }
  return best ? best->servers : ServerSet::None();
}

std::vector<std::string> PathTable::ExportsOf(ServerSlot server) const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (e.servers.test(server)) out.emplace_back(PrefixOf(e));
  }
  return out;
}

bool PathTable::SameExports(ServerSlot server, const std::vector<std::string>& prefixes) const {
  std::vector<std::string> current = ExportsOf(server);
  std::vector<std::string> wanted;
  wanted.reserve(prefixes.size());
  for (const auto& p : prefixes) wanted.push_back(NormalizePrefix(p));
  std::sort(current.begin(), current.end());
  std::sort(wanted.begin(), wanted.end());
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());
  return current == wanted;
}

}  // namespace scalla::cms

#include "cms/path_table.h"

#include <algorithm>

namespace scalla::cms {

std::string NormalizePrefix(std::string_view prefix) {
  std::string out;
  if (prefix.empty() || prefix.front() != '/') out.push_back('/');
  out.append(prefix);
  while (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

bool PathTable::PrefixMatches(std::string_view prefix, std::string_view path) {
  if (prefix == "/") return !path.empty() && path.front() == '/';
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

void PathTable::AddExport(ServerSlot server, std::string_view prefix) {
  const std::string norm = NormalizePrefix(prefix);
  for (auto& e : entries_) {
    if (e.prefix == norm) {
      e.servers.set(server);
      return;
    }
  }
  Entry e;
  e.prefix = norm;
  e.servers.set(server);
  entries_.push_back(std::move(e));
}

void PathTable::RemoveServer(ServerSlot server) {
  for (auto& e : entries_) e.servers.reset(server);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [](const Entry& e) { return e.servers.empty(); }),
                 entries_.end());
}

ServerSet PathTable::Match(std::string_view path) const {
  const Entry* best = nullptr;
  for (const auto& e : entries_) {
    if (PrefixMatches(e.prefix, path) &&
        (best == nullptr || e.prefix.size() > best->prefix.size())) {
      best = &e;
    }
  }
  return best ? best->servers : ServerSet::None();
}

std::vector<std::string> PathTable::ExportsOf(ServerSlot server) const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (e.servers.test(server)) out.push_back(e.prefix);
  }
  return out;
}

bool PathTable::SameExports(ServerSlot server, const std::vector<std::string>& prefixes) const {
  std::vector<std::string> current = ExportsOf(server);
  std::vector<std::string> wanted;
  wanted.reserve(prefixes.size());
  for (const auto& p : prefixes) wanted.push_back(NormalizePrefix(p));
  std::sort(current.begin(), current.end());
  std::sort(wanted.begin(), wanted.end());
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());
  return current == wanted;
}

}  // namespace scalla::cms

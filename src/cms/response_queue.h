// Fast response queue (paper section III-B). With the request-rarely-
// respond protocol a non-response means "no", so a client querying an
// unknown file would have to wait the full delay (5 s). The fast response
// queue lowers that to roughly the fastest server's response time: the
// client is parked on one of 1024 anchors; when a server's "I have it"
// arrives (typically ~100 us), every parked client is released with the
// redirect immediately. A sweep clocked at 133 ms expires anchors whose
// requests were not satisfied, imposing the full delay only then.
//
// The queue is *loosely coupled* to the location cache: a location object
// stores only (anchor index, epoch); the sweep invalidates an anchor by
// bumping its epoch, never touching the cache, and cache-side references
// are validated by epoch comparison — the two structures "independently
// execute their functions".
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "cms/location_cache.h"  // RespSlotRef
#include "cms/types.h"
#include "util/clock.h"

namespace scalla::cms {

enum class RespStatus {
  kRedirect,        // a server announced the file; go there
  kRetryFullDelay,  // not satisfied within the sweep bound; wait full delay
};

struct RespOutcome {
  RespStatus status = RespStatus::kRetryFullDelay;
  ServerSlot server = -1;  // valid for kRedirect
  bool pending = false;    // target is still staging the file
};

using RespCallback = std::function<void(const RespOutcome&)>;

class FastResponseQueue {
 public:
  FastResponseQueue(const CmsConfig& config, util::Clock& clock);

  /// Parks a waiter. If `existing` still names a live anchor the waiter
  /// joins it (several clients asking for one file share an anchor);
  /// otherwise a fresh anchor is allocated. Returns the anchor reference
  /// the caller must store back into the location object, or std::nullopt
  /// when all anchors are busy — the paper then tells the client to wait a
  /// full time period and retry. A waiter parked during client recovery
  /// (section III-C1) names the server it is avoiding: that server's
  /// announcement must not satisfy it.
  std::optional<RespSlotRef> Add(RespSlotRef existing, RespCallback waiter,
                                 ServerSlot avoid = -1);

  /// Releases every waiter parked on `ref` with a redirect to `server`,
  /// except waiters avoiding `server` — those stay parked for the next
  /// responder (or the sweep). The anchor is freed only when no waiters
  /// remain. Stale references are ignored (loose coupling). Waiter
  /// callbacks run synchronously in the caller; they must be cheap or
  /// re-post. Returns the number of waiters released.
  std::size_t Release(RespSlotRef ref, ServerSlot server, bool pending);

  /// Expires anchors older than the sweep period, notifying their waiters
  /// with kRetryFullDelay and invalidating the cache association (epoch
  /// bump). Call every CmsConfig::sweepPeriod while the queue is busy.
  /// Returns the number of waiters expired.
  std::size_t Sweep();

  bool Empty() const;

  /// Invoked (without internal locks held) whenever the queue transitions
  /// empty -> non-empty, so the owner can start the sweep timer. The paper
  /// notifies the response thread "only if the queue was empty".
  void SetBusyNotifier(std::function<void()> notifier) { busyNotifier_ = std::move(notifier); }

  struct Stats {
    std::size_t adds = 0;
    std::size_t joins = 0;      // added to an existing anchor
    std::size_t releases = 0;   // waiters satisfied by a server response
    std::size_t expirations = 0;  // waiters that hit the sweep bound
    std::size_t rejectedFull = 0;  // no free anchor: immediate full delay
    std::size_t anchorsInUse = 0;
  };
  Stats GetStats() const;

 private:
  struct Waiter {
    RespCallback cb;
    ServerSlot avoid = -1;  // never redirect this waiter there
  };
  struct Anchor {
    std::uint32_t epoch = 1;
    bool inUse = false;
    TimePoint enqueueTime{};
    std::vector<Waiter> waiters;
  };

  const CmsConfig config_;
  util::Clock& clock_;
  std::function<void()> busyNotifier_;

  mutable std::mutex mu_;
  std::vector<Anchor> anchors_;
  std::vector<std::int32_t> freeSlots_;
  std::size_t inUse_ = 0;
  mutable Stats stats_;
};

}  // namespace scalla::cms

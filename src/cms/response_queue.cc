#include "cms/response_queue.h"

#include <utility>

namespace scalla::cms {

FastResponseQueue::FastResponseQueue(const CmsConfig& config, util::Clock& clock)
    : config_(config), clock_(clock) {
  anchors_.resize(config_.responseAnchors);
  freeSlots_.reserve(config_.responseAnchors);
  for (std::size_t i = config_.responseAnchors; i-- > 0;) {
    freeSlots_.push_back(static_cast<std::int32_t>(i));
  }
}

std::optional<RespSlotRef> FastResponseQueue::Add(RespSlotRef existing, RespCallback waiter,
                                                  ServerSlot avoid) {
  bool becameBusy = false;
  std::optional<RespSlotRef> out;
  {
    std::lock_guard lock(mu_);
    ++stats_.adds;

    // Join the existing anchor when the association is still valid.
    if (existing.IsSet() &&
        static_cast<std::size_t>(existing.slot) < anchors_.size()) {
      Anchor& a = anchors_[existing.slot];
      if (a.inUse && a.epoch == existing.epoch) {
        a.waiters.push_back(Waiter{std::move(waiter), avoid});
        ++stats_.joins;
        return existing;
      }
    }

    if (freeSlots_.empty()) {
      ++stats_.rejectedFull;
      return std::nullopt;  // caller imposes the full delay
    }
    const std::int32_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    Anchor& a = anchors_[slot];
    a.inUse = true;
    a.enqueueTime = clock_.Now();
    a.waiters.clear();
    a.waiters.push_back(Waiter{std::move(waiter), avoid});
    becameBusy = inUse_ == 0;
    ++inUse_;
    out = RespSlotRef{slot, a.epoch};
  }
  if (becameBusy && busyNotifier_) busyNotifier_();
  return out;
}

std::size_t FastResponseQueue::Release(RespSlotRef ref, ServerSlot server, bool pending) {
  std::vector<RespCallback> released;
  {
    std::lock_guard lock(mu_);
    if (!ref.IsSet() || static_cast<std::size_t>(ref.slot) >= anchors_.size()) return 0;
    Anchor& a = anchors_[ref.slot];
    if (!a.inUse || a.epoch != ref.epoch) return 0;  // stale: loose coupling
    // Waiters avoiding this server stay parked (client recovery must not
    // be vectored back to the host it just failed against); they are
    // satisfied by the next responder or expired by the sweep.
    std::vector<Waiter> kept;
    for (auto& w : a.waiters) {
      if (w.avoid == server) {
        kept.push_back(std::move(w));
      } else {
        released.push_back(std::move(w.cb));
      }
    }
    a.waiters = std::move(kept);
    if (a.waiters.empty()) {
      a.inUse = false;
      ++a.epoch;
      freeSlots_.push_back(ref.slot);
      --inUse_;
    }
    stats_.releases += released.size();
  }
  const RespOutcome outcome{RespStatus::kRedirect, server, pending};
  for (auto& cb : released) cb(outcome);
  return released.size();
}

std::size_t FastResponseQueue::Sweep() {
  std::vector<RespCallback> expired;
  {
    std::lock_guard lock(mu_);
    const TimePoint cutoff = clock_.Now() - config_.sweepPeriod;
    for (std::size_t i = 0; i < anchors_.size() && inUse_ > 0; ++i) {
      Anchor& a = anchors_[i];
      if (!a.inUse || a.enqueueTime > cutoff) continue;
      for (auto& w : a.waiters) expired.push_back(std::move(w.cb));
      a.waiters.clear();
      a.inUse = false;
      ++a.epoch;  // invalidate the cache association
      freeSlots_.push_back(static_cast<std::int32_t>(i));
      --inUse_;
    }
    stats_.expirations += expired.size();
  }
  const RespOutcome outcome{RespStatus::kRetryFullDelay, -1, false};
  for (auto& cb : expired) cb(outcome);
  return expired.size();
}

bool FastResponseQueue::Empty() const {
  std::lock_guard lock(mu_);
  return inUse_ == 0;
}

FastResponseQueue::Stats FastResponseQueue::GetStats() const {
  std::lock_guard lock(mu_);
  Stats s = stats_;
  s.anchorsInUse = inUse_;
  return s;
}

}  // namespace scalla::cms

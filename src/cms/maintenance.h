// MaintenanceDriver: one object that owns the cmsd's periodic housekeeping —
// the cache window tick (amortized eviction, paper section III-A3), the
// fast-response-queue sweep (133 ms cadence, started only while anchors are
// busy), and the head's expired-member drop scan. Library users previously
// had to wire three timers by hand (and benches routinely forgot one);
// constructing a driver and calling Start() covers all of them.
#pragma once

#include <cstdint>
#include <functional>

#include "cms/location_cache.h"
#include "cms/membership.h"
#include "cms/response_queue.h"
#include "cms/types.h"
#include "sched/executor.h"

namespace scalla::cms {

class MaintenanceDriver {
 public:
  struct Options {
    bool windowTick = true;  // LocationCache::OnWindowTick every lifetime/64
    bool dropScan = false;   // Membership::DropExpired (cluster heads only)
  };

  /// Called once per slot that DropExpired removed, so the owner can clear
  /// any slot→address bookkeeping of its own.
  using DropHandler = std::function<void(ServerSlot)>;

  /// Wires itself as the queue's busy notifier: the sweep timer starts on
  /// the first Add and cancels itself once the queue drains.
  MaintenanceDriver(const CmsConfig& config, sched::Executor& executor,
                    LocationCache& cache, FastResponseQueue& respq,
                    Membership& membership);
  ~MaintenanceDriver();

  MaintenanceDriver(const MaintenanceDriver&) = delete;
  MaintenanceDriver& operator=(const MaintenanceDriver&) = delete;

  void Start(const Options& options, DropHandler onDrop = nullptr);
  void Stop();
  bool Running() const { return running_; }

  struct Stats {
    std::uint64_t windowTicks = 0;
    std::uint64_t sweeps = 0;
    std::uint64_t dropScans = 0;
    std::uint64_t membersDropped = 0;
  };
  Stats GetStats() const { return stats_; }

 private:
  void StartSweepTimer();

  const CmsConfig config_;
  sched::Executor& executor_;
  LocationCache& cache_;
  FastResponseQueue& respq_;
  Membership& membership_;

  bool running_ = false;
  DropHandler onDrop_;
  sched::TimerId windowTimer_ = sched::kInvalidTimer;
  sched::TimerId sweepTimer_ = sched::kInvalidTimer;
  sched::TimerId dropTimer_ = sched::kInvalidTimer;
  Stats stats_;
};

}  // namespace scalla::cms

#include "cms/resolver.h"

#include <utility>

namespace scalla::cms {

Resolver::Resolver(const CmsConfig& config, util::Clock& clock, Membership& membership,
                   LocationCache& cache, FastResponseQueue& respq,
                   SelectionPolicy& selection, QuerySender sendQuery)
    : config_(config),
      clock_(clock),
      membership_(membership),
      cache_(cache),
      respq_(respq),
      selection_(selection),
      sendQuery_(std::move(sendQuery)) {}

bool Resolver::RedirectFrom(const LocInfo& info, const LocateOptions& options,
                            LocateResult* out) {
  // Redirect targets must be selectable: online AND neither suspended
  // (overload) nor draining (operator). Suspended/drained holders keep
  // their cache bits — they come straight back once readmitted.
  const ServerSet selectable = membership_.SelectableSet();
  ServerSet avoid;
  if (options.avoid >= 0) avoid.set(options.avoid);

  // Writers need a write-capable destination.
  ServerSet have = info.have & selectable;
  ServerSet pending = info.pending & selectable;
  if (options.mode == AccessMode::kWrite) {
    ServerSet writable;
    for (ServerSlot s = have.first(); s >= 0; s = have.next(s)) {
      const auto m = membership_.InfoOf(s);
      if (m && m->allowWrite) writable.set(s);
    }
    have = writable;
    ServerSet writablePending;
    for (ServerSlot s = pending.first(); s >= 0; s = pending.next(s)) {
      const auto m = membership_.InfoOf(s);
      if (m && m->allowWrite) writablePending.set(s);
    }
    pending = writablePending;
  }

  // Prefer servers that already have the file online over ones staging it.
  if (!have.empty()) {
    const ServerSlot target = selection_.Choose(have, avoid, membership_);
    *out = LocateResult{LocateStatus::kRedirect, target, false, Duration::zero()};
    return true;
  }
  if (!pending.empty()) {
    const ServerSlot target = selection_.Choose(pending, avoid, membership_);
    *out = LocateResult{LocateStatus::kRedirect, target, true, Duration::zero()};
    return true;
  }
  return false;
}

void Resolver::Park(const LocRef& ref, AccessMode mode, ServerSlot avoid,
                    LocateCallback done) {
  const Duration fullDelay = config_.deadline;
  if (!config_.fastResponse) {
    // Ablation (E07): without the fast response queue every un-cached
    // request pays the full delay before retrying.
    {
      std::lock_guard lock(statsMu_);
      ++stats_.fullDelays;
    }
    done(LocateResult{LocateStatus::kWait, -1, false, fullDelay});
    return;
  }
  // Step 4: add the client to the fast response queue (R_r or R_w) and
  // store the anchor reference back into the location object. The waiter
  // translates the queue outcome into a client-visible result.
  const RespSlotRef existing = cache_.GetRespSlot(ref, mode);
  auto waiter = [done, fullDelay](const RespOutcome& outcome) {
    if (outcome.status == RespStatus::kRedirect) {
      done(LocateResult{LocateStatus::kRedirect, outcome.server, outcome.pending,
                        Duration::zero()});
    } else {
      done(LocateResult{LocateStatus::kWait, -1, false, fullDelay});
    }
  };
  const auto slot = respq_.Add(existing, std::move(waiter), avoid);
  if (!slot.has_value()) {
    // "If no available entries exist, the client is asked to wait a full
    // time period and retry the operation."
    {
      std::lock_guard lock(statsMu_);
      ++stats_.fullDelays;
    }
    done(LocateResult{LocateStatus::kWait, -1, false, fullDelay});
    return;
  }
  cache_.SetRespSlot(ref, mode, *slot);
}

void Resolver::Locate(const std::string& path, const LocateOptions& options,
                      LocateCallback done) {
  {
    std::lock_guard lock(statsMu_);
    ++stats_.locates;
  }

  const ServerSet vm = membership_.EligibleFor(path);
  if (vm.empty()) {
    // No export prefix covers this path: no server could ever have it.
    std::lock_guard lock(statsMu_);
    ++stats_.notFound;
    done(LocateResult{LocateStatus::kNotFound, -1, false, Duration::zero()});
    return;
  }

  const ServerSet offline = membership_.OfflineSet();
  auto fetch = cache_.Lookup(path, vm, offline, LocationCache::AddPolicy::kCreate);

  if (!fetch.found) {
    // kCreate could not cache the entry (byte budget exhausted with
    // nothing force-expirable, or an empty path slipped through). Without
    // a location object there is nowhere to park the client or record
    // responses, so ask it to wait a full period and retry.
    std::lock_guard lock(statsMu_);
    ++stats_.fullDelays;
    done(LocateResult{LocateStatus::kWait, -1, false, config_.deadline});
    return;
  }

  bool mustQuery = fetch.created;
  if (options.refresh && !fetch.created) {
    // Client recovery (section III-C1): requery all relevant servers and
    // avoid the failing one when vectoring. Logically a new request.
    // Refresh MUST run before RemoveLocation: removing the failing
    // server's claim can empty every vector, which hides the entry and
    // invalidates fetch.ref — Refresh would then see a stale reference
    // and bounce the client into a needless retry.
    if (cache_.Refresh(fetch.ref, vm, clock_.Now() + config_.deadline)) {
      if (options.avoid >= 0) cache_.RemoveLocation(path, options.avoid);
      fetch.info = LocInfo{ServerSet::None(), ServerSet::None(), vm};
      mustQuery = true;
    } else {
      // Reference went stale under us: ask the client to retry so
      // processing restarts from a consistent state (section III-B1).
      done(LocateResult{LocateStatus::kRetry, -1, false, Duration::zero()});
      return;
    }
  }

  // Step 3: an online server already has (or is staging) the file.
  LocateResult redirect;
  if (!mustQuery && RedirectFrom(fetch.info, options, &redirect)) {
    {
      std::lock_guard lock(statsMu_);
      ++stats_.redirects;
    }
    done(std::move(redirect));
    return;
  }

  // Step 2: nothing known and nothing left to ask.
  if (fetch.info.query.empty() && !mustQuery) {
    if (!fetch.deadlineActive) {
      std::lock_guard lock(statsMu_);
      ++stats_.notFound;
      done(LocateResult{LocateStatus::kNotFound, -1, false, Duration::zero()});
      return;
    }
    if (config_.deadlineSync) {
      // An active deadline implies another thread's queries are in
      // flight; defer past the deadline via the queue (section III-C2).
      {
        std::lock_guard lock(statsMu_);
        ++stats_.deferrals;
      }
      Park(fetch.ref, options.mode, options.avoid, std::move(done));
      return;
    }
    // Ablation (E10): without deadline synchronization this client cannot
    // tell that queries are outstanding, so it re-issues the whole flood.
    Park(fetch.ref, options.mode, options.avoid, std::move(done));
    const ServerSet toQuery = vm & membership_.OnlineSet();
    cache_.BeginQuery(fetch.ref, toQuery, clock_.Now() + config_.deadline);
    if (!toQuery.empty()) {
      {
        std::lock_guard lock(statsMu_);
        ++stats_.queriesSent;
        stats_.queryMessages += static_cast<std::size_t>(toQuery.count());
      }
      sendQuery_(toQuery, path, LocationCache::HashOf(path), options.mode);
    }
    return;
  }

  // Steps 4-6: park the client first so a racing response cannot slip
  // past, then flood the still-unqueried servers — but only if no other
  // thread already did (deadline synchronization, section III-C2; the
  // E10 ablation lifts the restriction).
  const bool deadlineAllows =
      mustQuery || !fetch.deadlineActive || !config_.deadlineSync;
  Park(fetch.ref, options.mode, options.avoid, std::move(done));

  if (!deadlineAllows) {
    std::lock_guard lock(statsMu_);
    ++stats_.deferrals;
    return;
  }

  const ServerSet toQuery = fetch.info.query & membership_.OnlineSet();
  // Step 6: V_q keeps only the servers that could not be queried.
  cache_.BeginQuery(fetch.ref, toQuery, clock_.Now() + config_.deadline);
  if (!toQuery.empty()) {
    {
      std::lock_guard lock(statsMu_);
      ++stats_.queriesSent;
      stats_.queryMessages += static_cast<std::size_t>(toQuery.count());
    }
    sendQuery_(toQuery, path, LocationCache::HashOf(path), options.mode);
  }
}

void Resolver::OnHave(const std::string& path, std::uint32_t hash, ServerSlot from,
                      bool pending, bool allowWrite) {
  const auto update = cache_.AddLocation(path, hash, from, pending, allowWrite);
  if (!update.found) return;  // entry expired; parked clients will retry
  // A suspended/draining holder still updates the cache, but must not be
  // handed to parked clients; the sweep retries them elsewhere.
  if (!membership_.IsSelectable(from)) return;
  std::size_t released = 0;
  if (update.releaseRead.IsSet()) {
    released += respq_.Release(update.releaseRead, from, pending);
  }
  if (update.releaseWrite.IsSet()) {
    released += respq_.Release(update.releaseWrite, from, pending);
  }
  if (released > 0) {
    std::lock_guard lock(statsMu_);
    stats_.fastRedirects += released;
  }
}

void Resolver::OnGone(const std::string& path, ServerSlot from) {
  cache_.RemoveLocation(path, from);
}

Resolver::Stats Resolver::GetStats() const {
  std::lock_guard lock(statsMu_);
  return stats_;
}

}  // namespace scalla::cms

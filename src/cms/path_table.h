// Export-path table: maps path prefixes to the V_m vector of servers
// eligible to host files under that prefix. "Each exported path is
// associated with a V_m that defines the servers eligible for that path.
// The appropriate V_m, relative to the incoming path, is looked up prior
// and passed to the cache look-up method." (paper section III-A4)
//
// Prefixes are directory-style: "/store" matches "/store/x" and "/store"
// itself but not "/storeroom". Lookup is longest-prefix-match. The table is
// small (servers export a handful of prefixes), so, like the location
// cache, it keeps all prefix bytes in one contiguous arena addressed by
// 32-bit {offset, length} pairs instead of per-entry heap strings — the
// whole table is two flat allocations and the match walk touches one
// contiguous byte run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cms/types.h"

namespace scalla::cms {

class PathTable {
 public:
  /// Declares that `server` exports `prefix`. Called at login.
  void AddExport(ServerSlot server, std::string_view prefix);

  /// Removes `server` from every prefix where it appears; prunes prefixes
  /// with no remaining servers. Called when a server is dropped.
  void RemoveServer(ServerSlot server);

  /// V_m for `path`: union of servers on the longest matching prefix.
  /// Empty set when no prefix matches (no server could hold the file).
  ServerSet Match(std::string_view path) const;

  /// All prefixes exported by `server` (used to detect "reconnected with a
  /// new set of exported paths", which must be treated as a new server).
  std::vector<std::string> ExportsOf(ServerSlot server) const;

  /// True if `server`'s current exports equal `prefixes` (order-insensitive).
  bool SameExports(ServerSlot server, const std::vector<std::string>& prefixes) const;

  std::size_t PrefixCount() const { return entries_.size(); }

  /// Bytes held by the prefix arena (capacity, for the obs export).
  std::size_t ArenaBytes() const { return arena_.capacity(); }

 private:
  struct Entry {
    std::uint32_t offset = 0;  // into arena_; normalized prefix bytes
    std::uint32_t length = 0;  // no trailing '/'; "/" allowed
    ServerSet servers;
  };
  std::string_view PrefixOf(const Entry& e) const {
    return std::string_view(arena_).substr(e.offset, e.length);
  }
  static bool PrefixMatches(std::string_view prefix, std::string_view path);
  void CompactArena();

  std::string arena_;  // all prefix bytes, back to back
  std::vector<Entry> entries_;
};

/// Normalizes an export prefix: guarantees a leading '/', strips a trailing
/// '/' (except for the root prefix "/").
std::string NormalizePrefix(std::string_view prefix);

}  // namespace scalla::cms

// Shared vocabulary types for the cmsd core.
#pragma once

#include <cstdint>
#include <string>

#include "util/server_set.h"
#include "util/types.h"

namespace scalla::cms {

/// Access mode a client wants for a file. The fast response queue keeps
/// separate anchor indices R_r (read) and R_w (write) per location object
/// (paper section III-B).
enum class AccessMode { kRead, kWrite };

/// Snapshot of a location object's three state vectors (section III-A1).
struct LocInfo {
  ServerSet have;     // V_h: servers that have the file online
  ServerSet pending;  // V_p: servers preparing the file (e.g. MSS staging)
  ServerSet query;    // V_q: servers that still need to be queried
};

/// Tunables for one cmsd instance. Defaults follow the paper's quoted
/// production values.
struct CmsConfig {
  Duration lifetime = std::chrono::hours(8);  // L_t (section III-A2)
  Duration deadline = std::chrono::seconds(5);  // full delay / processing deadline
  Duration sweepPeriod = std::chrono::milliseconds(133);  // fast-response sweep
  Duration dropDelay = std::chrono::minutes(10);  // disconnect -> drop window

  // Liveness heartbeat (cms.ping / cms.misslimit). A head pings each
  // online subordinate every `ping`; one that misses `missLimit`
  // consecutive probes is declared dead, so a wedged (hung, not crashed)
  // server is off the selection path within ping * missLimit. Zero
  // disables the heartbeat (fabric-level OnPeerDown still catches clean
  // connection failures).
  Duration ping = Duration::zero();
  int missLimit = 3;

  // Overload protection (cms.suspendload / cms.resumeload). A member whose
  // reported load reaches `suspendLoad` is suspended — excluded from
  // selection but still a cached cluster member — and resumes once load
  // falls back to `resumeLoad` (default: half the suspend threshold).
  // suspendLoad == 0 disables the mechanism.
  std::uint32_t suspendLoad = 0;
  std::uint32_t resumeLoad = 0;

  std::size_t initialBuckets = 89;  // Fibonacci
  double growthLoadFactor = 0.8;
  std::size_t responseAnchors = 1024;

  // Hard byte budget for the location-cache arena + bucket table
  // (cms.cachebytes; 0 = unbounded). When the budget is reached the cache
  // force-expires the window nearest its natural expiry instead of
  // allocating further.
  std::size_t cacheBytes = 0;

  // Ablation switches (all default to the paper's design; the benches
  // turn them off to quantify each mechanism's contribution).
  bool fastResponse = true;    // E07: park clients on the fast response queue
  bool deadlineSync = true;    // E10: deadline-based query synchronization
  bool correctionMemo = true;  // E05: per-window V_wc/C_wn memoisation

  /// Window tick interval: L_t / 64 ("e.g., 7.5 minutes").
  Duration WindowTick() const { return lifetime / kMaxServersPerSet; }
};

/// What a resolution attempt tells the client.
enum class LocateStatus {
  kRedirect,   // go to this server
  kWait,       // wait `wait` then retry (full-delay path)
  kNotFound,   // no server has the file (deadline expired, V_h/V_p/V_q empty)
  kRetry,      // transient inconsistency (stale reference); retry now
};

struct LocateResult {
  LocateStatus status = LocateStatus::kRetry;
  ServerSlot server = -1;      // valid for kRedirect
  bool pending = false;        // redirect target is still staging the file
  Duration wait{};             // valid for kWait
};

}  // namespace scalla::cms

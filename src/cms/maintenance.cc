#include "cms/maintenance.h"

#include <utility>

namespace scalla::cms {

MaintenanceDriver::MaintenanceDriver(const CmsConfig& config, sched::Executor& executor,
                                     LocationCache& cache, FastResponseQueue& respq,
                                     Membership& membership)
    : config_(config),
      executor_(executor),
      cache_(cache),
      respq_(respq),
      membership_(membership) {
  respq_.SetBusyNotifier([this] {
    if (running_) StartSweepTimer();
  });
}

MaintenanceDriver::~MaintenanceDriver() {
  Stop();
  respq_.SetBusyNotifier(nullptr);
}

void MaintenanceDriver::Start(const Options& options, DropHandler onDrop) {
  if (running_) return;
  running_ = true;
  onDrop_ = std::move(onDrop);
  if (options.windowTick) {
    windowTimer_ = executor_.RunEvery(config_.WindowTick(), [this] {
      ++stats_.windowTicks;
      if (auto purge = cache_.OnWindowTick()) executor_.Post(std::move(purge));
    });
  }
  if (options.dropScan) {
    dropTimer_ = executor_.RunEvery(config_.dropDelay / 4, [this] {
      ++stats_.dropScans;
      for (const ServerSlot slot : membership_.DropExpired()) {
        ++stats_.membersDropped;
        if (onDrop_) onDrop_(slot);
      }
    });
  }
  // Anchors may already be busy from before Start (e.g. a node restart);
  // the busy notifier only fires on 0→1 transitions, so check now.
  if (!respq_.Empty()) StartSweepTimer();
}

void MaintenanceDriver::Stop() {
  for (sched::TimerId* id : {&windowTimer_, &sweepTimer_, &dropTimer_}) {
    if (*id != sched::kInvalidTimer) {
      executor_.Cancel(*id);
      *id = sched::kInvalidTimer;
    }
  }
  running_ = false;
}

void MaintenanceDriver::StartSweepTimer() {
  if (sweepTimer_ != sched::kInvalidTimer) return;
  sweepTimer_ = executor_.RunEvery(config_.sweepPeriod, [this] {
    ++stats_.sweeps;
    respq_.Sweep();
    if (respq_.Empty() && sweepTimer_ != sched::kInvalidTimer) {
      executor_.Cancel(sweepTimer_);
      sweepTimer_ = sched::kInvalidTimer;
    }
  });
}

}  // namespace scalla::cms

// Correction state for lazy cache accuracy (paper section III-A4).
//
// Cached location information is never eagerly fixed when the cluster
// configuration changes; instead each location object snapshots a master
// connect counter N_c as C_n, and on fetch the correction vector V_c —
// "servers that connected after this object was cached" — is derived from
// a per-slot counter array C[64] in O(1) and applied per Figure 3:
//
//   V_q = (V_q | V_c) & V_m
//   V_h = V_h & ~V_q & V_m
//   V_p = V_p & ~V_q & V_m
//   C_n = N_c
#pragma once

#include <array>
#include <cstdint>

#include "cms/types.h"

namespace scalla::cms {

class CorrectionState {
 public:
  /// Current master counter N_c. A location object caching now records
  /// this as its C_n; corrections are needed only when C_n != N_c.
  std::uint64_t Epoch() const { return nc_; }

  /// Server `slot` connected (login): N_c += 1, C[slot] = N_c.
  void OnConnect(ServerSlot slot) {
    c_[slot] = ++nc_;
  }

  /// Server `slot` was dropped from the cluster. Its counter is cleared so
  /// it no longer contributes to corrections; eligibility removal is
  /// handled by PathTable::RemoveServer (V_m masking).
  void OnDrop(ServerSlot slot) { c_[slot] = 0; }

  /// Server `slot` was declared dead (heartbeat miss limit) but keeps its
  /// slot for a fast rejoin. Bumping its counter puts it in V_c for every
  /// object cached earlier, so on the next fetch the correction shifts its
  /// V_h/V_p bits into V_q — the same O(1) lazy clearing CmsGone relies
  /// on, applied to every path at once.
  void Touch(ServerSlot slot) { c_[slot] = ++nc_; }

  /// V_c for an object whose snapshot is `cn`: every server whose connect
  /// time is later than the snapshot. O(64) scan; callers memoise per
  /// eviction window (V_wc/C_wn) to make the common case O(1).
  ServerSet CorrectionSince(std::uint64_t cn) const {
    ServerSet vc;
    for (ServerSlot i = 0; i < kMaxServersPerSet; ++i) {
      if (c_[i] > cn) vc.set(i);
    }
    return vc;
  }

  std::uint64_t ConnectTimeOf(ServerSlot slot) const { return c_[slot]; }

 private:
  std::uint64_t nc_ = 0;                              // N_c
  std::array<std::uint64_t, kMaxServersPerSet> c_{};  // C[]
};

}  // namespace scalla::cms

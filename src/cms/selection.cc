#include "cms/selection.h"

namespace scalla::cms {

SelectionPolicy::SelectionPolicy(SelectCriterion criterion, std::uint64_t seed)
    : criterion_(criterion), rngState_(seed ? seed : 1) {}

ServerSlot SelectionPolicy::Choose(ServerSet candidates, ServerSet avoid,
                                   Membership& membership) {
  ServerSet usable = candidates.Without(avoid);
  if (usable.empty()) usable = candidates;
  if (usable.empty()) return -1;
  const ServerSlot choice = ChooseFrom(usable, membership);
  if (choice >= 0) membership.CountSelection(choice);
  return choice;
}

ServerSlot SelectionPolicy::ChooseFrom(ServerSet set, Membership& membership) {
  if (set.count() == 1) return set.first();

  switch (criterion_) {
    case SelectCriterion::kRoundRobin: {
      // First candidate strictly after the previous choice, wrapping.
      const ServerSlot after = set.next(lastChoice_ < 0 ? 63 : lastChoice_);
      lastChoice_ = after >= 0 ? after : set.first();
      return lastChoice_;
    }
    case SelectCriterion::kRandom: {
      // xorshift64*; pick the n-th member.
      rngState_ ^= rngState_ >> 12;
      rngState_ ^= rngState_ << 25;
      rngState_ ^= rngState_ >> 27;
      const std::uint64_t r = rngState_ * 0x2545F4914F6CDD1DULL;
      int n = static_cast<int>(r % static_cast<std::uint64_t>(set.count()));
      ServerSlot s = set.first();
      while (n-- > 0) s = set.next(s);
      return s;
    }
    case SelectCriterion::kLoad:
    case SelectCriterion::kSpace:
    case SelectCriterion::kFrequency: {
      ServerSlot best = -1;
      // Load & frequency prefer smaller metric; space prefers larger.
      std::uint64_t bestMetric = 0;
      for (ServerSlot s = set.first(); s >= 0; s = set.next(s)) {
        const auto info = membership.InfoOf(s);
        if (!info) continue;
        std::uint64_t metric = 0;
        switch (criterion_) {
          case SelectCriterion::kLoad: metric = info->load; break;
          case SelectCriterion::kSpace: metric = info->freeSpace; break;
          default: metric = info->selectionCount; break;
        }
        const bool better = best < 0 || (criterion_ == SelectCriterion::kSpace
                                             ? metric > bestMetric
                                             : metric < bestMetric);
        if (better) {
          best = s;
          bestMetric = metric;
        }
      }
      return best >= 0 ? best : set.first();
    }
  }
  return set.first();
}

}  // namespace scalla::cms

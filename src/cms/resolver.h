// The resolution engine (paper sections III-B and III-C): ties the
// location cache, the fast response queue, membership and selection into
// the request-rarely-respond protocol.
//
// Resolution steps (section III-B1):
//   1. Look the cache entry up (creating it on first access).
//   2. V_h, V_p, V_q all empty: past the processing deadline -> "file does
//      not exist"; otherwise park the client on the fast response queue.
//   3. V_h or V_p has an online server: redirect the client there.
//   4. V_q non-empty but nothing usable: park the client on the fast
//      response queue.
//   5. Ask each (online) server in V_q whether it has the file.
//   6. Record in V_q only the servers that could NOT be queried.
//
// Deadline-based synchronization (section III-C2): an unexpired deadline
// implies some thread is already querying, so late-coming threads only
// park their client — no extra locks or queues, and no duplicate floods.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cms/location_cache.h"
#include "cms/membership.h"
#include "cms/response_queue.h"
#include "cms/selection.h"
#include "cms/types.h"
#include "util/clock.h"

namespace scalla::cms {

struct LocateOptions {
  AccessMode mode = AccessMode::kRead;
  bool refresh = false;     // client retry after being vectored to a bad server
  ServerSlot avoid = -1;    // the server that failed that client
};

/// Invoked exactly once per Locate call (possibly synchronously, possibly
/// after servers respond or the sweep expires the waiter).
using LocateCallback = std::function<void(const LocateResult&)>;

class Resolver {
 public:
  /// Sends "do you have <path>?" to every server in the set. The node
  /// layer binds this to its subordinate links; mode lets leaf servers
  /// veto write access on read-only exports.
  using QuerySender =
      std::function<void(ServerSet targets, const std::string& path, std::uint32_t hash,
                         AccessMode mode)>;

  Resolver(const CmsConfig& config, util::Clock& clock, Membership& membership,
           LocationCache& cache, FastResponseQueue& respq, SelectionPolicy& selection,
           QuerySender sendQuery);

  /// Resolves `path` for a client.
  void Locate(const std::string& path, const LocateOptions& options, LocateCallback done);

  /// A subordinate responded that it has (or is staging) the file. The
  /// subordinate's precomputed hash rides along with the reply so this
  /// path never re-hashes the name (section III-B1).
  void OnHave(const std::string& path, std::uint32_t hash, ServerSlot from, bool pending,
              bool allowWrite);

  /// A subordinate reported the file gone (refresh traffic / unlink).
  void OnGone(const std::string& path, ServerSlot from);

  struct Stats {
    std::size_t locates = 0;
    std::size_t redirects = 0;       // immediate redirect from cache
    std::size_t fastRedirects = 0;   // redirect via the fast response queue
    std::size_t notFound = 0;
    std::size_t fullDelays = 0;      // client told to wait the full period
    std::size_t queriesSent = 0;     // query fan-outs (one per Locate that floods)
    std::size_t queryMessages = 0;   // individual server queries
    std::size_t deferrals = 0;       // parked because a deadline was active
  };
  Stats GetStats() const;

 private:
  void Park(const LocRef& ref, AccessMode mode, ServerSlot avoid, LocateCallback done);
  bool RedirectFrom(const LocInfo& info, const LocateOptions& options, LocateResult* out);

  const CmsConfig config_;
  util::Clock& clock_;
  Membership& membership_;
  LocationCache& cache_;
  FastResponseQueue& respq_;
  SelectionPolicy& selection_;
  QuerySender sendQuery_;

  mutable std::mutex statsMu_;
  Stats stats_;
};

}  // namespace scalla::cms

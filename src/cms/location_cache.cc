#include "cms/location_cache.h"

#include <cstring>

#include "util/crc32.h"
#include "util/fibonacci.h"

namespace scalla::cms {
namespace {

// Objects recycled per lock acquisition by the background purge job. Small
// batches keep the job's interference with foreground look-ups minimal
// (the paper's "minimal interference" property, benchmarked in E04).
constexpr std::size_t kPurgeBatch = 128;

// Slab block size: objects allocated but never freed (section III-B1).
constexpr std::size_t kSlabObjects = 1024;

}  // namespace

/// One cached file-location record (Figure 2). Fields mirror the paper:
/// the three server-set vectors, the C_n snapshot, T_a, the processing
/// deadline, and the R_r/R_w fast-response references. The object also
/// carries its hash-bucket and window chain links (intrusive singly-linked
/// lists) and the reference-authenticator counter.
class LocationObject {
 public:
  LocationObject* hashNext = nullptr;
  LocationObject* windowNext = nullptr;
  std::uint32_t hash = 0;
  std::uint32_t keyLen = 0;  // 0 => hidden (unfindable but pointer-valid)
  std::uint8_t addWindow = 0;  // T_a (window index, T_w mod 64)
  std::uint32_t auth = 1;      // authenticator; bumped when removed
  std::uint64_t cn = 0;        // C_n: corrections epoch at last fix-up
  TimePoint deadline{};        // processing deadline (section III-C2)
  ServerSet vh, vp, vq;
  RespSlotRef rr, rw;  // fast-response anchors for read / write waiters
  std::string key;
};

LocationCache::LocationCache(const CmsConfig& config, util::Clock& clock,
                             CorrectionState& corrections)
    : config_(config), clock_(clock), corrections_(corrections) {
  buckets_.assign(util::FibonacciAtLeast(config_.initialBuckets), nullptr);
}

LocationCache::~LocationCache() = default;

std::uint32_t LocationCache::HashOf(std::string_view path) { return util::Crc32(path); }

LocInfo LocationCache::InfoOf(const LocationObject* obj) const {
  return LocInfo{obj->vh, obj->vp, obj->vq};
}

bool LocationCache::ValidLocked(const LocRef& ref) const {
  return ref.obj != nullptr && ref.obj->auth == ref.auth;
}

LocationObject* LocationCache::FindLocked(std::string_view path, std::uint32_t hash) const {
  LocationObject* obj = buckets_[hash % buckets_.size()];
  while (obj != nullptr) {
    ++stats_.probes;
    if (obj->hash == hash && obj->keyLen == path.size() &&
        std::memcmp(obj->key.data(), path.data(), path.size()) == 0) {
      return obj;
    }
    obj = obj->hashNext;
  }
  return nullptr;
}

LocationObject* LocationCache::AllocateLocked() {
  if (freeList_.empty()) {
    slabs_.push_back(std::make_unique<LocationObject[]>(kSlabObjects));
    LocationObject* block = slabs_.back().get();
    freeList_.reserve(freeList_.size() + kSlabObjects);
    for (std::size_t i = kSlabObjects; i-- > 0;) freeList_.push_back(&block[i]);
    stats_.allocatedObjects += kSlabObjects;
    stats_.approxBytes += kSlabObjects * sizeof(LocationObject);
  }
  LocationObject* obj = freeList_.back();
  freeList_.pop_back();
  return obj;
}

void LocationCache::InsertLocked(LocationObject* obj, std::string_view path,
                                 std::uint32_t hash, ServerSet vm) {
  obj->hash = hash;
  obj->key.assign(path);
  obj->keyLen = static_cast<std::uint32_t>(path.size());
  obj->addWindow = static_cast<std::uint8_t>(tw_ % kMaxServersPerSet);
  obj->cn = corrections_.Epoch();
  obj->deadline = clock_.Now() + config_.deadline;
  obj->vh = ServerSet::None();
  obj->vp = ServerSet::None();
  obj->vq = vm;  // everything eligible must be queried
  obj->rr = RespSlotRef{};
  obj->rw = RespSlotRef{};

  LocationObject*& bucket = buckets_[hash % buckets_.size()];
  obj->hashNext = bucket;
  bucket = obj;

  Window& win = windows_[obj->addWindow];
  obj->windowNext = win.head;
  win.head = obj;
  ++win.size;

  ++stats_.liveObjects;
  ++stats_.creates;
  stats_.approxBytes += obj->key.capacity();
  MaybeGrowLocked();
}

void LocationCache::MaybeGrowLocked() {
  const std::size_t inTable = stats_.liveObjects + stats_.hiddenObjects;
  if (static_cast<double>(inTable) <
      config_.growthLoadFactor * static_cast<double>(buckets_.size())) {
    return;
  }
  const std::size_t newSize = util::NextFibonacci(buckets_.size());
  if (newSize == buckets_.size()) return;
  std::vector<LocationObject*> fresh(newSize, nullptr);
  for (LocationObject* head : buckets_) {
    while (head != nullptr) {
      LocationObject* next = head->hashNext;
      LocationObject*& dst = fresh[head->hash % newSize];
      head->hashNext = dst;
      dst = head;
      head = next;
    }
  }
  buckets_.swap(fresh);
  ++stats_.rehashes;
}

void LocationCache::ApplyCorrectionsLocked(LocationObject* obj, ServerSet vm,
                                           ServerSet offline) {
  // Figure 3: fold in servers that connected after this object's snapshot.
  if (obj->cn != corrections_.Epoch()) {
    ++stats_.corrections;
    Window& win = windows_[obj->addWindow];
    ServerSet vc;
    if (config_.correctionMemo && win.memoCn == obj->cn &&
        win.memoNc == corrections_.Epoch()) {
      vc = win.memoVc;  // the window's V_wc applies (section III-A4)
      ++stats_.correctionMemoHits;
    } else {
      vc = corrections_.CorrectionSince(obj->cn);
      win.memoCn = obj->cn;
      win.memoNc = corrections_.Epoch();
      win.memoVc = vc;
    }
    obj->vq = (obj->vq | vc) & vm;
    obj->vh = obj->vh.Without(obj->vq) & vm;
    obj->vp = obj->vp.Without(obj->vq) & vm;
    obj->cn = corrections_.Epoch();
  }

  // Servers between disconnect and drop: shift their claims into V_q so
  // they are re-queried on a later look-up (section III-A4 case 1).
  const ServerSet off = offline & (obj->vh | obj->vp) & vm;
  if (!off.empty()) {
    obj->vq |= off;
    obj->vh = obj->vh.Without(off);
    obj->vp = obj->vp.Without(off);
  }
}

LocationCache::FetchResult LocationCache::Lookup(std::string_view path, ServerSet vm,
                                                 ServerSet offline, AddPolicy policy) {
  const std::uint32_t hash = HashOf(path);
  std::lock_guard lock(mu_);
  ++stats_.lookups;

  LocationObject* obj = FindLocked(path, hash);
  FetchResult result;
  if (obj == nullptr) {
    if (policy == AddPolicy::kFindOnly) return result;
    obj = AllocateLocked();
    InsertLocked(obj, path, hash, vm);
    result.created = true;
  } else {
    ++stats_.hits;
    ApplyCorrectionsLocked(obj, vm, offline);
  }

  result.found = true;
  result.ref = LocRef{obj, obj->auth};
  result.info = InfoOf(obj);
  const TimePoint now = clock_.Now();
  result.deadlineActive = obj->deadline > now;
  result.deadlineRemaining = result.deadlineActive ? obj->deadline - now : Duration::zero();
  return result;
}

bool LocationCache::BeginQuery(const LocRef& ref, ServerSet queried, TimePoint deadline) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  ref.obj->vq = ref.obj->vq.Without(queried);
  ref.obj->deadline = deadline;
  return true;
}

LocationCache::UpdateResult LocationCache::AddLocation(std::string_view path,
                                                       std::uint32_t hash,
                                                       ServerSlot server, bool pending,
                                                       bool allowWrite) {
  std::lock_guard lock(mu_);
  UpdateResult result;
  LocationObject* obj = FindLocked(path, hash);
  if (obj == nullptr) return result;  // expired meanwhile; waiters will retry

  result.found = true;
  obj->vq.reset(server);
  if (pending) {
    obj->vp.set(server);
  } else {
    obj->vh.set(server);
    obj->vp.reset(server);
  }

  // Hand back the fast-response references so the caller can release
  // waiting clients; a file that is present is readable, so the read
  // queue always releases, the write queue only when the responding
  // server allows writes. The references stay stored: a release may be
  // partial (waiters avoiding the responder remain parked) and the next
  // responder must still find the anchor. Once the queue frees an anchor
  // it bumps the epoch, so a stored reference that was fully released is
  // simply ignored downstream (loose coupling).
  if (obj->rr.IsSet()) result.releaseRead = obj->rr;
  if (allowWrite && obj->rw.IsSet()) result.releaseWrite = obj->rw;
  result.info = InfoOf(obj);
  return result;
}

void LocationCache::RemoveLocation(std::string_view path, ServerSlot server) {
  const std::uint32_t hash = HashOf(path);
  std::lock_guard lock(mu_);
  LocationObject* obj = FindLocked(path, hash);
  if (obj == nullptr) return;
  obj->vh.reset(server);
  obj->vp.reset(server);
}

bool LocationCache::Refresh(const LocRef& ref, ServerSet vm, TimePoint deadline) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  LocationObject* obj = ref.obj;
  // Logically a new un-cached request: requery everything eligible. T_a
  // moves to the current window but the object is NOT re-chained — the
  // purge job of its current chain performs the deferred re-chain
  // (section III-C1).
  obj->vh = ServerSet::None();
  obj->vp = ServerSet::None();
  obj->vq = vm;
  obj->cn = corrections_.Epoch();
  obj->deadline = deadline;
  obj->addWindow = static_cast<std::uint8_t>(tw_ % kMaxServersPerSet);
  return true;
}

RespSlotRef LocationCache::GetRespSlot(const LocRef& ref, AccessMode mode) const {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return RespSlotRef{};
  return mode == AccessMode::kRead ? ref.obj->rr : ref.obj->rw;
}

bool LocationCache::SetRespSlot(const LocRef& ref, AccessMode mode, RespSlotRef slot) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  (mode == AccessMode::kRead ? ref.obj->rr : ref.obj->rw) = slot;
  return true;
}

bool LocationCache::ReadInfo(const LocRef& ref, ServerSet vm, ServerSet offline,
                             LocInfo* out) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  ApplyCorrectionsLocked(ref.obj, vm, offline);
  *out = InfoOf(ref.obj);
  return true;
}

std::function<void()> LocationCache::OnWindowTick() {
  std::lock_guard lock(mu_);
  ++tw_;
  ++stats_.windowTicks;
  const int w = static_cast<int>(tw_ % kMaxServersPerSet);
  Window& win = windows_[w];

  // Hide pass: trivial per entry — zero the key length so the hash walk
  // can no longer match it. Refreshed objects (T_a != w) are skipped; the
  // purge job will re-chain them (footnote 6 / section III-C1).
  for (LocationObject* obj = win.head; obj != nullptr; obj = obj->windowNext) {
    if (obj->keyLen != 0 && obj->addWindow == w) {
      obj->keyLen = 0;
      ++obj->auth;  // outstanding references become invalid now
      --stats_.liveObjects;
      ++stats_.hiddenObjects;
    }
  }
  // The window restarts: its correction memo no longer applies.
  win.memoCn = ~std::uint64_t{0};
  win.memoNc = ~std::uint64_t{0};

  if (win.head == nullptr) return {};
  return [this, w] { PurgeWindow(w, kPurgeBatch); };
}

std::size_t LocationCache::PurgeWindow(int window, std::size_t maxBatch) {
  // Detach the whole chain, then recycle/re-chain in small batches so
  // foreground look-ups interleave freely.
  LocationObject* list = nullptr;
  {
    std::lock_guard lock(mu_);
    list = windows_[window].head;
    windows_[window].head = nullptr;
    windows_[window].size = 0;
  }
  std::size_t freed = 0;
  while (list != nullptr) {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < maxBatch && list != nullptr; ++i) {
      LocationObject* obj = list;
      list = obj->windowNext;
      if (obj->keyLen == 0) {
        // Hidden: physically remove. Storage is recycled, never deleted.
        UnlinkFromHashLocked(obj);
        ++obj->auth;
        stats_.approxBytes -= obj->key.capacity();
        obj->key.clear();
        obj->key.shrink_to_fit();
        obj->rr = RespSlotRef{};
        obj->rw = RespSlotRef{};
        freeList_.push_back(obj);
        --stats_.hiddenObjects;
        ++stats_.recycled;
        ++freed;
      } else {
        // Visible: deferred re-chain to the window of its current T_a
        // (which may be this same window for objects added after the
        // tick, or a later one for refreshed objects).
        Window& dst = windows_[obj->addWindow];
        obj->windowNext = dst.head;
        dst.head = obj;
        ++dst.size;
        if (obj->addWindow != window) ++stats_.rechained;
      }
    }
  }
  return freed;
}

void LocationCache::UnlinkFromHashLocked(LocationObject* obj) {
  LocationObject** link = &buckets_[obj->hash % buckets_.size()];
  while (*link != nullptr) {
    if (*link == obj) {
      *link = obj->hashNext;
      obj->hashNext = nullptr;
      return;
    }
    link = &(*link)->hashNext;
  }
}

LocationCache::Stats LocationCache::GetStats() const {
  std::lock_guard lock(mu_);
  Stats s = stats_;
  s.buckets = buckets_.size();
  s.freeObjects = freeList_.size();
  return s;
}

int LocationCache::CurrentWindow() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(tw_ % kMaxServersPerSet);
}

}  // namespace scalla::cms

#include "cms/location_cache.h"

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

#include "util/crc32.h"
#include "util/fibonacci.h"

namespace scalla::cms {
namespace {

// Objects recycled per lock acquisition by the background purge job. Small
// batches keep the job's interference with foreground look-ups minimal
// (the paper's "minimal interference" property, benchmarked in E04).
constexpr std::size_t kPurgeBatch = 128;

// First arena growth; later growths double, bounded by cacheBytes.
constexpr std::uint32_t kInitialSlots = 1024;

}  // namespace

/// One cached file-location record (Figure 2) in exactly one arena slot.
/// Fields mirror the paper: the three server-set vectors, the C_n
/// snapshot, T_a, the processing deadline, and the R_r/R_w fast-response
/// references. Chain links (hash bucket, eviction window, free list, key
/// extension) are 32-bit slot indices. Key bytes live inline; longer names
/// continue in ExtSlot-overlaid slots chained from keyExt.
struct LocationCache::Record {
  static constexpr std::size_t kInlineKeyBytes =
      kRecordBytes - (6 * sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                      sizeof(TimePoint) + 3 * sizeof(ServerSet) +
                      2 * sizeof(RespSlotRef) + 1);

  // auth MUST stay at offset 0 in every overlay of a slot: a slot that
  // cycles through extension-slot duty and back to record duty must keep
  // its authenticator monotonic, or a stale LocRef could spuriously
  // re-validate against whatever bytes the detour left behind.
  std::uint32_t auth;       // authenticator; bumped when hidden/recycled
  std::uint32_t hashNext;   // bucket chain; free-list link while recycled
  std::uint32_t windowNext; // eviction-window chain
  std::uint32_t keyExt;     // first key-extension slot, or kNullCacheIndex
  std::uint32_t hash;
  std::uint32_t keyLen;     // full key length; 0 => hidden (unfindable)
  std::uint64_t cn;         // C_n: corrections epoch at last fix-up
  TimePoint deadline;       // processing deadline (section III-C2)
  ServerSet vh, vp, vq;
  RespSlotRef rr, rw;       // fast-response anchors for read / write waiters
  std::uint8_t addWindow;   // T_a (window index, T_w mod 64)
  char key[kInlineKeyBytes];
};

/// Overlay for slots carrying overflow key bytes of a long file name.
/// The leading auth field aliases Record::auth and is never written, so a
/// slot's authenticator survives extension-slot duty (see Record::auth).
struct LocationCache::ExtSlot {
  static constexpr std::size_t kBytes = kRecordBytes - 2 * sizeof(std::uint32_t);
  std::uint32_t auth;  // aliases Record::auth; preserved, never touched
  std::uint32_t next;  // next extension slot, or kNullCacheIndex
  char bytes[kBytes];
};

LocationCache::LocationCache(const CmsConfig& config, util::Clock& clock,
                             CorrectionState& corrections)
    : config_(config), clock_(clock), corrections_(corrections) {
  static_assert(sizeof(Record) == kRecordBytes,
                "a location record must fill exactly one arena slot");
  static_assert(sizeof(ExtSlot) == kRecordBytes,
                "a key-extension overlay must fill exactly one arena slot");
  static_assert(std::is_trivially_copyable_v<Record>,
                "arena growth memcpy-moves records");
  static_assert(offsetof(Record, auth) == 0 && offsetof(ExtSlot, auth) == 0,
                "every slot overlay must alias the authenticator at offset 0 "
                "so it stays monotonic across record/extension reuse");
  static_assert(offsetof(Record, hashNext) == offsetof(ExtSlot, next),
                "free-list threading writes Record::hashNext regardless of "
                "which overlay last used the slot");
  buckets_.assign(util::FibonacciAtLeast(config_.initialBuckets), kNullCacheIndex);
}

LocationCache::~LocationCache() = default;

std::uint32_t LocationCache::HashOf(std::string_view path) { return util::Crc32(path); }

LocationCache::Record* LocationCache::At(std::uint32_t index) const {
  return reinterpret_cast<Record*>(arena_.get() +
                                   std::size_t{index} * kRecordBytes);
}

LocationCache::ExtSlot* LocationCache::ExtAt(std::uint32_t index) const {
  return reinterpret_cast<ExtSlot*>(arena_.get() +
                                    std::size_t{index} * kRecordBytes);
}

LocInfo LocationCache::InfoOf(const Record* rec) const {
  return LocInfo{rec->vh, rec->vp, rec->vq};
}

bool LocationCache::ValidLocked(const LocRef& ref) const {
  // Indices at or past the bump cursor were never handed out, and their
  // slots are uninitialised — don't even read their authenticator.
  return ref.index < bumpNext_ && At(ref.index)->auth == ref.auth;
}

bool LocationCache::KeyEqualsLocked(const Record* rec, std::string_view path) const {
  const std::size_t inlineLen = std::min(path.size(), Record::kInlineKeyBytes);
  if (std::memcmp(rec->key, path.data(), inlineLen) != 0) return false;
  std::size_t done = inlineLen;
  std::uint32_t ext = rec->keyExt;
  while (done < path.size()) {
    const ExtSlot* slot = ExtAt(ext);
    const std::size_t chunk = std::min(path.size() - done, ExtSlot::kBytes);
    if (std::memcmp(slot->bytes, path.data() + done, chunk) != 0) return false;
    done += chunk;
    ext = slot->next;
  }
  return true;
}

std::uint32_t LocationCache::FindLocked(std::string_view path,
                                        std::uint32_t hash) const {
  std::uint32_t index = buckets_[hash % buckets_.size()];
  while (index != kNullCacheIndex) {
    ++stats_.probes;
    const Record* rec = At(index);
    // keyLen == 0 marks a hidden record awaiting purge: it must never
    // match, not even a zero-length probe (hidden-entry resurrection).
    if (rec->keyLen != 0 && rec->hash == hash && rec->keyLen == path.size() &&
        KeyEqualsLocked(rec, path)) {
      return index;
    }
    index = rec->hashNext;
  }
  return kNullCacheIndex;
}

bool LocationCache::GrowArenaLocked() {
  std::size_t want = slotCapacity_ == 0 ? kInitialSlots
                                        : std::size_t{slotCapacity_} * 2;
  if (config_.cacheBytes > 0) {
    const std::size_t bucketBytes = buckets_.capacity() * sizeof(std::uint32_t);
    const std::size_t slotBudget =
        config_.cacheBytes > bucketBytes
            ? (config_.cacheBytes - bucketBytes) / kRecordBytes
            : 0;
    want = std::min(want, slotBudget);
    if (want <= slotCapacity_) return false;  // budget reached: no growth
  }
  want = std::min<std::size_t>(want, kNullCacheIndex);  // index links are 32-bit
  if (want <= slotCapacity_) return false;

  // for_overwrite: value-initialising the slab would touch (and make
  // resident) every page of the doubled tail we promise never to touch.
  auto grown = std::make_unique_for_overwrite<std::byte[]>(want * kRecordBytes);
  if (slotCapacity_ > 0) {
    std::memcpy(grown.get(), arena_.get(), std::size_t{slotCapacity_} * kRecordBytes);
  }
  // The fresh tail is deliberately NOT initialised here: slots past the
  // bump cursor are handed out (and first touched) one by one in
  // AllocateSlotLocked, so doubling overshoot costs virtual address
  // space only — the pages never become resident until used.
  arena_ = std::move(grown);
  slotCapacity_ = static_cast<std::uint32_t>(want);
  return true;
}

std::size_t LocationCache::EmergencyEvictLocked() {
  // Budget pressure: no free slot and no headroom to grow. Force-expire
  // the non-empty window closest to its natural expiry — hide its due
  // entries exactly like a tick would (hiding is O(1) per entry). This is
  // the arena analogue of djbdns evicting at the tail. Recycling, however,
  // unlinks from the hash table and is the expensive part, and this runs
  // under mu_ inside a foreground look-up: recycle inline only up to
  // kPurgeBatch slots — plenty for the current allocation — and leave the
  // remainder chained, hidden and unfindable, for the window's natural
  // purge job. A hot window can hold a large fraction of all entries; an
  // unbounded inline purge would stall every concurrent look-up.
  std::size_t freed = 0;
  for (int step = 1; step <= kMaxServersPerSet && freed == 0; ++step) {
    const int w = static_cast<int>((tw_ + step) % kMaxServersPerSet);
    Window& win = windows_[w];
    if (win.head == kNullCacheIndex) continue;
    std::size_t evicted = 0;
    for (std::uint32_t i = win.head; i != kNullCacheIndex; i = At(i)->windowNext) {
      Record* rec = At(i);
      if (rec->keyLen != 0 && rec->addWindow == w) {
        HideLocked(rec);
        ++evicted;
      }
    }
    stats_.budgetEvictions += evicted;
    win.memoCn = ~std::uint64_t{0};
    win.memoNc = ~std::uint64_t{0};
    std::uint32_t list = win.head;
    win.head = kNullCacheIndex;
    win.size = 0;
    while (list != kNullCacheIndex) {
      const std::uint32_t index = list;
      list = At(index)->windowNext;
      if (freed < kPurgeBatch) {
        freed += RecycleOrRechainLocked(index, w);
      } else {
        // Inline cap reached: keep the entry chained here. Hidden entries
        // stay invisible to look-ups; visible (refreshed) ones get their
        // deferred re-chain when this window's tick comes around.
        At(index)->windowNext = win.head;
        win.head = index;
        ++win.size;
      }
    }
  }
  return freed;
}

std::uint32_t LocationCache::AllocateSlotLocked() {
  // Recycled slots first (they are warm and already initialised), then
  // the bump region, growing or force-evicting when both run dry.
  if (freeHead_ == kNullCacheIndex && bumpNext_ >= slotCapacity_) {
    if (!GrowArenaLocked() && EmergencyEvictLocked() == 0) return kNullCacheIndex;
  }
  if (freeHead_ != kNullCacheIndex) {
    const std::uint32_t index = freeHead_;
    freeHead_ = At(index)->hashNext;
    --freeCount_;
    return index;
  }
  if (bumpNext_ >= slotCapacity_) return kNullCacheIndex;
  // First use of a virgin slot: this is the only place its authenticator
  // is seeded; from here on it only ever increments (hide/recycle).
  const std::uint32_t index = bumpNext_++;
  At(index)->auth = 1;
  return index;
}

void LocationCache::FreeSlotLocked(std::uint32_t index) {
  At(index)->hashNext = freeHead_;
  freeHead_ = index;
  ++freeCount_;
}

bool LocationCache::StoreKeyLocked(std::uint32_t recIndex, std::string_view path) {
  // Every AllocateSlotLocked call below may grow the arena and move the
  // slab, so no Record*/ExtSlot*/uint32_t* into the arena may be held
  // across it: the record and the chain tail are tracked as slot indices
  // and re-resolved through At()/ExtAt() after each allocation.
  {
    Record* rec = At(recIndex);
    const std::size_t inlineLen = std::min(path.size(), Record::kInlineKeyBytes);
    std::memcpy(rec->key, path.data(), inlineLen);
    rec->keyExt = kNullCacheIndex;
  }
  std::size_t done = std::min(path.size(), Record::kInlineKeyBytes);
  std::uint32_t tail = kNullCacheIndex;  // last extension slot written so far
  while (done < path.size()) {
    const std::uint32_t ext = AllocateSlotLocked();  // may move the slab
    if (ext == kNullCacheIndex) {
      FreeKeyChainLocked(At(recIndex));  // release the partial chain
      return false;
    }
    ExtSlot* slot = ExtAt(ext);
    const std::size_t chunk = std::min(path.size() - done, ExtSlot::kBytes);
    std::memcpy(slot->bytes, path.data() + done, chunk);
    slot->next = kNullCacheIndex;
    if (tail == kNullCacheIndex) {
      At(recIndex)->keyExt = ext;
    } else {
      ExtAt(tail)->next = ext;
    }
    tail = ext;
    done += chunk;
    ++stats_.extensionSlots;
  }
  At(recIndex)->keyLen = static_cast<std::uint32_t>(path.size());
  return true;
}

void LocationCache::FreeKeyChainLocked(Record* rec) {
  std::uint32_t ext = rec->keyExt;
  while (ext != kNullCacheIndex) {
    const std::uint32_t next = ExtAt(ext)->next;
    FreeSlotLocked(ext);
    --stats_.extensionSlots;
    ext = next;
  }
  rec->keyExt = kNullCacheIndex;
}

bool LocationCache::InsertLocked(std::uint32_t index, std::string_view path,
                                 std::uint32_t hash, ServerSet vm) {
  At(index)->hash = hash;
  if (!StoreKeyLocked(index, path)) return false;  // key chain hit the budget
  // Re-resolve: storing a long key can allocate extension slots, which can
  // grow the arena and move the slab out from under any earlier Record*.
  Record* rec = At(index);
  rec->addWindow = static_cast<std::uint8_t>(tw_ % kMaxServersPerSet);
  rec->cn = corrections_.Epoch();
  rec->deadline = clock_.Now() + config_.deadline;
  rec->vh = ServerSet::None();
  rec->vp = ServerSet::None();
  rec->vq = vm;  // everything eligible must be queried
  rec->rr = RespSlotRef{};
  rec->rw = RespSlotRef{};

  std::uint32_t& bucket = buckets_[hash % buckets_.size()];
  rec->hashNext = bucket;
  bucket = index;

  Window& win = windows_[rec->addWindow];
  rec->windowNext = win.head;
  win.head = index;
  ++win.size;

  ++stats_.liveObjects;
  ++stats_.creates;
  MaybeGrowLocked();
  return true;
}

void LocationCache::MaybeGrowLocked() {
  // Live entries only: hidden records are already invisible to look-ups
  // and about to be recycled, so a hide-pass burst must not trigger a
  // premature grow + full rehash.
  if (static_cast<double>(stats_.liveObjects) <
      config_.growthLoadFactor * static_cast<double>(buckets_.size())) {
    return;
  }
  const std::size_t newSize = util::NextFibonacci(buckets_.size());
  if (newSize == buckets_.size()) return;
  std::vector<std::uint32_t> fresh(newSize, kNullCacheIndex);
  if (config_.cacheBytes > 0) {
    // The budget is hard: when a bigger table plus the arena would exceed
    // it, keep the current table and let chains lengthen instead. Charge
    // the fresh vector's *capacity* — the same basis GrowArenaLocked and
    // GetStats use — so the two sides of the budget can never disagree
    // when capacity exceeds size.
    const std::size_t arenaBytes = std::size_t{slotCapacity_} * kRecordBytes;
    if (arenaBytes + fresh.capacity() * sizeof(std::uint32_t) > config_.cacheBytes) {
      return;
    }
  }
  for (std::uint32_t head : buckets_) {
    while (head != kNullCacheIndex) {
      Record* rec = At(head);
      const std::uint32_t next = rec->hashNext;
      std::uint32_t& dst = fresh[rec->hash % newSize];
      rec->hashNext = dst;
      dst = head;
      head = next;
    }
  }
  buckets_.swap(fresh);
  ++stats_.rehashes;
}

void LocationCache::ApplyCorrectionsLocked(Record* rec, ServerSet vm,
                                           ServerSet offline) {
  // Figure 3: fold in servers that connected after this object's snapshot.
  if (rec->cn != corrections_.Epoch()) {
    ++stats_.corrections;
    Window& win = windows_[rec->addWindow];
    ServerSet vc;
    if (config_.correctionMemo && win.memoCn == rec->cn &&
        win.memoNc == corrections_.Epoch()) {
      vc = win.memoVc;  // the window's V_wc applies (section III-A4)
      ++stats_.correctionMemoHits;
    } else {
      vc = corrections_.CorrectionSince(rec->cn);
      win.memoCn = rec->cn;
      win.memoNc = corrections_.Epoch();
      win.memoVc = vc;
    }
    rec->vq = (rec->vq | vc) & vm;
    rec->vh = rec->vh.Without(rec->vq) & vm;
    rec->vp = rec->vp.Without(rec->vq) & vm;
    rec->cn = corrections_.Epoch();
  }

  // Servers between disconnect and drop: shift their claims into V_q so
  // they are re-queried on a later look-up (section III-A4 case 1).
  const ServerSet off = offline & (rec->vh | rec->vp) & vm;
  if (!off.empty()) {
    rec->vq |= off;
    rec->vh = rec->vh.Without(off);
    rec->vp = rec->vp.Without(off);
  }
}

LocationCache::FetchResult LocationCache::Lookup(std::string_view path, ServerSet vm,
                                                 ServerSet offline, AddPolicy policy) {
  FetchResult result;
  const std::uint32_t hash = HashOf(path);
  std::lock_guard lock(mu_);
  ++stats_.lookups;
  if (path.empty()) return result;  // zero-length keys are the hidden marker

  std::uint32_t index = FindLocked(path, hash);
  if (index == kNullCacheIndex) {
    if (policy == AddPolicy::kFindOnly) return result;
    index = AllocateSlotLocked();
    if (index == kNullCacheIndex || !InsertLocked(index, path, hash, vm)) {
      if (index != kNullCacheIndex) FreeSlotLocked(index);
      ++stats_.createFailures;  // byte budget exhausted, nothing evictable
      return result;
    }
    result.created = true;
  } else {
    ++stats_.hits;
    ApplyCorrectionsLocked(At(index), vm, offline);
  }

  const Record* rec = At(index);
  result.found = true;
  result.ref = LocRef{index, rec->auth};
  result.info = InfoOf(rec);
  const TimePoint now = clock_.Now();
  result.deadlineActive = rec->deadline > now;
  result.deadlineRemaining = result.deadlineActive ? rec->deadline - now : Duration::zero();
  return result;
}

bool LocationCache::BeginQuery(const LocRef& ref, ServerSet queried, TimePoint deadline) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  Record* rec = At(ref.index);
  rec->vq = rec->vq.Without(queried);
  rec->deadline = deadline;
  return true;
}

LocationCache::UpdateResult LocationCache::AddLocation(std::string_view path,
                                                       std::uint32_t hash,
                                                       ServerSlot server, bool pending,
                                                       bool allowWrite) {
  UpdateResult result;
  if (path.empty()) return result;
  std::lock_guard lock(mu_);
  const std::uint32_t index = FindLocked(path, hash);
  if (index == kNullCacheIndex) return result;  // expired meanwhile; waiters retry

  Record* rec = At(index);
  result.found = true;
  rec->vq.reset(server);
  if (pending) {
    rec->vp.set(server);
  } else {
    rec->vh.set(server);
    rec->vp.reset(server);
  }

  // Hand back the fast-response references so the caller can release
  // waiting clients; a file that is present is readable, so the read
  // queue always releases, the write queue only when the responding
  // server allows writes. The references stay stored: a release may be
  // partial (waiters avoiding the responder remain parked) and the next
  // responder must still find the anchor. Once the queue frees an anchor
  // it bumps the epoch, so a stored reference that was fully released is
  // simply ignored downstream (loose coupling).
  if (rec->rr.IsSet()) result.releaseRead = rec->rr;
  if (allowWrite && rec->rw.IsSet()) result.releaseWrite = rec->rw;
  result.info = InfoOf(rec);
  return result;
}

void LocationCache::HideLocked(Record* rec) {
  rec->keyLen = 0;
  ++rec->auth;  // outstanding references become invalid now
  --stats_.liveObjects;
  ++stats_.hiddenObjects;
}

void LocationCache::RemoveLocation(std::string_view path, ServerSlot server) {
  if (path.empty()) return;
  const std::uint32_t hash = HashOf(path);
  std::lock_guard lock(mu_);
  const std::uint32_t index = FindLocked(path, hash);
  if (index == kNullCacheIndex) return;
  Record* rec = At(index);
  rec->vh.reset(server);
  rec->vp.reset(server);
  if (rec->vh.empty() && rec->vp.empty() && rec->vq.empty()) {
    // The last holder reported the file gone and nothing is left to
    // query: a visible record would keep answering as a hit with
    // all-empty vectors until its window expired. Hide it so the next
    // look-up re-creates and re-queries; its window's purge job recycles
    // the storage.
    HideLocked(rec);
  }
}

bool LocationCache::Refresh(const LocRef& ref, ServerSet vm, TimePoint deadline) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  Record* rec = At(ref.index);
  // Logically a new un-cached request: requery everything eligible. T_a
  // moves to the current window but the object is NOT re-chained — the
  // purge job of its current chain performs the deferred re-chain
  // (section III-C1).
  rec->vh = ServerSet::None();
  rec->vp = ServerSet::None();
  rec->vq = vm;
  rec->cn = corrections_.Epoch();
  rec->deadline = deadline;
  rec->addWindow = static_cast<std::uint8_t>(tw_ % kMaxServersPerSet);
  return true;
}

RespSlotRef LocationCache::GetRespSlot(const LocRef& ref, AccessMode mode) const {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return RespSlotRef{};
  const Record* rec = At(ref.index);
  return mode == AccessMode::kRead ? rec->rr : rec->rw;
}

bool LocationCache::SetRespSlot(const LocRef& ref, AccessMode mode, RespSlotRef slot) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  Record* rec = At(ref.index);
  (mode == AccessMode::kRead ? rec->rr : rec->rw) = slot;
  return true;
}

bool LocationCache::ReadInfo(const LocRef& ref, ServerSet vm, ServerSet offline,
                             LocInfo* out) {
  std::lock_guard lock(mu_);
  if (!ValidLocked(ref)) return false;
  ApplyCorrectionsLocked(At(ref.index), vm, offline);
  *out = InfoOf(At(ref.index));
  return true;
}

std::function<void()> LocationCache::OnWindowTick() {
  std::lock_guard lock(mu_);
  ++tw_;
  ++stats_.windowTicks;
  const int w = static_cast<int>(tw_ % kMaxServersPerSet);
  Window& win = windows_[w];

  // Hide pass: trivial per entry — zero the key length so the hash walk
  // can no longer match it. Refreshed objects (T_a != w) are skipped; the
  // purge job will re-chain them (footnote 6 / section III-C1).
  for (std::uint32_t i = win.head; i != kNullCacheIndex; i = At(i)->windowNext) {
    Record* rec = At(i);
    if (rec->keyLen != 0 && rec->addWindow == w) HideLocked(rec);
  }
  // The window restarts: its correction memo no longer applies.
  win.memoCn = ~std::uint64_t{0};
  win.memoNc = ~std::uint64_t{0};

  if (win.head == kNullCacheIndex) return {};
  return [this, w] { PurgeWindow(w, kPurgeBatch); };
}

std::size_t LocationCache::RecycleOrRechainLocked(std::uint32_t index, int window) {
  Record* rec = At(index);
  if (rec->keyLen == 0) {
    // Hidden: physically remove. The slot is recycled, never deallocated.
    UnlinkFromHashLocked(index);
    ++rec->auth;
    FreeKeyChainLocked(rec);
    rec->rr = RespSlotRef{};
    rec->rw = RespSlotRef{};
    FreeSlotLocked(index);
    --stats_.hiddenObjects;
    ++stats_.recycled;
    return 1;
  }
  // Visible: deferred re-chain to the window of its current T_a (which
  // may be this same window for objects added after the tick, or a later
  // one for refreshed objects).
  Window& dst = windows_[rec->addWindow];
  rec->windowNext = dst.head;
  dst.head = index;
  ++dst.size;
  if (rec->addWindow != window) ++stats_.rechained;
  return 0;
}

std::size_t LocationCache::PurgeWindow(int window, std::size_t maxBatch) {
  // Detach the whole chain, then recycle/re-chain in small batches so
  // foreground look-ups interleave freely. The chain cursor is an index,
  // so arena growth between batches cannot invalidate it.
  std::uint32_t list;
  {
    std::lock_guard lock(mu_);
    list = windows_[window].head;
    windows_[window].head = kNullCacheIndex;
    windows_[window].size = 0;
  }
  std::size_t freed = 0;
  while (list != kNullCacheIndex) {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < maxBatch && list != kNullCacheIndex; ++i) {
      const std::uint32_t index = list;
      list = At(index)->windowNext;
      freed += RecycleOrRechainLocked(index, window);
    }
  }
  return freed;
}

void LocationCache::UnlinkFromHashLocked(std::uint32_t index) {
  std::uint32_t* link = &buckets_[At(index)->hash % buckets_.size()];
  while (*link != kNullCacheIndex) {
    if (*link == index) {
      *link = At(index)->hashNext;
      At(index)->hashNext = kNullCacheIndex;
      return;
    }
    link = &At(*link)->hashNext;
  }
}

LocationCache::Stats LocationCache::GetStats() const {
  std::lock_guard lock(mu_);
  Stats s = stats_;
  s.buckets = buckets_.size();
  s.allocatedObjects = slotCapacity_;
  s.freeObjects = freeCount_ + (slotCapacity_ - bumpNext_);
  s.arenaBytes = std::size_t{slotCapacity_} * kRecordBytes;
  s.bucketBytes = buckets_.capacity() * sizeof(std::uint32_t);
  s.approxBytes = s.arenaBytes + s.bucketBytes;
  s.budgetBytes = config_.cacheBytes;
  return s;
}

int LocationCache::CurrentWindow() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(tw_ % kMaxServersPerSet);
}

}  // namespace scalla::cms

#include "net/tcp_fabric.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "proto/wire.h"
#include "util/logger.h"

namespace scalla::net {
namespace {

std::uint64_t PairKey(NodeAddr from, NodeAddr to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct TcpFabric::Endpoint {
  NodeAddr addr = 0;
  MessageSink* sink = nullptr;
  sched::Executor* executor = nullptr;
  int listenFd = -1;
  std::thread acceptThread;
  std::mutex readersMu;
  std::vector<std::thread> readers;
  std::vector<int> readerFds;  // parallel to readers; -1 once closed
  std::atomic<bool> closing{false};

  // Unblocks every reader stuck in recv() so joins cannot hang.
  void ShutdownReaders() {
    std::lock_guard lock(readersMu);
    for (int& fd : readerFds) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  void JoinReaders() {
    std::lock_guard lock(readersMu);
    for (auto& t : readers) {
      if (t.joinable()) t.join();
    }
  }
};

TcpFabric::TcpFabric(std::uint16_t basePort) : basePort_(basePort) {}

TcpFabric::~TcpFabric() {
  shuttingDown_ = true;
  std::vector<std::unique_ptr<Endpoint>> eps;
  {
    std::lock_guard lock(mu_);
    for (auto& [_, ep] : endpoints_) eps.push_back(std::move(ep));
    endpoints_.clear();
    for (auto& [_, fd] : outbound_) ::close(fd);
    outbound_.clear();
  }
  for (auto& ep : eps) {
    ep->closing = true;
    ::shutdown(ep->listenFd, SHUT_RDWR);
    ::close(ep->listenFd);
    if (ep->acceptThread.joinable()) ep->acceptThread.join();
    ep->ShutdownReaders();
    ep->JoinReaders();
  }
}

bool TcpFabric::Register(NodeAddr addr, MessageSink* sink, sched::Executor* executor) {
  auto ep = std::make_unique<Endpoint>();
  ep->addr = addr;
  ep->sink = sink;
  ep->executor = executor;

  ep->listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ep->listenFd < 0) return false;
  const int one = 1;
  ::setsockopt(ep->listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<std::uint16_t>(basePort_ + addr));
  if (::bind(ep->listenFd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(ep->listenFd, 64) != 0) {
    ::close(ep->listenFd);
    return false;
  }
  Endpoint* raw = ep.get();
  ep->acceptThread = std::thread([this, raw] { AcceptLoop(raw); });
  std::lock_guard lock(mu_);
  endpoints_[addr] = std::move(ep);
  return true;
}

void TcpFabric::Unregister(NodeAddr addr) {
  std::unique_ptr<Endpoint> ep;
  {
    std::lock_guard lock(mu_);
    const auto it = endpoints_.find(addr);
    if (it == endpoints_.end()) return;
    ep = std::move(it->second);
    endpoints_.erase(it);
    for (auto it2 = outbound_.begin(); it2 != outbound_.end();) {
      if ((it2->first >> 32) == addr || (it2->first & 0xFFFFFFFFu) == addr) {
        ::close(it2->second);
        it2 = outbound_.erase(it2);
      } else {
        ++it2;
      }
    }
  }
  ep->closing = true;
  ::shutdown(ep->listenFd, SHUT_RDWR);
  ::close(ep->listenFd);
  if (ep->acceptThread.joinable()) ep->acceptThread.join();
  ep->ShutdownReaders();
  ep->JoinReaders();
}

void TcpFabric::AcceptLoop(Endpoint* ep) {
  while (!ep->closing) {
    const int fd = ::accept(ep->listenFd, nullptr, nullptr);
    if (fd < 0) break;
    std::lock_guard lock(ep->readersMu);
    if (ep->closing) {
      ::close(fd);
      break;
    }
    ep->readerFds.push_back(fd);
    ep->readers.emplace_back([this, ep, fd] { ReaderLoop(ep, fd); });
  }
}

void TcpFabric::ReaderLoop(Endpoint* ep, int fd) {
  for (;;) {
    char header[8];
    if (!ReadAll(fd, header, sizeof(header))) break;
    std::uint32_t length = 0, sender = 0;
    std::memcpy(&length, header, 4);
    std::memcpy(&sender, header + 4, 4);
    if (length == 0 || length > proto::kMaxFrameBody) break;
    std::string body(length, '\0');
    if (!ReadAll(fd, body.data(), length)) break;
    auto message = proto::Decode(body);
    if (!message.has_value()) {
      SCALLA_WARN("tcp", "endpoint %u: malformed frame from %u", ep->addr, sender);
      break;
    }
    {
      std::lock_guard lock(mu_);
      ++counters_.messagesDelivered;
      ++counters_.framesReceived;
      counters_.bytesReceived += sizeof(header) + length;
    }
    MessageSink* sink = ep->sink;
    if (ep->executor != nullptr) {
      ep->executor->Post([sink, sender, msg = std::move(*message)]() mutable {
        sink->OnMessage(sender, std::move(msg));
      });
    } else {
      sink->OnMessage(sender, std::move(*message));
    }
  }
  ::close(fd);
}

TcpFabric::Endpoint* TcpFabric::FindEndpoint(NodeAddr addr) {
  const auto it = endpoints_.find(addr);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

int TcpFabric::ConnectTo(NodeAddr from, NodeAddr to) {
  // Caller holds mu_.
  const auto it = outbound_.find(PairKey(from, to));
  if (it != outbound_.end()) return it->second;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<std::uint16_t>(basePort_ + to));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  outbound_[PairKey(from, to)] = fd;
  return fd;
}

void TcpFabric::CloseOutbound(NodeAddr from, NodeAddr to) {
  // Caller holds mu_.
  const auto it = outbound_.find(PairKey(from, to));
  if (it != outbound_.end()) {
    ::close(it->second);
    outbound_.erase(it);
  }
}

void TcpFabric::Send(NodeAddr from, NodeAddr to, proto::Message message) {
  const std::string body = proto::Encode(message);
  char header[8];
  const auto length = static_cast<std::uint32_t>(body.size());
  std::memcpy(header, &length, 4);
  std::memcpy(header + 4, &from, 4);

  MessageSink* failedSink = nullptr;
  sched::Executor* failedExec = nullptr;
  {
    std::lock_guard lock(mu_);
    ++counters_.messagesSent;
    int fd = ConnectTo(from, to);
    bool ok = fd >= 0 && WriteAll(fd, header, sizeof(header)) &&
              WriteAll(fd, body.data(), body.size());
    if (!ok && fd >= 0) {
      // Stale cached connection (peer restarted): retry once fresh.
      CloseOutbound(from, to);
      ++counters_.reconnects;
      fd = ConnectTo(from, to);
      ok = fd >= 0 && WriteAll(fd, header, sizeof(header)) &&
           WriteAll(fd, body.data(), body.size());
    }
    if (ok) {
      ++counters_.framesSent;
      counters_.bytesSent += sizeof(header) + body.size();
    }
    if (!ok) {
      if (fd >= 0) CloseOutbound(from, to);
      ++counters_.messagesDropped;
      Endpoint* sender = FindEndpoint(from);
      if (sender != nullptr) {
        failedSink = sender->sink;
        failedExec = sender->executor;
      }
    }
  }
  if (failedSink != nullptr) {
    if (failedExec != nullptr) {
      failedExec->Post([failedSink, to] { failedSink->OnPeerDown(to); });
    } else {
      failedSink->OnPeerDown(to);
    }
  }
}

net::Fabric::Counters TcpFabric::GetCounters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

}  // namespace scalla::net

#include "net/tcp_fabric.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>

#include "proto/wire.h"
#include "util/logger.h"

namespace scalla::net {
namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 senderAddr

// Frames batched into one sendmsg; a full batch just means another pass.
constexpr std::size_t kMaxWritevBatch = 64;

// Receive sizing: read in 64 KiB slices, hand the loop back to other
// connections after ~1 MiB (level-triggered epoll re-reports leftovers),
// and give outsized rx buffers back to the allocator once drained.
constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kMaxReadPerDispatch = 1024 * 1024;
constexpr std::size_t kRxShrinkCapacity = 1024 * 1024;

std::uint64_t PairKey(NodeAddr from, NodeAddr to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

std::uint64_t LinkKey(NodeAddr a, NodeAddr b) {
  return a < b ? PairKey(a, b) : PairKey(b, a);
}

}  // namespace

struct TcpFabric::Endpoint {
  NodeAddr addr = 0;
  MessageSink* sink = nullptr;
  sched::Executor* executor = nullptr;

  int listenFd = -1;
  std::uint64_t listenerId = 0;
  Reactor::Loop* listenerLoop = nullptr;
  std::shared_ptr<Listener> listener;

  // Live inbound connections; an InConn removes itself the moment its
  // socket dies, so the list never accumulates dead entries.
  mutable std::mutex inMu;
  std::vector<std::shared_ptr<InConn>> inConns;
};

// ---------------------------------------------------------------------------
// Listener: accepts on a non-blocking listen socket and spreads the
// accepted connections round-robin over the reactor loops.

class TcpFabric::Listener final : public EventHandler {
 public:
  Listener(TcpFabric* fabric, Endpoint* ep) : fabric_(fabric), ep_(ep) {}

  void OnEvents(std::uint32_t /*events*/) override {
    for (;;) {
      const int fd =
          ::accept4(ep_->listenFd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN, or the listener is being torn down
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fabric_->AdoptInbound(ep_, fd);
    }
  }

 private:
  TcpFabric* fabric_;
  Endpoint* ep_;
};

// ---------------------------------------------------------------------------
// InConn: one accepted socket. Reads are readiness-driven into a reusable
// rx buffer; frames are parsed incrementally (a frame may arrive across
// any number of reads) and delivered to the endpoint's sink.

class TcpFabric::InConn final : public EventHandler,
                                public std::enable_shared_from_this<InConn> {
 public:
  InConn(TcpFabric* fabric, Endpoint* ep, int fd, Reactor::Loop* loop)
      : fabric_(fabric), ep_(ep), fd_(fd), loop_(loop) {}

  Reactor::Loop* loop() const { return loop_; }

  // Loop thread: registers the socket. A CloseOnLoop posted behind us (the
  // endpoint unregistering) still finds id_ set, so teardown stays exact.
  void Attach() {
    if (closed_) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = -1;
      return;
    }
    id_ = loop_->Add(fd_, EPOLLIN, shared_from_this());
  }

  // Loop thread.
  void CloseOnLoop() {
    if (closed_) return;
    closed_ = true;
    if (id_ != 0) {
      loop_->Del(id_);
      id_ = 0;
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    fabric_->RemoveInbound(ep_, this);
  }

  void OnEvents(std::uint32_t /*events*/) override {
    if (closed_) return;
    std::size_t readThisPass = 0;
    for (;;) {
      const std::size_t old = rx_.size();
      rx_.resize(old + kReadChunk);
      const ssize_t n = ::recv(fd_, rx_.data() + old, kReadChunk, 0);
      rx_.resize(old + (n > 0 ? static_cast<std::size_t>(n) : 0));
      if (n == 0) {  // EOF
        CloseOnLoop();
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        CloseOnLoop();
        return;
      }
      readThisPass += static_cast<std::size_t>(n);
      if (!ParseFrames()) {  // malformed input: drop the connection
        CloseOnLoop();
        return;
      }
      if (readThisPass >= kMaxReadPerDispatch) break;
    }
    Compact();
  }

 private:
  // Parses every complete frame currently buffered. Returns false on a
  // frame that can never become valid (bad length, undecodable body).
  bool ParseFrames() {
    for (;;) {
      const std::size_t avail = rx_.size() - pos_;
      if (avail < kFrameHeader) return true;
      std::uint32_t length = 0;
      std::uint32_t sender = 0;
      std::memcpy(&length, rx_.data() + pos_, 4);
      std::memcpy(&sender, rx_.data() + pos_ + 4, 4);
      if (length == 0 || length > proto::kMaxFrameBody) {
        SCALLA_WARN("tcp", "endpoint %u: bad frame length %u from %u", ep_->addr,
                    length, sender);
        return false;
      }
      if (avail < kFrameHeader + length) return true;
      const std::string_view body(rx_.data() + pos_ + kFrameHeader, length);
      auto message = proto::Decode(body);
      if (!message.has_value()) {
        SCALLA_WARN("tcp", "endpoint %u: malformed frame from %u", ep_->addr,
                    sender);
        return false;
      }
      pos_ += kFrameHeader + length;
      fabric_->counters_.framesReceived.fetch_add(1, std::memory_order_relaxed);
      fabric_->counters_.bytesReceived.fetch_add(kFrameHeader + length,
                                                 std::memory_order_relaxed);
      fabric_->AddPeerReceived(sender, 1, kFrameHeader + length);
      // A downed receiver drops inbound traffic too; a wedged end (either
      // side) silently loses it — the connection stays up.
      if (!fabric_->Reachable(sender, ep_->addr) ||
          fabric_->EitherWedged(sender, ep_->addr)) {
        fabric_->counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
        fabric_->BumpPeer(sender, &Counters::messagesDropped);
        continue;
      }
      fabric_->counters_.messagesDelivered.fetch_add(1, std::memory_order_relaxed);
      fabric_->BumpPeer(sender, &Counters::messagesDelivered);
      MessageSink* sink = ep_->sink;
      if (ep_->executor != nullptr) {
        ep_->executor->Post([sink, sender, msg = std::move(*message)]() mutable {
          sink->OnMessage(sender, std::move(msg));
        });
      } else {
        sink->OnMessage(sender, std::move(*message));
      }
    }
  }

  void Compact() {
    if (pos_ > 0) {
      if (pos_ == rx_.size()) {
        rx_.clear();
      } else {
        rx_.erase(0, pos_);
      }
      pos_ = 0;
    }
    if (rx_.empty() && rx_.capacity() > kRxShrinkCapacity) {
      rx_ = std::string();  // give an outsized buffer back to the allocator
    }
  }

  TcpFabric* fabric_;
  Endpoint* ep_;
  int fd_;
  Reactor::Loop* loop_;
  std::uint64_t id_ = 0;
  bool closed_ = false;
  std::string rx_;        // unparsed bytes live in [pos_, rx_.size())
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// OutConn: the outbound half of one (from, to) pair. Any thread enqueues
// framed buffers under qmu_ and "kicks" the owning loop at most once per
// quiet period; everything else (connect, writev draining, deadlines,
// delay pacing, idle reaping) is loop-thread-only state.

class TcpFabric::OutConn final : public EventHandler,
                                 public std::enable_shared_from_this<OutConn> {
 public:
  OutConn(TcpFabric* fabric, NodeAddr from, NodeAddr to, Reactor::Loop* loop)
      : fabric_(fabric), from_(from), to_(to), loop_(loop) {}

  Reactor::Loop* loop() const { return loop_; }

  // Any thread. False means the bounded queue is full (frame not taken).
  bool Enqueue(std::string frame) {
    bool kick = false;
    {
      std::lock_guard lock(qmu_);
      if (queue_.size() >= fabric_->options_.maxQueuedMessages) {
        fabric_->pool_.Release(std::move(frame));
        return false;
      }
      queue_.push_back(std::move(frame));
      if (!kicked_) {
        kicked_ = true;
        kick = true;
      }
    }
    if (kick) {
      loop_->Post([self = shared_from_this()] { self->OnKick(); });
    }
    return true;
  }

  // Any thread: the peer's endpoint went away locally (Unregister). Treat
  // the cached socket like a peer restart: quietly drop it; the next frame
  // reconnects (counting one reconnect) and only a refused reconnect
  // escalates to OnPeerDown.
  void PostDetachStale() {
    loop_->Post([self = shared_from_this()] { self->DetachStale(); });
  }

  // Loop thread (via RunSync): terminal teardown, no signalling.
  void StopOnLoop() {
    stopped_ = true;
    CloseFd();
    std::lock_guard lock(qmu_);
    for (auto& f : queue_) fabric_->pool_.Release(std::move(f));
    queue_.clear();
  }

  void OnEvents(std::uint32_t events) override {
    if (stopped_) return;
    if (state_ == State::kConnecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        err = errno != 0 ? errno : EIO;
      }
      if (err == 0 && (events & (EPOLLERR | EPOLLHUP)) != 0) err = ECONNREFUSED;
      if (err != 0) {
        CloseFd();
        FailAll();
        return;
      }
      ++connectGen_;  // cancels the pending connect deadline
      Established();
      return;
    }
    if (state_ != State::kConnected) return;
    if ((events & EPOLLIN) != 0) {
      // Peers never send application data back on an outbound socket;
      // readable here means EOF or reset (or stray bytes we discard).
      char buf[4096];
      for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        HandleBroken();
        return;
      }
    }
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      HandleBroken();
      return;
    }
    if ((events & EPOLLOUT) != 0) DrainWrites();
  }

 private:
  enum class State { kIdle, kConnecting, kConnected };

  void OnKick() {
    {
      std::lock_guard lock(qmu_);
      kicked_ = false;
    }
    Pump();
  }

  void Pump() {
    if (stopped_) return;
    switch (state_) {
      case State::kIdle:
        MaybeConnect();
        break;
      case State::kConnecting:
        break;  // the pending frames drain once the connect resolves
      case State::kConnected:
        DrainWrites();
        break;
    }
  }

  void MaybeConnect() {
    {
      std::lock_guard lock(qmu_);
      if (queue_.empty()) return;
    }
    if (staleClosed_) {
      // Replacing a cached connection that had worked: that is a
      // reconnect, and it is transparent unless the new connect fails.
      staleClosed_ = false;
      fabric_->counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
      fabric_->BumpPeer(to_, &Counters::reconnects);
    }
    StartConnect();
  }

  void StartConnect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      FailAll();
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Without SO_REUSEADDR here, this socket's TIME_WAIT remnant blocks any
    // later listener bind that lands on the same (ephemeral) local port.
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (fabric_->options_.sendBufferBytes > 0) {
      const int size = static_cast<int>(fabric_->options_.sendBufferBytes);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &size, sizeof(size));
    }
    fd_ = fd;
    frontOffset_ = 0;
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port =
        htons(static_cast<std::uint16_t>(fabric_->basePort_ + to_));
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    if (rc == 0) {
      id_ = loop_->Add(fd_, EPOLLIN, shared_from_this());
      Established();
      return;
    }
    if (errno != EINPROGRESS) {
      CloseFd();
      FailAll();
      return;
    }
    state_ = State::kConnecting;
    id_ = loop_->Add(fd_, EPOLLOUT, shared_from_this());
    const std::uint64_t gen = ++connectGen_;
    loop_->ScheduleAt(
        Reactor::Loop::Now() + fabric_->options_.connectTimeout,
        [self = shared_from_this(), gen] { self->OnConnectDeadline(gen); });
  }

  void OnConnectDeadline(std::uint64_t gen) {
    if (stopped_ || gen != connectGen_ || state_ != State::kConnecting) return;
    CloseFd();
    FailAll();
  }

  void Established() {
    state_ = State::kConnected;
    fabric_->activeOutbound_.fetch_add(1, std::memory_order_relaxed);
    frameDoneSinceConnect_ = false;
    frontOffset_ = 0;
    wantWrite_ = false;
    deadlineArmed_ = false;
    lastActivity_ = Reactor::Loop::Now();
    loop_->Mod(id_, EPOLLIN);
    if (fabric_->options_.idleTimeout > std::chrono::milliseconds::zero()) {
      ScheduleIdleCheck();
    }
    DrainWrites();
  }

  void DrainWrites() {
    for (;;) {
      if (stopped_ || state_ != State::kConnected) return;
      // Faults injected after enqueue: those frames are lost in flight,
      // silently (Send-time signalling already happened). If half a frame
      // already hit the wire, drop the socket too so the peer's framing
      // never desynchronizes; the next send transparently reconnects.
      if (!fabric_->Reachable(from_, to_) || fabric_->DropInjected(from_, to_) ||
          fabric_->EitherWedged(from_, to_)) {
        std::size_t n = 0;
        {
          std::lock_guard lock(qmu_);
          n = queue_.size();
          for (auto& f : queue_) fabric_->pool_.Release(std::move(f));
          queue_.clear();
        }
        if (n > 0) {
          fabric_->counters_.messagesDropped.fetch_add(n, std::memory_order_relaxed);
          fabric_->BumpPeer(to_, &Counters::messagesDropped, n);
        }
        if (frontOffset_ > 0) {
          CloseFd();
          staleClosed_ = true;
          frontOffset_ = 0;
        } else {
          SetWantWrite(false);
        }
        return;
      }
      const Duration delay = fabric_->DelayInjected(from_, to_);
      const TimePoint now = Reactor::Loop::Now();
      if (delay > Duration::zero()) {
        // Per-pair pacing: each frame waits out the injected delay before
        // leaving, exactly one frame per period, stalling only this pair.
        if (!pacingActive_) {
          pacingActive_ = true;
          nextEligible_ = now + delay;
        }
        if (now < nextEligible_) {
          bool pending;
          {
            std::lock_guard lock(qmu_);
            pending = !queue_.empty();
          }
          if (pending) ScheduleDelayPump(nextEligible_);
          return;
        }
      } else {
        pacingActive_ = false;
      }
      // Build a writev batch from the queue front. The references stay
      // valid while unlocked: only this thread pops, and deque push_back
      // does not invalidate references to existing elements.
      iovec iov[kMaxWritevBatch];
      std::size_t nIov = 0;
      {
        std::lock_guard lock(qmu_);
        if (queue_.empty()) {
          SetWantWrite(false);
          return;
        }
        const std::size_t limit =
            delay > Duration::zero() ? 1 : std::min(queue_.size(), kMaxWritevBatch);
        for (std::size_t i = 0; i < limit; ++i) {
          const std::string& f = queue_[i];
          const std::size_t off = i == 0 ? frontOffset_ : 0;
          iov[nIov].iov_base = const_cast<char*>(f.data()) + off;
          iov[nIov].iov_len = f.size() - off;
          ++nIov;
        }
      }
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = nIov;
      const ssize_t n = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          SetWantWrite(true);
          ArmWriteDeadline();
          return;
        }
        if (errno == EINTR) continue;
        HandleBroken();
        return;
      }
      // Progress: consume fully-written frames, keep a partial offset.
      deadlineArmed_ = false;
      lastActivity_ = now;
      fabric_->counters_.bytesSent.fetch_add(static_cast<std::uint64_t>(n),
                                             std::memory_order_relaxed);
      std::size_t consumed = static_cast<std::size_t>(n);
      std::uint64_t completed = 0;
      {
        std::lock_guard lock(qmu_);
        while (consumed > 0 && !queue_.empty()) {
          std::string& f = queue_.front();
          const std::size_t remain = f.size() - frontOffset_;
          if (consumed >= remain) {
            consumed -= remain;
            frontOffset_ = 0;
            fabric_->pool_.Release(std::move(f));
            queue_.pop_front();
            ++completed;
          } else {
            frontOffset_ += consumed;
            consumed = 0;
          }
        }
      }
      fabric_->AddPeerSent(to_, completed, static_cast<std::uint64_t>(n));
      if (completed > 0) {
        frameDoneSinceConnect_ = true;
        fabric_->counters_.framesSent.fetch_add(completed, std::memory_order_relaxed);
        if (delay > Duration::zero()) nextEligible_ = now + delay;
      }
    }
  }

  void ScheduleDelayPump(TimePoint when) {
    if (delayPumpArmed_) return;
    delayPumpArmed_ = true;
    loop_->ScheduleAt(when, [self = shared_from_this()] {
      self->delayPumpArmed_ = false;
      self->Pump();
    });
  }

  void ArmWriteDeadline() {
    if (deadlineArmed_) return;
    deadlineArmed_ = true;
    const std::uint64_t gen = ++deadlineGen_;
    loop_->ScheduleAt(
        Reactor::Loop::Now() + fabric_->options_.writeTimeout,
        [self = shared_from_this(), gen] { self->OnWriteDeadline(gen); });
  }

  void OnWriteDeadline(std::uint64_t gen) {
    if (stopped_ || gen != deadlineGen_ || !deadlineArmed_ ||
        state_ != State::kConnected) {
      return;
    }
    // No byte accepted for a whole writeTimeout: the peer stopped draining.
    deadlineArmed_ = false;
    HandleBroken();
  }

  void ScheduleIdleCheck() {
    const std::uint64_t gen = ++idleGen_;
    loop_->ScheduleAt(
        lastActivity_ + fabric_->options_.idleTimeout,
        [self = shared_from_this(), gen] { self->OnIdleCheck(gen); });
  }

  void OnIdleCheck(std::uint64_t gen) {
    if (stopped_ || gen != idleGen_ || state_ != State::kConnected) return;
    bool empty;
    {
      std::lock_guard lock(qmu_);
      empty = queue_.empty();
    }
    const TimePoint now = Reactor::Loop::Now();
    if (empty && now - lastActivity_ >= fabric_->options_.idleTimeout) {
      // Quietly close: no OnPeerDown, no reconnect accounting — the next
      // send re-establishes transparently.
      CloseFd();
      staleClosed_ = false;
      fabric_->counters_.idleReaps.fetch_add(1, std::memory_order_relaxed);
      fabric_->BumpPeer(to_, &Counters::idleReaps);
      return;
    }
    TimePoint next = lastActivity_ + fabric_->options_.idleTimeout;
    if (next <= now) next = now + fabric_->options_.idleTimeout;
    loop_->ScheduleAt(next,
                      [self = shared_from_this(), gen] { self->OnIdleCheck(gen); });
  }

  // The connection broke (EOF, reset, write error, stalled write). If it
  // completed at least one frame since it connected it was a working,
  // cached connection that went stale (peer restart): replace it
  // transparently. Otherwise it never worked: fail the backlog and tell
  // the sender its peer is down.
  void HandleBroken() {
    const bool progressed = frameDoneSinceConnect_;
    CloseFd();
    frontOffset_ = 0;
    deadlineArmed_ = false;
    if (progressed) {
      staleClosed_ = true;
      MaybeConnect();
    } else {
      FailAll();
    }
  }

  // Drop the whole backlog (delivery is per-pair FIFO, so later frames
  // cannot jump a failed one) and signal the sending endpoint.
  void FailAll() {
    staleClosed_ = false;
    frontOffset_ = 0;
    std::size_t n = 0;
    {
      std::lock_guard lock(qmu_);
      n = queue_.size();
      for (auto& f : queue_) fabric_->pool_.Release(std::move(f));
      queue_.clear();
    }
    if (n > 0) {
      fabric_->counters_.messagesDropped.fetch_add(n, std::memory_order_relaxed);
      fabric_->BumpPeer(to_, &Counters::messagesDropped, n);
    }
    fabric_->NotifyPeerDown(from_, to_);
  }

  void DetachStale() {
    if (stopped_) return;
    if (state_ != State::kIdle) CloseFd();
    frontOffset_ = 0;
    staleClosed_ = true;
    Pump();  // queued frames head for the (possibly restarted) listener
  }

  void CloseFd() {
    if (state_ == State::kConnected) {
      fabric_->activeOutbound_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (id_ != 0) {
      loop_->Del(id_);
      id_ = 0;
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    state_ = State::kIdle;
    wantWrite_ = false;
  }

  void SetWantWrite(bool want) {
    if (want == wantWrite_ || id_ == 0) return;
    wantWrite_ = want;
    std::uint32_t events = EPOLLIN;
    if (want) events |= EPOLLOUT;
    loop_->Mod(id_, events);
  }

  TcpFabric* fabric_;
  const NodeAddr from_;
  const NodeAddr to_;
  Reactor::Loop* loop_;

  // Shared with sender threads.
  std::mutex qmu_;
  std::deque<std::string> queue_;  // encoded frames (header + body)
  bool kicked_ = false;  // a look at the queue is already scheduled

  // Loop-thread-only.
  State state_ = State::kIdle;
  int fd_ = -1;
  std::uint64_t id_ = 0;
  bool stopped_ = false;
  bool wantWrite_ = false;
  bool staleClosed_ = false;          // last socket was a working one
  bool frameDoneSinceConnect_ = false;
  std::size_t frontOffset_ = 0;       // bytes of queue_.front() already sent
  bool deadlineArmed_ = false;
  std::uint64_t deadlineGen_ = 0;
  std::uint64_t connectGen_ = 0;
  std::uint64_t idleGen_ = 0;
  bool pacingActive_ = false;
  bool delayPumpArmed_ = false;
  TimePoint nextEligible_{};
  TimePoint lastActivity_{};
};

// ---------------------------------------------------------------------------
// TcpFabric proper.

TcpFabric::TcpFabric(std::uint16_t basePort, FabricOptions options)
    : basePort_(basePort), options_(options), reactor_(options.loopThreads) {}

TcpFabric::~TcpFabric() {
  shuttingDown_ = true;
  // Stop outbound connections first so none can fire OnPeerDown into an
  // endpoint that is being torn down.
  std::map<std::uint64_t, std::shared_ptr<OutConn>> conns;
  {
    std::lock_guard lock(connsMu_);
    conns.swap(conns_);
  }
  for (auto& [_, conn] : conns) {
    OutConn* raw = conn.get();
    raw->loop()->RunSync([raw] { raw->StopOnLoop(); });
  }

  std::vector<std::unique_ptr<Endpoint>> eps;
  {
    std::lock_guard lock(epMu_);
    for (auto& [_, ep] : endpoints_) eps.push_back(std::move(ep));
    endpoints_.clear();
  }
  for (auto& ep : eps) {
    Endpoint* raw = ep.get();
    raw->listenerLoop->RunSync([raw] {
      if (raw->listenerId != 0) raw->listenerLoop->Del(raw->listenerId);
      ::close(raw->listenFd);
    });
    std::vector<std::shared_ptr<InConn>> ins;
    {
      std::lock_guard lock(raw->inMu);
      ins = raw->inConns;
    }
    for (int i = 0; i < reactor_.size(); ++i) {
      Reactor::Loop& loop = reactor_.At(i);
      loop.RunSync([&loop, &ins] {
        for (auto& c : ins) {
          if (c->loop() == &loop) c->CloseOnLoop();
        }
      });
    }
  }
  // reactor_'s destructor joins the loops after this body.
}

bool TcpFabric::Register(NodeAddr addr, MessageSink* sink,
                         sched::Executor* executor) {
  auto ep = std::make_unique<Endpoint>();
  ep->addr = addr;
  ep->sink = sink;
  ep->executor = executor;

  ep->listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ep->listenFd < 0) return false;
  const int one = 1;
  ::setsockopt(ep->listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<std::uint16_t>(basePort_ + addr));
  if (::bind(ep->listenFd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(ep->listenFd, 128) != 0) {
    ::close(ep->listenFd);
    return false;
  }
  ep->listener = std::make_shared<Listener>(this, ep.get());
  ep->listenerLoop = &reactor_.LoopFor(addr);
  Endpoint* raw = ep.get();
  {
    std::lock_guard lock(epMu_);
    endpoints_[addr] = std::move(ep);
  }
  raw->listenerLoop->RunSync([raw] {
    raw->listenerId = raw->listenerLoop->Add(raw->listenFd, EPOLLIN, raw->listener);
  });
  return true;
}

void TcpFabric::Unregister(NodeAddr addr) {
  // 1. Stop this endpoint's own outbound connections; quietly stale-close
  //    everyone else's connection TO it so their next frame reconnects
  //    (and fails fast against the dead listener, firing OnPeerDown).
  std::vector<std::shared_ptr<OutConn>> mine;
  std::vector<std::shared_ptr<OutConn>> toward;
  {
    std::lock_guard lock(connsMu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((it->first >> 32) == addr) {
        mine.push_back(it->second);
        it = conns_.erase(it);
      } else {
        if ((it->first & 0xFFFFFFFFu) == addr) toward.push_back(it->second);
        ++it;
      }
    }
  }
  for (auto& conn : mine) {
    OutConn* raw = conn.get();
    raw->loop()->RunSync([raw] { raw->StopOnLoop(); });
  }
  for (auto& conn : toward) conn->PostDetachStale();

  std::unique_ptr<Endpoint> ep;
  {
    std::lock_guard lock(epMu_);
    const auto it = endpoints_.find(addr);
    if (it == endpoints_.end()) return;
    ep = std::move(it->second);
    endpoints_.erase(it);
  }
  // 2. Close the listener on its loop (no further accepts, so the inbound
  //    snapshot below is complete — Attach posts precede our close posts
  //    in each loop's FIFO).
  Endpoint* raw = ep.get();
  raw->listenerLoop->RunSync([raw] {
    if (raw->listenerId != 0) raw->listenerLoop->Del(raw->listenerId);
    ::close(raw->listenFd);
    raw->listenerId = 0;
  });
  // 3. Close every inbound connection on its owning loop. Loops run tasks
  //    and dispatches serially, so once each loop's RunSync returns, no
  //    delivery into this endpoint's sink/executor is running or can
  //    start — the guarantee Unregister's callers rely on.
  std::vector<std::shared_ptr<InConn>> ins;
  {
    std::lock_guard lock(raw->inMu);
    ins = raw->inConns;
  }
  for (int i = 0; i < reactor_.size(); ++i) {
    Reactor::Loop& loop = reactor_.At(i);
    loop.RunSync([&loop, &ins] {
      for (auto& c : ins) {
        if (c->loop() == &loop) c->CloseOnLoop();
      }
    });
  }
}

std::size_t TcpFabric::ReaderCount(NodeAddr addr) const {
  std::lock_guard lock(epMu_);
  const auto it = endpoints_.find(addr);
  if (it == endpoints_.end()) return 0;
  std::lock_guard rlock(it->second->inMu);
  return it->second->inConns.size();
}

std::size_t TcpFabric::ActiveOutboundConnections() const {
  return activeOutbound_.load(std::memory_order_relaxed);
}

void TcpFabric::AdoptInbound(Endpoint* ep, int fd) {
  Reactor::Loop& loop = reactor_.At(static_cast<int>(
      nextLoop_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<std::uint64_t>(reactor_.size())));
  auto conn = std::make_shared<InConn>(this, ep, fd, &loop);
  {
    std::lock_guard lock(ep->inMu);
    ep->inConns.push_back(conn);
  }
  loop.Post([conn] { conn->Attach(); });
}

void TcpFabric::RemoveInbound(Endpoint* ep, InConn* conn) {
  std::lock_guard lock(ep->inMu);
  for (auto it = ep->inConns.begin(); it != ep->inConns.end(); ++it) {
    if (it->get() == conn) {
      ep->inConns.erase(it);
      return;
    }
  }
}

// ---- fault injection ----

void TcpFabric::SetDown(NodeAddr addr, bool down) {
  std::lock_guard lock(faultMu_);
  if (down) {
    down_[addr] = true;
  } else {
    down_.erase(addr);
  }
}

void TcpFabric::SetLinkCut(NodeAddr a, NodeAddr b, bool cut) {
  std::lock_guard lock(faultMu_);
  if (cut) {
    cutLinks_[LinkKey(a, b)] = true;
  } else {
    cutLinks_.erase(LinkKey(a, b));
  }
}

void TcpFabric::SetDrop(NodeAddr from, NodeAddr to, bool drop) {
  std::lock_guard lock(faultMu_);
  if (drop) {
    drops_[PairKey(from, to)] = true;
  } else {
    drops_.erase(PairKey(from, to));
  }
}

void TcpFabric::SetDelay(NodeAddr from, NodeAddr to, Duration delay) {
  std::lock_guard lock(faultMu_);
  if (delay > Duration::zero()) {
    delays_[PairKey(from, to)] = delay;
  } else {
    delays_.erase(PairKey(from, to));
  }
}

void TcpFabric::SetWedged(NodeAddr addr, bool wedged) {
  std::lock_guard lock(faultMu_);
  if (wedged) {
    wedged_[addr] = true;
  } else {
    wedged_.erase(addr);
  }
}

bool TcpFabric::Reachable(NodeAddr from, NodeAddr to) const {
  std::lock_guard lock(faultMu_);
  if (down_.count(from) != 0 || down_.count(to) != 0) return false;
  return cutLinks_.count(LinkKey(from, to)) == 0;
}

bool TcpFabric::DropInjected(NodeAddr from, NodeAddr to) const {
  std::lock_guard lock(faultMu_);
  return drops_.count(PairKey(from, to)) != 0;
}

Duration TcpFabric::DelayInjected(NodeAddr from, NodeAddr to) const {
  std::lock_guard lock(faultMu_);
  const auto it = delays_.find(PairKey(from, to));
  return it == delays_.end() ? Duration::zero() : it->second;
}

bool TcpFabric::WedgeInjected(NodeAddr addr) const {
  std::lock_guard lock(faultMu_);
  return wedged_.count(addr) != 0;
}

bool TcpFabric::EitherWedged(NodeAddr a, NodeAddr b) const {
  std::lock_guard lock(faultMu_);
  return wedged_.count(a) != 0 || wedged_.count(b) != 0;
}

// ---- send path ----

std::shared_ptr<TcpFabric::OutConn> TcpFabric::GetConnection(NodeAddr from,
                                                             NodeAddr to) {
  std::lock_guard lock(connsMu_);
  if (shuttingDown_) return nullptr;
  auto& slot = conns_[PairKey(from, to)];
  if (slot == nullptr) {
    slot = std::make_shared<OutConn>(this, from, to,
                                     &reactor_.LoopFor(PairKey(from, to)));
  }
  return slot;
}

void TcpFabric::Send(NodeAddr from, NodeAddr to, proto::Message message) {
  counters_.messagesSent.fetch_add(1, std::memory_order_relaxed);
  BumpPeer(to, &Counters::messagesSent);
  if (EitherWedged(from, to)) {
    // A wedged end silently loses traffic in both directions; crucially
    // NO OnPeerDown — the connection still looks "up", so only a missing
    // heartbeat can expose the failure.
    counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
    BumpPeer(to, &Counters::messagesDropped);
    return;
  }
  if (!Reachable(from, to)) {
    // Mirror SimFabric: a downed/cut destination drops the message and the
    // sender learns its peer is gone (unless the sender itself is down).
    counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
    BumpPeer(to, &Counters::messagesDropped);
    bool senderDown;
    {
      std::lock_guard lock(faultMu_);
      senderDown = down_.count(from) != 0;
    }
    if (!senderDown) NotifyPeerDown(from, to);
    return;
  }
  if (DropInjected(from, to)) {
    // Lossy link: the frame vanishes silently.
    counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
    BumpPeer(to, &Counters::messagesDropped);
    return;
  }

  // Encode into a pooled buffer, header first, so the hot path reuses
  // capacity instead of allocating per message.
  std::string frame = pool_.Acquire();
  frame.resize(kFrameHeader);
  proto::EncodeAppend(message, frame);
  const auto length = static_cast<std::uint32_t>(frame.size() - kFrameHeader);
  std::memcpy(frame.data(), &length, 4);
  std::memcpy(frame.data() + 4, &from, 4);

  auto conn = GetConnection(from, to);
  if (conn == nullptr) {  // fabric shutting down
    counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
    BumpPeer(to, &Counters::messagesDropped);
    return;
  }
  if (!conn->Enqueue(std::move(frame))) {
    counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
    counters_.queueOverflows.fetch_add(1, std::memory_order_relaxed);
    BumpPeer(to, &Counters::messagesDropped);
    BumpPeer(to, &Counters::queueOverflows);
    NotifyPeerDown(from, to);
  }
}

void TcpFabric::NotifyPeerDown(NodeAddr from, NodeAddr to) {
  MessageSink* sink = nullptr;
  sched::Executor* exec = nullptr;
  {
    std::lock_guard lock(epMu_);
    const auto it = endpoints_.find(from);
    if (it == endpoints_.end()) return;
    sink = it->second->sink;
    exec = it->second->executor;
  }
  if (exec != nullptr) {
    exec->Post([sink, to] { sink->OnPeerDown(to); });
  } else {
    sink->OnPeerDown(to);
  }
}

// ---- counters ----

void TcpFabric::AddPeerSent(NodeAddr peer, std::uint64_t frames,
                            std::uint64_t bytes) {
  std::lock_guard lock(perPeerMu_);
  Counters& c = perPeer_[peer];
  c.framesSent += frames;
  c.bytesSent += bytes;
}

void TcpFabric::AddPeerReceived(NodeAddr peer, std::uint64_t frames,
                                std::uint64_t bytes) {
  std::lock_guard lock(perPeerMu_);
  Counters& c = perPeer_[peer];
  c.framesReceived += frames;
  c.bytesReceived += bytes;
}

void TcpFabric::BumpPeer(NodeAddr peer, std::uint64_t Counters::*field,
                         std::uint64_t delta) {
  std::lock_guard lock(perPeerMu_);
  perPeer_[peer].*field += delta;
}

net::Fabric::Counters TcpFabric::GetCounters() const {
  Counters out;
  out.messagesSent = counters_.messagesSent.load(std::memory_order_relaxed);
  out.messagesDelivered = counters_.messagesDelivered.load(std::memory_order_relaxed);
  out.messagesDropped = counters_.messagesDropped.load(std::memory_order_relaxed);
  out.framesSent = counters_.framesSent.load(std::memory_order_relaxed);
  out.framesReceived = counters_.framesReceived.load(std::memory_order_relaxed);
  out.bytesSent = counters_.bytesSent.load(std::memory_order_relaxed);
  out.bytesReceived = counters_.bytesReceived.load(std::memory_order_relaxed);
  out.reconnects = counters_.reconnects.load(std::memory_order_relaxed);
  out.idleReaps = counters_.idleReaps.load(std::memory_order_relaxed);
  out.queueOverflows = counters_.queueOverflows.load(std::memory_order_relaxed);
  return out;
}

net::Fabric::Counters TcpFabric::PerPeerCounters(NodeAddr peer) const {
  std::lock_guard lock(perPeerMu_);
  const auto it = perPeer_.find(peer);
  return it == perPeer_.end() ? Counters{} : it->second;
}

}  // namespace scalla::net

#include "net/tcp_fabric.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "proto/wire.h"
#include "util/logger.h"

namespace scalla::net {
namespace {

std::uint64_t PairKey(NodeAddr from, NodeAddr to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

std::uint64_t LinkKey(NodeAddr a, NodeAddr b) {
  return a < b ? PairKey(a, b) : PairKey(b, a);
}

// Bounded by SO_SNDTIMEO on the socket: a peer that stops draining makes
// send() return 0/-1 with EAGAIN once the deadline passes.
bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct TcpFabric::Endpoint {
  NodeAddr addr = 0;
  MessageSink* sink = nullptr;
  sched::Executor* executor = nullptr;
  int listenFd = -1;
  std::thread acceptThread;

  struct Reader {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };
  mutable std::mutex readersMu;
  std::list<Reader> readers;

  // Joins and erases readers whose loop has exited — called from the
  // accept loop so a long-lived daemon serving short-lived clients does
  // not accumulate exited joinable threads and stale fd slots.
  void ReapFinishedReaders() {
    std::lock_guard lock(readersMu);
    for (auto it = readers.begin(); it != readers.end();) {
      if (it->done.load(std::memory_order_acquire)) {
        if (it->thread.joinable()) it->thread.join();
        it = readers.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Unblocks every reader stuck in recv() so joins cannot hang.
  void ShutdownReaders() {
    std::lock_guard lock(readersMu);
    for (auto& r : readers) {
      if (!r.done.load(std::memory_order_acquire)) ::shutdown(r.fd, SHUT_RDWR);
    }
  }
  void JoinReaders() {
    std::lock_guard lock(readersMu);
    for (auto& r : readers) {
      if (r.thread.joinable()) r.thread.join();
    }
    readers.clear();
  }
};

// One outbound connection per (from, to) pair: a bounded frame queue
// drained by a dedicated writer thread. All socket I/O happens on the
// writer; other threads only enqueue, signal stop, or shutdown() the fd
// to interrupt a blocked syscall (never close it — the writer owns the
// close, so the fd cannot be recycled under a concurrent user).
struct TcpFabric::Connection {
  NodeAddr from = 0;
  NodeAddr to = 0;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> queue;  // encoded frames (header + body)
  bool stop = false;
  bool connected = false;  // fd is a live, connected socket
  int fd = -1;
  std::thread writer;
};

TcpFabric::TcpFabric(std::uint16_t basePort, TcpFabricConfig config)
    : basePort_(basePort), config_(config) {}

TcpFabric::~TcpFabric() {
  shuttingDown_ = true;
  // Stop writers first so no connection can fire OnPeerDown into an
  // endpoint that is being torn down.
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns;
  {
    std::lock_guard lock(connsMu_);
    conns.swap(conns_);
  }
  for (auto& [_, conn] : conns) StopConnection(conn.get());

  std::vector<std::unique_ptr<Endpoint>> eps;
  {
    std::lock_guard lock(epMu_);
    for (auto& [_, ep] : endpoints_) eps.push_back(std::move(ep));
    endpoints_.clear();
  }
  for (auto& ep : eps) {
    ::shutdown(ep->listenFd, SHUT_RDWR);
    ::close(ep->listenFd);
    if (ep->acceptThread.joinable()) ep->acceptThread.join();
    ep->ShutdownReaders();
    ep->JoinReaders();
  }
}

bool TcpFabric::Register(NodeAddr addr, MessageSink* sink, sched::Executor* executor) {
  auto ep = std::make_unique<Endpoint>();
  ep->addr = addr;
  ep->sink = sink;
  ep->executor = executor;

  ep->listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ep->listenFd < 0) return false;
  const int one = 1;
  ::setsockopt(ep->listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<std::uint16_t>(basePort_ + addr));
  if (::bind(ep->listenFd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(ep->listenFd, 64) != 0) {
    ::close(ep->listenFd);
    return false;
  }
  Endpoint* raw = ep.get();
  ep->acceptThread = std::thread([this, raw] { AcceptLoop(raw); });
  std::lock_guard lock(epMu_);
  endpoints_[addr] = std::move(ep);
  return true;
}

void TcpFabric::Unregister(NodeAddr addr) {
  // Tear down this endpoint's own outbound connections, and force-close
  // everyone else's connection TO it so their next frame reconnects (and
  // fails fast against the dead listener, firing OnPeerDown).
  std::vector<std::unique_ptr<Connection>> mine;
  std::vector<Connection*> toward;
  {
    std::lock_guard lock(connsMu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((it->first >> 32) == addr) {
        mine.push_back(std::move(it->second));
        it = conns_.erase(it);
      } else {
        if ((it->first & 0xFFFFFFFFu) == addr) toward.push_back(it->second.get());
        ++it;
      }
    }
  }
  for (auto& conn : mine) StopConnection(conn.get());
  for (Connection* conn : toward) {
    // Shutdown only — the writer discovers the dead socket on its next
    // frame exactly as it would for a remote peer restart, taking the
    // reconnect path (and OnPeerDown if the listener stays gone).
    std::lock_guard lock(conn->mu);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }

  std::unique_ptr<Endpoint> ep;
  {
    std::lock_guard lock(epMu_);
    const auto it = endpoints_.find(addr);
    if (it == endpoints_.end()) return;
    ep = std::move(it->second);
    endpoints_.erase(it);
  }
  ::shutdown(ep->listenFd, SHUT_RDWR);
  ::close(ep->listenFd);
  if (ep->acceptThread.joinable()) ep->acceptThread.join();
  ep->ShutdownReaders();
  ep->JoinReaders();
}

std::size_t TcpFabric::ReaderCount(NodeAddr addr) const {
  std::lock_guard lock(epMu_);
  const auto it = endpoints_.find(addr);
  if (it == endpoints_.end()) return 0;
  std::lock_guard rlock(it->second->readersMu);
  std::size_t live = 0;
  for (const auto& r : it->second->readers) {
    if (!r.done.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

void TcpFabric::AcceptLoop(Endpoint* ep) {
  for (;;) {
    const int fd = ::accept(ep->listenFd, nullptr, nullptr);
    if (fd < 0) break;
    ep->ReapFinishedReaders();
    std::lock_guard lock(ep->readersMu);
    ep->readers.emplace_back();
    Endpoint::Reader& r = ep->readers.back();
    r.fd = fd;
    std::atomic<bool>* done = &r.done;
    r.thread = std::thread([this, ep, fd, done] { ReaderLoop(ep, fd, done); });
  }
}

void TcpFabric::ReaderLoop(Endpoint* ep, int fd, std::atomic<bool>* done) {
  for (;;) {
    char header[8];
    if (!ReadAll(fd, header, sizeof(header))) break;
    std::uint32_t length = 0, sender = 0;
    std::memcpy(&length, header, 4);
    std::memcpy(&sender, header + 4, 4);
    if (length == 0 || length > proto::kMaxFrameBody) {
      SCALLA_WARN("tcp", "endpoint %u: bad frame length %u from %u", ep->addr,
                  length, sender);
      break;
    }
    std::string body(length, '\0');
    if (!ReadAll(fd, body.data(), length)) break;
    auto message = proto::Decode(body);
    if (!message.has_value()) {
      SCALLA_WARN("tcp", "endpoint %u: malformed frame from %u", ep->addr, sender);
      break;
    }
    counters_.framesReceived.fetch_add(1, std::memory_order_relaxed);
    counters_.bytesReceived.fetch_add(sizeof(header) + length,
                                      std::memory_order_relaxed);
    // A downed receiver (fault injection) drops inbound traffic too.
    if (!Reachable(sender, ep->addr)) {
      counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    counters_.messagesDelivered.fetch_add(1, std::memory_order_relaxed);
    MessageSink* sink = ep->sink;
    if (ep->executor != nullptr) {
      ep->executor->Post([sink, sender, msg = std::move(*message)]() mutable {
        sink->OnMessage(sender, std::move(msg));
      });
    } else {
      sink->OnMessage(sender, std::move(*message));
    }
  }
  ::close(fd);
  done->store(true, std::memory_order_release);
}

// ---- fault injection ----

void TcpFabric::SetDown(NodeAddr addr, bool down) {
  std::lock_guard lock(faultMu_);
  if (down) {
    down_[addr] = true;
  } else {
    down_.erase(addr);
  }
}

void TcpFabric::SetLinkCut(NodeAddr a, NodeAddr b, bool cut) {
  std::lock_guard lock(faultMu_);
  if (cut) {
    cutLinks_[LinkKey(a, b)] = true;
  } else {
    cutLinks_.erase(LinkKey(a, b));
  }
}

void TcpFabric::SetDrop(NodeAddr from, NodeAddr to, bool drop) {
  std::lock_guard lock(faultMu_);
  if (drop) {
    drops_[PairKey(from, to)] = true;
  } else {
    drops_.erase(PairKey(from, to));
  }
}

void TcpFabric::SetDelay(NodeAddr from, NodeAddr to, Duration delay) {
  std::lock_guard lock(faultMu_);
  if (delay > Duration::zero()) {
    delays_[PairKey(from, to)] = delay;
  } else {
    delays_.erase(PairKey(from, to));
  }
}

bool TcpFabric::Reachable(NodeAddr from, NodeAddr to) const {
  std::lock_guard lock(faultMu_);
  if (down_.count(from) != 0 || down_.count(to) != 0) return false;
  return cutLinks_.count(LinkKey(from, to)) == 0;
}

bool TcpFabric::DropInjected(NodeAddr from, NodeAddr to) const {
  std::lock_guard lock(faultMu_);
  return drops_.count(PairKey(from, to)) != 0;
}

Duration TcpFabric::DelayInjected(NodeAddr from, NodeAddr to) const {
  std::lock_guard lock(faultMu_);
  const auto it = delays_.find(PairKey(from, to));
  return it == delays_.end() ? Duration::zero() : it->second;
}

// ---- send path ----

TcpFabric::Connection* TcpFabric::GetConnection(NodeAddr from, NodeAddr to) {
  std::lock_guard lock(connsMu_);
  if (shuttingDown_) return nullptr;
  auto& slot = conns_[PairKey(from, to)];
  if (slot == nullptr) {
    slot = std::make_unique<Connection>();
    slot->from = from;
    slot->to = to;
    Connection* raw = slot.get();
    slot->writer = std::thread([this, raw] { WriterLoop(raw); });
  }
  return slot.get();
}

void TcpFabric::Send(NodeAddr from, NodeAddr to, proto::Message message) {
  counters_.messagesSent.fetch_add(1, std::memory_order_relaxed);
  if (!Reachable(from, to)) {
    // Mirror SimFabric: a downed/cut destination drops the message and the
    // sender learns its peer is gone (unless the sender itself is down).
    counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
    bool senderDown;
    {
      std::lock_guard lock(faultMu_);
      senderDown = down_.count(from) != 0;
    }
    if (!senderDown) NotifyPeerDown(from, to);
    return;
  }
  if (DropInjected(from, to)) {
    // Lossy link: the frame vanishes silently.
    counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const std::string body = proto::Encode(message);
  std::string frame(sizeof(std::uint32_t) * 2 + body.size(), '\0');
  const auto length = static_cast<std::uint32_t>(body.size());
  std::memcpy(frame.data(), &length, 4);
  std::memcpy(frame.data() + 4, &from, 4);
  std::memcpy(frame.data() + 8, body.data(), body.size());

  Connection* conn = GetConnection(from, to);
  if (conn == nullptr) {  // fabric shutting down
    counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool overflow = false;
  {
    std::lock_guard lock(conn->mu);
    if (conn->queue.size() >= config_.maxQueuedMessages) {
      overflow = true;
    } else {
      conn->queue.push_back(std::move(frame));
      conn->cv.notify_one();
    }
  }
  if (overflow) {
    counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
    counters_.queueOverflows.fetch_add(1, std::memory_order_relaxed);
    NotifyPeerDown(from, to);
  }
}

bool TcpFabric::EnsureConnected(Connection* conn) {
  {
    std::lock_guard lock(conn->mu);
    if (conn->connected) return true;
    if (conn->fd >= 0) {  // leftover fd from a failed attempt
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Publish the fd before any blocking syscall so Unregister/teardown can
  // shutdown() it to interrupt us.
  {
    std::lock_guard lock(conn->mu);
    if (conn->stop) {
      ::close(fd);
      return false;
    }
    conn->fd = fd;
  }
  // Non-blocking connect with a poll-based deadline: a black-holed peer
  // costs at most connectTimeout, not a kernel-default SYN retry cycle.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<std::uint16_t>(basePort_ + conn->to));
  bool ok = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0;
  if (!ok && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int n = ::poll(&pfd, 1, static_cast<int>(config_.connectTimeout.count()));
    if (n == 1) {
      int err = 0;
      socklen_t len = sizeof(err);
      ok = ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 && err == 0;
    }
  }
  if (!ok) {
    Disconnect(conn);
    return false;
  }
  ::fcntl(fd, F_SETFL, flags);
  timeval tv{};
  tv.tv_sec = config_.writeTimeout.count() / 1000;
  tv.tv_usec = static_cast<suseconds_t>((config_.writeTimeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  std::lock_guard lock(conn->mu);
  conn->connected = true;
  return !conn->stop;
}

bool TcpFabric::WriteFrame(Connection* conn, const std::string& frame) {
  int fd;
  {
    std::lock_guard lock(conn->mu);
    if (!conn->connected || conn->stop) return false;
    fd = conn->fd;
  }
  return WriteAll(fd, frame.data(), frame.size());
}

void TcpFabric::Disconnect(Connection* conn) {
  std::lock_guard lock(conn->mu);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->connected = false;
}

// The peer is unreachable: drop this connection's whole backlog (delivery
// is per-pair FIFO, so later frames cannot jump a failed one) and tell
// the sending endpoint.
void TcpFabric::FailConnection(Connection* conn) {
  Disconnect(conn);
  std::size_t dropped = 1;  // the frame that just failed
  {
    std::lock_guard lock(conn->mu);
    dropped += conn->queue.size();
    conn->queue.clear();
  }
  counters_.messagesDropped.fetch_add(dropped, std::memory_order_relaxed);
  NotifyPeerDown(conn->from, conn->to);
}

void TcpFabric::NotifyPeerDown(NodeAddr from, NodeAddr to) {
  MessageSink* sink = nullptr;
  sched::Executor* exec = nullptr;
  {
    std::lock_guard lock(epMu_);
    const auto it = endpoints_.find(from);
    if (it == endpoints_.end()) return;
    sink = it->second->sink;
    exec = it->second->executor;
  }
  if (exec != nullptr) {
    exec->Post([sink, to] { sink->OnPeerDown(to); });
  } else {
    sink->OnPeerDown(to);
  }
}

void TcpFabric::WriterLoop(Connection* conn) {
  for (;;) {
    std::string frame;
    {
      std::unique_lock lock(conn->mu);
      conn->cv.wait(lock, [conn] { return conn->stop || !conn->queue.empty(); });
      if (conn->stop) break;
      frame = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    // Injected per-pair delay (interruptible so teardown never waits it
    // out): stalls only this pair's queue, by design.
    const Duration delay = DelayInjected(conn->from, conn->to);
    if (delay > Duration::zero()) {
      std::unique_lock lock(conn->mu);
      conn->cv.wait_for(lock, delay, [conn] { return conn->stop; });
      if (conn->stop) break;
    }
    if (!Reachable(conn->from, conn->to) || DropInjected(conn->from, conn->to)) {
      // Fault injected after enqueue: the frame is lost in flight.
      counters_.messagesDropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const bool wasConnected = [&] {
      std::lock_guard lock(conn->mu);
      return conn->connected;
    }();
    bool ok = EnsureConnected(conn) && WriteFrame(conn, frame);
    if (!ok && wasConnected) {
      // Stale cached connection (peer restarted): retry once fresh.
      Disconnect(conn);
      counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
      ok = EnsureConnected(conn) && WriteFrame(conn, frame);
    }
    if (ok) {
      counters_.framesSent.fetch_add(1, std::memory_order_relaxed);
      counters_.bytesSent.fetch_add(frame.size(), std::memory_order_relaxed);
    } else {
      bool stopping;
      {
        std::lock_guard lock(conn->mu);
        stopping = conn->stop;
      }
      if (stopping) break;
      FailConnection(conn);
    }
  }
  Disconnect(conn);
}

void TcpFabric::StopConnection(Connection* conn) {
  {
    std::lock_guard lock(conn->mu);
    conn->stop = true;
    // Interrupt a writer blocked in send(): shutdown, never close — the
    // writer owns the close.
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    conn->cv.notify_all();
  }
  if (conn->writer.joinable()) conn->writer.join();
}

net::Fabric::Counters TcpFabric::GetCounters() const {
  Counters out;
  out.messagesSent = counters_.messagesSent.load(std::memory_order_relaxed);
  out.messagesDelivered = counters_.messagesDelivered.load(std::memory_order_relaxed);
  out.messagesDropped = counters_.messagesDropped.load(std::memory_order_relaxed);
  out.framesSent = counters_.framesSent.load(std::memory_order_relaxed);
  out.framesReceived = counters_.framesReceived.load(std::memory_order_relaxed);
  out.bytesSent = counters_.bytesSent.load(std::memory_order_relaxed);
  out.bytesReceived = counters_.bytesReceived.load(std::memory_order_relaxed);
  out.reconnects = counters_.reconnects.load(std::memory_order_relaxed);
  out.queueOverflows = counters_.queueOverflows.load(std::memory_order_relaxed);
  return out;
}

}  // namespace scalla::net

// Epoll reactor: a small fixed pool of event-loop threads, each owning
// many file descriptors through one epoll instance. This is the I/O core
// under net::TcpFabric — listeners, inbound connections and outbound
// connections are all readiness-driven handlers on a loop, so the thread
// count is O(loopThreads), not O(connections).
//
// Ownership and threading rules (the whole design in four lines):
//   - every fd/handler belongs to exactly one Loop; all I/O, epoll
//     registration and handler state mutation happen on that loop's thread;
//   - other threads talk to a loop only through Post()/RunSync(), which
//     enqueue a task and wake the loop via an eventfd;
//   - handlers are dispatched by a monotonically increasing id (never a
//     raw pointer), so a handler removed mid-batch cannot be reached by a
//     stale event, even if its fd number is immediately reused;
//   - timers (connect/write deadlines, idle reaping, injected delays) are
//     a loop-local multimap drained between epoll_wait rounds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace scalla::net {

/// A readiness callback registered on a Loop. `events` is the epoll event
/// mask (EPOLLIN / EPOLLOUT / EPOLLERR / EPOLLHUP bits).
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void OnEvents(std::uint32_t events) = 0;
};

class Reactor {
 public:
  class Loop {
   public:
    Loop();
    ~Loop();
    Loop(const Loop&) = delete;
    Loop& operator=(const Loop&) = delete;

    /// True when called from this loop's thread.
    bool OnLoopThread() const;

    /// Enqueues `task` to run on the loop thread (any thread; cheap).
    void Post(std::function<void()> task);

    /// Runs `task` on the loop thread and waits for it to finish. Called
    /// from the loop's own thread it runs inline; called after the loop
    /// stopped it also runs inline (teardown path).
    void RunSync(std::function<void()> task);

    // ---- loop-thread-only surface (handlers and timers) ----

    /// Registers `fd` for `events`; returns the dispatch id. The loop
    /// holds a shared_ptr so the handler outlives any in-flight dispatch.
    std::uint64_t Add(int fd, std::uint32_t events,
                      std::shared_ptr<EventHandler> handler);
    /// Changes the interest set of a registered fd.
    void Mod(std::uint64_t id, std::uint32_t events);
    /// Deregisters; the caller still owns (and closes) the fd afterwards.
    void Del(std::uint64_t id);

    /// Runs `fn` on the loop thread at (or just after) `when`.
    void ScheduleAt(TimePoint when, std::function<void()> fn);
    /// Steady-clock now, as a util TimePoint.
    static TimePoint Now();

   private:
    friend class Reactor;
    void Start();
    void Stop();
    void Run();
    void Wake();
    void DrainTasksInline();  // teardown: run leftovers on the caller

    int epollFd_ = -1;
    int wakeFd_ = -1;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};

    std::mutex mu_;  // guards tasks_ and wakePending_
    std::vector<std::function<void()>> tasks_;
    bool wakePending_ = false;

    // Loop-thread-only state.
    struct Registration {
      int fd = -1;
      std::shared_ptr<EventHandler> handler;
    };
    std::unordered_map<std::uint64_t, Registration> handlers_;
    std::uint64_t nextId_ = 1;  // 0 is the wake eventfd
    std::multimap<TimePoint, std::function<void()>> timers_;
  };

  explicit Reactor(int loopThreads);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  int size() const { return static_cast<int>(loops_.size()); }
  Loop& At(int i) { return *loops_[static_cast<std::size_t>(i)]; }
  /// Deterministic key -> loop affinity (same key, same loop).
  Loop& LoopFor(std::uint64_t key) {
    return *loops_[static_cast<std::size_t>(key % loops_.size())];
  }

 private:
  std::vector<std::unique_ptr<Loop>> loops_;
};

/// Free list of reusable byte buffers for frame encode/decode: the send
/// path acquires a buffer, encodes into it, and the reactor releases it
/// back once written, so steady-state traffic does not allocate per
/// message. Oversized buffers are dropped rather than hoarded.
class BufferPool {
 public:
  std::string Acquire() {
    std::lock_guard lock(mu_);
    if (free_.empty()) return {};
    std::string out = std::move(free_.back());
    free_.pop_back();
    out.clear();
    return out;
  }

  void Release(std::string&& buffer) {
    constexpr std::size_t kMaxPooled = 64;
    constexpr std::size_t kMaxPooledCapacity = 256 * 1024;
    if (buffer.capacity() > kMaxPooledCapacity) return;
    std::lock_guard lock(mu_);
    if (free_.size() >= kMaxPooled) return;
    free_.push_back(std::move(buffer));
  }

 private:
  std::mutex mu_;
  std::vector<std::string> free_;
};

}  // namespace scalla::net

#include "net/fabric.h"

namespace scalla::net {

Result<void> ValidateFabricOptions(const FabricOptions& options) {
  if (options.loopThreads < 1 || options.loopThreads > 64) {
    return Result<void>::Err(proto::XrdErr::kInvalid,
                             "fabric.loopthreads must be between 1 and 64");
  }
  if (options.maxQueuedMessages == 0) {
    return Result<void>::Err(proto::XrdErr::kInvalid,
                             "fabric.queuedepth must be a positive integer");
  }
  if (options.connectTimeout <= std::chrono::milliseconds::zero()) {
    return Result<void>::Err(proto::XrdErr::kInvalid,
                             "fabric.connecttimeout must be a positive duration");
  }
  if (options.writeTimeout <= std::chrono::milliseconds::zero()) {
    return Result<void>::Err(proto::XrdErr::kInvalid,
                             "fabric.writetimeout must be a positive duration");
  }
  if (options.idleTimeout < std::chrono::milliseconds::zero()) {
    return Result<void>::Err(proto::XrdErr::kInvalid,
                             "fabric.idletimeout must be non-negative (0 disables)");
  }
  return Result<void>::Ok();
}

}  // namespace scalla::net

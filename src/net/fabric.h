// Message fabric: how nodes and clients address and reach each other.
// Two implementations ship:
//   - sim::SimFabric : in-process, latency-modeled, virtual time — used by
//     tests and the latency/scaling benchmarks;
//   - net::TcpFabric : length-framed messages over loopback TCP sockets —
//     used by the multi-endpoint integration tests ("multi-process test on
//     one server" per the reproduction band; endpoints are isolated actors
//     that only communicate through real sockets).
// Node logic is written once against this interface.
#pragma once

#include <cstdint>

#include "proto/messages.h"

namespace scalla::net {

/// Flat address of a participant (node or client) on a fabric.
using NodeAddr = std::uint32_t;

/// Receives messages delivered by the fabric. Handlers run on the
/// receiver's executor (sim event loop or the endpoint's dispatch thread).
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void OnMessage(NodeAddr from, proto::Message message) = 0;
  /// A peer became unreachable (TCP: connection closed; sim: injected).
  virtual void OnPeerDown(NodeAddr peer) { (void)peer; }
};

class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Delivers `message` from `from` to `to`. Asynchronous and unordered
  /// across peers; ordered per (from,to) pair. Silently drops messages to
  /// unknown or partitioned destinations (the resolution protocol treats
  /// non-response as a negative answer, so loss maps onto protocol
  /// semantics rather than errors).
  virtual void Send(NodeAddr from, NodeAddr to, proto::Message message) = 0;

  struct Counters {
    std::uint64_t messagesSent = 0;
    std::uint64_t messagesDelivered = 0;
    std::uint64_t messagesDropped = 0;
    // Wire-level counters; only transports with real framing (TcpFabric)
    // populate these, the in-process sim fabric leaves them zero.
    std::uint64_t framesSent = 0;
    std::uint64_t framesReceived = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t reconnects = 0;  // stale cached connections replaced
    // Messages rejected because a per-peer bounded outbound queue was
    // full (TcpFabric only; a full queue also signals OnPeerDown).
    std::uint64_t queueOverflows = 0;
  };
  virtual Counters GetCounters() const = 0;
};

}  // namespace scalla::net

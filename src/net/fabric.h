// Message fabric: how nodes and clients address and reach each other.
// Two implementations ship:
//   - sim::SimFabric : in-process, latency-modeled, virtual time — used by
//     tests and the latency/scaling benchmarks;
//   - net::TcpFabric : length-framed messages over loopback TCP sockets,
//     multiplexed onto a small epoll reactor pool — used by the
//     multi-endpoint integration tests ("multi-process test on one server"
//     per the reproduction band; endpoints are isolated actors that only
//     communicate through real sockets).
// Node logic is written once against this interface; chaos tests are
// written once against the FaultInjector surface, which both transports
// implement in full.
#pragma once

#include <chrono>
#include <cstdint>

#include "proto/messages.h"
#include "util/result.h"
#include "util/types.h"

namespace scalla::net {

/// Flat address of a participant (node or client) on a fabric.
using NodeAddr = std::uint32_t;

/// Transport tuning, shared by every fabric implementation. One struct is
/// parsed once from the `fabric.*` config directives and handed to the
/// transport constructor; SimFabric accepts the same struct so sim and TCP
/// deployments configure identically (the simulator honours the queue
/// bound semantically and ignores socket-level knobs, which it documents
/// rather than hides).
struct FabricOptions {
  /// Size of the reactor's event-loop pool. Every socket (listeners,
  /// inbound connections, outbound connections) is owned by exactly one
  /// loop; a small fixed pool serves an arbitrary number of sockets.
  int loopThreads = 2;
  /// Bounded per-(from,to) outbound queue; enqueueing past this drops the
  /// message, counts an overflow, and signals OnPeerDown.
  std::size_t maxQueuedMessages = 4096;
  /// Non-blocking connect() deadline, enforced by a reactor timer.
  std::chrono::milliseconds connectTimeout{1000};
  /// Write-progress deadline: a connection that cannot complete a frame
  /// within this window (no writable readiness, or a peer that stopped
  /// draining) is treated as broken and the peer marked down.
  std::chrono::milliseconds writeTimeout{2000};
  /// Idle-connection reaping: a connection with no traffic for this long
  /// is quietly closed and re-established transparently on the next send
  /// (no OnPeerDown). Zero disables reaping.
  std::chrono::milliseconds idleTimeout{0};
  /// SO_SNDBUF for outbound sockets; 0 keeps the OS default. Tests force a
  /// tiny buffer to exercise partial-write framing.
  std::size_t sendBufferBytes = 0;
};

/// Rejects out-of-range options with a descriptive error (used by the
/// config loader so bad `fabric.*` directives fail loudly, and by
/// transports at construction).
Result<void> ValidateFabricOptions(const FabricOptions& options);

/// Receives messages delivered by the fabric. Handlers run on the
/// receiver's executor (sim event loop or the endpoint's dispatch thread);
/// endpoints registered without an executor get callbacks inline on a
/// reactor loop thread and must not block.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void OnMessage(NodeAddr from, proto::Message message) = 0;
  /// A peer became unreachable (TCP: connection failed; sim: injected).
  virtual void OnPeerDown(NodeAddr peer) { (void)peer; }
};

/// Uniform fault-injection surface. Every transport implements every knob,
/// so chaos scenarios are written once against Fabric* and run unchanged
/// over the simulator and over real sockets.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Downed endpoints drop everything in and out; senders get OnPeerDown
  /// on each dropped message (models a broken connection).
  virtual void SetDown(NodeAddr addr, bool down) = 0;
  /// Cuts (or restores) the bidirectional link between two endpoints;
  /// senders get OnPeerDown (the connection visibly breaks).
  virtual void SetLinkCut(NodeAddr a, NodeAddr b, bool cut) = 0;
  /// Silently discards traffic from -> to (one-way lossy link); unlike a
  /// cut the sender is NOT told, modelling loss the transport hides.
  virtual void SetDrop(NodeAddr from, NodeAddr to, bool drop) = 0;
  /// Adds a one-way delay before each frame from -> to leaves the sender
  /// (per-pair, so it stalls only that pair's queue). Zero clears it.
  virtual void SetDelay(NodeAddr from, NodeAddr to, Duration delay) = 0;
  /// Wedges an endpoint: the process hangs but its connections stay "up",
  /// so everything it sends or receives is silently lost and NO peer gets
  /// OnPeerDown — the failure mode only a heartbeat can detect.
  virtual void SetWedged(NodeAddr addr, bool wedged) = 0;
};

class Fabric : public FaultInjector {
 public:
  /// Delivers `message` from `from` to `to`. Asynchronous and unordered
  /// across peers; ordered per (from,to) pair. Silently drops messages to
  /// unknown or partitioned destinations (the resolution protocol treats
  /// non-response as a negative answer, so loss maps onto protocol
  /// semantics rather than errors).
  virtual void Send(NodeAddr from, NodeAddr to, proto::Message message) = 0;

  struct Counters {
    std::uint64_t messagesSent = 0;
    std::uint64_t messagesDelivered = 0;
    std::uint64_t messagesDropped = 0;
    // Wire-level counters; only transports with real framing (TcpFabric)
    // populate these, the in-process sim fabric leaves them zero.
    std::uint64_t framesSent = 0;
    std::uint64_t framesReceived = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t reconnects = 0;  // stale cached connections replaced
    std::uint64_t idleReaps = 0;   // idle connections quietly closed
    // Messages rejected because a per-peer bounded outbound queue was
    // full (TcpFabric only; a full queue also signals OnPeerDown).
    std::uint64_t queueOverflows = 0;
  };
  virtual Counters GetCounters() const = 0;

  /// Traffic attributed to one remote peer: frames/bytes sent over
  /// connections TO `peer`, frames/bytes received over connections FROM
  /// `peer`, and the message counts for that link. Lets bench_fabric and
  /// the obs stats tree attribute wire traffic to individual links.
  virtual Counters PerPeerCounters(NodeAddr peer) const = 0;
};

}  // namespace scalla::net

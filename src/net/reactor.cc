#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <condition_variable>

namespace scalla::net {

namespace {
// Upper bound on one epoll_wait batch; level-triggered epoll re-reports
// anything a full batch leaves behind.
constexpr int kMaxEvents = 256;
}  // namespace

Reactor::Loop::Loop() {
  epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // id 0 = the wake fd
  ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev);
}

Reactor::Loop::~Loop() {
  Stop();
  if (wakeFd_ >= 0) ::close(wakeFd_);
  if (epollFd_ >= 0) ::close(epollFd_);
}

void Reactor::Loop::Start() {
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void Reactor::Loop::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  Wake();
  thread_.join();
  running_.store(false, std::memory_order_release);
  // Tasks posted between the loop's last drain and the join (e.g. a
  // straggling RunSync) execute here so no waiter is left hanging.
  DrainTasksInline();
}

bool Reactor::Loop::OnLoopThread() const {
  return thread_.joinable() && std::this_thread::get_id() == thread_.get_id();
}

void Reactor::Loop::Wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeFd_, &one, sizeof(one));
}

void Reactor::Loop::Post(std::function<void()> task) {
  bool needWake = false;
  {
    std::lock_guard lock(mu_);
    tasks_.push_back(std::move(task));
    if (!wakePending_) {
      wakePending_ = true;
      needWake = true;
    }
  }
  if (needWake) Wake();
}

void Reactor::Loop::RunSync(std::function<void()> task) {
  if (OnLoopThread() || !running_.load(std::memory_order_acquire)) {
    task();
    return;
  }
  std::mutex doneMu;
  std::condition_variable doneCv;
  bool done = false;
  Post([&] {
    task();
    std::lock_guard lock(doneMu);
    done = true;
    doneCv.notify_one();
  });
  std::unique_lock lock(doneMu);
  doneCv.wait(lock, [&] { return done; });
}

std::uint64_t Reactor::Loop::Add(int fd, std::uint32_t events,
                                 std::shared_ptr<EventHandler> handler) {
  const std::uint64_t id = nextId_++;
  handlers_[id] = Registration{fd, std::move(handler)};
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = id;
  ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
  return id;
}

void Reactor::Loop::Mod(std::uint64_t id, std::uint32_t events) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = id;
  ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, it->second.fd, &ev);
}

void Reactor::Loop::Del(std::uint64_t id) {
  const auto it = handlers_.find(id);
  if (it == handlers_.end()) return;
  ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  handlers_.erase(it);
}

void Reactor::Loop::ScheduleAt(TimePoint when, std::function<void()> fn) {
  timers_.emplace(when, std::move(fn));
}

TimePoint Reactor::Loop::Now() {
  return std::chrono::time_point_cast<Duration>(std::chrono::steady_clock::now());
}

void Reactor::Loop::DrainTasksInline() {
  for (;;) {
    std::vector<std::function<void()>> local;
    {
      std::lock_guard lock(mu_);
      if (tasks_.empty()) return;
      local.swap(tasks_);
      wakePending_ = false;
    }
    for (auto& task : local) task();
  }
}

void Reactor::Loop::Run() {
  std::vector<epoll_event> events(kMaxEvents);
  std::vector<std::function<void()>> local;
  while (!stop_.load(std::memory_order_acquire)) {
    int timeoutMs = -1;
    if (!timers_.empty()) {
      const Duration until = timers_.begin()->first - Now();
      if (until <= Duration::zero()) {
        timeoutMs = 0;
      } else {
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(until).count() + 1;
        timeoutMs = static_cast<int>(ms > 60'000 ? 60'000 : ms);
      }
    }
    const int n = ::epoll_wait(epollFd_, events.data(), kMaxEvents, timeoutMs);

    // Tasks first: they may add/remove handlers; stale dispatch ids below
    // simply miss the map.
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      if (events[static_cast<std::size_t>(i)].data.u64 == 0) woken = true;
    }
    if (woken) {
      std::uint64_t drain = 0;
      [[maybe_unused]] const ssize_t r = ::read(wakeFd_, &drain, sizeof(drain));
    }
    {
      std::lock_guard lock(mu_);
      local.swap(tasks_);
      wakePending_ = false;
    }
    for (auto& task : local) task();
    local.clear();

    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.u64 == 0) continue;
      const auto it = handlers_.find(ev.data.u64);
      if (it == handlers_.end()) continue;  // removed by an earlier task/handler
      // Keep the handler alive across the callback even if it removes
      // itself from the loop.
      const std::shared_ptr<EventHandler> keep = it->second.handler;
      keep->OnEvents(ev.events);
    }

    while (!timers_.empty() && timers_.begin()->first <= Now()) {
      auto fn = std::move(timers_.begin()->second);
      timers_.erase(timers_.begin());
      fn();
    }
  }
}

Reactor::Reactor(int loopThreads) {
  if (loopThreads < 1) loopThreads = 1;
  loops_.reserve(static_cast<std::size_t>(loopThreads));
  for (int i = 0; i < loopThreads; ++i) {
    loops_.push_back(std::make_unique<Loop>());
  }
  for (auto& loop : loops_) loop->Start();
}

Reactor::~Reactor() {
  for (auto& loop : loops_) loop->Stop();
}

}  // namespace scalla::net

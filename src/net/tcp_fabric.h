// Loopback TCP transport on the epoll reactor: each registered endpoint
// gets a listening socket on basePort+addr; frames are [u32 length][u32
// senderAddr][encoded message]. Listeners, inbound connections and
// outbound connections are all non-blocking readiness handlers owned by
// one of FabricOptions::loopThreads event loops, so the thread count is
// fixed regardless of how many endpoints or connections exist (the old
// design spent one writer thread per (from,to) pair plus one reader
// thread per accepted socket).
//
// Each (from, to) pair still owns an independent connection object with a
// bounded outbound queue, so traffic to one peer never serializes behind
// traffic to another and a wedged destination backs up only its own
// queue. The owning loop drains a pair's whole backlog with one writev
// (sendmsg) per readiness wakeup, and frame buffers are pooled, so
// steady-state traffic costs neither a thread wakeup chain nor an
// allocation per message.
//
// Failure signalling is asynchronous: a failed connect (timer-based
// deadline), an expired write-progress deadline, or a queue overflow
// marks the peer down and fires the sending endpoint's OnPeerDown —
// exactly the signal the cmsd uses to mark a subordinate offline. A
// connection that made progress (>= 1 complete frame) before breaking is
// treated as a stale cached connection and transparently re-established
// once; only a connection that never progresses fails the peer, so a
// restarting peer costs one reconnect, not an OnPeerDown storm.
//
// Fault injection implements the full net::FaultInjector surface
// (SetDown / SetLinkCut / SetDrop / SetDelay / SetWedged), so chaos
// scenarios written against Fabric* run unchanged over real sockets.
//
// Incoming messages are posted to the endpoint's executor, so node code
// keeps its single-threaded actor discipline; endpoints registered
// without an executor get their sink called inline on a loop thread and
// must not block.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/fabric.h"
#include "net/reactor.h"
#include "sched/executor.h"
#include "util/types.h"

namespace scalla::net {

class TcpFabric final : public Fabric {
 public:
  /// Endpoints listen on 127.0.0.1:basePort+addr.
  explicit TcpFabric(std::uint16_t basePort, FabricOptions options = {});
  ~TcpFabric() override;

  TcpFabric(const TcpFabric&) = delete;
  TcpFabric& operator=(const TcpFabric&) = delete;

  /// Binds an endpoint: registers its listener on a reactor loop. Returns
  /// false if the port could not be bound.
  bool Register(NodeAddr addr, MessageSink* sink, sched::Executor* executor);
  /// Tears an endpoint down. On return no further OnMessage/OnPeerDown for
  /// this endpoint is running or will start (the teardown runs a barrier
  /// on every reactor loop), so the caller may destroy the sink/executor.
  void Unregister(NodeAddr addr);

  // ---- Fabric ----
  void Send(NodeAddr from, NodeAddr to, proto::Message message) override;
  Counters GetCounters() const override;
  Counters PerPeerCounters(NodeAddr peer) const override;

  // ---- FaultInjector ----
  void SetDown(NodeAddr addr, bool down) override;
  void SetLinkCut(NodeAddr a, NodeAddr b, bool cut) override;
  void SetDrop(NodeAddr from, NodeAddr to, bool drop) override;
  void SetDelay(NodeAddr from, NodeAddr to, Duration delay) override;
  void SetWedged(NodeAddr addr, bool wedged) override;

  /// Live inbound connections accepted by `addr`'s listener (closed ones
  /// are removed immediately) — observability for connection reaping.
  std::size_t ReaderCount(NodeAddr addr) const;

  /// Live outbound connections whose socket is currently established —
  /// observability for the idle-reap logic.
  std::size_t ActiveOutboundConnections() const;

 private:
  class Listener;
  class InConn;
  class OutConn;
  struct Endpoint;
  friend class Listener;
  friend class InConn;
  friend class OutConn;

  std::shared_ptr<OutConn> GetConnection(NodeAddr from, NodeAddr to);
  void AdoptInbound(Endpoint* ep, int fd);
  void RemoveInbound(Endpoint* ep, InConn* conn);
  void NotifyPeerDown(NodeAddr from, NodeAddr to);

  bool Reachable(NodeAddr from, NodeAddr to) const;
  bool DropInjected(NodeAddr from, NodeAddr to) const;
  Duration DelayInjected(NodeAddr from, NodeAddr to) const;
  bool WedgeInjected(NodeAddr addr) const;
  bool EitherWedged(NodeAddr a, NodeAddr b) const;

  // Per-peer counter accumulation (framesSent/bytesSent keyed by the
  // remote peer of the connection, receive counters keyed by the sender).
  void AddPeerSent(NodeAddr peer, std::uint64_t frames, std::uint64_t bytes);
  void AddPeerReceived(NodeAddr peer, std::uint64_t frames, std::uint64_t bytes);
  void BumpPeer(NodeAddr peer, std::uint64_t Counters::*field,
                std::uint64_t delta = 1);

  std::uint16_t basePort_;
  FabricOptions options_;
  Reactor reactor_;
  BufferPool pool_;
  std::atomic<std::uint64_t> nextLoop_{0};  // round-robin inbound placement

  mutable std::mutex epMu_;
  std::map<NodeAddr, std::unique_ptr<Endpoint>> endpoints_;

  mutable std::mutex connsMu_;
  std::map<std::uint64_t, std::shared_ptr<OutConn>> conns_;  // (from<<32|to)

  mutable std::mutex faultMu_;
  std::map<NodeAddr, bool> down_;
  std::map<NodeAddr, bool> wedged_;
  std::map<std::uint64_t, bool> cutLinks_;    // key: min<<32|max
  std::map<std::uint64_t, bool> drops_;       // key: from<<32|to
  std::map<std::uint64_t, Duration> delays_;  // key: from<<32|to

  // Atomic counters: neither the send nor the receive path takes a
  // fabric-wide lock for the global totals.
  struct AtomicCounters {
    std::atomic<std::uint64_t> messagesSent{0};
    std::atomic<std::uint64_t> messagesDelivered{0};
    std::atomic<std::uint64_t> messagesDropped{0};
    std::atomic<std::uint64_t> framesSent{0};
    std::atomic<std::uint64_t> framesReceived{0};
    std::atomic<std::uint64_t> bytesSent{0};
    std::atomic<std::uint64_t> bytesReceived{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> idleReaps{0};
    std::atomic<std::uint64_t> queueOverflows{0};
  };
  mutable AtomicCounters counters_;

  // Per-peer attribution, updated per frame batch (not per byte), so the
  // lock is cold relative to the socket syscalls around it.
  mutable std::mutex perPeerMu_;
  std::map<NodeAddr, Counters> perPeer_;

  std::atomic<std::size_t> activeOutbound_{0};
  std::atomic<bool> shuttingDown_{false};
};

}  // namespace scalla::net

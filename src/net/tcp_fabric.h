// Loopback TCP transport: each registered endpoint gets a listening socket
// on basePort+addr; frames are [u32 length][u32 senderAddr][encoded
// message]. Connections are opened lazily, cached per (local, peer) pair,
// and torn down on error, at which point the local endpoint's OnPeerDown
// fires — exactly the signal the cmsd uses to mark a subordinate offline.
//
// Incoming messages are posted to the endpoint's executor, so node code
// keeps its single-threaded actor discipline.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/fabric.h"
#include "sched/executor.h"

namespace scalla::net {

class TcpFabric final : public Fabric {
 public:
  /// Endpoints listen on 127.0.0.1:basePort+addr.
  explicit TcpFabric(std::uint16_t basePort);
  ~TcpFabric() override;

  TcpFabric(const TcpFabric&) = delete;
  TcpFabric& operator=(const TcpFabric&) = delete;

  /// Binds an endpoint: starts its listener thread. Returns false if the
  /// port could not be bound.
  bool Register(NodeAddr addr, MessageSink* sink, sched::Executor* executor);
  void Unregister(NodeAddr addr);

  // ---- Fabric ----
  void Send(NodeAddr from, NodeAddr to, proto::Message message) override;
  Counters GetCounters() const override;

 private:
  struct Endpoint;
  struct Connection;

  Endpoint* FindEndpoint(NodeAddr addr);
  int ConnectTo(NodeAddr from, NodeAddr to);  // returns fd or -1
  void ReaderLoop(Endpoint* ep, int fd);
  void AcceptLoop(Endpoint* ep);
  void CloseOutbound(NodeAddr from, NodeAddr to);

  std::uint16_t basePort_;
  mutable std::mutex mu_;
  std::map<NodeAddr, std::unique_ptr<Endpoint>> endpoints_;
  std::map<std::uint64_t, int> outbound_;  // (from<<32|to) -> fd
  mutable Counters counters_;
  std::atomic<bool> shuttingDown_{false};
};

}  // namespace scalla::net

// Loopback TCP transport: each registered endpoint gets a listening socket
// on basePort+addr; frames are [u32 length][u32 senderAddr][encoded
// message]. Each (from, to) pair owns an independent connection object
// with a dedicated writer thread draining a bounded outbound queue, so
// traffic to one peer never serializes behind traffic to another and a
// wedged destination backs up only its own queue.
//
// Failure signalling is asynchronous: a failed connect (poll-based
// deadline), an expired write deadline (SO_SNDTIMEO), or a queue overflow
// marks the peer down and fires the sending endpoint's OnPeerDown —
// exactly the signal the cmsd uses to mark a subordinate offline.
//
// Fault injection mirrors sim::SimFabric (SetDown / SetLinkCut) and adds
// per-pair one-way drop and delay knobs, so chaos scenarios run against
// real sockets.
//
// Incoming messages are posted to the endpoint's executor, so node code
// keeps its single-threaded actor discipline.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/fabric.h"
#include "sched/executor.h"
#include "util/types.h"

namespace scalla::net {

struct TcpFabricConfig {
  /// Non-blocking connect() deadline (poll-based).
  std::chrono::milliseconds connectTimeout{1000};
  /// Per-frame write deadline (SO_SNDTIMEO); an expired deadline marks
  /// the peer down.
  std::chrono::milliseconds writeTimeout{2000};
  /// Bounded per-(from,to) outbound queue; enqueueing past this drops the
  /// message, counts an overflow, and signals OnPeerDown.
  std::size_t maxQueuedMessages = 4096;
};

class TcpFabric final : public Fabric {
 public:
  /// Endpoints listen on 127.0.0.1:basePort+addr.
  explicit TcpFabric(std::uint16_t basePort, TcpFabricConfig config = {});
  ~TcpFabric() override;

  TcpFabric(const TcpFabric&) = delete;
  TcpFabric& operator=(const TcpFabric&) = delete;

  /// Binds an endpoint: starts its listener thread. Returns false if the
  /// port could not be bound.
  bool Register(NodeAddr addr, MessageSink* sink, sched::Executor* executor);
  void Unregister(NodeAddr addr);

  // ---- Fabric ----
  void Send(NodeAddr from, NodeAddr to, proto::Message message) override;
  Counters GetCounters() const override;

  // ---- fault injection (SetDown/SetLinkCut mirror sim::SimFabric) ----
  /// Downed endpoints drop everything in and out; senders get OnPeerDown
  /// on each dropped message (models a broken connection).
  void SetDown(NodeAddr addr, bool down);
  /// Cuts (or restores) the bidirectional link between two endpoints.
  void SetLinkCut(NodeAddr a, NodeAddr b, bool cut);
  /// Silently discards frames from -> to (one-way lossy link); unlike a
  /// cut the sender is NOT told, modelling loss the transport hides.
  void SetDrop(NodeAddr from, NodeAddr to, bool drop);
  /// Adds a one-way delay before each frame from -> to leaves the writer
  /// (per-pair, so it stalls only that pair's queue). Zero clears it.
  void SetDelay(NodeAddr from, NodeAddr to, Duration delay);

  /// Live reader threads accepted by `addr`'s listener (reaped readers
  /// excluded) — observability for the accept-loop reaping logic.
  std::size_t ReaderCount(NodeAddr addr) const;

 private:
  struct Endpoint;
  struct Connection;

  Connection* GetConnection(NodeAddr from, NodeAddr to);
  void WriterLoop(Connection* conn);
  bool EnsureConnected(Connection* conn);
  bool WriteFrame(Connection* conn, const std::string& frame);
  void Disconnect(Connection* conn);
  void FailConnection(Connection* conn);
  void NotifyPeerDown(NodeAddr from, NodeAddr to);
  void StopConnection(Connection* conn);

  bool Reachable(NodeAddr from, NodeAddr to) const;
  bool DropInjected(NodeAddr from, NodeAddr to) const;
  Duration DelayInjected(NodeAddr from, NodeAddr to) const;

  void ReaderLoop(Endpoint* ep, int fd, std::atomic<bool>* done);
  void AcceptLoop(Endpoint* ep);

  std::uint16_t basePort_;
  TcpFabricConfig config_;

  mutable std::mutex epMu_;
  std::map<NodeAddr, std::unique_ptr<Endpoint>> endpoints_;

  mutable std::mutex connsMu_;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;  // (from<<32|to)

  mutable std::mutex faultMu_;
  std::map<NodeAddr, bool> down_;
  std::map<std::uint64_t, bool> cutLinks_;   // key: min<<32|max
  std::map<std::uint64_t, bool> drops_;      // key: from<<32|to
  std::map<std::uint64_t, Duration> delays_; // key: from<<32|to

  // Atomic counters: neither the send nor the receive path takes a
  // fabric-wide lock.
  struct AtomicCounters {
    std::atomic<std::uint64_t> messagesSent{0};
    std::atomic<std::uint64_t> messagesDelivered{0};
    std::atomic<std::uint64_t> messagesDropped{0};
    std::atomic<std::uint64_t> framesSent{0};
    std::atomic<std::uint64_t> framesReceived{0};
    std::atomic<std::uint64_t> bytesSent{0};
    std::atomic<std::uint64_t> bytesReceived{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> queueOverflows{0};
  };
  mutable AtomicCounters counters_;
  std::atomic<bool> shuttingDown_{false};
};

}  // namespace scalla::net

// scalla_daemon: run one Scalla node (manager, supervisor, data server, or
// caching proxy) over real TCP from a directive file — the shape of a
// production xrootd + cmsd pair in a single process.
//
//   $ scalla_daemon <config-file> [--base-port N] [--proxy] [--meta]
//
// --proxy forces the proxy role regardless of all.role (convenience for
// pointing a stock config at a cluster as a cache tier); a proxy config
// names its origin heads with all.manager and tunes the cache with the
// pcache.* directives (see xrd/node_config_loader.h).
//
// --meta (or all.role meta) runs the federation meta-manager: cluster
// heads configured with fed.meta subscribe to it and clients open
// against its address to reach every member cluster (docs/FEDERATION.md).
//
// Example cluster on one machine (three shells):
//   manager.cf:  all.role manager
//                all.addr 1
//                all.export /store
//   server1.cf:  all.role server
//                all.addr 11
//                all.manager 1
//                all.export /store
//                oss.localroot /tmp/scalla-s1
//   $ scalla_daemon manager.cf &
//   $ scalla_daemon server1.cf &
//   $ scalla_cli --head 1 put /store/hello "hi"
//
// Endpoints listen on 127.0.0.1:(basePort + all.addr); default base port
// is 10940 (nod to xrootd's 1094).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <semaphore>
#include <sstream>

#include "fed/meta_manager.h"
#include "net/tcp_fabric.h"
#include "oss/local_oss.h"
#include "oss/mem_oss.h"
#include "pcache/proxy_node.h"
#include "sched/thread_executor.h"
#include "util/logger.h"
#include "xrd/node_config_loader.h"

namespace {

std::binary_semaphore g_shutdown{0};

void HandleSignal(int) { g_shutdown.release(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace scalla;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <config-file> [--base-port N] [--proxy]\n",
                 argv[0]);
    return 2;
  }
  std::uint16_t basePort = 10940;
  bool forceProxy = false;
  bool forceMeta = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--base-port") == 0 && i + 1 < argc) {
      basePort = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
      ++i;
    } else if (std::strcmp(argv[i], "--proxy") == 0) {
      forceProxy = true;
    } else if (std::strcmp(argv[i], "--meta") == 0) {
      forceMeta = true;
    }
  }

  std::ifstream in(argv[1]);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read config file %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  std::string error;
  const auto loaded = xrd::LoadNodeConfig(buffer.str(), &error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "config error: %s\n", error.c_str());
    return 2;
  }

  util::Logger::Instance().SetLevel(util::LogLevel::kInfo);

  net::TcpFabric fabric(basePort, loaded->fabric);
  sched::ThreadExecutor executor;

  if (forceMeta || loaded->isMeta) {
    fed::MetaConfig mcfg;
    mcfg.name = loaded->node.name;
    mcfg.addr = loaded->node.addr;
    mcfg.cms = loaded->node.cms;
    mcfg.selection = loaded->node.selection;
    fed::MetaManager meta(mcfg, executor, fabric);
    if (!fabric.Register(mcfg.addr, &meta, &executor)) {
      std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", basePort + mcfg.addr);
      return 1;
    }
    meta.Start();
    std::printf("meta-manager '%s' up on 127.0.0.1:%u (addr %u) — cluster "
                "heads subscribe with fed.meta %u\n",
                mcfg.name.c_str(), basePort + mcfg.addr, mcfg.addr, mcfg.addr);
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    executor.RunEvery(std::chrono::seconds(60), [&meta] {
      std::printf("metrics %s\n", meta.SnapshotMetrics().ToJson().c_str());
      std::fflush(stdout);
    });
    g_shutdown.acquire();
    std::printf("shutting down\nmetrics %s\n",
                meta.SnapshotMetrics().ToJson().c_str());
    meta.Stop();
    return 0;
  }

  if (forceProxy || loaded->node.role == xrd::NodeRole::kProxy) {
    if (loaded->node.parent == 0) {
      std::fprintf(stderr, "config error: a proxy needs all.manager "
                           "(its origin cluster head)\n");
      return 2;
    }
    pcache::ProxyCacheConfig pcfg;
    pcfg.addr = loaded->node.addr;
    pcfg.name = loaded->node.name;
    pcfg.origin.head = loaded->node.parent;
    pcfg.origin.extraHeads = loaded->node.extraParents;
    pcfg.origin.cnsd = loaded->node.cnsd;
    pcfg.cache = loaded->pcacheTiered.dram;
    pcfg.diskCapacityBytes = loaded->pcacheTiered.diskCapacityBytes;
    pcfg.diskHighWatermark = loaded->pcacheTiered.diskHighWatermark;
    pcfg.diskLowWatermark = loaded->pcacheTiered.diskLowWatermark;
    pcfg.ghostEntries = loaded->pcacheTiered.ghostEntries;
    pcfg.readAhead = loaded->pcacheReadAhead;
    // Disk tier: a LocalOss directory that DRAM victims spill into (the
    // loader guarantees pcache.disk.path accompanies a non-zero capacity).
    std::unique_ptr<oss::LocalOss> diskTier;
    if (pcfg.diskCapacityBytes > 0) {
      std::filesystem::create_directories(loaded->pcacheDiskRoot);
      diskTier = std::make_unique<oss::LocalOss>(loaded->pcacheDiskRoot);
      pcfg.diskOss = diskTier.get();
    }
    pcache::ProxyCacheNode proxy(pcfg, executor, fabric);
    if (!fabric.Register(pcfg.addr, &proxy, &executor)) {
      std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", basePort + pcfg.addr);
      return 1;
    }
    std::printf("proxy '%s' up on 127.0.0.1:%u (addr %u) origin=%u "
                "dram=%llu bytes, %u-byte blocks, disk=%llu bytes%s%s\n",
                pcfg.name.c_str(), basePort + pcfg.addr, pcfg.addr,
                pcfg.origin.head,
                static_cast<unsigned long long>(pcfg.cache.capacityBytes),
                pcfg.cache.blockSize,
                static_cast<unsigned long long>(pcfg.diskCapacityBytes),
                pcfg.diskCapacityBytes > 0 ? " at " : "",
                pcfg.diskCapacityBytes > 0 ? loaded->pcacheDiskRoot.c_str() : "");
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    executor.RunEvery(std::chrono::seconds(60), [&proxy] {
      std::printf("metrics %s\n", proxy.SnapshotMetrics().ToJson().c_str());
      std::fflush(stdout);
    });
    g_shutdown.acquire();
    std::printf("shutting down\nmetrics %s\n",
                proxy.SnapshotMetrics().ToJson().c_str());
    return 0;
  }

  std::unique_ptr<oss::Oss> storage;
  if (loaded->node.role == xrd::NodeRole::kServer) {
    if (!loaded->localRoot.empty()) {
      std::filesystem::create_directories(loaded->localRoot);
      storage = std::make_unique<oss::LocalOss>(loaded->localRoot);
    } else {
      storage = std::make_unique<oss::MemOss>(executor.clock());
    }
  }

  // The daemon is the only node in its process, so IT owns folding the
  // process-shared fabric counters into the exported stats tree.
  xrd::NodeConfig nodeConfig = loaded->node;
  nodeConfig.exportFabricStats = true;
  xrd::ScallaNode node(nodeConfig, executor, fabric, storage.get());
  if (!fabric.Register(loaded->node.addr, &node, &executor)) {
    std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n",
                 basePort + loaded->node.addr);
    return 1;
  }
  node.Start();
  const std::string rootNote =
      loaded->localRoot.empty() ? std::string() : " root=" + loaded->localRoot;
  std::printf("%s '%s' up on 127.0.0.1:%u (addr %u)%s\n",
              loaded->node.role == xrd::NodeRole::kManager      ? "manager"
              : loaded->node.role == xrd::NodeRole::kSupervisor ? "supervisor"
                                                                : "server",
              loaded->node.name.c_str(), basePort + loaded->node.addr,
              loaded->node.addr, rootNote.c_str());
  if (loaded->node.cms.ping > Duration::zero()) {
    std::printf("heartbeat: ping every %lld ms, dead after %d misses"
                " (suspend at load %u)\n",
                static_cast<long long>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        loaded->node.cms.ping)
                        .count()),
                loaded->node.cms.missLimit, loaded->node.cms.suspendLoad);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // Periodic operator status line (like xrootd's summary monitoring),
  // plus the node's full metrics registry and transport counters as one
  // JSON line a log scraper can ingest.
  executor.RunEvery(std::chrono::seconds(60), [&node, &fabric] {
    std::printf("%s\n", node.DescribeStatus().c_str());
    const auto net = fabric.GetCounters();
    std::printf("metrics %s\n", node.SnapshotMetrics().ToJson().c_str());
    std::printf("net frames_sent=%llu frames_received=%llu bytes_sent=%llu "
                "bytes_received=%llu reconnects=%llu idle_reaps=%llu "
                "dropped=%llu queue_overflows=%llu\n",
                static_cast<unsigned long long>(net.framesSent),
                static_cast<unsigned long long>(net.framesReceived),
                static_cast<unsigned long long>(net.bytesSent),
                static_cast<unsigned long long>(net.bytesReceived),
                static_cast<unsigned long long>(net.reconnects),
                static_cast<unsigned long long>(net.idleReaps),
                static_cast<unsigned long long>(net.messagesDropped),
                static_cast<unsigned long long>(net.queueOverflows));
    std::fflush(stdout);
  });
  g_shutdown.acquire();
  std::printf("shutting down\n%s\nmetrics %s\n", node.DescribeStatus().c_str(),
              node.SnapshotMetrics().ToJson().c_str());
  node.Stop();
  return 0;
}

// scalla_cli: command-line client for a running Scalla cluster (see
// scalla_daemon). Speaks the xrd protocol over loopback TCP.
//
//   scalla_cli [--head N] [--base-port N] [--addr N] <command> ...
//
//   commands:
//     put <path> <text>        create a file with the given content
//     get <path>               print a file's content
//     stat <path>              print the file size
//     rm <path>                unlink a file
//     cksum <path>             CRC32 of the file content (server-side)
//     prepare <path> [...]     announce upcoming accesses (parallel prepare)
//     ls <prefix> --cnsd N     list the global namespace via the cnsd
//     stats [--json]           tree-aggregated metrics from the whole cluster
//     purge [path]             drop a pcache proxy's cached blocks (all, or
//                              one path); --head must be the proxy
//     cachestat                a pcache proxy's occupancy (blocks / bytes)
//     drain <server>           take a server (by cms name) out of selection
//                              while it stays online
//     restore <server>         undo a drain
//     fed locate <path>        ask a federation meta-manager (--head must be
//                              the meta) which cluster owns the path
//     fed stat [--json]        federation-wide metrics merged across every
//                              member cluster by the meta
#include <cstdio>
#include <future>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "client/sync_client.h"
#include "net/tcp_fabric.h"
#include "sched/thread_executor.h"

using namespace scalla;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: scalla_cli [--head N] [--base-port N] [--addr N] [--cnsd N]\n"
               "                  put|get|stat|rm|cksum|prepare|ls|stats|purge|cachestat"
               "|drain|restore|fed <args>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  client::ClientConfig cfg;
  cfg.addr = 999;
  cfg.head = 1;
  std::uint16_t basePort = 10940;

  int i = 1;
  for (; i + 1 < argc && argv[i][0] == '-'; i += 2) {
    if (std::strcmp(argv[i], "--head") == 0) {
      cfg.head = static_cast<net::NodeAddr>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--base-port") == 0) {
      basePort = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--addr") == 0) {
      cfg.addr = static_cast<net::NodeAddr>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--cnsd") == 0) {
      cfg.cnsd = static_cast<net::NodeAddr>(std::atoi(argv[i + 1]));
    } else {
      return Usage();
    }
  }
  if (i >= argc) return Usage();
  const std::string command = argv[i++];

  net::TcpFabric fabric(basePort);
  sched::ThreadExecutor executor;
  client::SyncClient client(cfg, executor, fabric, std::chrono::seconds(30));
  if (!fabric.Register(cfg.addr, &client.async(), &executor)) {
    std::fprintf(stderr, "cannot bind client port %u\n", basePort + cfg.addr);
    return 1;
  }

  if (command == "put" && i + 1 < argc) {
    const Result<void> put = client.PutFile(argv[i], argv[i + 1]);
    std::printf("put %s: %s\n", argv[i], put ? "ok" : put.error().message.c_str());
    return put ? 0 : 1;
  }
  if (command == "get" && i < argc) {
    const Result<std::string> data = client.GetFile(argv[i]);
    if (!data) {
      std::fprintf(stderr, "get: %s\n", data.error().message.c_str());
      return 1;
    }
    std::fwrite(data.value().data(), 1, data.value().size(), stdout);
    std::printf("\n");
    return 0;
  }
  if (command == "stat" && i < argc) {
    const Result<std::uint64_t> size = client.Stat(argv[i]);
    if (!size) {
      std::fprintf(stderr, "stat: %s\n", size.error().message.c_str());
      return 1;
    }
    std::printf("%s: %llu bytes\n", argv[i],
                static_cast<unsigned long long>(size.value()));
    return 0;
  }
  if (command == "rm" && i < argc) {
    const Result<void> rm = client.Unlink(argv[i]);
    std::printf("rm %s: %s\n", argv[i], rm ? "ok" : rm.error().message.c_str());
    return rm ? 0 : 1;
  }
  if (command == "cksum" && i < argc) {
    const Result<std::uint32_t> crc = client.Checksum(argv[i]);
    if (!crc) {
      std::fprintf(stderr, "cksum: %s\n", crc.error().message.c_str());
      return 1;
    }
    std::printf("%s: crc32 %08X\n", argv[i], crc.value());
    return 0;
  }
  if (command == "prepare" && i < argc) {
    std::vector<std::string> paths;
    for (; i < argc; ++i) paths.emplace_back(argv[i]);
    const Result<void> prep = client.Prepare(paths, cms::AccessMode::kRead);
    std::printf("prepare %zu file(s): %s\n", paths.size(),
                prep ? "ok" : prep.error().message.c_str());
    return prep ? 0 : 1;
  }
  if (command == "stats") {
    const bool json = i < argc && std::strcmp(argv[i], "--json") == 0;
    const auto stats = client.Stats();
    if (!stats) {
      std::fprintf(stderr, "stats: %s\n", stats.error().message.c_str());
      return 1;
    }
    if (json) {
      std::printf("{\"nodes\":%u,\"metrics\":%s}\n", stats.value().nodeCount,
                  stats.value().snapshot.ToJson().c_str());
    } else {
      std::printf("cluster: %u node(s)\n%s", stats.value().nodeCount,
                  stats.value().snapshot.ToText().c_str());
    }
    return 0;
  }
  if (command == "purge" || command == "cachestat") {
    proto::PcacheAdminOp op = proto::PcacheAdminOp::kStat;
    std::string path;
    if (command == "purge") {
      if (i < argc) {
        op = proto::PcacheAdminOp::kPurgePath;
        path = argv[i];
      } else {
        op = proto::PcacheAdminOp::kPurgeAll;
      }
    }
    const auto resp = client.CacheAdmin(op, path);
    if (!resp) {
      std::fprintf(stderr, "%s: %s\n", command.c_str(), resp.error().message.c_str());
      return 1;
    }
    if (command == "purge") {
      std::printf("purged %llu block(s); ",
                  static_cast<unsigned long long>(resp.value().blocksPurged));
    }
    std::printf("cache: %llu block(s), %llu bytes "
                "(dram %llu blk / %llu B; disk %llu blk / %llu B)\n",
                static_cast<unsigned long long>(resp.value().blockCount),
                static_cast<unsigned long long>(resp.value().usedBytes),
                static_cast<unsigned long long>(resp.value().dramBlockCount),
                static_cast<unsigned long long>(resp.value().dramUsedBytes),
                static_cast<unsigned long long>(resp.value().diskBlockCount),
                static_cast<unsigned long long>(resp.value().diskUsedBytes));
    return 0;
  }
  if ((command == "drain" || command == "restore") && i < argc) {
    const bool restore = command == "restore";
    const auto resp = client.Drain(argv[i], restore);
    if (!resp) {
      std::fprintf(stderr, "%s: %s\n", command.c_str(), resp.error().message.c_str());
      return 1;
    }
    std::printf("%s %s: %s\n", command.c_str(), argv[i],
                resp.value().applied ? "applied"
                                     : "forwarded to supervisors (not a direct child)");
    return 0;
  }
  if (command == "fed" && i < argc) {
    const std::string sub = argv[i++];
    if (sub == "stat") {
      // Same StatsQuery as `stats`: pointed at a meta-manager it fans to
      // every subscribed cluster head and folds the replies.
      const bool json = i < argc && std::strcmp(argv[i], "--json") == 0;
      const auto stats = client.Stats();
      if (!stats) {
        std::fprintf(stderr, "fed stat: %s\n", stats.error().message.c_str());
        return 1;
      }
      if (json) {
        std::printf("{\"nodes\":%u,\"metrics\":%s}\n", stats.value().nodeCount,
                    stats.value().snapshot.ToJson().c_str());
      } else {
        std::printf("federation: %u node(s) across %lld cluster(s)\n%s",
                    stats.value().nodeCount,
                    static_cast<long long>(stats.value().snapshot.Gauge("fed.clusters")),
                    stats.value().snapshot.ToText().c_str());
      }
      return 0;
    }
    if (sub == "locate" && i < argc) {
      // Raw FedLocate against the meta from a scratch endpoint (the xrd
      // client never sees FedRedirect, so it cannot issue this itself).
      struct LocateSink : net::MessageSink {
        std::promise<proto::FedRedirect> prom;
        void OnMessage(net::NodeAddr, proto::Message m) override {
          if (const auto* r = std::get_if<proto::FedRedirect>(&m)) prom.set_value(*r);
        }
        void OnPeerDown(net::NodeAddr) override {}
      } sink;
      auto fut = sink.prom.get_future();
      const net::NodeAddr addr = cfg.addr + 1;
      if (!fabric.Register(addr, &sink, &executor)) {
        std::fprintf(stderr, "cannot bind client port %u\n", basePort + addr);
        return 1;
      }
      proto::FedLocate req;
      req.reqId = 1;
      req.path = argv[i];
      req.mode = static_cast<std::uint8_t>(cms::AccessMode::kRead);
      fabric.Send(addr, cfg.head, req);
      if (fut.wait_for(std::chrono::seconds(10)) != std::future_status::ready) {
        std::fprintf(stderr, "fed locate: timeout\n");
        return 1;
      }
      const proto::FedRedirect resp = fut.get();
      if (resp.status == proto::XrdStatus::kRedirect) {
        std::printf("%s -> cluster '%s' (id %d), head addr %u\n", argv[i],
                    resp.cluster.c_str(), resp.clusterId, resp.headAddr);
        return 0;
      }
      if (resp.status == proto::XrdStatus::kWait) {
        std::printf("%s: wait %lld ms (meta still querying cluster heads)\n",
                    argv[i],
                    static_cast<long long>(resp.waitNs / 1'000'000));
        return 0;
      }
      std::fprintf(stderr, "fed locate %s: %s\n", argv[i], XrdErrName(resp.err));
      return 1;
    }
    return Usage();
  }
  if (command == "ls" && i < argc) {
    if (cfg.cnsd == 0) {
      std::fprintf(stderr, "ls needs --cnsd N (managers keep a flat namespace;\n"
                           "global listing is served by the namespace daemon)\n");
      return 2;
    }
    std::promise<std::pair<proto::XrdErr, std::vector<std::string>>> prom;
    auto fut = prom.get_future();
    executor.Post([&client, &prom, prefix = std::string(argv[i])] {
      client.async().List(prefix, [&prom](proto::XrdErr err,
                                          std::vector<std::string> names) {
        prom.set_value({err, std::move(names)});
      });
    });
    if (fut.wait_for(std::chrono::seconds(10)) != std::future_status::ready) {
      std::fprintf(stderr, "ls: timeout\n");
      return 1;
    }
    const auto [err, names] = fut.get();
    if (err != proto::XrdErr::kNone) {
      std::fprintf(stderr, "ls: error %d\n", static_cast<int>(err));
      return 1;
    }
    for (const auto& name : names) std::printf("%s\n", name.c_str());
    return 0;
  }
  return Usage();
}

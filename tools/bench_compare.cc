// bench_compare <baseline.json> <current.jsonl>
//
// The enforced half of the perf trajectory: reads the committed baseline
// (bench/baseline.json) and a collected bench run (one JSON object per
// line, as written by scripts/bench.sh), compares every tracked metric
// under its per-metric tolerance, and exits non-zero on any regression.
// Wired into scripts/verify.sh as the bench-gate stage.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/bench_gate.h"

namespace {

bool ReadFile(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: bench_compare <baseline.json> <current.jsonl>\n");
    return 2;
  }
  std::string baselineText, currentText;
  if (!ReadFile(argv[1], baselineText)) {
    std::fprintf(stderr, "bench_compare: cannot read baseline '%s'\n", argv[1]);
    return 2;
  }
  if (!ReadFile(argv[2], currentText)) {
    std::fprintf(stderr, "bench_compare: cannot read current '%s'\n", argv[2]);
    return 2;
  }

  auto baseline = scalla::util::Json::Parse(baselineText);
  if (!baseline) {
    std::fprintf(stderr, "bench_compare: baseline: %s\n", baseline.error().message.c_str());
    return 2;
  }
  auto lines = scalla::util::ParseBenchLines(currentText);
  if (!lines) {
    std::fprintf(stderr, "bench_compare: current: %s\n", lines.error().message.c_str());
    return 2;
  }

  auto report = scalla::util::CompareBenchMetrics(baseline.value(), lines.value());
  if (!report) {
    std::fprintf(stderr, "bench_compare: %s\n", report.error().message.c_str());
    return 2;
  }
  std::fputs(report.value().ToText().c_str(), stdout);
  return report.value().ok() ? 0 : 1;
}

// Tests for head-node replication (paper sections II-B1/II-B2: "the
// logical head node (which can be one of many)"; "every node in the
// cluster can be replicated to provide an arbitrary level of
// reliability"): subordinates log into all managers, each manager keeps
// an independent location view, and clients fail over between heads.
#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace scalla::sim {
namespace {

using cms::AccessMode;

ClusterSpec ReplicatedSpec(int servers, int managers) {
  ClusterSpec spec;
  spec.servers = servers;
  spec.managers = managers;
  spec.cms.deadline = std::chrono::milliseconds(600);
  return spec;
}

TEST(ReplicationTest, SubordinatesLogIntoEveryManager) {
  SimCluster cluster(ReplicatedSpec(6, 3));
  cluster.Start();
  ASSERT_EQ(cluster.ManagerCount(), 3u);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(cluster.manager(m).membership().MemberCount(), 6u) << m;
    EXPECT_EQ(cluster.manager(m).membership().OnlineSet().count(), 6) << m;
  }
  for (std::size_t s = 0; s < 6; ++s) {
    EXPECT_TRUE(cluster.server(s).LoggedIn()) << s;
    EXPECT_EQ(cluster.server(s).Parents().size(), 3u);
  }
}

TEST(ReplicationTest, AnyManagerResolves) {
  SimCluster cluster(ReplicatedSpec(4, 2));
  cluster.Start();
  cluster.PlaceFile(2, "/store/f", "x");

  // Ask each manager directly by pointing a dedicated client at it.
  for (std::size_t m = 0; m < 2; ++m) {
    client::ClientConfig cc;
    cc.addr = 800 + static_cast<net::NodeAddr>(m);
    cc.head = cluster.manager(m).config().addr;
    client::ScallaClient probe(cc, cluster.engine(), cluster.fabric());
    cluster.fabric().Register(cc.addr, &probe);
    const auto open = cluster.OpenAndWait(probe, "/store/f", AccessMode::kRead, false);
    EXPECT_EQ(open.err, proto::XrdErr::kNone) << m;
    EXPECT_EQ(open.file.node, cluster.server(2).config().addr) << m;
  }
}

TEST(ReplicationTest, ManagersKeepIndependentCaches) {
  SimCluster cluster(ReplicatedSpec(4, 2));
  cluster.Start();
  cluster.PlaceFile(1, "/store/f", "x");
  auto& client = cluster.NewClient();
  cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);

  // Only the head actually consulted caches the location.
  EXPECT_EQ(cluster.manager(0).cache().GetStats().creates, 1u);
  EXPECT_EQ(cluster.manager(1).cache().GetStats().creates, 0u);
}

TEST(ReplicationTest, NewFileNotificationReachesAllManagers) {
  SimCluster cluster(ReplicatedSpec(4, 3));
  cluster.Start();
  auto& client = cluster.NewClient();
  ASSERT_TRUE(cluster.PutFile(client, "/store/new", "data").ok());
  cluster.engine().RunUntilIdle();
  // Every manager heard the unsolicited newfile CmsHave. Managers that
  // had no cached object simply ignored it; what matters is that a
  // subsequent locate at ANY manager succeeds fast (fresh flood finds it).
  for (std::size_t m = 0; m < 3; ++m) {
    client::ClientConfig cc;
    cc.addr = 900 + static_cast<net::NodeAddr>(m);
    cc.head = cluster.manager(m).config().addr;
    client::ScallaClient probe(cc, cluster.engine(), cluster.fabric());
    cluster.fabric().Register(cc.addr, &probe);
    const auto open = cluster.OpenAndWait(probe, "/store/new", AccessMode::kRead, false);
    EXPECT_EQ(open.err, proto::XrdErr::kNone) << m;
  }
}

TEST(ReplicationTest, ClientFailsOverWhenHeadDies) {
  SimCluster cluster(ReplicatedSpec(4, 2));
  cluster.Start();
  cluster.PlaceFile(3, "/store/f", "x");
  auto& client = cluster.NewClient();

  // Normal operation via manager 0.
  auto open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(client.CurrentHead(), cluster.manager(0).config().addr);

  // Manager 0 dies; the next open bounces, rotates to manager 1, and
  // succeeds there.
  cluster.CrashManager(0);
  open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_GE(open.recoveries, 1);
  EXPECT_EQ(client.CurrentHead(), cluster.manager(1).config().addr);
  EXPECT_EQ(open.file.node, cluster.server(3).config().addr);

  // And stays on the surviving head for subsequent traffic.
  open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(open.recoveries, 0);
}

TEST(ReplicationTest, SingleHeadClientFailsWithoutAlternate) {
  SimCluster cluster(ReplicatedSpec(2, 1));
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", "x");
  auto& client = cluster.NewClient();
  cluster.CrashManager(0);
  const auto open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kIo);
}

TEST(ReplicationTest, FailoverUnderSupervisorTree) {
  ClusterSpec spec = ReplicatedSpec(8, 2);
  spec.fanout = 4;  // supervisors between heads and leaves
  SimCluster cluster(spec);
  cluster.Start();
  ASSERT_GE(cluster.SupervisorCount(), 1u);
  // Top-level supervisors log into both managers.
  EXPECT_EQ(cluster.supervisor(0).Parents().size(), 2u);

  cluster.PlaceFile(5, "/store/deep", "x");
  auto& client = cluster.NewClient();
  auto open = cluster.OpenAndWait(client, "/store/deep", AccessMode::kRead, false);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);

  cluster.CrashManager(0);
  open = cluster.OpenAndWait(client, "/store/deep", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(open.file.node, cluster.server(5).config().addr);
}

TEST(ReplicationTest, HeadReturnsAndServesAgain) {
  SimCluster cluster(ReplicatedSpec(3, 2));
  cluster.Start();
  cluster.PlaceFile(1, "/store/f", "x");
  auto& client = cluster.NewClient();
  cluster.CrashManager(0);
  auto open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);

  cluster.RestoreManager(0);
  cluster.engine().RunFor(std::chrono::seconds(5));
  // A fresh client starting at manager 0 works again.
  auto& fresh = cluster.NewClient();
  open = cluster.OpenAndWait(fresh, "/store/f", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
}

// Parameterized sweep: every (managers, servers) combination keeps the
// basic invariant that all managers see all servers and any head serves.
class ReplicationSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReplicationSweep, AllHeadsConsistent) {
  const int managers = std::get<0>(GetParam());
  const int servers = std::get<1>(GetParam());
  SimCluster cluster(ReplicatedSpec(servers, managers));
  cluster.Start();
  for (int m = 0; m < managers; ++m) {
    EXPECT_EQ(cluster.manager(static_cast<std::size_t>(m)).membership().MemberCount(),
              static_cast<std::size_t>(std::min(servers, kMaxServersPerSet)));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReplicationSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3, 16)));

}  // namespace
}  // namespace scalla::sim

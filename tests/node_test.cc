// Direct message-level tests of ScallaNode role behaviour, including the
// branches cluster-level tests do not reach: misdirected requests, unknown
// peers, export-change re-logins, and the set-full login redirect that
// grows the 64-ary tree past 64 servers.
#include <gtest/gtest.h>

#include "client/scalla_client.h"
#include "oss/mem_oss.h"
#include "oss/mss_oss.h"
#include "sim/event_engine.h"
#include "sim/sim_fabric.h"
#include "xrd/scalla_node.h"

namespace scalla::xrd {
namespace {

using cms::AccessMode;

// Captures everything sent to one address.
struct Probe : net::MessageSink {
  std::vector<std::pair<net::NodeAddr, proto::Message>> received;
  void OnMessage(net::NodeAddr from, proto::Message m) override {
    received.emplace_back(from, std::move(m));
  }
  template <typename T>
  const T* Last() const {
    for (auto it = received.rbegin(); it != received.rend(); ++it) {
      if (const T* m = std::get_if<T>(&it->second)) return m;
    }
    return nullptr;
  }
};

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() : fabric_(engine_, sim::LatencyModel{}) {}

  NodeConfig BaseConfig(NodeRole role, net::NodeAddr addr, net::NodeAddr parent) {
    NodeConfig cfg;
    cfg.role = role;
    cfg.addr = addr;
    cfg.parent = parent;
    cfg.name = "node" + std::to_string(addr);
    cfg.exports = {"/store"};
    cfg.cms.deadline = std::chrono::milliseconds(500);
    return cfg;
  }

  ScallaNode& AddNode(const NodeConfig& cfg, oss::Oss* storage) {
    nodes_.push_back(std::make_unique<ScallaNode>(cfg, engine_, fabric_, storage));
    fabric_.Register(cfg.addr, nodes_.back().get());
    return *nodes_.back();
  }

  oss::MemOss& AddStorage() {
    storages_.push_back(std::make_unique<oss::MemOss>(engine_.clock()));
    return *storages_.back();
  }

  sim::EventEngine engine_;
  sim::SimFabric fabric_;
  std::vector<std::unique_ptr<ScallaNode>> nodes_;
  std::vector<std::unique_ptr<oss::MemOss>> storages_;
};

TEST_F(NodeTest, LeafRejectsLoginAttempts) {
  auto& leaf = AddNode(BaseConfig(NodeRole::kServer, 2, 1), &AddStorage());
  (void)leaf;
  Probe probe;
  fabric_.Register(50, &probe);
  fabric_.Send(50, 2, proto::CmsLogin{"wanderer", {"/store"}, true, false});
  engine_.RunUntilIdle();
  const auto* resp = probe.Last<proto::CmsLoginResp>();
  ASSERT_NE(resp, nullptr);
  EXPECT_FALSE(resp->ok);
  EXPECT_NE(resp->error.find("not a cluster head"), std::string::npos);
}

TEST_F(NodeTest, HeadRejectsFileIo) {
  auto& mgr = AddNode(BaseConfig(NodeRole::kManager, 1, 0), nullptr);
  (void)mgr;
  Probe probe;
  fabric_.Register(50, &probe);
  fabric_.Send(50, 1, proto::XrdRead{1, 99, 0, 16});
  fabric_.Send(50, 1, proto::XrdWrite{2, 99, 0, "x"});
  engine_.RunUntilIdle();
  ASSERT_NE(probe.Last<proto::XrdReadResp>(), nullptr);
  EXPECT_EQ(probe.Last<proto::XrdReadResp>()->err, proto::XrdErr::kInvalid);
  EXPECT_EQ(probe.Last<proto::XrdWriteResp>()->err, proto::XrdErr::kInvalid);
}

TEST_F(NodeTest, HaveFromUnknownPeerIgnored) {
  auto& mgr = AddNode(BaseConfig(NodeRole::kManager, 1, 0), nullptr);
  Probe probe;
  fabric_.Register(50, &probe);
  // Unsolicited CmsHave from an address that never logged in.
  fabric_.Send(50, 1, proto::CmsHave{"/store/x", 1, false, true, false});
  engine_.RunUntilIdle();
  EXPECT_EQ(mgr.cache().GetStats().lookups, 0u);
}

TEST_F(NodeTest, ReloginWithNewExportsGetsNewIdentity) {
  auto& mgr = AddNode(BaseConfig(NodeRole::kManager, 1, 0), nullptr);
  Probe server;
  fabric_.Register(10, &server);
  fabric_.Send(10, 1, proto::CmsLogin{"s", {"/store"}, true, false});
  engine_.RunUntilIdle();
  const auto slot1 = server.Last<proto::CmsLoginResp>()->slot;
  const std::uint64_t epoch = mgr.membership().corrections().Epoch();

  fabric_.Send(10, 1, proto::CmsLogin{"s", {"/elsewhere"}, true, false});
  engine_.RunUntilIdle();
  const auto* resp2 = server.Last<proto::CmsLoginResp>();
  ASSERT_TRUE(resp2->ok);
  // New identity: the correction epoch moved even if the slot was reused.
  EXPECT_GT(mgr.membership().corrections().Epoch(), epoch);
  EXPECT_TRUE(mgr.membership().EligibleFor("/store/x").empty());
  EXPECT_FALSE(mgr.membership().EligibleFor("/elsewhere/x").empty());
  EXPECT_EQ(mgr.SlotOfAddr(10), resp2->slot);
  (void)slot1;
}

TEST_F(NodeTest, QueryModeWriteSkipsReadOnlyLeaf) {
  NodeConfig leafCfg = BaseConfig(NodeRole::kServer, 2, 1);
  leafCfg.allowWrite = false;
  auto& storage = AddStorage();
  storage.Put("/store/f", "x");
  AddNode(leafCfg, &storage);
  Probe parent;
  fabric_.Register(1, &parent);

  fabric_.Send(1, 2, proto::CmsQuery{"/store/f", 7, /*mode=*/1, false});  // write
  engine_.RunUntilIdle();
  EXPECT_EQ(parent.Last<proto::CmsHave>(), nullptr);  // silent: cannot serve writes

  fabric_.Send(1, 2, proto::CmsQuery{"/store/f", 7, /*mode=*/0, false});  // read
  engine_.RunUntilIdle();
  const auto* have = parent.Last<proto::CmsHave>();
  ASSERT_NE(have, nullptr);
  EXPECT_FALSE(have->allowWrite);
}

TEST_F(NodeTest, SetFullLoginRedirectsToSupervisor) {
  auto& mgr = AddNode(BaseConfig(NodeRole::kManager, 1, 0), nullptr);

  // A supervisor subordinate occupies one slot...
  NodeConfig supCfg = BaseConfig(NodeRole::kSupervisor, 2, 1);
  supCfg.name = "sup0";
  auto& sup = AddNode(supCfg, nullptr);
  sup.Start();
  engine_.RunUntilIdle();

  // ...and 63 direct servers fill the rest of the manager's set.
  std::vector<ScallaNode*> leaves;
  for (int i = 0; i < 63; ++i) {
    NodeConfig cfg = BaseConfig(NodeRole::kServer, static_cast<net::NodeAddr>(100 + i), 1);
    cfg.name = "direct" + std::to_string(i);
    leaves.push_back(&AddNode(cfg, &AddStorage()));
    leaves.back()->Start();
  }
  engine_.RunUntilIdle();
  ASSERT_EQ(mgr.membership().MemberCount(), 64u);

  // Server #65 cannot fit: the manager bounces it to the supervisor, and
  // it becomes part of the supervisor's subtree.
  NodeConfig extraCfg = BaseConfig(NodeRole::kServer, 500, 1);
  extraCfg.name = "overflow";
  auto& extraStorage = AddStorage();
  extraStorage.Put("/store/deep-file", "overflow data");
  auto& extra = AddNode(extraCfg, &extraStorage);
  extra.Start();
  engine_.RunUntilIdle();

  EXPECT_EQ(mgr.membership().MemberCount(), 64u);  // unchanged
  EXPECT_EQ(sup.membership().MemberCount(), 1u);   // adopted the newcomer
  EXPECT_TRUE(extra.LoggedIn());
  EXPECT_TRUE(extra.LoggedInTo(2));

  // The file on the overflow server resolves through the full tree:
  // manager -> supervisor (compressed response) -> leaf.
  client::ClientConfig cc;
  cc.addr = 900;
  cc.head = 1;
  client::ScallaClient client(cc, engine_, fabric_);
  fabric_.Register(900, &client);
  std::optional<client::OpenOutcome> out;
  client.Open("/store/deep-file", AccessMode::kRead, false,
              [&out](const client::OpenOutcome& o) { out = o; });
  engine_.RunUntilPredicate([&out] { return out.has_value(); },
                            engine_.Now() + std::chrono::seconds(30));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->err, proto::XrdErr::kNone);
  EXPECT_EQ(out->file.node, 500u);
  EXPECT_EQ(out->redirects, 2);  // manager -> supervisor -> overflow leaf
}

TEST_F(NodeTest, SetFullWithoutSupervisorStaysRejected) {
  auto& mgr = AddNode(BaseConfig(NodeRole::kManager, 1, 0), nullptr);
  for (int i = 0; i < 64; ++i) {
    NodeConfig cfg = BaseConfig(NodeRole::kServer, static_cast<net::NodeAddr>(100 + i), 1);
    cfg.name = "s" + std::to_string(i);
    AddNode(cfg, &AddStorage()).Start();
  }
  engine_.RunUntilIdle();
  ASSERT_EQ(mgr.membership().MemberCount(), 64u);

  Probe probe;
  fabric_.Register(700, &probe);
  fabric_.Send(700, 1, proto::CmsLogin{"later", {"/store"}, true, false});
  engine_.RunUntilIdle();
  const auto* resp = probe.Last<proto::CmsLoginResp>();
  ASSERT_NE(resp, nullptr);
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->redirect, 0u);  // nowhere to grow
}

TEST_F(NodeTest, PrepareOnLeafKicksStages) {
  oss::MssOss* mss = nullptr;
  {
    auto storage = std::make_unique<oss::MssOss>(engine_.clock(), oss::MssConfig{});
    mss = storage.get();
    storages_.push_back(std::move(storage));
  }
  auto& leaf = AddNode(BaseConfig(NodeRole::kServer, 2, 1), mss);
  (void)leaf;
  mss->PutInMss("/store/t1", 10);
  mss->PutInMss("/store/t2", 10);
  Probe probe;
  fabric_.Register(50, &probe);
  fabric_.Send(50, 2, proto::XrdPrepare{9, {"/store/t1", "/store/t2", "/store/no"}, 0});
  engine_.RunUntilIdle();
  ASSERT_NE(probe.Last<proto::XrdPrepareResp>(), nullptr);
  EXPECT_EQ(mss->StagingCount(), 2u);
}

TEST_F(NodeTest, DescribeStatusMentionsKeyCounters) {
  auto& mgr = AddNode(BaseConfig(NodeRole::kManager, 1, 0), nullptr);
  auto& storage = AddStorage();
  storage.Put("/store/f", "x");
  auto& leaf = AddNode(BaseConfig(NodeRole::kServer, 2, 1), &storage);
  leaf.Start();
  engine_.RunUntilIdle();

  const std::string status = mgr.DescribeStatus();
  EXPECT_NE(status.find("manager"), std::string::npos);
  EXPECT_NE(status.find("members=1"), std::string::npos);
  EXPECT_NE(status.find("cache:"), std::string::npos);
  EXPECT_NE(status.find("resolver:"), std::string::npos);
  EXPECT_NE(leaf.DescribeStatus().find("server"), std::string::npos);
}

TEST_F(NodeTest, StatsCountersTrackActivity) {
  auto& mgr = AddNode(BaseConfig(NodeRole::kManager, 1, 0), nullptr);
  auto& storage = AddStorage();
  storage.Put("/store/f", "data");
  auto& leaf = AddNode(BaseConfig(NodeRole::kServer, 2, 1), &storage);
  leaf.Start();
  engine_.RunUntilIdle();

  client::ClientConfig cc;
  cc.addr = 900;
  cc.head = 1;
  client::ScallaClient client(cc, engine_, fabric_);
  fabric_.Register(900, &client);
  std::optional<client::OpenOutcome> out;
  client.Open("/store/f", AccessMode::kRead, false,
              [&out](const client::OpenOutcome& o) { out = o; });
  engine_.RunUntilPredicate([&out] { return out.has_value(); },
                            engine_.Now() + std::chrono::seconds(10));
  ASSERT_TRUE(out.has_value());

  EXPECT_EQ(leaf.GetStats().queriesAnswered, 1u);
  EXPECT_EQ(leaf.GetStats().opensServed, 1u);
  EXPECT_GE(mgr.GetStats().redirectsIssued, 1u);
}

}  // namespace
}  // namespace scalla::xrd

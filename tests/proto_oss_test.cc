// Wire-format round-trip tests for every message type, decoder hardening,
// and storage-backend (oss) behaviour including MSS staging.
#include <gtest/gtest.h>

#include <filesystem>

#include "oss/local_oss.h"
#include "oss/mem_oss.h"
#include "oss/mss_oss.h"
#include "proto/wire.h"
#include "util/clock.h"
#include "util/rng.h"

namespace scalla {
namespace {

using proto::Decode;
using proto::Encode;
using proto::Message;

template <typename T>
T RoundTrip(const T& in) {
  const auto decoded = Decode(Encode(Message(in)));
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*decoded));
  return std::get<T>(*decoded);
}

TEST(WireTest, CmsMessagesRoundTrip) {
  proto::CmsLogin login;
  login.name = "server07:1094";
  login.exports = {"/store", "/scratch"};
  login.allowWrite = false;
  login.isSupervisor = true;
  const auto login2 = RoundTrip(login);
  EXPECT_EQ(login2.name, login.name);
  EXPECT_EQ(login2.exports, login.exports);
  EXPECT_EQ(login2.allowWrite, false);
  EXPECT_EQ(login2.isSupervisor, true);

  proto::CmsLoginResp resp{true, 42, ""};
  EXPECT_EQ(RoundTrip(resp).slot, 42);

  proto::CmsQuery query{"/store/f", 0xDEADBEEF, 1, true};
  const auto query2 = RoundTrip(query);
  EXPECT_EQ(query2.hash, 0xDEADBEEFu);
  EXPECT_EQ(query2.mode, 1);
  EXPECT_TRUE(query2.refresh);

  proto::CmsHave have{"/store/f", 7, true, false, true};
  const auto have2 = RoundTrip(have);
  EXPECT_TRUE(have2.pending);
  EXPECT_FALSE(have2.allowWrite);
  EXPECT_TRUE(have2.newfile);

  RoundTrip(proto::CmsNoHave{"/store/f", 9});
  RoundTrip(proto::CmsGone{"/store/f"});
  EXPECT_EQ(RoundTrip(proto::CmsLoad{5, 123456789}).freeSpace, 123456789u);
}

TEST(WireTest, XrdMessagesRoundTrip) {
  proto::XrdOpen open;
  open.reqId = 99;
  open.path = "/store/data.root";
  open.mode = 1;
  open.create = true;
  open.refresh = true;
  open.avoidNode = 17;
  const auto open2 = RoundTrip(open);
  EXPECT_EQ(open2.reqId, 99u);
  EXPECT_EQ(open2.avoidNode, 17u);

  proto::XrdOpenResp openResp;
  openResp.reqId = 99;
  openResp.status = proto::XrdStatus::kRedirect;
  openResp.err = proto::XrdErr::kStale;
  openResp.redirectNode = 3;
  openResp.waitNs = -1;
  openResp.fileHandle = 0xFFFFFFFFFFFFFFFFull;
  openResp.message = "go there";
  const auto openResp2 = RoundTrip(openResp);
  EXPECT_EQ(openResp2.status, proto::XrdStatus::kRedirect);
  EXPECT_EQ(openResp2.err, proto::XrdErr::kStale);
  EXPECT_EQ(openResp2.fileHandle, 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(openResp2.waitNs, -1);

  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  proto::XrdReadResp readResp{5, proto::XrdErr::kNone, binary};
  EXPECT_EQ(RoundTrip(readResp).data, binary);

  RoundTrip(proto::XrdRead{1, 2, 3, 4});
  RoundTrip(proto::XrdWrite{1, 2, 3, "payload"});
  RoundTrip(proto::XrdWriteResp{1, proto::XrdErr::kNoSpace, 7});
  RoundTrip(proto::XrdClose{1, 2});
  RoundTrip(proto::XrdCloseResp{1, proto::XrdErr::kInvalid});
  RoundTrip(proto::XrdStat{1, "/p"});
  RoundTrip(proto::XrdStatResp{1, proto::XrdStatus::kWait, proto::XrdErr::kNone, 0, 55, 9});
  RoundTrip(proto::XrdUnlink{1, "/p"});
  RoundTrip(proto::XrdUnlinkResp{1, proto::XrdStatus::kOk, proto::XrdErr::kNone, 0, 0});
  proto::XrdPrepare prep{8, {"/a", "/b", "/c"}, 0};
  EXPECT_EQ(RoundTrip(prep).paths.size(), 3u);
  RoundTrip(proto::XrdPrepareResp{8, proto::XrdErr::kNone});
  RoundTrip(proto::CnsList{4, "/store"});
  proto::CnsListResp listResp{4, proto::XrdErr::kNone, {"/store/a", "/store/b"}};
  EXPECT_EQ(RoundTrip(listResp).names.size(), 2u);

  proto::XrdReadV readv{3, 77, {{0, 16}, {1 << 20, 4096}, {42, 0}}};
  const auto readv2 = RoundTrip(readv);
  ASSERT_EQ(readv2.segments.size(), 3u);
  EXPECT_EQ(readv2.segments[1].offset, 1u << 20);
  EXPECT_EQ(readv2.segments[1].length, 4096u);
  proto::XrdReadVResp readvResp{3, proto::XrdErr::kNone, {"aa", "", "b"}};
  EXPECT_EQ(RoundTrip(readvResp).chunks.size(), 3u);

  RoundTrip(proto::XrdChecksum{5, "/store/f"});
  proto::XrdChecksumResp ckResp{5, proto::XrdStatus::kOk, proto::XrdErr::kNone, 0, 0,
                                0xDEADBEEF};
  EXPECT_EQ(RoundTrip(ckResp).crc32, 0xDEADBEEFu);
}

TEST(WireTest, PcacheAdminRoundTrip) {
  proto::PcacheAdmin admin{11, proto::PcacheAdminOp::kPurgePath, "/store/old"};
  const auto admin2 = RoundTrip(admin);
  EXPECT_EQ(admin2.reqId, 11u);
  EXPECT_EQ(admin2.op, proto::PcacheAdminOp::kPurgePath);
  EXPECT_EQ(admin2.path, "/store/old");

  proto::PcacheAdminResp resp{11, proto::XrdErr::kNone, 7, 1 << 20, 16};
  const auto resp2 = RoundTrip(resp);
  EXPECT_EQ(resp2.blocksPurged, 7u);
  EXPECT_EQ(resp2.usedBytes, 1u << 20);
  EXPECT_EQ(resp2.blockCount, 16u);
  EXPECT_EQ(resp2.err, proto::XrdErr::kNone);
}

TEST(WireTest, DecodeRejectsMalformedInput) {
  EXPECT_FALSE(Decode("").has_value());
  EXPECT_FALSE(Decode(std::string(1, '\xFF')).has_value());  // unknown type

  // Truncations of a valid frame must never decode (nor crash).
  proto::XrdOpen open;
  open.path = "/store/x";
  const std::string full = Encode(Message(open));
  for (std::size_t len = 1; len < full.size(); ++len) {
    EXPECT_FALSE(Decode(full.substr(0, len)).has_value()) << len;
  }
}

TEST(WireTest, DecodeRejectsOversizedStringClaims) {
  // Type 0 (CmsLogin) with a name length claiming 4GB.
  std::string evil;
  evil.push_back('\0');
  for (int i = 0; i < 4; ++i) evil.push_back('\xFF');
  EXPECT_FALSE(Decode(evil).has_value());
}

TEST(WireTest, FuzzedBytesNeverCrash) {
  util::Rng rng(0xF022);
  for (int round = 0; round < 2000; ++round) {
    std::string bytes(rng.NextBelow(120), '\0');
    for (auto& b : bytes) b = static_cast<char>(rng.NextBelow(256));
    (void)Decode(bytes);  // must not crash or hang; value irrelevant
  }
}

// ------------------------------------------------------------------ oss

TEST(MemOssTest, CreateWriteReadStatUnlink) {
  util::ManualClock clock;
  oss::MemOss fs(clock);
  EXPECT_EQ(fs.StateOf("/f"), oss::FileState::kAbsent);
  EXPECT_TRUE(fs.Create("/f"));
  EXPECT_EQ(fs.Create("/f").code(), proto::XrdErr::kExists);
  EXPECT_TRUE(fs.Write("/f", 0, "hello "));
  EXPECT_TRUE(fs.Write("/f", 6, "world"));

  Result<std::string> data = fs.Read("/f", 0, 100);
  ASSERT_TRUE(data);
  EXPECT_EQ(data.value(), "hello world");
  data = fs.Read("/f", 6, 5);
  ASSERT_TRUE(data);
  EXPECT_EQ(data.value(), "world");
  data = fs.Read("/f", 100, 5);
  ASSERT_TRUE(data);
  EXPECT_TRUE(data.value().empty());  // past EOF

  const auto info = fs.Stat("/f");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 11u);

  EXPECT_TRUE(fs.Unlink("/f"));
  EXPECT_EQ(fs.Unlink("/f").code(), proto::XrdErr::kNotFound);
  EXPECT_EQ(fs.Read("/f", 0, 1).code(), proto::XrdErr::kNotFound);
}

TEST(MemOssTest, SparseWriteZeroFills) {
  util::ManualClock clock;
  oss::MemOss fs(clock);
  (void)fs.Create("/f");
  (void)fs.Write("/f", 4, "x");
  const Result<std::string> data = fs.Read("/f", 0, 5);
  ASSERT_TRUE(data);
  EXPECT_EQ(data.value(), std::string("\0\0\0\0x", 5));
}

TEST(MemOssTest, ListByPrefix) {
  util::ManualClock clock;
  oss::MemOss fs(clock);
  fs.Put("/a/1", "");
  fs.Put("/a/2", "");
  fs.Put("/b/1", "");
  EXPECT_EQ(fs.List("/a/").size(), 2u);
  EXPECT_EQ(fs.List("/").size(), 3u);
  EXPECT_TRUE(fs.List("/c").empty());
}

TEST(MssOssTest, StagingLifecycle) {
  util::ManualClock clock;
  oss::MssConfig cfg;
  cfg.stageDelay = std::chrono::seconds(30);
  oss::MssOss fs(clock, cfg);

  fs.PutInMss("/tape/f", 1024);
  EXPECT_EQ(fs.StateOf("/tape/f"), oss::FileState::kInMss);

  const auto remaining = fs.BeginStage("/tape/f");
  ASSERT_TRUE(remaining.has_value());
  EXPECT_EQ(*remaining, Duration(std::chrono::seconds(30)));
  EXPECT_EQ(fs.StateOf("/tape/f"), oss::FileState::kStaging);
  EXPECT_EQ(fs.StagingCount(), 1u);

  clock.Advance(std::chrono::seconds(10));
  const auto poll = fs.BeginStage("/tape/f");
  ASSERT_TRUE(poll.has_value());
  EXPECT_EQ(*poll, Duration(std::chrono::seconds(20)));

  clock.Advance(std::chrono::seconds(21));
  EXPECT_EQ(fs.StateOf("/tape/f"), oss::FileState::kOnline);
  const auto info = fs.Stat("/tape/f");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 1024u);
  EXPECT_EQ(fs.StagingCount(), 0u);
}

TEST(MssOssTest, StageOfUnknownFileFails) {
  util::ManualClock clock;
  oss::MssOss fs(clock, {});
  EXPECT_FALSE(fs.BeginStage("/nope").has_value());
}

TEST(MssOssTest, OnlineFileStageIsInstant) {
  util::ManualClock clock;
  oss::MssOss fs(clock, {});
  fs.Put("/f", "data");
  EXPECT_EQ(fs.BeginStage("/f"), Duration::zero());
}

class LocalOssTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("scalla_oss_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::filesystem::path root_;
};

TEST_F(LocalOssTest, FullLifecycleOnDisk) {
  oss::LocalOss fs(root_);
  EXPECT_TRUE(fs.Create("/store/run1/f.root"));
  EXPECT_EQ(fs.StateOf("/store/run1/f.root"), oss::FileState::kOnline);
  EXPECT_TRUE(fs.Write("/store/run1/f.root", 0, "payload"));
  const Result<std::string> data = fs.Read("/store/run1/f.root", 0, 64);
  ASSERT_TRUE(data);
  EXPECT_EQ(data.value(), "payload");
  EXPECT_EQ(fs.Stat("/store/run1/f.root")->size, 7u);
  const auto listed = fs.List("/store");
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0], "/store/run1/f.root");
  EXPECT_TRUE(fs.Unlink("/store/run1/f.root"));
  EXPECT_EQ(fs.StateOf("/store/run1/f.root"), oss::FileState::kAbsent);
}

TEST_F(LocalOssTest, RejectsPathEscape) {
  oss::LocalOss fs(root_);
  EXPECT_EQ(fs.Create("/../escape").code(), proto::XrdErr::kInvalid);
  EXPECT_EQ(fs.Write("/a/../../escape", 0, "x").code(), proto::XrdErr::kInvalid);
}

}  // namespace
}  // namespace scalla

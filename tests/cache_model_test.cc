// Model-based cross-validation of the location cache: a deliberately
// simple reference implementation (hash map + per-entry state, no slabs,
// no windows, no memoisation) executes the same random operation sequence
// — lookups, server responses, refreshes, membership churn, window ticks
// — and every fetch's V_h/V_p/V_q must match the real cache bit for bit.
// This checks the Figure-3 correction algebra, the offline shift, and the
// window lifetime against an independent encoding of the paper's rules.
#include <gtest/gtest.h>

#include <map>

#include "cms/correction_state.h"
#include "cms/location_cache.h"
#include "util/clock.h"
#include "util/rng.h"

namespace scalla::cms {
namespace {

// Reference model of one location object.
struct ModelEntry {
  ServerSet vh, vp, vq;
  std::uint64_t cn = 0;
  std::uint64_t expiresAtTick = 0;  // tick index at which it gets hidden
};

class ReferenceModel {
 public:
  explicit ReferenceModel(const CorrectionState& corrections)
      : corrections_(corrections) {}

  // Mirrors LocationCache::Lookup with kCreate.
  LocInfo Lookup(const std::string& path, ServerSet vm, ServerSet offline) {
    auto it = entries_.find(path);
    if (it == entries_.end()) {
      ModelEntry e;
      e.vq = vm;
      e.cn = corrections_.Epoch();
      e.expiresAtTick = tick_ + 64;
      it = entries_.emplace(path, e).first;
      return LocInfo{it->second.vh, it->second.vp, it->second.vq};
    }
    ModelEntry& e = it->second;
    // Figure 3.
    if (e.cn != corrections_.Epoch()) {
      const ServerSet vc = corrections_.CorrectionSince(e.cn);
      e.vq = (e.vq | vc) & vm;
      e.vh = e.vh.Without(e.vq) & vm;
      e.vp = e.vp.Without(e.vq) & vm;
      e.cn = corrections_.Epoch();
    }
    const ServerSet off = offline & (e.vh | e.vp) & vm;
    e.vq |= off;
    e.vh = e.vh.Without(off);
    e.vp = e.vp.Without(off);
    return LocInfo{e.vh, e.vp, e.vq};
  }

  void BeginQuery(const std::string& path, ServerSet queried) {
    const auto it = entries_.find(path);
    if (it != entries_.end()) it->second.vq = it->second.vq.Without(queried);
  }

  void AddLocation(const std::string& path, ServerSlot server, bool pending) {
    const auto it = entries_.find(path);
    if (it == entries_.end()) return;
    ModelEntry& e = it->second;
    e.vq.reset(server);
    if (pending) {
      e.vp.set(server);
    } else {
      e.vh.set(server);
      e.vp.reset(server);
    }
  }

  void Refresh(const std::string& path, ServerSet vm) {
    const auto it = entries_.find(path);
    if (it == entries_.end()) return;
    ModelEntry& e = it->second;
    e.vh = ServerSet::None();
    e.vp = ServerSet::None();
    e.vq = vm;
    e.cn = corrections_.Epoch();
    e.expiresAtTick = tick_ + 64;
  }

  void RemoveLocation(const std::string& path, ServerSlot server) {
    const auto it = entries_.find(path);
    if (it == entries_.end()) return;
    it->second.vh.reset(server);
    it->second.vp.reset(server);
    if (it->second.vh.empty() && it->second.vp.empty() &&
        it->second.vq.empty()) {
      // Hidden-entry fix: once the last claim is gone and nothing is left
      // to query, the real cache hides the entry so the next look-up
      // re-creates and re-queries; erasing models that.
      entries_.erase(it);
    }
  }

  void Tick() {
    ++tick_;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.expiresAtTick <= tick_) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  bool Contains(const std::string& path) const { return entries_.count(path) != 0; }
  std::size_t Size() const { return entries_.size(); }

 private:
  const CorrectionState& corrections_;
  std::map<std::string, ModelEntry> entries_;
  std::uint64_t tick_ = 0;
};

class CacheModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheModelTest, RandomOpsAgreeWithReference) {
  CmsConfig config;
  util::ManualClock clock;
  CorrectionState corrections;
  ServerSet vm;
  for (int s = 0; s < 6; ++s) {
    corrections.OnConnect(s);
    vm.set(s);
  }
  LocationCache cache(config, clock, corrections);
  ReferenceModel model(corrections);
  util::Rng rng(GetParam());

  ServerSet offline;
  int nextSlot = 6;

  const auto pathOf = [](std::uint64_t i) { return "/f/" + std::to_string(i); };

  for (int step = 0; step < 30000; ++step) {
    const std::string path = pathOf(rng.NextBelow(300));
    switch (rng.NextBelow(12)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // lookup/create and compare state
        const auto real =
            cache.Lookup(path, vm, offline, LocationCache::AddPolicy::kCreate);
        const LocInfo ref = model.Lookup(path, vm, offline);
        ASSERT_EQ(real.info.have.bits(), ref.have.bits())
            << "step " << step << " path " << path;
        ASSERT_EQ(real.info.pending.bits(), ref.pending.bits())
            << "step " << step << " path " << path;
        ASSERT_EQ(real.info.query.bits(), ref.query.bits())
            << "step " << step << " path " << path;
        break;
      }
      case 4:
      case 5: {  // server response
        const auto slot = static_cast<ServerSlot>(rng.NextBelow(6));
        const bool pending = rng.NextBool(0.25);
        cache.AddLocation(path, LocationCache::HashOf(path), slot, pending, true);
        model.AddLocation(path, slot, pending);
        break;
      }
      case 6: {  // begin query on a fresh ref
        const auto r =
            cache.Lookup(path, vm, offline, LocationCache::AddPolicy::kFindOnly);
        if (r.found) {
          const LocInfo ref = model.Lookup(path, vm, offline);  // keep in sync
          const ServerSet toQuery = ref.query & ~offline;
          cache.BeginQuery(r.ref, toQuery, clock.Now() + config.deadline);
          model.BeginQuery(path, toQuery);
        }
        break;
      }
      case 7: {  // refresh
        const auto r =
            cache.Lookup(path, vm, offline, LocationCache::AddPolicy::kFindOnly);
        if (r.found) {
          model.Lookup(path, vm, offline);  // mirror the fetch side effects
          cache.Refresh(r.ref, vm, clock.Now() + config.deadline);
          model.Refresh(path, vm);
        }
        break;
      }
      case 8: {  // remove a location (same slot on both sides)
        const auto slot = static_cast<ServerSlot>(rng.NextBelow(6));
        cache.RemoveLocation(path, slot);
        model.RemoveLocation(path, slot);
        break;
      }
      case 9: {  // membership churn: a new server joins (epoch moves)
        if (rng.NextBool(0.3) && nextSlot < kMaxServersPerSet) {
          corrections.OnConnect(nextSlot);
          vm.set(nextSlot);
          ++nextSlot;
        }
        break;
      }
      case 10: {  // offline flapping
        const ServerSlot s = static_cast<ServerSlot>(rng.NextBelow(6));
        if (offline.test(s)) {
          offline.reset(s);
        } else if (rng.NextBool(0.3)) {
          offline.set(s);
        }
        break;
      }
      case 11: {  // window tick
        clock.Advance(config.WindowTick());
        auto purge = cache.OnWindowTick();
        if (purge) purge();
        model.Tick();
        break;
      }
    }
  }

  // Final agreement sweep over every possible path.
  for (std::uint64_t i = 0; i < 300; ++i) {
    const std::string path = pathOf(i);
    const auto real =
        cache.Lookup(path, vm, offline, LocationCache::AddPolicy::kFindOnly);
    ASSERT_EQ(real.found, model.Contains(path)) << path;
    if (real.found) {
      const LocInfo ref = model.Lookup(path, vm, offline);
      EXPECT_EQ(real.info.have.bits(), ref.have.bits()) << path;
      EXPECT_EQ(real.info.pending.bits(), ref.pending.bits()) << path;
      EXPECT_EQ(real.info.query.bits(), ref.query.bits()) << path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheModelTest,
                         ::testing::Values(1, 7, 42, 1234, 987654));

}  // namespace
}  // namespace scalla::cms

// Unit tests for the util substrate: CRC32, Fibonacci sizing, ServerSet,
// clocks, RNG/Zipf, config parsing, stats.
#include <gtest/gtest.h>

#include <set>

#include "util/clock.h"
#include "util/config.h"
#include "util/crc32.h"
#include "util/fibonacci.h"
#include "util/rng.h"
#include "util/server_set.h"
#include "util/stats.h"

namespace scalla {
namespace {

// ---------------------------------------------------------------- CRC32

TEST(Crc32Test, KnownVectors) {
  // Standard zlib test vectors.
  EXPECT_EQ(util::Crc32(""), 0x00000000u);
  EXPECT_EQ(util::Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(util::Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(util::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::Crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string s = "/store/data/run000123/file00042.root";
  for (std::size_t split = 0; split <= s.size(); ++split) {
    const std::uint32_t partial = util::Crc32(s.substr(0, split));
    EXPECT_EQ(util::Crc32(s.substr(split), partial), util::Crc32(s)) << split;
  }
}

TEST(Crc32Test, LongBufferCrossesSliceBoundaries) {
  std::string s;
  for (int i = 0; i < 1000; ++i) s.push_back(static_cast<char>(i * 31));
  // Byte-at-a-time reference.
  std::uint32_t ref = ~0u;
  for (const char c : s) {
    ref ^= static_cast<unsigned char>(c);
    for (int k = 0; k < 8; ++k) ref = (ref >> 1) ^ ((ref & 1u) ? 0xEDB88320u : 0u);
  }
  EXPECT_EQ(util::Crc32(s), ~ref);
}

TEST(Crc32Test, DistinctPathsDisperse) {
  std::set<std::uint32_t> hashes;
  for (int i = 0; i < 10000; ++i) {
    hashes.insert(util::Crc32(util::MakeFilePath(i / 100, i % 100)));
  }
  EXPECT_EQ(hashes.size(), 10000u);  // no collisions at this scale
}

// ------------------------------------------------------------ Fibonacci

TEST(FibonacciTest, AtLeast) {
  EXPECT_EQ(util::FibonacciAtLeast(1), 1u);
  EXPECT_EQ(util::FibonacciAtLeast(2), 2u);
  EXPECT_EQ(util::FibonacciAtLeast(3), 3u);
  EXPECT_EQ(util::FibonacciAtLeast(4), 5u);
  EXPECT_EQ(util::FibonacciAtLeast(89), 89u);
  EXPECT_EQ(util::FibonacciAtLeast(90), 144u);
}

TEST(FibonacciTest, Next) {
  EXPECT_EQ(util::NextFibonacci(1), 2u);
  EXPECT_EQ(util::NextFibonacci(89), 144u);
  EXPECT_EQ(util::NextFibonacci(144), 233u);
}

TEST(FibonacciTest, IsFibonacci) {
  EXPECT_TRUE(util::IsFibonacci(1));
  EXPECT_TRUE(util::IsFibonacci(89));
  EXPECT_TRUE(util::IsFibonacci(832040));
  EXPECT_FALSE(util::IsFibonacci(4));
  EXPECT_FALSE(util::IsFibonacci(100));
}

TEST(FibonacciTest, SequencePropertyHolds) {
  // Each table value is the sum of the previous two.
  std::uint64_t a = 1, b = 2;
  for (int i = 0; i < 80; ++i) {
    EXPECT_EQ(util::NextFibonacci(a), b);
    const std::uint64_t c = a + b;
    a = b;
    b = c;
  }
}

// ------------------------------------------------------------ ServerSet

TEST(ServerSetTest, BasicOps) {
  ServerSet s;
  EXPECT_TRUE(s.empty());
  s.set(0);
  s.set(63);
  s.set(17);
  EXPECT_EQ(s.count(), 3);
  EXPECT_TRUE(s.test(17));
  EXPECT_FALSE(s.test(18));
  s.reset(17);
  EXPECT_FALSE(s.test(17));
  EXPECT_EQ(s.count(), 2);
}

TEST(ServerSetTest, Iteration) {
  ServerSet s;
  for (const int slot : {3, 9, 41, 63}) s.set(slot);
  std::vector<int> seen;
  for (ServerSlot slot = s.first(); slot >= 0; slot = s.next(slot)) seen.push_back(slot);
  EXPECT_EQ(seen, (std::vector<int>{3, 9, 41, 63}));
}

TEST(ServerSetTest, IterationEdgeCases) {
  EXPECT_EQ(ServerSet::None().first(), -1);
  EXPECT_EQ(ServerSet::Single(63).first(), 63);
  EXPECT_EQ(ServerSet::Single(63).next(63), -1);
  EXPECT_EQ(ServerSet::Single(0).next(0), -1);
  EXPECT_EQ(ServerSet::All().count(), 64);
}

TEST(SersetTest, SetAlgebra) {
  const ServerSet a = ServerSet::FirstN(8);
  const ServerSet b(0xF0ull);
  EXPECT_EQ((a & b).bits(), 0xF0ull);
  EXPECT_EQ((a | b).bits(), 0xFFull);
  EXPECT_EQ(a.Without(b).bits(), 0x0Full);
  EXPECT_TRUE(a.Contains(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(b.Contains(a));
}

TEST(ServerSetTest, FirstN) {
  EXPECT_EQ(ServerSet::FirstN(0).count(), 0);
  EXPECT_EQ(ServerSet::FirstN(64).count(), 64);
  EXPECT_EQ(ServerSet::FirstN(5).bits(), 0x1Full);
}

TEST(ServerSetTest, ToString) {
  ServerSet s;
  s.set(1);
  s.set(5);
  EXPECT_EQ(s.ToString(), "{1,5}");
  EXPECT_EQ(ServerSet::None().ToString(), "{}");
}

// ---------------------------------------------------------------- Clock

TEST(ClockTest, ManualClockAdvances) {
  util::ManualClock clock;
  const TimePoint t0 = clock.Now();
  clock.Advance(std::chrono::seconds(5));
  EXPECT_EQ(clock.Now() - t0, std::chrono::seconds(5));
}

TEST(ClockTest, SystemClockMonotonic) {
  util::SystemClock clock;
  const TimePoint a = clock.Now();
  const TimePoint b = clock.Now();
  EXPECT_LE(a, b);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, Deterministic) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const auto v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformityRough) {
  util::Rng rng(123);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.NextBelow(10)];
  for (const int b : buckets) {
    EXPECT_GT(b, n / 10 - n / 50);
    EXPECT_LT(b, n / 10 + n / 50);
  }
}

TEST(ZipfTest, SkewOrdersRanks) {
  util::Rng rng(9);
  const util::ZipfSampler zipf(100, 1.0);
  int counts[100] = {};
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  util::Rng rng(11);
  const util::ZipfSampler zipf(10, 0.0);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (const int c : counts) {
    EXPECT_GT(c, n / 10 - n / 40);
    EXPECT_LT(c, n / 10 + n / 40);
  }
}

// --------------------------------------------------------------- Config

TEST(ConfigTest, ParsesDirectives) {
  const auto cfg = util::Config::Parse(R"(
# a comment
cms.lifetime 8h
cms.delay  5s
oss.path /data    # trailing comment
count 42
ratio 0.8
flag true
)");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->GetDuration("cms.lifetime"), Duration(std::chrono::hours(8)));
  EXPECT_EQ(cfg->GetDuration("cms.delay"), Duration(std::chrono::seconds(5)));
  EXPECT_EQ(cfg->GetString("oss.path"), "/data");
  EXPECT_EQ(cfg->GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(cfg->GetDouble("ratio").value(), 0.8);
  EXPECT_EQ(cfg->GetBool("flag"), true);
}

TEST(ConfigTest, EqualsSyntaxAndDefaults) {
  const auto cfg = util::Config::Parse("a = 1\nb=hello\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->GetInt("a"), 1);
  EXPECT_EQ(cfg->GetString("b"), "hello");
  EXPECT_EQ(cfg->GetIntOr("missing", 7), 7);
  EXPECT_EQ(cfg->GetStringOr("missing", "x"), "x");
}

TEST(ConfigTest, RejectsMissingValue) {
  std::string error;
  EXPECT_FALSE(util::Config::Parse("orphankey\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(ConfigTest, DurationUnits) {
  EXPECT_EQ(util::ParseDuration("250us"), Duration(std::chrono::microseconds(250)));
  EXPECT_EQ(util::ParseDuration("133ms"), Duration(std::chrono::milliseconds(133)));
  EXPECT_EQ(util::ParseDuration("7.5m"), Duration(std::chrono::seconds(450)));
  EXPECT_EQ(util::ParseDuration("100"), Duration(100));
  EXPECT_FALSE(util::ParseDuration("abc").has_value());
  EXPECT_FALSE(util::ParseDuration("5 parsecs").has_value());
}

TEST(ConfigTest, TypeMismatchYieldsNullopt) {
  const auto cfg = util::Config::Parse("k hello\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_FALSE(cfg->GetInt("k").has_value());
  EXPECT_FALSE(cfg->GetBool("k").has_value());
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, RecorderBasics) {
  util::LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.RecordNanos(i * 1000);
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.MinNanos(), 1000);
  EXPECT_EQ(rec.MaxNanos(), 100000);
  EXPECT_NEAR(rec.MeanNanos(), 50500.0, 1.0);
  EXPECT_NEAR(static_cast<double>(rec.PercentileNanos(0.5)), 50000.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(rec.PercentileNanos(0.99)), 99000.0, 2000.0);
}

TEST(StatsTest, EmptyRecorderSafe) {
  util::LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.MeanNanos(), 0.0);
  EXPECT_EQ(rec.PercentileNanos(0.5), 0);
}

TEST(StatsTest, FormatNanosUnits) {
  EXPECT_EQ(util::FormatNanos(312), "312ns");
  EXPECT_EQ(util::FormatNanos(41200), "41.20us");
  EXPECT_EQ(util::FormatNanos(1.5e9), "1.50s");
}

TEST(StatsTest, ClearResets) {
  util::LatencyRecorder rec;
  rec.RecordNanos(5);
  rec.Clear();
  EXPECT_EQ(rec.count(), 0u);
  rec.RecordNanos(7);
  EXPECT_EQ(rec.MinNanos(), 7);
}

}  // namespace
}  // namespace scalla

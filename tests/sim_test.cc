// Tests for the discrete-event engine and the simulated fabric (virtual
// time, timer semantics, latency model, failure injection, counters).
#include <gtest/gtest.h>

#include "sim/event_engine.h"
#include "sim/sim_fabric.h"

namespace scalla::sim {
namespace {

TEST(EventEngineTest, PostRunsInOrderWithoutAdvancingTime) {
  EventEngine engine;
  std::vector<int> order;
  engine.Post([&order] { order.push_back(1); });
  engine.Post([&order] { order.push_back(2); });
  const TimePoint t0 = engine.Now();
  engine.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.Now(), t0);
}

TEST(EventEngineTest, RunAfterAdvancesVirtualTime) {
  EventEngine engine;
  TimePoint fired{};
  engine.RunAfter(std::chrono::seconds(5), [&] { fired = engine.Now(); });
  engine.RunUntilIdle();
  EXPECT_EQ(fired.time_since_epoch(), Duration(std::chrono::seconds(5)));
}

TEST(EventEngineTest, EventsInterleaveByDueTime) {
  EventEngine engine;
  std::vector<int> order;
  engine.RunAfter(std::chrono::seconds(3), [&] { order.push_back(3); });
  engine.RunAfter(std::chrono::seconds(1), [&] { order.push_back(1); });
  engine.RunAfter(std::chrono::seconds(2), [&] { order.push_back(2); });
  engine.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventEngineTest, PeriodicTimerFiresEachPeriod) {
  EventEngine engine;
  int fires = 0;
  engine.RunEvery(std::chrono::seconds(10), [&fires] { ++fires; });
  engine.RunFor(std::chrono::seconds(35));
  EXPECT_EQ(fires, 3);
  engine.RunFor(std::chrono::seconds(10));
  EXPECT_EQ(fires, 4);
}

TEST(EventEngineTest, CancelStopsTimer) {
  EventEngine engine;
  int fires = 0;
  const auto id = engine.RunEvery(std::chrono::seconds(1), [&fires] { ++fires; });
  engine.RunFor(std::chrono::seconds(3));
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(engine.Cancel(id));
  engine.RunFor(std::chrono::seconds(5));
  EXPECT_EQ(fires, 3);
}

TEST(EventEngineTest, CancelOneShotBeforeFire) {
  EventEngine engine;
  bool fired = false;
  const auto id = engine.RunAfter(std::chrono::seconds(1), [&fired] { fired = true; });
  engine.Cancel(id);
  engine.RunFor(std::chrono::seconds(2));
  EXPECT_FALSE(fired);
}

TEST(EventEngineTest, TimerCanCancelItself) {
  EventEngine engine;
  int fires = 0;
  sched::TimerId id = sched::kInvalidTimer;
  id = engine.RunEvery(std::chrono::seconds(1), [&] {
    if (++fires == 2) engine.Cancel(id);
  });
  engine.RunFor(std::chrono::seconds(10));
  EXPECT_EQ(fires, 2);
}

TEST(EventEngineTest, RunUntilIdleDoesNotSpinOnPeriodics) {
  EventEngine engine;
  int fires = 0;
  engine.RunEvery(std::chrono::seconds(1), [&fires] { ++fires; });
  engine.RunUntilIdle();  // must return immediately: no one-shot work
  EXPECT_EQ(fires, 0);
}

TEST(EventEngineTest, RunUntilPredicate) {
  EventEngine engine;
  int counter = 0;
  engine.RunEvery(std::chrono::seconds(1), [&counter] { ++counter; });
  const bool ok = engine.RunUntilPredicate([&counter] { return counter >= 5; },
                                           engine.Now() + std::chrono::seconds(100));
  EXPECT_TRUE(ok);
  EXPECT_EQ(counter, 5);

  const bool timedOut = engine.RunUntilPredicate([&counter] { return counter >= 1000; },
                                                 engine.Now() + std::chrono::seconds(10));
  EXPECT_FALSE(timedOut);
}

TEST(EventEngineTest, TasksScheduledInsideTasksRun) {
  EventEngine engine;
  bool inner = false;
  engine.Post([&] {
    engine.RunAfter(std::chrono::milliseconds(5), [&inner] { inner = true; });
  });
  engine.RunUntilIdle();
  EXPECT_TRUE(inner);
}

// ------------------------------------------------------------ SimFabric

struct Recorder : net::MessageSink {
  std::vector<std::pair<net::NodeAddr, proto::Message>> received;
  std::vector<net::NodeAddr> peersDown;
  void OnMessage(net::NodeAddr from, proto::Message m) override {
    received.emplace_back(from, std::move(m));
  }
  void OnPeerDown(net::NodeAddr peer) override { peersDown.push_back(peer); }
};

TEST(SimFabricTest, DeliversWithModeledLatency) {
  EventEngine engine;
  LatencyModel model;
  model.linkLatency = std::chrono::microseconds(25);
  model.serviceTime = std::chrono::microseconds(5);
  SimFabric fabric(engine, model);
  Recorder a, b;
  fabric.Register(1, &a);
  fabric.Register(2, &b);

  fabric.Send(1, 2, proto::CmsGone{"/f"});
  engine.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, 1u);
  EXPECT_EQ(engine.Now().time_since_epoch(), Duration(std::chrono::microseconds(30)));
}

TEST(SimFabricTest, DownedEndpointDropsAndNotifiesSender) {
  EventEngine engine;
  SimFabric fabric(engine, LatencyModel{});
  Recorder a, b;
  fabric.Register(1, &a);
  fabric.Register(2, &b);
  fabric.SetDown(2, true);

  fabric.Send(1, 2, proto::CmsGone{"/f"});
  engine.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  ASSERT_EQ(a.peersDown.size(), 1u);
  EXPECT_EQ(a.peersDown[0], 2u);
  EXPECT_EQ(fabric.GetCounters().messagesDropped, 1u);

  fabric.SetDown(2, false);
  fabric.Send(1, 2, proto::CmsGone{"/f"});
  engine.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimFabricTest, LinkCutIsBidirectionalAndReversible) {
  EventEngine engine;
  SimFabric fabric(engine, LatencyModel{});
  Recorder a, b;
  fabric.Register(1, &a);
  fabric.Register(2, &b);
  fabric.SetLinkCut(1, 2, true);
  fabric.Send(1, 2, proto::CmsGone{"/f"});
  fabric.Send(2, 1, proto::CmsGone{"/f"});
  engine.RunUntilIdle();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  fabric.SetLinkCut(1, 2, false);
  fabric.Send(1, 2, proto::CmsGone{"/f"});
  engine.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimFabricTest, InFlightMessageLostWhenLinkCutMidFlight) {
  EventEngine engine;
  LatencyModel model;
  model.linkLatency = std::chrono::milliseconds(10);
  SimFabric fabric(engine, model);
  Recorder a, b;
  fabric.Register(1, &a);
  fabric.Register(2, &b);
  fabric.Send(1, 2, proto::CmsGone{"/f"});
  fabric.SetLinkCut(1, 2, true);  // cut before delivery event fires
  engine.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
}

TEST(SimFabricTest, PerTypeCountersTrackDeliveries) {
  EventEngine engine;
  SimFabric fabric(engine, LatencyModel{});
  Recorder a, b;
  fabric.Register(1, &a);
  fabric.Register(2, &b);
  fabric.Send(1, 2, proto::CmsQuery{"/f", 1, 0, false});
  fabric.Send(1, 2, proto::CmsQuery{"/g", 2, 0, false});
  fabric.Send(1, 2, proto::CmsHave{});
  engine.RunUntilIdle();

  constexpr std::size_t kQueryIdx = 2;  // CmsQuery index in the variant
  constexpr std::size_t kHaveIdx = 3;
  EXPECT_EQ(fabric.DeliveredOfType(kQueryIdx), 2u);
  EXPECT_EQ(fabric.DeliveredOfType(kHaveIdx), 1u);
  fabric.ResetCounters();
  EXPECT_EQ(fabric.DeliveredOfType(kQueryIdx), 0u);
}

TEST(SimFabricTest, SerialServiceQueuesAtReceiver) {
  EventEngine engine;
  LatencyModel model;
  model.linkLatency = std::chrono::microseconds(10);
  model.serviceTime = std::chrono::microseconds(5);
  model.serialService = true;
  SimFabric fabric(engine, model);
  Recorder a, b;
  fabric.Register(1, &a);
  fabric.Register(2, &b);

  // Three messages sent at once: arrivals at t=10us, service completes at
  // 15, 20, 25us — the single-threaded receiver model.
  std::vector<Duration> deliveredAt;
  struct Tap : net::MessageSink {
    EventEngine& engine;
    std::vector<Duration>& times;
    Tap(EventEngine& e, std::vector<Duration>& t) : engine(e), times(t) {}
    void OnMessage(net::NodeAddr, proto::Message) override {
      times.push_back(engine.Now().time_since_epoch());
    }
  } tap(engine, deliveredAt);
  fabric.Register(3, &tap);
  for (int i = 0; i < 3; ++i) fabric.Send(1, 3, proto::CmsGone{"/f"});
  engine.RunUntilIdle();
  ASSERT_EQ(deliveredAt.size(), 3u);
  EXPECT_EQ(deliveredAt[0], Duration(std::chrono::microseconds(15)));
  EXPECT_EQ(deliveredAt[1], Duration(std::chrono::microseconds(20)));
  EXPECT_EQ(deliveredAt[2], Duration(std::chrono::microseconds(25)));
}

TEST(SimFabricTest, InfiniteCapacityWithoutSerialService) {
  EventEngine engine;
  LatencyModel model;
  model.linkLatency = std::chrono::microseconds(10);
  model.serviceTime = std::chrono::microseconds(5);
  model.serialService = false;
  SimFabric fabric(engine, model);
  Recorder a;
  fabric.Register(1, &a);
  std::vector<Duration> deliveredAt;
  struct Tap : net::MessageSink {
    EventEngine& engine;
    std::vector<Duration>& times;
    Tap(EventEngine& e, std::vector<Duration>& t) : engine(e), times(t) {}
    void OnMessage(net::NodeAddr, proto::Message) override {
      times.push_back(engine.Now().time_since_epoch());
    }
  } tap(engine, deliveredAt);
  fabric.Register(3, &tap);
  for (int i = 0; i < 3; ++i) fabric.Send(1, 3, proto::CmsGone{"/f"});
  engine.RunUntilIdle();
  ASSERT_EQ(deliveredAt.size(), 3u);
  for (const auto t : deliveredAt) {
    EXPECT_EQ(t, Duration(std::chrono::microseconds(15)));  // all in parallel
  }
}

TEST(SimFabricTest, PerPairOrderingPreserved) {
  EventEngine engine;
  SimFabric fabric(engine, LatencyModel{});
  Recorder a, b;
  fabric.Register(1, &a);
  fabric.Register(2, &b);
  for (int i = 0; i < 10; ++i) {
    fabric.Send(1, 2, proto::CmsGone{std::to_string(i)});
  }
  engine.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(std::get<proto::CmsGone>(b.received[i].second).path, std::to_string(i));
  }
}

}  // namespace
}  // namespace scalla::sim

// Tests for the real-time ThreadExecutor: ordering, timers, cancellation,
// shutdown safety.
#include <gtest/gtest.h>

#include <atomic>

#include "sched/thread_executor.h"

namespace scalla::sched {
namespace {

TEST(ThreadExecutorTest, PostRunsTasksInOrder) {
  ThreadExecutor exec;
  std::vector<int> order;
  std::atomic<bool> done{false};
  exec.Post([&order] { order.push_back(1); });
  exec.Post([&order] { order.push_back(2); });
  exec.Post([&order, &done] {
    order.push_back(3);
    done = true;
  });
  while (!done) std::this_thread::yield();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadExecutorTest, TasksRunOnDispatchThread) {
  ThreadExecutor exec;
  std::atomic<bool> inDispatch{false};
  std::atomic<bool> done{false};
  exec.Post([&] {
    inDispatch = exec.InDispatchThread();
    done = true;
  });
  while (!done) std::this_thread::yield();
  EXPECT_TRUE(inDispatch);
  EXPECT_FALSE(exec.InDispatchThread());
}

TEST(ThreadExecutorTest, RunAfterFiresOnce) {
  ThreadExecutor exec;
  std::atomic<int> fires{0};
  exec.RunAfter(std::chrono::milliseconds(20), [&fires] { ++fires; });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(fires.load(), 1);
}

TEST(ThreadExecutorTest, RunEveryRepeatsUntilCancelled) {
  ThreadExecutor exec;
  std::atomic<int> fires{0};
  const TimerId id = exec.RunEvery(std::chrono::milliseconds(10), [&fires] { ++fires; });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_GE(fires.load(), 5);
  exec.Cancel(id);
  const int at = fires.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_LE(fires.load(), at + 1);  // at most one in-flight straggler
}

TEST(ThreadExecutorTest, CancelBeforeFire) {
  ThreadExecutor exec;
  std::atomic<bool> fired{false};
  const TimerId id = exec.RunAfter(std::chrono::milliseconds(100), [&fired] { fired = true; });
  EXPECT_TRUE(exec.Cancel(id));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(fired.load());
}

TEST(ThreadExecutorTest, StopDropsPendingWork) {
  auto exec = std::make_unique<ThreadExecutor>();
  std::atomic<int> ran{0};
  exec->RunAfter(std::chrono::seconds(30), [&ran] { ++ran; });
  exec->Stop();
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadExecutorTest, DestructionWhileTimersPendingIsSafe) {
  std::atomic<int> fires{0};
  {
    ThreadExecutor exec;
    for (int i = 0; i < 10; ++i) {
      exec.RunEvery(std::chrono::milliseconds(5), [&fires] { ++fires; });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  // No crash, no use-after-free (checked by ASAN builds / valgrind runs).
  SUCCEED();
}

TEST(ThreadExecutorTest, ManyProducersOneConsumer) {
  ThreadExecutor exec;
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&exec, &count] {
      for (int i = 0; i < 250; ++i) exec.Post([&count] { ++count; });
    });
  }
  for (auto& t : producers) t.join();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (count.load() < 1000 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 1000);
}

}  // namespace
}  // namespace scalla::sched

// Tests for the directive-file node configuration loader.
#include <gtest/gtest.h>

#include "xrd/node_config_loader.h"

namespace scalla::xrd {
namespace {

TEST(NodeConfigLoaderTest, FullServerConfig) {
  std::string error;
  const auto loaded = LoadNodeConfig(R"(
# data server
all.role        server
all.name        dataserver07
all.addr        12
all.manager     1 2
all.export      /store /scratch
cms.lifetime    4h
cms.delay       2s
cms.sweep       100ms
cms.dropdelay   5m
cms.selection   load
xrd.allowwrite  false
xrd.loadreport  30s
oss.localroot   /data/xrd
)",
                                     &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  const NodeConfig& cfg = loaded->node;
  EXPECT_EQ(cfg.role, NodeRole::kServer);
  EXPECT_EQ(cfg.name, "dataserver07");
  EXPECT_EQ(cfg.addr, 12u);
  EXPECT_EQ(cfg.parent, 1u);
  EXPECT_EQ(cfg.extraParents, (std::vector<net::NodeAddr>{2}));
  EXPECT_EQ(cfg.exports, (std::vector<std::string>{"/store", "/scratch"}));
  EXPECT_EQ(cfg.cms.lifetime, Duration(std::chrono::hours(4)));
  EXPECT_EQ(cfg.cms.deadline, Duration(std::chrono::seconds(2)));
  EXPECT_EQ(cfg.cms.sweepPeriod, Duration(std::chrono::milliseconds(100)));
  EXPECT_EQ(cfg.cms.dropDelay, Duration(std::chrono::minutes(5)));
  EXPECT_EQ(cfg.selection, cms::SelectCriterion::kLoad);
  EXPECT_FALSE(cfg.allowWrite);
  EXPECT_EQ(cfg.loadReportInterval, Duration(std::chrono::seconds(30)));
  EXPECT_EQ(loaded->localRoot, "/data/xrd");
}

TEST(NodeConfigLoaderTest, MinimalManager) {
  std::string error;
  const auto loaded =
      LoadNodeConfig("all.role manager\nall.addr 1\nall.export /store\n", &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->node.role, NodeRole::kManager);
  EXPECT_EQ(loaded->node.parent, 0u);
  EXPECT_EQ(loaded->node.name, "node1");  // defaulted from addr
  // Paper defaults survive when not overridden.
  EXPECT_EQ(loaded->node.cms.lifetime, Duration(std::chrono::hours(8)));
  EXPECT_EQ(loaded->node.cms.sweepPeriod, Duration(std::chrono::milliseconds(133)));
}

TEST(NodeConfigLoaderTest, FabricDirectivesParsed) {
  std::string error;
  const auto loaded = LoadNodeConfig(
      "all.role manager\nall.addr 1\nall.export /store\n"
      "fabric.connecttimeout 250ms\n"
      "fabric.writetimeout 5s\n"
      "fabric.queuedepth 1024\n"
      "fabric.loopthreads 4\n"
      "fabric.idletimeout 30s\n"
      "fabric.sendbuf 64k\n",
      &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->fabric.connectTimeout, std::chrono::milliseconds(250));
  EXPECT_EQ(loaded->fabric.writeTimeout, std::chrono::milliseconds(5000));
  EXPECT_EQ(loaded->fabric.maxQueuedMessages, 1024u);
  EXPECT_EQ(loaded->fabric.loopThreads, 4);
  EXPECT_EQ(loaded->fabric.idleTimeout, std::chrono::seconds(30));
  EXPECT_EQ(loaded->fabric.sendBufferBytes, 64u * 1024);
}

TEST(NodeConfigLoaderTest, FabricDefaultsWhenUnset) {
  std::string error;
  const auto loaded =
      LoadNodeConfig("all.role manager\nall.addr 1\nall.export /store\n", &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  const net::FabricOptions defaults;
  EXPECT_EQ(loaded->fabric.connectTimeout, defaults.connectTimeout);
  EXPECT_EQ(loaded->fabric.writeTimeout, defaults.writeTimeout);
  EXPECT_EQ(loaded->fabric.maxQueuedMessages, defaults.maxQueuedMessages);
  EXPECT_EQ(loaded->fabric.loopThreads, defaults.loopThreads);
  EXPECT_EQ(loaded->fabric.idleTimeout, defaults.idleTimeout);
  EXPECT_EQ(loaded->fabric.sendBufferBytes, defaults.sendBufferBytes);
}

TEST(NodeConfigLoaderTest, RejectsBadFabricValues) {
  const std::string base = "all.role manager\nall.addr 1\nall.export /store\n";
  std::string error;
  EXPECT_FALSE(
      LoadNodeConfig(base + "fabric.connecttimeout 0ms\n", &error).has_value());
  EXPECT_FALSE(
      LoadNodeConfig(base + "fabric.writetimeout -1s\n", &error).has_value());
  EXPECT_FALSE(LoadNodeConfig(base + "fabric.queuedepth 0\n", &error).has_value());
  EXPECT_FALSE(LoadNodeConfig(base + "fabric.queuedepth lots\n", &error).has_value());
  EXPECT_FALSE(
      LoadNodeConfig(base + "fabric.loopthreads 0\n", &error).has_value());
  EXPECT_NE(error.find("fabric.loopthreads"), std::string::npos);
  EXPECT_FALSE(
      LoadNodeConfig(base + "fabric.loopthreads 65\n", &error).has_value());
  EXPECT_FALSE(
      LoadNodeConfig(base + "fabric.idletimeout -5s\n", &error).has_value());
  EXPECT_NE(error.find("fabric.idletimeout"), std::string::npos);
  EXPECT_FALSE(
      LoadNodeConfig(base + "fabric.sendbuf many\n", &error).has_value());
}

TEST(NodeConfigLoaderTest, FabricIdleTimeoutZeroDisables) {
  std::string error;
  const auto loaded = LoadNodeConfig(
      "all.role manager\nall.addr 1\nall.export /store\n"
      "fabric.idletimeout 0s\n",
      &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->fabric.idleTimeout, Duration::zero());
}

TEST(NodeConfigLoaderTest, RejectsUnknownDirective) {
  std::string error;
  EXPECT_FALSE(LoadNodeConfig("all.role manager\nall.addr 1\nall.export /\n"
                              "all.portt 99\n",
                              &error)
                   .has_value());
  EXPECT_NE(error.find("all.portt"), std::string::npos);
}

TEST(NodeConfigLoaderTest, RequiresRoleAddrExport) {
  std::string error;
  EXPECT_FALSE(LoadNodeConfig("all.addr 1\nall.export /\n", &error).has_value());
  EXPECT_FALSE(LoadNodeConfig("all.role manager\nall.export /\n", &error).has_value());
  EXPECT_FALSE(LoadNodeConfig("all.role manager\nall.addr 1\n", &error).has_value());
}

TEST(NodeConfigLoaderTest, ServerNeedsManager) {
  std::string error;
  EXPECT_FALSE(
      LoadNodeConfig("all.role server\nall.addr 5\nall.export /\n", &error).has_value());
  EXPECT_NE(error.find("all.manager"), std::string::npos);
}

TEST(NodeConfigLoaderTest, RejectsBadRoleAndSelection) {
  std::string error;
  EXPECT_FALSE(LoadNodeConfig("all.role czar\nall.addr 1\nall.export /\n", &error)
                   .has_value());
  EXPECT_FALSE(LoadNodeConfig("all.role manager\nall.addr 1\nall.export /\n"
                              "cms.selection dartboard\n",
                              &error)
                   .has_value());
}

TEST(NodeConfigLoaderTest, LocalRootOnlyForServers) {
  std::string error;
  EXPECT_FALSE(LoadNodeConfig("all.role manager\nall.addr 1\nall.export /\n"
                              "oss.localroot /data\n",
                              &error)
                   .has_value());
}

TEST(NodeConfigLoaderTest, HeartbeatDirectivesParsed) {
  std::string error;
  const auto loaded = LoadNodeConfig(
      "all.role manager\nall.addr 1\nall.export /store\n"
      "cms.ping 500ms\n"
      "cms.misslimit 5\n"
      "cms.suspendload 200\n"
      "cms.resumeload 80\n",
      &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->node.cms.ping, Duration(std::chrono::milliseconds(500)));
  EXPECT_EQ(loaded->node.cms.missLimit, 5);
  EXPECT_EQ(loaded->node.cms.suspendLoad, 200u);
  EXPECT_EQ(loaded->node.cms.resumeLoad, 80u);
}

TEST(NodeConfigLoaderTest, HeartbeatDefaultsOffWhenUnset) {
  std::string error;
  const auto loaded =
      LoadNodeConfig("all.role manager\nall.addr 1\nall.export /store\n", &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->node.cms.ping, Duration::zero());  // heartbeat disabled
  EXPECT_EQ(loaded->node.cms.missLimit, 3);
  EXPECT_EQ(loaded->node.cms.suspendLoad, 0u);  // suspension disabled
}

TEST(NodeConfigLoaderTest, RejectsBadHeartbeatValues) {
  const std::string base = "all.role manager\nall.addr 1\nall.export /store\n";
  std::string error;
  EXPECT_FALSE(LoadNodeConfig(base + "cms.ping always\n", &error).has_value());
  EXPECT_FALSE(LoadNodeConfig(base + "cms.misslimit 0\n", &error).has_value());
  EXPECT_FALSE(LoadNodeConfig(base + "cms.misslimit -2\n", &error).has_value());
  // resumeload must sit below suspendload, or a suspended server could
  // never resume (and a resumed one would re-suspend at once).
  EXPECT_FALSE(LoadNodeConfig(base + "cms.suspendload 50\ncms.resumeload 50\n",
                              &error)
                   .has_value());
  EXPECT_NE(error.find("resumeload"), std::string::npos);
  // resumeload alone (suspendload unset = 0) is tolerated but inert.
  EXPECT_TRUE(LoadNodeConfig(base + "cms.resumeload 10\n", &error).has_value());
}

TEST(NodeConfigLoaderTest, CacheBytesDirectiveParsed) {
  const std::string base = "all.role manager\nall.addr 1\nall.export /store\n";
  std::string error;
  const auto loaded = LoadNodeConfig(base + "cms.cachebytes 256m\n", &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->node.cms.cacheBytes, 256ull * 1024 * 1024);

  // Unset or explicit 0 => unbounded.
  const auto unset = LoadNodeConfig(base, &error);
  ASSERT_TRUE(unset.has_value()) << error;
  EXPECT_EQ(unset->node.cms.cacheBytes, 0u);
  const auto zero = LoadNodeConfig(base + "cms.cachebytes 0\n", &error);
  ASSERT_TRUE(zero.has_value()) << error;
  EXPECT_EQ(zero->node.cms.cacheBytes, 0u);
}

TEST(NodeConfigLoaderTest, RejectsBadCacheBytesValues) {
  const std::string base = "all.role manager\nall.addr 1\nall.export /store\n";
  std::string error;
  EXPECT_FALSE(LoadNodeConfig(base + "cms.cachebytes lots\n", &error).has_value());
  EXPECT_NE(error.find("cachebytes"), std::string::npos);
  // A budget below one arena growth step could never hold a useful table.
  EXPECT_FALSE(LoadNodeConfig(base + "cms.cachebytes 64k\n", &error).has_value());
  EXPECT_NE(error.find("cachebytes"), std::string::npos);
  EXPECT_TRUE(LoadNodeConfig(base + "cms.cachebytes 1m\n", &error).has_value());
}

TEST(NodeConfigLoaderTest, ProxyConfigWithPcacheDirectives) {
  std::string error;
  const auto loaded = LoadNodeConfig(
      "all.role proxy\n"
      "all.addr 50\n"
      "all.manager 1 2\n"
      "pcache.blocksize 64k\n"
      "pcache.capacity 256m\n"
      "pcache.hiwater 0.9\n"
      "pcache.lowater 0.6\n"
      "pcache.readahead 4\n",
      &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->node.role, NodeRole::kProxy);
  EXPECT_EQ(loaded->node.parent, 1u);
  ASSERT_EQ(loaded->node.extraParents.size(), 1u);
  EXPECT_EQ(loaded->node.extraParents[0], 2u);
  EXPECT_EQ(loaded->pcacheTiered.dram.blockSize, 64u * 1024);
  EXPECT_EQ(loaded->pcacheTiered.dram.capacityBytes, 256u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(loaded->pcacheTiered.dram.highWatermark, 0.9);
  EXPECT_DOUBLE_EQ(loaded->pcacheTiered.dram.lowWatermark, 0.6);
  EXPECT_EQ(loaded->pcacheTiered.diskCapacityBytes, 0u);  // disk off by default
  EXPECT_EQ(loaded->pcacheReadAhead, 4);

  // A proxy needs no all.export, but does need an origin head.
  EXPECT_FALSE(LoadNodeConfig("all.role proxy\nall.addr 50\n", &error).has_value());
  // pcache.* directives are proxy-only.
  EXPECT_FALSE(LoadNodeConfig("all.role manager\nall.addr 1\nall.export /\n"
                              "pcache.capacity 1g\n",
                              &error)
                   .has_value());
  // Watermark sanity: lowater must not exceed hiwater.
  EXPECT_FALSE(LoadNodeConfig("all.role proxy\nall.addr 50\nall.manager 1\n"
                              "pcache.hiwater 0.5\npcache.lowater 0.8\n",
                              &error)
                   .has_value());
  EXPECT_NE(error.find("watermarks"), std::string::npos);
}

TEST(NodeConfigLoaderTest, ProxyDiskTierDirectives) {
  std::string error;
  const std::string base =
      "all.role proxy\n"
      "all.addr 50\n"
      "all.manager 1\n";
  const auto loaded = LoadNodeConfig(base +
                                         "pcache.disk.capacity 16g\n"
                                         "pcache.disk.path /tmp/pcache-disk\n"
                                         "pcache.disk.hiwater 0.9\n"
                                         "pcache.disk.lowater 0.5\n"
                                         "pcache.ghost 4096\n",
                                     &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->pcacheTiered.diskCapacityBytes, 16ull << 30);
  EXPECT_EQ(loaded->pcacheDiskRoot, "/tmp/pcache-disk");
  EXPECT_DOUBLE_EQ(loaded->pcacheTiered.diskHighWatermark, 0.9);
  EXPECT_DOUBLE_EQ(loaded->pcacheTiered.diskLowWatermark, 0.5);
  EXPECT_EQ(loaded->pcacheTiered.ghostEntries, 4096u);

  // A disk tier without a backing directory is a config error ...
  EXPECT_FALSE(LoadNodeConfig(base + "pcache.disk.capacity 1g\n", &error).has_value());
  EXPECT_NE(error.find("pcache.disk.path"), std::string::npos);
  // ... as are inverted disk watermarks,
  EXPECT_FALSE(LoadNodeConfig(base +
                                  "pcache.disk.capacity 1g\n"
                                  "pcache.disk.path /tmp/d\n"
                                  "pcache.disk.hiwater 0.4\n"
                                  "pcache.disk.lowater 0.8\n",
                              &error)
                   .has_value());
  EXPECT_NE(error.find("disk watermarks"), std::string::npos);
  // ... a negative ghost capacity,
  EXPECT_FALSE(LoadNodeConfig(base + "pcache.ghost -1\n", &error).has_value());
  EXPECT_NE(error.find("pcache.ghost"), std::string::npos);
  // ... a capacity smaller than one block,
  EXPECT_FALSE(LoadNodeConfig(base +
                                  "pcache.blocksize 64k\n"
                                  "pcache.disk.capacity 4k\n"
                                  "pcache.disk.path /tmp/d\n",
                              &error)
                   .has_value());
  EXPECT_NE(error.find("at least one block"), std::string::npos);
  // ... and any pcache.disk.* key on a non-proxy role.
  EXPECT_FALSE(LoadNodeConfig("all.role server\nall.addr 9\nall.manager 1\n"
                              "all.export /store\npcache.disk.capacity 1g\n",
                              &error)
                   .has_value());
  EXPECT_NE(error.find("proxy role"), std::string::npos);
  // pcache.disk.path alone (capacity 0) keeps the tier disabled.
  const auto diskOff = LoadNodeConfig(base + "pcache.disk.path /tmp/d\n", &error);
  ASSERT_TRUE(diskOff.has_value()) << error;
  EXPECT_EQ(diskOff->pcacheTiered.diskCapacityBytes, 0u);
}

TEST(NodeConfigLoaderTest, FederationDirectivesParsed) {
  std::string error;
  const auto loaded = LoadNodeConfig(R"(
all.role        manager
all.addr        10
all.export      /store
fed.meta        1
fed.cluster     site-a
fed.locality    3
)",
                                     &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_FALSE(loaded->isMeta);
  EXPECT_EQ(loaded->node.meta, 1u);
  EXPECT_EQ(loaded->node.clusterName, "site-a");
  EXPECT_EQ(loaded->node.locality, 3u);
}

TEST(NodeConfigLoaderTest, MetaRoleNeedsNoExportsOrManager) {
  std::string error;
  const auto loaded = LoadNodeConfig("all.role meta\nall.addr 1\n", &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->isMeta);
  EXPECT_EQ(loaded->node.addr, 1u);
}

TEST(NodeConfigLoaderTest, RejectsBadFederationConfigs) {
  std::string error;
  // fed.* is for cluster heads, not servers (and not the meta itself).
  EXPECT_FALSE(LoadNodeConfig("all.role server\nall.addr 12\nall.manager 1\n"
                              "all.export /store\nfed.meta 1\n",
                              &error)
                   .has_value());
  EXPECT_FALSE(
      LoadNodeConfig("all.role meta\nall.addr 1\nfed.locality 2\n", &error)
          .has_value());
  // A cluster name / locality without the meta address is a config slip.
  EXPECT_FALSE(LoadNodeConfig("all.role manager\nall.addr 10\nall.export /\n"
                              "fed.cluster site-a\n",
                              &error)
                   .has_value());
}

}  // namespace
}  // namespace scalla::xrd
